// Columnar-vs-row differential battery: the vectorized batch engine
// (ExecEngine::kBatch) must be BIT-identical to the row-at-a-time oracle
// (ExecEngine::kRow) — same rows in the same order for every route the
// router can take (conflict-free plain evaluation, first-order rewriting,
// envelope + prover), same conflict hyperedges with the same edge ids and
// provenance from detection, and all of it must survive view-invalidating
// writes (inserts rebuild Table's memoized columnar view, deletes tombstone
// under it). Instances are seeded random and NULL-heavy, since SQL
// three-valued logic and NULL join keys are where vectorized rewrites
// classically diverge.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "db/database.h"
#include "detect/detector.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

std::string RandomValue(std::mt19937_64* rng, double null_rate, int domain) {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  if (coin(*rng) < null_rate) return "NULL";
  return std::to_string(
      std::uniform_int_distribution<int>(0, domain - 1)(*rng));
}

/// r(a, b, c) with FD a -> b, c; s(d, e) with FD d -> e and a foreign key
/// into parent(k); t(f, g) unconstrained. Tiny NULL-seasoned domains force
/// conflicts, orphans, and NULL keys on every path.
void BuildRandomInstance(Database* db, uint64_t seed, double null_rate) {
  ASSERT_OK(db->Execute(
      "CREATE TABLE parent (k INTEGER);"
      "CREATE TABLE r (a INTEGER, b INTEGER, c INTEGER);"
      "CREATE CONSTRAINT pk_r FD ON r (a -> b, c);"
      "CREATE TABLE s (d INTEGER, e INTEGER);"
      "CREATE CONSTRAINT fd_s FD ON s (d -> e);"
      "CREATE CONSTRAINT excl EXCLUSION ON r (a), s (d);"
      "CREATE CONSTRAINT fk_s FOREIGN KEY s (e) REFERENCES parent (k);"
      "CREATE TABLE t (f INTEGER, g INTEGER)"));
  std::mt19937_64 rng(seed);
  std::string script;
  for (int i = 0; i < 3; ++i) {
    script += "INSERT INTO parent VALUES (" + RandomValue(&rng, 0.0, 4) + ");";
  }
  for (int i = 0; i < 14; ++i) {
    script += "INSERT INTO r VALUES (" + RandomValue(&rng, null_rate / 2, 5) +
              ", " + RandomValue(&rng, null_rate, 4) + ", " +
              RandomValue(&rng, null_rate, 4) + ");";
  }
  for (int i = 0; i < 10; ++i) {
    script += "INSERT INTO s VALUES (" + RandomValue(&rng, null_rate / 2, 4) +
              ", " + RandomValue(&rng, null_rate, 5) + ");";
  }
  for (int i = 0; i < 6; ++i) {
    script += "INSERT INTO t VALUES (" + RandomValue(&rng, null_rate, 4) +
              ", " + RandomValue(&rng, null_rate, 4) + ");";
  }
  ASSERT_OK(db->Execute(script));
}

/// Queries spanning every batch operator: filter (typed loops, NULL
/// literals, IS NULL over validity bits), zero-copy and computed
/// projection, hash and nested-loop joins, anti-joins (via rewriting),
/// sort (column-key and expression-key), set operations, aggregation.
std::vector<std::string> QueryPool() {
  return {
      "SELECT * FROM r",
      "SELECT * FROM r ORDER BY a",
      "SELECT * FROM r WHERE b > 1",
      "SELECT * FROM r WHERE b IS NULL",
      "SELECT * FROM r WHERE c IS NOT NULL ORDER BY b",
      "SELECT * FROM r WHERE a = 2.0",  // mixed-type comparison loop
      "SELECT c, a, b FROM r",          // zero-copy column reorder
      "SELECT a + b FROM r",            // computed projection
      "SELECT a FROM r ORDER BY a",
      "SELECT * FROM s WHERE e = 2",
      "SELECT * FROM r, s WHERE r.a = s.d",
      "SELECT r.a FROM r, s WHERE r.a = s.d",
      "SELECT * FROM r, s WHERE r.a < s.d",  // no equi-key: NL join
      "SELECT a, b FROM r EXCEPT SELECT d, e FROM s",
      "SELECT d, e FROM s UNION SELECT f, g FROM t",
      "SELECT d, e FROM s INTERSECT SELECT f, g FROM t",
      "SELECT f FROM t ORDER BY f",
  };
}

/// Runs `sql` under every forced route with both engines; each
/// (route, query) pair must agree on the exact row sequence. Routes that
/// cannot serve a query must refuse identically under both engines.
void CrossCheckEngines(Database* db, const std::string& sql) {
  for (RouteMode route : {RouteMode::kAuto, RouteMode::kForceRewrite,
                          RouteMode::kForceProver}) {
    cqa::HippoOptions batch_opts;
    batch_opts.route = route;
    batch_opts.exec_engine = ExecEngine::kBatch;
    cqa::HippoOptions row_opts = batch_opts;
    row_opts.exec_engine = ExecEngine::kRow;

    auto batch = db->ConsistentAnswers(sql, batch_opts);
    auto row = db->ConsistentAnswers(sql, row_opts);
    ASSERT_EQ(batch.ok(), row.ok())
        << sql << " (route mode " << static_cast<int>(route)
        << "): engines disagree on servability";
    if (!batch.ok()) continue;
    EXPECT_EQ(batch.value().rows, row.value().rows)
        << sql << " (route mode " << static_cast<int>(route)
        << "): batch engine diverged from the row oracle";
  }
}

/// Full id-level dump of a hypergraph: (edge id, vertices, constraint).
using EdgeDump = std::vector<std::tuple<size_t, std::vector<RowId>, uint32_t>>;

EdgeDump DumpEdges(const ConflictHypergraph& g) {
  EdgeDump dump;
  for (size_t e = 0; e < g.NumEdgeSlots(); ++e) {
    auto id = static_cast<ConflictHypergraph::EdgeId>(e);
    if (!g.EdgeAlive(id)) continue;
    dump.emplace_back(e, g.edge(id), g.edge_constraint(id));
  }
  return dump;
}

/// Both engines must produce the same edges with the same IDS — serially
/// (historical insertion order) and in parallel (BulkLoad order).
void CrossCheckDetection(Database* db, size_t num_threads) {
  DetectOptions batch_opts;
  batch_opts.num_threads = num_threads;
  batch_opts.engine = ExecEngine::kBatch;
  DetectOptions row_opts = batch_opts;
  row_opts.engine = ExecEngine::kRow;

  ConflictDetector batch_det(db->catalog(), batch_opts);
  ConflictDetector row_det(db->catalog(), row_opts);
  auto batch_g = batch_det.DetectAll(db->constraints(), db->foreign_keys());
  auto row_g = row_det.DetectAll(db->constraints(), db->foreign_keys());
  ASSERT_OK(batch_g.status());
  ASSERT_OK(row_g.status());
  EXPECT_EQ(DumpEdges(batch_g.value()), DumpEdges(row_g.value()))
      << "batch detection diverged from the row oracle at "
      << num_threads << " threads";

  // The generic path must agree with the FD fast path under both engines.
  DetectOptions no_fast = batch_opts;
  no_fast.use_fd_fast_path = false;
  ConflictDetector generic_det(db->catalog(), no_fast);
  auto generic_g =
      generic_det.DetectAll(db->constraints(), db->foreign_keys());
  ASSERT_OK(generic_g.status());
  EXPECT_EQ(generic_g.value().CanonicalEdges(),
            batch_g.value().CanonicalEdges())
      << "batch generic path diverged from the FD fast path";
}

class ColumnarDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ColumnarDifferential, EnginesAgreeOnNullHeavyInstances) {
  Database db;
  BuildRandomInstance(&db, GetParam(), /*null_rate=*/0.35);
  if (::testing::Test::HasFatalFailure()) return;

  for (const std::string& sql : QueryPool()) {
    CrossCheckEngines(&db, sql);
    if (::testing::Test::HasFatalFailure()) return;
  }
  CrossCheckDetection(&db, /*num_threads=*/1);
  CrossCheckDetection(&db, /*num_threads=*/4);
}

TEST_P(ColumnarDifferential, EnginesAgreeAfterViewInvalidatingWrites) {
  Database db;
  BuildRandomInstance(&db, GetParam(), /*null_rate=*/0.35);
  if (::testing::Test::HasFatalFailure()) return;

  // Materialize the columnar views (and the incremental hypergraph) so the
  // writes below exercise invalidation and maintenance, not first builds.
  CrossCheckEngines(&db, "SELECT * FROM r");
  CrossCheckDetection(&db, /*num_threads=*/1);
  if (::testing::Test::HasFatalFailure()) return;

  std::mt19937_64 rng(GetParam() ^ 0x5eedULL);
  // Inserts append slots (view rebuilt); deletes tombstone in place (view
  // kept, liveness handled by the scan selection); the UPDATE does both.
  ASSERT_OK(db.Execute(
      "INSERT INTO r VALUES (" + RandomValue(&rng, 0.2, 5) + ", " +
      RandomValue(&rng, 0.2, 4) + ", NULL);"
      "INSERT INTO s VALUES (0, " + RandomValue(&rng, 0.2, 5) + ");"
      "DELETE FROM r WHERE b = 1;"
      "DELETE FROM s WHERE d IS NULL;"
      "UPDATE t SET g = 7 WHERE f = 2"));

  for (const std::string& sql : QueryPool()) {
    CrossCheckEngines(&db, sql);
    if (::testing::Test::HasFatalFailure()) return;
  }
  CrossCheckDetection(&db, /*num_threads=*/1);
  CrossCheckDetection(&db, /*num_threads=*/4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColumnarDifferential,
                         ::testing::Values(1u, 7u, 42u, 101u, 2024u, 90210u));

}  // namespace
}  // namespace hippo
