// PRIMARY KEY / UNIQUE / CHECK constraint sugar in CREATE TABLE.
#include <gtest/gtest.h>

#include "db/database.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

TEST(DdlSugarTest, PrimaryKeyBecomesFd) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE emp (id INTEGER PRIMARY KEY, name VARCHAR);"
      "INSERT INTO emp VALUES (1, 'ann'), (1, 'bob'), (2, 'cat')"));
  ASSERT_EQ(db.constraints().size(), 1u);
  EXPECT_EQ(db.constraints()[0].name(), "emp_key1");
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  EXPECT_EQ(g.value()->NumEdges(), 1u);  // the two id=1 rows conflict
  auto consistent = db.ConsistentAnswers("SELECT * FROM emp");
  ASSERT_OK(consistent.status());
  EXPECT_EQ(consistent.value().NumRows(), 1u);  // only (2, 'cat') certain
}

TEST(DdlSugarTest, ColumnUnique) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE u (a INTEGER UNIQUE, b VARCHAR);"
      "INSERT INTO u VALUES (1, 'x'), (1, 'y')"));
  auto consistent = db.IsConsistent();
  ASSERT_OK(consistent.status());
  EXPECT_FALSE(consistent.value());
}

TEST(DdlSugarTest, TableLevelCompositeKey) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER, c VARCHAR, "
      "PRIMARY KEY (a, b));"
      "INSERT INTO t VALUES (1, 1, 'x'), (1, 2, 'y'), (1, 1, 'z')"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  EXPECT_EQ(g.value()->NumEdges(), 1u);  // (1,1,'x') vs (1,1,'z')
}

TEST(DdlSugarTest, WholeRowKeyIsTrivial) {
  // Set semantics already dedupe identical rows; a key covering every
  // column adds nothing and must not be registered.
  Database db;
  ASSERT_OK(db.Execute("CREATE TABLE t (a INTEGER, PRIMARY KEY (a))"));
  EXPECT_EQ(db.constraints().size(), 0u);
}

TEST(DdlSugarTest, CheckConstraint) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE acct (id INTEGER, balance INTEGER, "
      "CHECK (balance >= 0));"
      "INSERT INTO acct VALUES (1, 100), (2, -5)"));
  ASSERT_EQ(db.constraints().size(), 1u);
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  ASSERT_EQ(g.value()->NumEdges(), 1u);
  EXPECT_EQ(g.value()->edge(0).size(), 1u);  // unary: the negative row
  // The violating tuple is in no repair.
  auto certain = db.ConsistentAnswers("SELECT * FROM acct");
  ASSERT_OK(certain.status());
  ASSERT_EQ(certain.value().NumRows(), 1u);
  EXPECT_EQ(certain.value().rows[0][0], Value::Int(1));
}

TEST(DdlSugarTest, CheckWithNullPasses) {
  // SQL CHECK: NULL is not a violation.
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (v INTEGER, CHECK (v > 0));"
      "INSERT INTO t VALUES (NULL), (1)"));
  auto consistent = db.IsConsistent();
  ASSERT_OK(consistent.status());
  EXPECT_TRUE(consistent.value());
}

TEST(DdlSugarTest, MultipleConstraintsCompose) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE emp (id INTEGER PRIMARY KEY, dept VARCHAR, "
      "salary INTEGER, CHECK (salary > 0), UNIQUE (dept, salary))"));
  EXPECT_EQ(db.constraints().size(), 3u);
}

TEST(DdlSugarTest, SugarRespectsRestrictedFkInvariant) {
  // A keyed table cannot be an FK parent (it carries a constraint).
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE parent (k INTEGER PRIMARY KEY, v VARCHAR);"
      "CREATE TABLE child (k INTEGER)"));
  auto st = db.Execute(
      "CREATE CONSTRAINT fk FOREIGN KEY child (k) REFERENCES parent (k)");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotSupported);
}

TEST(DdlSugarTest, IncrementalMaintenanceCoversSugar) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE acct (id INTEGER PRIMARY KEY, balance INTEGER, "
      "CHECK (balance >= 0))"));
  ASSERT_OK(db.EnableIncrementalMaintenance());
  ASSERT_OK(db.Execute("INSERT INTO acct VALUES (1, 5), (1, 7), (2, -1)"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  EXPECT_EQ(g.value()->NumEdges(), 2u);  // key pair + negative balance
  ASSERT_OK(db.Execute("UPDATE acct SET balance = 3 WHERE id = 2"));
  ASSERT_OK(db.Execute("DELETE FROM acct WHERE balance = 7"));
  auto consistent = db.IsConsistent();
  ASSERT_OK(consistent.status());
  EXPECT_TRUE(consistent.value());
}

// --- DROP TABLE / DROP CONSTRAINT --------------------------------------------

TEST(DropTest, DropConstraintRestoresAnswers) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE emp (name VARCHAR, salary INTEGER);"
      "INSERT INTO emp VALUES ('ann', 10), ('ann', 11);"
      "CREATE CONSTRAINT fd FD ON emp (name -> salary)"));
  auto before = db.ConsistentAnswers("SELECT * FROM emp");
  ASSERT_OK(before.status());
  EXPECT_EQ(before.value().NumRows(), 0u);
  ASSERT_OK(db.Execute("DROP CONSTRAINT fd"));
  EXPECT_TRUE(db.constraints().empty());
  auto after = db.ConsistentAnswers("SELECT * FROM emp");
  ASSERT_OK(after.status());
  EXPECT_EQ(after.value().NumRows(), 2u);  // no constraints, all certain
}

TEST(DropTest, DropForeignKeyByName) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE dir (k INTEGER);"
      "CREATE TABLE emp (k INTEGER);"
      "CREATE CONSTRAINT fk FOREIGN KEY emp (k) REFERENCES dir (k)"));
  ASSERT_OK(db.Execute("DROP CONSTRAINT fk"));
  EXPECT_TRUE(db.foreign_keys().empty());
  EXPECT_FALSE(db.Execute("DROP CONSTRAINT fk").ok());  // already gone
}

TEST(DropTest, DropTableBasics) {
  Database db;
  ASSERT_OK(db.Execute("CREATE TABLE t (a INTEGER);"
                       "INSERT INTO t VALUES (1)"));
  ASSERT_OK(db.Execute("DROP TABLE t"));
  EXPECT_FALSE(db.Query("SELECT * FROM t").ok());
  EXPECT_FALSE(db.Execute("DROP TABLE t").ok());  // NotFound
  // The name is reusable with a fresh schema.
  ASSERT_OK(db.Execute("CREATE TABLE t (x VARCHAR);"
                       "INSERT INTO t VALUES ('hello')"));
  auto rs = db.Query("SELECT * FROM t");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs.value().NumRows(), 1u);
  EXPECT_EQ(rs.value().rows[0][0], Value::String("hello"));
}

TEST(DropTest, ConstrainedTableRefusesDrop) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE dir (k INTEGER);"
      "CREATE TABLE emp (k INTEGER, v INTEGER);"
      "CREATE CONSTRAINT fd FD ON emp (k -> v);"
      "CREATE CONSTRAINT fk FOREIGN KEY emp (k) REFERENCES dir (k)"));
  EXPECT_EQ(db.Execute("DROP TABLE emp").code(), StatusCode::kNotSupported);
  EXPECT_EQ(db.Execute("DROP TABLE dir").code(), StatusCode::kNotSupported);
  // Dropping the constraints unlocks the tables.
  ASSERT_OK(db.Execute("DROP CONSTRAINT fd; DROP CONSTRAINT fk"));
  ASSERT_OK(db.Execute("DROP TABLE emp; DROP TABLE dir"));
}

TEST(DropTest, ParserErrors) {
  Database db;
  EXPECT_FALSE(db.Execute("DROP t").ok());
  EXPECT_FALSE(db.Execute("DROP TABLE").ok());
  EXPECT_FALSE(db.Execute("DROP CONSTRAINT").ok());
}

}  // namespace
}  // namespace hippo
