// Parallel pipeline tests: thread-count independence of the partitioned
// executor (envelope evaluation) and of the prover loop, results and stats.
#include <gtest/gtest.h>

#include "benchutil/workload.h"
#include "cqa/envelope.h"
#include "db/database.h"
#include "exec/executor.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

using cqa::HippoOptions;
using cqa::HippoStats;

class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bench::WorkloadSpec spec;
    spec.tuples_per_relation = 2000;
    spec.conflict_rate = 0.10;
    ASSERT_OK(bench::BuildTwoRelationWorkload(&db_, spec));
  }
  Database db_;
};

TEST_F(ParallelTest, SameAnswersForAnyThreadCount) {
  const char* queries[] = {
      "SELECT * FROM p",
      "SELECT * FROM p, q WHERE p.a = q.a",
      "SELECT * FROM p EXCEPT SELECT * FROM q",
      "(SELECT * FROM p EXCEPT SELECT * FROM q) UNION "
      "(SELECT * FROM q EXCEPT SELECT * FROM p)",
  };
  for (const char* q : queries) {
    HippoOptions seq;
    seq.num_threads = 1;
    auto sequential = db_.ConsistentAnswers(q, seq);
    ASSERT_OK(sequential.status()) << q;
    for (size_t threads : {2u, 4u, 7u}) {
      HippoOptions par;
      par.num_threads = threads;
      auto parallel = db_.ConsistentAnswers(q, par);
      ASSERT_OK(parallel.status()) << q;
      // Order must match too (verdict array preserves candidate order).
      EXPECT_EQ(parallel.value().rows, sequential.value().rows)
          << q << " threads=" << threads;
    }
  }
}

TEST_F(ParallelTest, StatsConsistentAcrossThreadCounts) {
  const char* q = "SELECT * FROM p, q WHERE p.a = q.a";
  HippoStats seq_stats;
  HippoOptions seq;
  seq.num_threads = 1;
  ASSERT_OK(db_.ConsistentAnswers(q, seq, &seq_stats).status());

  HippoStats par_stats;
  HippoOptions par;
  par.num_threads = 4;
  ASSERT_OK(db_.ConsistentAnswers(q, par, &par_stats).status());

  EXPECT_EQ(par_stats.candidates, seq_stats.candidates);
  EXPECT_EQ(par_stats.answers, seq_stats.answers);
  EXPECT_EQ(par_stats.filtered_shortcuts, seq_stats.filtered_shortcuts);
  EXPECT_EQ(par_stats.prover_invocations, seq_stats.prover_invocations);
  EXPECT_EQ(par_stats.membership_checks, seq_stats.membership_checks);
}

TEST_F(ParallelTest, MoreThreadsThanCandidates) {
  Database small;
  ASSERT_OK(small.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 1), (1, 2), (2, 9);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  HippoOptions par;
  par.num_threads = 64;
  auto rs = small.ConsistentAnswers("SELECT * FROM t", par);
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 1u);
}

// The partitioned executor must be BIT-identical to the serial one — rows
// AND row order — for every plan shape it partitions (filter, project
// dedup, hash/NL join probe, anti-join probe via the rewriting layer,
// product, set ops on top). min_partition_rows = 1 forces a split even on
// the test-sized inputs.
TEST_F(ParallelTest, PartitionedExecutorMatchesSerialBitForBit) {
  const char* queries[] = {
      "SELECT * FROM p WHERE p.b < 500",
      "SELECT p.b, p.a FROM p",                       // project + dedup
      "SELECT * FROM p, q WHERE p.a = q.a",           // hash join probe
      "SELECT * FROM p, q WHERE p.a < q.a AND q.a < p.a + 2",  // NL-ish
      "SELECT * FROM p INTERSECT SELECT * FROM q",
      "(SELECT * FROM p EXCEPT SELECT * FROM q) UNION "
      "(SELECT * FROM q EXCEPT SELECT * FROM p)",
  };
  for (const char* q : queries) {
    auto plan = db_.Plan(q);
    ASSERT_OK(plan.status()) << q;
    ExecContext serial{&db_.catalog(), nullptr};
    auto want = Execute(*plan.value(), serial);
    ASSERT_OK(want.status()) << q;
    for (size_t threads : {2u, 3u, 8u}) {
      ExecContext par{&db_.catalog(), nullptr};
      par.parallel.num_threads = threads;
      par.parallel.min_partition_rows = 1;
      auto got = Execute(*plan.value(), par);
      ASSERT_OK(got.status()) << q;
      EXPECT_EQ(got.value().rows, want.value().rows)
          << q << " threads=" << threads;
    }
  }
}

// Same contract for the envelope plans the CQA pipeline actually runs —
// including a difference query, whose envelope drops the subtrahend.
TEST_F(ParallelTest, PartitionedEnvelopeEvaluationMatchesSerial) {
  const char* queries[] = {
      "SELECT * FROM p EXCEPT SELECT * FROM q",
      "SELECT * FROM p, q WHERE p.a = q.a",
  };
  for (const char* q : queries) {
    auto plan = db_.Plan(q);
    ASSERT_OK(plan.status()) << q;
    PlanNodePtr envelope = cqa::BuildEnvelope(*plan.value());
    ExecContext serial{&db_.catalog(), nullptr};
    auto want = Execute(*envelope, serial);
    ASSERT_OK(want.status()) << q;
    ExecContext par{&db_.catalog(), nullptr};
    par.parallel.num_threads = 4;
    par.parallel.min_partition_rows = 1;
    auto got = Execute(*envelope, par);
    ASSERT_OK(got.status()) << q;
    EXPECT_EQ(got.value().rows, want.value().rows) << q;
  }
}

TEST_F(ParallelTest, ParallelWithQueryMembershipMode) {
  Database small;
  ASSERT_OK(small.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 1), (1, 2), (2, 9), (3, 3);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  HippoOptions par;
  par.num_threads = 3;
  par.membership = HippoOptions::MembershipMode::kQuery;
  auto rs = small.ConsistentAnswers("SELECT * FROM t", par);
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 2u);
}

}  // namespace
}  // namespace hippo
