// Parallel prover tests: thread-count independence of results and stats.
#include <gtest/gtest.h>

#include "benchutil/workload.h"
#include "db/database.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

using cqa::HippoOptions;
using cqa::HippoStats;

class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bench::WorkloadSpec spec;
    spec.tuples_per_relation = 2000;
    spec.conflict_rate = 0.10;
    ASSERT_OK(bench::BuildTwoRelationWorkload(&db_, spec));
  }
  Database db_;
};

TEST_F(ParallelTest, SameAnswersForAnyThreadCount) {
  const char* queries[] = {
      "SELECT * FROM p",
      "SELECT * FROM p, q WHERE p.a = q.a",
      "SELECT * FROM p EXCEPT SELECT * FROM q",
      "(SELECT * FROM p EXCEPT SELECT * FROM q) UNION "
      "(SELECT * FROM q EXCEPT SELECT * FROM p)",
  };
  for (const char* q : queries) {
    HippoOptions seq;
    seq.num_threads = 1;
    auto sequential = db_.ConsistentAnswers(q, seq);
    ASSERT_OK(sequential.status()) << q;
    for (size_t threads : {2u, 4u, 7u}) {
      HippoOptions par;
      par.num_threads = threads;
      auto parallel = db_.ConsistentAnswers(q, par);
      ASSERT_OK(parallel.status()) << q;
      // Order must match too (verdict array preserves candidate order).
      EXPECT_EQ(parallel.value().rows, sequential.value().rows)
          << q << " threads=" << threads;
    }
  }
}

TEST_F(ParallelTest, StatsConsistentAcrossThreadCounts) {
  const char* q = "SELECT * FROM p, q WHERE p.a = q.a";
  HippoStats seq_stats;
  HippoOptions seq;
  seq.num_threads = 1;
  ASSERT_OK(db_.ConsistentAnswers(q, seq, &seq_stats).status());

  HippoStats par_stats;
  HippoOptions par;
  par.num_threads = 4;
  ASSERT_OK(db_.ConsistentAnswers(q, par, &par_stats).status());

  EXPECT_EQ(par_stats.candidates, seq_stats.candidates);
  EXPECT_EQ(par_stats.answers, seq_stats.answers);
  EXPECT_EQ(par_stats.filtered_shortcuts, seq_stats.filtered_shortcuts);
  EXPECT_EQ(par_stats.prover_invocations, seq_stats.prover_invocations);
  EXPECT_EQ(par_stats.membership_checks, seq_stats.membership_checks);
}

TEST_F(ParallelTest, MoreThreadsThanCandidates) {
  Database small;
  ASSERT_OK(small.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 1), (1, 2), (2, 9);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  HippoOptions par;
  par.num_threads = 64;
  auto rs = small.ConsistentAnswers("SELECT * FROM t", par);
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 1u);
}

TEST_F(ParallelTest, ParallelWithQueryMembershipMode) {
  Database small;
  ASSERT_OK(small.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 1), (1, 2), (2, 9), (3, 3);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  HippoOptions par;
  par.num_threads = 3;
  par.membership = HippoOptions::MembershipMode::kQuery;
  auto rs = small.ConsistentAnswers("SELECT * FROM t", par);
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 2u);
}

}  // namespace
}  // namespace hippo
