// Tests for Schema, Catalog and the set-semantics row store.
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "storage/table.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

Schema TwoCol() {
  Schema s;
  s.AddColumn(Column("a", TypeId::kInt));
  s.AddColumn(Column("b", TypeId::kString));
  return s;
}

TEST(SchemaTest, ResolveByName) {
  Schema s = TwoCol();
  EXPECT_EQ(s.ResolveColumn("", "a").value(), 0u);
  EXPECT_EQ(s.ResolveColumn("", "B").value(), 1u);  // case-insensitive
  EXPECT_EQ(s.ResolveColumn("", "c").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ResolveWithQualifier) {
  Schema s = TwoCol().WithQualifier("t");
  EXPECT_EQ(s.ResolveColumn("t", "a").value(), 0u);
  EXPECT_EQ(s.ResolveColumn("T", "a").value(), 0u);
  EXPECT_EQ(s.ResolveColumn("u", "a").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ResolveColumn("", "a").value(), 0u);  // unqualified still works
}

TEST(SchemaTest, AmbiguousReference) {
  Schema s = Schema::Concat(TwoCol().WithQualifier("x"),
                            TwoCol().WithQualifier("y"));
  EXPECT_EQ(s.ResolveColumn("", "a").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ResolveColumn("x", "a").value(), 0u);
  EXPECT_EQ(s.ResolveColumn("y", "a").value(), 2u);
}

TEST(SchemaTest, UnionCompatibility) {
  Schema a = TwoCol();
  Schema b = TwoCol().WithQualifier("z");  // names/qualifiers irrelevant
  EXPECT_TRUE(a.UnionCompatible(b));
  Schema c;
  c.AddColumn(Column("a", TypeId::kInt));
  EXPECT_FALSE(a.UnionCompatible(c));  // arity mismatch
  Schema d;
  d.AddColumn(Column("a", TypeId::kString));
  d.AddColumn(Column("b", TypeId::kString));
  EXPECT_FALSE(a.UnionCompatible(d));  // type mismatch
}

TEST(SchemaTest, ToStringRendering) {
  EXPECT_EQ(TwoCol().ToString(), "(a INTEGER, b VARCHAR)");
  EXPECT_EQ(TwoCol().WithQualifier("t").ToString(),
            "(t.a INTEGER, t.b VARCHAR)");
}

TEST(TableTest, InsertAndRead) {
  Table t(0, "t", TwoCol());
  auto r = t.Insert({Value::Int(1), Value::String("x")});
  ASSERT_OK(r.status());
  EXPECT_TRUE(r.value().second);
  EXPECT_EQ(r.value().first, (RowId{0, 0}));
  EXPECT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.row(0)[1], Value::String("x"));
}

TEST(TableTest, SetSemanticsDeduplicates) {
  Table t(0, "t", TwoCol());
  ASSERT_OK(t.Insert({Value::Int(1), Value::String("x")}).status());
  auto dup = t.Insert({Value::Int(1), Value::String("x")});
  ASSERT_OK(dup.status());
  EXPECT_FALSE(dup.value().second);
  EXPECT_EQ(dup.value().first, (RowId{0, 0}));
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST(TableTest, InsertCoercesTypes) {
  Schema s;
  s.AddColumn(Column("d", TypeId::kDouble));
  Table t(0, "t", s);
  ASSERT_OK(t.Insert({Value::Int(3)}).status());
  EXPECT_EQ(t.row(0)[0].type(), TypeId::kDouble);
  EXPECT_EQ(t.row(0)[0].AsDouble(), 3.0);
}

TEST(TableTest, InsertChecksArityAndTypes) {
  Table t(0, "t", TwoCol());
  EXPECT_EQ(t.Insert({Value::Int(1)}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t.Insert({Value::String("no"), Value::String("x")})
                .status()
                .code(),
            StatusCode::kTypeError);
}

TEST(TableTest, FindRow) {
  Table t(0, "t", TwoCol());
  ASSERT_OK(t.Insert({Value::Int(1), Value::String("x")}).status());
  ASSERT_OK(t.Insert({Value::Int(2), Value::String("y")}).status());
  auto found = t.Find({Value::Int(2), Value::String("y")});
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, (RowId{0, 1}));
  EXPECT_FALSE(t.Find({Value::Int(3), Value::String("z")}).has_value());
}

TEST(TableTest, FindAfterCoercion) {
  Schema s;
  s.AddColumn(Column("d", TypeId::kDouble));
  Table t(0, "t", s);
  ASSERT_OK(t.Insert({Value::Int(3)}).status());
  // Numeric equality makes Int(3) hash/compare equal to Double(3.0).
  EXPECT_TRUE(t.Find({Value::Int(3)}).has_value());
  EXPECT_TRUE(t.Find({Value::Double(3.0)}).has_value());
}

TEST(TableTest, NullsStoreAndDedupe) {
  Table t(0, "t", TwoCol());
  ASSERT_OK(t.Insert({Value::Null(), Value::Null()}).status());
  auto dup = t.Insert({Value::Null(), Value::Null()});
  ASSERT_OK(dup.status());
  EXPECT_FALSE(dup.value().second);
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST(TableTest, Clear) {
  Table t(0, "t", TwoCol());
  ASSERT_OK(t.Insert({Value::Int(1), Value::String("x")}).status());
  t.Clear();
  EXPECT_EQ(t.NumRows(), 0u);
  auto again = t.Insert({Value::Int(1), Value::String("x")});
  ASSERT_OK(again.status());
  EXPECT_TRUE(again.value().second);
}

TEST(CatalogTest, CreateAndGet) {
  Catalog c;
  ASSERT_OK(c.CreateTable("T1", TwoCol()).status());
  EXPECT_EQ(c.GetTable("t1").value()->id(), 0u);
  EXPECT_EQ(c.GetTable("T1").value()->id(), 0u);  // case-insensitive
  EXPECT_EQ(c.CreateTable("t1", TwoCol()).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(c.GetTable("nope").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, RowOfAndTotals) {
  Catalog c;
  Table* t = c.CreateTable("t", TwoCol()).value();
  ASSERT_OK(t->Insert({Value::Int(1), Value::String("x")}).status());
  ASSERT_OK(t->Insert({Value::Int(2), Value::String("y")}).status());
  EXPECT_EQ(c.TotalRows(), 2u);
  EXPECT_EQ(c.RowOf(RowId{0, 1})[0], Value::Int(2));
  EXPECT_EQ(c.TableNames(), std::vector<std::string>{"t"});
}

TEST(RowIdTest, OrderingAndPacking) {
  RowId a{0, 5}, b{1, 0}, c{0, 6};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a < c);
  EXPECT_NE(a.Pack(), b.Pack());
  EXPECT_EQ(a.ToString(), "t0#5");
}

}  // namespace
}  // namespace hippo
