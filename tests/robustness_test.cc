// Robustness: the front end must return Status errors — never crash — on
// arbitrary malformed input, and the whole pipeline must stay correct on
// instances mixing every constraint kind (including foreign keys).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/database.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

// Random token soup: the parser must always return (not crash, not hang).
class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, NeverCrashesOnTokenSoup) {
  Rng rng(GetParam());
  static const char* kTokens[] = {
      "SELECT", "FROM",  "WHERE", "UNION",  "EXCEPT", "JOIN",   "ON",
      "(",      ")",     ",",     "*",      "=",      "<>",     "<",
      "AND",    "OR",    "NOT",   "t",      "u",      "a",      "b",
      "1",      "2.5",   "'x'",   "AS",     "BY",     "ORDER",  "->",
      "CREATE", "TABLE", "INSERT", "INTO",  "VALUES", "CONSTRAINT",
      "FD",     "DENIAL", "EXCLUSION", "FOREIGN", "KEY", "REFERENCES",
      ";",      "NULL",  "IS",     "+",     "-",      "%",
      "DELETE", "UPDATE", "SET",   "COPY",  "TO",     "GROUP",
      "HAVING", "COUNT",  "SUM",   "PRIMARY", "UNIQUE", "CHECK",
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    size_t len = 1 + rng.Uniform(24);
    for (size_t i = 0; i < len; ++i) {
      text += kTokens[rng.Uniform(sizeof(kTokens) / sizeof(kTokens[0]))];
      text += " ";
    }
    // Must terminate and produce either a parse tree or an error.
    auto result = sql::ParseScript(text);
    (void)result;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(900, 901, 902, 903, 904, 905));

TEST(RobustnessTest, MalformedDmlAndAggregatesRejectedCleanly) {
  Database db;
  ASSERT_OK(db.Execute("CREATE TABLE t (a INTEGER, b INTEGER);"
                       "INSERT INTO t VALUES (1, 2)"));
  for (const char* text : {
           "DELETE t",                        // missing FROM
           "DELETE FROM t WHERE",             // dangling WHERE
           "UPDATE t SET",                    // no assignments
           "UPDATE t SET a",                  // missing '='
           "UPDATE t SET a = ",               // missing value
           "UPDATE SET a = 1",                // missing table
           "COPY t",                          // missing direction
           "COPY t FROM",                     // missing path
           "COPY t FROM t2",                  // unquoted path
           "SELECT COUNT( FROM t",            // broken agg call
           "SELECT COUNT(*, a) FROM t",       // extra agg args
           "SELECT COUNT(DISTINCT a) FROM t", // DISTINCT aggregates: no
           "SELECT SUM(a) FROM t GROUP BY SUM(a)",  // agg in GROUP BY
           "SELECT a FROM t GROUP BY",        // dangling GROUP BY
           "SELECT a FROM t HAVING",          // dangling HAVING
           "CREATE TABLE x (a INTEGER PRIMARY)",   // PRIMARY without KEY
           "CREATE TABLE x (CHECK)",          // CHECK without expr
       }) {
    Status st = db.Execute(text);
    auto q = db.Query(text);
    EXPECT_FALSE(st.ok() && q.ok()) << text;
  }
  // The instance must be untouched by the failed statements.
  auto rs = db.Query("SELECT * FROM t");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 1u);
}

TEST(RobustnessTest, GarbageBytesRejectedCleanly) {
  for (const char* text :
       {"", ";", ";;;", "   ", "\n\n", "@@@@", "SELECT 'unterminated",
        "-- only a comment", "()", "''''''", "SELECT * FROM t WHERE ((((("}) {
    Database db;
    Status st = db.Execute(text);
    auto q = db.Query(text);
    (void)st;
    (void)q;
  }
  SUCCEED();
}

TEST(RobustnessTest, DeepExpressionNesting) {
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  auto parsed = sql::ParseExpression(expr);
  ASSERT_OK(parsed.status());
}

// Full-pipeline differential test on instances mixing all constraint kinds:
// FDs, exclusion, unary denial, and a restricted foreign key.
class MixedConstraintDifferential : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(MixedConstraintDifferential, HippoEqualsAllRepairs) {
  Rng rng(GetParam());
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE dir (k INTEGER);"
      "CREATE TABLE p (k INTEGER, v INTEGER);"
      "CREATE TABLE q (k INTEGER, v INTEGER);"
      "INSERT INTO dir VALUES (0), (1), (2), (3);"
      "CREATE CONSTRAINT fd_p FD ON p (k -> v);"
      "CREATE CONSTRAINT ex EXCLUSION ON p (v), q (v);"
      "CREATE CONSTRAINT cap DENIAL (q AS x WHERE x.v > 8);"
      "CREATE CONSTRAINT fk FOREIGN KEY p (k) REFERENCES dir (k)"));
  for (int i = 0; i < 7; ++i) {
    ASSERT_OK(db.InsertRow("p", Row{Value::Int(rng.UniformInt(0, 5)),
                                    Value::Int(rng.UniformInt(0, 9))}));
    ASSERT_OK(db.InsertRow("q", Row{Value::Int(rng.UniformInt(0, 5)),
                                    Value::Int(rng.UniformInt(0, 9))}));
  }
  for (const char* query :
       {"SELECT * FROM p", "SELECT * FROM q",
        "SELECT * FROM p, q WHERE p.k = q.k",
        "SELECT * FROM p UNION SELECT * FROM q",
        "SELECT * FROM p EXCEPT SELECT * FROM q",
        "SELECT * FROM p, dir WHERE p.k = dir.k"}) {
    auto exact = db.ConsistentAnswersAllRepairs(query);
    ASSERT_OK(exact.status()) << query;
    for (bool filtering : {true, false}) {
      cqa::HippoOptions opt;
      opt.use_filtering = filtering;
      auto hippo_rs = db.ConsistentAnswers(query, opt);
      ASSERT_OK(hippo_rs.status()) << query;
      EXPECT_EQ(SortedRows(hippo_rs.value()), SortedRows(exact.value()))
          << query;
    }
    auto rewr = db.ConsistentAnswersByRewriting(query);
    if (rewr.ok()) {
      EXPECT_EQ(SortedRows(rewr.value()), SortedRows(exact.value()))
          << "rewriting: " << query;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedConstraintDifferential,
                         ::testing::Range<uint64_t>(4000, 4024));

TEST(RobustnessTest, HypergraphInvalidationOnDml) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 1);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  auto before = db.IsConsistent();
  ASSERT_OK(before.status());
  EXPECT_TRUE(before.value());
  // New conflicting insert must be visible without manual invalidation.
  ASSERT_OK(db.Execute("INSERT INTO t VALUES (1, 2)"));
  auto after = db.IsConsistent();
  ASSERT_OK(after.status());
  EXPECT_FALSE(after.value());
  auto rs = db.ConsistentAnswers("SELECT * FROM t");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 0u);
}

TEST(RobustnessTest, LargeCliqueProverStress) {
  // 30 tuples sharing one key: a 30-clique, 30 repairs, answers empty.
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  for (int i = 0; i < 30; ++i) {
    ASSERT_OK(db.InsertRow("t", Row{Value::Int(1), Value::Int(i)}));
  }
  auto rs = db.ConsistentAnswers("SELECT * FROM t");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 0u);
  auto count = db.CountRepairs();
  ASSERT_OK(count.status());
  EXPECT_EQ(count.value(), 30u);
  // Disjunction over the whole clique holds in every repair.
  auto all_union = db.ConsistentAnswers(
      "SELECT * FROM t WHERE b >= 0 UNION SELECT * FROM t WHERE b < 0");
  ASSERT_OK(all_union.status());
  EXPECT_EQ(all_union.value().NumRows(), 0u);  // per-tuple still uncertain
}

TEST(RobustnessTest, WideRowsAndStrings) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE w (c1 INTEGER, c2 VARCHAR, c3 DOUBLE, c4 INTEGER, "
      "c5 VARCHAR, c6 INTEGER, c7 DOUBLE, c8 VARCHAR)"));
  std::string big(10000, 'x');
  ASSERT_OK(db.InsertRow(
      "w", Row{Value::Int(1), Value::String(big), Value::Double(1.5),
               Value::Int(2), Value::String("y"), Value::Int(3),
               Value::Double(2.5), Value::String(big)}));
  auto rs = db.Query("SELECT * FROM w");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 1u);
  EXPECT_EQ(rs.value().rows[0][1].AsString().size(), 10000u);
}

}  // namespace
}  // namespace hippo
