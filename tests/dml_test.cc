// DELETE / UPDATE statement semantics: tombstones, RowId stability,
// resurrection, and interaction with constraint detection and CQA.
#include <gtest/gtest.h>

#include "db/database.h"
#include "storage/table.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

class DmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.Execute(
        "CREATE TABLE emp (name VARCHAR, dept VARCHAR, salary INTEGER);"
        "INSERT INTO emp VALUES ('ann', 'sales', 10), ('bob', 'eng', 20), "
        "('cat', 'eng', 30), ('dan', 'hr', 40)"));
  }

  size_t Count(const std::string& q = "SELECT * FROM emp") {
    auto rs = db_.Query(q);
    EXPECT_OK(rs.status());
    return rs.value().NumRows();
  }

  Database db_;
};

TEST_F(DmlTest, DeleteAll) {
  ASSERT_OK(db_.Execute("DELETE FROM emp"));
  EXPECT_EQ(Count(), 0u);
}

TEST_F(DmlTest, DeleteWithPredicate) {
  ASSERT_OK(db_.Execute("DELETE FROM emp WHERE dept = 'eng'"));
  EXPECT_EQ(Count(), 2u);
  EXPECT_EQ(Count("SELECT * FROM emp WHERE dept = 'eng'"), 0u);
}

TEST_F(DmlTest, DeleteWithQualifiedColumn) {
  ASSERT_OK(db_.Execute("DELETE FROM emp WHERE emp.salary > 25"));
  EXPECT_EQ(Count(), 2u);
}

TEST_F(DmlTest, DeleteNoMatchIsNoop) {
  ASSERT_OK(db_.Execute("DELETE FROM emp WHERE salary > 1000"));
  EXPECT_EQ(Count(), 4u);
}

TEST_F(DmlTest, DeleteUnknownTableFails) {
  EXPECT_FALSE(db_.Execute("DELETE FROM nope").ok());
}

TEST_F(DmlTest, DeleteNonBooleanWhereFails) {
  EXPECT_FALSE(db_.Execute("DELETE FROM emp WHERE salary").ok());
}

TEST_F(DmlTest, UpdateSingleColumn) {
  ASSERT_OK(db_.Execute("UPDATE emp SET salary = 99 WHERE name = 'ann'"));
  auto rs = db_.Query("SELECT salary FROM emp WHERE name = 'ann'");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs.value().NumRows(), 1u);
  EXPECT_EQ(rs.value().rows[0][0], Value::Int(99));
  EXPECT_EQ(Count(), 4u);
}

TEST_F(DmlTest, UpdateSeesPreUpdateImage) {
  // salary = salary + 1 must read the old value for every row, not the
  // value written by a previous assignment of the same statement.
  ASSERT_OK(db_.Execute("UPDATE emp SET salary = salary + 1"));
  auto rs = db_.Query("SELECT salary FROM emp ORDER BY salary");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs.value().NumRows(), 4u);
  EXPECT_EQ(rs.value().rows[0][0], Value::Int(11));
  EXPECT_EQ(rs.value().rows[3][0], Value::Int(41));
}

TEST_F(DmlTest, UpdateMultipleAssignmentsUsePreImage) {
  ASSERT_OK(db_.Execute(
      "UPDATE emp SET salary = salary * 2, dept = 'all' WHERE name = 'bob'"));
  auto rs = db_.Query("SELECT dept, salary FROM emp WHERE name = 'bob'");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs.value().NumRows(), 1u);
  EXPECT_EQ(rs.value().rows[0][0], Value::String("all"));
  EXPECT_EQ(rs.value().rows[0][1], Value::Int(40));
}

TEST_F(DmlTest, UpdateOntoExistingRowMerges) {
  // Set semantics: making bob's row identical to cat's leaves one copy.
  ASSERT_OK(db_.Execute(
      "UPDATE emp SET name = 'cat', salary = 30 WHERE name = 'bob'"));
  EXPECT_EQ(Count(), 3u);
}

TEST_F(DmlTest, UpdateUnknownColumnFails) {
  EXPECT_FALSE(db_.Execute("UPDATE emp SET nope = 1").ok());
}

TEST_F(DmlTest, ReinsertAfterDeleteResurrectsRowId) {
  auto table = db_.catalog().GetTable("emp");
  ASSERT_OK(table.status());
  Row bob{Value::String("bob"), Value::String("eng"), Value::Int(20)};
  std::optional<RowId> before = table.value()->Find(bob);
  ASSERT_TRUE(before.has_value());
  ASSERT_OK(db_.Execute("DELETE FROM emp WHERE name = 'bob'"));
  EXPECT_FALSE(table.value()->Find(bob).has_value());
  ASSERT_OK(db_.Execute("INSERT INTO emp VALUES ('bob', 'eng', 20)"));
  std::optional<RowId> after = table.value()->Find(bob);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(before->row, after->row);
  EXPECT_EQ(Count(), 4u);
}

TEST_F(DmlTest, TombstonesInvisibleEverywhere) {
  ASSERT_OK(db_.Execute(
      "CREATE CONSTRAINT fd FD ON emp (name -> salary);"
      "INSERT INTO emp VALUES ('ann', 'ops', 11)"));  // conflicts with ann/10
  auto g1 = db_.Hypergraph();
  ASSERT_OK(g1.status());
  EXPECT_EQ(g1.value()->NumEdges(), 1u);
  // Deleting one side of the conflict clears it from a fresh detection.
  ASSERT_OK(db_.Execute("DELETE FROM emp WHERE dept = 'ops'"));
  auto g2 = db_.Hypergraph();
  ASSERT_OK(g2.status());
  EXPECT_EQ(g2.value()->NumEdges(), 0u);
  auto consistent = db_.IsConsistent();
  ASSERT_OK(consistent.status());
  EXPECT_TRUE(consistent.value());
}

TEST_F(DmlTest, DeleteRowProgrammatic) {
  ASSERT_OK(db_.DeleteRow(
      "emp", Row{Value::String("ann"), Value::String("sales"),
                 Value::Int(10)}));
  EXPECT_EQ(Count(), 3u);
  // Values are coerced like Insert: a double 40.0 matches INTEGER 40.
  ASSERT_OK(db_.DeleteRow(
      "emp", Row{Value::String("dan"), Value::String("hr"),
                 Value::Double(40.0)}));
  EXPECT_EQ(Count(), 2u);
  // Absent row: no-op.
  ASSERT_OK(db_.DeleteRow(
      "emp", Row{Value::String("zed"), Value::String("hr"),
                 Value::Int(1)}));
  EXPECT_EQ(Count(), 2u);
}

TEST_F(DmlTest, AggregatesSkipTombstones) {
  ASSERT_OK(db_.Execute("CREATE CONSTRAINT fd FD ON emp (name -> salary)"));
  ASSERT_OK(db_.Execute("DELETE FROM emp WHERE salary >= 30"));
  auto range = db_.RangeConsistentAggregate("emp", cqa::AggFn::kSum, "salary");
  ASSERT_OK(range.status());
  EXPECT_EQ(range.value().glb, Value::Int(30));
  EXPECT_EQ(range.value().lub, Value::Int(30));
}

TEST_F(DmlTest, CqaAfterUpdateMatchesAllRepairs) {
  ASSERT_OK(db_.Execute("CREATE CONSTRAINT fd FD ON emp (name -> salary)"));
  ASSERT_OK(db_.Execute(
      "INSERT INTO emp VALUES ('ann', 'ops', 11), ('bob', 'ops', 21)"));
  ASSERT_OK(db_.Execute("UPDATE emp SET salary = 20 WHERE name = 'bob'"));
  auto hippo = db_.ConsistentAnswers("SELECT * FROM emp");
  auto exact = db_.ConsistentAnswersAllRepairs("SELECT * FROM emp");
  ASSERT_OK(hippo.status());
  ASSERT_OK(exact.status());
  EXPECT_EQ(SortedRows(hippo.value()), SortedRows(exact.value()));
  // bob/eng is now consistently salary=20 (merged with the existing row).
  EXPECT_TRUE(hippo.value().Contains(
      Row{Value::String("bob"), Value::String("eng"), Value::Int(20)}));
}

// --- Table-level tombstone unit tests --------------------------------------

TEST(TableTombstoneTest, DeleteAndCounts) {
  Schema schema;
  schema.AddColumn(Column("a", TypeId::kInt));
  Table t(7, "t", schema);
  auto r0 = t.Insert(Row{Value::Int(1)});
  auto r1 = t.Insert(Row{Value::Int(2)});
  ASSERT_OK(r0.status());
  ASSERT_OK(r1.status());
  EXPECT_EQ(t.NumLiveRows(), 2u);
  EXPECT_EQ(t.NumRows(), 2u);

  EXPECT_TRUE(t.Delete(r0.value().first.row));
  EXPECT_EQ(t.NumLiveRows(), 1u);
  EXPECT_EQ(t.NumRows(), 2u);  // slot retained
  EXPECT_FALSE(t.IsLive(r0.value().first.row));
  EXPECT_TRUE(t.IsLive(r1.value().first.row));

  // Double delete and out-of-range are no-ops.
  EXPECT_FALSE(t.Delete(r0.value().first.row));
  EXPECT_FALSE(t.Delete(999));
  EXPECT_EQ(t.NumLiveRows(), 1u);
}

TEST(TableTombstoneTest, ResurrectionKeepsRowIdAndReportsChange) {
  Schema schema;
  schema.AddColumn(Column("a", TypeId::kInt));
  Table t(7, "t", schema);
  auto first = t.Insert(Row{Value::Int(5)});
  ASSERT_OK(first.status());
  EXPECT_TRUE(first.value().second);

  // Duplicate insert of a live row: no change.
  auto dup = t.Insert(Row{Value::Int(5)});
  ASSERT_OK(dup.status());
  EXPECT_FALSE(dup.value().second);

  ASSERT_TRUE(t.Delete(first.value().first.row));
  auto again = t.Insert(Row{Value::Int(5)});
  ASSERT_OK(again.status());
  EXPECT_TRUE(again.value().second);  // the instance changed
  EXPECT_EQ(again.value().first.row, first.value().first.row);
  EXPECT_EQ(t.NumRows(), 1u);  // no new slot
}

}  // namespace
}  // namespace hippo
