// Shared gtest helpers.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/status.h"
#include "exec/executor.h"
#include "types/value.h"

#define ASSERT_OK(expr) ASSERT_TRUE((expr).ok()) << (expr).ToString()
#define EXPECT_OK(expr) EXPECT_TRUE((expr).ok()) << (expr).ToString()

namespace hippo {

/// Rows of a result set sorted under the Value total order (for
/// order-insensitive comparisons).
inline std::vector<Row> SortedRows(const ResultSet& rs) {
  std::vector<Row> rows = rs.rows;
  std::sort(rows.begin(), rows.end(), RowLess);
  return rows;
}

inline std::vector<Row> SortedRows(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), RowLess);
  return rows;
}

}  // namespace hippo
