// Shared gtest helpers.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/status.h"
#include "exec/executor.h"
#include "types/value.h"

namespace hippo::test_internal {

/// Adapts any status-like value (`.ok()` + `.ToString()`) to a gtest
/// AssertionResult, so the OK macros evaluate their argument exactly once
/// (side-effecting expressions like `db.Execute(...)` must not re-run when
/// the assertion renders its message).
template <typename StatusLike>
::testing::AssertionResult IsOk(const StatusLike& status) {
  if (status.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << status.ToString();
}

}  // namespace hippo::test_internal

#define ASSERT_OK(expr) ASSERT_TRUE(::hippo::test_internal::IsOk((expr)))
#define EXPECT_OK(expr) EXPECT_TRUE(::hippo::test_internal::IsOk((expr)))

namespace hippo {

/// Rows of a result set sorted under the Value total order (for
/// order-insensitive comparisons).
inline std::vector<Row> SortedRows(const ResultSet& rs) {
  std::vector<Row> rows = rs.rows;
  std::sort(rows.begin(), rows.end(), RowLess);
  return rows;
}

inline std::vector<Row> SortedRows(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), RowLess);
  return rows;
}

}  // namespace hippo
