// Planner tests: plan shapes, binding, schema derivation, SJUD
// classification.
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "plan/planner.h"
#include "plan/sjud.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema rs;
    rs.AddColumn(Column("a", TypeId::kInt));
    rs.AddColumn(Column("b", TypeId::kInt));
    ASSERT_OK(catalog_.CreateTable("r", rs).status());
    ASSERT_OK(catalog_.CreateTable("s", rs).status());
    Schema ts;
    ts.AddColumn(Column("x", TypeId::kInt));
    ts.AddColumn(Column("y", TypeId::kString));
    ASSERT_OK(catalog_.CreateTable("t", ts).status());
  }

  PlanNodePtr Plan(const std::string& text) {
    auto stmt = sql::ParseStatement(text);
    EXPECT_OK(stmt.status()) << text;
    auto& sel = std::get<sql::SelectStmt>(stmt.value().node);
    Planner planner(catalog_);
    auto plan = planner.PlanSelect(sel);
    EXPECT_OK(plan.status()) << text;
    return std::move(plan).value();
  }

  Status PlanError(const std::string& text) {
    auto stmt = sql::ParseStatement(text);
    if (!stmt.ok()) return stmt.status();
    auto* sel = std::get_if<sql::SelectStmt>(&stmt.value().node);
    if (sel == nullptr) return Status::InvalidArgument("not a select");
    Planner planner(catalog_);
    return planner.PlanSelect(*sel).status();
  }

  Catalog catalog_;
};

TEST_F(PlannerTest, SimpleScanProject) {
  PlanNodePtr p = Plan("SELECT * FROM r");
  ASSERT_EQ(p->kind(), PlanKind::kProject);
  EXPECT_EQ(p->child(0).kind(), PlanKind::kScan);
  EXPECT_EQ(p->schema().NumColumns(), 2u);
  EXPECT_EQ(p->schema().column(0).name, "a");
}

TEST_F(PlannerTest, WherePushedBelowProject) {
  PlanNodePtr p = Plan("SELECT * FROM r WHERE a = 1");
  ASSERT_EQ(p->kind(), PlanKind::kProject);
  EXPECT_EQ(p->child(0).kind(), PlanKind::kFilter);
  EXPECT_EQ(p->child(0).child(0).kind(), PlanKind::kScan);
}

TEST_F(PlannerTest, EquiJoinBecomesJoinNode) {
  PlanNodePtr p = Plan("SELECT * FROM r, s WHERE r.a = s.a");
  ASSERT_EQ(p->kind(), PlanKind::kProject);
  const PlanNode& join = p->child(0);
  ASSERT_EQ(join.kind(), PlanKind::kJoin);
  EXPECT_EQ(join.child(0).kind(), PlanKind::kScan);
  EXPECT_EQ(join.child(1).kind(), PlanKind::kScan);
  EXPECT_EQ(join.schema().NumColumns(), 4u);
}

TEST_F(PlannerTest, SingleAtomConjunctsPushedToScans) {
  PlanNodePtr p =
      Plan("SELECT * FROM r, s WHERE r.a = s.a AND r.b < 5 AND s.b > 2");
  const PlanNode& join = p->child(0);
  ASSERT_EQ(join.kind(), PlanKind::kJoin);
  EXPECT_EQ(join.child(0).kind(), PlanKind::kFilter);  // r.b < 5
  EXPECT_EQ(join.child(1).kind(), PlanKind::kFilter);  // s.b > 2
}

TEST_F(PlannerTest, CartesianProductWithoutCondition) {
  PlanNodePtr p = Plan("SELECT * FROM r, s");
  EXPECT_EQ(p->child(0).kind(), PlanKind::kProduct);
}

TEST_F(PlannerTest, ThreeWayJoinIsLeftDeep) {
  PlanNodePtr p = Plan(
      "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.x");
  const PlanNode& top = p->child(0);
  ASSERT_EQ(top.kind(), PlanKind::kJoin);      // joins t
  ASSERT_EQ(top.child(0).kind(), PlanKind::kJoin);  // joins r,s
  EXPECT_EQ(top.child(1).kind(), PlanKind::kScan);  // t
  EXPECT_EQ(top.schema().NumColumns(), 6u);
}

TEST_F(PlannerTest, JoinOnSyntax) {
  PlanNodePtr p = Plan("SELECT * FROM r JOIN s ON r.a = s.a");
  EXPECT_EQ(p->child(0).kind(), PlanKind::kJoin);
}

TEST_F(PlannerTest, OnCannotReferenceLaterTables) {
  EXPECT_EQ(PlanError("SELECT * FROM r JOIN s ON r.a = t.x, t").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlannerTest, DuplicateAliasRejected) {
  EXPECT_EQ(PlanError("SELECT * FROM r, r").code(),
            StatusCode::kInvalidArgument);
  EXPECT_OK(PlanError("SELECT * FROM r, r AS r2"));
}

TEST_F(PlannerTest, SelfJoinWithAliases) {
  PlanNodePtr p =
      Plan("SELECT * FROM r x, r y WHERE x.a = y.a AND x.b <> y.b");
  const PlanNode& join = p->child(0);
  ASSERT_EQ(join.kind(), PlanKind::kJoin);
  EXPECT_EQ(join.schema().column(0).qualifier, "x");
  EXPECT_EQ(join.schema().column(2).qualifier, "y");
}

TEST_F(PlannerTest, StarQualifierExpansion) {
  PlanNodePtr p = Plan("SELECT s.*, r.a FROM r, s");
  EXPECT_EQ(p->schema().NumColumns(), 3u);
  EXPECT_EQ(p->schema().column(0).qualifier, "s");
  EXPECT_EQ(p->schema().column(2).qualifier, "r");
}

TEST_F(PlannerTest, ComputedColumnNaming) {
  PlanNodePtr p = Plan("SELECT a + b AS total, a + 1 FROM r");
  EXPECT_EQ(p->schema().column(0).name, "total");
  EXPECT_EQ(p->schema().column(1).name, "col2");
  EXPECT_EQ(p->schema().column(0).type, TypeId::kInt);
}

TEST_F(PlannerTest, UnionCompatibleSchemas) {
  PlanNodePtr p = Plan("SELECT * FROM r UNION SELECT * FROM s");
  EXPECT_EQ(p->kind(), PlanKind::kUnion);
  EXPECT_EQ(p->schema().column(0).qualifier, "");  // set op clears qualifiers
}

TEST_F(PlannerTest, UnionIncompatibleRejected) {
  EXPECT_EQ(PlanError("SELECT * FROM r UNION SELECT * FROM t").code(),
            StatusCode::kTypeError);
}

TEST_F(PlannerTest, ConstantWhereBecomesTopFilter) {
  PlanNodePtr p = Plan("SELECT * FROM r WHERE 1 = 0");
  ASSERT_EQ(p->kind(), PlanKind::kProject);
  EXPECT_EQ(p->child(0).kind(), PlanKind::kFilter);
}

TEST_F(PlannerTest, OrderByProducesSortRoot) {
  PlanNodePtr p = Plan("SELECT * FROM r ORDER BY b DESC");
  ASSERT_EQ(p->kind(), PlanKind::kSort);
  EXPECT_EQ(p->child(0).kind(), PlanKind::kProject);
}

TEST_F(PlannerTest, CrossAtomOrConditionStaysAtJoin) {
  // An OR spanning both atoms cannot be split; it must be a join condition
  // (executed as a nested-loop join).
  PlanNodePtr p = Plan("SELECT * FROM r, s WHERE r.a = s.a OR r.b = s.b");
  EXPECT_EQ(p->child(0).kind(), PlanKind::kJoin);
}

TEST_F(PlannerTest, UnknownTableAndColumn) {
  EXPECT_EQ(PlanError("SELECT * FROM nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(PlanError("SELECT zzz FROM r").code(), StatusCode::kNotFound);
  EXPECT_EQ(PlanError("SELECT * FROM r WHERE t.x = 1").code(),
            StatusCode::kNotFound);
}

TEST_F(PlannerTest, PlanToStringIsIndentedTree) {
  PlanNodePtr p = Plan("SELECT * FROM r, s WHERE r.a = s.a");
  std::string rendered = p->ToString();
  EXPECT_NE(rendered.find("Project"), std::string::npos);
  EXPECT_NE(rendered.find("Join"), std::string::npos);
  EXPECT_NE(rendered.find("Scan r"), std::string::npos);
}

TEST_F(PlannerTest, CloneIsDeep) {
  PlanNodePtr p = Plan("SELECT * FROM r, s WHERE r.a = s.a AND r.b < 3");
  PlanNodePtr c = p->Clone();
  EXPECT_EQ(c->ToString(), p->ToString());
  EXPECT_EQ(c->schema().NumColumns(), p->schema().NumColumns());
}

// --- SJUD classification -----------------------------------------------------

TEST_F(PlannerTest, SjudAcceptsSupportedClass) {
  EXPECT_OK(CheckSjudSupported(*Plan("SELECT * FROM r WHERE a < 3")));
  EXPECT_OK(CheckSjudSupported(*Plan("SELECT * FROM r, s WHERE r.a = s.a")));
  EXPECT_OK(CheckSjudSupported(
      *Plan("SELECT * FROM r UNION SELECT * FROM s")));
  EXPECT_OK(CheckSjudSupported(
      *Plan("SELECT * FROM r EXCEPT SELECT * FROM s")));
  EXPECT_OK(CheckSjudSupported(
      *Plan("SELECT * FROM r INTERSECT SELECT * FROM s")));
  EXPECT_OK(CheckSjudSupported(*Plan("SELECT b, a FROM r")));  // permutation
  EXPECT_OK(CheckSjudSupported(*Plan("SELECT a, b, a FROM r")));  // duplicate
  EXPECT_OK(CheckSjudSupported(*Plan("SELECT * FROM r ORDER BY a")));
}

TEST_F(PlannerTest, SjudRejectsNarrowingProjection) {
  Status st = CheckSjudSupported(*Plan("SELECT a FROM r"));
  EXPECT_EQ(st.code(), StatusCode::kNotSupported);
  EXPECT_NE(st.message().find("existential"), std::string::npos);
}

TEST_F(PlannerTest, SjudRejectsComputedColumns) {
  EXPECT_EQ(CheckSjudSupported(*Plan("SELECT a + 1, b, a FROM r")).code(),
            StatusCode::kNotSupported);
}

TEST_F(PlannerTest, SafeProjectionPredicate) {
  PlanNodePtr p = Plan("SELECT b, a FROM r");
  ASSERT_EQ(p->kind(), PlanKind::kProject);
  EXPECT_TRUE(IsSafeProjection(static_cast<const ProjectNode&>(*p)));
  PlanNodePtr q = Plan("SELECT b FROM r");
  EXPECT_FALSE(IsSafeProjection(static_cast<const ProjectNode&>(*q)));
}

TEST_F(PlannerTest, SafeProjectionAllowsDuplicateColumnRefs) {
  // Pins the documented duplicate-reference behavior: `a, a, b` covers
  // every input column (the coverage check is a set), so the projection is
  // a duplicating permutation — still safe, a result tuple determines its
  // base tuple. Dropping a column while duplicating another is still
  // narrowing and must stay rejected.
  PlanNodePtr dup = Plan("SELECT a, a, b FROM r");
  ASSERT_EQ(dup->kind(), PlanKind::kProject);
  EXPECT_TRUE(IsSafeProjection(static_cast<const ProjectNode&>(*dup)));
  PlanNodePtr narrow = Plan("SELECT a, a FROM r");
  ASSERT_EQ(narrow->kind(), PlanKind::kProject);
  EXPECT_FALSE(IsSafeProjection(static_cast<const ProjectNode&>(*narrow)));
  EXPECT_EQ(CheckSjudSupported(*narrow).code(), StatusCode::kNotSupported);
}

TEST_F(PlannerTest, SjudRejectsAggCallInPredicate) {
  // Predicate *kinds* are otherwise ignored by the classifier (any scalar
  // expression is evaluable per tuple); an aggregate call is the one kind
  // with no per-tuple meaning, and a hand-built plan smuggling one in must
  // be rejected rather than silently accepted.
  PlanNodePtr base = Plan("SELECT * FROM r");
  PlanNodePtr scan = base->kind() == PlanKind::kProject
                         ? base->child(0).Clone()
                         : base->Clone();
  ExprPtr agg = std::make_unique<AggCallExpr>(AggFunc::kCount, nullptr);
  auto filtered = std::make_unique<FilterNode>(scan->Clone(), std::move(agg));
  Status st = CheckSjudSupported(*filtered);
  EXPECT_EQ(st.code(), StatusCode::kNotSupported);
  EXPECT_NE(st.message().find("aggregate"), std::string::npos);

  ExprPtr agg2 = std::make_unique<AggCallExpr>(AggFunc::kCount, nullptr);
  auto joined = std::make_unique<JoinNode>(scan->Clone(), scan->Clone(),
                                           std::move(agg2));
  EXPECT_EQ(CheckSjudSupported(*joined).code(), StatusCode::kNotSupported);
}

}  // namespace
}  // namespace hippo
