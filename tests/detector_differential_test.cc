// Randomized differential battery for parallel sharded conflict detection.
//
// Three oracles are compared on seeded random schemas/instances:
//
//   1. a naive O(n^arity) reference detector (nested loops over live rows,
//      evaluating each denial constraint's condition on the combined row —
//      no join plans, no fast paths, no sharding);
//   2. serial ConflictDetector::DetectAll (num_threads = 1);
//   3. parallel DetectAll across thread counts {2, 4, 8} and shard_rows
//      settings down to 1 (which forces the FD fast path into one shard
//      per worker even on tiny tables).
//
// All three must produce set-equal hypergraphs including constraint
// provenance (CanonicalEdges compares canonical vertex sets AND the
// producing constraint index). A second battery fuzzes the FD fast path
// against the generic join path over NULL-heavy instances, pinning the
// NULL-determinant and NULL-rhs corners documented in detector.cc.
#include "detect/detector.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "db/database.h"
#include "expr/evaluator.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

using CanonicalEdgeList = std::vector<std::pair<std::vector<RowId>, uint32_t>>;

/// Naive reference: enumerate every assignment of live rows to the atoms
/// of every denial constraint (with repetition — a tuple may satisfy a
/// multi-atom constraint with itself; AddEdge collapses {t, t} to a unary
/// edge exactly like the executor's self-join does) and every child row of
/// every foreign key. Quadratic/cubic in the instance — only for tiny
/// inputs.
ConflictHypergraph NaiveDetect(
    const Catalog& catalog, const std::vector<DenialConstraint>& constraints,
    const std::vector<ForeignKeyConstraint>& foreign_keys) {
  ConflictHypergraph graph;
  for (size_t ci = 0; ci < constraints.size(); ++ci) {
    const DenialConstraint& dc = constraints[ci];
    // Odometer over one live-row index per atom.
    std::vector<std::vector<uint32_t>> live(dc.arity());
    for (size_t a = 0; a < dc.arity(); ++a) {
      const Table& t = catalog.table(dc.atoms()[a].table_id);
      for (uint32_t i = 0; i < t.NumRows(); ++i) {
        if (t.IsLive(i)) live[a].push_back(i);
      }
    }
    std::vector<size_t> pick(dc.arity(), 0);
    bool exhausted = false;
    for (size_t a = 0; a < dc.arity(); ++a) {
      if (live[a].empty()) exhausted = true;
    }
    while (!exhausted) {
      Row combined;
      std::vector<RowId> edge;
      for (size_t a = 0; a < dc.arity(); ++a) {
        const Table& t = catalog.table(dc.atoms()[a].table_id);
        const Row& r = t.row(live[a][pick[a]]);
        combined.insert(combined.end(), r.begin(), r.end());
        edge.push_back(RowId{dc.atoms()[a].table_id, live[a][pick[a]]});
      }
      if (dc.condition() == nullptr ||
          EvalPredicate(*dc.condition(), combined)) {
        graph.AddEdge(std::move(edge), static_cast<uint32_t>(ci));
      }
      size_t a = 0;
      for (; a < dc.arity(); ++a) {
        if (++pick[a] < live[a].size()) break;
        pick[a] = 0;
      }
      if (a == dc.arity()) exhausted = true;
    }
  }
  for (size_t fi = 0; fi < foreign_keys.size(); ++fi) {
    const ForeignKeyConstraint& fk = foreign_keys[fi];
    const Table& child = catalog.table(fk.child_table());
    const Table& parent = catalog.table(fk.parent_table());
    for (uint32_t c = 0; c < child.NumRows(); ++c) {
      if (!child.IsLive(c)) continue;
      // SQL equality: a NULL on either side never matches, so NULL-keyed
      // children are orphans regardless of the parent relation.
      bool has_parent = false;
      for (uint32_t p = 0; p < parent.NumRows() && !has_parent; ++p) {
        if (!parent.IsLive(p)) continue;
        bool match = true;
        for (size_t i = 0; i < fk.child_columns().size(); ++i) {
          const Value& cv = child.row(c)[fk.child_columns()[i]];
          const Value& pv = parent.row(p)[fk.parent_columns()[i]];
          if (cv.is_null() || pv.is_null() || !(cv == pv)) {
            match = false;
            break;
          }
        }
        has_parent = match;
      }
      if (!has_parent) {
        graph.AddEdge({RowId{fk.child_table(), c}},
                      static_cast<uint32_t>(constraints.size() + fi));
      }
    }
  }
  return graph;
}

CanonicalEdgeList DetectWith(Database* db, const DetectOptions& options) {
  ConflictDetector detector(db->catalog(), options);
  auto g = detector.DetectAll(db->constraints(), db->foreign_keys());
  EXPECT_OK(g.status());
  return g.ok() ? g.value().CanonicalEdges() : CanonicalEdgeList{};
}

Value MaybeNullInt(Rng* rng, double null_p, uint64_t domain) {
  if (rng->Chance(null_p)) return Value::Null();
  return Value::Int(static_cast<int64_t>(rng->Uniform(domain)));
}

/// Builds a random instance of a schema exercising every detection path:
/// an FD with a randomized multi-column determinant over `child`, an FD
/// over `other`, an exclusion constraint across the two, a unary CHECK
/// style constraint, a generic inequality-only constraint (product plan),
/// and a restricted foreign key into a constraint-free parent. Column
/// domains are tiny and NULL-seasoned so conflicts, shared-vertex-set
/// duplicates (exercising min-provenance merges) and NULL corners all
/// occur.
void BuildRandomScenario(Database* db, Rng* rng) {
  ASSERT_OK(db->Execute(
      "CREATE TABLE parent (k INTEGER);"
      "CREATE TABLE child (a INTEGER, b INTEGER, c INTEGER);"
      "CREATE TABLE other (a INTEGER, b INTEGER)"));

  // Randomized FD determinant on child: a -> b,c | a,b -> c | b -> a,c.
  static const char* kChildFds[] = {"(a -> b, c)", "(a, b -> c)",
                                    "(b -> a, c)"};
  ASSERT_OK(db->Execute(
      std::string("CREATE CONSTRAINT fd_child FD ON child ") +
      kChildFds[rng->Uniform(3)]));
  ASSERT_OK(db->Execute("CREATE CONSTRAINT fd_other FD ON other (a -> b)"));
  if (rng->Chance(0.75)) {
    ASSERT_OK(db->Execute(
        "CREATE CONSTRAINT excl EXCLUSION ON child (a), other (a)"));
  }
  if (rng->Chance(0.75)) {
    // Unary CHECK-style denial.
    ASSERT_OK(db->Execute(
        "CREATE CONSTRAINT pos DENIAL (child AS x WHERE x.c < 0)"));
  }
  if (rng->Chance(0.75)) {
    // Inequality-only: no equi-conjunct, so the generic path runs a
    // product plan; self-pairs are possible when b values collide.
    ASSERT_OK(db->Execute(
        "CREATE CONSTRAINT near DENIAL (other AS x, other AS y WHERE "
        "x.b < y.b AND y.b - x.b < 2)"));
  }
  ASSERT_OK(db->Execute(
      "CREATE CONSTRAINT fk FOREIGN KEY child (c) REFERENCES parent (k)"));

  size_t n_child = 12 + rng->Uniform(24);
  size_t n_other = 8 + rng->Uniform(16);
  size_t n_parent = 1 + rng->Uniform(4);
  for (size_t i = 0; i < n_parent; ++i) {
    ASSERT_OK(db->InsertRow(
        "parent", Row{Value::Int(static_cast<int64_t>(rng->Uniform(5)))}));
  }
  for (size_t i = 0; i < n_child; ++i) {
    // c doubles as FK key and CHECK subject: small ints, occasional
    // negatives, occasional NULLs.
    Value c = rng->Chance(0.15)
                  ? Value::Null()
                  : Value::Int(rng->UniformInt(-1, 5));
    ASSERT_OK(db->InsertRow(
        "child", Row{MaybeNullInt(rng, 0.15, 4), MaybeNullInt(rng, 0.15, 3),
                     std::move(c)}));
  }
  for (size_t i = 0; i < n_other; ++i) {
    ASSERT_OK(db->InsertRow(
        "other", Row{MaybeNullInt(rng, 0.15, 4), MaybeNullInt(rng, 0.15, 6)}));
  }
}

class DetectorDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DetectorDifferential, ParallelEqualsSerialEqualsNaive) {
  Rng rng(GetParam());
  Database db;
  BuildRandomScenario(&db, &rng);
  if (::testing::Test::HasFatalFailure()) return;

  CanonicalEdgeList naive =
      NaiveDetect(db.catalog(), db.constraints(), db.foreign_keys())
          .CanonicalEdges();
  DetectOptions serial;
  CanonicalEdgeList reference = DetectWith(&db, serial);
  EXPECT_EQ(reference, naive) << "serial DetectAll diverged from the naive "
                                 "reference detector";

  for (size_t threads : {2u, 4u, 8u}) {
    for (size_t shard_rows : {1u, 7u, 4096u}) {
      DetectOptions parallel;
      parallel.num_threads = threads;
      parallel.shard_rows = shard_rows;
      EXPECT_EQ(DetectWith(&db, parallel), reference)
          << "parallel detection diverged at " << threads << " threads, "
          << "shard_rows=" << shard_rows;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorDifferential,
                         ::testing::Values(1u, 7u, 42u, 101u, 2024u, 90210u));

// Parallel BulkLoad merges are deterministic at the edge-id level too: two
// parallel runs with different thread counts must agree edge by edge (id,
// vertex set, provenance), because BulkLoad orders insertions by canonical
// vertex set independently of the decomposition.
TEST(DetectorDeterminismTest, ParallelEdgeIdsIndependentOfThreadCount) {
  Rng rng(31337);
  Database db;
  BuildRandomScenario(&db, &rng);
  if (::testing::Test::HasFatalFailure()) return;

  auto detect_full = [&](size_t threads, size_t shard_rows) {
    DetectOptions opts;
    opts.num_threads = threads;
    opts.shard_rows = shard_rows;
    ConflictDetector detector(db.catalog(), opts);
    auto g = detector.DetectAll(db.constraints(), db.foreign_keys());
    EXPECT_OK(g.status());
    return std::move(g).value();
  };
  ConflictHypergraph base = detect_full(2, 1);
  for (size_t threads : {3u, 4u, 8u}) {
    ConflictHypergraph other = detect_full(threads, threads == 4 ? 5 : 1);
    ASSERT_EQ(base.NumEdgeSlots(), other.NumEdgeSlots());
    for (size_t e = 0; e < base.NumEdgeSlots(); ++e) {
      auto id = static_cast<ConflictHypergraph::EdgeId>(e);
      EXPECT_EQ(base.edge(id), other.edge(id));
      EXPECT_EQ(base.edge_constraint(id), other.edge_constraint(id));
    }
  }
}

// ---------------------------------------------------------------------------
// FD fast path vs generic join path fuzz, NULL corners included.
// ---------------------------------------------------------------------------

class FdPathFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FdPathFuzz, FastPathEqualsGenericPathUnderNulls) {
  Rng rng(GetParam());
  Database db;
  // Multi-column determinant AND multi-column dependent side, so both the
  // NULL-determinant rule (a NULL anywhere in the key kills the group) and
  // the NULL-rhs rule (NULL vs anything is not a difference) fire.
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER, c INTEGER, d INTEGER);"
      "CREATE CONSTRAINT fd FD ON t (a, b -> c, d)"));
  double null_p = 0.1 + 0.2 * rng.UniformDouble();
  size_t n = 20 + rng.Uniform(40);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_OK(db.InsertRow(
        "t", Row{MaybeNullInt(&rng, null_p, 3), MaybeNullInt(&rng, null_p, 3),
                 MaybeNullInt(&rng, null_p, 4),
                 MaybeNullInt(&rng, null_p, 4)}));
  }

  DetectOptions fast;
  DetectOptions generic;
  generic.use_fd_fast_path = false;
  CanonicalEdgeList want = DetectWith(&db, generic);
  EXPECT_EQ(DetectWith(&db, fast), want)
      << "FD fast path diverged from the generic join path";

  // The same instance through every parallel/shard configuration of both
  // paths (generic parallelizes at constraint granularity, fast by shards).
  for (size_t threads : {2u, 4u}) {
    for (size_t shard_rows : {1u, 8u}) {
      for (bool use_fast : {true, false}) {
        DetectOptions opts;
        opts.use_fd_fast_path = use_fast;
        opts.num_threads = threads;
        opts.shard_rows = shard_rows;
        EXPECT_EQ(DetectWith(&db, opts), want)
            << "diverged at fast=" << use_fast << " threads=" << threads
            << " shard_rows=" << shard_rows;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdPathFuzz,
                         ::testing::Values(3u, 17u, 99u, 4242u, 31415u,
                                           271828u));

// Deterministic pinning of the NULL corners (documented in detector.cc):
// a NULL determinant never groups; a NULL dependent value never witnesses
// a difference (`<>` is unknown), but two non-NULL differing values do,
// even when another dependent column is NULL on either side.
TEST(FdNullCornersTest, PinnedSemantics) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, c INTEGER, d INTEGER);"
      "CREATE CONSTRAINT fd FD ON t (a -> c, d);"
      // NULL determinants: never conflict, even with equal-NULL partners.
      "INSERT INTO t VALUES (NULL, 1, 1), (NULL, 2, 2);"
      // NULL rhs on one side only: not a violation.
      "INSERT INTO t VALUES (1, 1, NULL), (1, 1, 7);"
      // NULL in one rhs column but a real difference in the other: IS a
      // violation.
      "INSERT INTO t VALUES (2, 3, NULL), (2, 4, 5);"
      // NULL in the same rhs column on both sides, NULL vs value in the
      // other: not a violation (two distinct all-NULL-difference rows
      // cannot exist under set semantics — they would be equal).
      "INSERT INTO t VALUES (3, NULL, 1), (3, NULL, NULL)"));

  DetectOptions fast;
  DetectOptions generic;
  generic.use_fd_fast_path = false;
  CanonicalEdgeList fast_edges = DetectWith(&db, fast);
  EXPECT_EQ(fast_edges, DetectWith(&db, generic));
  ASSERT_EQ(fast_edges.size(), 1u);  // only the a=2 pair violates
  DetectOptions sharded;
  sharded.num_threads = 4;
  sharded.shard_rows = 1;
  EXPECT_EQ(DetectWith(&db, sharded), fast_edges);
}

// ---------------------------------------------------------------------------
// Intra-constraint partition sweep: probe-side partitioning of the generic
// join path and child partitioning of the FK anti-join.
// ---------------------------------------------------------------------------

/// One giant generic (non-FD) equi-join constraint over a skewed-large
/// table — the workload where all parallelism must come from probe-side
/// row-range partitioning — plus, under `with_satellites`, a couple of
/// tiny satellite constraints and an FK with a partitionable child side,
/// so the skewed mix (one giant + several small units) is covered too.
void BuildIntraPartitionScenario(Database* db, Rng* rng,
                                 bool with_satellites) {
  ASSERT_OK(db->Execute(
      "CREATE TABLE g (a INTEGER, b INTEGER);"
      // Equi-conjunct on a (hash probe) + inequality residual; NOT
      // FD-shaped, so the generic join path runs.
      "CREATE CONSTRAINT giant DENIAL (g AS x, g AS y WHERE "
      "x.a = y.a AND x.b < y.b - 1)"));
  size_t n = 150 + rng->Uniform(250);
  for (size_t i = 0; i < n; ++i) {
    // ~3 rows per key so most probes hit; b collisions keep the edge
    // count moderate.
    ASSERT_OK(db->InsertRow(
        "g", Row{MaybeNullInt(rng, 0.05, n / 3 + 1),
                 MaybeNullInt(rng, 0.05, 6)}));
  }
  if (!with_satellites) return;
  ASSERT_OK(db->Execute(
      "CREATE TABLE parent (k INTEGER);"
      "CREATE TABLE child (a INTEGER, b INTEGER);"
      "CREATE CONSTRAINT fd_child FD ON child (a -> b);"
      "CREATE CONSTRAINT tiny DENIAL (g AS x WHERE x.b < -5);"
      "CREATE CONSTRAINT fk FOREIGN KEY child (b) REFERENCES parent (k)"));
  for (size_t i = 0; i < 1 + rng->Uniform(3); ++i) {
    ASSERT_OK(db->InsertRow(
        "parent", Row{Value::Int(static_cast<int64_t>(rng->Uniform(4)))}));
  }
  // Child side is large relative to the parent so the FK anti-join's
  // probe side is worth partitioning in the sweep below.
  for (size_t i = 0; i < 60 + rng->Uniform(60); ++i) {
    ASSERT_OK(db->InsertRow(
        "child", Row{MaybeNullInt(rng, 0.1, 5),
                     MaybeNullInt(rng, 0.1, 6)}));
  }
}

class IntraPartitionSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(IntraPartitionSweep, PartitionedEqualsSerialAndNaive) {
  Rng rng(std::get<0>(GetParam()));
  Database db;
  BuildIntraPartitionScenario(&db, &rng, std::get<1>(GetParam()));
  if (::testing::Test::HasFatalFailure()) return;

  CanonicalEdgeList naive =
      NaiveDetect(db.catalog(), db.constraints(), db.foreign_keys())
          .CanonicalEdges();
  DetectOptions serial;
  CanonicalEdgeList reference = DetectWith(&db, serial);
  EXPECT_EQ(reference, naive)
      << "serial generic-join detection diverged from the naive reference";
  EXPECT_FALSE(reference.empty()) << "scenario generated no conflicts";

  // partition_rows = 1 forces one probe partition per worker even on the
  // test-sized tables; larger thresholds exercise the partial and
  // no-split plans. shard_rows stays large so FD satellites run unsharded
  // and scheduling interleaves unit kinds.
  for (size_t threads : {2u, 4u, 8u}) {
    for (size_t partition_rows : {1u, 7u, 64u, 4096u}) {
      DetectOptions opts;
      opts.num_threads = threads;
      opts.partition_rows = partition_rows;
      EXPECT_EQ(DetectWith(&db, opts), reference)
          << "partitioned detection diverged at " << threads
          << " threads, partition_rows=" << partition_rows;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, IntraPartitionSweep,
    ::testing::Combine(::testing::Values(5u, 23u, 77u, 443u, 60601u),
                       ::testing::Bool()));

// Edge-id determinism across intra-partition configs: every parallel
// decomposition — different thread counts, partition thresholds, FD shard
// thresholds — must agree edge by edge (id, vertex set, provenance),
// because BulkLoad orders insertion by canonical vertex set independently
// of the decomposition.
TEST(IntraPartitionDeterminismTest, EdgeIdsIndependentOfPartitioning) {
  Rng rng(8675309);
  Database db;
  BuildIntraPartitionScenario(&db, &rng, /*with_satellites=*/true);
  if (::testing::Test::HasFatalFailure()) return;

  auto detect_full = [&](size_t threads, size_t partition_rows,
                         size_t shard_rows) {
    DetectOptions opts;
    opts.num_threads = threads;
    opts.partition_rows = partition_rows;
    opts.shard_rows = shard_rows;
    ConflictDetector detector(db.catalog(), opts);
    auto g = detector.DetectAll(db.constraints(), db.foreign_keys());
    EXPECT_OK(g.status());
    return std::move(g).value();
  };
  ConflictHypergraph base = detect_full(2, 1, 1);
  EXPECT_GT(base.NumEdges(), 0u);
  for (auto [threads, partition_rows, shard_rows] :
       {std::tuple<size_t, size_t, size_t>{3, 7, 16},
        {4, 64, 1},
        {8, 1, 4096},
        {2, 4096, 4096}}) {
    ConflictHypergraph other =
        detect_full(threads, partition_rows, shard_rows);
    ASSERT_EQ(base.NumEdgeSlots(), other.NumEdgeSlots())
        << "threads=" << threads << " partition_rows=" << partition_rows;
    for (size_t e = 0; e < base.NumEdgeSlots(); ++e) {
      auto id = static_cast<ConflictHypergraph::EdgeId>(e);
      EXPECT_EQ(base.edge(id), other.edge(id));
      EXPECT_EQ(base.edge_constraint(id), other.edge_constraint(id));
    }
  }
}

// The partition planner actually splits (this pins the sweep above to the
// partitioned code path rather than vacuously passing on unsplit units),
// and tiny constraints below the threshold don't pay for partitioning.
TEST(IntraPartitionDeterminismTest, PlannerSplitsOnlyAboveThreshold) {
  Rng rng(1234);
  Database db;
  BuildIntraPartitionScenario(&db, &rng, /*with_satellites=*/true);
  if (::testing::Test::HasFatalFailure()) return;

  DetectOptions split;
  split.num_threads = 4;
  split.partition_rows = 1;
  ConflictDetector split_detector(db.catalog(), split);
  ASSERT_OK(split_detector.DetectAll(db.constraints(), db.foreign_keys())
                .status());
  EXPECT_GT(split_detector.stats().generic_partitions, 0u);
  EXPECT_GT(split_detector.stats().fk_partitions, 0u);

  DetectOptions unsplit;
  unsplit.num_threads = 4;
  unsplit.partition_rows = SIZE_MAX;
  ConflictDetector unsplit_detector(db.catalog(), unsplit);
  ASSERT_OK(unsplit_detector.DetectAll(db.constraints(), db.foreign_keys())
                .status());
  EXPECT_EQ(unsplit_detector.stats().generic_partitions, 0u);
  EXPECT_EQ(unsplit_detector.stats().fk_partitions, 0u);
}

}  // namespace
}  // namespace hippo
