// Structural-sharing (copy-on-write) snapshot publication tests:
//
//   * untouched tables and hypergraph partitions are pointer-shared across
//     epochs, and only the touched state is republished;
//   * pinned sessions are bit-for-bit unaffected by later commits;
//   * a randomized differential proves the COW representation equal to the
//     deep-clone baseline (Catalog::Clone + ConflictHypergraph::DeepCopy)
//     and to a serial oracle Database — answers, rows, edge ids, and
//     provenance — including retroactively for old epochs;
//   * concurrent readers on pinned epochs race a committing writer (this
//     file runs under the TSan CI lane together with the service suite).
#include <atomic>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/str_util.h"
#include "db/database.h"
#include "service/query_service.h"
#include "service/session.h"
#include "service/snapshot.h"
#include "test_util.h"

namespace hippo {
namespace {

using service::QueryService;
using service::ServiceOptions;
using service::Session;
using service::SnapshotPtr;

ServiceOptions SmallPool() {
  ServiceOptions options;
  options.num_workers = 2;
  return options;
}

/// Schema: kTables FD tables t0..tN plus an FK pair (emp -> dept).
constexpr size_t kFdTables = 4;

std::string MultiTableSchema() {
  std::string sql;
  for (size_t t = 0; t < kFdTables; ++t) {
    sql += StrFormat(
        "CREATE TABLE t%zu (a INTEGER, b INTEGER);"
        "CREATE CONSTRAINT fd%zu FD ON t%zu (a -> b);",
        t, t, t);
  }
  sql +=
      "CREATE TABLE dept (did INTEGER);"
      "CREATE TABLE emp (name VARCHAR, did INTEGER);"
      "CREATE CONSTRAINT fk FOREIGN KEY emp (did) REFERENCES dept (did)";
  return sql;
}

std::string SeedRows(size_t per_table, size_t conflict_every) {
  std::string sql;
  for (size_t t = 0; t < kFdTables; ++t) {
    for (size_t i = 0; i < per_table; ++i) {
      sql += StrFormat("INSERT INTO t%zu VALUES (%zu, %zu);", t, i, i);
      if (conflict_every != 0 && i % conflict_every == 0) {
        sql += StrFormat("INSERT INTO t%zu VALUES (%zu, %zu);", t, i, i + 1);
      }
    }
  }
  for (size_t i = 0; i < per_table / 2; ++i) {
    sql += StrFormat("INSERT INTO dept VALUES (%zu);", i);
  }
  for (size_t i = 0; i < per_table; ++i) {
    // Every other employee references a missing department (orphan edge).
    sql += StrFormat("INSERT INTO emp VALUES ('e%zu', %zu);", i, i);
  }
  return sql;
}

void ExpectGraphsIdentical(const ConflictHypergraph& a,
                           const ConflictHypergraph& b) {
  ASSERT_EQ(a.NumEdgeSlots(), b.NumEdgeSlots());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (ConflictHypergraph::EdgeId e = 0; e < a.NumEdgeSlots(); ++e) {
    ASSERT_EQ(a.EdgeAlive(e), b.EdgeAlive(e)) << "edge " << e;
    if (!a.EdgeAlive(e)) continue;
    ASSERT_EQ(a.edge(e), b.edge(e)) << "edge " << e;
    ASSERT_EQ(a.edge_constraint(e), b.edge_constraint(e)) << "edge " << e;
  }
}

void ExpectCatalogsIdentical(const Catalog& a, const Catalog& b) {
  ASSERT_EQ(a.NumTables(), b.NumTables());
  for (uint32_t t = 0; t < a.NumTables(); ++t) {
    const Table& ta = a.table(t);
    const Table& tb = b.table(t);
    ASSERT_EQ(ta.NumRows(), tb.NumRows()) << "table " << t;
    ASSERT_EQ(ta.NumLiveRows(), tb.NumLiveRows()) << "table " << t;
    for (uint32_t r = 0; r < ta.NumRows(); ++r) {
      ASSERT_EQ(ta.IsLive(r), tb.IsLive(r)) << "t" << t << "#" << r;
      ASSERT_EQ(ta.row(r), tb.row(r)) << "t" << t << "#" << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Structural sharing across epochs.
// ---------------------------------------------------------------------------

TEST(CowSharing, UntouchedTablesArePointerSharedAcrossEpochs) {
  QueryService service(SmallPool());
  ASSERT_OK(service.Commit(MultiTableSchema()));
  ASSERT_OK(service.Commit(SeedRows(64, 8)));

  SnapshotPtr before = service.snapshot();
  ASSERT_OK(service.Commit("INSERT INTO t0 VALUES (1, 777)"));
  SnapshotPtr after = service.snapshot();

  uint32_t touched =
      before->catalog().GetTable("t0").value()->id();
  size_t shared = 0;
  for (uint32_t t = 0; t < before->catalog().NumTables(); ++t) {
    if (t == touched) {
      EXPECT_NE(before->catalog().TableRef(t).get(),
                after->catalog().TableRef(t).get())
          << "the touched table must be republished";
    } else {
      EXPECT_EQ(before->catalog().TableRef(t).get(),
                after->catalog().TableRef(t).get())
          << "untouched table " << t << " must be shared";
      ++shared;
    }
  }
  EXPECT_EQ(shared, before->catalog().NumTables() - 1);

  // The marginal bytes of the 1-table epoch are a small fraction of the
  // full snapshot footprint (one table out of kFdTables + 2, plus dirty
  // hypergraph partitions).
  std::unordered_set<const void*> seen;
  before->CollectStorageIdentity(&seen);
  size_t marginal = after->AccumulateApproxBytes(&seen);
  size_t full = after->ApproxBytes();
  EXPECT_GT(marginal, 0u);
  EXPECT_LT(marginal, full / 2) << "a 1-table write republished too much";
}

TEST(CowSharing, NoOpDmlDoesNotRepublishTables) {
  QueryService service(SmallPool());
  ASSERT_OK(service.Commit(MultiTableSchema()));
  ASSERT_OK(service.Commit(SeedRows(32, 8)));

  SnapshotPtr before = service.snapshot();
  // None of these change a row — predicates match nothing, the INSERT is a
  // live duplicate (set-semantics no-op): the probes run on the const view
  // and must not copy-on-write (and then republish) any table.
  ASSERT_OK(service.Commit("DELETE FROM t0 WHERE a = 123456"));
  ASSERT_OK(service.Commit("UPDATE t1 SET b = 1 WHERE a = 123456"));
  ASSERT_OK(service.Commit("INSERT INTO t2 VALUES (1, 1)"));  // duplicate
  SnapshotPtr after = service.snapshot();

  for (uint32_t t = 0; t < before->catalog().NumTables(); ++t) {
    EXPECT_EQ(before->catalog().TableRef(t).get(),
              after->catalog().TableRef(t).get())
        << "no-op DML republished table " << t;
  }
}

TEST(CowSharing, UntouchedHypergraphPartitionsAreSharedAcrossEpochs) {
  QueryService service(SmallPool());
  ASSERT_OK(service.Commit(MultiTableSchema()));
  ASSERT_OK(service.Commit(SeedRows(64, 4)));

  SnapshotPtr before = service.snapshot();
  ASSERT_GT(before->hypergraph().NumEdges(), 0u);
  // A conflicting insert touches t0's partitions only.
  ASSERT_OK(service.Commit("INSERT INTO t0 VALUES (0, 555)"));
  SnapshotPtr after = service.snapshot();
  ASSERT_GT(after->hypergraph().NumEdges(),
            before->hypergraph().NumEdges());

  std::vector<const void*> prev = before->hypergraph().PartitionPointers();
  std::unordered_set<const void*> prev_set(prev.begin(), prev.end());
  size_t shared = 0;
  size_t total = 0;
  for (const void* p : after->hypergraph().PartitionPointers()) {
    ++total;
    if (prev_set.count(p)) ++shared;
  }
  EXPECT_GT(shared, 0u) << "no hypergraph partition was shared";
  EXPECT_LT(shared, total) << "dirty partitions must be republished";

  // Accumulated footprint of both epochs together is far below the sum of
  // their standalone footprints — the definition of structural sharing.
  std::unordered_set<const void*> seen;
  size_t combined = before->AccumulateApproxBytes(&seen);
  combined += after->AccumulateApproxBytes(&seen);
  EXPECT_LT(combined,
            before->ApproxBytes() + (after->ApproxBytes() * 3) / 4);
}

TEST(CowSharing, PinnedSessionsAreUnaffectedByLaterCommits) {
  QueryService service(SmallPool());
  ASSERT_OK(service.Commit(MultiTableSchema()));
  ASSERT_OK(service.Commit(SeedRows(32, 4)));

  Session session = service.OpenSession();
  auto pinned = session.ConsistentAnswers("SELECT * FROM t1");
  ASSERT_OK(pinned.status());
  auto pinned_plain = session.Query("SELECT * FROM emp");
  ASSERT_OK(pinned_plain.status());

  // Churn every table, including the ones the pinned queries touch.
  for (int round = 0; round < 8; ++round) {
    std::string script;
    for (size_t t = 0; t < kFdTables; ++t) {
      script += StrFormat("INSERT INTO t%zu VALUES (%d, %d);", t, round,
                          9000 + round);
    }
    script += StrFormat("DELETE FROM emp WHERE name = 'e%d';", round);
    ASSERT_OK(service.Commit(script));
  }

  auto again = session.ConsistentAnswers("SELECT * FROM t1");
  ASSERT_OK(again.status());
  EXPECT_EQ(again.value().rows, pinned.value().rows);
  auto again_plain = session.Query("SELECT * FROM emp");
  ASSERT_OK(again_plain.status());
  EXPECT_EQ(again_plain.value().rows, pinned_plain.value().rows);

  session.Refresh();
  auto refreshed = session.Query("SELECT * FROM emp");
  ASSERT_OK(refreshed.status());
  EXPECT_NE(refreshed.value().rows, pinned_plain.value().rows)
      << "refresh must observe the committed deletes";
}

// ---------------------------------------------------------------------------
// Randomized COW-vs-deep-clone differential. Every epoch's snapshot must be
// identical — rows, tombstones, edges, edge ids, provenance, answers — to
// (a) a deep clone of the master taken at the same instant and (b) a serial
// oracle Database that applied the same commit sequence. Old epochs are
// re-verified after later commits (immutability under sharing).
// ---------------------------------------------------------------------------

TEST(CowDifferential, RandomizedCowVsDeepCloneAndSerialOracle) {
  ServiceOptions options = SmallPool();
  QueryService service(options);

  // The oracle mirrors the master's exact maintenance lifecycle: same
  // detect options, incremental maintenance restored after every script.
  Database oracle;
  oracle.SetDetectOptions(options.detect);
  ASSERT_OK(oracle.EnableIncrementalMaintenance());

  auto commit_both = [&](const std::string& script) {
    Status served = service.Commit(script);
    ASSERT_OK(served);
    ASSERT_OK(oracle.Execute(script));
    ASSERT_OK(oracle.EnableIncrementalMaintenance());
  };

  commit_both(MultiTableSchema());
  commit_both(SeedRows(24, 6));

  const std::vector<std::string> queries = {
      "SELECT * FROM t0",
      "SELECT * FROM t1 WHERE b < 10",
      "SELECT * FROM t2 UNION SELECT * FROM t3",
      "SELECT * FROM emp",
  };

  struct Frozen {
    SnapshotPtr snapshot;
    Catalog deep_catalog;
    ConflictHypergraph deep_graph;
    std::vector<std::vector<Row>> answers;
  };
  std::vector<Frozen> history;

  Rng rng(20260729);
  for (int round = 0; round < 24; ++round) {
    // A small random churn script: conflicting inserts, deletes, updates,
    // FK parent/child churn; one round flips a constraint (DDL re-detect).
    std::string script;
    size_t t = rng.Uniform(kFdTables);
    switch (rng.Uniform(round == 12 ? 5 : 4)) {
      case 0:
        script = StrFormat("INSERT INTO t%zu VALUES (%llu, %llu)", t,
                           (unsigned long long)rng.Uniform(24),
                           (unsigned long long)(100 + rng.Uniform(50)));
        break;
      case 1:
        script = StrFormat("DELETE FROM t%zu WHERE a = %llu", t,
                           (unsigned long long)rng.Uniform(24));
        break;
      case 2:
        script = StrFormat("UPDATE t%zu SET b = %llu WHERE a = %llu", t,
                           (unsigned long long)rng.Uniform(200),
                           (unsigned long long)rng.Uniform(24));
        break;
      case 3:
        script = rng.Uniform(2) == 0
                     ? StrFormat("INSERT INTO dept VALUES (%llu)",
                                 (unsigned long long)rng.Uniform(24))
                     : StrFormat("DELETE FROM dept WHERE did = %llu",
                                 (unsigned long long)rng.Uniform(24));
        break;
      case 4:
        // Constraint DDL: drop + re-add one FD (forces a full re-detect on
        // both sides; edge ids must still agree).
        script = StrFormat(
            "DROP CONSTRAINT fd%zu;"
            "CREATE CONSTRAINT fd%zu FD ON t%zu (a -> b)",
            t, t, t);
        break;
    }
    commit_both(script);

    SnapshotPtr snap = service.snapshot();

    // (a) vs the serial oracle: state and edge ids.
    ASSERT_OK(oracle.Hypergraph().status());
    ExpectCatalogsIdentical(snap->catalog(), oracle.catalog());
    ExpectGraphsIdentical(snap->hypergraph(),
                          *oracle.Hypergraph().value());

    // (b) vs the deep-clone baseline captured from the snapshot itself.
    Frozen frozen{snap, snap->catalog().Clone(),
                  snap->hypergraph().DeepCopy(), {}};
    ExpectCatalogsIdentical(snap->catalog(), frozen.deep_catalog);
    ExpectGraphsIdentical(snap->hypergraph(), frozen.deep_graph);

    // (c) answers: snapshot == oracle, recorded for retro-checks.
    for (const std::string& q : queries) {
      auto served = snap->ConsistentAnswers(q);
      auto expected = oracle.ConsistentAnswers(q);
      ASSERT_OK(served.status());
      ASSERT_OK(expected.status());
      ASSERT_EQ(served.value().rows, expected.value().rows) << q;
      frozen.answers.push_back(served.value().rows);
    }
    history.push_back(std::move(frozen));

    // (d) retroactive immutability: a random older epoch still equals its
    // deep clone and still produces its recorded answers, despite every
    // commit since.
    const Frozen& old = history[rng.Uniform(history.size())];
    ExpectCatalogsIdentical(old.snapshot->catalog(), old.deep_catalog);
    ExpectGraphsIdentical(old.snapshot->hypergraph(), old.deep_graph);
    for (size_t q = 0; q < queries.size(); ++q) {
      auto replay = old.snapshot->ConsistentAnswers(queries[q]);
      ASSERT_OK(replay.status());
      ASSERT_EQ(replay.value().rows, old.answers[q])
          << "epoch " << old.snapshot->epoch() << " drifted: " << queries[q];
    }
  }
}

// ---------------------------------------------------------------------------
// TSan payload: readers on pinned epochs race a committing writer. Each
// reader asserts its pinned answers never change; the writer keeps cloning
// tables and hypergraph partitions underneath via the COW commit path.
// ---------------------------------------------------------------------------

TEST(CowConcurrency, PinnedReadersRaceCommittingWriter) {
  QueryService service(SmallPool());
  ASSERT_OK(service.Commit(MultiTableSchema()));
  ASSERT_OK(service.Commit(SeedRows(32, 4)));

  constexpr size_t kReaders = 3;
  constexpr int kReadsPerReader = 12;
  std::atomic<bool> done{false};
  std::atomic<size_t> failures{0};

  std::thread writer([&] {
    Rng rng(99);
    while (!done.load()) {
      size_t t = rng.Uniform(kFdTables);
      Status st = service.Commit(StrFormat(
          "INSERT INTO t%zu VALUES (%llu, %llu)", t,
          (unsigned long long)rng.Uniform(32),
          (unsigned long long)(500 + rng.Uniform(100))));
      if (!st.ok()) {
        ++failures;
        return;
      }
    }
  });

  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(1000 + r);
      for (int i = 0; i < kReadsPerReader; ++i) {
        Session session = service.OpenSession();
        std::string q =
            StrFormat("SELECT * FROM t%llu",
                      (unsigned long long)rng.Uniform(kFdTables));
        auto first = session.ConsistentAnswers(q);
        if (!first.ok()) {
          ++failures;
          return;
        }
        for (int k = 0; k < 3; ++k) {
          auto again = session.ConsistentAnswers(q);
          if (!again.ok() || again.value().rows != first.value().rows) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  done.store(true);
  writer.join();
  EXPECT_EQ(failures.load(), 0u);
}

}  // namespace
}  // namespace hippo
