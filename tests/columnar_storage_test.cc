// Tests for the columnar batch layer and the Table fixes that ride along
// with it: ColumnVector/ColumnBatch value fidelity (hash/equality/compare
// parity with Value), the lazily-materialized columnar view and its
// invalidation rules, Table::Find's probe coercion (mixed-type literals
// must locate canonical rows — previously a silent index miss), and the
// ApproxBytes accounting (index bucket array, SSO-aware strings, columnar
// view buffers).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "db/database.h"
#include "storage/column_batch.h"
#include "storage/table.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

Schema IntStrSchema() {
  Schema s;
  s.AddColumn(Column("a", TypeId::kInt));
  s.AddColumn(Column("b", TypeId::kString));
  return s;
}

// --- ColumnVector / ColumnBatch value fidelity ----------------------------

TEST(ColumnVectorTest, RoundTripsValuesOfEveryType) {
  std::vector<Value> values = {Value::Int(7), Value::Null(), Value::Int(-3)};
  ColumnVector ints = ColumnVector::FromValues(TypeId::kInt, values);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(ints.ValueAt(i), values[i]) << i;
    EXPECT_EQ(ints.HashAt(i), values[i].Hash()) << i;
  }
  EXPECT_TRUE(ints.IsNull(1));
  EXPECT_FALSE(ints.is_mixed());

  std::vector<Value> strs = {Value::String("x"), Value::String(""),
                             Value::Null()};
  ColumnVector sc = ColumnVector::FromValues(TypeId::kString, strs);
  for (size_t i = 0; i < strs.size(); ++i) {
    EXPECT_EQ(sc.ValueAt(i), strs[i]) << i;
    EXPECT_EQ(sc.HashAt(i), strs[i].Hash()) << i;
  }
}

TEST(ColumnVectorTest, TypeDefyingValueFlipsToMixedWithoutLosingData) {
  // An INT-declared column receiving a string must keep exact Values.
  ColumnVector col(TypeId::kInt);
  col.AppendValue(Value::Int(1));
  col.AppendValue(Value::String("rogue"));
  col.AppendValue(Value::Null());
  EXPECT_TRUE(col.is_mixed());
  EXPECT_EQ(col.ValueAt(0), Value::Int(1));
  EXPECT_EQ(col.ValueAt(1), Value::String("rogue"));
  EXPECT_TRUE(col.ValueAt(2).is_null());
  EXPECT_EQ(col.HashAt(1), Value::String("rogue").Hash());
}

TEST(ColumnVectorTest, EqualityAndCompareMatchValueSemantics) {
  ColumnVector ints = ColumnVector::FromValues(
      TypeId::kInt, {Value::Int(2), Value::Int(3), Value::Null()});
  ColumnVector dbls = ColumnVector::FromValues(
      TypeId::kDouble, {Value::Double(2.0), Value::Double(3.5), Value::Null()});
  // Int/double coercion, exactly like Value::operator==.
  EXPECT_TRUE(ints.EqualsAt(0, dbls, 0));
  EXPECT_FALSE(ints.EqualsAt(1, dbls, 1));
  // NULL == NULL under the identity semantics the row store uses.
  EXPECT_TRUE(ints.EqualsAt(2, dbls, 2));
  // Cross-engine hash parity: int 2 and double 2.0 must collide, as
  // Value::Hash guarantees (numerics hash by double value).
  EXPECT_EQ(ints.HashAt(0), dbls.HashAt(0));
  // Compare follows the Value total order (NULL sorts first).
  EXPECT_LT(ints.CompareAt(2, ints, 0), 0);
  EXPECT_GT(dbls.CompareAt(1, ints, 1), 0);
}

TEST(ColumnBatchTest, FromRowsToRowsRoundTripAndSelection) {
  std::vector<Row> rows = {
      {Value::Int(1), Value::String("a")},
      {Value::Null(), Value::String("b")},
      {Value::Int(3), Value::Null()},
  };
  ColumnBatch batch =
      ColumnBatch::FromRows(rows, {TypeId::kInt, TypeId::kString});
  EXPECT_EQ(batch.ToRows(), rows);
  EXPECT_EQ(batch.RowHashAt(1), HashRow(rows[1]));

  // Narrow composes selections over logical indexes.
  ColumnBatch tail = batch.Narrow({2u, 0u});
  ASSERT_EQ(tail.NumRows(), 2u);
  EXPECT_EQ(tail.RowAt(0), rows[2]);
  EXPECT_EQ(tail.RowAt(1), rows[0]);
  ColumnBatch one = tail.Narrow({1u});
  ASSERT_EQ(one.NumRows(), 1u);
  EXPECT_EQ(one.RowAt(0), rows[0]);
}

// --- Table columnar view --------------------------------------------------

TEST(TableColumnarViewTest, ViewImagesAllSlotsAndIsCachedUntilNewSlot) {
  Table t(0, "t", IntStrSchema());
  ASSERT_OK(t.Insert({Value::Int(1), Value::String("x")}).status());
  ASSERT_OK(t.Insert({Value::Int(2), Value::String("y")}).status());
  auto view = t.columnar();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->num_slots, 2u);
  EXPECT_EQ(view->columns[0]->IntAt(1), 2);
  EXPECT_EQ(view->rowids->IntAt(1), 1);
  // Cached: same object until a write that adds a slot.
  EXPECT_EQ(t.columnar().get(), view.get());

  // Tombstoning keeps the view valid (liveness is a per-scan selection)...
  ASSERT_TRUE(t.Delete(0));
  EXPECT_EQ(t.columnar().get(), view.get());
  // ...and so does resurrecting the same row (same slot, same values).
  auto rid = t.Insert({Value::Int(1), Value::String("x")});
  ASSERT_OK(rid.status());
  EXPECT_EQ(rid.value().first.row, 0u);
  EXPECT_TRUE(rid.value().second);
  EXPECT_EQ(t.columnar().get(), view.get());

  // A genuinely new row appends a slot: the view must be rebuilt.
  ASSERT_OK(t.Insert({Value::Int(9), Value::String("z")}).status());
  auto rebuilt = t.columnar();
  EXPECT_NE(rebuilt.get(), view.get());
  EXPECT_EQ(rebuilt->num_slots, 3u);
}

TEST(TableColumnarViewTest, CopySharesTheMemoizedView) {
  Table t(0, "t", IntStrSchema());
  ASSERT_OK(t.Insert({Value::Int(1), Value::String("x")}).status());
  auto view = t.columnar();
  Table copy(t);  // the snapshot path: make_shared<Table>(*slot.table)
  EXPECT_EQ(copy.columnar().get(), view.get());
}

// --- Table::Find probe coercion (the row-probe bugfix) --------------------

TEST(TableFindTest, CoercesProbeToCanonicalFormBeforeIndexLookup) {
  Table t(0, "t", IntStrSchema());
  ASSERT_OK(t.Insert({Value::Int(2), Value::String("x")}).status());

  // Canonical probe: found.
  ASSERT_TRUE(t.Find({Value::Int(2), Value::String("x")}).has_value());
  // Double literal against the INT column: the index stores Int(2), so an
  // uncoerced probe hashes differently and used to miss silently.
  auto hit = t.Find({Value::Double(2.0), Value::String("x")});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->row, 0u);
  // Uncoercible and wrong-arity probes are misses, never errors.
  EXPECT_FALSE(t.Find({Value::String("2"), Value::String("x")}).has_value());
  EXPECT_FALSE(t.Find({Value::Int(2)}).has_value());
  // Dead rows stay invisible through the coerced path too.
  ASSERT_TRUE(t.Delete(0));
  EXPECT_FALSE(t.Find({Value::Double(2.0), Value::String("x")}).has_value());
}

TEST(TableFindTest, DeleteWithMixedTypeLiteralActuallyDeletes) {
  // End-to-end regression: DELETE with a double literal on an INT column
  // was a silent no-op (Find missed, nothing matched).
  Database db;
  ASSERT_OK(db.Execute("CREATE TABLE w (a INTEGER, b INTEGER)"));
  ASSERT_OK(db.Execute("INSERT INTO w VALUES (2, 5)"));
  ASSERT_OK(db.Execute("DELETE FROM w WHERE a = 2.0"));
  auto rs = db.Query("SELECT * FROM w");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 0u);
}

// --- ApproxBytes accounting ----------------------------------------------

TEST(TableApproxBytesTest, CountsIndexBucketsStringsAndColumnarView) {
  Table t(0, "t", IntStrSchema());
  size_t empty = t.ApproxBytes();
  // The hash index's bucket array exists even before any insert.
  EXPECT_GT(empty, 0u);

  // Long (heap-allocated) strings must dominate short (SSO) ones.
  Table sso(1, "sso", IntStrSchema());
  Table heap(2, "heap", IntStrSchema());
  for (int i = 0; i < 64; ++i) {
    ASSERT_OK(sso.Insert({Value::Int(i), Value::String("ab")}).status());
    ASSERT_OK(heap.Insert({Value::Int(i),
                           Value::String(std::string(128, 'x') +
                                         std::to_string(i))})
                  .status());
  }
  EXPECT_GT(sso.ApproxBytes(), empty);
  EXPECT_GT(heap.ApproxBytes(), sso.ApproxBytes() + 64 * 100);

  // Materializing the columnar view grows the footprint, and the growth is
  // accounted.
  size_t before_view = heap.ApproxBytes();
  auto view = heap.columnar();
  EXPECT_GE(heap.ApproxBytes(), before_view + view->ApproxBytes());
}

}  // namespace
}  // namespace hippo
