// HippoEngine tests: pipeline behavior, both membership modes, filtering,
// and instrumentation.
#include "cqa/engine.h"

#include <gtest/gtest.h>

#include "cqa/knowledge.h"
#include "db/database.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

using cqa::HippoOptions;
using cqa::HippoStats;

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.Execute(
        "CREATE TABLE r (a INTEGER, b INTEGER);"
        "CREATE TABLE s (a INTEGER, b INTEGER);"
        "INSERT INTO r VALUES (1, 10), (1, 11), (2, 20), (3, 30);"
        "INSERT INTO s VALUES (2, 20), (4, 40), (4, 41);"
        "CREATE CONSTRAINT fd_r FD ON r (a -> b);"
        "CREATE CONSTRAINT fd_s FD ON s (a -> b)"));
  }

  ResultSet Answers(const std::string& q, HippoOptions options,
                    HippoStats* stats = nullptr) {
    auto rs = db_.ConsistentAnswers(q, options, stats);
    EXPECT_OK(rs.status()) << q;
    return std::move(rs).value();
  }

  Database db_;
};

TEST_F(EngineTest, ModesAgreeOnAllQueryShapes) {
  const char* queries[] = {
      "SELECT * FROM r",
      "SELECT * FROM r WHERE b < 25",
      "SELECT * FROM r, s WHERE r.a = s.a",
      "SELECT * FROM r UNION SELECT * FROM s",
      "SELECT * FROM r EXCEPT SELECT * FROM s",
      "SELECT * FROM r INTERSECT SELECT * FROM s",
      "(SELECT * FROM r EXCEPT SELECT * FROM s) UNION "
      "(SELECT * FROM s EXCEPT SELECT * FROM r)",
  };
  for (const char* q : queries) {
    HippoOptions kg;
    kg.membership = HippoOptions::MembershipMode::kKnowledgeGathering;
    HippoOptions base;
    base.membership = HippoOptions::MembershipMode::kQuery;
    HippoOptions nofilter = kg;
    nofilter.use_filtering = false;
    ResultSet a = Answers(q, kg);
    ResultSet b = Answers(q, base);
    ResultSet c = Answers(q, nofilter);
    EXPECT_EQ(SortedRows(a), SortedRows(b)) << q;
    EXPECT_EQ(SortedRows(a), SortedRows(c)) << q;
    // And both match exact all-repairs evaluation.
    auto exact = db_.ConsistentAnswersAllRepairs(q);
    ASSERT_OK(exact.status());
    EXPECT_EQ(SortedRows(a), SortedRows(exact.value())) << q;
  }
}

TEST_F(EngineTest, KnowledgeGatheringIssuesNoQueries) {
  HippoStats stats;
  HippoOptions kg;
  kg.membership = HippoOptions::MembershipMode::kKnowledgeGathering;
  kg.use_filtering = false;
  Answers("SELECT * FROM r EXCEPT SELECT * FROM s", kg, &stats);
  EXPECT_GT(stats.membership_checks, 0u);  // lookups happen, via index
  HippoStats base_stats;
  HippoOptions base = kg;
  base.membership = HippoOptions::MembershipMode::kQuery;
  Answers("SELECT * FROM r EXCEPT SELECT * FROM s", base, &base_stats);
  // Same number of membership checks, but the base mode issued them as
  // engine queries (checked indirectly: results equal, checks equal).
  EXPECT_EQ(stats.membership_checks, base_stats.membership_checks);
}

TEST_F(EngineTest, FilteringShortcutsConflictFreeCandidates) {
  HippoStats with;
  HippoOptions opt;
  opt.route = RouteMode::kForceProver;  // shortcut stats are prover-only
  opt.use_filtering = true;
  Answers("SELECT * FROM r", opt, &with);
  EXPECT_GT(with.filtered_shortcuts, 0u);
  // (2,20) and (3,30) are conflict-free: shortcut; the (1,·) pair needs
  // the prover.
  EXPECT_EQ(with.filtered_shortcuts, 2u);
  EXPECT_EQ(with.prover_invocations, 2u);

  HippoStats without;
  opt.use_filtering = false;
  Answers("SELECT * FROM r", opt, &without);
  EXPECT_EQ(without.filtered_shortcuts, 0u);
  EXPECT_EQ(without.prover_invocations, 4u);
}

TEST_F(EngineTest, CandidateAndAnswerCounts) {
  HippoStats stats;
  HippoOptions opt;
  opt.route = RouteMode::kForceProver;  // candidate stats are prover-only
  Answers("SELECT * FROM r", opt, &stats);
  EXPECT_EQ(stats.candidates, 4u);
  EXPECT_EQ(stats.answers, 2u);
}

TEST_F(EngineTest, EnvelopeLargerThanAnswerForDifference) {
  HippoStats stats;
  Answers("SELECT * FROM r EXCEPT SELECT * FROM s", HippoOptions(), &stats);
  EXPECT_EQ(stats.candidates, 4u);  // envelope = all of r
  // (1,·) uncertain, (2,20) suppressed by s everywhere; only (3,30) stays.
  EXPECT_EQ(stats.answers, 1u);
}

TEST_F(EngineTest, IsConsistentAnswerSingleTuple) {
  auto plan = db_.Plan("SELECT * FROM r");
  ASSERT_OK(plan.status());
  auto graph = db_.Hypergraph();
  ASSERT_OK(graph.status());
  cqa::HippoEngine engine(db_.catalog(), *graph.value());
  auto yes = engine.IsConsistentAnswer(
      *plan.value(), Row{Value::Int(2), Value::Int(20)}, HippoOptions());
  ASSERT_OK(yes.status());
  EXPECT_TRUE(yes.value());
  auto no = engine.IsConsistentAnswer(
      *plan.value(), Row{Value::Int(1), Value::Int(10)}, HippoOptions());
  ASSERT_OK(no.status());
  EXPECT_FALSE(no.value());
  auto absent = engine.IsConsistentAnswer(
      *plan.value(), Row{Value::Int(9), Value::Int(9)}, HippoOptions());
  ASSERT_OK(absent.status());
  EXPECT_FALSE(absent.value());
}

TEST_F(EngineTest, TimingBreakdownPopulated) {
  HippoStats stats;
  Answers("SELECT * FROM r, s WHERE r.a = s.a", HippoOptions(), &stats);
  EXPECT_GE(stats.total_seconds, 0.0);
  EXPECT_GE(stats.envelope_seconds, 0.0);
  EXPECT_GE(stats.prove_seconds, 0.0);
  EXPECT_LE(stats.envelope_seconds + stats.prove_seconds,
            stats.total_seconds + 1e-6);
}

TEST_F(EngineTest, RejectsUnsafePlans) {
  auto plan = db_.Plan("SELECT a FROM r");
  ASSERT_OK(plan.status());
  auto graph = db_.Hypergraph();
  ASSERT_OK(graph.status());
  cqa::HippoEngine engine(db_.catalog(), *graph.value());
  EXPECT_EQ(engine.ConsistentAnswers(*plan.value(), HippoOptions())
                .status()
                .code(),
            StatusCode::kNotSupported);
}

TEST_F(EngineTest, QueryTouchingOnlyConsistentRelationIsIdentity) {
  ASSERT_OK(db_.Execute(
      "CREATE TABLE clean (x INTEGER);"
      "INSERT INTO clean VALUES (1), (2), (3)"));
  ResultSet rs = Answers("SELECT * FROM clean", HippoOptions());
  EXPECT_EQ(rs.NumRows(), 3u);
}

TEST_F(EngineTest, MembershipProvidersAgree) {
  cqa::QueryMembershipProvider qp(db_.catalog());
  cqa::IndexMembershipProvider ip(db_.catalog());
  for (uint32_t t : {0u, 1u}) {
    const Table& table = db_.catalog().table(t);
    for (uint32_t i = 0; i < table.NumRows(); ++i) {
      auto a = qp.Lookup(t, table.row(i));
      auto b = ip.Lookup(t, table.row(i));
      ASSERT_OK(a.status());
      ASSERT_OK(b.status());
      EXPECT_EQ(a.value(), b.value());
    }
    Row missing{Value::Int(999), Value::Int(999)};
    EXPECT_FALSE(qp.Lookup(t, missing).value().has_value());
    EXPECT_FALSE(ip.Lookup(t, missing).value().has_value());
  }
  EXPECT_EQ(qp.NumLookups(), ip.NumLookups());
}

TEST_F(EngineTest, AllFactsConflictFreeWalksFormula) {
  auto graph = db_.Hypergraph();
  ASSERT_OK(graph.status());
  using cqa::GroundFormula;
  GroundFormula clean = GroundFormula::And(
      GroundFormula::Lit(RowId{0, 2}), GroundFormula::Lit(RowId{0, 3}));
  EXPECT_TRUE(cqa::AllFactsConflictFree(clean, *graph.value()));
  GroundFormula dirty = GroundFormula::Or(
      GroundFormula::Lit(RowId{0, 2}),
      GroundFormula::Not(GroundFormula::Lit(RowId{0, 0})));
  EXPECT_FALSE(cqa::AllFactsConflictFree(dirty, *graph.value()));
}

}  // namespace
}  // namespace hippo
