// Executor tests: each operator, hash-vs-nested-loop equivalence, masks.
#include "exec/executor.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/database.h"
#include "exec/operators.h"
#include "expr/binder.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.Execute(
        "CREATE TABLE r (a INTEGER, b INTEGER);"
        "CREATE TABLE s (a INTEGER, b INTEGER);"
        "INSERT INTO r VALUES (1,10),(2,20),(3,30),(4,40);"
        "INSERT INTO s VALUES (2,20),(3,33),(5,50)"));
  }

  ResultSet Run(const std::string& q) {
    auto rs = db_.Query(q);
    EXPECT_OK(rs.status()) << q;
    return std::move(rs).value();
  }

  Database db_;
};

TEST_F(ExecTest, ScanAll) {
  EXPECT_EQ(Run("SELECT * FROM r").NumRows(), 4u);
}

TEST_F(ExecTest, FilterComparisons) {
  EXPECT_EQ(Run("SELECT * FROM r WHERE a > 2").NumRows(), 2u);
  EXPECT_EQ(Run("SELECT * FROM r WHERE a >= 2 AND b <= 30").NumRows(), 2u);
  EXPECT_EQ(Run("SELECT * FROM r WHERE a = 1 OR a = 4").NumRows(), 2u);
  EXPECT_EQ(Run("SELECT * FROM r WHERE NOT (a = 1)").NumRows(), 3u);
}

TEST_F(ExecTest, ProjectionAndDedup) {
  // b%10=0 for all but (3,33); project b%10 -> duplicates collapse.
  ResultSet rs = Run("SELECT b % 10 FROM s");
  EXPECT_EQ(rs.NumRows(), 2u);  // {0, 3}
}

TEST_F(ExecTest, HashJoinOnEquality) {
  ResultSet rs = Run("SELECT * FROM r, s WHERE r.a = s.a");
  EXPECT_EQ(rs.NumRows(), 2u);
  EXPECT_TRUE(rs.Contains(Row{Value::Int(2), Value::Int(20), Value::Int(2),
                              Value::Int(20)}));
}

TEST_F(ExecTest, JoinWithResidualPredicate) {
  ResultSet rs = Run("SELECT * FROM r, s WHERE r.a = s.a AND r.b < s.b");
  EXPECT_EQ(rs.NumRows(), 1u);  // (3,30,3,33)
}

TEST_F(ExecTest, NestedLoopJoinOnInequality) {
  // Pairs with r.a < s.a: (1,2),(1,3),(1,5),(2,3),(2,5),(3,5),(4,5).
  ResultSet rs = Run("SELECT * FROM r, s WHERE r.a < s.a");
  EXPECT_EQ(rs.NumRows(), 7u);
}

TEST_F(ExecTest, CartesianProduct) {
  EXPECT_EQ(Run("SELECT * FROM r, s").NumRows(), 12u);
}

TEST_F(ExecTest, UnionDeduplicates) {
  EXPECT_EQ(Run("SELECT * FROM r UNION SELECT * FROM s").NumRows(), 6u);
  EXPECT_EQ(Run("SELECT * FROM r UNION SELECT * FROM r").NumRows(), 4u);
}

TEST_F(ExecTest, Difference) {
  ResultSet rs = Run("SELECT * FROM r EXCEPT SELECT * FROM s");
  EXPECT_EQ(rs.NumRows(), 3u);  // r minus (2,20)
  EXPECT_FALSE(rs.Contains(Row{Value::Int(2), Value::Int(20)}));
}

TEST_F(ExecTest, Intersect) {
  ResultSet rs = Run("SELECT * FROM r INTERSECT SELECT * FROM s");
  EXPECT_EQ(rs.NumRows(), 1u);
  EXPECT_TRUE(rs.Contains(Row{Value::Int(2), Value::Int(20)}));
}

TEST_F(ExecTest, SortAscDesc) {
  ResultSet rs = Run("SELECT * FROM r ORDER BY a DESC");
  ASSERT_EQ(rs.NumRows(), 4u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(4));
  EXPECT_EQ(rs.rows[3][0], Value::Int(1));
  ResultSet asc = Run("SELECT * FROM s ORDER BY b");
  EXPECT_EQ(asc.rows[0][1], Value::Int(20));
}

TEST_F(ExecTest, EmptyInputsFlowThrough) {
  ASSERT_OK(db_.Execute("CREATE TABLE e (a INTEGER, b INTEGER)"));
  EXPECT_EQ(Run("SELECT * FROM e").NumRows(), 0u);
  EXPECT_EQ(Run("SELECT * FROM e, r").NumRows(), 0u);
  EXPECT_EQ(Run("SELECT * FROM r EXCEPT SELECT * FROM e").NumRows(), 4u);
  EXPECT_EQ(Run("SELECT * FROM e UNION SELECT * FROM r").NumRows(), 4u);
  EXPECT_EQ(Run("SELECT * FROM e INTERSECT SELECT * FROM r").NumRows(), 0u);
}

TEST_F(ExecTest, NullJoinKeysNeverMatch) {
  ASSERT_OK(db_.Execute(
      "CREATE TABLE n1 (a INTEGER); CREATE TABLE n2 (a INTEGER);"
      "INSERT INTO n1 VALUES (NULL), (1); INSERT INTO n2 VALUES (NULL), (1)"));
  EXPECT_EQ(Run("SELECT * FROM n1, n2 WHERE n1.a = n2.a").NumRows(), 1u);
}

TEST_F(ExecTest, RowMaskHidesRows) {
  auto plan = db_.Plan("SELECT * FROM r");
  ASSERT_OK(plan.status());
  RowMask mask;
  mask.SetAllowed(0, {true, false, true, false});
  ExecContext ctx{&db_.catalog(), &mask};
  auto rs = Execute(*plan.value(), ctx);
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 2u);
}

TEST_F(ExecTest, ResultSetHelpers) {
  ResultSet rs = Run("SELECT * FROM r");
  EXPECT_TRUE(rs.Contains(Row{Value::Int(1), Value::Int(10)}));
  EXPECT_FALSE(rs.Contains(Row{Value::Int(9), Value::Int(9)}));
  rs.SortRows();
  EXPECT_EQ(rs.rows[0][0], Value::Int(1));
  std::string str = rs.ToString(2);
  EXPECT_NE(str.find("more"), std::string::npos);
}

// Property: hash join and nested-loop join agree on random inputs.
class JoinEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinEquivalence, HashEqualsNestedLoop) {
  Rng rng(GetParam());
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE l (a INTEGER, b INTEGER);"
      "CREATE TABLE r (a INTEGER, b INTEGER)"));
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK(db.InsertRow("l", Row{Value::Int(rng.UniformInt(0, 9)),
                                    Value::Int(rng.UniformInt(0, 9))}));
    ASSERT_OK(db.InsertRow("r", Row{Value::Int(rng.UniformInt(0, 9)),
                                    Value::Int(rng.UniformInt(0, 9))}));
  }
  // Equi-join (hash path)...
  auto hash_rs = db.Query("SELECT * FROM l, r WHERE l.a = r.a AND l.b <= r.b");
  ASSERT_OK(hash_rs.status());
  // ...same semantics phrased so no equi-pair is extractable (NL path):
  // l.a <= r.a AND l.a >= r.a  ⇔  l.a = r.a.
  auto nl_rs = db.Query(
      "SELECT * FROM l, r WHERE l.a <= r.a AND l.a >= r.a AND l.b <= r.b");
  ASSERT_OK(nl_rs.status());
  EXPECT_EQ(SortedRows(hash_rs.value()), SortedRows(nl_rs.value()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Property: set operations satisfy algebraic identities on random inputs.
class SetOpLaws : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SetOpLaws, IntersectionViaDoubleDifference) {
  Rng rng(GetParam());
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE x (a INTEGER); CREATE TABLE y (a INTEGER)"));
  for (int i = 0; i < 30; ++i) {
    ASSERT_OK(db.InsertRow("x", Row{Value::Int(rng.UniformInt(0, 14))}));
    ASSERT_OK(db.InsertRow("y", Row{Value::Int(rng.UniformInt(0, 14))}));
  }
  auto direct = db.Query("SELECT * FROM x INTERSECT SELECT * FROM y");
  auto derived = db.Query(
      "SELECT * FROM x EXCEPT (SELECT * FROM x EXCEPT SELECT * FROM y)");
  ASSERT_OK(direct.status());
  ASSERT_OK(derived.status());
  EXPECT_EQ(SortedRows(direct.value()), SortedRows(derived.value()));
}

TEST_P(SetOpLaws, UnionIdempotentAndCommutative) {
  Rng rng(GetParam() + 100);
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE x (a INTEGER); CREATE TABLE y (a INTEGER)"));
  for (int i = 0; i < 30; ++i) {
    ASSERT_OK(db.InsertRow("x", Row{Value::Int(rng.UniformInt(0, 14))}));
    ASSERT_OK(db.InsertRow("y", Row{Value::Int(rng.UniformInt(0, 14))}));
  }
  auto xy = db.Query("SELECT * FROM x UNION SELECT * FROM y");
  auto yx = db.Query("SELECT * FROM y UNION SELECT * FROM x");
  auto xx = db.Query("SELECT * FROM x UNION SELECT * FROM x");
  auto x = db.Query("SELECT * FROM x");
  ASSERT_OK(xy.status());
  EXPECT_EQ(SortedRows(xy.value()), SortedRows(yx.value()));
  EXPECT_EQ(SortedRows(xx.value()), SortedRows(x.value()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetOpLaws,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

TEST(OperatorsTest, DedupPreservesFirstOccurrenceOrder) {
  std::vector<Row> rows = {{Value::Int(2)}, {Value::Int(1)}, {Value::Int(2)},
                           {Value::Int(3)}, {Value::Int(1)}};
  std::vector<Row> out = exec::DedupRows(std::move(rows));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0][0], Value::Int(2));
  EXPECT_EQ(out[1][0], Value::Int(1));
  EXPECT_EQ(out[2][0], Value::Int(3));
}

TEST(OperatorsTest, AntiJoinKernel) {
  // left rows with no right partner under l0 = r0.
  std::vector<Row> left = {{Value::Int(1)}, {Value::Int(2)}, {Value::Int(3)}};
  std::vector<Row> right = {{Value::Int(2)}};
  auto cond = std::make_unique<ComparisonExpr>(
      CompareOp::kEq, ColumnRefExpr::Bound(0, TypeId::kInt),
      ColumnRefExpr::Bound(1, TypeId::kInt));
  cond->set_result_type(TypeId::kBool);
  std::vector<Row> out;
  exec::AntiJoinRows(left, right, *cond, 1, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0][0], Value::Int(1));
  EXPECT_EQ(out[1][0], Value::Int(3));
}

}  // namespace
}  // namespace hippo
