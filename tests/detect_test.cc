// Conflict-detection tests: generic join path, FD fast path, and their
// equivalence on random instances.
#include "detect/detector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "db/database.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

/// Canonical form of a hypergraph's edges for comparison.
std::set<std::vector<RowId>> EdgeSet(const ConflictHypergraph& g) {
  std::set<std::vector<RowId>> out;
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    out.insert(g.edge(static_cast<ConflictHypergraph::EdgeId>(e)));
  }
  return out;
}

TEST(DetectTest, FdViolationPairs) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 10), (1, 11), (1, 12), (2, 20);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  // Three mutually conflicting tuples -> 3 pairwise edges.
  EXPECT_EQ(g.value()->NumEdges(), 3u);
  EXPECT_EQ(g.value()->NumConflictingVertices(), 3u);
}

TEST(DetectTest, NoViolationsNoEdges) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 10), (2, 20);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  EXPECT_EQ(g.value()->NumEdges(), 0u);
}

TEST(DetectTest, NullDeterminantIsNotAViolation) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (NULL, 1), (NULL, 2);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  // SQL semantics: NULL = NULL is unknown, so no conflict.
  EXPECT_EQ(g.value()->NumEdges(), 0u);
}

TEST(DetectTest, NullDependentIsNotAViolation) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, NULL), (1, 2);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  // b <> NULL is unknown -> not a violation.
  EXPECT_EQ(g.value()->NumEdges(), 0u);
}

TEST(DetectTest, ExclusionAcrossTables) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE a (k INTEGER); CREATE TABLE b (k INTEGER);"
      "INSERT INTO a VALUES (1), (2), (3);"
      "INSERT INTO b VALUES (2), (3), (4);"
      "CREATE CONSTRAINT ex EXCLUSION ON a (k), b (k)"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  EXPECT_EQ(g.value()->NumEdges(), 2u);
  // Each edge spans both tables.
  for (size_t e = 0; e < g.value()->NumEdges(); ++e) {
    const auto& edge =
        g.value()->edge(static_cast<ConflictHypergraph::EdgeId>(e));
    ASSERT_EQ(edge.size(), 2u);
    EXPECT_NE(edge[0].table, edge[1].table);
  }
}

TEST(DetectTest, UnaryConstraintMakesUnaryEdges) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (v INTEGER);"
      "INSERT INTO t VALUES (-1), (2), (-3);"
      "CREATE CONSTRAINT pos DENIAL (t AS x WHERE x.v < 0)"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  EXPECT_EQ(g.value()->NumEdges(), 2u);
  for (size_t e = 0; e < g.value()->NumEdges(); ++e) {
    EXPECT_EQ(
        g.value()->edge(static_cast<ConflictHypergraph::EdgeId>(e)).size(),
        1u);
  }
}

TEST(DetectTest, ThreeAtomDenial) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (k INTEGER, v INTEGER);"
      "INSERT INTO t VALUES (1, 1), (1, 2), (1, 3), (2, 1);"
      // No three tuples may share a key.
      "CREATE CONSTRAINT trip DENIAL (t AS x, t AS y, t AS z WHERE "
      "x.k = y.k AND y.k = z.k AND x.v < y.v AND y.v < z.v)"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  ASSERT_EQ(g.value()->NumEdges(), 1u);
  EXPECT_EQ(g.value()->edge(0).size(), 3u);
}

TEST(DetectTest, SelfConflictBecomesUnaryEdge) {
  // A single tuple satisfying both atoms of a binary denial constraint.
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (5, 5), (1, 2);"
      "CREATE CONSTRAINT d DENIAL (t AS x, t AS y WHERE x.a = y.b)"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  // (5,5) matches itself -> unary edge {t#0}.
  bool found_unary = false;
  for (size_t e = 0; e < g.value()->NumEdges(); ++e) {
    if (g.value()->edge(static_cast<ConflictHypergraph::EdgeId>(e)).size() ==
        1u) {
      found_unary = true;
    }
  }
  EXPECT_TRUE(found_unary);
}

TEST(DetectTest, MultipleConstraintsAccumulate) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER, c INTEGER);"
      "INSERT INTO t VALUES (1, 10, 7), (1, 11, 7), (2, 20, -1);"
      "CREATE CONSTRAINT fd FD ON t (a -> b);"
      "CREATE CONSTRAINT pos DENIAL (t AS x WHERE x.c < 0)"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  EXPECT_EQ(g.value()->NumEdges(), 2u);
  // Provenance is recorded per edge.
  std::set<uint32_t> constraints;
  for (size_t e = 0; e < g.value()->NumEdges(); ++e) {
    constraints.insert(g.value()->edge_constraint(
        static_cast<ConflictHypergraph::EdgeId>(e)));
  }
  EXPECT_EQ(constraints.size(), 2u);
}

TEST(DetectTest, DetectStatsTrackPaths) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 10), (1, 11);"
      "CREATE CONSTRAINT fd FD ON t (a -> b);"
      "CREATE CONSTRAINT d DENIAL (t AS x WHERE x.b < 0)"));
  ASSERT_OK(db.Hypergraph().status());
  EXPECT_EQ(db.detect_stats().fd_fast_path_constraints, 1u);
  EXPECT_EQ(db.detect_stats().generic_constraints, 1u);
}

// DetectOptions::Validate rejects nonsensical combinations with a clear
// InvalidArgument instead of the former silent fallbacks (shard_rows == 0
// used to silently disable FD sharding), and DetectAll enforces it on
// every run — serial and parallel alike.
TEST(DetectOptionsValidationTest, RejectsNonsense) {
  DetectOptions ok;
  EXPECT_OK(ok.Validate());

  DetectOptions zero_shard;
  zero_shard.shard_rows = 0;
  Status st = zero_shard.Validate();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("shard_rows"), std::string::npos);

  DetectOptions zero_partition;
  zero_partition.partition_rows = 0;
  st = zero_partition.Validate();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("partition_rows"), std::string::npos);

  DetectOptions absurd_threads;
  absurd_threads.num_threads = DetectOptions::kMaxThreads + 1;
  EXPECT_EQ(absurd_threads.Validate().code(),
            StatusCode::kInvalidArgument);
  // 0 is a valid sentinel ("all hardware threads"), SIZE_MAX row
  // thresholds are the sanctioned way to disable the splits.
  DetectOptions disabled;
  disabled.num_threads = 0;
  disabled.shard_rows = SIZE_MAX;
  disabled.partition_rows = SIZE_MAX;
  EXPECT_OK(disabled.Validate());
}

TEST(DetectOptionsValidationTest, DetectAllSurfacesTheStatus) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 10), (1, 11);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  DetectOptions bad;
  bad.shard_rows = 0;
  ConflictDetector serial(db.catalog(), bad);
  EXPECT_EQ(serial.DetectAll(db.constraints()).status().code(),
            StatusCode::kInvalidArgument);
  bad.num_threads = 4;  // the parallel path validates too
  ConflictDetector parallel(db.catalog(), bad);
  EXPECT_EQ(parallel.DetectAll(db.constraints()).status().code(),
            StatusCode::kInvalidArgument);
  // And the Database plumbing surfaces it rather than crashing.
  db.SetDetectOptions(bad);
  EXPECT_EQ(db.Hypergraph().status().code(),
            StatusCode::kInvalidArgument);
}

// Property: the FD fast path and the generic join path produce identical
// hypergraphs on random instances.
class FdPathEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FdPathEquivalence, SameEdges) {
  Rng rng(GetParam());
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER, c INTEGER);"
      "CREATE CONSTRAINT fd FD ON t (a -> b, c)"));
  for (int i = 0; i < 60; ++i) {
    ASSERT_OK(db.InsertRow(
        "t", Row{Value::Int(rng.UniformInt(0, 9)),
                 Value::Int(rng.UniformInt(0, 3)),
                 Value::Int(rng.UniformInt(0, 2))}));
  }
  ConflictDetector fast(db.catalog(), DetectOptions{true});
  ConflictDetector generic(db.catalog(), DetectOptions{false});
  auto gf = fast.DetectAll(db.constraints());
  auto gg = generic.DetectAll(db.constraints());
  ASSERT_OK(gf.status());
  ASSERT_OK(gg.status());
  EXPECT_EQ(EdgeSet(gf.value()), EdgeSet(gg.value()));
  EXPECT_GT(gf.value().NumEdges(), 0u);  // seeds chosen to collide
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdPathEquivalence,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28,
                                           29, 30));

}  // namespace
}  // namespace hippo
