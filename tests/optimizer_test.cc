// Plan optimizer: pushdown shapes and result-set preservation.
#include "plan/optimizer.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/database.h"
#include "expr/binder.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.Execute(
        "CREATE TABLE r (a INTEGER, b INTEGER);"
        "CREATE TABLE s (a INTEGER, c INTEGER);"
        "INSERT INTO r VALUES (1, 10), (2, 20), (3, 30), (4, 40);"
        "INSERT INTO s VALUES (1, 100), (2, 200), (5, 500)"));
  }

  /// Plans, optimizes, and returns (plan string, optimized string).
  std::pair<std::string, std::string> Shapes(const std::string& sql) {
    auto plan = db_.Plan(sql);
    EXPECT_OK(plan.status()) << sql;
    PlanNodePtr optimized = OptimizePlan(*plan.value());
    return {plan.value()->ToString(), optimized->ToString()};
  }

  /// Asserts plain execution returns identical row sets with the pass on
  /// and off.
  void ExpectSameResults(const std::string& sql) {
    auto plan = db_.Plan(sql);
    ASSERT_OK(plan.status()) << sql;
    PlanNodePtr optimized = OptimizePlan(*plan.value());
    EXPECT_EQ(optimized->schema().ToString(), plan.value()->schema().ToString())
        << sql;
    ExecContext ctx{&db_.catalog(), nullptr};
    auto raw = Execute(*plan.value(), ctx);
    auto opt = Execute(*optimized, ctx);
    ASSERT_OK(raw.status()) << sql;
    ASSERT_OK(opt.status()) << sql;
    EXPECT_EQ(SortedRows(raw.value()), SortedRows(opt.value())) << sql;
  }

  Database db_;
};

TEST_F(OptimizerTest, IdempotentOnOptimizedPlan) {
  auto plan = db_.Plan("SELECT * FROM r JOIN s ON r.a = s.a WHERE b > 5");
  ASSERT_OK(plan.status());
  PlanNodePtr once = OptimizePlan(*plan.value());
  PlanNodePtr twice = OptimizePlan(*once);
  EXPECT_EQ(once->ToString(), twice->ToString());
}

TEST_F(OptimizerTest, FilterOverUnionDistributes) {
  // Build Filter(Union) programmatically: the SQL surface has no derived
  // tables, but rewrites and tests assemble such plans.
  auto u = db_.Plan("SELECT a, b FROM r UNION SELECT a, c FROM s");
  ASSERT_OK(u.status());
  ExprBinder binder(u.value()->schema());
  auto pred = sql::ParseExpression("a >= 2");
  ASSERT_OK(pred.status());
  ExprPtr p = std::move(pred).value();
  ASSERT_OK(binder.BindPredicate(p.get()));
  PlanNodePtr filtered =
      std::make_unique<FilterNode>(std::move(u).value(), std::move(p));

  PlanNodePtr optimized = OptimizePlan(*filtered);
  std::string shape = optimized->ToString();
  // The union rises to the root; the filter sinks into both branches.
  EXPECT_EQ(shape.rfind("Union", 0), 0u)
      << "the plan root must be the union:\n" << shape;
  size_t first = shape.find("Filter");
  ASSERT_NE(first, std::string::npos) << shape;
  EXPECT_NE(shape.find("Filter", first + 1), std::string::npos)
      << "the filter must appear in BOTH branches:\n" << shape;

  ExecContext ctx{&db_.catalog(), nullptr};
  auto raw = Execute(*filtered, ctx);
  auto opt = Execute(*optimized, ctx);
  ASSERT_OK(raw.status());
  ASSERT_OK(opt.status());
  EXPECT_EQ(SortedRows(raw.value()), SortedRows(opt.value()));
  // a >= 2 keeps r:(2,20)(3,30)(4,40) and s:(2,200)(5,500).
  EXPECT_EQ(opt.value().NumRows(), 5u);
}

TEST_F(OptimizerTest, FilteredProductBecomesJoin) {
  // Assemble Filter(Product(r, s), r.a = s.a AND r.b > 15).
  auto plan = db_.Plan("SELECT * FROM r, s WHERE 1 = 1");
  ASSERT_OK(plan.status());
  // Project(Product) — inject a filter above the project.
  ExprBinder binder(plan.value()->schema());
  auto cond = sql::ParseExpression("r.a = s.a AND b > 15");
  ASSERT_OK(cond.status());
  ExprPtr p = std::move(cond).value();
  ASSERT_OK(binder.BindPredicate(p.get()));
  PlanNodePtr filtered =
      std::make_unique<FilterNode>(std::move(plan).value(), std::move(p));

  PlanNodePtr optimized = OptimizePlan(*filtered);
  std::string shape = optimized->ToString();
  EXPECT_NE(shape.find("Join ON"), std::string::npos)
      << "cross-side equality must become a join:\n" << shape;
  EXPECT_EQ(shape.find("Product"), std::string::npos) << shape;

  ExecContext ctx{&db_.catalog(), nullptr};
  auto raw = Execute(*filtered, ctx);
  auto opt = Execute(*optimized, ctx);
  ASSERT_OK(raw.status());
  ASSERT_OK(opt.status());
  EXPECT_EQ(SortedRows(raw.value()), SortedRows(opt.value()));
  EXPECT_EQ(opt.value().NumRows(), 1u);  // only r(2,20) x s(2,200)
}

TEST_F(OptimizerTest, AdjacentFiltersMerge) {
  auto plan = db_.Plan("SELECT * FROM r WHERE b > 5");
  ASSERT_OK(plan.status());
  ExprBinder binder(plan.value()->schema());
  auto pred = sql::ParseExpression("a < 4");
  ASSERT_OK(pred.status());
  ExprPtr p = std::move(pred).value();
  ASSERT_OK(binder.BindPredicate(p.get()));
  PlanNodePtr two =
      std::make_unique<FilterNode>(std::move(plan).value(), std::move(p));
  PlanNodePtr optimized = OptimizePlan(*two);
  std::string shape = optimized->ToString();
  // Exactly one Filter node remains.
  size_t first = shape.find("Filter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(shape.find("Filter", first + 1), std::string::npos) << shape;
}

TEST_F(OptimizerTest, HavingFilterStaysAboveAggregate) {
  auto plan = db_.Plan(
      "SELECT a, COUNT(*) AS n FROM r GROUP BY a HAVING COUNT(*) >= 1");
  ASSERT_OK(plan.status());
  PlanNodePtr optimized = OptimizePlan(*plan.value());
  std::string shape = optimized->ToString();
  size_t agg = shape.find("Aggregate");
  size_t filter = shape.find("Filter");
  ASSERT_NE(agg, std::string::npos);
  ASSERT_NE(filter, std::string::npos);
  EXPECT_LT(filter, agg) << "HAVING must stay above the aggregate:\n"
                         << shape;
  ExpectSameResults(
      "SELECT a, COUNT(*) AS n FROM r GROUP BY a HAVING COUNT(*) >= 1");
}

TEST_F(OptimizerTest, ResultsPreservedAcrossQuerySuite) {
  const char* kQueries[] = {
      "SELECT * FROM r",
      "SELECT b, a FROM r WHERE a + 1 = 3",
      "SELECT * FROM r JOIN s ON r.a = s.a",
      "SELECT * FROM r, s WHERE r.a = s.a AND b < c",
      "SELECT a, b FROM r UNION SELECT a, c FROM s",
      "SELECT a, b FROM r EXCEPT SELECT a, c FROM s",
      "SELECT a, b FROM r INTERSECT SELECT a, b FROM r",
      "SELECT a FROM r WHERE b >= 20 ORDER BY a DESC",
      "SELECT DISTINCT a FROM r",
      "SELECT a, SUM(b) FROM r GROUP BY a",
  };
  for (const char* q : kQueries) ExpectSameResults(q);
}

TEST_F(OptimizerTest, RewritingPlansOptimizeSoundly) {
  // The rewriting baseline emits AntiJoin trees; the optimizer must leave
  // their semantics intact.
  ASSERT_OK(db_.Execute("CREATE CONSTRAINT fd FD ON r (a -> b);"
                        "INSERT INTO r VALUES (1, 11)"));
  auto with = db_.ConsistentAnswersByRewriting("SELECT * FROM r");
  ASSERT_OK(with.status());
  db_.set_optimizer_enabled(false);
  auto without = db_.ConsistentAnswersByRewriting("SELECT * FROM r");
  ASSERT_OK(without.status());
  EXPECT_EQ(SortedRows(with.value()), SortedRows(without.value()));
  db_.set_optimizer_enabled(true);
}

TEST_F(OptimizerTest, RandomizedDifferential) {
  // Random filters over random query shapes: optimized and raw plans must
  // agree on every instance.
  Rng rng(99);
  const char* kShapes[] = {
      "SELECT * FROM r WHERE %s",
      "SELECT * FROM r JOIN s ON r.a = s.a WHERE %s",
      "SELECT r.a, b FROM r, s WHERE r.a = s.a AND %s",
  };
  const char* kPreds[] = {"b > 10",          "r.a = 2",
                          "b + 10 < 40",     "b > 10 AND r.a < 4",
                          "r.a % 2 = 0",     "b > 10 OR r.a = 1",
                          "NOT (r.a = 3)",   "b IS NOT NULL"};
  for (int i = 0; i < 40; ++i) {
    const char* shape = kShapes[rng.Uniform(3)];
    const char* pred = kPreds[rng.Uniform(8)];
    char sql[256];
    std::snprintf(sql, sizeof(sql), shape, pred);
    ExpectSameResults(sql);
  }
}

}  // namespace
}  // namespace hippo
