// Cross-route differential battery: on randomized, NULL-heavy instances,
// every route the router may pick (conflict-free plain evaluation, ABC/KW
// first-order rewriting, envelope + prover) must return the same consistent
// answers — the same rows, and under a root ORDER BY the same row
// *sequence* — and all of them must agree with exact all-repairs
// evaluation. SQL three-valued logic is the historical divergence source
// (residue anti-joins vs the detector's NULL handling), so the generator
// leans hard on NULLs.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "db/database.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

std::string RandomValue(std::mt19937_64* rng, double null_rate, int domain) {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  if (coin(*rng) < null_rate) return "NULL";
  return std::to_string(
      std::uniform_int_distribution<int>(0, domain - 1)(*rng));
}

/// r(a, b, c) with primary-key FD a -> b, c; s(d, e) with FD d -> e;
/// t(f, g) with no constraints. Small key domains force conflict blocks,
/// NULLs land everywhere (including keys).
void BuildRandomInstance(Database* db, uint64_t seed, double null_rate) {
  ASSERT_OK(db->Execute(
      "CREATE TABLE r (a INTEGER, b INTEGER, c INTEGER);"
      "CREATE CONSTRAINT pk_r FD ON r (a -> b, c);"
      "CREATE TABLE s (d INTEGER, e INTEGER);"
      "CREATE CONSTRAINT fd_s FD ON s (d -> e);"
      "CREATE TABLE t (f INTEGER, g INTEGER)"));
  std::mt19937_64 rng(seed);
  std::string script;
  for (int i = 0; i < 14; ++i) {
    script += "INSERT INTO r VALUES (" + RandomValue(&rng, null_rate / 2, 5) +
              ", " + RandomValue(&rng, null_rate, 4) + ", " +
              RandomValue(&rng, null_rate, 4) + ");";
  }
  for (int i = 0; i < 10; ++i) {
    script += "INSERT INTO s VALUES (" + RandomValue(&rng, null_rate / 2, 4) +
              ", " + RandomValue(&rng, null_rate, 4) + ");";
  }
  for (int i = 0; i < 6; ++i) {
    script += "INSERT INTO t VALUES (" + RandomValue(&rng, null_rate, 4) +
              ", " + RandomValue(&rng, null_rate, 4) + ");";
  }
  ASSERT_OK(db->Execute(script));
}

struct DiffQuery {
  std::string sql;
  bool ordered;  ///< root ORDER BY: routes must agree on the exact sequence
};

std::vector<DiffQuery> QueryPool() {
  return {
      // Quantifier-free over constrained tables: ABC territory.
      {"SELECT * FROM r", false},
      {"SELECT * FROM r ORDER BY a", true},
      {"SELECT * FROM r WHERE b > 1", false},
      {"SELECT * FROM r WHERE b IS NULL", false},
      {"SELECT * FROM r WHERE c IS NOT NULL ORDER BY b", true},
      {"SELECT c, a, b FROM r", false},  // permutation stays quantifier-free
      {"SELECT * FROM s WHERE e = 2", false},
      // Narrowing projections: KW territory (prover route must refuse).
      {"SELECT a FROM r", false},
      {"SELECT a FROM r ORDER BY a", true},
      {"SELECT a, b FROM r", false},
      {"SELECT a FROM r WHERE c = 1", false},
      {"SELECT d FROM s", false},
      // Conflict-free table: narrowing is fine for plain evaluation.
      {"SELECT f FROM t", false},
      {"SELECT f FROM t ORDER BY f", true},
      // Joins.
      {"SELECT * FROM r, s WHERE r.a = s.d", false},
      {"SELECT r.a FROM r, s WHERE r.a = s.d", false},
      // Set operations: prover-only.
      {"SELECT a, b FROM r EXCEPT SELECT d, e FROM s", false},
      {"SELECT d, e FROM s UNION SELECT f, g FROM t", false},
      {"SELECT d, e FROM s INTERSECT SELECT f, g FROM t", false},
  };
}

void CrossCheck(Database* db, const DiffQuery& q) {
  cqa::HippoStats auto_stats;
  auto auto_rs = db->ConsistentAnswers(q.sql, cqa::HippoOptions(),
                                       &auto_stats);

  cqa::HippoOptions force_prover;
  force_prover.route = RouteMode::kForceProver;
  cqa::HippoStats prover_stats;
  auto prover_rs = db->ConsistentAnswers(q.sql, force_prover, &prover_stats);

  cqa::HippoOptions force_rewrite;
  force_rewrite.route = RouteMode::kForceRewrite;
  auto rewrite_rs = db->ConsistentAnswers(q.sql, force_rewrite);

  auto exact = db->ConsistentAnswersAllRepairs(q.sql);
  ASSERT_OK(exact.status()) << q.sql;
  std::vector<Row> truth = SortedRows(exact.value());

  if (auto_rs.ok()) {
    EXPECT_EQ(SortedRows(auto_rs.value()), truth)
        << q.sql << "\nauto route " << RouteKindName(auto_stats.route)
        << " diverged from all-repairs ground truth";
  } else {
    // Auto only fails when even the prover fallback cannot serve the
    // query (e.g. narrowing projection whose KW gate failed); the forced
    // prover must agree it is unservable.
    EXPECT_EQ(auto_rs.status().code(), StatusCode::kNotSupported) << q.sql;
    EXPECT_FALSE(prover_rs.ok()) << q.sql;
  }
  if (prover_rs.ok()) {
    EXPECT_EQ(prover_stats.route, RouteKind::kProver) << q.sql;
    EXPECT_EQ(SortedRows(prover_rs.value()), truth)
        << q.sql << "\nprover diverged from all-repairs ground truth";
    if (auto_rs.ok() && q.ordered) {
      EXPECT_EQ(auto_rs.value().rows, prover_rs.value().rows)
          << q.sql << "\nauto route " << RouteKindName(auto_stats.route)
          << " ordered differently than the prover under the root sort";
    }
  }
  if (rewrite_rs.ok()) {
    EXPECT_EQ(SortedRows(rewrite_rs.value()), truth)
        << q.sql << "\nrewriting diverged from all-repairs ground truth";
    if (prover_rs.ok() && q.ordered) {
      EXPECT_EQ(rewrite_rs.value().rows, prover_rs.value().rows)
          << q.sql << "\nrewriting ordered differently than the prover";
    }
  }
}

class RouterDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RouterDifferential, RoutesAgreeOnNullHeavyInstances) {
  Database db;
  BuildRandomInstance(&db, GetParam(), /*null_rate=*/0.35);
  for (const DiffQuery& q : QueryPool()) CrossCheck(&db, q);
}

TEST_P(RouterDifferential, RoutesAgreeOnNullFreeInstances) {
  Database db;
  BuildRandomInstance(&db, GetParam() ^ 0x9e3779b97f4a7c15ull,
                      /*null_rate=*/0.0);
  for (const DiffQuery& q : QueryPool()) CrossCheck(&db, q);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterDifferential,
                         ::testing::Values(1u, 7u, 13u, 21u, 42u, 99u, 256u,
                                           1024u, 4242u, 31337u, 65537u,
                                           123456u));

// The route the stats report must be the class the query shape predicts.
TEST(RouterDifferentialRoutes, StatsReportTheExpectedClass) {
  Database db;
  BuildRandomInstance(&db, 7u, 0.35);
  struct Expect {
    std::string sql;
    std::vector<RouteKind> allowed;
  };
  // Conflict-free can always preempt (a lucky seed may leave a table
  // edge-free), so constrained-table expectations include it.
  const Expect cases[] = {
      {"SELECT * FROM r",
       {RouteKind::kConflictFree, RouteKind::kRewriteAbc}},
      {"SELECT a FROM r",
       {RouteKind::kConflictFree, RouteKind::kRewriteKw}},
      {"SELECT f FROM t", {RouteKind::kConflictFree}},
      {"SELECT a, b FROM r EXCEPT SELECT d, e FROM s",
       {RouteKind::kConflictFree, RouteKind::kProver}},
  };
  for (const Expect& c : cases) {
    cqa::HippoStats stats;
    auto rs = db.ConsistentAnswers(c.sql, cqa::HippoOptions(), &stats);
    if (!rs.ok()) continue;  // KW gate may refuse on this seed; covered above
    bool allowed = false;
    for (RouteKind k : c.allowed) allowed |= (stats.route == k);
    EXPECT_TRUE(allowed) << c.sql << " routed to "
                         << RouteKindName(stats.route);
  }
}

}  // namespace
}  // namespace hippo
