// Documentation conformance checks: the structures and flows promised by
// README.md and DESIGN.md exist and behave as documented. These tests keep
// the docs honest as the code evolves.
#include <gtest/gtest.h>

#include "db/database.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

// The README quickstart, verbatim.
TEST(DocConformance, ReadmeQuickstartWorks) {
  Database db;
  ASSERT_OK(db.Execute(R"sql(
    CREATE TABLE emp (name VARCHAR, salary INTEGER);
    INSERT INTO emp VALUES ('smith', 50000), ('smith', 60000),
                           ('jones', 40000);
    CREATE CONSTRAINT fd FD ON emp (name -> salary)
  )sql"));
  auto all = db.Query("SELECT * FROM emp");
  ASSERT_OK(all.status());
  EXPECT_EQ(all.value().NumRows(), 3u);
  auto sure = db.ConsistentAnswers("SELECT * FROM emp");
  ASSERT_OK(sure.status());
  ASSERT_EQ(sure.value().NumRows(), 1u);
  EXPECT_EQ(sure.value().rows[0][0], Value::String("jones"));
  EXPECT_OK(db.QueryOverCore("SELECT * FROM emp").status());
  EXPECT_OK(db.ConsistentAnswersByRewriting("SELECT * FROM emp").status());
  EXPECT_OK(db.ConsistentAnswersAllRepairs("SELECT * FROM emp").status());
  auto r = db.RangeConsistentAggregate("emp", cqa::AggFn::kSum, "salary");
  ASSERT_OK(r.status());
  EXPECT_EQ(r.value().glb, Value::Int(90000));
  EXPECT_EQ(r.value().lub, Value::Int(100000));
}

// The README's incremental-maintenance snippet, verbatim.
TEST(DocConformance, ReadmeIncrementalMaintenanceWorks) {
  Database db;
  ASSERT_OK(db.Execute(R"sql(
    CREATE TABLE emp (name VARCHAR, salary INTEGER);
    INSERT INTO emp VALUES ('smith', 50000), ('smith', 60000),
                           ('jones', 40000);
    CREATE CONSTRAINT fd FD ON emp (name -> salary)
  )sql"));
  ASSERT_OK(db.EnableIncrementalMaintenance());
  ASSERT_OK(db.Execute(
      "UPDATE emp SET salary = 55000 WHERE name = 'smith'"));
  ASSERT_OK(db.Execute("DELETE FROM emp WHERE salary < 45000"));
  auto sure = db.ConsistentAnswers("SELECT * FROM emp");
  ASSERT_OK(sure.status());
  // Both smith records merged onto 55000; jones deleted.
  ASSERT_EQ(sure.value().NumRows(), 1u);
  EXPECT_EQ(sure.value().rows[0][0], Value::String("smith"));
  EXPECT_GT(db.incremental_stats().deletes, 0u);
}

// The README's DDL-sugar snippet and the grouped range aggregate.
TEST(DocConformance, ReadmeSugarAndGroupedRangeWork) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE acct (id INTEGER PRIMARY KEY, balance INTEGER, "
      "CHECK (balance >= 0))"));
  EXPECT_EQ(db.constraints().size(), 2u);

  ASSERT_OK(db.Execute(
      "CREATE TABLE emp (name VARCHAR, salary INTEGER);"
      "INSERT INTO emp VALUES ('smith', 50000), ('smith', 60000), "
      "('jones', 40000);"
      "CREATE CONSTRAINT fd FD ON emp (name -> salary)"));
  auto g = db.GroupedRangeConsistentAggregate("emp", cqa::AggFn::kSum,
                                              "salary", {"name"});
  ASSERT_OK(g.status());
  ASSERT_EQ(g.value().size(), 2u);  // jones, smith
  EXPECT_EQ(g.value()[0].range.glb, Value::Int(40000));  // jones: certain
  EXPECT_EQ(g.value()[1].range.glb, Value::Int(50000));  // smith: [50k,60k]
  EXPECT_EQ(g.value()[1].range.lub, Value::Int(60000));
}

// Every constraint-DDL form in the README parses and registers.
TEST(DocConformance, ReadmeConstraintDdlWorks) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE emp (name VARCHAR, dept VARCHAR, salary INTEGER, "
      "did INTEGER);"
      "CREATE TABLE mgr (name VARCHAR, bonus INTEGER);"
      "CREATE TABLE certified (vid INTEGER);"
      "CREATE TABLE revoked (vid INTEGER);"
      "CREATE TABLE acct (balance INTEGER);"
      "CREATE TABLE dept (did INTEGER)"));
  ASSERT_OK(db.Execute(
      "CREATE CONSTRAINT fd FD ON emp (name, dept -> salary);"
      "CREATE CONSTRAINT ex EXCLUSION ON certified (vid), revoked (vid);"
      "CREATE CONSTRAINT rule DENIAL (emp AS e, mgr AS m "
      "WHERE e.name = m.name AND e.salary > m.bonus);"
      "CREATE CONSTRAINT pos DENIAL (acct AS a WHERE a.balance < 0);"
      "CREATE CONSTRAINT fk FOREIGN KEY emp (did) REFERENCES dept (did)"));
  EXPECT_EQ(db.constraints().size(), 4u);
  EXPECT_EQ(db.foreign_keys().size(), 1u);
}

// DESIGN.md §3.3: the three immediate non-falsifiability cases.
TEST(DocConformance, ProverBaseCasesAsDocumented) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 1), (1, 2), (7, 7);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  // Conflict-free tuple (7,7) is a consistent answer (positive literal with
  // no incident edge).
  auto rs = db.ConsistentAnswers("SELECT * FROM t WHERE a = 7");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 1u);
  // The conflicting pair (1,·): neither tuple certain.
  auto rs2 = db.ConsistentAnswers("SELECT * FROM t WHERE a = 1");
  ASSERT_OK(rs2.status());
  EXPECT_EQ(rs2.value().NumRows(), 0u);
}

// DESIGN.md §1: the envelope table — env(E1 − E2) = env(E1).
TEST(DocConformance, EnvelopeEquationHolds) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE r (a INTEGER);"
      "CREATE TABLE s (a INTEGER);"
      "INSERT INTO r VALUES (1), (2);"
      "INSERT INTO s VALUES (1)"));
  auto explained = db.Explain("SELECT * FROM r EXCEPT SELECT * FROM s");
  ASSERT_OK(explained.status());
  size_t env = explained.value().find("-- envelope");
  ASSERT_NE(env, std::string::npos);
  EXPECT_EQ(explained.value().find("Scan s", env), std::string::npos)
      << "envelope must not reference the subtrahend";
}

// DESIGN.md scope note: set semantics (duplicates collapse; UNION ALL is
// rejected).
TEST(DocConformance, SetSemanticsAsDocumented) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER);"
      "INSERT INTO t VALUES (1), (1), (1)"));
  auto rs = db.Query("SELECT * FROM t");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 1u);
  EXPECT_EQ(db.Query("SELECT * FROM t UNION ALL SELECT * FROM t")
                .status()
                .code(),
            StatusCode::kNotSupported);
}

}  // namespace
}  // namespace hippo
