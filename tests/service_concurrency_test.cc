// Concurrency tests for the serving subsystem: the Database cold-cache race
// regression, snapshot/epoch isolation, admission control, and a randomized
// reader/writer stress battery that checks every concurrent answer against a
// serial oracle at the same epoch. This suite is the payload of the `tsan`
// preset (see CMakePresets.json): it must stay race-free under
// ThreadSanitizer, not merely pass functionally.
#include <atomic>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/str_util.h"
#include "db/database.h"
#include "service/query_service.h"
#include "service/session.h"
#include "service/snapshot.h"
#include "test_util.h"

namespace hippo {
namespace {

using service::QueryService;
using service::ServiceOptions;
using service::Session;
using service::SnapshotPtr;

// ---------------------------------------------------------------------------
// Satellite regression: two threads racing the lazy hypergraph build. Before
// Database::HypergraphWith was serialized, concurrent first use on a cold
// cache raced on the optional's engagement (a TSan-visible data race and a
// potential use-after-free of the losing thread's graph). The fix makes any
// number of cold readers safe; this test fails under TSan without it.
// ---------------------------------------------------------------------------

void FillConflicted(Database* db, size_t rows) {
  ASSERT_OK(db->Execute(
      "CREATE TABLE emp(name VARCHAR, salary INTEGER);"
      "CREATE CONSTRAINT fd_emp FD ON emp (name -> salary)"));
  std::string script;
  for (size_t i = 0; i < rows; ++i) {
    script += StrFormat("INSERT INTO emp VALUES ('e%zu', %zu);", i % (rows / 2),
                        i % 3);
  }
  ASSERT_OK(db->Execute(script));
}

TEST(DatabaseRace, ConcurrentConsistentAnswersOnColdCache) {
  Database db;
  FillConflicted(&db, 200);
  ASSERT_EQ(db.hypergraph_epoch(), 0u);  // cache is cold

  constexpr size_t kThreads = 4;
  std::vector<Result<ResultSet>> results(kThreads,
                                         Status::Internal("not run"));
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &results, t] {
      results[t] = db.ConsistentAnswers("SELECT * FROM emp");
    });
  }
  for (std::thread& t : threads) t.join();

  ASSERT_OK(results[0].status());
  EXPECT_EQ(db.hypergraph_epoch(), 1u);  // built exactly once
  for (size_t t = 1; t < kThreads; ++t) {
    ASSERT_OK(results[t].status());
    EXPECT_EQ(results[t].value().rows, results[0].value().rows)
        << "thread " << t << " answered differently";
  }
}

TEST(DatabaseRace, ConcurrentHypergraphAndQueryPaths) {
  Database db;
  FillConflicted(&db, 120);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.emplace_back([&] {
    if (!db.Hypergraph().ok()) ++failures;
  });
  threads.emplace_back([&] {
    if (!db.IsConsistent().ok()) ++failures;
  });
  threads.emplace_back([&] {
    if (!db.QueryOverCore("SELECT * FROM emp").ok()) ++failures;
  });
  threads.emplace_back([&] {
    if (!db.ConsistentAnswers("SELECT * FROM emp").ok()) ++failures;
  });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// Snapshot / epoch semantics of the query service.
// ---------------------------------------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  static ServiceOptions SmallPool() {
    ServiceOptions options;
    options.num_workers = 2;
    return options;
  }

  static constexpr const char* kSchema =
      "CREATE TABLE dept(did INTEGER, budget INTEGER);"
      "CREATE TABLE emp(name VARCHAR, did INTEGER, salary INTEGER);"
      "CREATE CONSTRAINT fd_emp FD ON emp (name -> salary);"
      "CREATE CONSTRAINT fk_emp FOREIGN KEY emp (did) REFERENCES dept (did)";
};

TEST_F(ServiceTest, EpochZeroIsEmptyAndCommitsAdvanceEpochs) {
  QueryService service(SmallPool());
  EXPECT_EQ(service.epoch(), 0u);
  EXPECT_TRUE(service.snapshot()->IsConsistent());
  EXPECT_EQ(service.snapshot()->TotalRows(), 0u);

  ASSERT_OK(service.Commit(kSchema));
  EXPECT_EQ(service.epoch(), 1u);
  ASSERT_OK(service.Commit(
      "INSERT INTO dept VALUES (1, 100);"
      "INSERT INTO emp VALUES ('ann', 1, 10), ('ann', 1, 20)"));
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_FALSE(service.snapshot()->IsConsistent());
  EXPECT_EQ(service.snapshot()->hypergraph().NumEdges(), 1u);
}

TEST_F(ServiceTest, SessionsPinTheirEpochAcrossCommits) {
  QueryService service(SmallPool());
  ASSERT_OK(service.Commit(kSchema));
  ASSERT_OK(service.Commit(
      "INSERT INTO dept VALUES (1, 100);"
      "INSERT INTO emp VALUES ('ann', 1, 10), ('bob', 1, 20)"));

  Session pinned = service.OpenSession();
  ASSERT_EQ(pinned.epoch(), 2u);
  auto before = pinned.ConsistentAnswers("SELECT * FROM emp");
  ASSERT_OK(before.status());
  EXPECT_EQ(before.value().NumRows(), 2u);

  // A writer deletes bob and conflicts ann; the pinned session is blind to
  // both, a refreshed session sees both.
  ASSERT_OK(service.Commit(
      "DELETE FROM emp WHERE name = 'bob';"
      "INSERT INTO emp VALUES ('ann', 1, 99)"));
  auto after = pinned.ConsistentAnswers("SELECT * FROM emp");
  ASSERT_OK(after.status());
  EXPECT_EQ(after.value().rows, before.value().rows)
      << "session must answer at its acquired epoch";

  pinned.Refresh();
  EXPECT_EQ(pinned.epoch(), 3u);
  auto refreshed = pinned.ConsistentAnswers("SELECT * FROM emp");
  ASSERT_OK(refreshed.status());
  // ann is now conflicted on salary (no consistent answer for her rows) and
  // bob is gone: no consistent answers remain.
  EXPECT_EQ(refreshed.value().NumRows(), 0u);
}

TEST_F(ServiceTest, SnapshotAnswersBitIdenticalToSerialDatabase) {
  const std::vector<std::string> scripts = {
      kSchema,
      "INSERT INTO dept VALUES (1, 100), (2, 200);"
      "INSERT INTO emp VALUES ('ann', 1, 10), ('ann', 1, 20), "
      "('bob', 2, 30), ('cat', 7, 40)",  // cat is an FK orphan
      "DELETE FROM dept WHERE did = 2;"  // orphans bob
      "INSERT INTO emp VALUES ('dee', 1, 50)",
  };
  const std::vector<std::string> queries = {
      "SELECT * FROM emp",
      "SELECT * FROM emp, dept WHERE emp.did = dept.did",
      "SELECT * FROM emp WHERE salary < 45",
  };

  QueryService service(SmallPool());
  Database oracle;
  for (const std::string& script : scripts) {
    ASSERT_OK(service.Commit(script));
    ASSERT_OK(oracle.Execute(script));
    SnapshotPtr snap = service.snapshot();
    for (const std::string& q : queries) {
      auto served = snap->ConsistentAnswers(q);
      auto expected = oracle.ConsistentAnswers(q);
      ASSERT_OK(served.status());
      ASSERT_OK(expected.status());
      EXPECT_EQ(served.value().rows, expected.value().rows)
          << "epoch " << snap->epoch() << " query: " << q;
      // The worker pool must agree with the caller-thread path.
      auto pooled = service.Submit(QueryService::ReadMode::kConsistent, q,
                                   snap).get();
      ASSERT_OK(pooled.status());
      EXPECT_EQ(pooled.value().rows, expected.value().rows);
    }
  }
}

TEST_F(ServiceTest, MidScriptErrorStillPublishesMasterState) {
  QueryService service(SmallPool());
  ASSERT_OK(service.Commit(kSchema));
  // Second statement fails; the first insert must still be visible (Execute
  // applies statements in order) so readers see exactly the master state.
  Status st = service.Commit(
      "INSERT INTO dept VALUES (1, 100);"
      "INSERT INTO nosuch VALUES (1)");
  EXPECT_FALSE(st.ok());
  auto rs = service.snapshot()->Query("SELECT * FROM dept");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 1u);
}

TEST_F(ServiceTest, BulkCommitRoutesToParallelRedetect) {
  ServiceOptions options = SmallPool();
  options.bulk_redetect_statements = 8;
  QueryService service(options);
  ASSERT_OK(service.Commit(kSchema));

  std::string bulk = "INSERT INTO dept VALUES (1, 100);";
  for (int i = 0; i < 20; ++i) {
    bulk += StrFormat("INSERT INTO emp VALUES ('e%d', 1, %d);", i / 2, i % 2);
  }
  ASSERT_OK(service.Commit(bulk));
  service::ServiceStats stats = service.stats();
  EXPECT_GE(stats.bulk_redetects, 1u);

  // A small follow-up commit goes through the restored incremental path.
  ASSERT_OK(service.Commit("INSERT INTO emp VALUES ('solo', 1, 7)"));
  stats = service.stats();
  EXPECT_GE(stats.incremental_commits, 1u);

  // Either way the served answers match a serial oracle.
  Database oracle;
  ASSERT_OK(oracle.Execute(std::string(kSchema) + ";" + bulk +
                           "INSERT INTO emp VALUES ('solo', 1, 7)"));
  auto served = service.snapshot()->ConsistentAnswers("SELECT * FROM emp");
  auto expected = oracle.ConsistentAnswers("SELECT * FROM emp");
  ASSERT_OK(served.status());
  ASSERT_OK(expected.status());
  EXPECT_EQ(served.value().rows, expected.value().rows);
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, SubmitAfterShutdownIsRejected) {
  QueryService service(SmallPool());
  ASSERT_OK(service.Commit(kSchema));
  service.Shutdown();
  auto fut = service.Submit(QueryService::ReadMode::kPlain,
                            "SELECT * FROM emp");
  Result<ResultSet> rs = fut.get();
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ServiceTest, FullQueueRejectsWhenConfiguredTo) {
  ServiceOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 1;
  options.reject_when_full = true;
  QueryService service(options);
  ASSERT_OK(service.Commit(kSchema));
  // A thousand conflicted rows make each CQA request heavy enough that the
  // single worker cannot drain the flood below.
  std::string bulk;
  for (int i = 0; i < 1000; ++i) {
    bulk += StrFormat("INSERT INTO emp VALUES ('e%d', %d, %d);", i / 2,
                      i % 40, i % 2);
  }
  bulk += "INSERT INTO dept VALUES (0, 0)";
  ASSERT_OK(service.Commit(bulk));

  std::vector<std::future<Result<ResultSet>>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(service.Submit(QueryService::ReadMode::kConsistent,
                                     "SELECT * FROM emp"));
  }
  size_t rejected = 0;
  size_t answered = 0;
  for (auto& fut : futures) {
    Result<ResultSet> rs = fut.get();
    if (rs.ok()) {
      ++answered;
    } else {
      ASSERT_EQ(rs.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u) << "flooding a depth-1 queue must shed load";
  EXPECT_GT(answered, 0u) << "admitted requests must still be answered";
  EXPECT_EQ(service.stats().queries_rejected, rejected);
}

// ---------------------------------------------------------------------------
// Satellite: randomized concurrent stress. A writer streams FK/FD churn
// commits while reader threads continuously open sessions and check every
// answer bit-for-bit against a serial oracle at the session's epoch. The
// oracle answers are computed (and published to the epoch map) before the
// service commit, so a reader can never acquire an epoch whose expectation
// is missing.
// ---------------------------------------------------------------------------

class StressOracle {
 public:
  void Put(uint64_t epoch, std::map<std::string, std::vector<Row>> answers) {
    std::lock_guard<std::mutex> lock(mu_);
    by_epoch_[epoch] = std::move(answers);
  }

  bool Check(uint64_t epoch, const std::string& query,
             const std::vector<Row>& got, std::string* error) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_epoch_.find(epoch);
    if (it == by_epoch_.end()) {
      *error = StrFormat("no oracle answers for epoch %llu",
                         static_cast<unsigned long long>(epoch));
      return false;
    }
    const std::vector<Row>& want = it->second.at(query);
    if (got != want) {
      *error = StrFormat(
          "epoch %llu query %s: served %zu rows, oracle %zu rows "
          "(or same count, different tuples/order)",
          static_cast<unsigned long long>(epoch), query.c_str(), got.size(),
          want.size());
      return false;
    }
    return true;
  }

 private:
  std::mutex mu_;
  std::map<uint64_t, std::map<std::string, std::vector<Row>>> by_epoch_;
};

TEST_F(ServiceTest, RandomizedReadersVsChurnWriter) {
  const std::vector<std::string> kQueries = {
      "SELECT * FROM emp",
      "SELECT * FROM emp, dept WHERE emp.did = dept.did",
  };
  constexpr size_t kCommits = 25;
  constexpr size_t kReaders = 4;
  constexpr size_t kNames = 12;   // small domains force FD collisions
  constexpr size_t kDepts = 6;    // ... and FK orphans under dept churn

  QueryService service(SmallPool());
  Database oracle;
  StressOracle expected;

  auto record_epoch = [&](uint64_t epoch) {
    std::map<std::string, std::vector<Row>> answers;
    for (const std::string& q : kQueries) {
      auto rs = oracle.ConsistentAnswers(q);
      ASSERT_OK(rs.status());
      answers[q] = rs.value().rows;
    }
    expected.Put(epoch, std::move(answers));
  };

  // Epoch 0 (empty instance) has no tables; readers skip it via the
  // initial barrier below. Apply the schema + seed rows as epoch 1.
  std::string seed = std::string(kSchema) + ";";
  for (size_t d = 0; d < kDepts; ++d) {
    seed += StrFormat("INSERT INTO dept VALUES (%zu, %zu);", d, d * 100);
  }
  for (size_t i = 0; i < 3 * kNames; ++i) {
    seed += StrFormat("INSERT INTO emp VALUES ('w%zu', %zu, %zu);",
                      i % kNames, i % (kDepts + 2), i % 3);
  }
  ASSERT_OK(oracle.Execute(seed));
  record_epoch(1);
  ASSERT_OK(service.Commit(seed));
  ASSERT_EQ(service.epoch(), 1u);

  std::atomic<bool> done{false};
  std::mutex failures_mu;
  std::vector<std::string> failures;
  auto report = [&](std::string message) {
    std::lock_guard<std::mutex> lock(failures_mu);
    failures.push_back(std::move(message));
  };

  std::thread writer([&] {
    Rng rng(20260729);
    for (size_t c = 0; c < kCommits; ++c) {
      std::string script;
      size_t stmts = 1 + rng.Uniform(4);
      for (size_t s = 0; s < stmts; ++s) {
        switch (rng.Uniform(5)) {
          case 0:  // FD churn: same name, varying salary
            script += StrFormat("INSERT INTO emp VALUES ('w%llu', %llu, %llu);",
                                (unsigned long long)rng.Uniform(kNames),
                                (unsigned long long)rng.Uniform(kDepts + 2),
                                (unsigned long long)rng.Uniform(3));
            break;
          case 1:  // FK churn: drop a parent, orphaning its children
            script += StrFormat("DELETE FROM dept WHERE did = %llu;",
                                (unsigned long long)rng.Uniform(kDepts));
            break;
          case 2:  // FK cure: resurrect a parent
            script += StrFormat("INSERT INTO dept VALUES (%llu, %llu);",
                                (unsigned long long)rng.Uniform(kDepts),
                                (unsigned long long)(rng.Uniform(kDepts) * 100));
            break;
          case 3:  // deletion drains conflicts
            script += StrFormat("DELETE FROM emp WHERE name = 'w%llu';",
                                (unsigned long long)rng.Uniform(kNames));
            break;
          default:  // salary rewrite: touches FD edges both ways
            script += StrFormat(
                "UPDATE emp SET salary = %llu WHERE name = 'w%llu';",
                (unsigned long long)rng.Uniform(3),
                (unsigned long long)rng.Uniform(kNames));
            break;
        }
      }
      Status st = oracle.Execute(script);
      if (!st.ok()) {
        report("oracle apply failed: " + st.ToString());
        break;
      }
      record_epoch(2 + c);
      st = service.Commit(script);
      if (!st.ok()) {
        report("service commit failed: " + st.ToString());
        break;
      }
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  std::atomic<size_t> checks{0};
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      size_t spin = 0;
      while (!done.load() || spin == 0) {
        ++spin;
        Session session = service.OpenSession();
        for (const std::string& q : kQueries) {
          // Alternate between the caller-thread path and the worker pool;
          // both must be bit-identical to the oracle at the pinned epoch.
          Result<ResultSet> rs = ((spin + r) % 2 == 0)
                  ? session.ConsistentAnswers(q)
                  : session.Submit(QueryService::ReadMode::kConsistent, q)
                        .get();
          if (!rs.ok()) {
            report("reader query failed: " + rs.status().ToString());
            return;
          }
          std::string error;
          if (!expected.Check(session.epoch(), q, rs.value().rows, &error)) {
            report(error);
            return;
          }
          ++checks;
        }
      }
    });
  }

  writer.join();
  for (std::thread& t : readers) t.join();
  {
    std::lock_guard<std::mutex> lock(failures_mu);
    for (const std::string& f : failures) ADD_FAILURE() << f;
  }
  EXPECT_GE(checks.load(), kReaders * kQueries.size());
  EXPECT_EQ(service.epoch(), 1 + kCommits);
}

}  // namespace
}  // namespace hippo
