// Tests for expression parsing + binding + evaluation, including SQL
// three-valued logic. Parameterized sweeps evaluate expression strings
// against a fixed row.
#include <gtest/gtest.h>

#include "expr/binder.h"
#include "expr/evaluator.h"
#include "expr/expr.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

// Row fixture: a=1, b=2, s='abc', d=2.5, n=NULL, f=false
Schema FixtureSchema() {
  Schema s;
  s.AddColumn(Column("a", TypeId::kInt));
  s.AddColumn(Column("b", TypeId::kInt));
  s.AddColumn(Column("s", TypeId::kString));
  s.AddColumn(Column("d", TypeId::kDouble));
  s.AddColumn(Column("n", TypeId::kInt));
  s.AddColumn(Column("f", TypeId::kBool));
  return s;
}

Row FixtureRow() {
  return Row{Value::Int(1),      Value::Int(2),  Value::String("abc"),
             Value::Double(2.5), Value::Null(),  Value::Bool(false)};
}

Value EvalString(const std::string& text) {
  auto parsed = sql::ParseExpression(text);
  EXPECT_OK(parsed.status()) << text;
  ExprPtr e = std::move(parsed).value();
  Schema schema = FixtureSchema();
  ExprBinder binder(schema);
  auto st = binder.Bind(e.get());
  EXPECT_OK(st) << text;
  return EvalExpr(*e, FixtureRow());
}

struct EvalCase {
  const char* expr;
  Value expected;
};

class EvalSweep : public ::testing::TestWithParam<EvalCase> {};

TEST_P(EvalSweep, EvaluatesTo) {
  const EvalCase& c = GetParam();
  Value got = EvalString(c.expr);
  if (c.expected.is_null()) {
    EXPECT_TRUE(got.is_null()) << c.expr << " -> " << got.ToString();
  } else {
    EXPECT_EQ(got, c.expected) << c.expr << " -> " << got.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Comparisons, EvalSweep,
    ::testing::Values(
        EvalCase{"a = 1", Value::Bool(true)},
        EvalCase{"a <> 1", Value::Bool(false)},
        EvalCase{"a < b", Value::Bool(true)},
        EvalCase{"a <= 1", Value::Bool(true)},
        EvalCase{"b > d", Value::Bool(false)},
        EvalCase{"d >= 2.5", Value::Bool(true)},
        EvalCase{"a != b", Value::Bool(true)},  // != lexes to <>
        EvalCase{"s = 'abc'", Value::Bool(true)},
        EvalCase{"s < 'b'", Value::Bool(true)},
        EvalCase{"a = 1.0", Value::Bool(true)},   // numeric coercion
        EvalCase{"d = 2.5", Value::Bool(true)}));

INSTANTIATE_TEST_SUITE_P(
    ThreeValuedLogic, EvalSweep,
    ::testing::Values(
        EvalCase{"n = 1", Value::Null()},
        EvalCase{"n <> 1", Value::Null()},
        EvalCase{"n = n", Value::Null()},
        EvalCase{"n IS NULL", Value::Bool(true)},
        EvalCase{"n IS NOT NULL", Value::Bool(false)},
        EvalCase{"a IS NULL", Value::Bool(false)},
        EvalCase{"n = 1 AND a = 1", Value::Null()},
        EvalCase{"n = 1 AND a = 2", Value::Bool(false)},  // false absorbs
        EvalCase{"n = 1 OR a = 1", Value::Bool(true)},    // true absorbs
        EvalCase{"n = 1 OR a = 2", Value::Null()},
        EvalCase{"NOT (n = 1)", Value::Null()},
        EvalCase{"NOT f", Value::Bool(true)},
        EvalCase{"n + 1 = 2", Value::Null()}));

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, EvalSweep,
    ::testing::Values(
        EvalCase{"a + b", Value::Int(3)},
        EvalCase{"b - a", Value::Int(1)},
        EvalCase{"b * 3", Value::Int(6)},
        EvalCase{"7 / 2", Value::Int(3)},
        EvalCase{"7 % 2", Value::Int(1)},
        EvalCase{"b + d", Value::Double(4.5)},
        EvalCase{"d * 2", Value::Double(5.0)},
        EvalCase{"-a", Value::Int(-1)},
        EvalCase{"-d", Value::Double(-2.5)},
        EvalCase{"1 + 2 * 3", Value::Int(7)},       // precedence
        EvalCase{"(1 + 2) * 3", Value::Int(9)},
        EvalCase{"a / 0", Value::Null()},           // division by zero
        EvalCase{"a % 0", Value::Null()}));

INSTANTIATE_TEST_SUITE_P(
    Logic, EvalSweep,
    ::testing::Values(
        EvalCase{"TRUE", Value::Bool(true)},
        EvalCase{"FALSE OR TRUE", Value::Bool(true)},
        EvalCase{"TRUE AND FALSE", Value::Bool(false)},
        EvalCase{"NOT TRUE", Value::Bool(false)},
        EvalCase{"a = 1 AND b = 2 AND d = 2.5", Value::Bool(true)},
        EvalCase{"a = 9 OR b = 9 OR s = 'abc'", Value::Bool(true)},
        EvalCase{"NOT (a = 1 AND b = 9)", Value::Bool(true)}));

TEST(BinderTest, ResolvesQualifiedColumns) {
  Schema s = FixtureSchema().WithQualifier("t");
  auto e = sql::ParseExpression("t.a + t.b").value();
  ExprBinder binder(s);
  ASSERT_OK(binder.Bind(e.get()));
  EXPECT_EQ(EvalExpr(*e, FixtureRow()), Value::Int(3));
}

TEST(BinderTest, RejectsUnknownColumn) {
  auto e = sql::ParseExpression("zzz = 1").value();
  Schema schema = FixtureSchema();
  ExprBinder binder(schema);
  EXPECT_EQ(binder.Bind(e.get()).code(), StatusCode::kNotFound);
}

TEST(BinderTest, RejectsTypeMismatches) {
  Schema schema = FixtureSchema();
  ExprBinder binder(schema);
  auto bad = [&](const std::string& text) {
    auto e = sql::ParseExpression(text).value();
    return binder.Bind(e.get()).code();
  };
  EXPECT_EQ(bad("s = 1"), StatusCode::kTypeError);
  EXPECT_EQ(bad("s + 1"), StatusCode::kTypeError);
  EXPECT_EQ(bad("f < TRUE"), StatusCode::kTypeError);  // bool only =/<>
  EXPECT_EQ(bad("d % 2"), StatusCode::kTypeError);
  EXPECT_EQ(bad("a AND b"), StatusCode::kTypeError);
}

TEST(BinderTest, PredicateMustBeBoolean) {
  Schema schema = FixtureSchema();
  ExprBinder binder(schema);
  auto e = sql::ParseExpression("a + b").value();
  EXPECT_EQ(binder.BindPredicate(e.get()).code(), StatusCode::kTypeError);
  auto ok = sql::ParseExpression("a < b").value();
  EXPECT_OK(binder.BindPredicate(ok.get()));
}

TEST(BinderTest, ResultTypes) {
  Schema schema = FixtureSchema();
  ExprBinder binder(schema);
  auto typed = [&](const std::string& text) {
    auto e = sql::ParseExpression(text).value();
    EXPECT_OK(binder.Bind(e.get()));
    return e->result_type();
  };
  EXPECT_EQ(typed("a + b"), TypeId::kInt);
  EXPECT_EQ(typed("a + d"), TypeId::kDouble);
  EXPECT_EQ(typed("a < b"), TypeId::kBool);
  EXPECT_EQ(typed("n IS NULL"), TypeId::kBool);
}

TEST(ExprUtilTest, CloneIsDeepAndBound) {
  auto e = sql::ParseExpression("a + b < 4 AND s = 'x'").value();
  Schema schema = FixtureSchema();
  ExprBinder binder(schema);
  ASSERT_OK(binder.Bind(e.get()));
  ExprPtr copy = e->Clone();
  EXPECT_TRUE(copy->IsBound());
  EXPECT_EQ(copy->ToString(), e->ToString());
  EXPECT_EQ(EvalExpr(*copy, FixtureRow()), EvalExpr(*e, FixtureRow()));
}

TEST(ExprUtilTest, SplitConjunctsFlattens) {
  auto e = sql::ParseExpression("a = 1 AND (b = 2 AND d = 2.5) AND f").value();
  Schema schema = FixtureSchema();
  ExprBinder binder(schema);
  ASSERT_OK(binder.Bind(e.get()));
  EXPECT_EQ(SplitConjuncts(*e).size(), 4u);
}

TEST(ExprUtilTest, SplitConjunctsDoesNotCrossOr) {
  auto e = sql::ParseExpression("a = 1 OR b = 2").value();
  Schema schema = FixtureSchema();
  ExprBinder binder(schema);
  ASSERT_OK(binder.Bind(e.get()));
  EXPECT_EQ(SplitConjuncts(*e).size(), 1u);
}

TEST(ExprUtilTest, AndAllOfNothingIsTrue) {
  ExprPtr e = AndAll({});
  EXPECT_EQ(EvalConst(*e), Value::Bool(true));
}

TEST(ExprUtilTest, CollectColumnIndexes) {
  auto e = sql::ParseExpression("a + b < d").value();
  Schema schema = FixtureSchema();
  ExprBinder binder(schema);
  ASSERT_OK(binder.Bind(e.get()));
  std::vector<int> idx = CollectColumnIndexes(*e);
  std::sort(idx.begin(), idx.end());
  EXPECT_EQ(idx, (std::vector<int>{0, 1, 3}));
}

TEST(ExprUtilTest, SplitJoinConditionExtractsEquiPairs) {
  // Schema: left = (a,b,s,d,n,f) width 6, right = same appended.
  Schema both = Schema::Concat(FixtureSchema().WithQualifier("l"),
                               FixtureSchema().WithQualifier("r"));
  auto e = sql::ParseExpression("l.a = r.b AND r.a = l.b AND l.d < r.d")
               .value();
  ExprBinder binder(both);
  ASSERT_OK(binder.Bind(e.get()));
  std::vector<EquiPair> pairs;
  ExprPtr residual;
  SplitJoinCondition(*e, 6, &pairs, &residual);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].left_index, 0);   // l.a
  EXPECT_EQ(pairs[0].right_index, 1);  // r.b
  EXPECT_EQ(pairs[1].left_index, 1);   // l.b
  EXPECT_EQ(pairs[1].right_index, 0);  // r.a
  ASSERT_NE(residual, nullptr);
  EXPECT_EQ(residual->ToString(), "(l.d < r.d)");
}

TEST(ExprUtilTest, SplitJoinConditionSameSideEqualityIsResidual) {
  Schema both = Schema::Concat(FixtureSchema().WithQualifier("l"),
                               FixtureSchema().WithQualifier("r"));
  auto e = sql::ParseExpression("l.a = l.b").value();
  ExprBinder binder(both);
  ASSERT_OK(binder.Bind(e.get()));
  std::vector<EquiPair> pairs;
  ExprPtr residual;
  SplitJoinCondition(*e, 6, &pairs, &residual);
  EXPECT_TRUE(pairs.empty());
  ASSERT_NE(residual, nullptr);
}

TEST(ExprUtilTest, CompareOpHelpers) {
  EXPECT_EQ(FlipCompare(CompareOp::kLt), CompareOp::kGt);
  EXPECT_EQ(FlipCompare(CompareOp::kEq), CompareOp::kEq);
  EXPECT_EQ(NegateCompare(CompareOp::kLt), CompareOp::kGe);
  EXPECT_EQ(NegateCompare(CompareOp::kEq), CompareOp::kNe);
}

TEST(ExprToStringTest, Rendering) {
  auto e = sql::ParseExpression("NOT (a = 1 OR b <> 2)").value();
  EXPECT_EQ(e->ToString(), "NOT ((a = 1) OR (b <> 2))");
}

}  // namespace
}  // namespace hippo
