// CNF conversion tests, including a property check that the CNF is
// equivalent to the source formula under random assignments.
#include "cqa/cnf.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

using cqa::Clause;
using cqa::CnfResult;
using cqa::GroundFormula;
using cqa::ToCnf;

RowId V(uint32_t row) { return RowId{0, row}; }
GroundFormula L(uint32_t row) { return GroundFormula::Lit(V(row)); }

TEST(CnfTest, ConstantsPassThrough) {
  CnfResult t = ToCnf(GroundFormula::True());
  EXPECT_TRUE(t.is_constant);
  EXPECT_TRUE(t.constant_value);
  CnfResult f = ToCnf(GroundFormula::False());
  EXPECT_TRUE(f.is_constant);
  EXPECT_FALSE(f.constant_value);
}

TEST(CnfTest, SingleLiteral) {
  CnfResult r = ToCnf(L(1));
  ASSERT_FALSE(r.is_constant);
  ASSERT_EQ(r.clauses.size(), 1u);
  ASSERT_EQ(r.clauses[0].literals.size(), 1u);
  EXPECT_TRUE(r.clauses[0].literals[0].positive);
  EXPECT_EQ(r.clauses[0].literals[0].fact, V(1));
}

TEST(CnfTest, NegatedLiteral) {
  CnfResult r = ToCnf(GroundFormula::Not(L(1)));
  ASSERT_EQ(r.clauses.size(), 1u);
  EXPECT_FALSE(r.clauses[0].literals[0].positive);
}

TEST(CnfTest, ConjunctionSplitsClauses) {
  CnfResult r = ToCnf(GroundFormula::And(L(1), L(2)));
  EXPECT_EQ(r.clauses.size(), 2u);
}

TEST(CnfTest, DisjunctionOneClause) {
  CnfResult r = ToCnf(GroundFormula::Or(L(1), L(2)));
  ASSERT_EQ(r.clauses.size(), 1u);
  EXPECT_EQ(r.clauses[0].literals.size(), 2u);
}

TEST(CnfTest, DistributesOrOverAnd) {
  // a | (b & c)  =>  (a|b) & (a|c)
  CnfResult r = ToCnf(GroundFormula::Or(L(1), GroundFormula::And(L(2), L(3))));
  EXPECT_EQ(r.clauses.size(), 2u);
  for (const Clause& c : r.clauses) {
    EXPECT_EQ(c.literals.size(), 2u);
  }
}

TEST(CnfTest, DeMorganThroughNot) {
  // !(a & b) => (!a | !b)
  CnfResult r = ToCnf(GroundFormula::Not(GroundFormula::And(L(1), L(2))));
  ASSERT_EQ(r.clauses.size(), 1u);
  EXPECT_EQ(r.clauses[0].literals.size(), 2u);
  EXPECT_FALSE(r.clauses[0].literals[0].positive);
  EXPECT_FALSE(r.clauses[0].literals[1].positive);
}

TEST(CnfTest, TautologyDropsClause) {
  // a | !a  => constant true
  CnfResult r = ToCnf(GroundFormula::Or(L(1), GroundFormula::Not(L(1))));
  EXPECT_TRUE(r.is_constant);
  EXPECT_TRUE(r.constant_value);
}

TEST(CnfTest, ContradictionIsConstantFalse) {
  // a & !a: the MapClause stays non-empty ({a},{!a}) — not constant false
  // syntactically, but unsatisfiable; the engine handles it via the prover.
  // Here test the explicitly empty case: False() inside an And.
  CnfResult r = ToCnf(GroundFormula::And(L(1), GroundFormula::False()));
  EXPECT_TRUE(r.is_constant);
  EXPECT_FALSE(r.constant_value);
}

TEST(CnfTest, DuplicateLiteralsCollapse) {
  CnfResult r = ToCnf(GroundFormula::Or(L(1), L(1)));
  ASSERT_EQ(r.clauses.size(), 1u);
  EXPECT_EQ(r.clauses[0].literals.size(), 1u);
}

TEST(CnfTest, DuplicateClausesCollapse) {
  CnfResult r = ToCnf(GroundFormula::And(GroundFormula::Or(L(1), L(2)),
                                         GroundFormula::Or(L(2), L(1))));
  EXPECT_EQ(r.clauses.size(), 1u);
}

TEST(CnfTest, ClauseToString) {
  CnfResult r = ToCnf(GroundFormula::Or(L(1), GroundFormula::Not(L(2))));
  EXPECT_EQ(r.clauses[0].ToString(), "(t0#1 | !t0#2)");
}

// Property: CNF is logically equivalent to the source formula.
class CnfEquivalence : public ::testing::TestWithParam<uint64_t> {};

GroundFormula RandomFormula(Rng* rng, int depth) {
  if (depth == 0 || rng->Chance(0.3)) {
    uint32_t v = static_cast<uint32_t>(rng->Uniform(5));
    GroundFormula lit = GroundFormula::Lit(V(v));
    return rng->Chance(0.4) ? GroundFormula::Not(std::move(lit)) : lit;
  }
  GroundFormula a = RandomFormula(rng, depth - 1);
  GroundFormula b = RandomFormula(rng, depth - 1);
  switch (rng->Uniform(3)) {
    case 0:
      return GroundFormula::And(std::move(a), std::move(b));
    case 1:
      return GroundFormula::Or(std::move(a), std::move(b));
    default:
      return GroundFormula::Not(std::move(a));
  }
}

bool EvalCnf(const CnfResult& cnf, const std::function<bool(RowId)>& truth) {
  if (cnf.is_constant) return cnf.constant_value;
  for (const Clause& clause : cnf.clauses) {
    bool clause_true = false;
    for (const auto& lit : clause.literals) {
      bool v = truth(lit.fact);
      if (lit.positive == v) {
        clause_true = true;
        break;
      }
    }
    if (!clause_true) return false;
  }
  return true;
}

TEST_P(CnfEquivalence, AgreesUnderAllAssignments) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    GroundFormula f = RandomFormula(&rng, 4);
    CnfResult cnf = ToCnf(f);
    // 5 variables -> exhaustively check all 32 assignments.
    for (uint32_t mask = 0; mask < 32; ++mask) {
      auto truth = [mask](RowId rid) {
        return (mask >> rid.row) & 1u;
      };
      EXPECT_EQ(f.Eval(truth), EvalCnf(cnf, truth))
          << f.ToString() << " mask=" << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CnfEquivalence,
                         ::testing::Values(41, 42, 43, 44, 45, 46, 47, 48));

}  // namespace
}  // namespace hippo
