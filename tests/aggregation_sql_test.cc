// SQL aggregation (GROUP BY / HAVING / aggregate functions) in the plain
// engine, its exclusion from the CQA query class, and the grouped
// range-consistent aggregation extension.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "db/database.h"
#include "repairs/repair_enumerator.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

class AggregationSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.Execute(
        "CREATE TABLE emp (name VARCHAR, dept VARCHAR, salary INTEGER);"
        "INSERT INTO emp VALUES "
        "('ann', 'sales', 10), ('bob', 'sales', 30), "
        "('cat', 'eng', 20), ('dan', 'eng', 40), ('eve', 'eng', 60), "
        "('fay', 'hr', 50)"));
  }

  ResultSet Q(const std::string& sql) {
    auto rs = db_.Query(sql);
    EXPECT_OK(rs.status()) << sql;
    return rs.ok() ? std::move(rs).value() : ResultSet{};
  }

  Database db_;
};

TEST_F(AggregationSqlTest, GlobalCountStar) {
  ResultSet rs = Q("SELECT COUNT(*) FROM emp");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(6));
}

TEST_F(AggregationSqlTest, GlobalAggregates) {
  ResultSet rs = Q(
      "SELECT COUNT(*), SUM(salary), MIN(salary), MAX(salary), AVG(salary) "
      "FROM emp");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(6));
  EXPECT_EQ(rs.rows[0][1], Value::Int(210));
  EXPECT_EQ(rs.rows[0][2], Value::Int(10));
  EXPECT_EQ(rs.rows[0][3], Value::Int(60));
  EXPECT_EQ(rs.rows[0][4], Value::Double(35.0));
}

TEST_F(AggregationSqlTest, GroupByCount) {
  ResultSet rs = Q(
      "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept ORDER BY dept");
  ASSERT_EQ(rs.NumRows(), 3u);
  EXPECT_EQ(rs.rows[0], (Row{Value::String("eng"), Value::Int(3)}));
  EXPECT_EQ(rs.rows[1], (Row{Value::String("hr"), Value::Int(1)}));
  EXPECT_EQ(rs.rows[2], (Row{Value::String("sales"), Value::Int(2)}));
}

TEST_F(AggregationSqlTest, GroupBySumWithWhere) {
  ResultSet rs = Q(
      "SELECT dept, SUM(salary) FROM emp WHERE salary > 15 "
      "GROUP BY dept ORDER BY dept");
  ASSERT_EQ(rs.NumRows(), 3u);
  EXPECT_EQ(rs.rows[0], (Row{Value::String("eng"), Value::Int(120)}));
  EXPECT_EQ(rs.rows[1], (Row{Value::String("hr"), Value::Int(50)}));
  EXPECT_EQ(rs.rows[2], (Row{Value::String("sales"), Value::Int(30)}));
}

TEST_F(AggregationSqlTest, Having) {
  ResultSet rs = Q(
      "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept "
      "HAVING COUNT(*) >= 2 ORDER BY dept");
  ASSERT_EQ(rs.NumRows(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value::String("eng"));
  EXPECT_EQ(rs.rows[1][0], Value::String("sales"));
}

TEST_F(AggregationSqlTest, HavingOverGroupColumn) {
  ResultSet rs = Q(
      "SELECT dept, MAX(salary) FROM emp GROUP BY dept "
      "HAVING dept <> 'hr' ORDER BY dept");
  ASSERT_EQ(rs.NumRows(), 2u);
}

TEST_F(AggregationSqlTest, ArithmeticOverAggregates) {
  ResultSet rs = Q(
      "SELECT dept, MAX(salary) - MIN(salary) AS spread FROM emp "
      "GROUP BY dept ORDER BY dept");
  ASSERT_EQ(rs.NumRows(), 3u);
  EXPECT_EQ(rs.rows[0], (Row{Value::String("eng"), Value::Int(40)}));
  EXPECT_EQ(rs.rows[1], (Row{Value::String("hr"), Value::Int(0)}));
  EXPECT_EQ(rs.rows[2], (Row{Value::String("sales"), Value::Int(20)}));
}

TEST_F(AggregationSqlTest, GroupByExpression) {
  ResultSet rs = Q(
      "SELECT salary / 20 AS bucket, COUNT(*) FROM emp "
      "GROUP BY salary / 20 ORDER BY bucket");
  // 10,30 -> 0,1 ; 20,40 -> 1,2 ; 60 -> 3 ; 50 -> 2.
  ASSERT_EQ(rs.NumRows(), 4u);
  EXPECT_EQ(rs.rows[0], (Row{Value::Int(0), Value::Int(1)}));
  EXPECT_EQ(rs.rows[1], (Row{Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(rs.rows[2], (Row{Value::Int(2), Value::Int(2)}));
  EXPECT_EQ(rs.rows[3], (Row{Value::Int(3), Value::Int(1)}));
}

TEST_F(AggregationSqlTest, CountColumnSkipsNulls) {
  ASSERT_OK(db_.Execute("CREATE TABLE t (a INTEGER, b INTEGER);"
                        "INSERT INTO t VALUES (1, 1), (2, NULL), (3, 3)"));
  ResultSet rs = Q("SELECT COUNT(*), COUNT(b), SUM(b) FROM t");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(3));
  EXPECT_EQ(rs.rows[0][1], Value::Int(2));
  EXPECT_EQ(rs.rows[0][2], Value::Int(4));
}

TEST_F(AggregationSqlTest, NullsFormOneGroup) {
  ASSERT_OK(db_.Execute("CREATE TABLE n (k VARCHAR, v INTEGER);"
                        "INSERT INTO n VALUES (NULL, 1), (NULL, 2), "
                        "('x', 3)"));
  ResultSet rs = Q("SELECT k, COUNT(*), SUM(v) FROM n GROUP BY k");
  ASSERT_EQ(rs.NumRows(), 2u);
  bool found_null_group = false;
  for (const Row& row : rs.rows) {
    if (row[0].is_null()) {
      found_null_group = true;
      EXPECT_EQ(row[1], Value::Int(2));
      EXPECT_EQ(row[2], Value::Int(3));
    }
  }
  EXPECT_TRUE(found_null_group);
}

TEST_F(AggregationSqlTest, AvgOfIntsIsDouble) {
  ResultSet rs = Q("SELECT dept, AVG(salary) FROM emp GROUP BY dept "
                   "ORDER BY dept");
  ASSERT_EQ(rs.NumRows(), 3u);
  EXPECT_EQ(rs.rows[0][1], Value::Double(40.0));  // eng (20+40+60)/3
  EXPECT_EQ(rs.schema.column(1).type, TypeId::kDouble);
}

TEST_F(AggregationSqlTest, SumOfDoublesStaysDouble) {
  ASSERT_OK(db_.Execute("CREATE TABLE d (g INTEGER, x DOUBLE);"
                        "INSERT INTO d VALUES (1, 1.5), (1, 2.25)"));
  ResultSet rs = Q("SELECT g, SUM(x) FROM d GROUP BY g");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.rows[0][1], Value::Double(3.75));
}

TEST_F(AggregationSqlTest, QualifiedAndBareGroupColumnMatch) {
  // `emp.dept` in the select list must match `dept` in GROUP BY (and vice
  // versa) — matching is by resolved ordinal, not by spelling.
  ResultSet a = Q("SELECT emp.dept, COUNT(*) FROM emp GROUP BY dept "
                  "ORDER BY dept");
  ResultSet b = Q("SELECT dept, COUNT(*) FROM emp GROUP BY emp.dept "
                  "ORDER BY dept");
  EXPECT_EQ(SortedRows(a), SortedRows(b));
  ASSERT_EQ(a.NumRows(), 3u);
}

TEST_F(AggregationSqlTest, EmptyInputGlobalVsGrouped) {
  ASSERT_OK(db_.Execute("CREATE TABLE empty0 (a INTEGER)"));
  ResultSet global = Q("SELECT COUNT(*), SUM(a) FROM empty0");
  ASSERT_EQ(global.NumRows(), 1u);
  EXPECT_EQ(global.rows[0][0], Value::Int(0));
  EXPECT_TRUE(global.rows[0][1].is_null());
  ResultSet grouped = Q("SELECT a, COUNT(*) FROM empty0 GROUP BY a");
  EXPECT_EQ(grouped.NumRows(), 0u);
}

TEST_F(AggregationSqlTest, AggregateOverJoin) {
  ASSERT_OK(db_.Execute(
      "CREATE TABLE bonus (dept VARCHAR, amount INTEGER);"
      "INSERT INTO bonus VALUES ('sales', 5), ('eng', 7)"));
  ResultSet rs = Q(
      "SELECT e.dept, SUM(e.salary + b.amount) FROM emp e "
      "JOIN bonus b ON e.dept = b.dept GROUP BY e.dept ORDER BY dept");
  ASSERT_EQ(rs.NumRows(), 2u);
  EXPECT_EQ(rs.rows[0], (Row{Value::String("eng"), Value::Int(141)}));
  EXPECT_EQ(rs.rows[1], (Row{Value::String("sales"), Value::Int(50)}));
}

// --- error cases ------------------------------------------------------------

TEST_F(AggregationSqlTest, BareColumnOutsideGroupByFails) {
  EXPECT_FALSE(db_.Query("SELECT name, COUNT(*) FROM emp GROUP BY dept")
                   .ok());
}

TEST_F(AggregationSqlTest, AggregateInWhereFails) {
  EXPECT_FALSE(db_.Query("SELECT dept FROM emp WHERE COUNT(*) > 1").ok());
}

TEST_F(AggregationSqlTest, NestedAggregateFails) {
  EXPECT_FALSE(db_.Query("SELECT SUM(COUNT(*)) FROM emp").ok());
}

TEST_F(AggregationSqlTest, StarWithGroupByFails) {
  EXPECT_FALSE(db_.Query("SELECT * FROM emp GROUP BY dept").ok());
}

TEST_F(AggregationSqlTest, SumOfVarcharFails) {
  EXPECT_FALSE(db_.Query("SELECT SUM(name) FROM emp").ok());
}

TEST_F(AggregationSqlTest, CountStarOnlyForCount) {
  EXPECT_FALSE(db_.Query("SELECT SUM(*) FROM emp").ok());
}

TEST_F(AggregationSqlTest, UnknownFunctionFails) {
  EXPECT_FALSE(db_.Query("SELECT MEDIAN(salary) FROM emp").ok());
}

TEST_F(AggregationSqlTest, MinMaxOnStringsWork) {
  ResultSet rs = Q("SELECT MIN(name), MAX(name) FROM emp");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::String("ann"));
  EXPECT_EQ(rs.rows[0][1], Value::String("fay"));
}

// --- CQA boundary -----------------------------------------------------------

TEST_F(AggregationSqlTest, CqaRejectsAggregatesWithPointer) {
  ASSERT_OK(db_.Execute("CREATE CONSTRAINT fd FD ON emp (name -> salary)"));
  auto st = db_.ConsistentAnswers("SELECT dept, COUNT(*) FROM emp GROUP BY "
                                  "dept");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.status().message().find("range"), std::string::npos);
  EXPECT_FALSE(
      db_.ConsistentAnswersByRewriting("SELECT COUNT(*) FROM emp").ok());
}

// --- grouped range-consistent aggregation -----------------------------------

class GroupedRangeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two conflicting salary reports for ann (sales) and dan (eng).
    ASSERT_OK(db_.Execute(
        "CREATE TABLE emp (name VARCHAR, dept VARCHAR, salary INTEGER);"
        "INSERT INTO emp VALUES "
        "('ann', 'sales', 10), ('ann', 'sales', 18), "
        "('bob', 'sales', 30), "
        "('cat', 'eng', 20), "
        "('dan', 'eng', 40), ('dan', 'eng', 44);"
        // name determines everything, so cliques never straddle depts.
        "CREATE CONSTRAINT fd FD ON emp (name -> dept, salary)"));
  }
  Database db_;
};

TEST_F(GroupedRangeTest, ClosedFormPerDept) {
  cqa::AggStats stats;
  auto result = db_.GroupedRangeConsistentAggregate(
      "emp", cqa::AggFn::kSum, "salary", {"dept"}, &stats);
  ASSERT_OK(result.status());
  EXPECT_TRUE(stats.used_clique_partition);
  ASSERT_EQ(result.value().size(), 2u);
  // eng: cat 20 fixed + dan {40,44} -> [60, 64]
  EXPECT_EQ(result.value()[0].group, (Row{Value::String("eng")}));
  EXPECT_EQ(result.value()[0].range.glb, Value::Int(60));
  EXPECT_EQ(result.value()[0].range.lub, Value::Int(64));
  EXPECT_TRUE(result.value()[0].certain);
  // sales: bob 30 fixed + ann {10,18} -> [40, 48]
  EXPECT_EQ(result.value()[1].group, (Row{Value::String("sales")}));
  EXPECT_EQ(result.value()[1].range.glb, Value::Int(40));
  EXPECT_EQ(result.value()[1].range.lub, Value::Int(48));
}

TEST_F(GroupedRangeTest, CountIsCertainPerGroup) {
  auto result = db_.GroupedRangeConsistentAggregate(
      "emp", cqa::AggFn::kCount, "", {"dept"});
  ASSERT_OK(result.status());
  ASSERT_EQ(result.value().size(), 2u);
  EXPECT_EQ(result.value()[0].range.glb, Value::Int(2));  // eng
  EXPECT_EQ(result.value()[0].range.lub, Value::Int(2));
  EXPECT_EQ(result.value()[1].range.glb, Value::Int(2));  // sales
}

TEST_F(GroupedRangeTest, MatchesPerRepairSqlAggregation) {
  // Differential check: run the SQL GROUP BY query over every repair (via
  // row masks) and compare the per-group min/max against the closed form.
  const char* kFn[] = {"COUNT(*)", "SUM(salary)", "MIN(salary)",
                       "MAX(salary)", "AVG(salary)"};
  const cqa::AggFn kAgg[] = {cqa::AggFn::kCount, cqa::AggFn::kSum,
                             cqa::AggFn::kMin, cqa::AggFn::kMax,
                             cqa::AggFn::kAvg};
  auto graph = db_.Hypergraph();
  ASSERT_OK(graph.status());
  RepairEnumerator repairs(db_.catalog(), *graph.value());
  auto masks = repairs.EnumerateMasks(1000);
  ASSERT_OK(masks.status());
  ASSERT_EQ(masks.value().size(), 4u);  // two cliques of size two

  for (size_t f = 0; f < 5; ++f) {
    auto plan = db_.Plan(std::string("SELECT dept, ") + kFn[f] +
                         " FROM emp GROUP BY dept");
    ASSERT_OK(plan.status());
    std::map<std::string, std::pair<Value, Value>> expected;  // dept key
    for (const RowMask& mask : masks.value()) {
      ExecContext ctx{&db_.catalog(), &mask};
      auto rs = Execute(*plan.value(), ctx);
      ASSERT_OK(rs.status());
      for (const Row& row : rs.value().rows) {
        auto it = expected.find(row[0].ToString());
        if (it == expected.end()) {
          expected.emplace(row[0].ToString(),
                           std::make_pair(row[1], row[1]));
        } else {
          if (row[1].Compare(it->second.first) < 0) it->second.first = row[1];
          if (row[1].Compare(it->second.second) > 0) {
            it->second.second = row[1];
          }
        }
      }
    }
    auto closed = db_.GroupedRangeConsistentAggregate(
        "emp", kAgg[f], f == 0 ? "" : "salary", {"dept"});
    ASSERT_OK(closed.status());
    ASSERT_EQ(closed.value().size(), expected.size()) << kFn[f];
    for (const cqa::GroupRange& g : closed.value()) {
      auto it = expected.find(g.group[0].ToString());
      ASSERT_NE(it, expected.end()) << kFn[f];
      EXPECT_EQ(g.range.glb, it->second.first)
          << kFn[f] << " glb for " << g.group[0].ToString();
      EXPECT_EQ(g.range.lub, it->second.second)
          << kFn[f] << " lub for " << g.group[0].ToString();
      EXPECT_TRUE(g.certain);
    }
  }
}

TEST_F(GroupedRangeTest, StraddlingCliqueFallsBackToEnumeration) {
  // Group by salary: ann's clique members have different salaries, so the
  // clique straddles groups and the closed form is invalid.
  cqa::AggStats stats;
  auto result = db_.GroupedRangeConsistentAggregate(
      "emp", cqa::AggFn::kCount, "", {"salary"}, &stats);
  ASSERT_OK(result.status());
  EXPECT_FALSE(stats.used_clique_partition);
  // Salary 10 exists only in repairs keeping ann/10: uncertain group.
  bool found_uncertain = false;
  for (const cqa::GroupRange& g : result.value()) {
    if (g.group == Row{Value::Int(10)}) {
      EXPECT_FALSE(g.certain);
      found_uncertain = true;
    }
    if (g.group == Row{Value::Int(30)}) {  // bob: conflict-free
      EXPECT_TRUE(g.certain);
    }
  }
  EXPECT_TRUE(found_uncertain);
}

TEST_F(GroupedRangeTest, GroupOfOnlyOrphansIsOmitted) {
  ASSERT_OK(db_.Execute(
      "CREATE TABLE parent (k INTEGER);"
      "CREATE TABLE child (k INTEGER, v INTEGER);"
      "INSERT INTO parent VALUES (1);"
      "INSERT INTO child VALUES (1, 10), (2, 20);"  // k=2 is an orphan
      "CREATE CONSTRAINT fk FOREIGN KEY child (k) REFERENCES parent (k)"));
  auto result = db_.GroupedRangeConsistentAggregate(
      "child", cqa::AggFn::kSum, "v", {"k"});
  ASSERT_OK(result.status());
  ASSERT_EQ(result.value().size(), 1u);  // the k=2 group never exists
  EXPECT_EQ(result.value()[0].group, (Row{Value::Int(1)}));
  EXPECT_EQ(result.value()[0].range.glb, Value::Int(10));
}

TEST_F(GroupedRangeTest, ErrorsMirrorScalarForm) {
  EXPECT_FALSE(db_.GroupedRangeConsistentAggregate(
                      "emp", cqa::AggFn::kSum, "name", {"dept"})
                   .ok());  // non-numeric
  EXPECT_FALSE(db_.GroupedRangeConsistentAggregate(
                      "emp", cqa::AggFn::kSum, "salary", {})
                   .ok());  // no group columns
  EXPECT_FALSE(db_.GroupedRangeConsistentAggregate(
                      "emp", cqa::AggFn::kSum, "salary", {"nope"})
                   .ok());  // unknown group column
}

}  // namespace
}  // namespace hippo
