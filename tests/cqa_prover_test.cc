// HProver tests: hand-constructed hypergraphs with known repair structure,
// plus a differential property check against explicit repair enumeration.
#include "cqa/prover.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

using cqa::Clause;
using cqa::HProver;
using cqa::Literal;

RowId V(uint32_t row) { return RowId{0, row}; }

Clause MakeClause(std::vector<int> signed_vars) {
  // Positive int k => literal +V(k); negative => ¬V(-k).
  Clause c;
  for (int v : signed_vars) {
    if (v >= 0) {
      c.literals.push_back(Literal{V(static_cast<uint32_t>(v)), true});
    } else {
      c.literals.push_back(Literal{V(static_cast<uint32_t>(-v)), false});
    }
  }
  return c;
}

TEST(ProverTest, ConflictFreePositiveHoldsEverywhere) {
  ConflictHypergraph g;
  g.AddEdge({V(1), V(2)}, 0);
  HProver prover(g);
  // V(5) has no conflicts: it is in every repair, the clause holds.
  EXPECT_FALSE(prover.IsFalsifiable(MakeClause({5})));
}

TEST(ProverTest, ConflictingPositiveIsFalsifiable) {
  ConflictHypergraph g;
  g.AddEdge({V(1), V(2)}, 0);
  HProver prover(g);
  // The repair keeping V(2) excludes V(1).
  EXPECT_TRUE(prover.IsFalsifiable(MakeClause({1})));
}

TEST(ProverTest, NegativeLiteralOfConflictFreeFact) {
  ConflictHypergraph g;
  g.AddEdge({V(1), V(2)}, 0);
  HProver prover(g);
  // ¬V(5): falsified by a repair containing V(5) — every repair does.
  EXPECT_TRUE(prover.IsFalsifiable(MakeClause({-5})));
}

TEST(ProverTest, NegativeLiteralOfSelfLoopFact) {
  ConflictHypergraph g;
  g.AddEdge({V(1)}, 0);  // unary: V(1) in no repair
  HProver prover(g);
  // ¬V(1) holds in every repair.
  EXPECT_FALSE(prover.IsFalsifiable(MakeClause({-1})));
  // V(1) is falsified by every repair.
  EXPECT_TRUE(prover.IsFalsifiable(MakeClause({1})));
}

TEST(ProverTest, ConflictingNegativesCannotCoexist) {
  ConflictHypergraph g;
  g.AddEdge({V(1), V(2)}, 0);
  HProver prover(g);
  // Falsifying (¬1 ∨ ¬2) needs a repair containing both — impossible.
  EXPECT_FALSE(prover.IsFalsifiable(MakeClause({-1, -2})));
  // (¬1) alone is falsifiable (repair keeping 1).
  EXPECT_TRUE(prover.IsFalsifiable(MakeClause({-1})));
}

TEST(ProverTest, DisjunctionOfConflictPairHolds) {
  ConflictHypergraph g;
  g.AddEdge({V(1), V(2)}, 0);
  HProver prover(g);
  // Every repair keeps 1 or 2 (maximality): (1 ∨ 2) holds everywhere.
  EXPECT_FALSE(prover.IsFalsifiable(MakeClause({1, 2})));
}

TEST(ProverTest, TriangleDisjunctionPair) {
  ConflictHypergraph g;
  g.AddEdge({V(1), V(2)}, 0);
  g.AddEdge({V(2), V(3)}, 0);
  g.AddEdge({V(1), V(3)}, 0);
  HProver prover(g);
  // Repairs keep exactly one of {1,2,3}. (1 ∨ 2) fails in repair {3}.
  EXPECT_TRUE(prover.IsFalsifiable(MakeClause({1, 2})));
  // (1 ∨ 2 ∨ 3) holds in every repair.
  EXPECT_FALSE(prover.IsFalsifiable(MakeClause({1, 2, 3})));
}

TEST(ProverTest, BlockerConflictsWithNegative) {
  // Falsifying (t ∨ ¬s) needs s IN and t OUT. The only edge that can block
  // t is {t, s'}, but s' conflicts with s — so blocking is impossible.
  ConflictHypergraph g;
  g.AddEdge({V(1), V(2)}, 0);  // t=1, s'=2
  g.AddEdge({V(2), V(3)}, 0);  // s'=2 conflicts with s=3
  HProver prover(g);
  EXPECT_FALSE(prover.IsFalsifiable(MakeClause({1, -3})));
  // Without the negative literal, t alone is falsifiable.
  EXPECT_TRUE(prover.IsFalsifiable(MakeClause({1})));
}

TEST(ProverTest, PositiveCannotBeItsOwnBlocker) {
  // Clause (1 ∨ 2) with only edge {1,2}: blocking 1 forces 2 into the
  // repair, but 2 is also a positive literal that must stay out.
  ConflictHypergraph g;
  g.AddEdge({V(1), V(2)}, 0);
  g.AddEdge({V(1), V(3)}, 0);
  HProver prover(g);
  // Repairs: maximal IS over {1,2,3} with edges {1,2},{1,3}:
  //   {1} (deletes 2? no — wait: {1} kills both edges, {2,3} independent)
  //   repairs are {1} and {2,3}.
  // (1 ∨ 2): in repair {1} -> 1 holds; in {2,3} -> 2 holds. Never false.
  EXPECT_FALSE(prover.IsFalsifiable(MakeClause({1, 2})));
  // (2 ∨ 3): false in repair {1}. Falsifiable.
  EXPECT_TRUE(prover.IsFalsifiable(MakeClause({2, 3})));
}

TEST(ProverTest, TernaryEdgeBlocking) {
  ConflictHypergraph g;
  g.AddEdge({V(1), V(2), V(3)}, 0);
  HProver prover(g);
  // Repairs delete exactly one vertex. (1) is falsified by the repair
  // deleting 1 (keeping 2,3).
  EXPECT_TRUE(prover.IsFalsifiable(MakeClause({1})));
  // (1 ∨ 2) falsified by the repair deleting... a repair deletes ONE
  // vertex; to falsify both 1 and 2 must be out — impossible.
  EXPECT_FALSE(prover.IsFalsifiable(MakeClause({1, 2})));
}

TEST(ProverTest, EmptyClauseIsFalsifiedByAnyRepair) {
  ConflictHypergraph g;
  HProver prover(g);
  EXPECT_TRUE(prover.IsFalsifiable(Clause{}));
}

TEST(ProverTest, StatsAccumulate) {
  ConflictHypergraph g;
  g.AddEdge({V(1), V(2)}, 0);
  HProver prover(g);
  prover.IsFalsifiable(MakeClause({1}));
  prover.IsFalsifiable(MakeClause({1, 2}));
  EXPECT_EQ(prover.stats().clauses_checked, 2u);
  EXPECT_GT(prover.stats().edge_choices_tried, 0u);
  prover.ResetStats();
  EXPECT_EQ(prover.stats().clauses_checked, 0u);
}

// --- differential property test ------------------------------------------------

/// Enumerates all maximal independent sets of a small hypergraph over
/// vertices 0..n-1 by brute force over all subsets.
std::vector<std::set<uint32_t>> BruteForceRepairs(
    const ConflictHypergraph& g, uint32_t n) {
  auto independent = [&](uint32_t mask) {
    for (size_t e = 0; e < g.NumEdges(); ++e) {
      const auto& edge = g.edge(static_cast<ConflictHypergraph::EdgeId>(e));
      bool inside = true;
      for (const RowId& v : edge) {
        if (!((mask >> v.row) & 1u)) inside = false;
      }
      if (inside) return false;
    }
    return true;
  };
  std::vector<uint32_t> indep;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (independent(mask)) indep.push_back(mask);
  }
  std::vector<std::set<uint32_t>> repairs;
  for (uint32_t m : indep) {
    bool maximal = true;
    for (uint32_t m2 : indep) {
      if (m2 != m && (m & m2) == m) maximal = false;
    }
    if (!maximal) continue;
    std::set<uint32_t> s;
    for (uint32_t v = 0; v < n; ++v) {
      if ((m >> v) & 1u) s.insert(v);
    }
    repairs.push_back(std::move(s));
  }
  return repairs;
}

class ProverDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProverDifferential, MatchesBruteForceOnRandomClauses) {
  Rng rng(GetParam());
  constexpr uint32_t kVertices = 7;
  ConflictHypergraph g;
  int edges = static_cast<int>(rng.Uniform(6)) + 1;
  for (int e = 0; e < edges; ++e) {
    size_t arity = 1 + rng.Uniform(3);
    std::vector<RowId> edge;
    for (size_t i = 0; i < arity; ++i) {
      edge.push_back(V(static_cast<uint32_t>(rng.Uniform(kVertices))));
    }
    g.AddEdge(std::move(edge), 0);
  }
  std::vector<std::set<uint32_t>> repairs = BruteForceRepairs(g, kVertices);
  ASSERT_FALSE(repairs.empty());

  HProver prover(g);
  for (int trial = 0; trial < 40; ++trial) {
    // Random clause over the vertices.
    Clause clause;
    std::set<uint32_t> used;
    size_t len = 1 + rng.Uniform(4);
    for (size_t i = 0; i < len; ++i) {
      uint32_t v = static_cast<uint32_t>(rng.Uniform(kVertices));
      if (!used.insert(v).second) continue;
      clause.literals.push_back(Literal{V(v), rng.Chance(0.5)});
    }
    if (clause.literals.empty()) continue;
    // Skip tautologies (CNF conversion removes them before the prover).
    bool tautology = false;
    for (const Literal& a : clause.literals) {
      for (const Literal& b : clause.literals) {
        if (a.fact == b.fact && a.positive != b.positive) tautology = true;
      }
    }
    if (tautology) continue;

    bool some_repair_falsifies = false;
    for (const std::set<uint32_t>& repair : repairs) {
      bool clause_true = false;
      for (const Literal& lit : clause.literals) {
        bool present = repair.count(lit.fact.row) > 0;
        if (lit.positive == present) clause_true = true;
      }
      if (!clause_true) some_repair_falsifies = true;
    }
    EXPECT_EQ(prover.IsFalsifiable(clause), some_repair_falsifies)
        << "clause " << clause.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProverDifferential,
                         ::testing::Range<uint64_t>(100, 140));

}  // namespace
}  // namespace hippo
