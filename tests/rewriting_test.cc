// Query-rewriting baseline tests: correctness on its supported class and
// rejection outside it.
#include "rewriting/rewriter.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/database.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

class RewritingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.Execute(
        "CREATE TABLE r (a INTEGER, b INTEGER);"
        "CREATE TABLE s (a INTEGER, b INTEGER);"
        "INSERT INTO r VALUES (1, 10), (1, 11), (2, 20), (3, 30);"
        "INSERT INTO s VALUES (2, 20), (3, 33), (4, 40);"
        "CREATE CONSTRAINT fd_r FD ON r (a -> b)"));
  }
  Database db_;
};

TEST_F(RewritingTest, SelectionMatchesHippoAndExact) {
  const std::string q = "SELECT * FROM r WHERE b >= 10";
  auto rewr = db_.ConsistentAnswersByRewriting(q);
  auto hippo_rs = db_.ConsistentAnswers(q);
  auto exact = db_.ConsistentAnswersAllRepairs(q);
  ASSERT_OK(rewr.status());
  ASSERT_OK(hippo_rs.status());
  ASSERT_OK(exact.status());
  EXPECT_EQ(SortedRows(rewr.value()), SortedRows(exact.value()));
  EXPECT_EQ(SortedRows(hippo_rs.value()), SortedRows(exact.value()));
}

TEST_F(RewritingTest, JoinMatchesExact) {
  const std::string q = "SELECT * FROM r, s WHERE r.a = s.a";
  auto rewr = db_.ConsistentAnswersByRewriting(q);
  auto exact = db_.ConsistentAnswersAllRepairs(q);
  ASSERT_OK(rewr.status());
  ASSERT_OK(exact.status());
  EXPECT_EQ(SortedRows(rewr.value()), SortedRows(exact.value()));
}

TEST_F(RewritingTest, RewrittenPlanContainsAntiJoin) {
  auto plan = db_.Plan("SELECT * FROM r");
  ASSERT_OK(plan.status());
  rewriting::QueryRewriter rewriter(db_.catalog(), db_.constraints());
  auto rewritten = rewriter.Rewrite(*plan.value());
  ASSERT_OK(rewritten.status());
  EXPECT_NE(rewritten.value()->ToString().find("AntiJoin"),
            std::string::npos);
  // Schema is preserved.
  EXPECT_EQ(rewritten.value()->schema().NumColumns(), 2u);
}

TEST_F(RewritingTest, UnionRejected) {
  EXPECT_EQ(db_.ConsistentAnswersByRewriting(
                    "SELECT * FROM r UNION SELECT * FROM s")
                .status()
                .code(),
            StatusCode::kNotSupported);
}

TEST_F(RewritingTest, DifferenceRejected) {
  EXPECT_EQ(db_.ConsistentAnswersByRewriting(
                    "SELECT * FROM r EXCEPT SELECT * FROM s")
                .status()
                .code(),
            StatusCode::kNotSupported);
}

TEST_F(RewritingTest, NarrowingProjectionServedByKoutrisWijsen) {
  // `SELECT a FROM r` drops a column, so the ABC residues reject it, but
  // r is a primary-key table and the (single-atom) attack graph is
  // trivially acyclic: the Koutris–Wijsen certain rewriting serves it.
  auto rewr = db_.ConsistentAnswersByRewriting("SELECT a FROM r");
  auto exact = db_.ConsistentAnswersAllRepairs("SELECT a FROM r");
  ASSERT_OK(rewr.status());
  ASSERT_OK(exact.status());
  EXPECT_EQ(SortedRows(rewr.value()), SortedRows(exact.value()));
  // Key 1 is certain although its block conflicts: both repairs keep a=1.
  EXPECT_EQ(rewr.value().NumRows(), 3u);
}

TEST_F(RewritingTest, NarrowingSelfJoinStillRejected) {
  // Self-joins are outside the Koutris–Wijsen class, and the narrowing
  // projection keeps the ABC residues out too.
  EXPECT_EQ(db_.ConsistentAnswersByRewriting(
                    "SELECT r1.a FROM r AS r1, r AS r2 WHERE r1.b = r2.b")
                .status()
                .code(),
            StatusCode::kNotSupported);
}

TEST_F(RewritingTest, UnaryConstraintBecomesFilter) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (v INTEGER);"
      "INSERT INTO t VALUES (-1), (2), (3);"
      "CREATE CONSTRAINT pos DENIAL (t AS x WHERE x.v < 0)"));
  auto rewr = db.ConsistentAnswersByRewriting("SELECT * FROM t");
  auto exact = db.ConsistentAnswersAllRepairs("SELECT * FROM t");
  ASSERT_OK(rewr.status());
  ASSERT_OK(exact.status());
  EXPECT_EQ(SortedRows(rewr.value()), SortedRows(exact.value()));
  EXPECT_EQ(rewr.value().NumRows(), 2u);
}

TEST_F(RewritingTest, ExclusionConstraintGuardsBothTables) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE a (k INTEGER); CREATE TABLE b (k INTEGER);"
      "INSERT INTO a VALUES (1), (2); INSERT INTO b VALUES (2), (3);"
      "CREATE CONSTRAINT ex EXCLUSION ON a (k), b (k)"));
  for (const char* q : {"SELECT * FROM a", "SELECT * FROM b"}) {
    auto rewr = db.ConsistentAnswersByRewriting(q);
    auto exact = db.ConsistentAnswersAllRepairs(q);
    ASSERT_OK(rewr.status());
    ASSERT_OK(exact.status());
    EXPECT_EQ(SortedRows(rewr.value()), SortedRows(exact.value())) << q;
  }
}

TEST_F(RewritingTest, OrderByPreserved) {
  auto rewr = db_.ConsistentAnswersByRewriting(
      "SELECT * FROM r ORDER BY a DESC");
  ASSERT_OK(rewr.status());
  ASSERT_EQ(rewr.value().NumRows(), 2u);
  EXPECT_EQ(rewr.value().rows[0][0], Value::Int(3));
}

TEST_F(RewritingTest, ThreeAtomConstraintRejected) {
  // The paper scopes the rewriting method to *universal binary*
  // constraints: a residue against a 3-atom constraint would have to check
  // that the two remaining atoms are jointly realizable in one repair,
  // which a single anti-join cannot express (it is complete only by
  // coincidence on instances whose partner pairs never conflict). The
  // rewriter rejects such constraints; Hippo itself covers them.
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (k INTEGER, v INTEGER);"
      "INSERT INTO t VALUES (1, 1), (1, 2), (1, 3), (2, 9);"
      "CREATE CONSTRAINT trip DENIAL (t AS x, t AS y, t AS z WHERE "
      "x.k = y.k AND y.k = z.k AND x.v < y.v AND y.v < z.v)"));
  auto rewr = db.ConsistentAnswersByRewriting("SELECT * FROM t");
  ASSERT_FALSE(rewr.ok());
  EXPECT_EQ(rewr.status().code(), StatusCode::kNotSupported);

  auto hippo_rs = db.ConsistentAnswers("SELECT * FROM t");
  auto exact = db.ConsistentAnswersAllRepairs("SELECT * FROM t");
  ASSERT_OK(hippo_rs.status());
  ASSERT_OK(exact.status());
  EXPECT_EQ(SortedRows(hippo_rs.value()), SortedRows(exact.value()));
}

TEST_F(RewritingTest, ResiduePartnersMustBePossible) {
  // Completeness regression test: a residue partner that is in NO repair
  // (here: an FK orphan) can never force a deletion. The naive residue
  // counted it and under-approximated the consistent answers.
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE dir (k INTEGER);"
      "CREATE TABLE p (k INTEGER, v INTEGER);"
      "CREATE TABLE q (k INTEGER, v INTEGER);"
      "INSERT INTO dir VALUES (1);"
      "INSERT INTO p VALUES (9, 6);"   // k=9 has no parent: orphan
      "INSERT INTO q VALUES (1, 6);"   // excluded only by the orphan
      "CREATE CONSTRAINT ex EXCLUSION ON p (v), q (v);"
      "CREATE CONSTRAINT fk FOREIGN KEY p (k) REFERENCES dir (k)"));
  auto rewr = db.ConsistentAnswersByRewriting("SELECT * FROM q");
  auto exact = db.ConsistentAnswersAllRepairs("SELECT * FROM q");
  ASSERT_OK(rewr.status());
  ASSERT_OK(exact.status());
  ASSERT_EQ(exact.value().NumRows(), 1u);  // q(1,6) is in every repair
  EXPECT_EQ(SortedRows(rewr.value()), SortedRows(exact.value()));
}

TEST_F(RewritingTest, ResiduePartnersExcludeUnaryViolators) {
  // Same completeness property with a unary constraint: a partner that
  // violates a unary denial rule is in no repair.
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE p (v INTEGER);"
      "CREATE TABLE q (v INTEGER);"
      "INSERT INTO p VALUES (60);"     // violates cap: always deleted
      "INSERT INTO q VALUES (60);"
      "CREATE CONSTRAINT cap DENIAL (p AS x WHERE x.v > 50);"
      "CREATE CONSTRAINT ex EXCLUSION ON p (v), q (v)"));
  auto rewr = db.ConsistentAnswersByRewriting("SELECT * FROM q");
  auto exact = db.ConsistentAnswersAllRepairs("SELECT * FROM q");
  ASSERT_OK(rewr.status());
  ASSERT_OK(exact.status());
  ASSERT_EQ(exact.value().NumRows(), 1u);
  EXPECT_EQ(SortedRows(rewr.value()), SortedRows(exact.value()));
}

TEST_F(RewritingTest, ResiduePartnersExcludeSelfPairViolators) {
  // And with a self-pair: p(5) satisfies x.v = y.v with itself, giving a
  // unary hyperedge — it is in no repair, so q(5) stays consistent.
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE p (v INTEGER);"
      "CREATE TABLE q (v INTEGER);"
      "INSERT INTO p VALUES (5);"
      "INSERT INTO q VALUES (5);"
      "CREATE CONSTRAINT selfp DENIAL (p AS x, p AS y WHERE x.v = y.v);"
      "CREATE CONSTRAINT ex EXCLUSION ON p (v), q (v)"));
  auto rewr = db.ConsistentAnswersByRewriting("SELECT * FROM q");
  auto exact = db.ConsistentAnswersAllRepairs("SELECT * FROM q");
  ASSERT_OK(rewr.status());
  ASSERT_OK(exact.status());
  ASSERT_EQ(exact.value().NumRows(), 1u);
  EXPECT_EQ(SortedRows(rewr.value()), SortedRows(exact.value()));
}

// Property: on random FD-inconsistent instances, rewriting equals Hippo
// equals exact all-repairs for conjunctive queries.
class RewritingDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RewritingDifferential, AgreesOnRandomInstances) {
  Rng rng(GetParam());
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE p (a INTEGER, b INTEGER);"
      "CREATE TABLE q (a INTEGER, b INTEGER);"
      "CREATE CONSTRAINT fd_p FD ON p (a -> b);"
      "CREATE CONSTRAINT fd_q FD ON q (a -> b)"));
  for (int i = 0; i < 16; ++i) {
    ASSERT_OK(db.InsertRow("p", Row{Value::Int(rng.UniformInt(0, 5)),
                                    Value::Int(rng.UniformInt(0, 2))}));
    ASSERT_OK(db.InsertRow("q", Row{Value::Int(rng.UniformInt(0, 5)),
                                    Value::Int(rng.UniformInt(0, 2))}));
  }
  for (const char* q :
       {"SELECT * FROM p", "SELECT * FROM p WHERE b > 0",
        "SELECT * FROM p, q WHERE p.a = q.a",
        "SELECT * FROM p, q WHERE p.a = q.a AND p.b <= q.b"}) {
    auto rewr = db.ConsistentAnswersByRewriting(q);
    auto hippo_rs = db.ConsistentAnswers(q);
    auto exact = db.ConsistentAnswersAllRepairs(q);
    ASSERT_OK(rewr.status()) << q;
    ASSERT_OK(hippo_rs.status()) << q;
    ASSERT_OK(exact.status()) << q;
    EXPECT_EQ(SortedRows(rewr.value()), SortedRows(exact.value())) << q;
    EXPECT_EQ(SortedRows(hippo_rs.value()), SortedRows(exact.value())) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewritingDifferential,
                         ::testing::Range<uint64_t>(200, 216));

}  // namespace
}  // namespace hippo
