// Incremental hypergraph maintenance: differential testing against full
// re-detection, FK parent/child transitions, and CQA correctness across
// update sequences (the paper's "long-running activity" scenario).
#include "detect/incremental.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/database.h"
#include "detect/detector.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

/// Canonical edge multiset of the maintained graph vs a fresh detection run
/// over the same instance and constraints.
void ExpectGraphMatchesScratch(Database* db, const std::string& where) {
  auto maintained = db->Hypergraph();
  ASSERT_OK(maintained.status());
  ConflictDetector detector(db->catalog());
  auto scratch = detector.DetectAll(db->constraints(), db->foreign_keys());
  ASSERT_OK(scratch.status());
  EXPECT_EQ(maintained.value()->CanonicalEdges(),
            scratch.value().CanonicalEdges())
      << "incremental graph diverged from scratch detection " << where;
}

class IncrementalFdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.Execute(
        "CREATE TABLE emp (name VARCHAR, salary INTEGER);"
        "INSERT INTO emp VALUES ('ann', 10), ('bob', 20);"
        "CREATE CONSTRAINT fd FD ON emp (name -> salary)"));
    ASSERT_OK(db_.EnableIncrementalMaintenance());
  }
  Database db_;
};

TEST_F(IncrementalFdTest, InsertCreatesConflict) {
  ASSERT_OK(db_.Execute("INSERT INTO emp VALUES ('ann', 11)"));
  auto g = db_.Hypergraph();
  ASSERT_OK(g.status());
  EXPECT_EQ(g.value()->NumEdges(), 1u);
  EXPECT_EQ(db_.incremental_stats().edges_added, 1u);
  ExpectGraphMatchesScratch(&db_, "after conflicting insert");
}

TEST_F(IncrementalFdTest, DeleteResolvesConflict) {
  ASSERT_OK(db_.Execute("INSERT INTO emp VALUES ('ann', 11)"));
  ASSERT_OK(db_.Execute("DELETE FROM emp WHERE salary = 11"));
  auto g = db_.Hypergraph();
  ASSERT_OK(g.status());
  EXPECT_EQ(g.value()->NumEdges(), 0u);
  EXPECT_EQ(db_.incremental_stats().edges_removed, 1u);
  ExpectGraphMatchesScratch(&db_, "after resolving delete");
}

TEST_F(IncrementalFdTest, UpdateRestoresConsistency) {
  // The paper's motivating scenario: a temporary violation, later repaired
  // by an ordinary update — no detection re-run in between.
  ASSERT_OK(db_.Execute("INSERT INTO emp VALUES ('ann', 11)"));
  auto before = db_.IsConsistent();
  ASSERT_OK(before.status());
  EXPECT_FALSE(before.value());
  ASSERT_OK(db_.Execute("UPDATE emp SET salary = 10 WHERE name = 'ann'"));
  auto after = db_.IsConsistent();
  ASSERT_OK(after.status());
  EXPECT_TRUE(after.value());  // both ann rows merged onto salary 10
  ExpectGraphMatchesScratch(&db_, "after repairing update");
}

TEST_F(IncrementalFdTest, ConflictGrowsQuadraticallyWithinGroup) {
  ASSERT_OK(db_.Execute(
      "INSERT INTO emp VALUES ('ann', 11), ('ann', 12), ('ann', 13)"));
  auto g = db_.Hypergraph();
  ASSERT_OK(g.status());
  EXPECT_EQ(g.value()->NumEdges(), 6u);  // C(4,2) pairs of ann rows
  ExpectGraphMatchesScratch(&db_, "after group growth");
}

TEST_F(IncrementalFdTest, NullDeterminantNeverConflicts) {
  ASSERT_OK(db_.Execute(
      "INSERT INTO emp VALUES (NULL, 1), (NULL, 2), ('ann', 10)"));
  auto g = db_.Hypergraph();
  ASSERT_OK(g.status());
  EXPECT_EQ(g.value()->NumEdges(), 0u);
  ExpectGraphMatchesScratch(&db_, "with NULL determinants");
}

TEST_F(IncrementalFdTest, ConstraintChangeRebuildsMaintainer) {
  ASSERT_OK(db_.Execute("CREATE TABLE other (x INTEGER);"
                        "CREATE CONSTRAINT u DENIAL (other AS o WHERE "
                        "o.x < 0)"));
  ASSERT_OK(db_.Execute("INSERT INTO other VALUES (-1), (3)"));
  auto g = db_.Hypergraph();
  ASSERT_OK(g.status());
  EXPECT_EQ(g.value()->NumEdges(), 1u);
  ExpectGraphMatchesScratch(&db_, "after constraint change + DML");
}

class IncrementalFkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.Execute(
        "CREATE TABLE dept (did INTEGER);"
        "CREATE TABLE emp (eid INTEGER, did INTEGER);"
        "INSERT INTO dept VALUES (1), (2);"
        "INSERT INTO emp VALUES (10, 1), (11, 2), (12, 3);"
        "CREATE CONSTRAINT fk FOREIGN KEY emp (did) REFERENCES dept (did)"));
    ASSERT_OK(db_.EnableIncrementalMaintenance());
  }
  Database db_;
};

TEST_F(IncrementalFkTest, ParentInsertCuresOrphan) {
  auto g0 = db_.Hypergraph();
  ASSERT_OK(g0.status());
  EXPECT_EQ(g0.value()->NumEdges(), 1u);  // emp 12 references missing dept 3
  ASSERT_OK(db_.Execute("INSERT INTO dept VALUES (3)"));
  auto g1 = db_.Hypergraph();
  ASSERT_OK(g1.status());
  EXPECT_EQ(g1.value()->NumEdges(), 0u);
  ExpectGraphMatchesScratch(&db_, "after curing parent insert");
}

TEST_F(IncrementalFkTest, ParentDeleteOrphansChildren) {
  ASSERT_OK(db_.Execute("INSERT INTO emp VALUES (13, 1)"));
  ASSERT_OK(db_.Execute("DELETE FROM dept WHERE did = 1"));
  auto g = db_.Hypergraph();
  ASSERT_OK(g.status());
  // emp 10 and emp 13 (did=1) plus the pre-existing orphan emp 12.
  EXPECT_EQ(g.value()->NumEdges(), 3u);
  ExpectGraphMatchesScratch(&db_, "after parent delete");
}

TEST_F(IncrementalFkTest, DuplicateKeyParentsCountedNotBoolean) {
  // Two parents share did=2 (distinct rows); deleting one must NOT orphan
  // the children of did=2.
  ASSERT_OK(db_.Execute("CREATE TABLE d2 (did INTEGER, tag VARCHAR);"
                        "CREATE TABLE e2 (eid INTEGER, did INTEGER);"
                        "INSERT INTO d2 VALUES (2, 'a'), (2, 'b');"
                        "INSERT INTO e2 VALUES (20, 2);"
                        "CREATE CONSTRAINT fk2 FOREIGN KEY e2 (did) "
                        "REFERENCES d2 (did)"));
  ASSERT_OK(db_.EnableIncrementalMaintenance());
  ASSERT_OK(db_.Execute("DELETE FROM d2 WHERE tag = 'a'"));
  auto g = db_.Hypergraph();
  ASSERT_OK(g.status());
  ExpectGraphMatchesScratch(&db_, "after deleting one of two key-sharing "
                                  "parents");
  ASSERT_OK(db_.Execute("DELETE FROM d2 WHERE tag = 'b'"));
  ExpectGraphMatchesScratch(&db_, "after deleting the last parent");
}

TEST_F(IncrementalFkTest, NullKeyedChildIsPermanentOrphan) {
  ASSERT_OK(db_.Execute("INSERT INTO emp VALUES (14, NULL)"));
  ExpectGraphMatchesScratch(&db_, "after NULL-keyed child insert");
  ASSERT_OK(db_.Execute("DELETE FROM emp WHERE eid = 14"));
  ExpectGraphMatchesScratch(&db_, "after NULL-keyed child delete");
}

class IncrementalExclusionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.Execute(
        "CREATE TABLE certified (vendor VARCHAR);"
        "CREATE TABLE revoked (vendor VARCHAR);"
        "CREATE CONSTRAINT excl EXCLUSION ON certified (vendor), "
        "revoked (vendor)"));
    ASSERT_OK(db_.EnableIncrementalMaintenance());
  }
  Database db_;
};

TEST_F(IncrementalExclusionTest, CrossTableConflictLifecycle) {
  ASSERT_OK(db_.Execute("INSERT INTO certified VALUES ('v1'), ('v2')"));
  ASSERT_OK(db_.Execute("INSERT INTO revoked VALUES ('v2'), ('v3')"));
  auto g = db_.Hypergraph();
  ASSERT_OK(g.status());
  EXPECT_EQ(g.value()->NumEdges(), 1u);  // v2 in both
  ExpectGraphMatchesScratch(&db_, "after exclusion conflict");
  ASSERT_OK(db_.Execute("DELETE FROM revoked WHERE vendor = 'v2'"));
  auto g2 = db_.Hypergraph();
  ASSERT_OK(g2.status());
  EXPECT_EQ(g2.value()->NumEdges(), 0u);
  ExpectGraphMatchesScratch(&db_, "after exclusion resolution");
}

// Generic (non-equi) binary constraint goes through the nested-loop
// fallback; same-table self-pairs must match the full detector.
TEST(IncrementalFallbackTest, InequalityOnlyConstraint) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE ev (t INTEGER, kind VARCHAR);"
      // No two events may be within 1 tick of each other with kind 'x'.
      "CREATE CONSTRAINT near DENIAL (ev AS a, ev AS b WHERE "
      "a.kind = 'x' AND b.kind = 'x' AND a.t < b.t AND b.t - a.t < 2)"));
  ASSERT_OK(db.EnableIncrementalMaintenance());
  ASSERT_OK(db.Execute("INSERT INTO ev VALUES (1, 'x'), (5, 'x')"));
  ExpectGraphMatchesScratch(&db, "fallback: no conflict");
  ASSERT_OK(db.Execute("INSERT INTO ev VALUES (2, 'x'), (6, 'y')"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  EXPECT_EQ(g.value()->NumEdges(), 1u);  // (1,'x') vs (2,'x')
  ExpectGraphMatchesScratch(&db, "fallback: conflict created");
  ASSERT_OK(db.Execute("DELETE FROM ev WHERE t = 1"));
  ExpectGraphMatchesScratch(&db, "fallback: conflict removed");
}

TEST(IncrementalFallbackTest, SelfPairUnaryEdgeViaEquality) {
  // A same-table binary constraint that a tuple can satisfy with itself:
  // the full detector's self-join emits {t, t} which collapses to a unary
  // edge. The incremental path must do the same.
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE r (a INTEGER, b INTEGER);"
      "CREATE CONSTRAINT c DENIAL (r AS x, r AS y WHERE x.a = y.a AND "
      "x.b > 0 AND y.b > 0)"));
  ASSERT_OK(db.EnableIncrementalMaintenance());
  ASSERT_OK(db.Execute("INSERT INTO r VALUES (1, 5)"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  ASSERT_EQ(g.value()->NumEdges(), 1u);
  EXPECT_EQ(g.value()->edge(0).size(), 1u);
  ExpectGraphMatchesScratch(&db, "self-pair unary edge");
}

TEST(IncrementalTernaryTest, ThreeAtomConstraint) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t3 (x INTEGER);"
      // No three distinct values may sum below 10 — exercises arity 3.
      "CREATE CONSTRAINT c3 DENIAL (t3 AS a, t3 AS b, t3 AS c WHERE "
      "a.x < b.x AND b.x < c.x AND a.x + b.x + c.x < 10)"));
  ASSERT_OK(db.EnableIncrementalMaintenance());
  ASSERT_OK(db.Execute("INSERT INTO t3 VALUES (1), (2)"));
  ExpectGraphMatchesScratch(&db, "ternary: below arity");
  ASSERT_OK(db.Execute("INSERT INTO t3 VALUES (3)"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  EXPECT_EQ(g.value()->NumEdges(), 1u);  // {1,2,3}
  ExpectGraphMatchesScratch(&db, "ternary: full edge");
  ASSERT_OK(db.Execute("DELETE FROM t3 WHERE x = 2"));
  ExpectGraphMatchesScratch(&db, "ternary: edge removed");
}

// ---------------------------------------------------------------------------
// Randomized differential sweep: a long mixed DML sequence over a schema
// with an FD, an exclusion constraint, a fallback constraint, and an FK.
// After every operation the maintained hypergraph must equal scratch
// detection; periodically, CQA answers must match all-repairs evaluation.
// ---------------------------------------------------------------------------

class IncrementalRandomSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalRandomSweep, MatchesScratchDetection) {
  Rng rng(GetParam());
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE parent (k INTEGER);"
      "CREATE TABLE emp (name INTEGER, salary INTEGER, pk INTEGER);"
      "CREATE TABLE black (name INTEGER);"
      "CREATE CONSTRAINT fd FD ON emp (name -> salary);"
      "CREATE CONSTRAINT ex EXCLUSION ON emp (name), black (name);"
      "CREATE CONSTRAINT ineq DENIAL (black AS a, black AS b WHERE "
      "a.name < b.name AND b.name - a.name < 2);"
      "CREATE CONSTRAINT fk FOREIGN KEY emp (pk) REFERENCES parent (k)"));
  ASSERT_OK(db.EnableIncrementalMaintenance());

  // Small domains force frequent conflicts and FK transitions.
  auto random_emp = [&] {
    return Row{Value::Int(static_cast<int64_t>(rng.Uniform(6))),
               Value::Int(static_cast<int64_t>(rng.Uniform(4))),
               Value::Int(static_cast<int64_t>(rng.Uniform(4)))};
  };
  auto random_black = [&] {
    return Row{Value::Int(static_cast<int64_t>(rng.Uniform(8)))};
  };
  auto random_parent = [&] {
    return Row{Value::Int(static_cast<int64_t>(rng.Uniform(4)))};
  };

  for (int step = 0; step < 120; ++step) {
    switch (rng.Uniform(7)) {
      case 0:
      case 1:
        ASSERT_OK(db.InsertRow("emp", random_emp()));
        break;
      case 2:
        ASSERT_OK(db.InsertRow("black", random_black()));
        break;
      case 3:
        ASSERT_OK(db.InsertRow("parent", random_parent()));
        break;
      case 4:
        ASSERT_OK(db.DeleteRow("emp", random_emp()));
        break;
      case 5:
        ASSERT_OK(db.DeleteRow("parent", random_parent()));
        break;
      case 6:
        ASSERT_OK(db.DeleteRow("black", random_black()));
        break;
    }
    ExpectGraphMatchesScratch(&db, "at step " + std::to_string(step));
    if (HasFatalFailure()) return;

    if (step % 30 == 29) {
      auto hippo = db.ConsistentAnswers("SELECT * FROM emp");
      auto exact = db.ConsistentAnswersAllRepairs("SELECT * FROM emp");
      ASSERT_OK(hippo.status());
      ASSERT_OK(exact.status());
      EXPECT_EQ(SortedRows(hippo.value()), SortedRows(exact.value()))
          << "CQA diverged at step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalRandomSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 11u, 42u,
                                           1234u));

// ---------------------------------------------------------------------------
// FK-churn differential: a random insert/delete stream deliberately biased
// toward parent-table churn, so the restricted-foreign-key orphan/cure
// transitions (the one non-anti-monotone case) fire constantly: parent
// deletes orphan children (new unary edges), parent re-inserts cure them
// (edge removals), duplicate-key parents exercise the per-key counts, and
// NULL-keyed children stay permanent orphans throughout. After every single
// operation the maintained graph must be structurally identical to a fresh
// ConflictDetector::DetectAll — same canonical edge multiset, same
// constraint provenance.
// ---------------------------------------------------------------------------

class FkChurnDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FkChurnDifferential, MaintainedGraphEqualsFreshDetectAll) {
  Rng rng(GetParam());
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE dept (did INTEGER);"
      "CREATE TABLE proj (pid INTEGER);"
      "CREATE TABLE emp (eid INTEGER, did INTEGER, pid INTEGER);"
      "CREATE CONSTRAINT fk_dept FOREIGN KEY emp (did) REFERENCES "
      "dept (did);"
      "CREATE CONSTRAINT fk_proj FOREIGN KEY emp (pid) REFERENCES "
      "proj (pid)"));
  // A permanent orphan (NULL key) that no parent churn may ever cure,
  // and duplicate-key parents whose counts must not go boolean.
  ASSERT_OK(db.Execute(
      "INSERT INTO dept VALUES (0), (0), (1);"
      "INSERT INTO proj VALUES (0);"
      "INSERT INTO emp VALUES (100, NULL, 0), (101, 0, 0)"));
  ASSERT_OK(db.EnableIncrementalMaintenance());
  ExpectGraphMatchesScratch(&db, "initial instance");

  // Tiny key domains so deletes/re-inserts keep hitting live keys.
  auto random_parent_key = [&] {
    return Row{Value::Int(static_cast<int64_t>(rng.Uniform(3)))};
  };
  auto random_child = [&] {
    Value did = rng.Chance(0.1)
                    ? Value::Null()
                    : Value::Int(static_cast<int64_t>(rng.Uniform(3)));
    return Row{Value::Int(static_cast<int64_t>(rng.Uniform(5))),
               std::move(did),
               Value::Int(static_cast<int64_t>(rng.Uniform(3)))};
  };

  size_t cures = 0, orphanings = 0;
  for (int step = 0; step < 100; ++step) {
    size_t edges_before = 0;
    {
      auto g = db.Hypergraph();
      ASSERT_OK(g.status());
      edges_before = g.value()->NumEdges();
    }
    // Parent tables churn twice as often as the child table.
    switch (rng.Uniform(6)) {
      case 0:
        ASSERT_OK(db.InsertRow("dept", random_parent_key()));
        break;
      case 1:
        ASSERT_OK(db.DeleteRow("dept", random_parent_key()));
        break;
      case 2:
        ASSERT_OK(db.InsertRow("proj", random_parent_key()));
        break;
      case 3:
        ASSERT_OK(db.DeleteRow("proj", random_parent_key()));
        break;
      case 4:
        ASSERT_OK(db.InsertRow("emp", random_child()));
        break;
      case 5:
        ASSERT_OK(db.DeleteRow("emp", random_child()));
        break;
    }
    ExpectGraphMatchesScratch(&db, "FK churn step " + std::to_string(step));
    if (HasFatalFailure()) return;
    auto g = db.Hypergraph();
    ASSERT_OK(g.status());
    if (g.value()->NumEdges() < edges_before) ++cures;
    if (g.value()->NumEdges() > edges_before) ++orphanings;
  }
  // The stream is biased so both directions of the FK transition actually
  // happened — otherwise this test silently stops covering the cure path.
  EXPECT_GT(orphanings, 0u) << "churn never orphaned a child";
  EXPECT_GT(cures, 0u) << "churn never cured an orphan";

  // Maintained stats stay coherent with the observed transitions: every
  // step that grew (shrank) the graph added (removed) at least one edge.
  EXPECT_GE(db.incremental_stats().edges_added, orphanings);
  EXPECT_GE(db.incremental_stats().edges_removed, cures);
  ExpectGraphMatchesScratch(&db, "after the full FK churn stream");
}

INSTANTIATE_TEST_SUITE_P(Seeds, FkChurnDifferential,
                         ::testing::Values(7u, 13u, 77u, 2024u, 31415u));

// ---------------------------------------------------------------------------
// Incremental maintenance on top of a PARALLEL-built hypergraph: the graph
// is constructed with multiple detection threads (edge ids come from
// BulkLoad's deterministic merge, not serial insertion order), then the
// FK-churn stream runs on it. After every operation the maintained graph
// must match a fresh parallel re-detection — guarding the min-provenance
// invariant across both subsystems regardless of how the initial graph was
// decomposed into threads and shards.
// ---------------------------------------------------------------------------

TEST(IncrementalAfterParallelTest, FkChurnMatchesParallelRedetection) {
  Rng rng(8086);
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE dept (did INTEGER);"
      "CREATE TABLE emp (eid INTEGER, salary INTEGER, did INTEGER);"
      // An FD on the child table too, so the parallel build exercises FD
      // sharding and the FK fan-out in one graph and the maintainer keeps
      // both edge flavours coherent.
      "CREATE CONSTRAINT fd FD ON emp (eid -> salary);"
      "CREATE CONSTRAINT fk FOREIGN KEY emp (did) REFERENCES dept (did)"));
  ASSERT_OK(db.Execute(
      "INSERT INTO dept VALUES (0), (1);"
      "INSERT INTO emp VALUES (1, 10, 0), (1, 20, 1), (2, 10, 9), "
      "(3, 5, NULL)"));

  // Force real parallelism on a tiny instance: 4 threads, shards of 2 rows.
  DetectOptions popt;
  popt.num_threads = 4;
  popt.shard_rows = 2;
  db.SetDetectOptions(popt);
  ASSERT_OK(db.EnableIncrementalMaintenance());  // builds the graph in parallel

  auto expect_matches_parallel_scratch = [&](const std::string& where) {
    auto maintained = db.Hypergraph();
    ASSERT_OK(maintained.status());
    ConflictDetector detector(db.catalog(), popt);
    auto scratch = detector.DetectAll(db.constraints(), db.foreign_keys());
    ASSERT_OK(scratch.status());
    EXPECT_EQ(maintained.value()->CanonicalEdges(),
              scratch.value().CanonicalEdges())
        << "maintained graph diverged from parallel re-detection " << where;
  };
  expect_matches_parallel_scratch("after the parallel initial build");

  auto random_parent = [&] {
    return Row{Value::Int(static_cast<int64_t>(rng.Uniform(3)))};
  };
  auto random_emp = [&] {
    Value did = rng.Chance(0.1)
                    ? Value::Null()
                    : Value::Int(static_cast<int64_t>(rng.Uniform(3)));
    return Row{Value::Int(static_cast<int64_t>(rng.Uniform(4))),
               Value::Int(static_cast<int64_t>(rng.Uniform(3))),
               std::move(did)};
  };
  for (int step = 0; step < 80; ++step) {
    switch (rng.Uniform(5)) {
      case 0:
        ASSERT_OK(db.InsertRow("dept", random_parent()));
        break;
      case 1:
        ASSERT_OK(db.DeleteRow("dept", random_parent()));
        break;
      case 2:
      case 3:
        ASSERT_OK(db.InsertRow("emp", random_emp()));
        break;
      case 4:
        ASSERT_OK(db.DeleteRow("emp", random_emp()));
        break;
    }
    expect_matches_parallel_scratch("at step " + std::to_string(step));
    if (HasFatalFailure()) return;
  }
}

// Hypergraph removal primitives.
TEST(HypergraphRemovalTest, RemoveEdgeScrubsIncidence) {
  ConflictHypergraph g;
  RowId a{0, 1}, b{0, 2}, c{0, 3};
  auto e1 = g.AddEdge({a, b}, 0);
  g.AddEdge({b, c}, 1);
  EXPECT_EQ(g.NumEdges(), 2u);
  g.RemoveEdge(e1);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_FALSE(g.IsConflicting(a));
  EXPECT_TRUE(g.IsConflicting(b));
  EXPECT_EQ(g.IncidentEdges(b).size(), 1u);
  g.RemoveEdge(e1);  // idempotent
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(HypergraphRemovalTest, ReviveKeepsEdgeId) {
  ConflictHypergraph g;
  RowId a{0, 1}, b{0, 2};
  auto e = g.AddEdge({a, b}, 0);
  g.RemoveEdge(e);
  EXPECT_EQ(g.NumEdges(), 0u);
  auto e2 = g.AddEdge({b, a}, 3);  // same vertex set, new provenance
  EXPECT_EQ(e2, e);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.edge_constraint(e2), 3u);
  EXPECT_TRUE(g.IsConflicting(a));
}

TEST(HypergraphRemovalTest, RemoveIncidentEdges) {
  ConflictHypergraph g;
  RowId a{0, 1}, b{0, 2}, c{0, 3};
  g.AddEdge({a, b}, 0);
  g.AddEdge({a, c}, 0);
  g.AddEdge({b, c}, 0);
  EXPECT_EQ(g.RemoveIncidentEdges(a), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_FALSE(g.IsConflicting(a));
  EXPECT_EQ(g.RemoveIncidentEdges(a), 0u);
}

}  // namespace
}  // namespace hippo
