// Range-consistent aggregation tests: known instances, the closed form vs
// the enumeration fallback, and a randomized differential sweep.
#include "cqa/aggregates.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/database.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

using cqa::AggFn;
using cqa::AggRange;
using cqa::AggStats;

// The classic salary example from "Scalar Aggregation in Inconsistent
// Databases": emp(name, salary), FD name -> salary, two disputed salaries.
class SalaryDb : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.Execute(
        "CREATE TABLE emp (name VARCHAR, salary INTEGER);"
        "INSERT INTO emp VALUES ('smith', 50), ('smith', 60),"
        "                       ('jones', 40), ('brown', 70);"
        "CREATE CONSTRAINT fd FD ON emp (name -> salary)"));
  }
  AggRange Range(AggFn fn, const char* col = "salary",
                 AggStats* stats = nullptr) {
    auto r = db_.RangeConsistentAggregate("emp", fn, col, stats);
    EXPECT_OK(r.status());
    return r.ValueOr(AggRange{});
  }
  Database db_;
};

TEST_F(SalaryDb, UsesClosedForm) {
  AggStats stats;
  Range(AggFn::kSum, "salary", &stats);
  EXPECT_TRUE(stats.used_clique_partition);
  EXPECT_EQ(stats.cliques, 1u);
  EXPECT_EQ(stats.conflict_free, 2u);
}

TEST_F(SalaryDb, SumRange) {
  AggRange r = Range(AggFn::kSum);
  EXPECT_EQ(r.glb, Value::Int(160));  // 40+70+50
  EXPECT_EQ(r.lub, Value::Int(170));  // 40+70+60
}

TEST_F(SalaryDb, CountIsCertain) {
  AggRange r = Range(AggFn::kCount, "");
  EXPECT_EQ(r.glb, Value::Int(3));
  EXPECT_EQ(r.lub, Value::Int(3));
}

TEST_F(SalaryDb, MinRange) {
  AggRange r = Range(AggFn::kMin);
  // Min is jones' 40 in every repair (both smith options exceed it).
  EXPECT_EQ(r.glb, Value::Int(40));
  EXPECT_EQ(r.lub, Value::Int(40));
}

TEST_F(SalaryDb, MaxRange) {
  AggRange r = Range(AggFn::kMax);
  // Max is brown's 70 in every repair.
  EXPECT_EQ(r.glb, Value::Int(70));
  EXPECT_EQ(r.lub, Value::Int(70));
}

TEST_F(SalaryDb, AvgRange) {
  AggRange r = Range(AggFn::kAvg);
  EXPECT_DOUBLE_EQ(r.glb.AsDouble(), 160.0 / 3);
  EXPECT_DOUBLE_EQ(r.lub.AsDouble(), 170.0 / 3);
}

TEST(AggRangeTest, MinMaxVaryWhenConflictsAtExtremes) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (k INTEGER, v INTEGER);"
      "INSERT INTO t VALUES (1, 5), (1, 100), (2, 50);"
      "CREATE CONSTRAINT fd FD ON t (k -> v)"));
  auto min_r = db.RangeConsistentAggregate("t", AggFn::kMin, "v");
  ASSERT_OK(min_r.status());
  EXPECT_EQ(min_r.value().glb, Value::Int(5));    // repair keeps (1,5)
  EXPECT_EQ(min_r.value().lub, Value::Int(50));   // repair keeps (1,100)
  auto max_r = db.RangeConsistentAggregate("t", AggFn::kMax, "v");
  ASSERT_OK(max_r.status());
  EXPECT_EQ(max_r.value().glb, Value::Int(50));
  EXPECT_EQ(max_r.value().lub, Value::Int(100));
}

TEST(AggRangeTest, ConsistentTableIsPointInterval) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (k INTEGER, v INTEGER);"
      "INSERT INTO t VALUES (1, 10), (2, 20);"
      "CREATE CONSTRAINT fd FD ON t (k -> v)"));
  for (AggFn fn : {AggFn::kSum, AggFn::kMin, AggFn::kMax, AggFn::kAvg}) {
    auto r = db.RangeConsistentAggregate("t", fn, "v");
    ASSERT_OK(r.status());
    EXPECT_EQ(r.value().glb, r.value().lub) << AggFnToString(fn);
  }
}

TEST(AggRangeTest, UnaryEdgesExcludeTuplesEverywhere) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (k INTEGER, v INTEGER);"
      "INSERT INTO t VALUES (1, -5), (2, 10), (3, 20);"
      "CREATE CONSTRAINT pos DENIAL (t AS x WHERE x.v < 0)"));
  AggStats stats;
  auto r = db.RangeConsistentAggregate("t", AggFn::kSum, "v", &stats);
  ASSERT_OK(r.status());
  EXPECT_TRUE(stats.used_clique_partition);
  EXPECT_EQ(r.value().glb, Value::Int(30));
  EXPECT_EQ(r.value().lub, Value::Int(30));
}

TEST(AggRangeTest, CrossTableConflictFallsBackToEnumeration) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE a (k INTEGER); CREATE TABLE b (k INTEGER);"
      "INSERT INTO a VALUES (1), (2); INSERT INTO b VALUES (2), (3);"
      "CREATE CONSTRAINT ex EXCLUSION ON a (k), b (k)"));
  AggStats stats;
  auto r = db.RangeConsistentAggregate("a", AggFn::kCount, "", &stats);
  ASSERT_OK(r.status());
  EXPECT_FALSE(stats.used_clique_partition);
  // Repairs: {a(1),a(2)} vs {a(1), b(2)}: count of a is 1 or 2.
  EXPECT_EQ(r.value().glb, Value::Int(1));
  EXPECT_EQ(r.value().lub, Value::Int(2));
}

TEST(AggRangeTest, TernaryConflictFallsBackToEnumeration) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (k INTEGER, v INTEGER);"
      "INSERT INTO t VALUES (1, 1), (1, 2), (1, 3);"
      "CREATE CONSTRAINT trip DENIAL (t AS x, t AS y, t AS z WHERE "
      "x.k = y.k AND y.k = z.k AND x.v < y.v AND y.v < z.v)"));
  AggStats stats;
  auto r = db.RangeConsistentAggregate("t", AggFn::kSum, "v", &stats);
  ASSERT_OK(r.status());
  EXPECT_FALSE(stats.used_clique_partition);
  // Repairs delete one tuple each: sums 5, 4, 3.
  EXPECT_EQ(r.value().glb, Value::Int(3));
  EXPECT_EQ(r.value().lub, Value::Int(5));
}

TEST(AggRangeTest, ErrorsAreInformative) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (k INTEGER, s VARCHAR, n INTEGER);"
      "INSERT INTO t VALUES (1, 'x', NULL)"));
  EXPECT_EQ(db.RangeConsistentAggregate("nope", AggFn::kSum, "k")
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db.RangeConsistentAggregate("t", AggFn::kSum, "s")
                .status()
                .code(),
            StatusCode::kTypeError);
  EXPECT_EQ(db.RangeConsistentAggregate("t", AggFn::kSum, "n")
                .status()
                .code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(db.RangeConsistentAggregate("t", AggFn::kSum, "zz")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(AggRangeTest, AggFnParsing) {
  EXPECT_EQ(cqa::AggFnFromString("Sum").value(), AggFn::kSum);
  EXPECT_EQ(cqa::AggFnFromString("COUNT").value(), AggFn::kCount);
  EXPECT_FALSE(cqa::AggFnFromString("median").ok());
  EXPECT_STREQ(cqa::AggFnToString(AggFn::kAvg), "AVG");
}

// Differential property: closed form == enumeration on random single-FD
// instances, for every aggregate function.
class AggDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggDifferential, ClosedFormMatchesEnumeration) {
  Rng rng(GetParam());
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (k INTEGER, v INTEGER);"
      "CREATE CONSTRAINT fd FD ON t (k -> v)"));
  for (int i = 0; i < 12; ++i) {
    ASSERT_OK(db.InsertRow("t", Row{Value::Int(rng.UniformInt(0, 4)),
                                    Value::Int(rng.UniformInt(-20, 20))}));
  }
  auto graph = db.Hypergraph();
  ASSERT_OK(graph.status());
  cqa::RangeAggregator agg(db.catalog(), *graph.value());

  for (AggFn fn : {AggFn::kCount, AggFn::kSum, AggFn::kMin, AggFn::kMax,
                   AggFn::kAvg}) {
    AggStats stats;
    auto fast = agg.Range("t", fn, "v", &stats);
    ASSERT_OK(fast.status());
    EXPECT_TRUE(stats.used_clique_partition);
    // Force enumeration by constructing a fresh aggregator and calling the
    // internal path indirectly: compare against brute force over masks.
    RepairEnumerator repairs(db.catalog(), *graph.value());
    auto masks = repairs.EnumerateMasks(100000);
    ASSERT_OK(masks.status());
    const Table* table = db.catalog().GetTable("t").value();
    Value glb, lub;
    bool first = true;
    for (const RowMask& mask : masks.value()) {
      std::vector<double> values;
      for (uint32_t i = 0; i < table->NumRows(); ++i) {
        if (!mask.Allows(RowId{table->id(), i})) continue;
        values.push_back(table->row(i)[1].NumericAsDouble());
      }
      Value v;
      switch (fn) {
        case AggFn::kCount:
          v = Value::Int(static_cast<int64_t>(values.size()));
          break;
        case AggFn::kSum: {
          double s = 0;
          for (double x : values) s += x;
          v = Value::Int(static_cast<int64_t>(s));
          break;
        }
        case AggFn::kMin:
          v = Value::Int(static_cast<int64_t>(
              *std::min_element(values.begin(), values.end())));
          break;
        case AggFn::kMax:
          v = Value::Int(static_cast<int64_t>(
              *std::max_element(values.begin(), values.end())));
          break;
        case AggFn::kAvg: {
          double s = 0;
          for (double x : values) s += x;
          v = Value::Double(s / static_cast<double>(values.size()));
          break;
        }
      }
      if (first) {
        glb = v;
        lub = v;
        first = false;
      } else {
        if (v.Compare(glb) < 0) glb = v;
        if (v.Compare(lub) > 0) lub = v;
      }
    }
    EXPECT_EQ(fast.value().glb, glb) << AggFnToString(fn);
    EXPECT_EQ(fast.value().lub, lub) << AggFnToString(fn);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggDifferential,
                         ::testing::Range<uint64_t>(500, 532));

}  // namespace
}  // namespace hippo
