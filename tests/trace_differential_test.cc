// Trace determinism differential: attaching a TraceSpan to a query must
// not change anything observable — same rows in the same sequence, same
// HippoStats (route, candidates, answers, prover work), and an untouched
// conflict hypergraph (edge ids + constraint provenance) — across all
// three router routes and both execution engines. This is the contract
// that makes EXPLAIN ANALYZE trustworthy: what it times is exactly the
// query the user would have run.
//
// Runs in the ASan lane with every other test and is named into the TSan
// lane: the traced prover path shares one span tree across worker threads.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "db/database.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

std::string RandomValue(std::mt19937_64* rng, double null_rate, int domain) {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  if (coin(*rng) < null_rate) return "NULL";
  return std::to_string(
      std::uniform_int_distribution<int>(0, domain - 1)(*rng));
}

/// r(a, b) with FD a -> b (conflicting blocks), t(f, g) unconstrained
/// (conflict-free route territory). NULLs everywhere.
void BuildInstance(Database* db, uint64_t seed) {
  ASSERT_OK(db->Execute(
      "CREATE TABLE r (a INTEGER, b INTEGER);"
      "CREATE CONSTRAINT fd_r FD ON r (a -> b);"
      "CREATE TABLE t (f INTEGER, g INTEGER)"));
  std::mt19937_64 rng(seed);
  std::string script;
  for (int i = 0; i < 16; ++i) {
    script += "INSERT INTO r VALUES (" + RandomValue(&rng, 0.1, 5) + ", " +
              RandomValue(&rng, 0.25, 4) + ");";
  }
  for (int i = 0; i < 8; ++i) {
    script += "INSERT INTO t VALUES (" + RandomValue(&rng, 0.25, 4) + ", " +
              RandomValue(&rng, 0.25, 4) + ");";
  }
  ASSERT_OK(db->Execute(script));
}

struct RouteCase {
  std::string sql;
  RouteMode route;
  RouteKind expect;  ///< route the forced/auto dispatch must land on
};

std::vector<RouteCase> Cases() {
  return {
      // Conflict-free: auto on the unconstrained table.
      {"SELECT * FROM t ORDER BY f", RouteMode::kAuto,
       RouteKind::kConflictFree},
      {"SELECT f FROM t", RouteMode::kAuto, RouteKind::kConflictFree},
      // Rewrite (ABC/KW) forced on the constrained table.
      {"SELECT * FROM r ORDER BY a", RouteMode::kForceRewrite,
       RouteKind::kRewriteAbc},
      {"SELECT a FROM r", RouteMode::kForceRewrite, RouteKind::kRewriteKw},
      // Prover forced (and the prover-only set operation under auto).
      {"SELECT * FROM r WHERE b IS NOT NULL", RouteMode::kForceProver,
       RouteKind::kProver},
      {"SELECT * FROM r EXCEPT SELECT * FROM t", RouteMode::kAuto,
       RouteKind::kProver},
  };
}

void ExpectSameStats(const cqa::HippoStats& off, const cqa::HippoStats& on,
                     const std::string& ctx) {
  EXPECT_EQ(off.route, on.route) << ctx;
  EXPECT_EQ(off.candidates, on.candidates) << ctx;
  EXPECT_EQ(off.answers, on.answers) << ctx;
  EXPECT_EQ(off.prover_invocations, on.prover_invocations) << ctx;
  EXPECT_EQ(off.clauses_checked, on.clauses_checked) << ctx;
  EXPECT_EQ(off.membership_checks, on.membership_checks) << ctx;
  EXPECT_EQ(off.filtered_shortcuts, on.filtered_shortcuts) << ctx;
}

TEST(TraceDifferential, TracingNeverChangesAnswersOrHypergraph) {
  for (uint64_t seed : {11u, 23u}) {
    Database db;
    BuildInstance(&db, seed);

    // Freeze the hypergraph identity before any query runs.
    auto graph = db.Hypergraph();
    ASSERT_OK(graph.status());
    auto edges_before = graph.value()->CanonicalEdges();

    for (ExecEngine engine : {ExecEngine::kRow, ExecEngine::kBatch}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        for (const RouteCase& c : Cases()) {
          std::string ctx =
              c.sql + (engine == ExecEngine::kRow ? " [row" : " [batch") +
              " x" + std::to_string(threads) + " seed " +
              std::to_string(seed) + "]";

          cqa::HippoOptions options;
          options.exec_engine = engine;
          options.num_threads = threads;
          options.route = c.route;

          cqa::HippoStats stats_off;
          auto rs_off = db.ConsistentAnswers(c.sql, options, &stats_off);
          ASSERT_OK(rs_off.status()) << ctx;
          EXPECT_EQ(stats_off.route, c.expect) << ctx;

          obs::TraceSpan root("query");
          cqa::HippoOptions traced = options;
          traced.trace = &root;
          cqa::HippoStats stats_on;
          auto rs_on = db.ConsistentAnswers(c.sql, traced, &stats_on);
          root.End();
          ASSERT_OK(rs_on.status()) << ctx;

          // Bit-identical: the exact row sequence, not just the set.
          EXPECT_EQ(rs_off.value().rows, rs_on.value().rows) << ctx;
          ExpectSameStats(stats_off, stats_on, ctx);

          // The trace recorded the route it took.
          EXPECT_EQ(root.Attr("route"), RouteKindName(c.expect)) << ctx;
        }
      }
    }

    // No query — traced or not — may have touched the hypergraph: same
    // edges, same constraint provenance, same generation.
    auto graph_after = db.Hypergraph();
    ASSERT_OK(graph_after.status());
    EXPECT_EQ(graph_after.value()->CanonicalEdges(), edges_before);
  }
}

TEST(TraceDifferential, ExplainAnalyzeMatchesPlainExecution) {
  Database db;
  BuildInstance(&db, 7);
  for (const RouteCase& c : Cases()) {
    cqa::HippoOptions options;
    options.route = c.route;
    auto rs = db.ConsistentAnswers(c.sql, options);
    ASSERT_OK(rs.status()) << c.sql;

    cqa::HippoStats stats;
    auto text = db.ExplainAnalyze(c.sql, options, &stats);
    ASSERT_OK(text.status()) << c.sql;
    EXPECT_EQ(stats.route, c.expect) << c.sql;
    // The annotated plan names the query span, the route, and the answer
    // cardinality; per-operator lines carry wall times ("ms"/"us").
    EXPECT_NE(text.value().find("query"), std::string::npos) << text.value();
    EXPECT_NE(text.value().find(RouteKindName(c.expect)), std::string::npos)
        << text.value();
    EXPECT_NE(text.value().find(
                  "answers=" + std::to_string(rs.value().rows.size())),
              std::string::npos)
        << text.value();
    // Per-operator annotations: every route's plan has at least a scan
    // with a cardinality, and every span line carries a wall time.
    EXPECT_NE(text.value().find("Scan"), std::string::npos) << text.value();
    EXPECT_NE(text.value().find("rows="), std::string::npos) << text.value();
    EXPECT_TRUE(text.value().find(" us") != std::string::npos ||
                text.value().find(" ms") != std::string::npos)
        << text.value();
  }
}

}  // namespace
}  // namespace hippo
