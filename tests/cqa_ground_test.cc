// Grounding tests: formulas produced for each operator of the query class,
// plus the envelope construction.
#include "cqa/ground_formula.h"

#include <gtest/gtest.h>

#include "cqa/envelope.h"
#include "cqa/knowledge.h"
#include "db/database.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

using cqa::GroundFormula;
using cqa::Grounder;
using cqa::IndexMembershipProvider;

class GroundTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.Execute(
        "CREATE TABLE r (a INTEGER, b INTEGER);"
        "CREATE TABLE s (a INTEGER, b INTEGER);"
        "INSERT INTO r VALUES (1, 10), (2, 20);"
        "INSERT INTO s VALUES (1, 10), (3, 30)"));
  }

  GroundFormula Ground(const std::string& q, const Row& tuple) {
    auto plan = db_.Plan(q);
    EXPECT_OK(plan.status());
    IndexMembershipProvider membership(db_.catalog());
    Grounder grounder(*plan.value(), &membership);
    auto f = grounder.Ground(tuple);
    EXPECT_OK(f.status());
    return std::move(f).value();
  }

  Database db_;
};

TEST_F(GroundTest, ScanPresentFactIsLiteral) {
  GroundFormula f =
      Ground("SELECT * FROM r", Row{Value::Int(1), Value::Int(10)});
  ASSERT_EQ(f.kind, GroundFormula::Kind::kLit);
  EXPECT_EQ(f.fact, (RowId{0, 0}));
}

TEST_F(GroundTest, ScanAbsentFactIsFalse) {
  GroundFormula f =
      Ground("SELECT * FROM r", Row{Value::Int(9), Value::Int(9)});
  ASSERT_TRUE(f.IsConst());
  EXPECT_FALSE(f.const_value);
}

TEST_F(GroundTest, SelectionConstantFoldsPredicate) {
  GroundFormula pass = Ground("SELECT * FROM r WHERE b > 5",
                              Row{Value::Int(1), Value::Int(10)});
  EXPECT_EQ(pass.kind, GroundFormula::Kind::kLit);
  GroundFormula fail = Ground("SELECT * FROM r WHERE b > 15",
                              Row{Value::Int(1), Value::Int(10)});
  ASSERT_TRUE(fail.IsConst());
  EXPECT_FALSE(fail.const_value);
}

TEST_F(GroundTest, ProductSplitsTuple) {
  GroundFormula f = Ground(
      "SELECT * FROM r, s WHERE r.a = s.a",
      Row{Value::Int(1), Value::Int(10), Value::Int(1), Value::Int(10)});
  ASSERT_EQ(f.kind, GroundFormula::Kind::kAnd);
  ASSERT_EQ(f.children.size(), 2u);
  EXPECT_EQ(f.children[0].fact, (RowId{0, 0}));
  EXPECT_EQ(f.children[1].fact, (RowId{1, 0}));
}

TEST_F(GroundTest, JoinConditionFailureIsFalse) {
  GroundFormula f = Ground(
      "SELECT * FROM r, s WHERE r.a = s.a",
      Row{Value::Int(1), Value::Int(10), Value::Int(3), Value::Int(30)});
  ASSERT_TRUE(f.IsConst());
  EXPECT_FALSE(f.const_value);
}

TEST_F(GroundTest, UnionIsDisjunction) {
  GroundFormula f = Ground("SELECT * FROM r UNION SELECT * FROM s",
                           Row{Value::Int(1), Value::Int(10)});
  ASSERT_EQ(f.kind, GroundFormula::Kind::kOr);
  EXPECT_EQ(f.children[0].fact, (RowId{0, 0}));
  EXPECT_EQ(f.children[1].fact, (RowId{1, 0}));
}

TEST_F(GroundTest, UnionOneSideAbsentSimplifies) {
  GroundFormula f = Ground("SELECT * FROM r UNION SELECT * FROM s",
                           Row{Value::Int(2), Value::Int(20)});
  // (2,20) only in r: formula simplifies to the single literal.
  ASSERT_EQ(f.kind, GroundFormula::Kind::kLit);
  EXPECT_EQ(f.fact, (RowId{0, 1}));
}

TEST_F(GroundTest, DifferenceIsConjunctionWithNegation) {
  GroundFormula f = Ground("SELECT * FROM r EXCEPT SELECT * FROM s",
                           Row{Value::Int(1), Value::Int(10)});
  ASSERT_EQ(f.kind, GroundFormula::Kind::kAnd);
  EXPECT_EQ(f.children[0].kind, GroundFormula::Kind::kLit);
  ASSERT_EQ(f.children[1].kind, GroundFormula::Kind::kNot);
  EXPECT_EQ(f.children[1].children[0].fact, (RowId{1, 0}));
}

TEST_F(GroundTest, DifferenceAbsentSubtrahendSimplifies) {
  GroundFormula f = Ground("SELECT * FROM r EXCEPT SELECT * FROM s",
                           Row{Value::Int(2), Value::Int(20)});
  // Not in s -> ¬FALSE = TRUE -> just the r literal.
  ASSERT_EQ(f.kind, GroundFormula::Kind::kLit);
}

TEST_F(GroundTest, IntersectIsConjunction) {
  GroundFormula f = Ground("SELECT * FROM r INTERSECT SELECT * FROM s",
                           Row{Value::Int(1), Value::Int(10)});
  ASSERT_EQ(f.kind, GroundFormula::Kind::kAnd);
}

TEST_F(GroundTest, ProjectionPermutationInverts) {
  GroundFormula f =
      Ground("SELECT b, a FROM r", Row{Value::Int(10), Value::Int(1)});
  ASSERT_EQ(f.kind, GroundFormula::Kind::kLit);
  EXPECT_EQ(f.fact, (RowId{0, 0}));
}

TEST_F(GroundTest, DuplicatedColumnMustAgree) {
  GroundFormula ok =
      Ground("SELECT a, b, a FROM r",
             Row{Value::Int(1), Value::Int(10), Value::Int(1)});
  EXPECT_EQ(ok.kind, GroundFormula::Kind::kLit);
  GroundFormula bad =
      Ground("SELECT a, b, a FROM r",
             Row{Value::Int(1), Value::Int(10), Value::Int(2)});
  ASSERT_TRUE(bad.IsConst());
  EXPECT_FALSE(bad.const_value);
}

TEST_F(GroundTest, FormulaEvalAndCollect) {
  GroundFormula f = Ground("SELECT * FROM r EXCEPT SELECT * FROM s",
                           Row{Value::Int(1), Value::Int(10)});
  std::vector<RowId> facts;
  f.CollectFacts(&facts);
  EXPECT_EQ(facts.size(), 2u);
  // r-present, s-absent => true.
  EXPECT_TRUE(f.Eval([](RowId rid) { return rid.table == 0; }));
  // both present => false (subtrahend kills it).
  EXPECT_FALSE(f.Eval([](RowId) { return true; }));
}

TEST_F(GroundTest, ConstantFoldingConnectives) {
  GroundFormula t = GroundFormula::True();
  GroundFormula f = GroundFormula::False();
  GroundFormula lit = GroundFormula::Lit(RowId{0, 0});
  EXPECT_TRUE(GroundFormula::And(t, t).const_value);
  EXPECT_FALSE(GroundFormula::And(t, f).const_value);
  EXPECT_EQ(GroundFormula::And(t, lit).kind, GroundFormula::Kind::kLit);
  EXPECT_TRUE(GroundFormula::Or(f, t).const_value);
  EXPECT_EQ(GroundFormula::Or(f, lit).kind, GroundFormula::Kind::kLit);
  EXPECT_FALSE(GroundFormula::Not(t).const_value);
  EXPECT_EQ(GroundFormula::Not(lit).kind, GroundFormula::Kind::kNot);
}

TEST_F(GroundTest, ToStringRendering) {
  GroundFormula f = Ground("SELECT * FROM r EXCEPT SELECT * FROM s",
                           Row{Value::Int(1), Value::Int(10)});
  std::string s = f.ToString();
  EXPECT_NE(s.find("&"), std::string::npos);
  EXPECT_NE(s.find("!"), std::string::npos);
}

// --- envelope -----------------------------------------------------------------

TEST_F(GroundTest, EnvelopeDropsSubtrahend) {
  auto plan = db_.Plan("SELECT * FROM r EXCEPT SELECT * FROM s");
  ASSERT_OK(plan.status());
  PlanNodePtr env = cqa::BuildEnvelope(*plan.value());
  // Envelope of r − s is just (the projection over) r.
  EXPECT_EQ(env->kind(), PlanKind::kProject);
  ExecContext ctx{&db_.catalog(), nullptr};
  auto rs = Execute(*env, ctx);
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 2u);  // all of r, including (1,10)
}

TEST_F(GroundTest, EnvelopeHomomorphicOnUnion) {
  auto plan = db_.Plan("SELECT * FROM r UNION SELECT * FROM s");
  ASSERT_OK(plan.status());
  PlanNodePtr env = cqa::BuildEnvelope(*plan.value());
  EXPECT_EQ(env->kind(), PlanKind::kUnion);
}

TEST_F(GroundTest, EnvelopeStripsSort) {
  auto plan = db_.Plan("SELECT * FROM r ORDER BY a");
  ASSERT_OK(plan.status());
  PlanNodePtr env = cqa::BuildEnvelope(*plan.value());
  EXPECT_NE(env->kind(), PlanKind::kSort);
}

TEST_F(GroundTest, EnvelopeIsSupersetOfAnswersInAnyRepair) {
  // Make s inconsistent, then check env(r − s) ⊇ (r − s)(repair) for all
  // repairs.
  ASSERT_OK(db_.Execute(
      "INSERT INTO s VALUES (1, 11);"
      "CREATE CONSTRAINT fd_s FD ON s (a -> b)"));
  auto plan = db_.Plan("SELECT * FROM r EXCEPT SELECT * FROM s");
  ASSERT_OK(plan.status());
  PlanNodePtr env = cqa::BuildEnvelope(*plan.value());
  ExecContext ctx{&db_.catalog(), nullptr};
  auto env_rs = Execute(*env, ctx);
  ASSERT_OK(env_rs.status());

  auto graph = db_.Hypergraph();
  ASSERT_OK(graph.status());
  RepairEnumerator re(db_.catalog(), *graph.value());
  auto masks = re.EnumerateMasks(100);
  ASSERT_OK(masks.status());
  for (const RowMask& mask : masks.value()) {
    ExecContext rctx{&db_.catalog(), &mask};
    auto rs = Execute(*plan.value(), rctx);
    ASSERT_OK(rs.status());
    for (const Row& row : rs.value().rows) {
      EXPECT_TRUE(env_rs.value().Contains(row))
          << "envelope missed " << RowToString(row);
    }
  }
}

}  // namespace
}  // namespace hippo
