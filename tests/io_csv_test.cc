// CSV import/export and the conflict report.
#include "io/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "db/conflict_report.h"
#include "db/database.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.Execute(
        "CREATE TABLE emp (name VARCHAR, dept VARCHAR, salary INTEGER)"));
  }
  Database db_;
};

TEST_F(CsvTest, BasicImport) {
  auto stats = ImportCsvText(&db_, "emp",
                             "name,dept,salary\n"
                             "ann,sales,10\n"
                             "bob,eng,20\n");
  ASSERT_OK(stats.status());
  EXPECT_EQ(stats.value().rows_read, 2u);
  EXPECT_EQ(stats.value().rows_inserted, 2u);
  auto rs = db_.Query("SELECT * FROM emp ORDER BY name");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().rows[0],
            (Row{Value::String("ann"), Value::String("sales"),
                 Value::Int(10)}));
}

TEST_F(CsvTest, QuotedFieldsDelimitersAndEscapes) {
  auto stats = ImportCsvText(&db_, "emp",
                             "name,dept,salary\n"
                             "\"smith, jr\",\"r\"\"n\"\"d\",30\n");
  ASSERT_OK(stats.status());
  auto rs = db_.Query("SELECT name, dept FROM emp");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs.value().NumRows(), 1u);
  EXPECT_EQ(rs.value().rows[0][0], Value::String("smith, jr"));
  EXPECT_EQ(rs.value().rows[0][1], Value::String("r\"n\"d"));
}

TEST_F(CsvTest, EmbeddedNewlineInQuotedField) {
  auto stats = ImportCsvText(&db_, "emp",
                             "name,dept,salary\n\"two\nlines\",ops,1\n");
  ASSERT_OK(stats.status());
  auto rs = db_.Query("SELECT name FROM emp");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().rows[0][0], Value::String("two\nlines"));
}

TEST_F(CsvTest, CrlfAndMissingFinalNewline) {
  auto stats = ImportCsvText(&db_, "emp",
                             "name,dept,salary\r\nann,sales,10\r\nbob,eng,20");
  ASSERT_OK(stats.status());
  EXPECT_EQ(stats.value().rows_read, 2u);
}

TEST_F(CsvTest, NullTokenAndQuotedEmptyString) {
  auto stats = ImportCsvText(&db_, "emp",
                             "name,dept,salary\nann,,10\nbob,\"\",20\n");
  ASSERT_OK(stats.status());
  auto rs = db_.Query("SELECT dept FROM emp WHERE dept IS NULL");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 1u);  // ann's dept NULL; bob's "" string
  auto empty = db_.Query("SELECT dept FROM emp WHERE dept = ''");
  ASSERT_OK(empty.status());
  EXPECT_EQ(empty.value().NumRows(), 1u);
}

TEST_F(CsvTest, SetSemanticsDedupe) {
  auto stats = ImportCsvText(&db_, "emp",
                             "name,dept,salary\nann,sales,10\nann,sales,10\n");
  ASSERT_OK(stats.status());
  EXPECT_EQ(stats.value().rows_read, 2u);
  EXPECT_EQ(stats.value().rows_inserted, 1u);
}

TEST_F(CsvTest, TypeErrorsIdentifyLineAndColumn) {
  auto stats = ImportCsvText(&db_, "emp",
                             "name,dept,salary\nann,sales,ten\n");
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(stats.status().message().find("column 3"), std::string::npos);
}

TEST_F(CsvTest, ArityMismatchFails) {
  EXPECT_FALSE(
      ImportCsvText(&db_, "emp", "name,dept,salary\nann,sales\n").ok());
  EXPECT_FALSE(ImportCsvText(&db_, "emp", "name,dept\n").ok());  // header
}

TEST_F(CsvTest, MalformedQuotingFails) {
  EXPECT_FALSE(
      ImportCsvText(&db_, "emp", "name,dept,salary\nan\"n,sales,1\n").ok());
  EXPECT_FALSE(
      ImportCsvText(&db_, "emp", "name,dept,salary\n\"ann,sales,1\n").ok());
}

TEST_F(CsvTest, NoHeaderOption) {
  CsvOptions options;
  options.header = false;
  auto stats = ImportCsvText(&db_, "emp", "ann,sales,10\n", options);
  ASSERT_OK(stats.status());
  EXPECT_EQ(stats.value().rows_read, 1u);
}

TEST_F(CsvTest, RoundTripThroughFile) {
  ASSERT_OK(db_.Execute(
      "INSERT INTO emp VALUES ('a,b', 'x\ny', 1), ('q\"r', NULL, 2)"));
  auto rs = db_.Query("SELECT * FROM emp ORDER BY salary");
  ASSERT_OK(rs.status());

  std::string path = ::testing::TempDir() + "/hippo_csv_roundtrip.csv";
  ASSERT_OK(ExportCsvFile(rs.value(), path));

  Database db2;
  ASSERT_OK(db2.Execute(
      "CREATE TABLE emp (name VARCHAR, dept VARCHAR, salary INTEGER)"));
  auto imported = ImportCsvFile(&db2, "emp", path);
  ASSERT_OK(imported.status());
  auto rs2 = db2.Query("SELECT * FROM emp ORDER BY salary");
  ASSERT_OK(rs2.status());
  EXPECT_EQ(SortedRows(rs.value()), SortedRows(rs2.value()));
  std::remove(path.c_str());
}

TEST_F(CsvTest, CopyStatements) {
  std::string path = ::testing::TempDir() + "/hippo_copy_test.csv";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "name,dept,salary\nann,sales,10\nbob,eng,20\n";
  }
  ASSERT_OK(db_.Execute("COPY emp FROM '" + path + "'"));
  auto rs = db_.Query("SELECT * FROM emp");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 2u);

  std::string out_path = ::testing::TempDir() + "/hippo_copy_out.csv";
  ASSERT_OK(db_.Execute("COPY emp TO '" + out_path + "'"));
  Database db2;
  ASSERT_OK(db2.Execute(
      "CREATE TABLE emp (name VARCHAR, dept VARCHAR, salary INTEGER)"));
  ASSERT_OK(db2.Execute("COPY emp FROM '" + out_path + "'"));
  auto rs2 = db2.Query("SELECT * FROM emp");
  ASSERT_OK(rs2.status());
  EXPECT_EQ(SortedRows(rs.value()), SortedRows(rs2.value()));
  std::remove(path.c_str());
  std::remove(out_path.c_str());
}

TEST_F(CsvTest, MissingFileIsNotFound) {
  auto st = ImportCsvFile(&db_, "emp", "/nonexistent/nope.csv");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kNotFound);
}

TEST_F(CsvTest, ImportFeedsIncrementalMaintenance) {
  ASSERT_OK(db_.Execute("CREATE CONSTRAINT fd FD ON emp (name -> salary)"));
  ASSERT_OK(db_.EnableIncrementalMaintenance());
  auto stats = ImportCsvText(&db_, "emp",
                             "name,dept,salary\nann,sales,10\nann,ops,11\n");
  ASSERT_OK(stats.status());
  auto g = db_.Hypergraph();
  ASSERT_OK(g.status());
  EXPECT_EQ(g.value()->NumEdges(), 1u);
  EXPECT_EQ(db_.incremental_stats().edges_added, 1u);
}

// --- conflict report ---------------------------------------------------------

TEST(ConflictReportTest, RendersWitnessesAndVerdict) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE emp (name VARCHAR, salary INTEGER);"
      "CREATE TABLE audit (name VARCHAR);"
      "INSERT INTO emp VALUES ('ann', 10), ('ann', 11), ('bob', 20);"
      "INSERT INTO audit VALUES ('bob');"
      "CREATE CONSTRAINT fd FD ON emp (name -> salary);"
      "CREATE CONSTRAINT ex EXCLUSION ON emp (name), audit (name)"));
  auto report = GenerateConflictReport(&db);
  ASSERT_OK(report.status());
  const std::string& text = report.value();
  EXPECT_NE(text.find("verdict: INCONSISTENT"), std::string::npos);
  EXPECT_NE(text.find("violations: 1"), std::string::npos);
  EXPECT_NE(text.find("emp('ann', 10)"), std::string::npos) << text;
  EXPECT_NE(text.find("audit('bob')"), std::string::npos) << text;
  EXPECT_NE(text.find("repairs: 4"), std::string::npos) << text;
}

TEST(ConflictReportTest, ConsistentDatabase) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE emp (name VARCHAR, salary INTEGER);"
      "INSERT INTO emp VALUES ('ann', 10);"
      "CREATE CONSTRAINT fd FD ON emp (name -> salary)"));
  auto report = GenerateConflictReport(&db);
  ASSERT_OK(report.status());
  EXPECT_NE(report.value().find("verdict: CONSISTENT"), std::string::npos);
}

TEST(ConflictReportTest, DotOutput) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 1), (1, 2), (1, 3);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  std::string dot = g.value()->ToDot();
  EXPECT_NE(dot.find("graph conflicts {"), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);  // at least one edge line
  // Truncation annotation kicks in under a small cap.
  std::string truncated = g.value()->ToDot(/*max_edges=*/1);
  EXPECT_NE(truncated.find("1 of 3 edges shown"), std::string::npos)
      << truncated;
}

}  // namespace
}  // namespace hippo
