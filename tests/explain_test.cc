// Tests for the EXPLAIN facility.
#include <gtest/gtest.h>

#include "db/database.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.Execute(
        "CREATE TABLE r (a INTEGER, b INTEGER);"
        "CREATE TABLE s (a INTEGER, b INTEGER);"
        "CREATE CONSTRAINT fd FD ON r (a -> b)"));
  }
  Database db_;
};

TEST_F(ExplainTest, ShowsPlanEnvelopeAndRewriting) {
  auto text = db_.Explain("SELECT * FROM r WHERE a = 1");
  ASSERT_OK(text.status());
  EXPECT_NE(text.value().find("-- plan --"), std::string::npos);
  EXPECT_NE(text.value().find("-- envelope"), std::string::npos);
  EXPECT_NE(text.value().find("-- rewriting baseline --"), std::string::npos);
  EXPECT_NE(text.value().find("AntiJoin"), std::string::npos);
}

TEST_F(ExplainTest, EnvelopeDropsSubtrahendVisibly) {
  auto text = db_.Explain("SELECT * FROM r EXCEPT SELECT * FROM s");
  ASSERT_OK(text.status());
  // The plan section contains the Difference; the envelope section must not.
  size_t env = text.value().find("-- envelope");
  ASSERT_NE(env, std::string::npos);
  size_t rew = text.value().find("-- rewriting");
  std::string env_section = text.value().substr(env, rew - env);
  EXPECT_EQ(env_section.find("Difference"), std::string::npos);
  EXPECT_NE(text.value().find("rewriting inapplicable"), std::string::npos);
}

TEST_F(ExplainTest, ReportsNonSjudQueries) {
  auto text = db_.Explain("SELECT a FROM r");
  ASSERT_OK(text.status());
  EXPECT_NE(text.value().find("not in the SJUD class"), std::string::npos);
}

TEST_F(ExplainTest, ErrorsOnBadSql) {
  EXPECT_FALSE(db_.Explain("SELECT FROM").ok());
  EXPECT_FALSE(db_.Explain("SELECT * FROM missing").ok());
}

TEST_F(ExplainTest, AggregatePlansExplainCleanly) {
  ASSERT_OK(db_.Execute("CREATE TABLE g (a INTEGER, b INTEGER)"));
  auto text = db_.Explain(
      "SELECT a, SUM(b) FROM g GROUP BY a HAVING COUNT(*) > 1");
  ASSERT_OK(text.status());
  EXPECT_NE(text.value().find("Aggregate"), std::string::npos);
  EXPECT_NE(text.value().find("not in the SJUD class"), std::string::npos);
  EXPECT_NE(text.value().find("rewriting inapplicable"), std::string::npos);
}

TEST_F(ExplainTest, OptimizedSectionAppearsOnlyWhenDifferent) {
  // Planner output is already pushed down: no optimized section.
  auto simple = db_.Explain("SELECT * FROM r WHERE b > 10");
  ASSERT_OK(simple.status());
  EXPECT_EQ(simple.value().find("-- optimized"), std::string::npos)
      << simple.value();
}

}  // namespace
}  // namespace hippo
