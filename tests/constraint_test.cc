// Tests for denial-constraint construction and validation.
#include "constraints/constraint.h"

#include <gtest/gtest.h>

#include "db/database.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

class ConstraintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.Execute(
        "CREATE TABLE emp (name VARCHAR, dept VARCHAR, salary INTEGER);"
        "CREATE TABLE mgr (name VARCHAR, bonus INTEGER)"));
  }

  Result<DenialConstraint> FromSql(const std::string& text) {
    auto stmt = sql::ParseStatement(text);
    if (!stmt.ok()) return stmt.status();
    auto& cc = std::get<sql::CreateConstraintStmt>(stmt.value().node);
    return DenialConstraint::FromStatement(db_.catalog(), cc);
  }

  Database db_;
};

TEST_F(ConstraintTest, FdExpandsToTwoAtoms) {
  auto dc = FromSql("CREATE CONSTRAINT fd FD ON emp (name -> salary)");
  ASSERT_OK(dc.status());
  EXPECT_EQ(dc.value().arity(), 2u);
  EXPECT_TRUE(dc.value().IsBinary());
  EXPECT_TRUE(dc.value().fd_info().has_value());
  EXPECT_EQ(dc.value().fd_info()->lhs, (std::vector<size_t>{0}));
  EXPECT_EQ(dc.value().fd_info()->rhs, (std::vector<size_t>{2}));
  ASSERT_NE(dc.value().condition(), nullptr);
  // t1.name = t2.name AND t1.salary <> t2.salary
  EXPECT_NE(dc.value().condition()->ToString().find("<>"),
            std::string::npos);
}

TEST_F(ConstraintTest, FdMultiColumn) {
  auto dc = FromSql(
      "CREATE CONSTRAINT fd FD ON emp (name, dept -> salary)");
  ASSERT_OK(dc.status());
  EXPECT_EQ(dc.value().fd_info()->lhs, (std::vector<size_t>{0, 1}));
}

TEST_F(ConstraintTest, FdMultiRhsBuildsDisjunction) {
  auto dc = FromSql(
      "CREATE CONSTRAINT fd FD ON emp (name -> dept, salary)");
  ASSERT_OK(dc.status());
  EXPECT_NE(dc.value().condition()->ToString().find("OR"),
            std::string::npos);
}

TEST_F(ConstraintTest, FdUnknownColumnRejected) {
  EXPECT_EQ(FromSql("CREATE CONSTRAINT fd FD ON emp (nope -> salary)")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(ConstraintTest, FdUnknownTableRejected) {
  EXPECT_EQ(FromSql("CREATE CONSTRAINT fd FD ON nope (a -> b)")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(ConstraintTest, ExclusionBuildsEqualities) {
  auto dc = FromSql(
      "CREATE CONSTRAINT ex EXCLUSION ON emp (name), mgr (name)");
  ASSERT_OK(dc.status());
  EXPECT_EQ(dc.value().arity(), 2u);
  EXPECT_FALSE(dc.value().fd_info().has_value());
  EXPECT_EQ(dc.value().atoms()[0].table_name, "emp");
  EXPECT_EQ(dc.value().atoms()[1].table_name, "mgr");
}

TEST_F(ConstraintTest, ExclusionColumnCountMismatch) {
  EXPECT_EQ(
      FromSql("CREATE CONSTRAINT ex EXCLUSION ON emp (name, dept), mgr (name)")
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST_F(ConstraintTest, GeneralDenialBindsCondition) {
  auto dc = FromSql(
      "CREATE CONSTRAINT d DENIAL (emp AS e, mgr AS m WHERE "
      "e.name = m.name AND e.salary > m.bonus)");
  ASSERT_OK(dc.status());
  EXPECT_EQ(dc.value().arity(), 2u);
  EXPECT_EQ(dc.value().atom_offset(1), 3u);
  EXPECT_EQ(dc.value().atom_width(1), 2u);
  EXPECT_EQ(dc.value().combined_schema().NumColumns(), 5u);
}

TEST_F(ConstraintTest, UnaryDenial) {
  auto dc = FromSql(
      "CREATE CONSTRAINT d DENIAL (emp AS e WHERE e.salary < 0)");
  ASSERT_OK(dc.status());
  EXPECT_TRUE(dc.value().IsUnary());
}

TEST_F(ConstraintTest, DenialDuplicateAliasRejected) {
  EXPECT_EQ(FromSql("CREATE CONSTRAINT d DENIAL (emp AS e, emp AS e)")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ConstraintTest, DenialConditionTypeChecked) {
  EXPECT_EQ(FromSql("CREATE CONSTRAINT d DENIAL (emp AS e WHERE "
                    "e.name = e.salary)")
                .status()
                .code(),
            StatusCode::kTypeError);
  EXPECT_EQ(FromSql("CREATE CONSTRAINT d DENIAL (emp AS e WHERE e.salary)")
                .status()
                .code(),
            StatusCode::kTypeError);
}

TEST_F(ConstraintTest, ConditionReferencesBothAtoms) {
  auto dc = FromSql(
      "CREATE CONSTRAINT d DENIAL (emp AS a, emp AS b WHERE "
      "a.name = b.name AND a.dept <> b.dept)");
  ASSERT_OK(dc.status());
  std::vector<int> idx = CollectColumnIndexes(*dc.value().condition());
  std::sort(idx.begin(), idx.end());
  EXPECT_EQ(idx, (std::vector<int>{0, 1, 3, 4}));
}

TEST_F(ConstraintTest, ToStringMentionsAtomsAndCondition) {
  auto dc = FromSql("CREATE CONSTRAINT fd FD ON emp (name -> salary)");
  ASSERT_OK(dc.status());
  std::string s = dc.value().ToString();
  EXPECT_NE(s.find("fd:"), std::string::npos);
  EXPECT_NE(s.find("emp"), std::string::npos);
  EXPECT_NE(s.find("WHERE"), std::string::npos);
}

TEST_F(ConstraintTest, EmptyFdSidesRejected) {
  sql::FdSpec spec;
  spec.table = "emp";
  spec.rhs = {"salary"};
  EXPECT_EQ(
      DenialConstraint::FromFd(db_.catalog(), "x", spec).status().code(),
      StatusCode::kInvalidArgument);
}

TEST_F(ConstraintTest, NoAtomsRejected) {
  EXPECT_EQ(DenialConstraint::Make(db_.catalog(), "x", {}, nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ConstraintTest, DatabaseRejectsDuplicateConstraintNames) {
  ASSERT_OK(db_.Execute("CREATE CONSTRAINT c1 FD ON emp (name -> salary)"));
  EXPECT_EQ(db_.Execute("CREATE CONSTRAINT c1 FD ON emp (name -> dept)")
                .code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace hippo
