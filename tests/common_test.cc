// Unit tests for common utilities: Status/Result, strings, hashing, RNG.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("table foo");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "table foo");
  EXPECT_EQ(st.ToString(), "NotFound: table foo");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "AlreadyExists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotSupported), "NotSupported");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kTypeError), "TypeError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::TypeError("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
  EXPECT_EQ(r.ValueOr(42), 42);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  HIPPO_ASSIGN_OR_RETURN(int h, Half(x));
  HIPPO_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(StrUtilTest, ToLower) {
  EXPECT_EQ(ToLower("AbC_12"), "abc_12");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StrUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(StrUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%zu", static_cast<size_t>(10)), "10");
}

TEST(StrUtilTest, SqlQuote) {
  EXPECT_EQ(SqlQuote("abc"), "'abc'");
  EXPECT_EQ(SqlQuote("o'brien"), "'o''brien'");
}

TEST(HashTest, CombineChangesSeed) {
  size_t a = 0, b = 0;
  HashCombine(&a, 1);
  HashCombine(&b, 2);
  EXPECT_NE(a, b);
}

TEST(HashTest, Mix64Spreads) {
  std::unordered_set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::unordered_set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

}  // namespace
}  // namespace hippo
