// Engine option differential: the HippoEngine answer set is a function of
// the instance and the query alone — none of the execution knobs
// (membership mode, conflict-free filtering, prover-loop parallelism) may
// change it. Exercised on the randomized benchmark workloads from
// src/benchutil/workload.cc rather than hand-built instances, so the same
// generators that drive the performance evaluation also gate correctness.
#include "cqa/engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchutil/workload.h"
#include "db/database.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

using bench::QuerySet;
using bench::WorkloadSpec;
using cqa::HippoOptions;
using cqa::HippoStats;

/// All knob combinations under test: {kQuery, kKnowledgeGathering} ×
/// {filtering on, off} × {1 thread, 8 threads}.
std::vector<HippoOptions> AllOptionCombos() {
  std::vector<HippoOptions> combos;
  for (auto mode : {HippoOptions::MembershipMode::kQuery,
                    HippoOptions::MembershipMode::kKnowledgeGathering}) {
    for (bool filtering : {true, false}) {
      for (size_t threads : {size_t{1}, size_t{8}}) {
        HippoOptions opt;
        opt.membership = mode;
        opt.use_filtering = filtering;
        opt.num_threads = threads;
        combos.push_back(opt);
      }
    }
  }
  return combos;
}

std::string DescribeOptions(const HippoOptions& opt) {
  return std::string("membership=") +
         (opt.membership == HippoOptions::MembershipMode::kQuery ? "query"
                                                                 : "kg") +
         " filtering=" + (opt.use_filtering ? "on" : "off") +
         " threads=" + std::to_string(opt.num_threads);
}

/// Runs every query under every option combo and checks all answer sets
/// (and the candidate/answer counts) coincide with the baseline combo.
void ExpectOptionsInvariant(Database* db,
                            const std::vector<std::string>& queries) {
  const std::vector<HippoOptions> combos = AllOptionCombos();
  for (const std::string& q : queries) {
    HippoStats base_stats;
    auto baseline = db->ConsistentAnswers(q, combos.front(), &base_stats);
    ASSERT_OK(baseline.status()) << q;
    std::vector<Row> expected = SortedRows(baseline.value());
    for (size_t i = 1; i < combos.size(); ++i) {
      HippoStats stats;
      auto rs = db->ConsistentAnswers(q, combos[i], &stats);
      ASSERT_OK(rs.status()) << q << "\n" << DescribeOptions(combos[i]);
      EXPECT_EQ(SortedRows(rs.value()), expected)
          << "query: " << q << "\n"
          << DescribeOptions(combos[i]) << " diverged from "
          << DescribeOptions(combos.front());
      EXPECT_EQ(stats.candidates, base_stats.candidates) << q;
      EXPECT_EQ(stats.answers, base_stats.answers) << q;
    }
  }
}

class TwoRelationDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TwoRelationDifferential, OptionsDoNotChangeAnswers) {
  Database db;
  WorkloadSpec spec;
  spec.tuples_per_relation = 80;
  spec.conflict_rate = 0.15;
  spec.seed = GetParam();
  ASSERT_OK(bench::BuildTwoRelationWorkload(&db, spec));

  ExpectOptionsInvariant(
      &db, {QuerySet::Selection(), QuerySet::Join(), QuerySet::SelectiveJoin(),
            QuerySet::Union(), QuerySet::Difference(),
            QuerySet::UnionOfDifferences()});
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoRelationDifferential,
                         ::testing::Values(7u, 21u, 99u, 4242u));

class EmployeeDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EmployeeDifferential, OptionsDoNotChangeAnswers) {
  Database db;
  WorkloadSpec spec;
  spec.tuples_per_relation = 60;
  spec.conflict_rate = 0.2;
  spec.seed = GetParam();
  ASSERT_OK(bench::BuildEmployeeWorkload(&db, spec));

  ExpectOptionsInvariant(&db, {"SELECT * FROM emp",
                               "SELECT name, dept, salary FROM emp "
                               "WHERE salary > 0"});
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmployeeDifferential,
                         ::testing::Values(1u, 2u, 3u));

class IntegrationDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntegrationDifferential, OptionsDoNotChangeAnswers) {
  Database db;
  WorkloadSpec spec;
  spec.tuples_per_relation = 60;
  spec.conflict_rate = 0.2;
  spec.seed = GetParam();
  ASSERT_OK(bench::BuildIntegrationWorkload(&db, spec));

  ExpectOptionsInvariant(
      &db, {"SELECT * FROM vendors",
            "SELECT * FROM certified EXCEPT SELECT * FROM revoked",
            "SELECT * FROM certified UNION SELECT * FROM revoked"});
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrationDifferential,
                         ::testing::Values(5u, 17u, 2026u));

// On a small instance, every combo must also agree with exact all-repairs
// evaluation — anchoring the differential family to ground truth, not just
// to itself.
TEST(EngineDifferentialGroundTruth, SmallWorkloadMatchesAllRepairs) {
  Database db;
  WorkloadSpec spec;
  spec.tuples_per_relation = 14;
  spec.conflict_rate = 0.3;
  spec.seed = 11;
  ASSERT_OK(bench::BuildTwoRelationWorkload(&db, spec));

  for (const std::string& q :
       {QuerySet::Join(), QuerySet::Union(), QuerySet::Difference()}) {
    auto exact = db.ConsistentAnswersAllRepairs(q);
    ASSERT_OK(exact.status()) << q;
    for (const HippoOptions& opt : AllOptionCombos()) {
      auto rs = db.ConsistentAnswers(q, opt);
      ASSERT_OK(rs.status()) << q;
      EXPECT_EQ(SortedRows(rs.value()), SortedRows(exact.value()))
          << "query: " << q << "\n" << DescribeOptions(opt);
    }
  }
}

}  // namespace
}  // namespace hippo
