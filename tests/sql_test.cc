// Lexer and parser tests.
#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace hippo::sql {
namespace {

using ::hippo::StatusCode;

TEST(LexerTest, BasicTokens) {
  auto toks = Lex("SELECT a, 42 FROM t WHERE x <= 3.5").value();
  ASSERT_EQ(toks.size(), 11u);  // incl. kEnd
  EXPECT_TRUE(toks[0].IsKeyword("select"));
  EXPECT_EQ(toks[0].text, "select");  // normalized lower
  EXPECT_EQ(toks[2].kind, TokenKind::kSymbol);
  EXPECT_EQ(toks[3].kind, TokenKind::kInteger);
  EXPECT_TRUE(toks[8].IsSymbol("<="));
  EXPECT_EQ(toks[9].kind, TokenKind::kDouble);
  EXPECT_EQ(toks[10].kind, TokenKind::kEnd);
}

TEST(LexerTest, StringsWithEscapes) {
  auto toks = Lex("'o''brien' ''").value();
  EXPECT_EQ(toks[0].kind, TokenKind::kString);
  EXPECT_EQ(toks[0].text, "o'brien");
  EXPECT_EQ(toks[1].text, "");
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_EQ(Lex("'abc").status().code(), StatusCode::kInvalidArgument);
}

TEST(LexerTest, Comments) {
  auto toks = Lex("SELECT -- comment\n 1").value();
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].kind, TokenKind::kInteger);
}

TEST(LexerTest, NotEqualsNormalization) {
  auto toks = Lex("a != b <> c").value();
  EXPECT_TRUE(toks[1].IsSymbol("<>"));
  EXPECT_TRUE(toks[3].IsSymbol("<>"));
}

TEST(LexerTest, ArrowToken) {
  auto toks = Lex("(a -> b)").value();
  EXPECT_TRUE(toks[2].IsSymbol("->"));
}

TEST(LexerTest, NumbersWithExponent) {
  auto toks = Lex("1e3 2.5E-2 .5").value();
  EXPECT_EQ(toks[0].kind, TokenKind::kDouble);
  EXPECT_EQ(toks[1].kind, TokenKind::kDouble);
  EXPECT_EQ(toks[2].kind, TokenKind::kDouble);
}

TEST(LexerTest, IllegalCharacter) {
  EXPECT_EQ(Lex("a ~ b").status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, CreateTable) {
  auto stmt = ParseStatement(
      "CREATE TABLE emp (name VARCHAR, salary INTEGER, rate DOUBLE)");
  ASSERT_OK(stmt.status());
  auto& ct = std::get<CreateTableStmt>(stmt.value().node);
  EXPECT_EQ(ct.name, "emp");
  ASSERT_EQ(ct.columns.size(), 3u);
  EXPECT_EQ(ct.columns[0].first, "name");
  EXPECT_EQ(ct.columns[0].second, hippo::TypeId::kString);
  EXPECT_EQ(ct.columns[1].second, hippo::TypeId::kInt);
  EXPECT_EQ(ct.columns[2].second, hippo::TypeId::kDouble);
}

TEST(ParserTest, InsertMultiRow) {
  auto stmt = ParseStatement(
      "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (-3, NULL)");
  ASSERT_OK(stmt.status());
  auto& ins = std::get<InsertStmt>(stmt.value().node);
  EXPECT_EQ(ins.table, "t");
  ASSERT_EQ(ins.rows.size(), 3u);
  EXPECT_EQ(ins.rows[0].size(), 2u);
}

TEST(ParserTest, SelectBasic) {
  auto stmt = ParseStatement("SELECT * FROM t WHERE a = 1");
  ASSERT_OK(stmt.status());
  auto& sel = std::get<SelectStmt>(stmt.value().node);
  ASSERT_TRUE(sel.query->IsLeaf());
  const SelectCore& core = *sel.query->core;
  EXPECT_TRUE(core.items[0].star);
  ASSERT_EQ(core.from.size(), 1u);
  EXPECT_EQ(core.from[0].base.table, "t");
  EXPECT_NE(core.where, nullptr);
}

TEST(ParserTest, SelectListAliases) {
  auto stmt = ParseStatement("SELECT a AS x, b y, t.* FROM t AS u, v t");
  ASSERT_OK(stmt.status());
  auto& sel = std::get<SelectStmt>(stmt.value().node);
  const SelectCore& core = *sel.query->core;
  ASSERT_EQ(core.items.size(), 3u);
  EXPECT_EQ(core.items[0].alias, "x");
  EXPECT_EQ(core.items[1].alias, "y");
  EXPECT_TRUE(core.items[2].star);
  EXPECT_EQ(core.items[2].star_qualifier, "t");
  EXPECT_EQ(core.from[0].base.EffectiveAlias(), "u");
  EXPECT_EQ(core.from[1].base.EffectiveAlias(), "t");
}

TEST(ParserTest, JoinOn) {
  auto stmt = ParseStatement(
      "SELECT * FROM a JOIN b ON a.x = b.x INNER JOIN c ON b.y = c.y, d");
  ASSERT_OK(stmt.status());
  auto& sel = std::get<SelectStmt>(stmt.value().node);
  const SelectCore& core = *sel.query->core;
  ASSERT_EQ(core.from.size(), 2u);
  EXPECT_EQ(core.from[0].joins.size(), 2u);
  EXPECT_EQ(core.from[1].base.table, "d");
}

TEST(ParserTest, SetOperationPrecedence) {
  // INTERSECT binds tighter than UNION.
  auto stmt = ParseStatement(
      "SELECT * FROM a UNION SELECT * FROM b INTERSECT SELECT * FROM c");
  ASSERT_OK(stmt.status());
  auto& sel = std::get<SelectStmt>(stmt.value().node);
  ASSERT_FALSE(sel.query->IsLeaf());
  EXPECT_EQ(sel.query->op, SetOpKind::kUnion);
  EXPECT_TRUE(sel.query->left->IsLeaf());
  ASSERT_FALSE(sel.query->right->IsLeaf());
  EXPECT_EQ(sel.query->right->op, SetOpKind::kIntersect);
}

TEST(ParserTest, ParenthesizedQuery) {
  auto stmt = ParseStatement(
      "(SELECT * FROM a EXCEPT SELECT * FROM b) UNION SELECT * FROM c");
  ASSERT_OK(stmt.status());
  auto& sel = std::get<SelectStmt>(stmt.value().node);
  ASSERT_FALSE(sel.query->IsLeaf());
  EXPECT_EQ(sel.query->op, SetOpKind::kUnion);
  EXPECT_EQ(sel.query->left->op, SetOpKind::kExcept);
}

TEST(ParserTest, OrderBy) {
  auto stmt = ParseStatement("SELECT * FROM t ORDER BY a DESC, b ASC, c");
  ASSERT_OK(stmt.status());
  auto& sel = std::get<SelectStmt>(stmt.value().node);
  ASSERT_EQ(sel.order_by.size(), 3u);
  EXPECT_FALSE(sel.order_by[0].ascending);
  EXPECT_TRUE(sel.order_by[1].ascending);
  EXPECT_TRUE(sel.order_by[2].ascending);
}

TEST(ParserTest, UnionAllRejected) {
  EXPECT_EQ(ParseStatement("SELECT * FROM a UNION ALL SELECT * FROM b")
                .status()
                .code(),
            StatusCode::kNotSupported);
}

TEST(ParserTest, FdConstraint) {
  auto stmt = ParseStatement(
      "CREATE CONSTRAINT fd1 FD ON emp (name, dept -> salary, bonus)");
  ASSERT_OK(stmt.status());
  auto& cc = std::get<CreateConstraintStmt>(stmt.value().node);
  EXPECT_EQ(cc.name, "fd1");
  auto& fd = std::get<FdSpec>(cc.spec);
  EXPECT_EQ(fd.table, "emp");
  EXPECT_EQ(fd.lhs, (std::vector<std::string>{"name", "dept"}));
  EXPECT_EQ(fd.rhs, (std::vector<std::string>{"salary", "bonus"}));
}

TEST(ParserTest, ExclusionConstraint) {
  auto stmt = ParseStatement(
      "CREATE CONSTRAINT ex EXCLUSION ON a (x, y), b (u, v)");
  ASSERT_OK(stmt.status());
  auto& cc = std::get<CreateConstraintStmt>(stmt.value().node);
  auto& ex = std::get<ExclusionSpec>(cc.spec);
  EXPECT_EQ(ex.table1, "a");
  EXPECT_EQ(ex.cols1, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(ex.table2, "b");
  EXPECT_EQ(ex.cols2, (std::vector<std::string>{"u", "v"}));
}

TEST(ParserTest, DenialConstraint) {
  auto stmt = ParseStatement(
      "CREATE CONSTRAINT d DENIAL (r AS x, s y WHERE x.a = y.a AND x.b > 3)");
  ASSERT_OK(stmt.status());
  auto& cc = std::get<CreateConstraintStmt>(stmt.value().node);
  auto& dn = std::get<DenialSpec>(cc.spec);
  ASSERT_EQ(dn.atoms.size(), 2u);
  EXPECT_EQ(dn.atoms[0].alias, "x");
  EXPECT_EQ(dn.atoms[1].alias, "y");
  EXPECT_NE(dn.where, nullptr);
}

TEST(ParserTest, DenialConstraintNoWhere) {
  auto stmt = ParseStatement("CREATE CONSTRAINT d DENIAL (r AS x)");
  ASSERT_OK(stmt.status());
  auto& dn = std::get<DenialSpec>(
      std::get<CreateConstraintStmt>(stmt.value().node).spec);
  EXPECT_EQ(dn.where, nullptr);
}

TEST(ParserTest, ScriptSplitsOnSemicolons) {
  auto stmts = ParseScript(
      "CREATE TABLE a (x INTEGER); INSERT INTO a VALUES (1); "
      "SELECT * FROM a;");
  ASSERT_OK(stmts.status());
  EXPECT_EQ(stmts.value().size(), 3u);
}

TEST(ParserTest, ErrorsMentionOffsets) {
  auto bad = ParseStatement("SELECT FROM t");
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("offset"), std::string::npos);
}

struct BadSql {
  const char* text;
};
class ParserRejects : public ::testing::TestWithParam<BadSql> {};

TEST_P(ParserRejects, Rejected) {
  EXPECT_FALSE(ParseStatement(GetParam().text).ok()) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserRejects,
    ::testing::Values(
        BadSql{"SELECT"},
        BadSql{"SELECT *"},
        BadSql{"SELECT * FROM"},
        BadSql{"CREATE TABLE t"},
        BadSql{"CREATE TABLE t (a)"},
        BadSql{"CREATE TABLE t (a BLOB)"},
        BadSql{"INSERT t VALUES (1)"},
        BadSql{"INSERT INTO t (1)"},
        BadSql{"SELECT * FROM t WHERE"},
        BadSql{"SELECT * FROM t extra stuff"},
        BadSql{"CREATE CONSTRAINT c FD ON t (a b)"},
        BadSql{"CREATE CONSTRAINT c FD ON t (a -> )"},
        BadSql{"CREATE CONSTRAINT c WHATEVER"},
        BadSql{"SELECT * FROM a JOIN b"},
        BadSql{"SELECT * FROM t ORDER a"},
        BadSql{"DELETE t"},
        BadSql{"UPDATE t a = 1"},
        BadSql{"COPY t 'x.csv'"},
        BadSql{"SELECT MEDIAN(a) FROM t"},
        BadSql{"SELECT a FROM t GROUP a"}));

// The DML / COPY / aggregation surface added for the long-running-activity
// scenario parses.
class ParserAccepts : public ::testing::TestWithParam<BadSql> {};

TEST_P(ParserAccepts, Accepted) {
  auto r = ParseStatement(GetParam().text);
  EXPECT_TRUE(r.ok()) << GetParam().text << " -> "
                      << r.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserAccepts,
    ::testing::Values(
        BadSql{"DELETE FROM t"},
        BadSql{"DELETE FROM t WHERE a = 1 AND b <> 2"},
        BadSql{"UPDATE t SET a = a + 1"},
        BadSql{"UPDATE t SET a = 1, b = 'x' WHERE c IS NULL"},
        BadSql{"COPY t FROM 'data.csv'"},
        BadSql{"COPY t TO 'out.csv'"},
        BadSql{"SELECT COUNT(*) FROM t"},
        BadSql{"SELECT a, SUM(b + 1) FROM t GROUP BY a HAVING COUNT(*) > 2"},
        BadSql{"SELECT a FROM t GROUP BY a, b"},
        BadSql{"CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR UNIQUE)"},
        BadSql{"CREATE TABLE t (a INTEGER, CHECK (a > 0), UNIQUE (a))"}));

}  // namespace
}  // namespace hippo::sql
