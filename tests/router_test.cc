// Query-router unit tests: conjunctive decomposition, Koutris–Wijsen
// attack graphs on the textbook tractable/intractable examples, KW key
// eligibility, the NULL-semantics clique gate, and the force-route
// overrides.
#include "plan/router.h"

#include <gtest/gtest.h>

#include "db/database.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

// ---------------------------------------------------------------------------
// DecomposeConjunctive

class RouterDecomposeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.Execute(
        "CREATE TABLE r (a INTEGER, b INTEGER);"
        "CREATE TABLE s (a INTEGER, b INTEGER)"));
  }

  PlanNodePtr Plan(const std::string& sql) {
    auto plan = db_.Plan(sql);
    EXPECT_OK(plan.status()) << sql;
    return std::move(plan).value();
  }

  Database db_;
};

TEST_F(RouterDecomposeTest, JoinWithEqualityClasses) {
  auto shape = DecomposeConjunctive(
      *Plan("SELECT r.a, s.b FROM r, s WHERE r.b = s.a AND r.a > 1"));
  ASSERT_OK(shape.status());
  const ConjunctiveShape& sh = shape.value();
  ASSERT_EQ(sh.atoms.size(), 2u);
  EXPECT_EQ(sh.atoms[0].table_name, "r");
  EXPECT_EQ(sh.atoms[1].table_name, "s");
  EXPECT_EQ(sh.atoms[0].offset, 0u);
  EXPECT_EQ(sh.atoms[1].offset, 2u);
  EXPECT_EQ(sh.total_width, 4u);
  // r.b (global 1) and s.a (global 2) share a class; the other two
  // positions are singletons: 3 classes total.
  EXPECT_EQ(sh.num_classes, 3u);
  EXPECT_EQ(sh.class_of[1], sh.class_of[2]);
  EXPECT_NE(sh.class_of[0], sh.class_of[1]);
  EXPECT_NE(sh.class_of[3], sh.class_of[1]);
  // Output: r.a (global 0) and s.b (global 3).
  ASSERT_EQ(sh.project_cols.size(), 2u);
  EXPECT_EQ(sh.project_cols[0], 0u);
  EXPECT_EQ(sh.project_cols[1], 3u);
  // r.a > 1 became a local predicate of atom 0.
  EXPECT_FALSE(sh.atom_local[0].empty());
  EXPECT_EQ(sh.FreeClasses().size(), 2u);
}

TEST_F(RouterDecomposeTest, RejectsNonConjunctivePlans) {
  EXPECT_EQ(DecomposeConjunctive(
                *Plan("SELECT * FROM r UNION SELECT * FROM s"))
                .status()
                .code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(DecomposeConjunctive(
                *Plan("SELECT * FROM r, s WHERE r.a < s.a"))
                .status()
                .code(),
            StatusCode::kNotSupported);  // cross-atom non-equality
}

TEST_F(RouterDecomposeTest, RootSortIsCaptured) {
  auto shape = DecomposeConjunctive(*Plan("SELECT a, b FROM r ORDER BY a"));
  ASSERT_OK(shape.status());
  EXPECT_NE(shape.value().root_sort, nullptr);
}

// ---------------------------------------------------------------------------
// Attack graph

TEST(AttackGraphTest, TractableChainIsAcyclic) {
  // Boolean R(x, y) ⋈ S(y, z), key(R) = {x}, key(S) = {y} — the canonical
  // tractable Koutris–Wijsen example. R attacks S through y (y is outside
  // the closure of {x}), S does not attack R (y is its own key), so the
  // graph is acyclic with R as the unattacked pivot.
  const size_t x = 0, y = 1, z = 2;
  AttackGraph g = BuildAttackGraph(
      /*key_classes=*/{{x}, {y}},
      /*var_classes=*/{{x, y}, {y, z}},
      /*free_classes=*/{}, /*num_classes=*/3);
  EXPECT_TRUE(g.acyclic);
  EXPECT_TRUE(g.attacks[0][1]);
  EXPECT_FALSE(g.attacks[1][0]);
  ASSERT_TRUE(g.UnattackedAtom().has_value());
  EXPECT_EQ(g.UnattackedAtom().value(), 0u);
}

TEST(AttackGraphTest, MutualAttackIsCyclic) {
  // Boolean R(x, y) ⋈ S(y, x), key(R) = {x}, key(S) = {y}: each atom
  // attacks the other through the variable that is not its own key —
  // certain answers here are coNP-complete and the router must refuse.
  const size_t x = 0, y = 1;
  AttackGraph g = BuildAttackGraph(
      /*key_classes=*/{{x}, {y}},
      /*var_classes=*/{{x, y}, {x, y}},
      /*free_classes=*/{}, /*num_classes=*/2);
  EXPECT_FALSE(g.acyclic);
  EXPECT_TRUE(g.attacks[0][1]);
  EXPECT_TRUE(g.attacks[1][0]);
  EXPECT_FALSE(g.UnattackedAtom().has_value());
}

TEST(AttackGraphTest, FreeVariablesDisarmAttacks) {
  // Same chain as the tractable example, but with y free (projected):
  // free variables seed every closure, so the R→S attack through y
  // disappears and both atoms are unattacked.
  const size_t x = 0, y = 1, z = 2;
  AttackGraph g = BuildAttackGraph(
      /*key_classes=*/{{x}, {y}},
      /*var_classes=*/{{x, y}, {y, z}},
      /*free_classes=*/{y}, /*num_classes=*/3);
  EXPECT_TRUE(g.acyclic);
  EXPECT_FALSE(g.attacks[0][1]);
  EXPECT_FALSE(g.attacks[1][0]);
}

// ---------------------------------------------------------------------------
// KW key eligibility

class KwKeyColumnsTest : public ::testing::Test {
 protected:
  uint32_t TableId(const std::string& name) {
    auto plan = db_.Plan("SELECT * FROM " + name);
    EXPECT_OK(plan.status()) << name;
    return *CollectPlanTables(*plan.value()).begin();
  }
  Database db_;
};

TEST_F(KwKeyColumnsTest, PrimaryKeyFdAndBareTables) {
  ASSERT_OK(db_.Execute(
      "CREATE TABLE keyed (k INTEGER, v1 INTEGER, v2 INTEGER);"
      "CREATE CONSTRAINT pk FD ON keyed (k -> v1, v2);"
      "CREATE TABLE bare (a INTEGER, b INTEGER)"));
  auto keyed = KwKeyColumns(TableId("keyed"), db_.catalog(),
                            db_.constraints(), db_.foreign_keys());
  ASSERT_OK(keyed.status());
  EXPECT_EQ(keyed.value(), std::vector<size_t>{0});
  // No constraints: key = the whole row (no two distinct tuples conflict).
  auto bare = KwKeyColumns(TableId("bare"), db_.catalog(), db_.constraints(),
                           db_.foreign_keys());
  ASSERT_OK(bare.status());
  EXPECT_EQ(bare.value(), (std::vector<size_t>{0, 1}));
}

TEST_F(KwKeyColumnsTest, PartialFdIsNotAPrimaryKey) {
  // The FD does not cover column c: repairs are not one-choice-per-block.
  ASSERT_OK(db_.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER, c INTEGER);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  EXPECT_EQ(KwKeyColumns(TableId("t"), db_.catalog(), db_.constraints(),
                         db_.foreign_keys())
                .status()
                .code(),
            StatusCode::kNotSupported);
}

TEST_F(KwKeyColumnsTest, ForeignKeyRoleDisqualifies) {
  // FK DDL here requires a constraint-free parent (its tuples must be
  // immutable across repairs); both roles still disqualify a table from
  // the KW primary-key class — FK edges are not one-choice-per-block.
  ASSERT_OK(db_.Execute(
      "CREATE TABLE parent (k INTEGER, v INTEGER);"
      "CREATE TABLE child (k INTEGER, w INTEGER);"
      "CREATE CONSTRAINT fk FOREIGN KEY child (k) REFERENCES parent (k)"));
  EXPECT_EQ(KwKeyColumns(TableId("parent"), db_.catalog(), db_.constraints(),
                         db_.foreign_keys())
                .status()
                .code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(KwKeyColumns(TableId("child"), db_.catalog(), db_.constraints(),
                         db_.foreign_keys())
                .status()
                .code(),
            StatusCode::kNotSupported);
}

// ---------------------------------------------------------------------------
// Clique gate

TEST(CliqueGateTest, CliqueBlocksPass) {
  // Two blocks: {0,1,2} fully connected (3 edges) and {5,6} (1 edge).
  ConflictHypergraph g;
  auto V = [](uint32_t row) { return RowId{0, row}; };
  g.AddEdge({V(0), V(1)}, 0);
  g.AddEdge({V(0), V(2)}, 0);
  g.AddEdge({V(1), V(2)}, 0);
  g.AddEdge({V(5), V(6)}, 0);
  EXPECT_TRUE(TableConflictsAreCliques(g, 0));
  EXPECT_TRUE(TableConflictsAreCliques(g, 7));  // untouched table: vacuous
}

TEST(CliqueGateTest, PathOfThreeFails) {
  // 0–1–2 without the 0–2 edge: the non-transitive shape NULL-laden FDs
  // can produce; "some repair keeps both endpoints" breaks the
  // one-choice-per-block structure the KW rewriting needs.
  ConflictHypergraph g;
  auto V = [](uint32_t row) { return RowId{0, row}; };
  g.AddEdge({V(0), V(1)}, 0);
  g.AddEdge({V(1), V(2)}, 0);
  EXPECT_FALSE(TableConflictsAreCliques(g, 0));
}

TEST(CliqueGateTest, CrossTableOrWideEdgesFail) {
  ConflictHypergraph cross;
  cross.AddEdge({RowId{0, 0}, RowId{1, 0}}, 0);
  EXPECT_FALSE(TableConflictsAreCliques(cross, 0));
  ConflictHypergraph wide;
  wide.AddEdge({RowId{0, 0}, RowId{0, 1}, RowId{0, 2}}, 0);
  EXPECT_FALSE(TableConflictsAreCliques(wide, 0));
}

// ---------------------------------------------------------------------------
// Force-route overrides (through the Database facade)

class ForceRouteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.Execute(
        "CREATE TABLE emp (name VARCHAR, salary INTEGER);"
        "INSERT INTO emp VALUES ('smith', 50000), ('smith', 60000),"
        "                       ('jones', 40000);"
        "CREATE CONSTRAINT fd FD ON emp (name -> salary);"
        "CREATE TABLE clean (a INTEGER, b INTEGER);"
        "INSERT INTO clean VALUES (1, 2), (3, 4)"));
  }
  Database db_;
};

TEST_F(ForceRouteTest, ConflictFreeOnlyWhenNoEdgesTouchThePlan) {
  cqa::HippoOptions cf;
  cf.route = RouteMode::kForceConflictFree;
  cqa::HippoStats stats;
  auto ok = db_.ConsistentAnswers("SELECT a FROM clean", cf, &stats);
  ASSERT_OK(ok.status());
  EXPECT_EQ(ok.value().NumRows(), 2u);
  EXPECT_EQ(stats.route, RouteKind::kConflictFree);
  EXPECT_EQ(stats.routed_conflict_free, 1u);
  // emp has a live conflict edge: plain evaluation would not be certain.
  EXPECT_EQ(db_.ConsistentAnswers("SELECT * FROM emp", cf).status().code(),
            StatusCode::kNotSupported);
}

TEST_F(ForceRouteTest, ForceRewriteFailsOutsideTheFirstOrderClass) {
  cqa::HippoOptions rw;
  rw.route = RouteMode::kForceRewrite;
  // Difference is in neither first-order class.
  EXPECT_EQ(db_.ConsistentAnswers(
                   "SELECT * FROM emp EXCEPT SELECT * FROM emp", rw)
                .status()
                .code(),
            StatusCode::kNotSupported);
  // Self-join defeats both ABC completeness and KW's self-join-free
  // requirement for narrowing projection.
  EXPECT_EQ(db_.ConsistentAnswers(
                   "SELECT e1.name FROM emp AS e1, emp AS e2 "
                   "WHERE e1.salary = e2.salary",
                   rw)
                .status()
                .code(),
            StatusCode::kNotSupported);
  // In class: quantifier-free → ABC.
  cqa::HippoStats stats;
  auto ok = db_.ConsistentAnswers("SELECT * FROM emp", rw, &stats);
  ASSERT_OK(ok.status());
  EXPECT_EQ(stats.route, RouteKind::kRewriteAbc);
  // In class: narrowing projection over the key table → KW.
  cqa::HippoStats kw_stats;
  auto kw = db_.ConsistentAnswers("SELECT name FROM emp", rw, &kw_stats);
  ASSERT_OK(kw.status());
  EXPECT_EQ(kw_stats.route, RouteKind::kRewriteKw);
  EXPECT_EQ(kw.value().NumRows(), 2u);  // smith and jones are both certain
}

TEST_F(ForceRouteTest, ForceProverFailsOutsideSjud) {
  cqa::HippoOptions pr;
  pr.route = RouteMode::kForceProver;
  EXPECT_EQ(db_.ConsistentAnswers("SELECT name FROM emp", pr).status().code(),
            StatusCode::kNotSupported);
  cqa::HippoStats stats;
  auto ok = db_.ConsistentAnswers("SELECT * FROM emp", pr, &stats);
  ASSERT_OK(ok.status());
  EXPECT_EQ(stats.route, RouteKind::kProver);
  EXPECT_EQ(stats.routed_prover, 1u);
}

TEST_F(ForceRouteTest, AutoPrefersCheaperRoutesAndStaysSound) {
  // Conflict-free beats rewriting beats prover; every route agrees with
  // exact all-repairs evaluation.
  struct Case {
    const char* sql;
    RouteKind expect;
  };
  const Case cases[] = {
      {"SELECT * FROM clean", RouteKind::kConflictFree},
      {"SELECT a FROM clean", RouteKind::kConflictFree},  // narrowing is fine
      {"SELECT * FROM emp", RouteKind::kRewriteAbc},
      {"SELECT name FROM emp", RouteKind::kRewriteKw},
      {"SELECT * FROM emp EXCEPT SELECT * FROM emp", RouteKind::kProver},
  };
  for (const Case& c : cases) {
    cqa::HippoStats stats;
    auto rs = db_.ConsistentAnswers(c.sql, cqa::HippoOptions(), &stats);
    ASSERT_OK(rs.status()) << c.sql;
    EXPECT_EQ(stats.route, c.expect) << c.sql;
    auto exact = db_.ConsistentAnswersAllRepairs(c.sql);
    if (exact.ok()) {
      EXPECT_EQ(SortedRows(rs.value()), SortedRows(exact.value())) << c.sql;
    }
  }
}

}  // namespace
}  // namespace hippo
