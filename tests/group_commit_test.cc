// Group-commit pipeline tests: the epoch-prefix invariant under
// concurrent writers, async bulk/DDL rounds with small-commit replay,
// coalescing, the blocking-Commit compatibility surface, and pipeline
// lifecycle (shutdown drain, backpressure).
//
// The centerpiece is the randomized differential: N writers push
// interleaved FD/FK-churn scripts (small DML, bulk loads, constraint
// drop+recreate DDL) through the admission ring; afterwards every
// published epoch E is checked bit-identically — rows, tombstones, edge
// ids, edge provenance, consistent answers — against a fresh oracle
// Database applying, in admission-sequence order, exactly the commits
// whose receipt.epoch <= E. An in-flight bulk has a lower sequence but a
// higher epoch than the small commits that overtake it on the master
// lineage, so the prefix check covers the replay rule, not just serial
// batching.
//
// This suite rides in the tsan CI lane (ci.yml filters on `group_commit`):
// it must stay race-free under ThreadSanitizer, not merely pass.
#include <algorithm>
#include <chrono>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/str_util.h"
#include "db/database.h"
#include "service/query_service.h"
#include "service/snapshot.h"
#include "test_util.h"

namespace hippo {
namespace {

using service::CommitReceipt;
using service::QueryService;
using service::ServiceOptions;
using service::ServiceStats;
using service::SnapshotPtr;

constexpr const char* kSchema =
    "CREATE TABLE dept(did INTEGER, budget INTEGER);"
    "CREATE TABLE emp(name VARCHAR, did INTEGER, salary INTEGER);"
    "CREATE CONSTRAINT fd_emp FD ON emp (name -> salary);"
    "CREATE CONSTRAINT fk_emp FOREIGN KEY emp (did) REFERENCES dept (did)";

constexpr const char* kSeed =
    "INSERT INTO dept VALUES (1, 100);"
    "INSERT INTO dept VALUES (2, 200);"
    "INSERT INTO dept VALUES (3, 300)";

/// Detect options pinned on service AND oracle: num_threads > 1 puts both
/// on the BulkLoad canonical edge-id order, which is id-identical for
/// every thread count > 1 — so the differential compares edge ids exactly
/// even though the host's "all threads" resolution would fall back to the
/// serial historical order on a single-core machine.
DetectOptions PinnedDetect() {
  DetectOptions detect;
  detect.num_threads = 2;
  return detect;
}

ServiceOptions PipelineOptions() {
  ServiceOptions options;
  options.num_workers = 2;
  options.bulk_redetect_statements = 16;
  options.detect = PinnedDetect();
  return options;
}

/// Fresh oracle in the same initial state as the service's master: empty
/// database, pinned detect options, incremental maintenance on.
std::unique_ptr<Database> MakeOracle() {
  auto oracle = std::make_unique<Database>();
  oracle->SetDetectOptions(PinnedDetect());
  EXPECT_OK(oracle->EnableIncrementalMaintenance());
  return oracle;
}

// --- graph/catalog identity (same bit-level checks as snapshot_cow_test) ---

void ExpectGraphsIdentical(const ConflictHypergraph& a,
                           const ConflictHypergraph& b) {
  ASSERT_EQ(a.NumEdgeSlots(), b.NumEdgeSlots());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (ConflictHypergraph::EdgeId e = 0; e < a.NumEdgeSlots(); ++e) {
    ASSERT_EQ(a.EdgeAlive(e), b.EdgeAlive(e)) << "edge " << e;
    if (!a.EdgeAlive(e)) continue;
    ASSERT_EQ(a.edge(e), b.edge(e)) << "edge " << e;
    ASSERT_EQ(a.edge_constraint(e), b.edge_constraint(e)) << "edge " << e;
  }
}

void ExpectCatalogsIdentical(const Catalog& a, const Catalog& b) {
  ASSERT_EQ(a.NumTables(), b.NumTables());
  for (uint32_t t = 0; t < a.NumTables(); ++t) {
    const Table& ta = a.table(t);
    const Table& tb = b.table(t);
    ASSERT_EQ(ta.NumRows(), tb.NumRows()) << "table " << t;
    ASSERT_EQ(ta.NumLiveRows(), tb.NumLiveRows()) << "table " << t;
    for (uint32_t r = 0; r < ta.NumRows(); ++r) {
      ASSERT_EQ(ta.IsLive(r), tb.IsLive(r)) << "t" << t << "#" << r;
      ASSERT_EQ(ta.row(r), tb.row(r)) << "t" << t << "#" << r;
    }
  }
}

/// One admitted commit with enough context for oracle replay.
struct Committed {
  CommitReceipt receipt;
  std::string sql;
};

/// Applies one logged commit to the oracle with the same maintenance
/// semantics the pipeline used for it: plain Execute under the live
/// maintainer for small groups; for redetected groups, apply without the
/// maintainer and rebuild the graph from scratch (the serial equivalent of
/// both the sync redetect path and the async fork round — full detection
/// depends only on the resulting state, so per-commit rebuilds converge to
/// the same graph as the pipeline's one-rebuild-per-group).
void OracleApply(Database* oracle, const Committed& entry) {
  if (entry.receipt.phases.redetected) {
    oracle->DisableIncrementalMaintenance();
    ASSERT_OK(oracle->Execute(entry.sql));
    oracle->InvalidateHypergraph();
    ASSERT_OK(oracle->EnableIncrementalMaintenance());
  } else {
    ASSERT_OK(oracle->Execute(entry.sql));
  }
}

// ---------------------------------------------------------------------------
// The randomized differential.
// ---------------------------------------------------------------------------

TEST(GroupCommit, RandomizedWritersMatchSerialOracleAtEveryEpoch) {
  constexpr size_t kWriters = 4;
  constexpr size_t kCommitsPerWriter = 15;

  QueryService service(PipelineOptions());

  std::mutex log_mu;
  std::vector<Committed> log;
  auto reap = [&](std::future<CommitReceipt>* fut, std::string sql) {
    CommitReceipt receipt = fut->get();
    EXPECT_OK(receipt.status) << sql;
    std::lock_guard<std::mutex> lock(log_mu);
    log.push_back({std::move(receipt), std::move(sql)});
  };

  // Boot commits go through the same pipeline and into the same log so the
  // oracle replays the complete history from an empty database.
  {
    std::future<CommitReceipt> fut = service.CommitAsync(kSchema);
    reap(&fut, kSchema);
    fut = service.CommitAsync(kSeed);
    reap(&fut, kSeed);
  }

  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(1000 + w);
      size_t ddl_rounds = 0;
      // Pipelined submission window: up to 3 in flight per writer so
      // commits from different writers actually coalesce and overtake.
      std::deque<std::pair<std::future<CommitReceipt>, std::string>> window;
      for (size_t c = 0; c < kCommitsPerWriter; ++c) {
        std::string script;
        size_t kind = static_cast<size_t>(rng.Uniform(10));
        if (kind == 0) {
          // Bulk: >= bulk_redetect_statements inserts → full re-detection
          // (async round; later small commits overtake and get replayed).
          for (size_t i = 0; i < 20; ++i) {
            script += StrFormat(
                "INSERT INTO emp VALUES ('b%zu_%zu_%zu', %zu, %zu);", w, c, i,
                static_cast<size_t>(1 + rng.Uniform(3)),
                static_cast<size_t>(10 + rng.Uniform(5)));
          }
        } else if (kind == 1) {
          // Constraint DDL, also a redetect round. Per-writer FD names keep
          // every script's statements succeeding under any interleaving:
          // only writer w ever creates or drops fd_w<w>.
          std::string name = StrFormat("fd_w%zu", w);
          script =
              ddl_rounds == 0
                  ? StrFormat("CREATE CONSTRAINT %s FD ON emp (name -> did)",
                              name.c_str())
                  : StrFormat(
                        "DROP CONSTRAINT %s;"
                        "CREATE CONSTRAINT %s FD ON emp (name -> did)",
                        name.c_str(), name.c_str());
          ++ddl_rounds;
        } else if (kind < 5) {
          // FK churn: emp inserts that may dangle, dept deletes that may
          // strand employees (deleting an already-deleted did is a no-op).
          script = rng.Uniform(2) == 0
                       ? StrFormat("INSERT INTO emp VALUES ('k%zu', %zu, 1)",
                                   static_cast<size_t>(rng.Uniform(8)),
                                   static_cast<size_t>(1 + rng.Uniform(5)))
                       : StrFormat("DELETE FROM dept WHERE did = %zu",
                                   static_cast<size_t>(1 + rng.Uniform(5)));
        } else {
          // FD churn on a small name pool: conflicting salaries for the
          // same name, with occasional drains.
          script = rng.Uniform(4) == 0
                       ? StrFormat("DELETE FROM emp WHERE name = 'e%zu'",
                                   static_cast<size_t>(rng.Uniform(6)))
                       : StrFormat("INSERT INTO emp VALUES ('e%zu', 1, %zu)",
                                   static_cast<size_t>(rng.Uniform(6)),
                                   static_cast<size_t>(rng.Uniform(4)));
        }
        std::string copy = script;
        window.emplace_back(service.CommitAsync(std::move(copy)),
                            std::move(script));
        if (window.size() >= 3) {
          reap(&window.front().first, std::move(window.front().second));
          window.pop_front();
        }
      }
      while (!window.empty()) {
        reap(&window.front().first, std::move(window.front().second));
        window.pop_front();
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ASSERT_FALSE(::testing::Test::HasFailure()) << "a commit failed";
  ASSERT_EQ(log.size(), 2 + kWriters * kCommitsPerWriter);

  // Admission tickets are the serial order: sort and require uniqueness.
  std::sort(log.begin(), log.end(), [](const Committed& a, const Committed& b) {
    return a.receipt.sequence < b.receipt.sequence;
  });
  std::map<uint64_t, SnapshotPtr> epochs;
  for (size_t i = 0; i < log.size(); ++i) {
    if (i > 0) {
      ASSERT_NE(log[i].receipt.sequence, log[i - 1].receipt.sequence);
    }
    ASSERT_NE(log[i].receipt.snapshot, nullptr);
    ASSERT_EQ(log[i].receipt.snapshot->epoch(), log[i].receipt.epoch);
    ASSERT_GE(log[i].receipt.group_size, 1u);
    epochs[log[i].receipt.epoch] = log[i].receipt.snapshot;
  }

  // Every published epoch must equal serial application, in sequence
  // order, of exactly the commits with receipt.epoch <= E. A fresh oracle
  // per epoch is required (not one rolling oracle): a bulk's statements
  // splice into the middle of sequence order at its later swap epoch, so
  // prefixes are not nested.
  const cqa::HippoOptions hippo_options;
  size_t checked = 0;
  for (const auto& [epoch, snap] : epochs) {
    std::unique_ptr<Database> oracle = MakeOracle();
    for (const Committed& entry : log) {
      if (entry.receipt.epoch > epoch) continue;
      OracleApply(oracle.get(), entry);
      ASSERT_FALSE(::testing::Test::HasFailure())
          << "oracle replay failed at epoch " << epoch << " seq "
          << entry.receipt.sequence;
    }
    ExpectCatalogsIdentical(snap->catalog(), oracle->catalog());
    Result<const ConflictHypergraph*> graph = oracle->Hypergraph();
    ASSERT_OK(graph.status());
    ExpectGraphsIdentical(snap->hypergraph(), *graph.value());
    ASSERT_FALSE(::testing::Test::HasFailure())
        << "state diverged at epoch " << epoch;
    // Consistent answers at this epoch (prover route included: fd_emp
    // conflicts survive the churn).
    Result<ResultSet> got =
        snap->ConsistentAnswers("SELECT name, did, salary FROM emp", hippo_options);
    Result<ResultSet> want =
        oracle->ConsistentAnswers("SELECT name, did, salary FROM emp", hippo_options);
    ASSERT_OK(got.status());
    ASSERT_OK(want.status());
    EXPECT_EQ(SortedRows(got.value()), SortedRows(want.value()))
        << "answers diverged at epoch " << epoch;
    ++checked;
  }
  ASSERT_GE(checked, 10u);

  // The workload must actually have exercised both classes and coalescing.
  ServiceStats stats = service.stats();
  EXPECT_GE(stats.incremental_commits, 1u);
  EXPECT_GE(stats.bulk_redetects, 1u);
  EXPECT_EQ(stats.commits, log.size());
}

// ---------------------------------------------------------------------------
// Async rounds: small commits keep landing and get replayed onto the fork.
// ---------------------------------------------------------------------------

TEST(GroupCommit, AsyncRoundReplaysOvertakingSmallCommits) {
  ServiceOptions options = PipelineOptions();
  options.bulk_redetect_statements = 64;
  QueryService service(options);
  ASSERT_OK(service.Commit(kSchema));
  ASSERT_OK(service.Commit(kSeed));

  size_t emp_rows = 0;
  bool overtook = false;
  // The round's wall time depends on the host; retry with a bigger bulk
  // until at least one small commit lands during a round.
  size_t bulk_rows = 512;
  for (int attempt = 0; attempt < 5 && !overtook; ++attempt, bulk_rows *= 2) {
    std::string bulk;
    for (size_t i = 0; i < bulk_rows; ++i) {
      bulk += StrFormat("INSERT INTO emp VALUES ('a%d_%zu', 1, 1);", attempt,
                        i);
    }
    emp_rows += bulk_rows;
    std::future<CommitReceipt> bulk_fut = service.CommitAsync(bulk);
    std::vector<std::future<CommitReceipt>> smalls;
    while (bulk_fut.wait_for(std::chrono::seconds(0)) !=
               std::future_status::ready &&
           smalls.size() < 256) {
      smalls.push_back(service.CommitAsync(
          StrFormat("INSERT INTO emp VALUES ('s%d_%zu', 2, 2)", attempt,
                    smalls.size())));
      ++emp_rows;
    }
    CommitReceipt bulk_receipt = bulk_fut.get();
    ASSERT_OK(bulk_receipt.status);
    EXPECT_TRUE(bulk_receipt.phases.redetected);
    for (std::future<CommitReceipt>& fut : smalls) {
      CommitReceipt r = fut.get();
      ASSERT_OK(r.status);
      // Overtaking: admitted after the bulk (higher sequence) yet published
      // on the master lineage before the swap (lower epoch).
      if (r.sequence > bulk_receipt.sequence &&
          r.epoch < bulk_receipt.epoch) {
        overtook = true;
      }
    }
  }
  ASSERT_TRUE(overtook) << "no small commit overtook an async round";
  ServiceStats stats = service.stats();
  EXPECT_GE(stats.async_redetects, 1u);
  EXPECT_GE(stats.replayed_commits, 1u);

  // Nothing lost to the lineage swap: the final snapshot holds every
  // insert, bulk and replayed alike.
  Result<ResultSet> rows = service.snapshot()->Query("SELECT name FROM emp");
  ASSERT_OK(rows.status());
  EXPECT_EQ(rows.value().rows.size(), emp_rows);
}

// ---------------------------------------------------------------------------
// Coalescing: commits queued behind a stalled pipeline drain as one group.
// ---------------------------------------------------------------------------

TEST(GroupCommit, QueuedSmallCommitsCoalesceIntoOneEpoch) {
  ServiceOptions options = PipelineOptions();
  options.async_bulk_redetect = false;  // sync redetect stalls the pipeline
  options.bulk_redetect_statements = 64;
  QueryService service(options);
  ASSERT_OK(service.Commit(kSchema));
  ASSERT_OK(service.Commit(kSeed));

  size_t bulk_rows = 256;
  bool coalesced = false;
  for (int attempt = 0; attempt < 5 && !coalesced; ++attempt, bulk_rows *= 2) {
    std::string bulk;
    for (size_t i = 0; i < bulk_rows; ++i) {
      bulk += StrFormat("INSERT INTO emp VALUES ('c%d_%zu', 1, 1);", attempt,
                        i);
    }
    std::future<CommitReceipt> bulk_fut = service.CommitAsync(bulk);
    std::vector<std::string> scripts;
    for (size_t i = 0; i < 12; ++i) {
      scripts.push_back(StrFormat("INSERT INTO emp VALUES ('g%d_%zu', 2, 2)",
                                  attempt, i));
    }
    std::vector<std::future<CommitReceipt>> futures =
        service.CommitMany(std::move(scripts));
    ASSERT_OK(bulk_fut.get().status);
    for (std::future<CommitReceipt>& fut : futures) {
      CommitReceipt r = fut.get();
      ASSERT_OK(r.status);
      if (r.group_size >= 2) coalesced = true;
    }
  }
  ASSERT_TRUE(coalesced) << "no group commit formed behind the stall";
  EXPECT_GE(service.stats().max_group_size, 2u);
}

// ---------------------------------------------------------------------------
// Compatibility and ordering surfaces.
// ---------------------------------------------------------------------------

TEST(GroupCommit, BlockingCommitKeepsExclusivePathSemantics) {
  QueryService service(PipelineOptions());
  ASSERT_OK(service.Commit(kSchema));
  uint64_t epoch_before = service.snapshot()->epoch();

  // Mid-script error: the prefix stays applied and published, the error
  // comes back — same contract as the old exclusive commit path.
  Status st = service.Commit(
      "INSERT INTO dept VALUES (7, 700);"
      "INSERT INTO nosuch VALUES (1)");
  EXPECT_FALSE(st.ok());
  SnapshotPtr snap = service.snapshot();
  EXPECT_GT(snap->epoch(), epoch_before);
  Result<ResultSet> rows = snap->Query("SELECT did FROM dept");
  ASSERT_OK(rows.status());
  EXPECT_EQ(rows.value().rows.size(), 1u);

  // The pipeline survives the error and keeps committing.
  ASSERT_OK(service.Commit("INSERT INTO dept VALUES (8, 800)"));
  EXPECT_GE(service.stats().commits, 3u);
}

TEST(GroupCommit, CommitManyPreservesSubmissionOrder) {
  QueryService service(PipelineOptions());
  ASSERT_OK(service.Commit(kSchema));

  std::vector<std::string> scripts;
  for (size_t i = 0; i < 16; ++i) {
    // Same name, increasing salary: final live rows encode apply order.
    scripts.push_back(StrFormat(
        "DELETE FROM emp WHERE name = 'o';"
        "INSERT INTO emp VALUES ('o', 1, %zu)", i));
  }
  std::vector<std::future<CommitReceipt>> futures =
      service.CommitMany(std::move(scripts));
  uint64_t last_sequence = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    CommitReceipt r = futures[i].get();
    ASSERT_OK(r.status);
    if (i > 0) {
      EXPECT_GT(r.sequence, last_sequence);
    }
    last_sequence = r.sequence;
  }
  Result<ResultSet> rows =
      service.snapshot()->Query("SELECT salary FROM emp");
  ASSERT_OK(rows.status());
  ASSERT_EQ(rows.value().rows.size(), 1u);
  EXPECT_EQ(rows.value().rows[0][0], Value::Int(15));
}

// ---------------------------------------------------------------------------
// Lifecycle: shutdown drain and admission backpressure.
// ---------------------------------------------------------------------------

TEST(GroupCommit, ShutdownDrainsAdmittedCommitsThenRejects) {
  auto service = std::make_unique<QueryService>(PipelineOptions());
  ASSERT_OK(service->Commit(kSchema));

  std::vector<std::future<CommitReceipt>> futures;
  for (size_t i = 0; i < 24; ++i) {
    futures.push_back(service->CommitAsync(
        StrFormat("INSERT INTO dept VALUES (%zu, %zu)", i, i)));
  }
  service->Shutdown();
  for (std::future<CommitReceipt>& fut : futures) {
    ASSERT_OK(fut.get().status);  // admitted before shutdown → must land
  }
  CommitReceipt rejected =
      service->CommitAsync("INSERT INTO dept VALUES (99, 99)").get();
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(rejected.snapshot, nullptr);
}

TEST(GroupCommit, TinyRingBlocksWritersWithoutLosingCommits) {
  ServiceOptions options = PipelineOptions();
  options.write_queue_depth = 2;
  QueryService service(options);
  ASSERT_OK(service.Commit(kSchema));

  std::vector<std::future<CommitReceipt>> futures;
  for (size_t i = 0; i < 32; ++i) {  // far more than the ring holds
    futures.push_back(service.CommitAsync(
        StrFormat("INSERT INTO dept VALUES (%zu, %zu)", i, i)));
  }
  for (std::future<CommitReceipt>& fut : futures) {
    ASSERT_OK(fut.get().status);
  }
  Result<ResultSet> rows = service.snapshot()->Query("SELECT did FROM dept");
  ASSERT_OK(rows.status());
  EXPECT_EQ(rows.value().rows.size(), 32u);
}

TEST(GroupCommit, RejectModeResolvesOverflowWithResourceExhausted) {
  ServiceOptions options = PipelineOptions();
  options.write_queue_depth = 2;
  options.reject_writes_when_full = true;
  QueryService service(options);
  ASSERT_OK(service.Commit(kSchema));

  size_t landed = 0;
  size_t rejected = 0;
  for (size_t i = 0; i < 64; ++i) {
    CommitReceipt r =
        service
            .CommitAsync(StrFormat("INSERT INTO dept VALUES (%zu, 1)", i))
            .get();
    if (r.status.ok()) {
      ++landed;
    } else {
      ASSERT_EQ(r.status.code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  // Blocking .get() per commit means the ring drains between submissions,
  // so everything lands; the mode's contract is "never block, maybe
  // reject" — verify accounting matches whichever happened.
  EXPECT_EQ(landed + rejected, 64u);
  Result<ResultSet> rows = service.snapshot()->Query("SELECT did FROM dept");
  ASSERT_OK(rows.status());
  EXPECT_EQ(rows.value().rows.size(), landed);
}

}  // namespace
}  // namespace hippo
