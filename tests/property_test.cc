// The central correctness property of the whole system:
//
//   For random small inconsistent databases and every query shape in the
//   SJUD class, Hippo's consistent answers (in every optimization mode)
//   equal the answers obtained by evaluating the query over every repair
//   and intersecting.
//
// This differentially tests detection, the hypergraph, enveloping,
// grounding, CNF, the prover, and the engine against the independent
// repair-enumeration implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "db/database.h"
#include "hypergraph/hypergraph.h"
#include "repairs/repair_enumerator.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

using cqa::HippoOptions;

/// Builds a random database with FD, exclusion and unary constraints.
/// Small domains force plenty of conflicts of all shapes.
void BuildRandomDb(Database* db, Rng* rng) {
  ASSERT_OK(db->Execute(
      "CREATE TABLE p (a INTEGER, b INTEGER);"
      "CREATE TABLE q (a INTEGER, b INTEGER);"
      "CREATE CONSTRAINT fd_p FD ON p (a -> b);"
      "CREATE CONSTRAINT fd_q FD ON q (a -> b);"
      "CREATE CONSTRAINT ex EXCLUSION ON p (a), q (b);"
      "CREATE CONSTRAINT cap DENIAL (p AS x WHERE x.b > 2)"));
  int np = 4 + static_cast<int>(rng->Uniform(6));
  int nq = 4 + static_cast<int>(rng->Uniform(6));
  for (int i = 0; i < np; ++i) {
    ASSERT_OK(db->InsertRow("p", Row{Value::Int(rng->UniformInt(0, 4)),
                                     Value::Int(rng->UniformInt(0, 3))}));
  }
  for (int i = 0; i < nq; ++i) {
    ASSERT_OK(db->InsertRow("q", Row{Value::Int(rng->UniformInt(0, 4)),
                                     Value::Int(rng->UniformInt(0, 3))}));
  }
}

const char* kQueries[] = {
    // S
    "SELECT * FROM p",
    "SELECT * FROM p WHERE b <= 1",
    "SELECT * FROM p WHERE a = 2 OR b = 2",
    // safe P (permutation)
    "SELECT b, a FROM p",
    // J
    "SELECT * FROM p, q WHERE p.a = q.a",
    "SELECT * FROM p, q WHERE p.a = q.a AND p.b < q.b",
    "SELECT * FROM p x, p y WHERE x.a = y.a AND x.b < y.b",
    // U
    "SELECT * FROM p UNION SELECT * FROM q",
    "SELECT * FROM p WHERE a = 0 UNION SELECT * FROM p WHERE a = 1",
    // D
    "SELECT * FROM p EXCEPT SELECT * FROM q",
    "SELECT * FROM q EXCEPT SELECT * FROM p",
    // I
    "SELECT * FROM p INTERSECT SELECT * FROM q",
    // compositions
    "(SELECT * FROM p EXCEPT SELECT * FROM q) UNION "
    "(SELECT * FROM q EXCEPT SELECT * FROM p)",
    "(SELECT * FROM p UNION SELECT * FROM q) EXCEPT "
    "(SELECT * FROM p INTERSECT SELECT * FROM q)",
    "SELECT * FROM p WHERE b <= 1 EXCEPT "
    "(SELECT * FROM q WHERE a = 1 UNION SELECT * FROM q WHERE a = 2)",
};

class CqaDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CqaDifferential, HippoEqualsAllRepairsOnRandomInstances) {
  Rng rng(GetParam());
  Database db;
  BuildRandomDb(&db, &rng);

  auto repair_count = db.CountRepairs(100000);
  ASSERT_OK(repair_count.status());

  for (const char* q : kQueries) {
    auto exact = db.ConsistentAnswersAllRepairs(q);
    ASSERT_OK(exact.status()) << q;

    for (bool filtering : {true, false}) {
      for (auto mode : {HippoOptions::MembershipMode::kKnowledgeGathering,
                        HippoOptions::MembershipMode::kQuery}) {
        HippoOptions opt;
        opt.membership = mode;
        opt.use_filtering = filtering;
        auto hippo_rs = db.ConsistentAnswers(q, opt);
        ASSERT_OK(hippo_rs.status()) << q;
        EXPECT_EQ(SortedRows(hippo_rs.value()), SortedRows(exact.value()))
            << "query: " << q << "\nfiltering: " << filtering
            << " mode: " << static_cast<int>(mode)
            << "\nrepairs: " << repair_count.value();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqaDifferential,
                         ::testing::Range<uint64_t>(1000, 1040));

// A second sweep focused on FD-only instances with larger conflict groups
// (3+ tuples sharing a key), which stress the prover's blocking search.
class CqaFdGroups : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CqaFdGroups, DenseConflictGroups) {
  Rng rng(GetParam());
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE p (a INTEGER, b INTEGER);"
      "CREATE TABLE q (a INTEGER, b INTEGER);"
      "CREATE CONSTRAINT fd_p FD ON p (a -> b);"
      "CREATE CONSTRAINT fd_q FD ON q (a -> b)"));
  // Two keys, many values: conflict cliques of size 3-4.
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK(db.InsertRow("p", Row{Value::Int(rng.UniformInt(0, 1)),
                                    Value::Int(rng.UniformInt(0, 3))}));
    ASSERT_OK(db.InsertRow("q", Row{Value::Int(rng.UniformInt(0, 1)),
                                    Value::Int(rng.UniformInt(0, 3))}));
  }
  for (const char* q :
       {"SELECT * FROM p", "SELECT * FROM p EXCEPT SELECT * FROM q",
        "SELECT * FROM p UNION SELECT * FROM q",
        "SELECT * FROM p, q WHERE p.a = q.a"}) {
    auto exact = db.ConsistentAnswersAllRepairs(q);
    auto hippo_rs = db.ConsistentAnswers(q);
    ASSERT_OK(exact.status()) << q;
    ASSERT_OK(hippo_rs.status()) << q;
    EXPECT_EQ(SortedRows(hippo_rs.value()), SortedRows(exact.value())) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqaFdGroups,
                         ::testing::Range<uint64_t>(2000, 2024));

// Metamorphic properties that must hold regardless of the instance.
class CqaMetamorphic : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CqaMetamorphic, AnswersAreSubsetOfEnvelopeAndMonotone) {
  Rng rng(GetParam());
  Database db;
  BuildRandomDb(&db, &rng);

  // (1) CQA(Q) ⊆ Q(DB) for monotone Q (no difference): consistent answers
  // of monotone queries are answers over the full instance.
  for (const char* q :
       {"SELECT * FROM p", "SELECT * FROM p, q WHERE p.a = q.a",
        "SELECT * FROM p UNION SELECT * FROM q"}) {
    auto plain = db.Query(q);
    auto cqa_rs = db.ConsistentAnswers(q);
    ASSERT_OK(plain.status());
    ASSERT_OK(cqa_rs.status());
    for (const Row& row : cqa_rs.value().rows) {
      EXPECT_TRUE(plain.value().Contains(row)) << q;
    }
  }

  // (2) Q(core) ⊆ CQA(Q) for monotone Q: everything true in the
  // conflict-free part is true in every repair.
  for (const char* q :
       {"SELECT * FROM p", "SELECT * FROM p UNION SELECT * FROM q"}) {
    auto core = db.QueryOverCore(q);
    auto cqa_rs = db.ConsistentAnswers(q);
    ASSERT_OK(core.status());
    ASSERT_OK(cqa_rs.status());
    for (const Row& row : core.value().rows) {
      EXPECT_TRUE(cqa_rs.value().Contains(row)) << q;
    }
  }

  // (3) Consistency restored => CQA = plain evaluation.
  Database clean;
  ASSERT_OK(clean.Execute(
      "CREATE TABLE p (a INTEGER, b INTEGER);"
      "CREATE CONSTRAINT fd_p FD ON p (a -> b)"));
  for (int i = 0; i < 6; ++i) {
    ASSERT_OK(clean.InsertRow(
        "p", Row{Value::Int(i), Value::Int(rng.UniformInt(0, 3))}));
  }
  auto plain = clean.Query("SELECT * FROM p");
  auto cqa_rs = clean.ConsistentAnswers("SELECT * FROM p");
  ASSERT_OK(plain.status());
  ASSERT_OK(cqa_rs.status());
  EXPECT_EQ(SortedRows(plain.value()), SortedRows(cqa_rs.value()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqaMetamorphic,
                         ::testing::Range<uint64_t>(3000, 3016));

// The differential property must survive arbitrary update sequences with
// incremental hypergraph maintenance switched on: after every batch of
// random INSERT/DELETE/UPDATE statements, Hippo (over the incrementally
// maintained graph) must still agree with all-repairs evaluation (over a
// fresh enumeration of the mutated instance).
class CqaAfterDml : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CqaAfterDml, DifferentialHoldsAcrossUpdates) {
  Rng rng(GetParam());
  Database db;
  BuildRandomDb(&db, &rng);
  ASSERT_OK(db.EnableIncrementalMaintenance());

  for (int batch = 0; batch < 3; ++batch) {
    for (int op = 0; op < 6; ++op) {
      const char* table = rng.Uniform(2) == 0 ? "p" : "q";
      switch (rng.Uniform(3)) {
        case 0:
          ASSERT_OK(db.InsertRow(
              table, Row{Value::Int(rng.UniformInt(0, 4)),
                         Value::Int(rng.UniformInt(0, 3))}));
          break;
        case 1:
          ASSERT_OK(db.DeleteRow(
              table, Row{Value::Int(rng.UniformInt(0, 4)),
                         Value::Int(rng.UniformInt(0, 3))}));
          break;
        case 2: {
          std::string sql =
              std::string("UPDATE ") + table + " SET b = " +
              std::to_string(rng.UniformInt(0, 3)) + " WHERE a = " +
              std::to_string(rng.UniformInt(0, 4));
          ASSERT_OK(db.Execute(sql));
          break;
        }
      }
    }
    for (const char* q :
         {"SELECT * FROM p", "SELECT * FROM p EXCEPT SELECT * FROM q",
          "SELECT * FROM p UNION SELECT * FROM q",
          "SELECT * FROM p, q WHERE p.a = q.a"}) {
      auto exact = db.ConsistentAnswersAllRepairs(q);
      auto hippo_rs = db.ConsistentAnswers(q);
      ASSERT_OK(exact.status()) << q;
      ASSERT_OK(hippo_rs.status()) << q;
      EXPECT_EQ(SortedRows(hippo_rs.value()), SortedRows(exact.value()))
          << "after batch " << batch << ", query: " << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqaAfterDml,
                         ::testing::Range<uint64_t>(4000, 4020));

// ---------------------------------------------------------------------------
// RepairEnumerator vs the hypergraph's maximal independent sets, computed by
// an independent brute-force over all subsets of the conflicting vertices.
// Repairs are exactly the maximal independent sets (conflict-free tuples
// belong to every repair), so the enumerator's deleted sets must be the
// complements of the MIS within the conflicting-vertex universe.
// ---------------------------------------------------------------------------

/// All maximal independent subsets of the conflicting vertices, returned as
/// sorted *deleted* sets (conflicting vertices NOT in the set), themselves
/// sorted — the same canonical form EnumerateDeletedSets uses.
std::vector<std::vector<RowId>> BruteForceDeletedSets(
    const ConflictHypergraph& graph) {
  std::vector<RowId> vertices = graph.ConflictingVertices();
  std::sort(vertices.begin(), vertices.end());
  const size_t n = vertices.size();
  EXPECT_LE(n, 20u) << "instance too large for subset brute force";

  std::vector<VertexSet> independent;  // all independent subsets, by mask
  std::vector<uint64_t> masks;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    VertexSet set;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) set.insert(vertices[i]);
    }
    if (!graph.ContainsFullEdge(set)) {
      independent.push_back(std::move(set));
      masks.push_back(mask);
    }
  }

  std::vector<std::vector<RowId>> deleted_sets;
  for (size_t i = 0; i < independent.size(); ++i) {
    // Maximal iff no independent strict superset exists.
    bool maximal = true;
    for (size_t j = 0; j < independent.size() && maximal; ++j) {
      if (i != j && (masks[i] & masks[j]) == masks[i] && masks[j] != masks[i]) {
        maximal = false;
      }
    }
    if (!maximal) continue;
    std::vector<RowId> deleted;
    for (const RowId& v : vertices) {
      if (!independent[i].count(v)) deleted.push_back(v);
    }
    std::sort(deleted.begin(), deleted.end());
    deleted_sets.push_back(std::move(deleted));
  }
  std::sort(deleted_sets.begin(), deleted_sets.end());
  return deleted_sets;
}

class RepairsAreMaximalIndependentSets
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RepairsAreMaximalIndependentSets, EnumeratorMatchesBruteForce) {
  Rng rng(GetParam());
  Database db;
  BuildRandomDb(&db, &rng);

  auto graph = db.Hypergraph();
  ASSERT_OK(graph.status());
  if (graph.value()->NumConflictingVertices() > 18) {
    GTEST_SKIP() << "too many conflicting vertices for brute force";
  }

  RepairEnumerator enumerator(db.catalog(), *graph.value());
  auto enumerated = enumerator.EnumerateDeletedSets(1 << 20);
  ASSERT_OK(enumerated.status());
  std::vector<std::vector<RowId>> actual = enumerated.value();
  std::sort(actual.begin(), actual.end());

  EXPECT_EQ(actual, BruteForceDeletedSets(*graph.value()));

  auto count = enumerator.CountRepairs(1 << 20);
  ASSERT_OK(count.status());
  EXPECT_EQ(count.value(), actual.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairsAreMaximalIndependentSets,
                         ::testing::Range<uint64_t>(5000, 5024));

// ---------------------------------------------------------------------------
// Soundness against the repairs themselves: every consistent answer must
// hold in *every* enumerated repair (not merely in their intersection as
// computed by ConsistentAnswersAllRepairs — this re-checks repair by
// repair, query plan evaluated under each repair's row mask).
// ---------------------------------------------------------------------------

class AnswersHoldInEveryRepair : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnswersHoldInEveryRepair, EachRepairContainsEveryConsistentAnswer) {
  Rng rng(GetParam());
  Database db;
  BuildRandomDb(&db, &rng);

  auto graph = db.Hypergraph();
  ASSERT_OK(graph.status());
  RepairEnumerator enumerator(db.catalog(), *graph.value());
  auto masks = enumerator.EnumerateMasks(100000);
  ASSERT_OK(masks.status());
  ASSERT_FALSE(masks.value().empty());

  for (const char* q :
       {"SELECT * FROM p", "SELECT * FROM p EXCEPT SELECT * FROM q",
        "SELECT * FROM p UNION SELECT * FROM q",
        "SELECT * FROM p, q WHERE p.a = q.a"}) {
    auto answers = db.ConsistentAnswers(q);
    ASSERT_OK(answers.status()) << q;
    auto plan = db.Plan(q);
    ASSERT_OK(plan.status()) << q;
    for (size_t r = 0; r < masks.value().size(); ++r) {
      ExecContext ctx{&db.catalog(), &masks.value()[r]};
      auto in_repair = Execute(*plan.value(), ctx);
      ASSERT_OK(in_repair.status()) << q;
      for (const Row& row : answers.value().rows) {
        EXPECT_TRUE(in_repair.value().Contains(row))
            << "consistent answer missing from repair " << r << " of "
            << masks.value().size() << ", query: " << q;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnswersHoldInEveryRepair,
                         ::testing::Range<uint64_t>(6000, 6016));

}  // namespace
}  // namespace hippo
