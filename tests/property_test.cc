// The central correctness property of the whole system:
//
//   For random small inconsistent databases and every query shape in the
//   SJUD class, Hippo's consistent answers (in every optimization mode)
//   equal the answers obtained by evaluating the query over every repair
//   and intersecting.
//
// This differentially tests detection, the hypergraph, enveloping,
// grounding, CNF, the prover, and the engine against the independent
// repair-enumeration implementation.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/database.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

using cqa::HippoOptions;

/// Builds a random database with FD, exclusion and unary constraints.
/// Small domains force plenty of conflicts of all shapes.
void BuildRandomDb(Database* db, Rng* rng) {
  ASSERT_OK(db->Execute(
      "CREATE TABLE p (a INTEGER, b INTEGER);"
      "CREATE TABLE q (a INTEGER, b INTEGER);"
      "CREATE CONSTRAINT fd_p FD ON p (a -> b);"
      "CREATE CONSTRAINT fd_q FD ON q (a -> b);"
      "CREATE CONSTRAINT ex EXCLUSION ON p (a), q (b);"
      "CREATE CONSTRAINT cap DENIAL (p AS x WHERE x.b > 2)"));
  int np = 4 + static_cast<int>(rng->Uniform(6));
  int nq = 4 + static_cast<int>(rng->Uniform(6));
  for (int i = 0; i < np; ++i) {
    ASSERT_OK(db->InsertRow("p", Row{Value::Int(rng->UniformInt(0, 4)),
                                     Value::Int(rng->UniformInt(0, 3))}));
  }
  for (int i = 0; i < nq; ++i) {
    ASSERT_OK(db->InsertRow("q", Row{Value::Int(rng->UniformInt(0, 4)),
                                     Value::Int(rng->UniformInt(0, 3))}));
  }
}

const char* kQueries[] = {
    // S
    "SELECT * FROM p",
    "SELECT * FROM p WHERE b <= 1",
    "SELECT * FROM p WHERE a = 2 OR b = 2",
    // safe P (permutation)
    "SELECT b, a FROM p",
    // J
    "SELECT * FROM p, q WHERE p.a = q.a",
    "SELECT * FROM p, q WHERE p.a = q.a AND p.b < q.b",
    "SELECT * FROM p x, p y WHERE x.a = y.a AND x.b < y.b",
    // U
    "SELECT * FROM p UNION SELECT * FROM q",
    "SELECT * FROM p WHERE a = 0 UNION SELECT * FROM p WHERE a = 1",
    // D
    "SELECT * FROM p EXCEPT SELECT * FROM q",
    "SELECT * FROM q EXCEPT SELECT * FROM p",
    // I
    "SELECT * FROM p INTERSECT SELECT * FROM q",
    // compositions
    "(SELECT * FROM p EXCEPT SELECT * FROM q) UNION "
    "(SELECT * FROM q EXCEPT SELECT * FROM p)",
    "(SELECT * FROM p UNION SELECT * FROM q) EXCEPT "
    "(SELECT * FROM p INTERSECT SELECT * FROM q)",
    "SELECT * FROM p WHERE b <= 1 EXCEPT "
    "(SELECT * FROM q WHERE a = 1 UNION SELECT * FROM q WHERE a = 2)",
};

class CqaDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CqaDifferential, HippoEqualsAllRepairsOnRandomInstances) {
  Rng rng(GetParam());
  Database db;
  BuildRandomDb(&db, &rng);

  auto repair_count = db.CountRepairs(100000);
  ASSERT_OK(repair_count.status());

  for (const char* q : kQueries) {
    auto exact = db.ConsistentAnswersAllRepairs(q);
    ASSERT_OK(exact.status()) << q;

    for (bool filtering : {true, false}) {
      for (auto mode : {HippoOptions::MembershipMode::kKnowledgeGathering,
                        HippoOptions::MembershipMode::kQuery}) {
        HippoOptions opt;
        opt.membership = mode;
        opt.use_filtering = filtering;
        auto hippo_rs = db.ConsistentAnswers(q, opt);
        ASSERT_OK(hippo_rs.status()) << q;
        EXPECT_EQ(SortedRows(hippo_rs.value()), SortedRows(exact.value()))
            << "query: " << q << "\nfiltering: " << filtering
            << " mode: " << static_cast<int>(mode)
            << "\nrepairs: " << repair_count.value();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqaDifferential,
                         ::testing::Range<uint64_t>(1000, 1040));

// A second sweep focused on FD-only instances with larger conflict groups
// (3+ tuples sharing a key), which stress the prover's blocking search.
class CqaFdGroups : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CqaFdGroups, DenseConflictGroups) {
  Rng rng(GetParam());
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE p (a INTEGER, b INTEGER);"
      "CREATE TABLE q (a INTEGER, b INTEGER);"
      "CREATE CONSTRAINT fd_p FD ON p (a -> b);"
      "CREATE CONSTRAINT fd_q FD ON q (a -> b)"));
  // Two keys, many values: conflict cliques of size 3-4.
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK(db.InsertRow("p", Row{Value::Int(rng.UniformInt(0, 1)),
                                    Value::Int(rng.UniformInt(0, 3))}));
    ASSERT_OK(db.InsertRow("q", Row{Value::Int(rng.UniformInt(0, 1)),
                                    Value::Int(rng.UniformInt(0, 3))}));
  }
  for (const char* q :
       {"SELECT * FROM p", "SELECT * FROM p EXCEPT SELECT * FROM q",
        "SELECT * FROM p UNION SELECT * FROM q",
        "SELECT * FROM p, q WHERE p.a = q.a"}) {
    auto exact = db.ConsistentAnswersAllRepairs(q);
    auto hippo_rs = db.ConsistentAnswers(q);
    ASSERT_OK(exact.status()) << q;
    ASSERT_OK(hippo_rs.status()) << q;
    EXPECT_EQ(SortedRows(hippo_rs.value()), SortedRows(exact.value())) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqaFdGroups,
                         ::testing::Range<uint64_t>(2000, 2024));

// Metamorphic properties that must hold regardless of the instance.
class CqaMetamorphic : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CqaMetamorphic, AnswersAreSubsetOfEnvelopeAndMonotone) {
  Rng rng(GetParam());
  Database db;
  BuildRandomDb(&db, &rng);

  // (1) CQA(Q) ⊆ Q(DB) for monotone Q (no difference): consistent answers
  // of monotone queries are answers over the full instance.
  for (const char* q :
       {"SELECT * FROM p", "SELECT * FROM p, q WHERE p.a = q.a",
        "SELECT * FROM p UNION SELECT * FROM q"}) {
    auto plain = db.Query(q);
    auto cqa_rs = db.ConsistentAnswers(q);
    ASSERT_OK(plain.status());
    ASSERT_OK(cqa_rs.status());
    for (const Row& row : cqa_rs.value().rows) {
      EXPECT_TRUE(plain.value().Contains(row)) << q;
    }
  }

  // (2) Q(core) ⊆ CQA(Q) for monotone Q: everything true in the
  // conflict-free part is true in every repair.
  for (const char* q :
       {"SELECT * FROM p", "SELECT * FROM p UNION SELECT * FROM q"}) {
    auto core = db.QueryOverCore(q);
    auto cqa_rs = db.ConsistentAnswers(q);
    ASSERT_OK(core.status());
    ASSERT_OK(cqa_rs.status());
    for (const Row& row : core.value().rows) {
      EXPECT_TRUE(cqa_rs.value().Contains(row)) << q;
    }
  }

  // (3) Consistency restored => CQA = plain evaluation.
  Database clean;
  ASSERT_OK(clean.Execute(
      "CREATE TABLE p (a INTEGER, b INTEGER);"
      "CREATE CONSTRAINT fd_p FD ON p (a -> b)"));
  for (int i = 0; i < 6; ++i) {
    ASSERT_OK(clean.InsertRow(
        "p", Row{Value::Int(i), Value::Int(rng.UniformInt(0, 3))}));
  }
  auto plain = clean.Query("SELECT * FROM p");
  auto cqa_rs = clean.ConsistentAnswers("SELECT * FROM p");
  ASSERT_OK(plain.status());
  ASSERT_OK(cqa_rs.status());
  EXPECT_EQ(SortedRows(plain.value()), SortedRows(cqa_rs.value()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqaMetamorphic,
                         ::testing::Range<uint64_t>(3000, 3016));

// The differential property must survive arbitrary update sequences with
// incremental hypergraph maintenance switched on: after every batch of
// random INSERT/DELETE/UPDATE statements, Hippo (over the incrementally
// maintained graph) must still agree with all-repairs evaluation (over a
// fresh enumeration of the mutated instance).
class CqaAfterDml : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CqaAfterDml, DifferentialHoldsAcrossUpdates) {
  Rng rng(GetParam());
  Database db;
  BuildRandomDb(&db, &rng);
  ASSERT_OK(db.EnableIncrementalMaintenance());

  for (int batch = 0; batch < 3; ++batch) {
    for (int op = 0; op < 6; ++op) {
      const char* table = rng.Uniform(2) == 0 ? "p" : "q";
      switch (rng.Uniform(3)) {
        case 0:
          ASSERT_OK(db.InsertRow(
              table, Row{Value::Int(rng.UniformInt(0, 4)),
                         Value::Int(rng.UniformInt(0, 3))}));
          break;
        case 1:
          ASSERT_OK(db.DeleteRow(
              table, Row{Value::Int(rng.UniformInt(0, 4)),
                         Value::Int(rng.UniformInt(0, 3))}));
          break;
        case 2: {
          std::string sql =
              std::string("UPDATE ") + table + " SET b = " +
              std::to_string(rng.UniformInt(0, 3)) + " WHERE a = " +
              std::to_string(rng.UniformInt(0, 4));
          ASSERT_OK(db.Execute(sql));
          break;
        }
      }
    }
    for (const char* q :
         {"SELECT * FROM p", "SELECT * FROM p EXCEPT SELECT * FROM q",
          "SELECT * FROM p UNION SELECT * FROM q",
          "SELECT * FROM p, q WHERE p.a = q.a"}) {
      auto exact = db.ConsistentAnswersAllRepairs(q);
      auto hippo_rs = db.ConsistentAnswers(q);
      ASSERT_OK(exact.status()) << q;
      ASSERT_OK(hippo_rs.status()) << q;
      EXPECT_EQ(SortedRows(hippo_rs.value()), SortedRows(exact.value()))
          << "after batch " << batch << ", query: " << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqaAfterDml,
                         ::testing::Range<uint64_t>(4000, 4020));

}  // namespace
}  // namespace hippo
