// End-to-end tests of the Database facade: the paper's running scenario
// (FD-violating employee data) plus each answering method.
#include "db/database.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace hippo {
namespace {

// The classic CQA example: two sources disagree about Smith's salary.
class InconsistentEmpDb : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.Execute(
        "CREATE TABLE emp (name VARCHAR, salary INTEGER);"
        "INSERT INTO emp VALUES ('smith', 50000), ('smith', 60000),"
        "                       ('jones', 40000), ('brown', 70000);"
        "CREATE CONSTRAINT fd_emp FD ON emp (name -> salary)"));
  }
  Database db_;
};

TEST_F(InconsistentEmpDb, PlainQuerySeesEverything) {
  auto rs = db_.Query("SELECT * FROM emp");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 4u);
}

TEST_F(InconsistentEmpDb, DetectsOneConflict) {
  auto graph = db_.Hypergraph();
  ASSERT_OK(graph.status());
  EXPECT_EQ(graph.value()->NumEdges(), 1u);
  EXPECT_EQ(graph.value()->NumConflictingVertices(), 2u);
}

TEST_F(InconsistentEmpDb, HasTwoRepairs) {
  auto count = db_.CountRepairs();
  ASSERT_OK(count.status());
  EXPECT_EQ(count.value(), 2u);
}

TEST_F(InconsistentEmpDb, ConsistentAnswersDropOnlyConflictedFacts) {
  auto rs = db_.ConsistentAnswers("SELECT * FROM emp");
  ASSERT_OK(rs.status());
  // Both smith tuples are uncertain; jones and brown are consistent.
  EXPECT_EQ(rs.value().NumRows(), 2u);
  EXPECT_TRUE(rs.value().Contains(
      Row{Value::String("jones"), Value::Int(40000)}));
  EXPECT_TRUE(rs.value().Contains(
      Row{Value::String("brown"), Value::Int(70000)}));
}

TEST_F(InconsistentEmpDb, ParallelDetectionOptionReachesTheDetector) {
  // HippoOptions::detect is used when the hypergraph cache is cold: the
  // graph is built with 4 detection threads (1-row shards force real
  // sharding even on this tiny table) and the answers must not change.
  cqa::HippoOptions options;
  options.detect = DetectOptions();
  options.detect->num_threads = 4;
  options.detect->shard_rows = 1;
  auto rs = db_.ConsistentAnswers("SELECT * FROM emp", options);
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 2u);
  auto graph = db_.Hypergraph();
  ASSERT_OK(graph.status());
  EXPECT_EQ(graph.value()->NumEdges(), 1u);
  EXPECT_EQ(db_.detect_stats().fd_shards, 4u);  // proves the knob arrived
}

TEST_F(InconsistentEmpDb, IgnoredDetectOptionsAreReported) {
  // Once a hypergraph is cached, an explicitly set HippoOptions::detect
  // has no effect — the cache is reused. The engine must say so instead of
  // silently dropping the knob (a mismatched DetectOptions would otherwise
  // masquerade as a detection-perf change in benchmarks).
  ASSERT_OK(db_.Hypergraph().status());  // warm the cache

  cqa::HippoOptions options;
  options.detect = DetectOptions();
  options.detect->num_threads = 4;
  options.detect->shard_rows = 1;
  cqa::HippoStats stats;
  auto rs = db_.ConsistentAnswers("SELECT * FROM emp", options, &stats);
  ASSERT_OK(rs.status());
  EXPECT_EQ(stats.detect_options_ignored, 1u);
  EXPECT_NE(db_.detect_stats().fd_shards, 4u);  // knob did NOT arrive

  // Without an explicit detect request nothing is reported, cache or not.
  cqa::HippoStats plain_stats;
  ASSERT_OK(db_.ConsistentAnswers("SELECT * FROM emp", cqa::HippoOptions(),
                                  &plain_stats)
                .status());
  EXPECT_EQ(plain_stats.detect_options_ignored, 0u);

  // A cold cache honors the options, so nothing is reported either.
  db_.InvalidateHypergraph();
  cqa::HippoStats cold_stats;
  ASSERT_OK(db_.ConsistentAnswers("SELECT * FROM emp", options, &cold_stats)
                .status());
  EXPECT_EQ(cold_stats.detect_options_ignored, 0u);
  EXPECT_EQ(db_.detect_stats().fd_shards, 4u);  // knob arrived this time
}

TEST_F(InconsistentEmpDb, SelectionOnUncertainValue) {
  // smith earns > 45000 in *every* repair (50000 or 60000), but neither
  // individual salary fact is certain. The selection query keeps tuples,
  // so smith does not appear; the union query below recovers the
  // disjunctive knowledge.
  auto rs = db_.ConsistentAnswers(
      "SELECT * FROM emp WHERE salary > 45000");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 1u);  // brown only
}

TEST_F(InconsistentEmpDb, UnionExtractsDisjunctiveInformation) {
  // "smith appears with 50000 or with 60000" is true in every repair:
  // the union query SELECT ... WHERE salary=50000 OR salary=60000 over
  // name alone would need projection; instead ask with both tuples:
  auto rs = db_.ConsistentAnswers(
      "SELECT * FROM emp WHERE name = 'smith' AND salary = 50000 "
      "UNION "
      "SELECT * FROM emp WHERE name = 'smith' AND salary = 60000");
  ASSERT_OK(rs.status());
  // Neither tuple alone is consistent... and the union's answer is a
  // TUPLE-level set: each candidate tuple is checked separately, and
  // neither (smith,50000) nor (smith,60000) is in every repair.
  EXPECT_EQ(rs.value().NumRows(), 0u);
}

TEST_F(InconsistentEmpDb, AllMethodsAgreeOnSjQuery) {
  const std::string q = "SELECT * FROM emp WHERE salary >= 40000";
  auto hippo_rs = db_.ConsistentAnswers(q);
  auto rewr_rs = db_.ConsistentAnswersByRewriting(q);
  auto exact_rs = db_.ConsistentAnswersAllRepairs(q);
  ASSERT_OK(hippo_rs.status());
  ASSERT_OK(rewr_rs.status());
  ASSERT_OK(exact_rs.status());
  EXPECT_EQ(SortedRows(hippo_rs.value()), SortedRows(exact_rs.value()));
  EXPECT_EQ(SortedRows(rewr_rs.value()), SortedRows(exact_rs.value()));
}

TEST_F(InconsistentEmpDb, CoreEqualsConsistentForSelections) {
  const std::string q = "SELECT * FROM emp";
  auto core = db_.QueryOverCore(q);
  auto cqa = db_.ConsistentAnswers(q);
  ASSERT_OK(core.status());
  ASSERT_OK(cqa.status());
  EXPECT_EQ(SortedRows(core.value()), SortedRows(cqa.value()));
}

TEST_F(InconsistentEmpDb, NarrowingProjectionRoutedToRewriting) {
  // Narrowing projection is outside the prover's SJUD class, but the router
  // serves it through the Koutris–Wijsen rewriting: 'smith' has *some*
  // salary in every repair, so all three names are certain.
  cqa::HippoStats stats;
  auto rs = db_.ConsistentAnswers("SELECT name FROM emp", cqa::HippoOptions(),
                                  &stats);
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 3u);
  EXPECT_TRUE(rs.value().Contains(Row{Value::String("smith")}));
  EXPECT_EQ(stats.route, RouteKind::kRewriteKw);

  // Pinning the prover route keeps the historical rejection.
  cqa::HippoOptions prover;
  prover.route = RouteMode::kForceProver;
  auto pinned = db_.ConsistentAnswers("SELECT name FROM emp", prover);
  EXPECT_EQ(pinned.status().code(), StatusCode::kNotSupported);
}

TEST_F(InconsistentEmpDb, ReorderingProjectionIsAccepted) {
  auto rs = db_.ConsistentAnswers("SELECT salary, name FROM emp");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 2u);
  EXPECT_TRUE(rs.value().Contains(
      Row{Value::Int(40000), Value::String("jones")}));
}

// Difference queries: the envelope must include tuples not in Q(DB).
TEST(DatabaseDifference, AnswerAbsentFromCurrentInstance) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE r (a INTEGER, b INTEGER);"
      "CREATE TABLE s (a INTEGER, b INTEGER);"
      "INSERT INTO r VALUES (1, 10), (2, 20);"
      "INSERT INTO s VALUES (1, 10), (1, 11);"  // FD conflict inside s
      "CREATE CONSTRAINT fd_s FD ON s (a -> b)"));
  // Plain evaluation of r − s: (1,10) is suppressed by s's (1,10).
  auto plain = db.Query("SELECT * FROM r EXCEPT SELECT * FROM s");
  ASSERT_OK(plain.status());
  EXPECT_EQ(plain.value().NumRows(), 1u);
  // But in the repair where s keeps (1,11), r−s contains (1,10) as well —
  // so (1,10) is NOT a consistent answer; and in the repair keeping (1,10)
  // it is not an answer. (2,20) is an answer everywhere.
  auto cqa = db.ConsistentAnswers("SELECT * FROM r EXCEPT SELECT * FROM s");
  ASSERT_OK(cqa.status());
  EXPECT_EQ(cqa.value().NumRows(), 1u);
  EXPECT_TRUE(cqa.value().Contains(Row{Value::Int(2), Value::Int(20)}));
  auto exact = db.ConsistentAnswersAllRepairs(
      "SELECT * FROM r EXCEPT SELECT * FROM s");
  ASSERT_OK(exact.status());
  EXPECT_EQ(SortedRows(cqa.value()), SortedRows(exact.value()));
}

TEST(DatabaseDifference, CqaFindsMoreThanCore) {
  // The demo's first claim: CQA extracts more information than evaluating
  // over the conflict-stripped database.
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE r (a INTEGER, b INTEGER);"
      "INSERT INTO r VALUES (1, 10), (1, 11), (2, 20), (3, 30);"
      "CREATE CONSTRAINT fd_r FD ON r (a -> b)"));
  // Union query: "(1,10) or (1,11) is in r" — true in every repair.
  const std::string q =
      "SELECT * FROM r WHERE a = 1 UNION SELECT * FROM r WHERE a = 2";
  auto core = db.QueryOverCore(q);
  auto cqa = db.ConsistentAnswers(q);
  ASSERT_OK(core.status());
  ASSERT_OK(cqa.status());
  // Core loses both (1,·) tuples; CQA keeps none of them either (tuple
  // granularity) but keeps (2,20) in both. Counts equal here...
  EXPECT_EQ(core.value().NumRows(), 1u);
  EXPECT_EQ(cqa.value().NumRows(), 1u);
  // ...the genuine separation needs difference (see next test).
}

TEST(DatabaseDifference, DifferenceSeparatesCqaFromCore) {
  // r − s where the subtrahend tuple is conflicted: the core approach
  // removes the conflicting s-tuples entirely, making (1,10) an answer of
  // the cleaned database — but (1,10) is NOT a consistent answer (in the
  // repair keeping s(1,10) it is suppressed). The core OVER-claims here.
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE r (a INTEGER, b INTEGER);"
      "CREATE TABLE s (a INTEGER, b INTEGER);"
      "INSERT INTO r VALUES (1, 10), (2, 20);"
      "INSERT INTO s VALUES (1, 10), (1, 11);"
      "CREATE CONSTRAINT fd_s FD ON s (a -> b)"));
  const std::string q = "SELECT * FROM r EXCEPT SELECT * FROM s";
  auto core = db.QueryOverCore(q);
  auto cqa = db.ConsistentAnswers(q);
  auto exact = db.ConsistentAnswersAllRepairs(q);
  ASSERT_OK(core.status());
  ASSERT_OK(cqa.status());
  ASSERT_OK(exact.status());
  EXPECT_TRUE(core.value().Contains(Row{Value::Int(1), Value::Int(10)}));
  EXPECT_FALSE(cqa.value().Contains(Row{Value::Int(1), Value::Int(10)}));
  EXPECT_EQ(SortedRows(cqa.value()), SortedRows(exact.value()));
}

TEST(DatabaseConstraints, ExclusionConstraint) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE cert (vid INTEGER);"
      "CREATE TABLE revk (vid INTEGER);"
      "INSERT INTO cert VALUES (1), (2);"
      "INSERT INTO revk VALUES (2), (3);"
      "CREATE CONSTRAINT excl EXCLUSION ON cert (vid), revk (vid)"));
  auto graph = db.Hypergraph();
  ASSERT_OK(graph.status());
  EXPECT_EQ(graph.value()->NumEdges(), 1u);
  auto rs = db.ConsistentAnswers("SELECT * FROM cert");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 1u);
  EXPECT_TRUE(rs.value().Contains(Row{Value::Int(1)}));
}

TEST(DatabaseConstraints, UnaryDenialConstraint) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE acct (id INTEGER, balance INTEGER);"
      "INSERT INTO acct VALUES (1, 100), (2, -50), (3, 30);"
      "CREATE CONSTRAINT no_negative DENIAL (acct AS a WHERE a.balance < 0)"));
  auto graph = db.Hypergraph();
  ASSERT_OK(graph.status());
  ASSERT_EQ(graph.value()->NumEdges(), 1u);
  EXPECT_EQ(graph.value()->edge(0).size(), 1u);  // unary edge
  // The violating tuple is in no repair.
  auto rs = db.ConsistentAnswers("SELECT * FROM acct");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 2u);
  auto exact = db.ConsistentAnswersAllRepairs("SELECT * FROM acct");
  ASSERT_OK(exact.status());
  EXPECT_EQ(SortedRows(rs.value()), SortedRows(exact.value()));
}

TEST(DatabaseConstraints, MultiAtomDenialConstraint) {
  // Three-atom denial: a manager may not earn less than two subordinates
  // combined (artificial but exercises arity-3 hyperedges).
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE pay (name VARCHAR, role INTEGER, amt INTEGER);"
      "INSERT INTO pay VALUES ('m', 1, 10), ('a', 0, 7), ('b', 0, 6);"
      "CREATE CONSTRAINT mgr DENIAL (pay AS m, pay AS x, pay AS y WHERE "
      "m.role = 1 AND x.role = 0 AND y.role = 0 AND x.name < y.name AND "
      "m.amt < x.amt + y.amt)"));
  auto graph = db.Hypergraph();
  ASSERT_OK(graph.status());
  ASSERT_EQ(graph.value()->NumEdges(), 1u);
  EXPECT_EQ(graph.value()->edge(0).size(), 3u);
  // Repairs: delete any one of the three tuples -> 3 repairs.
  auto count = db.CountRepairs();
  ASSERT_OK(count.status());
  EXPECT_EQ(count.value(), 3u);
  auto rs = db.ConsistentAnswers("SELECT * FROM pay");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 0u);  // every tuple is uncertain
}

TEST(DatabaseMisc, ConsistentDatabaseIsItsOwnRepair) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 1), (2, 2);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  auto consistent = db.IsConsistent();
  ASSERT_OK(consistent.status());
  EXPECT_TRUE(consistent.value());
  auto count = db.CountRepairs();
  ASSERT_OK(count.status());
  EXPECT_EQ(count.value(), 1u);
  auto cqa = db.ConsistentAnswers("SELECT * FROM t");
  auto plain = db.Query("SELECT * FROM t");
  ASSERT_OK(cqa.status());
  ASSERT_OK(plain.status());
  EXPECT_EQ(SortedRows(cqa.value()), SortedRows(plain.value()));
}

TEST(DatabaseMisc, OrderByOnConsistentAnswers) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (3, 1), (1, 1), (2, 2), (2, 3);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  auto rs = db.ConsistentAnswers("SELECT * FROM t ORDER BY a DESC");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs.value().NumRows(), 2u);
  EXPECT_EQ(rs.value().rows[0][0], Value::Int(3));
  EXPECT_EQ(rs.value().rows[1][0], Value::Int(1));
}

TEST(DatabaseMisc, StatsAreFilled) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 1), (1, 2), (2, 2);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  cqa::HippoStats stats;
  cqa::HippoOptions options;
  options.route = RouteMode::kForceProver;  // candidate stats are prover-only
  auto rs = db.ConsistentAnswers("SELECT * FROM t", options, &stats);
  ASSERT_OK(rs.status());
  EXPECT_EQ(stats.candidates, 3u);
  EXPECT_EQ(stats.answers, 1u);
  EXPECT_GT(stats.membership_checks, 0u);
  EXPECT_EQ(stats.route, RouteKind::kProver);
  EXPECT_EQ(stats.routed_prover, 1u);

  // The same query routes to ABC rewriting on auto, with identical answers.
  cqa::HippoStats auto_stats;
  auto auto_rs =
      db.ConsistentAnswers("SELECT * FROM t", cqa::HippoOptions(), &auto_stats);
  ASSERT_OK(auto_rs.status());
  EXPECT_EQ(SortedRows(auto_rs.value()), SortedRows(rs.value()));
  EXPECT_EQ(auto_stats.route, RouteKind::kRewriteAbc);
  EXPECT_EQ(auto_stats.routed_rewrite, 1u);
}

TEST(DatabaseErrors, UsefulDiagnostics) {
  Database db;
  EXPECT_EQ(db.Query("SELECT * FROM nope").status().code(),
            StatusCode::kNotFound);
  ASSERT_OK(db.Execute("CREATE TABLE t (a INTEGER)"));
  EXPECT_EQ(db.Execute("CREATE TABLE t (a INTEGER)").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.Query("SELECT b FROM t").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db.Execute("INSERT INTO t VALUES (1, 2)").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Query("SELECT * FROM t UNION ALL SELECT * FROM t")
                .status()
                .code(),
            StatusCode::kNotSupported);
}

}  // namespace
}  // namespace hippo
