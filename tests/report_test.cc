// Pins the exact nearest-rank percentile semantics of bench::Percentile
// (selection via nth_element) and the batched bench::Percentiles (one
// sort), which the serving driver and the concurrency bench read their
// p50/p95/p99 rows from. Nearest-rank: the smallest sample such that at
// least p% of the sample is at or below it — ceil(p/100 * N), 1-based.
#include "benchutil/report.h"

#include <gtest/gtest.h>

#include <vector>

namespace hippo::bench {
namespace {

TEST(Percentile, EmptyAndSingle) {
  EXPECT_EQ(Percentile({}, 50), 0.0);
  EXPECT_EQ(Percentile({}, 0), 0.0);
  // A single sample is every percentile.
  EXPECT_EQ(Percentile({3.5}, 0), 3.5);
  EXPECT_EQ(Percentile({3.5}, 50), 3.5);
  EXPECT_EQ(Percentile({3.5}, 100), 3.5);
}

TEST(Percentile, OddSizeNearestRank) {
  // Sorted: {1, 2, 3, 4, 5}. Nearest-rank indices (1-based):
  //   p50 -> ceil(2.5) = 3 -> 3;  p40 -> ceil(2.0) = 2 -> 2;
  //   p95 -> ceil(4.75) = 5 -> 5; p0 -> 1; p100 -> 5.
  std::vector<double> s = {5, 3, 1, 4, 2};  // unsorted on purpose
  EXPECT_EQ(Percentile(s, 50), 3.0);
  EXPECT_EQ(Percentile(s, 40), 2.0);
  EXPECT_EQ(Percentile(s, 95), 5.0);
  EXPECT_EQ(Percentile(s, 0), 1.0);
  EXPECT_EQ(Percentile(s, 100), 5.0);
}

TEST(Percentile, EvenSizeNearestRank) {
  // Sorted: {10, 20, 30, 40}. p50 -> ceil(2.0) = 2 -> 20 (nearest-rank
  // takes the lower middle, no averaging); p75 -> ceil(3.0) = 3 -> 30;
  // p76 -> ceil(3.04) = 4 -> 40.
  std::vector<double> s = {40, 10, 30, 20};
  EXPECT_EQ(Percentile(s, 50), 20.0);
  EXPECT_EQ(Percentile(s, 75), 30.0);
  EXPECT_EQ(Percentile(s, 76), 40.0);
  EXPECT_EQ(Percentile(s, 25), 10.0);
  EXPECT_EQ(Percentile(s, 99), 40.0);
}

TEST(Percentile, OutOfRangePClamps) {
  std::vector<double> s = {2, 1, 3};
  EXPECT_EQ(Percentile(s, -10), 1.0);   // below 0 -> minimum
  EXPECT_EQ(Percentile(s, 250), 3.0);   // above 100 -> maximum
}

TEST(Percentile, DuplicatesAndTies) {
  std::vector<double> s = {1, 1, 1, 9};
  EXPECT_EQ(Percentile(s, 50), 1.0);
  EXPECT_EQ(Percentile(s, 75), 1.0);
  EXPECT_EQ(Percentile(s, 76), 9.0);
}

TEST(Percentiles, MatchesSingleCallExactly) {
  std::vector<double> samples = {0.9, 0.1, 0.5, 0.7, 0.3, 0.2,
                                 0.8, 0.4, 0.6, 1.0};
  std::vector<double> ps = {0, 25, 50, 75, 90, 95, 99, 100};
  std::vector<double> batched = Percentiles(samples, ps);
  ASSERT_EQ(batched.size(), ps.size());
  for (size_t i = 0; i < ps.size(); ++i) {
    EXPECT_EQ(batched[i], Percentile(samples, ps[i])) << "p" << ps[i];
  }
}

TEST(Percentiles, EmptyInputs) {
  EXPECT_EQ(Percentiles({}, {50, 99}), (std::vector<double>{0.0, 0.0}));
  EXPECT_TRUE(Percentiles({1.0, 2.0}, {}).empty());
}

}  // namespace
}  // namespace hippo::bench
