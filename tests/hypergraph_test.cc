// Conflict hypergraph unit tests.
#include "hypergraph/hypergraph.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace hippo {
namespace {

RowId V(uint32_t row) { return RowId{0, row}; }

TEST(HypergraphTest, AddEdgeBasics) {
  ConflictHypergraph g;
  auto e = g.AddEdge({V(1), V(2)}, 0);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.edge(e).size(), 2u);
  EXPECT_EQ(g.edge_constraint(e), 0u);
  EXPECT_TRUE(g.IsConflicting(V(1)));
  EXPECT_TRUE(g.IsConflicting(V(2)));
  EXPECT_FALSE(g.IsConflicting(V(3)));
}

TEST(HypergraphTest, EdgesAreCanonicalized) {
  ConflictHypergraph g;
  auto e1 = g.AddEdge({V(2), V(1)}, 0);
  auto e2 = g.AddEdge({V(1), V(2)}, 1);  // duplicate vertex set
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.edge(e1), (std::vector<RowId>{V(1), V(2)}));
}

TEST(HypergraphTest, DuplicateVerticesCollapse) {
  ConflictHypergraph g;
  auto e = g.AddEdge({V(3), V(3)}, 0);
  EXPECT_EQ(g.edge(e).size(), 1u);  // unary self-conflict
}

TEST(HypergraphTest, IncidenceLists) {
  ConflictHypergraph g;
  g.AddEdge({V(1), V(2)}, 0);
  g.AddEdge({V(1), V(3)}, 0);
  g.AddEdge({V(4)}, 1);
  EXPECT_EQ(g.IncidentEdges(V(1)).size(), 2u);
  EXPECT_EQ(g.IncidentEdges(V(2)).size(), 1u);
  EXPECT_EQ(g.IncidentEdges(V(9)).size(), 0u);
  EXPECT_EQ(g.NumConflictingVertices(), 4u);
  EXPECT_EQ(g.MaxDegree(), 2u);
}

TEST(HypergraphTest, EdgeInside) {
  ConflictHypergraph g;
  auto e = g.AddEdge({V(1), V(2), V(3)}, 0);
  VertexSet all = {V(1), V(2), V(3), V(4)};
  VertexSet partial = {V(1), V(2)};
  EXPECT_TRUE(g.EdgeInside(e, all));
  EXPECT_FALSE(g.EdgeInside(e, partial));
}

TEST(HypergraphTest, ContainsFullEdge) {
  ConflictHypergraph g;
  g.AddEdge({V(1), V(2)}, 0);
  g.AddEdge({V(3), V(4), V(5)}, 0);
  EXPECT_TRUE(g.ContainsFullEdge({V(1), V(2), V(9)}));
  EXPECT_FALSE(g.ContainsFullEdge({V(1), V(3), V(4)}));
  EXPECT_TRUE(g.ContainsFullEdge({V(3), V(4), V(5)}));
  EXPECT_FALSE(g.ContainsFullEdge({}));
  EXPECT_FALSE(g.ContainsFullEdge({V(9)}));
}

TEST(HypergraphTest, UnarySelfLoopAlwaysInside) {
  ConflictHypergraph g;
  g.AddEdge({V(7)}, 0);
  EXPECT_TRUE(g.ContainsFullEdge({V(7)}));
}

TEST(HypergraphTest, ConflictingVerticesList) {
  ConflictHypergraph g;
  g.AddEdge({V(1), V(2)}, 0);
  g.AddEdge({V(2), V(3)}, 0);
  std::vector<RowId> vs = g.ConflictingVertices();
  std::sort(vs.begin(), vs.end());
  EXPECT_EQ(vs, (std::vector<RowId>{V(1), V(2), V(3)}));
}

TEST(HypergraphTest, CrossTableVertices) {
  ConflictHypergraph g;
  g.AddEdge({RowId{0, 1}, RowId{1, 1}}, 0);
  EXPECT_TRUE(g.IsConflicting(RowId{0, 1}));
  EXPECT_TRUE(g.IsConflicting(RowId{1, 1}));
  EXPECT_FALSE(g.IsConflicting(RowId{2, 1}));
}

TEST(HypergraphTest, StatsString) {
  ConflictHypergraph g;
  g.AddEdge({V(1), V(2)}, 0);
  std::string s = g.StatsString();
  EXPECT_NE(s.find("1 edges"), std::string::npos);
  EXPECT_NE(s.find("2 conflicting"), std::string::npos);
}

}  // namespace
}  // namespace hippo
