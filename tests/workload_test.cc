// Tests for the benchmark workload generators and report utilities.
#include "benchutil/workload.h"

#include <gtest/gtest.h>

#include "benchutil/report.h"
#include "tests/test_util.h"

namespace hippo::bench {
namespace {

TEST(WorkloadTest, TwoRelationSizesAndConflicts) {
  Database db;
  WorkloadSpec spec;
  spec.tuples_per_relation = 500;
  spec.conflict_rate = 0.10;
  ASSERT_OK(BuildTwoRelationWorkload(&db, spec));
  EXPECT_GE(db.catalog().GetTable("p").value()->NumRows(), 500u);
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  // ~25 conflict pairs per relation; duplicates may collide on keys, so
  // allow slack but require a meaningful number of edges.
  EXPECT_GT(g.value()->NumEdges(), 20u);
  EXPECT_LT(g.value()->NumEdges(), 120u);
}

TEST(WorkloadTest, ZeroConflictRateIsConsistent) {
  Database db;
  WorkloadSpec spec;
  spec.tuples_per_relation = 200;
  spec.conflict_rate = 0.0;
  ASSERT_OK(BuildTwoRelationWorkload(&db, spec));
  auto consistent = db.IsConsistent();
  ASSERT_OK(consistent.status());
  EXPECT_TRUE(consistent.value());
}

TEST(WorkloadTest, DeterministicAcrossRuns) {
  WorkloadSpec spec;
  spec.tuples_per_relation = 100;
  spec.conflict_rate = 0.1;
  Database a, b;
  ASSERT_OK(BuildTwoRelationWorkload(&a, spec));
  ASSERT_OK(BuildTwoRelationWorkload(&b, spec));
  auto ra = a.Query("SELECT * FROM p ORDER BY a, b");
  auto rb = b.Query("SELECT * FROM p ORDER BY a, b");
  ASSERT_OK(ra.status());
  ASSERT_OK(rb.status());
  EXPECT_EQ(ra.value().rows, rb.value().rows);
}

TEST(WorkloadTest, SeedChangesData) {
  WorkloadSpec s1, s2;
  s1.tuples_per_relation = s2.tuples_per_relation = 100;
  s1.conflict_rate = s2.conflict_rate = 0.2;
  s2.seed = 77;
  Database a, b;
  ASSERT_OK(BuildTwoRelationWorkload(&a, s1));
  ASSERT_OK(BuildTwoRelationWorkload(&b, s2));
  auto ra = a.Query("SELECT * FROM p ORDER BY a, b");
  auto rb = b.Query("SELECT * FROM p ORDER BY a, b");
  EXPECT_NE(ra.value().rows, rb.value().rows);
}

TEST(WorkloadTest, EmployeeWorkloadHasFdConflicts) {
  Database db;
  WorkloadSpec spec;
  spec.tuples_per_relation = 300;
  spec.conflict_rate = 0.1;
  ASSERT_OK(BuildEmployeeWorkload(&db, spec));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  EXPECT_GT(g.value()->NumEdges(), 0u);
  // Consistent answers over emp must be computable.
  auto rs = db.ConsistentAnswers("SELECT * FROM emp");
  ASSERT_OK(rs.status());
  EXPECT_LT(rs.value().NumRows(),
            db.catalog().GetTable("emp").value()->NumRows());
}

TEST(WorkloadTest, IntegrationWorkloadHasBothConstraintKinds) {
  Database db;
  WorkloadSpec spec;
  spec.tuples_per_relation = 300;
  spec.conflict_rate = 0.1;
  ASSERT_OK(BuildIntegrationWorkload(&db, spec));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  std::set<uint32_t> kinds;
  for (size_t e = 0; e < g.value()->NumEdges(); ++e) {
    kinds.insert(g.value()->edge_constraint(
        static_cast<ConflictHypergraph::EdgeId>(e)));
  }
  EXPECT_GE(kinds.size(), 2u);  // FD edges and exclusion edges
}

TEST(WorkloadTest, QuerySetIsPlannableAndSjud) {
  Database db;
  WorkloadSpec spec;
  spec.tuples_per_relation = 50;
  ASSERT_OK(BuildTwoRelationWorkload(&db, spec));
  for (const std::string& q :
       {QuerySet::Selection(), QuerySet::Join(), QuerySet::SelectiveJoin(),
        QuerySet::Union(), QuerySet::Difference(),
        QuerySet::UnionOfDifferences()}) {
    auto rs = db.ConsistentAnswers(q);
    EXPECT_OK(rs.status()) << q;
  }
}

TEST(ReportTest, TextTableAlignment) {
  TextTable t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  std::string s = t.Render();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
  EXPECT_NE(s.find("|--------|-------|"), std::string::npos);
}

TEST(ReportTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(0.0000005), "0.5 us");
  EXPECT_EQ(FormatSeconds(0.0123), "12.30 ms");
  EXPECT_EQ(FormatSeconds(1.5), "1.500 s");
}

}  // namespace
}  // namespace hippo::bench
