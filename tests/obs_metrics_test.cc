// Unit and concurrency coverage for the obs layer: sharded counters,
// gauges, the fixed-bucket latency histogram (bucket grid, snapshot,
// quantiles, merge), the registry's dump formats, and TraceSpan trees.
//
// The concurrent battery (recorders racing Snapshot/Merge readers) runs in
// every lane and is wired into the TSan lane by name — it is the
// data-race certificate for the "no locks on the hot path" contract.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace hippo::obs {
namespace {

TEST(Counter, AccumulatesAcrossThreads) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (size_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
  c.Add(42);
  EXPECT_EQ(c.Value(), kThreads * kPerThread + 42);
}

TEST(Gauge, SetAddValue) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);
  g.Set(0);
  EXPECT_EQ(g.Value(), 0);
}

TEST(Histogram, BucketGridIsMonotonicAndCoversRange) {
  double prev = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    double bound = LatencyHistogram::BucketBound(i);
    EXPECT_GT(bound, prev) << "bucket " << i;
    prev = bound;
  }
  // 1 microsecond to hours: the serving stack's full latency range.
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketBound(0), 1e-6);
  EXPECT_GT(LatencyHistogram::BucketBound(kHistogramBuckets - 1), 10000.0);

  // BucketFor is consistent with the bounds (inclusive upper bound).
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    EXPECT_EQ(LatencyHistogram::BucketFor(LatencyHistogram::BucketBound(i)),
              i);
  }
  // Out-of-range values clamp instead of crashing.
  EXPECT_EQ(LatencyHistogram::BucketFor(0.0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketFor(-5.0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketFor(1e12), kHistogramBuckets - 1);
}

TEST(Histogram, SnapshotCountSumMean) {
  LatencyHistogram h;
  EXPECT_TRUE(h.Snapshot().empty());
  h.Record(0.001);
  h.Record(0.003);
  h.Record(0.002);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.sum, 0.006, 1e-9);
  EXPECT_NEAR(s.Mean(), 0.002, 1e-9);
}

TEST(Histogram, QuantilesHaveGridResolution) {
  LatencyHistogram h;
  // 100 samples at 1ms, 100 at 10ms: p50 must sit near the low mode and
  // p99 near the high mode, within the grid's ~19% relative resolution.
  for (int i = 0; i < 100; ++i) h.Record(0.001);
  for (int i = 0; i < 100; ++i) h.Record(0.010);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_NEAR(s.Quantile(0.25), 0.001, 0.001 * 0.25);
  EXPECT_NEAR(s.Quantile(0.99), 0.010, 0.010 * 0.25);
  // Degenerate quantiles stay inside the recorded range.
  EXPECT_GT(s.Quantile(0.0), 0.0);
  EXPECT_LE(s.Quantile(1.0), LatencyHistogram::BucketBound(
                                 LatencyHistogram::BucketFor(0.010)) *
                                 1.0001);
  EXPECT_EQ(HistogramSnapshot().Quantile(0.5), 0.0);
}

TEST(Histogram, MergeAccumulatesPointwise) {
  LatencyHistogram a, b;
  for (int i = 0; i < 10; ++i) a.Record(0.001);
  for (int i = 0; i < 30; ++i) b.Record(0.1);
  HistogramSnapshot sa = a.Snapshot();
  sa.Merge(b.Snapshot());
  EXPECT_EQ(sa.count, 40u);
  EXPECT_NEAR(sa.sum, 10 * 0.001 + 30 * 0.1, 1e-6);
  // After the merge the upper quartiles come from b's mode.
  EXPECT_NEAR(sa.Quantile(0.9), 0.1, 0.1 * 0.25);
}

TEST(Registry, HandlesAreStableAndTyped) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("hippo_test_total");
  Counter* c2 = reg.GetCounter("hippo_test_total");
  EXPECT_EQ(c1, c2);  // get-or-create: same handle every time
  Gauge* g = reg.GetGauge("hippo_test_depth");
  LatencyHistogram* h = reg.GetHistogram("hippo_test_seconds");
  EXPECT_NE(static_cast<void*>(c1), static_cast<void*>(g));
  c1->Add(3);
  g->Set(-2);
  h->Record(0.5);
  EXPECT_EQ(reg.GetCounter("hippo_test_total")->Value(), 3u);
}

TEST(Registry, LabeledRendersPrometheusKey) {
  EXPECT_EQ(MetricsRegistry::Labeled("hippo_query_seconds",
                                     {{"route", "prover"}}),
            "hippo_query_seconds{route=\"prover\"}");
  EXPECT_EQ(MetricsRegistry::Labeled("m", {{"a", "1"}, {"b", "x"}}),
            "m{a=\"1\",b=\"x\"}");
  EXPECT_EQ(MetricsRegistry::Labeled("m", {}), "m");
}

TEST(Registry, DumpPrometheusFormat) {
  MetricsRegistry reg;
  reg.GetCounter("hippo_ops_total")->Add(5);
  reg.GetGauge("hippo_depth")->Set(3);
  LatencyHistogram* h = reg.GetHistogram(
      MetricsRegistry::Labeled("hippo_wait_seconds", {{"kind", "io"}}));
  h->Record(0.25);
  h->Record(0.25);
  std::string text = reg.DumpPrometheus();
  EXPECT_NE(text.find("hippo_ops_total 5"), std::string::npos) << text;
  EXPECT_NE(text.find("hippo_depth 3"), std::string::npos) << text;
  // Histogram explodes into _count/_sum plus quantile summary lines with
  // the label set preserved.
  EXPECT_NE(text.find("hippo_wait_seconds_count{kind=\"io\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("hippo_wait_seconds_sum{kind=\"io\"} 0.5"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("hippo_wait_seconds{kind=\"io\",quantile=\"0.99\"}"),
            std::string::npos)
      << text;
}

TEST(Registry, DumpJsonIsWellFormedEnoughToGrep) {
  MetricsRegistry reg;
  reg.GetCounter("hippo_ops_total")->Add(1);
  reg.GetHistogram("hippo_wait_seconds")->Record(0.5);
  std::string json = reg.DumpJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"hippo_ops_total\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
}

// The TSan certificate: recorders hammer one histogram and one counter
// while readers snapshot, merge, and dump concurrently. Totals must be
// exact after the recorders quiesce.
TEST(Concurrency, RecordersRaceSnapshotsAndMerges) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("hippo_race_total");
  LatencyHistogram* h = reg.GetHistogram("hippo_race_seconds");
  constexpr size_t kWriters = 4;
  constexpr size_t kPerWriter = 20000;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerWriter; ++i) {
        c->Add();
        h->Record(1e-5 * double(1 + (i + t) % 100));
      }
    });
  }
  // Two readers: one snapshots + merges, one renders dumps (exercising
  // the registry mutex against lock-free recorders).
  threads.emplace_back([&] {
    HistogramSnapshot acc;
    while (!done.load(std::memory_order_acquire)) {
      acc.Merge(h->Snapshot());
      (void)c->Value();
    }
  });
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)reg.DumpPrometheus();
      (void)reg.DumpJson();
      // Registration racing dumps is the other mutex edge.
      (void)reg.GetCounter("hippo_race_extra_total");
    }
  });
  for (size_t t = 0; t < kWriters; ++t) threads[t].join();
  done.store(true, std::memory_order_release);
  threads[kWriters].join();
  threads[kWriters + 1].join();
  EXPECT_EQ(c->Value(), kWriters * kPerWriter);
  EXPECT_EQ(h->Snapshot().count, kWriters * kPerWriter);
}

TEST(TraceSpan, TreeAttrsAndRender) {
  TraceSpan root("query");
  root.SetAttr("route", std::string("prover"));
  TraceSpan* child = root.StartChild("envelope");
  child->SetAttr("rows", int64_t{42});
  TraceSpan* grand = child->StartChild("scan p");
  grand->End();
  child->End();
  root.SetAttr("route", std::string("rewrite"));  // upsert, not append
  root.End();

  EXPECT_EQ(root.Attr("route"), "rewrite");
  EXPECT_EQ(child->Attr("rows"), "42");
  EXPECT_EQ(root.Children().size(), 1u);
  EXPECT_GE(root.seconds(), child->seconds());

  std::string render = root.Render();
  EXPECT_NE(render.find("query"), std::string::npos);
  EXPECT_NE(render.find("envelope"), std::string::npos);
  EXPECT_NE(render.find("scan p"), std::string::npos);
  EXPECT_NE(render.find("rows=42"), std::string::npos) << render;
  // Children indent under their parent.
  EXPECT_LT(render.find("query"), render.find("envelope"));

  std::string summary = root.Summary();
  EXPECT_EQ(summary.find("query"), 0u) << summary;
  EXPECT_NE(summary.find("route=rewrite"), std::string::npos) << summary;
}

TEST(TraceSpan, ConcurrentChildrenKeepStablePointers) {
  TraceSpan root("parallel");
  constexpr size_t kThreads = 8;
  std::vector<TraceSpan*> spans(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TraceSpan* s = root.StartChild("worker " + std::to_string(t));
      s->SetAttr("index", int64_t(t));
      s->End();
      spans[t] = s;
    });
  }
  for (auto& t : threads) t.join();
  root.End();
  EXPECT_EQ(root.Children().size(), kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    // The pointer returned by StartChild stays valid as siblings arrive.
    EXPECT_EQ(spans[t]->Attr("index"), std::to_string(t));
  }
}

}  // namespace
}  // namespace hippo::obs
