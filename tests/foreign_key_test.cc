// Restricted foreign-key constraint tests (the paper's future-work item).
#include "constraints/foreign_key.h"

#include <gtest/gtest.h>

#include "db/database.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

class FkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.Execute(
        "CREATE TABLE dept (did INTEGER, name VARCHAR);"
        "CREATE TABLE emp (eid INTEGER, did INTEGER, salary INTEGER);"
        "INSERT INTO dept VALUES (1, 'sales'), (2, 'eng');"
        "INSERT INTO emp VALUES (10, 1, 50), (11, 2, 60), (12, 3, 70);"
        "CREATE CONSTRAINT fk_dept FOREIGN KEY emp (did) REFERENCES "
        "dept (did)"));
  }
  Database db_;
};

TEST_F(FkTest, OrphanBecomesUnaryEdge) {
  auto g = db_.Hypergraph();
  ASSERT_OK(g.status());
  ASSERT_EQ(g.value()->NumEdges(), 1u);
  EXPECT_EQ(g.value()->edge(0).size(), 1u);
  // Provenance index follows the denial constraints (none here).
  EXPECT_EQ(g.value()->edge_constraint(0), 0u);
}

TEST_F(FkTest, OrphanExcludedFromConsistentAnswers) {
  auto rs = db_.ConsistentAnswers("SELECT * FROM emp");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 2u);
  EXPECT_FALSE(rs.value().Contains(
      Row{Value::Int(12), Value::Int(3), Value::Int(70)}));
  auto exact = db_.ConsistentAnswersAllRepairs("SELECT * FROM emp");
  ASSERT_OK(exact.status());
  EXPECT_EQ(SortedRows(rs.value()), SortedRows(exact.value()));
}

TEST_F(FkTest, RewritingAgreesViaSemiJoinGuard) {
  auto rewr = db_.ConsistentAnswersByRewriting("SELECT * FROM emp");
  auto exact = db_.ConsistentAnswersAllRepairs("SELECT * FROM emp");
  ASSERT_OK(rewr.status());
  ASSERT_OK(exact.status());
  EXPECT_EQ(SortedRows(rewr.value()), SortedRows(exact.value()));
}

TEST_F(FkTest, ParentRelationUntouched) {
  auto rs = db_.ConsistentAnswers("SELECT * FROM dept");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 2u);
}

TEST_F(FkTest, JoinThroughForeignKey) {
  // Join emp-dept: the orphan can never join; conflicted members would be
  // uncertain. Here only valid employees appear.
  auto rs = db_.ConsistentAnswers(
      "SELECT * FROM emp, dept WHERE emp.did = dept.did");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 2u);
  auto exact = db_.ConsistentAnswersAllRepairs(
      "SELECT * FROM emp, dept WHERE emp.did = dept.did");
  ASSERT_OK(exact.status());
  EXPECT_EQ(SortedRows(rs.value()), SortedRows(exact.value()));
}

TEST_F(FkTest, FkComposesWithFdOnChild) {
  ASSERT_OK(db_.Execute(
      "INSERT INTO emp VALUES (10, 1, 55);"  // FD conflict with (10,1,50)
      "CREATE CONSTRAINT fd_emp FD ON emp (eid -> salary)"));
  auto rs = db_.ConsistentAnswers("SELECT * FROM emp");
  ASSERT_OK(rs.status());
  // (11,2,60) is the only certain employee: 12 is an orphan, the two
  // eid-10 records conflict.
  EXPECT_EQ(rs.value().NumRows(), 1u);
  auto exact = db_.ConsistentAnswersAllRepairs("SELECT * FROM emp");
  ASSERT_OK(exact.status());
  EXPECT_EQ(SortedRows(rs.value()), SortedRows(exact.value()));
}

TEST_F(FkTest, MultiColumnForeignKey) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE pk (a INTEGER, b VARCHAR);"
      "CREATE TABLE ref (x INTEGER, y VARCHAR, z INTEGER);"
      "INSERT INTO pk VALUES (1, 'u'), (2, 'v');"
      "INSERT INTO ref VALUES (1, 'u', 9), (1, 'v', 8), (2, 'v', 7);"
      "CREATE CONSTRAINT fk FOREIGN KEY ref (x, y) REFERENCES pk (a, b)"));
  auto rs = db.ConsistentAnswers("SELECT * FROM ref");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs.value().NumRows(), 2u);  // (1,'v',8) is an orphan
}

TEST_F(FkTest, NoOrphansNoEdges) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE p (k INTEGER); CREATE TABLE c (k INTEGER);"
      "INSERT INTO p VALUES (1), (2); INSERT INTO c VALUES (1), (1), (2);"
      "CREATE CONSTRAINT fk FOREIGN KEY c (k) REFERENCES p (k)"));
  auto consistent = db.IsConsistent();
  ASSERT_OK(consistent.status());
  EXPECT_TRUE(consistent.value());
}

// --- restriction validation -------------------------------------------------

TEST_F(FkTest, ParentMayNotCarryDenialConstraints) {
  // dept is an FK parent: adding an FD on it must be rejected.
  EXPECT_EQ(db_.Execute("CREATE CONSTRAINT fd_d FD ON dept (did -> name)")
                .code(),
            StatusCode::kNotSupported);
}

TEST_F(FkTest, FkOntoConstrainedParentRejected) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE p (k INTEGER, v INTEGER);"
      "CREATE TABLE c (k INTEGER);"
      "CREATE CONSTRAINT fd_p FD ON p (k -> v)"));
  EXPECT_EQ(db.Execute(
                  "CREATE CONSTRAINT fk FOREIGN KEY c (k) REFERENCES p (k)")
                .code(),
            StatusCode::kNotSupported);
}

TEST_F(FkTest, FkChainRejected) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE a (k INTEGER); CREATE TABLE b (k INTEGER);"
      "CREATE TABLE c (k INTEGER);"
      "CREATE CONSTRAINT fk1 FOREIGN KEY b (k) REFERENCES a (k)"));
  // b already loses tuples (as a child); it cannot be a parent.
  EXPECT_EQ(db.Execute(
                  "CREATE CONSTRAINT fk2 FOREIGN KEY c (k) REFERENCES b (k)")
                .code(),
            StatusCode::kNotSupported);
  // a is a parent; it cannot become a child.
  EXPECT_EQ(db.Execute(
                  "CREATE CONSTRAINT fk3 FOREIGN KEY a (k) REFERENCES c (k)")
                .code(),
            StatusCode::kNotSupported);
}

TEST_F(FkTest, SelfReferenceRejected) {
  Database db;
  ASSERT_OK(db.Execute("CREATE TABLE t (k INTEGER, pk INTEGER)"));
  EXPECT_EQ(db.Execute(
                  "CREATE CONSTRAINT fk FOREIGN KEY t (pk) REFERENCES t (k)")
                .code(),
            StatusCode::kNotSupported);
}

TEST_F(FkTest, ValidationErrors) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE p (k INTEGER, s VARCHAR); CREATE TABLE c (k INTEGER)"));
  EXPECT_EQ(db.Execute(
                  "CREATE CONSTRAINT fk FOREIGN KEY c (k) REFERENCES p (s)")
                .code(),
            StatusCode::kTypeError);
  EXPECT_EQ(db.Execute(
                  "CREATE CONSTRAINT fk FOREIGN KEY c (k) REFERENCES p (zz)")
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db.Execute("CREATE CONSTRAINT fk FOREIGN KEY c (k) "
                       "REFERENCES p (k, s)")
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FkTest, DuplicateNameAcrossKinds) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE p (k INTEGER, v INTEGER); CREATE TABLE c (k INTEGER);"
      "CREATE CONSTRAINT same FD ON p (k -> v)"));
  ASSERT_OK(db.Execute("CREATE TABLE q (k INTEGER)"));
  EXPECT_EQ(db.Execute(
                  "CREATE CONSTRAINT same FOREIGN KEY c (k) REFERENCES q (k)")
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(FkTest, ToStringMentionsTables) {
  ASSERT_EQ(db_.foreign_keys().size(), 1u);
  std::string s = db_.foreign_keys()[0].ToString();
  EXPECT_NE(s.find("emp"), std::string::npos);
  EXPECT_NE(s.find("dept"), std::string::npos);
}

}  // namespace
}  // namespace hippo
