// Repair enumeration tests: repairs = maximal independent sets.
#include "repairs/repair_enumerator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/database.h"
#include "tests/test_util.h"

namespace hippo {
namespace {

TEST(RepairsTest, ConsistentInstanceHasOneEmptyRepair) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 1), (2, 2);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  RepairEnumerator re(db.catalog(), *g.value());
  auto sets = re.EnumerateDeletedSets(100);
  ASSERT_OK(sets.status());
  ASSERT_EQ(sets.value().size(), 1u);
  EXPECT_TRUE(sets.value()[0].empty());
}

TEST(RepairsTest, SingleConflictTwoRepairs) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 1), (1, 2);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  RepairEnumerator re(db.catalog(), *g.value());
  auto sets = re.EnumerateDeletedSets(100);
  ASSERT_OK(sets.status());
  ASSERT_EQ(sets.value().size(), 2u);
  // Each repair deletes exactly one of the two tuples.
  for (const auto& deleted : sets.value()) {
    EXPECT_EQ(deleted.size(), 1u);
  }
}

TEST(RepairsTest, IndependentConflictsMultiply) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 1), (1, 2), (2, 1), (2, 2), (3, 1), (3, 2);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  // Three independent conflict pairs -> 2^3 repairs.
  auto count = db.CountRepairs();
  ASSERT_OK(count.status());
  EXPECT_EQ(count.value(), 8u);
}

TEST(RepairsTest, TriangleOfPairwiseConflicts) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 1), (1, 2), (1, 3);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  // Pairwise conflicting: each repair keeps exactly one -> 3 repairs.
  auto count = db.CountRepairs();
  ASSERT_OK(count.status());
  EXPECT_EQ(count.value(), 3u);
}

TEST(RepairsTest, UnaryEdgeTupleInNoRepair) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (v INTEGER);"
      "INSERT INTO t VALUES (-1), (2);"
      "CREATE CONSTRAINT pos DENIAL (t AS x WHERE x.v < 0)"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  RepairEnumerator re(db.catalog(), *g.value());
  auto sets = re.EnumerateDeletedSets(100);
  ASSERT_OK(sets.status());
  ASSERT_EQ(sets.value().size(), 1u);
  EXPECT_EQ(sets.value()[0], (std::vector<RowId>{RowId{0, 0}}));
}

TEST(RepairsTest, TernaryEdgeThreeRepairs) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (k INTEGER, v INTEGER);"
      "INSERT INTO t VALUES (1, 1), (1, 2), (1, 3);"
      "CREATE CONSTRAINT trip DENIAL (t AS x, t AS y, t AS z WHERE "
      "x.k = y.k AND y.k = z.k AND x.v < y.v AND y.v < z.v)"));
  // One ternary edge: delete any one vertex -> 3 maximal repairs.
  auto count = db.CountRepairs();
  ASSERT_OK(count.status());
  EXPECT_EQ(count.value(), 3u);
}

TEST(RepairsTest, LimitEnforced) {
  Database db;
  std::string script =
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "CREATE CONSTRAINT fd FD ON t (a -> b);";
  ASSERT_OK(db.Execute(script));
  for (int i = 0; i < 12; ++i) {  // 2^12 repairs
    ASSERT_OK(db.InsertRow("t", Row{Value::Int(i), Value::Int(0)}));
    ASSERT_OK(db.InsertRow("t", Row{Value::Int(i), Value::Int(1)}));
  }
  EXPECT_EQ(db.CountRepairs(1000).status().code(),
            StatusCode::kNotSupported);
  auto full = db.CountRepairs(5000);
  ASSERT_OK(full.status());
  EXPECT_EQ(full.value(), 4096u);
}

TEST(RepairsTest, MasksHideExactlyDeletedRows) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 1), (1, 2), (2, 5);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  RepairEnumerator re(db.catalog(), *g.value());
  auto masks = re.EnumerateMasks(10);
  ASSERT_OK(masks.status());
  ASSERT_EQ(masks.value().size(), 2u);
  for (const RowMask& mask : masks.value()) {
    // (2,5) is conflict-free: visible in every repair.
    EXPECT_TRUE(mask.Allows(RowId{0, 2}));
    // Exactly one of the two conflicting rows is visible.
    EXPECT_NE(mask.Allows(RowId{0, 0}), mask.Allows(RowId{0, 1}));
  }
}

TEST(RepairsTest, CoreMaskHidesAllConflicting) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 1), (1, 2), (2, 5);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  RepairEnumerator re(db.catalog(), *g.value());
  RowMask core = re.CoreMask();
  EXPECT_FALSE(core.Allows(RowId{0, 0}));
  EXPECT_FALSE(core.Allows(RowId{0, 1}));
  EXPECT_TRUE(core.Allows(RowId{0, 2}));
}

// Property: every enumerated repair is independent (no full edge survives)
// and maximal (restoring any deleted tuple violates some edge).
class RepairLaws : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RepairLaws, IndependentAndMaximal) {
  Rng rng(GetParam());
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "CREATE CONSTRAINT fd FD ON t (a -> b)"));
  for (int i = 0; i < 14; ++i) {
    ASSERT_OK(db.InsertRow("t", Row{Value::Int(rng.UniformInt(0, 4)),
                                    Value::Int(rng.UniformInt(0, 2))}));
  }
  auto g = db.Hypergraph();
  ASSERT_OK(g.status());
  RepairEnumerator re(db.catalog(), *g.value());
  auto sets = re.EnumerateDeletedSets(100000);
  ASSERT_OK(sets.status());
  ASSERT_GE(sets.value().size(), 1u);

  for (const std::vector<RowId>& deleted : sets.value()) {
    VertexSet dead(deleted.begin(), deleted.end());
    // Independence: every edge loses at least one vertex.
    for (size_t e = 0; e < g.value()->NumEdges(); ++e) {
      const auto& edge =
          g.value()->edge(static_cast<ConflictHypergraph::EdgeId>(e));
      bool some_deleted = false;
      for (const RowId& v : edge) some_deleted |= dead.count(v) > 0;
      EXPECT_TRUE(some_deleted);
    }
    // Maximality: every deleted vertex has an edge whose other vertices
    // all survived.
    for (const RowId& v : deleted) {
      bool blocked = false;
      for (auto e : g.value()->IncidentEdges(v)) {
        bool others_alive = true;
        for (const RowId& u : g.value()->edge(e)) {
          if (u != v && dead.count(u)) others_alive = false;
        }
        if (others_alive) blocked = true;
      }
      EXPECT_TRUE(blocked) << "repair not maximal at " << v.ToString();
    }
  }
  // Repairs are pairwise distinct.
  std::set<std::vector<RowId>> uniq(sets.value().begin(),
                                    sets.value().end());
  EXPECT_EQ(uniq.size(), sets.value().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairLaws,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38));

}  // namespace
}  // namespace hippo
