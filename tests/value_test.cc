// Unit and property tests for the Value type system.
#include "types/value.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace hippo {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), TypeId::kNull);
}

TEST(ValueTest, Constructors) {
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(-3).AsInt(), -3);
  EXPECT_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToString(), "TRUE");
  EXPECT_EQ(Value::Bool(false).ToString(), "FALSE");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Double(3.5).ToString(), "3.5");
  EXPECT_EQ(Value::String("a'b").ToString(), "'a''b'");
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value::Int(5), Value::Double(5.0));
  EXPECT_EQ(Value::Double(5.0), Value::Int(5));
  EXPECT_NE(Value::Int(5), Value::Double(5.5));
}

TEST(ValueTest, NullIdentity) {
  // Structural identity (set semantics), not SQL three-valued equality.
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::Int(0));
}

TEST(ValueTest, CrossTypeInequality) {
  EXPECT_NE(Value::Bool(true), Value::Int(1));
  EXPECT_NE(Value::String("1"), Value::Int(1));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(ValueTest, TotalOrderRanksTypes) {
  EXPECT_LT(Value::Null(), Value::Bool(false));
  EXPECT_LT(Value::Bool(true), Value::Int(0));
  EXPECT_LT(Value::Int(99), Value::String(""));
}

TEST(ValueTest, CompareNumeric) {
  EXPECT_EQ(Value::Int(1).Compare(Value::Int(2)), -1);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Double(2.5).Compare(Value::Int(2)), 1);
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_EQ(Value::String("a").Compare(Value::String("b")), -1);
  EXPECT_EQ(Value::String("b").Compare(Value::String("b")), 0);
  EXPECT_EQ(Value::String("c").Compare(Value::String("b")), 1);
}

TEST(ValueTest, CastNullToAnything) {
  for (TypeId t : {TypeId::kBool, TypeId::kInt, TypeId::kDouble,
                   TypeId::kString}) {
    auto r = Value::Null().CastTo(t);
    ASSERT_OK(r.status());
    EXPECT_TRUE(r.value().is_null());
  }
}

TEST(ValueTest, CastIntDouble) {
  auto d = Value::Int(3).CastTo(TypeId::kDouble);
  ASSERT_OK(d.status());
  EXPECT_EQ(d.value().AsDouble(), 3.0);
  auto i = Value::Double(4.0).CastTo(TypeId::kInt);
  ASSERT_OK(i.status());
  EXPECT_EQ(i.value().AsInt(), 4);
  EXPECT_FALSE(Value::Double(4.5).CastTo(TypeId::kInt).ok());
}

TEST(ValueTest, CastRejectsLossy) {
  EXPECT_FALSE(Value::Int(1).CastTo(TypeId::kString).ok());
  EXPECT_FALSE(Value::String("x").CastTo(TypeId::kInt).ok());
  EXPECT_FALSE(Value::Bool(true).CastTo(TypeId::kInt).ok());
}

TEST(ValueTest, TypeIdFromStringAliases) {
  EXPECT_EQ(TypeIdFromString("INT").value(), TypeId::kInt);
  EXPECT_EQ(TypeIdFromString("Integer").value(), TypeId::kInt);
  EXPECT_EQ(TypeIdFromString("bigint").value(), TypeId::kInt);
  EXPECT_EQ(TypeIdFromString("VARCHAR").value(), TypeId::kString);
  EXPECT_EQ(TypeIdFromString("text").value(), TypeId::kString);
  EXPECT_EQ(TypeIdFromString("DOUBLE").value(), TypeId::kDouble);
  EXPECT_EQ(TypeIdFromString("real").value(), TypeId::kDouble);
  EXPECT_EQ(TypeIdFromString("boolean").value(), TypeId::kBool);
  EXPECT_FALSE(TypeIdFromString("blob").ok());
}

TEST(RowTest, HashAndEquality) {
  Row a{Value::Int(1), Value::String("x")};
  Row b{Value::Int(1), Value::String("x")};
  Row c{Value::Int(1), Value::String("y")};
  EXPECT_EQ(HashRow(a), HashRow(b));
  EXPECT_TRUE(RowEq()(a, b));
  EXPECT_FALSE(RowEq()(a, c));
}

TEST(RowTest, RowLessLexicographic) {
  Row a{Value::Int(1), Value::Int(2)};
  Row b{Value::Int(1), Value::Int(3)};
  Row c{Value::Int(1)};
  EXPECT_TRUE(RowLess(a, b));
  EXPECT_FALSE(RowLess(b, a));
  EXPECT_TRUE(RowLess(c, a));  // prefix is smaller
}

TEST(RowTest, RowToString) {
  Row r{Value::Int(1), Value::String("a"), Value::Null()};
  EXPECT_EQ(RowToString(r), "(1, 'a', NULL)");
}

// Property sweep: the total order is antisymmetric and transitive over a
// mixed value pool, and Compare agrees with operator<.
class ValueOrderProperty : public ::testing::TestWithParam<int> {};

std::vector<Value> MixedPool() {
  return {
      Value::Null(),          Value::Bool(false),  Value::Bool(true),
      Value::Int(-10),        Value::Int(0),       Value::Int(7),
      Value::Double(-0.5),    Value::Double(0.0),  Value::Double(7.0),
      Value::String(""),      Value::String("a"),  Value::String("ab"),
  };
}

TEST(ValueOrderPropertyTest, TotalOrderLaws) {
  std::vector<Value> pool = MixedPool();
  for (const Value& a : pool) {
    EXPECT_EQ(a.Compare(a), 0) << a.ToString();
    for (const Value& b : pool) {
      EXPECT_EQ(a.Compare(b), -b.Compare(a))
          << a.ToString() << " vs " << b.ToString();
      if (a == b) {
        EXPECT_EQ(a.Hash(), b.Hash());
        EXPECT_EQ(a.Compare(b), 0);
      }
      for (const Value& c : pool) {
        if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
          EXPECT_LE(a.Compare(c), 0)
              << a.ToString() << " " << b.ToString() << " " << c.ToString();
        }
      }
    }
  }
}

}  // namespace
}  // namespace hippo
