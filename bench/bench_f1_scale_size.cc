// F1 — running time vs database size (demo §3, third claim).
//
// Join query p ⋈ q under one FD per relation, 5% conflicts. Series:
//   plain      — ordinary evaluation (ignores inconsistency; lower bound)
//   hippo-kg   — Hippo with knowledge gathering (the full system)
//   hippo-base — Hippo issuing membership queries (small N only; the cost
//                the KG optimization removes)
//   rewriting  — the Arenas–Bertossi–Chomicki baseline
//   all-reps   — exact evaluation over every repair (separate exponential
//                table; repairs double with every conflict pair)
//
// Expected shape: plain, hippo-kg and rewriting scale near-linearly with
// hippo-kg within a small constant factor of plain; hippo-base degrades
// quadratically; all-repairs explodes exponentially at tiny sizes.
#include "bench/bench_common.h"

#include "common/str_util.h"

namespace hippo::bench {
namespace {

constexpr double kConflictRate = 0.05;

Database* Db(size_t n) {
  Database* db = DbCache::Get("two_rel", &BuildTwoRelationWorkload, n,
                              kConflictRate);
  WarmHypergraph(db);
  return db;
}

const std::string kJoin = QuerySet::Join();

void BM_Plain(benchmark::State& state) {
  Database* db = Db(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto rs = db->Query(kJoin);
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_Plain)->RangeMultiplier(2)->Range(1024, 131072)
    ->Unit(benchmark::kMillisecond);

void BM_HippoKG(benchmark::State& state) {
  Database* db = Db(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto rs = db->ConsistentAnswers(kJoin, KgOptions());
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_HippoKG)->RangeMultiplier(2)->Range(1024, 131072)
    ->Unit(benchmark::kMillisecond);

void BM_HippoBase(benchmark::State& state) {
  Database* db = Db(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto rs = db->ConsistentAnswers(kJoin, BaseOptions());
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_HippoBase)->RangeMultiplier(2)->Range(1024, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_Rewriting(benchmark::State& state) {
  Database* db = Db(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto rs = db->ConsistentAnswersByRewriting(kJoin);
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_Rewriting)->RangeMultiplier(2)->Range(1024, 131072)
    ->Unit(benchmark::kMillisecond);

void PrintFigureTable() {
  TextTable table({"N per relation", "plain", "hippo-kg", "hippo-base",
                   "rewriting", "kg/plain"});
  for (size_t n : {1024u, 4096u, 16384u, 65536u, 131072u}) {
    Database* db = Db(n);
    double plain = TimeOnce([&] { HIPPO_CHECK(db->Query(kJoin).ok()); });
    double kg = TimeOnce(
        [&] { HIPPO_CHECK(db->ConsistentAnswers(kJoin, KgOptions()).ok()); });
    double rewr = TimeOnce(
        [&] { HIPPO_CHECK(db->ConsistentAnswersByRewriting(kJoin).ok()); });
    std::string base = "-";
    if (n <= 4096) {
      base = FormatSeconds(TimeOnce([&] {
        HIPPO_CHECK(db->ConsistentAnswers(kJoin, BaseOptions()).ok());
      }));
    }
    table.AddRow({std::to_string(n), FormatSeconds(plain), FormatSeconds(kg),
                  base, FormatSeconds(rewr),
                  StrFormat("%.1fx", kg / plain)});
  }
  table.Print("F1: running time vs database size (join query, 5% conflicts)");

  // All-repairs blows up exponentially: one row per conflict-pair count.
  TextTable blowup({"N", "conflict pairs", "repairs", "all-repairs time",
                    "hippo-kg time"});
  // Conflicts exist in both relations: repairs = 2^(pairs_p + pairs_q),
  // so even a few hundred tuples at 5% already yield thousands of repairs.
  for (size_t n : {64u, 128u, 256u}) {
    Database* db = Db(n);
    auto repairs = db->CountRepairs(1u << 22);
    std::string reps = repairs.ok() ? std::to_string(repairs.value()) : ">4M";
    double all = TimeOnce([&] {
      HIPPO_CHECK(db->ConsistentAnswersAllRepairs(kJoin, 1u << 22).ok());
    });
    double kg = TimeOnce(
        [&] { HIPPO_CHECK(db->ConsistentAnswers(kJoin, KgOptions()).ok()); });
    blowup.AddRow({std::to_string(n),
                   std::to_string(static_cast<size_t>(n * kConflictRate / 2)),
                   reps, FormatSeconds(all), FormatSeconds(kg)});
  }
  blowup.Print("F1b: repair materialization explodes exponentially");
}

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN(hippo::bench::PrintFigureTable())
