// A3 — algebraic optimizer ablation (filter pushdown, product→join).
//
// The planner already places SQL conjuncts well, so the pass earns its keep
// on plans the planner never saw as a whole: programmatically assembled
// filtered products, filters above set operations, and the rewriting
// baseline's residue trees. This bench measures plain evaluation of such
// plans with the pass on vs off.
//
// Expected shape: a filtered cartesian product is O(N^2) rows materialized
// without the pass and O(N) hash-join output with it — the gap grows
// without bound; filters above unions roughly halve the data each side
// scans.
#include "bench/bench_common.h"

#include "common/str_util.h"
#include "expr/binder.h"
#include "plan/optimizer.h"
#include "sql/parser.h"

namespace hippo::bench {
namespace {

constexpr double kConflictRate = 0.05;

Database* Db(size_t n) {
  return DbCache::Get("two_rel", &BuildTwoRelationWorkload, n, kConflictRate);
}

/// Filter(Project(Product(p, q)), p.a = q.a AND p.b > 500): the shape a
/// naive frontend (or generated query) produces.
PlanNodePtr FilteredProduct(Database* db) {
  auto plan = db->Plan("SELECT * FROM p, q WHERE 1 = 1");
  HIPPO_CHECK(plan.ok());
  ExprBinder binder(plan.value()->schema());
  auto cond = sql::ParseExpression("p.a = q.a AND p.b > 500");
  HIPPO_CHECK(cond.ok());
  ExprPtr pred = std::move(cond).value();
  HIPPO_CHECK(binder.BindPredicate(pred.get()).ok());
  return std::make_unique<FilterNode>(std::move(plan).value(),
                                      std::move(pred));
}

/// Filter(Union(p, q), a < N/10): selective filter above a set operation.
PlanNodePtr FilteredUnion(Database* db, size_t n) {
  auto plan = db->Plan("SELECT a, b FROM p UNION SELECT a, b FROM q");
  HIPPO_CHECK(plan.ok());
  ExprBinder binder(plan.value()->schema());
  auto cond =
      sql::ParseExpression("a < " + std::to_string(n / 10));
  HIPPO_CHECK(cond.ok());
  ExprPtr pred = std::move(cond).value();
  HIPPO_CHECK(binder.BindPredicate(pred.get()).ok());
  return std::make_unique<FilterNode>(std::move(plan).value(),
                                      std::move(pred));
}

double TimePlain(Database* db, const PlanNode& plan) {
  return TimeOnce([&] {
    ExecContext ctx{&db->catalog(), nullptr};
    auto rs = Execute(plan, ctx);
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  });
}

void PrintFigureTable() {
  TextTable table({"plan shape", "N", "unoptimized", "optimized", "speedup"});
  for (size_t n : {512u, 1024u, 2048u, 4096u}) {
    Database* db = Db(n);
    PlanNodePtr raw = FilteredProduct(db);
    PlanNodePtr opt = OptimizePlan(*raw);
    double t_raw = TimePlain(db, *raw);
    double t_opt = TimePlain(db, *opt);
    table.AddRow({"filtered product", std::to_string(n),
                  FormatSeconds(t_raw), FormatSeconds(t_opt),
                  StrFormat("%.0fx", t_raw / t_opt)});
  }
  for (size_t n : {65536u, 262144u}) {
    Database* db = Db(n);
    PlanNodePtr raw = FilteredUnion(db, n);
    PlanNodePtr opt = OptimizePlan(*raw);
    double t_raw = TimePlain(db, *raw);
    double t_opt = TimePlain(db, *opt);
    table.AddRow({"filter over union", std::to_string(n),
                  FormatSeconds(t_raw), FormatSeconds(t_opt),
                  StrFormat("%.1fx", t_raw / t_opt)});
  }
  table.Print("A3: optimizer ablation (plain evaluation)");
}

void BM_FilteredProductRaw(benchmark::State& state) {
  Database* db = Db(static_cast<size_t>(state.range(0)));
  PlanNodePtr plan = FilteredProduct(db);
  for (auto _ : state) {
    ExecContext ctx{&db->catalog(), nullptr};
    auto rs = Execute(*plan, ctx);
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_FilteredProductRaw)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_FilteredProductOptimized(benchmark::State& state) {
  Database* db = Db(static_cast<size_t>(state.range(0)));
  PlanNodePtr plan = OptimizePlan(*FilteredProduct(db));
  for (auto _ : state) {
    ExecContext ctx{&db->catalog(), nullptr};
    auto rs = Execute(*plan, ctx);
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_FilteredProductOptimized)->Arg(512)->Arg(2048)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void BM_OptimizePassItself(benchmark::State& state) {
  Database* db = Db(1024);
  PlanNodePtr plan = FilteredProduct(db);
  for (auto _ : state) {
    PlanNodePtr out = OptimizePlan(*plan);
    benchmark::DoNotOptimize(out.get());
  }
}
BENCHMARK(BM_OptimizePassItself)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN(hippo::bench::PrintFigureTable())
