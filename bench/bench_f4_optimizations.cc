// F4 — the Prover-side optimizations (demo §2): answering membership
// checks "without executing any queries on the database" (knowledge
// gathering) and pre-deciding candidates from a consistent-answer subset
// (conflict-free filtering).
//
// Four configurations over the same join workload:
//   base            — membership via engine queries, no filtering
//   base+filter     — engine queries, conflict-free shortcut
//   kg              — in-memory gathering, no filtering
//   kg+filter       — the full system
//
// Reported: wall time and number of membership checks that hit the
// database (base modes) vs the gathered structures (kg modes).
// Expected shape: base degrades quadratically (each check scans the
// relation); kg+filter ≈ kg ≪ base; filtering slashes prover invocations.
#include "bench/bench_common.h"

#include "common/str_util.h"

namespace hippo::bench {
namespace {

constexpr double kConflictRate = 0.05;

Database* Db(size_t n) {
  Database* db = DbCache::Get("two_rel", &BuildTwoRelationWorkload, n,
                              kConflictRate);
  WarmHypergraph(db);
  return db;
}

const std::string kJoin = QuerySet::Join();

void RunMode(benchmark::State& state, const cqa::HippoOptions& options) {
  Database* db = Db(static_cast<size_t>(state.range(0)));
  cqa::HippoStats stats;
  for (auto _ : state) {
    stats = cqa::HippoStats();
    auto rs = db->ConsistentAnswers(kJoin, options, &stats);
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
  state.counters["membership_checks"] =
      static_cast<double>(stats.membership_checks);
  state.counters["prover_invocations"] =
      static_cast<double>(stats.prover_invocations);
}

void BM_Base(benchmark::State& state) { RunMode(state, BaseOptions(false)); }
void BM_BaseFilter(benchmark::State& state) {
  RunMode(state, BaseOptions(true));
}
void BM_Kg(benchmark::State& state) { RunMode(state, KgOptions(false)); }
void BM_KgFilter(benchmark::State& state) { RunMode(state, KgOptions(true)); }

BENCHMARK(BM_Base)->RangeMultiplier(2)->Range(512, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BaseFilter)->RangeMultiplier(2)->Range(512, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Kg)->RangeMultiplier(2)->Range(512, 32768)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KgFilter)->RangeMultiplier(2)->Range(512, 32768)
    ->Unit(benchmark::kMillisecond);

void PrintFigureTable() {
  TextTable table({"N", "mode", "time", "membership checks",
                   "prover invocations", "filtered"});
  struct Mode {
    const char* name;
    cqa::HippoOptions options;
    size_t max_n;
  };
  const Mode modes[] = {
      {"base", BaseOptions(false), 4096},
      {"base+filter", BaseOptions(true), 4096},
      {"kg", KgOptions(false), 32768},
      {"kg+filter", KgOptions(true), 32768},
  };
  for (size_t n : {1024u, 4096u, 32768u}) {
    for (const Mode& m : modes) {
      if (n > m.max_n) continue;
      Database* db = Db(n);
      cqa::HippoStats stats;
      double t = TimeOnce([&] {
        HIPPO_CHECK(db->ConsistentAnswers(kJoin, m.options, &stats).ok());
      });
      table.AddRow({std::to_string(n), m.name, FormatSeconds(t),
                    std::to_string(stats.membership_checks),
                    std::to_string(stats.prover_invocations),
                    std::to_string(stats.filtered_shortcuts)});
    }
  }
  table.Print(
      "F4: membership-check optimizations (join query, 5% conflicts)");
}

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN(hippo::bench::PrintFigureTable())
