// F5 — conflict detection and hypergraph construction (demo §2: "the
// conflict hypergraph has polynomial size ... allows us to efficiently deal
// even with large databases").
//
// Measures: detection time vs N for the FD hash-grouping fast path vs the
// generic join-plan path; detection time vs number of constraints; and the
// resulting hypergraph sizes (edges, conflicting tuples) confirming the
// polynomial (here: linear in conflicts) size claim.
#include "bench/bench_common.h"

#include "common/str_util.h"

#include "detect/detector.h"

namespace hippo::bench {
namespace {

constexpr double kConflictRate = 0.05;

Database* Db(size_t n) {
  return DbCache::Get("two_rel", &BuildTwoRelationWorkload, n, kConflictRate);
}

void BM_DetectFdFastPath(benchmark::State& state) {
  Database* db = Db(static_cast<size_t>(state.range(0)));
  ConflictDetector detector(db->catalog(), DetectOptions{true});
  size_t edges = 0;
  for (auto _ : state) {
    auto g = detector.DetectAll(db->constraints());
    HIPPO_CHECK(g.ok());
    edges = g.value().NumEdges();
    benchmark::DoNotOptimize(edges);
  }
  state.counters["edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_DetectFdFastPath)->RangeMultiplier(4)->Range(1024, 262144)
    ->Unit(benchmark::kMillisecond);

void BM_DetectGenericJoin(benchmark::State& state) {
  Database* db = Db(static_cast<size_t>(state.range(0)));
  ConflictDetector detector(db->catalog(), DetectOptions{false});
  for (auto _ : state) {
    auto g = detector.DetectAll(db->constraints());
    HIPPO_CHECK(g.ok());
    benchmark::DoNotOptimize(g.value().NumEdges());
  }
}
BENCHMARK(BM_DetectGenericJoin)->RangeMultiplier(4)->Range(1024, 262144)
    ->Unit(benchmark::kMillisecond);

// Detection cost with an increasing number of constraints (exclusion
// constraints are added on top of the two FDs).
Database* MultiConstraintDb(size_t n_constraints) {
  static std::map<size_t, std::unique_ptr<Database>> cache;
  auto it = cache.find(n_constraints);
  if (it == cache.end()) {
    auto db = std::make_unique<Database>();
    WorkloadSpec spec;
    spec.tuples_per_relation = 32768;
    spec.conflict_rate = kConflictRate;
    HIPPO_CHECK(BuildTwoRelationWorkload(db.get(), spec).ok());
    for (size_t c = 2; c < n_constraints; ++c) {
      // Each extra constraint denies p.b = q.b + <c> on matching keys —
      // selective, so edge counts stay moderate.
      std::string ddl = StrFormat(
          "CREATE CONSTRAINT extra%zu DENIAL (p AS x, q AS y WHERE "
          "x.a = y.a AND x.b = y.b + %zu)",
          c, 1000 + c);
      HIPPO_CHECK(db->Execute(ddl).ok());
    }
    it = cache.emplace(n_constraints, std::move(db)).first;
  }
  return it->second.get();
}

void BM_DetectManyConstraints(benchmark::State& state) {
  Database* db = MultiConstraintDb(static_cast<size_t>(state.range(0)));
  ConflictDetector detector(db->catalog(), DetectOptions{true});
  for (auto _ : state) {
    auto g = detector.DetectAll(db->constraints());
    HIPPO_CHECK(g.ok());
    benchmark::DoNotOptimize(g.value().NumEdges());
  }
}
BENCHMARK(BM_DetectManyConstraints)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void PrintFigureTable() {
  TextTable table({"N per relation", "fd fast path", "generic join path",
                   "edges", "conflicting tuples"});
  std::vector<size_t> sizes = SmokeMode()
                                  ? std::vector<size_t>{512}
                                  : std::vector<size_t>{4096, 16384, 65536,
                                                        262144};
  for (size_t n : sizes) {
    Database* db = Db(n);
    ConflictDetector fast(db->catalog(), DetectOptions{true});
    ConflictDetector generic(db->catalog(), DetectOptions{false});
    ConflictHypergraph graph;
    double tf = TimeOnce([&] {
      auto g = fast.DetectAll(db->constraints());
      HIPPO_CHECK(g.ok());
      graph = std::move(g).value();
    });
    double tg = TimeOnce(
        [&] { HIPPO_CHECK(generic.DetectAll(db->constraints()).ok()); });
    table.AddRow({std::to_string(n), FormatSeconds(tf), FormatSeconds(tg),
                  std::to_string(graph.NumEdges()),
                  std::to_string(graph.NumConflictingVertices())});
  }
  table.Print("F5: conflict detection & hypergraph size (5% conflicts)");
}

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN(hippo::bench::PrintFigureTable())
