// F6 — envelope quality: how many candidates does Enveloping hand to the
// Prover, and how many survive? (demo §2: "using an expression selecting a
// subset of the set of consistent query answers, we can significantly
// reduce the number of tuples that have to be processed by Prover").
//
// For monotone queries the envelope equals the plain answer set; for
// difference-heavy queries it is strictly larger (it must contain answers
// that only appear in some repair). Filtering then removes the
// conflict-free candidates from the Prover's workload.
#include "bench/bench_common.h"

#include "common/str_util.h"

namespace hippo::bench {
namespace {

constexpr size_t kN = 32768;

Database* Db(double rate) {
  Database* db = DbCache::Get("two_rel", &BuildTwoRelationWorkload, kN, rate);
  WarmHypergraph(db);
  return db;
}

struct NamedQuery {
  const char* name;
  std::string sql;
};

std::vector<NamedQuery> Queries() {
  return {
      {"S: selection", QuerySet::Selection()},
      {"J: join", QuerySet::Join()},
      {"U: union", QuerySet::Union()},
      {"D: difference", QuerySet::Difference()},
      {"UD: symmetric diff", QuerySet::UnionOfDifferences()},
  };
}

void BM_EnvelopeAndProve(benchmark::State& state) {
  Database* db = Db(0.05);
  NamedQuery q = Queries()[static_cast<size_t>(state.range(0))];
  cqa::HippoStats stats;
  for (auto _ : state) {
    stats = cqa::HippoStats();
    auto rs = db->ConsistentAnswers(q.sql, KgOptions(), &stats);
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
  state.SetLabel(q.name);
  state.counters["candidates"] = static_cast<double>(stats.candidates);
  state.counters["answers"] = static_cast<double>(stats.answers);
}
BENCHMARK(BM_EnvelopeAndProve)->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

void PrintFigureTable() {
  TextTable table({"query", "plain answers", "candidates (envelope)",
                   "consistent answers", "proved by filter",
                   "envelope time", "prove time"});
  Database* db = Db(0.05);
  for (const NamedQuery& q : Queries()) {
    auto plain = db->Query(q.sql);
    HIPPO_CHECK(plain.ok());
    cqa::HippoStats stats;
    auto rs = db->ConsistentAnswers(q.sql, KgOptions(), &stats);
    HIPPO_CHECK(rs.ok());
    table.AddRow({q.name, std::to_string(plain.value().NumRows()),
                  std::to_string(stats.candidates),
                  std::to_string(stats.answers),
                  std::to_string(stats.filtered_shortcuts),
                  FormatSeconds(stats.envelope_seconds),
                  FormatSeconds(stats.prove_seconds)});
  }
  table.Print(StrFormat(
      "F6: envelope size vs answer set (N = %zu, 5%% conflicts)", kN));

  // Conflict-rate sensitivity of the candidate/answer gap for D queries.
  TextTable gap({"conflict rate", "candidates", "answers",
                 "candidates needing prover"});
  for (double rate : {0.01, 0.05, 0.10, 0.20}) {
    Database* dbr = Db(rate);
    cqa::HippoStats stats;
    HIPPO_CHECK(dbr->ConsistentAnswers(QuerySet::Difference(), KgOptions(),
                                       &stats)
                    .ok());
    gap.AddRow({StrFormat("%.0f%%", rate * 100),
                std::to_string(stats.candidates),
                std::to_string(stats.answers),
                std::to_string(stats.prover_invocations)});
  }
  gap.Print("F6b: difference-query envelope vs conflict rate");
}

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN(hippo::bench::PrintFigureTable())
