// F9 — concurrent serving through the query service (the tentpole of the
// snapshot/epoch subsystem). Two tables:
//
//   * F9a reader scaling: a fixed two-relation workload is served read-only
//     at increasing worker-pool widths; the table reports throughput and
//     the speedup over one worker. Requires physical cores to show > 1x —
//     on a single-core host every row degenerates to ~1x, exactly like F8.
//   * F9b mixed traffic: the same pool with a writer streaming FD-churn
//     commits; the table shows reader p50/p99 latency and throughput with
//     0 and 1 writers, plus the epochs published during the run — the cost
//     of snapshot publication visible as tail latency, not blocking.
//   * F9c write burst: W pipelined writers (CommitAsync, a window of
//     outstanding receipts each) hammer small commits; the table shows
//     commit throughput, the mean/max coalesced group size, and receipt
//     p99 — group commit amortizing maintenance+publish across writers.
//   * F9d DDL interleave: one writer streams small commits while a
//     constraint drop+recreate (a full re-detection) lands mid-stream,
//     with the synchronous inline path vs the asynchronous fork-and-swap
//     pipeline; the table shows the small-commit stall (max latency) and
//     how many epochs published during the DDL window — the exclusive
//     window shrinking to a pointer-swap publish.
//
// Correctness of served answers (bit-identical to a serial oracle at the
// same epoch) is proved by tests/service_concurrency_test.cc; this binary
// only times the pool.
#include "bench/bench_common.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <map>
#include <thread>

#include "common/str_util.h"
#include "service/query_service.h"
#include "service/session.h"

namespace hippo::bench {
namespace {

using service::QueryService;
using service::ServiceOptions;
using service::SnapshotPtr;

constexpr double kConflictRate = 0.05;

size_t Rows() { return SmokeMode() ? 512 : 8192; }
size_t ReadOps() { return SmokeMode() ? 16 : 96; }

std::string ServedQuery() { return QuerySet::UnionOfDifferences(); }

std::unique_ptr<QueryService> BootService(size_t workers) {
  ServiceOptions options;
  options.num_workers = workers;
  auto service = std::make_unique<QueryService>(options);
  WorkloadSpec spec;
  spec.tuples_per_relation = Rows();
  spec.conflict_rate = kConflictRate;
  Status st = service->Commit(TwoRelationWorkloadSql(spec));
  HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());
  return service;
}

/// Submits `ops` consistent-answer requests through the pool from
/// `submitters` closed-loop threads; returns (wall seconds, latencies).
std::pair<double, std::vector<double>> DriveReads(QueryService* service,
                                                  size_t submitters,
                                                  size_t ops) {
  std::atomic<size_t> next{0};
  std::atomic<size_t> errors{0};
  std::vector<std::vector<double>> lat(submitters);
  double wall = TimeOnce([&] {
    std::vector<std::thread> threads;
    for (size_t s = 0; s < submitters; ++s) {
      threads.emplace_back([&, s] {
        while (next.fetch_add(1) < ops) {
          double secs = 0;
          Result<ResultSet> rs(Status::Internal("unset"));
          secs = TimeOnce([&] {
            rs = service
                     ->Submit(QueryService::ReadMode::kConsistent,
                              ServedQuery())
                     .get();
          });
          if (rs.ok()) {
            lat[s].push_back(secs);
          } else {
            ++errors;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  });
  HIPPO_CHECK_MSG(errors.load() == 0, "read requests failed");
  std::vector<double> merged;
  for (const auto& v : lat) merged.insert(merged.end(), v.begin(), v.end());
  return {wall, std::move(merged)};
}

void PrintReaderScaling() {
  TextTable table(
      {"pool workers", "ops", "wall", "throughput", "speedup vs 1"});
  double base = 0;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    auto service = BootService(workers);
    // One warm-up op keeps first-touch allocation out of the timed run.
    auto warm =
        service->Submit(QueryService::ReadMode::kConsistent, ServedQuery())
            .get();
    HIPPO_CHECK(warm.ok());
    auto [wall, lat] = DriveReads(service.get(), workers, ReadOps());
    if (workers == 1) base = wall;
    table.AddRow({std::to_string(workers), std::to_string(lat.size()),
                  FormatSeconds(wall),
                  StrFormat("%.1f ops/s", lat.size() / wall),
                  StrFormat("%.2fx", base / wall)});
  }
  table.Print(StrFormat(
      "F9a: reader throughput scaling, %zu rows/relation, query UD",
      Rows()));
}

void PrintMixedTraffic() {
  TextTable table({"writers", "reader ops", "throughput", "p50", "p99",
                   "epochs published"});
  for (size_t writers : {0u, 1u}) {
    auto service = BootService(2);
    uint64_t epoch_before = service->epoch();
    std::atomic<bool> done{false};
    std::thread writer;
    if (writers > 0) {
      writer = std::thread([&] {
        Rng rng(7);
        while (!done.load()) {
          std::string stmt = StrFormat(
              "INSERT INTO p VALUES (%llu, %llu)",
              (unsigned long long)rng.Uniform(Rows()),
              (unsigned long long)(2000 + rng.Uniform(1000)));
          Status st = service->Commit(stmt);
          HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());
        }
      });
    }
    auto [wall, lat] = DriveReads(service.get(), 2, ReadOps());
    done.store(true);
    if (writer.joinable()) writer.join();
    uint64_t epochs = service->epoch() - epoch_before;
    table.AddRow({std::to_string(writers), std::to_string(lat.size()),
                  StrFormat("%.1f ops/s", lat.size() / wall),
                  FormatSeconds(Percentile(lat, 50)),
                  FormatSeconds(Percentile(lat, 99)),
                  std::to_string(epochs)});
  }
  table.Print(StrFormat(
      "F9b: mixed read/write traffic, %zu rows/relation, pool of 2",
      Rows()));
}

size_t BurstCommits() { return SmokeMode() ? 48 : 384; }

void PrintWriteBurst() {
  TextTable table({"writers", "commits", "throughput", "mean group",
                   "max group", "p99 receipt"});
  for (size_t writers : {1u, 2u, 4u}) {
    auto service = BootService(2);
    std::atomic<size_t> next{0};
    std::vector<std::vector<double>> lat(writers);
    std::vector<std::vector<size_t>> groups(writers);
    double wall = TimeOnce([&] {
      std::vector<std::thread> threads;
      for (size_t w = 0; w < writers; ++w) {
        threads.emplace_back([&, w] {
          Rng rng(100 + w);
          constexpr size_t kWindow = 8;
          std::deque<std::pair<std::future<service::CommitReceipt>,
                               std::chrono::steady_clock::time_point>>
              window;
          auto reap = [&] {
            auto submitted = window.front().second;
            service::CommitReceipt r = window.front().first.get();
            window.pop_front();
            HIPPO_CHECK_MSG(r.status.ok(), r.status.ToString().c_str());
            lat[w].push_back(std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() -
                                 submitted)
                                 .count());
            groups[w].push_back(r.group_size);
          };
          while (next.fetch_add(1) < BurstCommits()) {
            std::string stmt = StrFormat(
                "INSERT INTO p VALUES (%llu, %llu)",
                (unsigned long long)rng.Uniform(Rows()),
                (unsigned long long)(2000 + rng.Uniform(1000)));
            window.emplace_back(service->CommitAsync(std::move(stmt)),
                                std::chrono::steady_clock::now());
            if (window.size() >= kWindow) reap();
          }
          while (!window.empty()) reap();
        });
      }
      for (std::thread& t : threads) t.join();
    });
    std::vector<double> merged_lat;
    double group_sum = 0;
    size_t group_max = 0, group_n = 0;
    for (size_t w = 0; w < writers; ++w) {
      merged_lat.insert(merged_lat.end(), lat[w].begin(), lat[w].end());
      for (size_t g : groups[w]) {
        group_sum += static_cast<double>(g);
        group_max = std::max(group_max, g);
        ++group_n;
      }
    }
    table.AddRow({std::to_string(writers),
                  std::to_string(merged_lat.size()),
                  StrFormat("%.1f commits/s", merged_lat.size() / wall),
                  StrFormat("%.2f", group_n == 0 ? 0.0 : group_sum / group_n),
                  std::to_string(group_max),
                  FormatSeconds(Percentile(merged_lat, 99))});
  }
  table.Print(StrFormat(
      "F9c: pipelined write burst, %zu rows/relation, window 8",
      Rows()));
}

void PrintDdlInterleave() {
  TextTable table({"mode", "small commits", "small p50", "small max",
                   "ddl wall", "epochs during ddl"});
  for (bool async : {false, true}) {
    ServiceOptions options;
    options.num_workers = 2;
    options.async_bulk_redetect = async;
    auto service = std::make_unique<QueryService>(options);
    WorkloadSpec spec;
    spec.tuples_per_relation = Rows();
    spec.conflict_rate = kConflictRate;
    Status st = service->Commit(TwoRelationWorkloadSql(spec));
    HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());

    std::atomic<bool> stop{false};
    std::vector<double> small_lat;
    std::thread writer([&] {
      Rng rng(23);
      while (!stop.load()) {
        std::string stmt = StrFormat(
            "INSERT INTO p VALUES (%llu, %llu)",
            (unsigned long long)rng.Uniform(Rows()),
            (unsigned long long)(3000 + rng.Uniform(1000)));
        double secs = 0;
        Status cst;
        secs = TimeOnce([&] { cst = service->Commit(stmt); });
        HIPPO_CHECK_MSG(cst.ok(), cst.ToString().c_str());
        small_lat.push_back(secs);
      }
    });
    // Let the small-commit stream reach steady state, then land the DDL:
    // a constraint drop+recreate, i.e. a full re-detection of q with no
    // net constraint change (answers stay invariant).
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    uint64_t epoch_before_ddl = service->epoch();
    auto ddl_future = service->CommitAsync(
        "DROP CONSTRAINT fd_q; CREATE CONSTRAINT fd_q FD ON q (a -> b)");
    service::CommitReceipt ddl = ddl_future.get();
    HIPPO_CHECK_MSG(ddl.status.ok(), ddl.status.ToString().c_str());
    stop.store(true);
    writer.join();
    double ddl_wall = ddl.phases.apply_seconds + ddl.phases.detect_seconds +
                      ddl.phases.replay_seconds + ddl.phases.publish_seconds;
    table.AddRow({async ? "async" : "sync",
                  std::to_string(small_lat.size()),
                  FormatSeconds(Percentile(small_lat, 50)),
                  FormatSeconds(Percentile(small_lat, 100)),
                  FormatSeconds(ddl_wall),
                  std::to_string(ddl.epoch - epoch_before_ddl)});
  }
  table.Print(StrFormat(
      "F9d: small-commit stall around constraint DDL, %zu rows/relation",
      Rows()));
}

void PrintFigureTables() {
  PrintReaderScaling();
  PrintMixedTraffic();
  PrintWriteBurst();
  PrintDdlInterleave();
}

void BM_ServiceConsistentRead(benchmark::State& state) {
  static std::map<size_t, std::unique_ptr<QueryService>> services;
  size_t workers = static_cast<size_t>(state.range(0));
  auto it = services.find(workers);
  if (it == services.end()) {
    it = services.emplace(workers, BootService(workers)).first;
  }
  QueryService* service = it->second.get();
  for (auto _ : state) {
    auto rs =
        service->Submit(QueryService::ReadMode::kConsistent, ServedQuery())
            .get();
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_ServiceConsistentRead)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_CommitPublishLatency(benchmark::State& state) {
  auto service = BootService(2);
  Rng rng(11);
  for (auto _ : state) {
    Status st = service->Commit(StrFormat(
        "INSERT INTO p VALUES (%llu, %llu)",
        (unsigned long long)rng.Uniform(Rows()),
        (unsigned long long)(5000 + rng.Uniform(100000))));
    HIPPO_CHECK(st.ok());
  }
  state.counters["epoch"] = static_cast<double>(service->epoch());
}
BENCHMARK(BM_CommitPublishLatency)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN(hippo::bench::PrintFigureTables())
