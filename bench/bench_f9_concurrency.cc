// F9 — concurrent serving through the query service (the tentpole of the
// snapshot/epoch subsystem). Two tables:
//
//   * F9a reader scaling: a fixed two-relation workload is served read-only
//     at increasing worker-pool widths; the table reports throughput and
//     the speedup over one worker. Requires physical cores to show > 1x —
//     on a single-core host every row degenerates to ~1x, exactly like F8.
//   * F9b mixed traffic: the same pool with a writer streaming FD-churn
//     commits; the table shows reader p50/p99 latency and throughput with
//     0 and 1 writers, plus the epochs published during the run — the cost
//     of snapshot publication visible as tail latency, not blocking.
//
// Correctness of served answers (bit-identical to a serial oracle at the
// same epoch) is proved by tests/service_concurrency_test.cc; this binary
// only times the pool.
#include "bench/bench_common.h"

#include <atomic>
#include <future>
#include <map>
#include <thread>

#include "common/str_util.h"
#include "service/query_service.h"
#include "service/session.h"

namespace hippo::bench {
namespace {

using service::QueryService;
using service::ServiceOptions;
using service::SnapshotPtr;

constexpr double kConflictRate = 0.05;

size_t Rows() { return SmokeMode() ? 512 : 8192; }
size_t ReadOps() { return SmokeMode() ? 16 : 96; }

std::string ServedQuery() { return QuerySet::UnionOfDifferences(); }

std::unique_ptr<QueryService> BootService(size_t workers) {
  ServiceOptions options;
  options.num_workers = workers;
  auto service = std::make_unique<QueryService>(options);
  WorkloadSpec spec;
  spec.tuples_per_relation = Rows();
  spec.conflict_rate = kConflictRate;
  Status st = service->Commit(TwoRelationWorkloadSql(spec));
  HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());
  return service;
}

/// Submits `ops` consistent-answer requests through the pool from
/// `submitters` closed-loop threads; returns (wall seconds, latencies).
std::pair<double, std::vector<double>> DriveReads(QueryService* service,
                                                  size_t submitters,
                                                  size_t ops) {
  std::atomic<size_t> next{0};
  std::atomic<size_t> errors{0};
  std::vector<std::vector<double>> lat(submitters);
  double wall = TimeOnce([&] {
    std::vector<std::thread> threads;
    for (size_t s = 0; s < submitters; ++s) {
      threads.emplace_back([&, s] {
        while (next.fetch_add(1) < ops) {
          double secs = 0;
          Result<ResultSet> rs(Status::Internal("unset"));
          secs = TimeOnce([&] {
            rs = service
                     ->Submit(QueryService::ReadMode::kConsistent,
                              ServedQuery())
                     .get();
          });
          if (rs.ok()) {
            lat[s].push_back(secs);
          } else {
            ++errors;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  });
  HIPPO_CHECK_MSG(errors.load() == 0, "read requests failed");
  std::vector<double> merged;
  for (const auto& v : lat) merged.insert(merged.end(), v.begin(), v.end());
  return {wall, std::move(merged)};
}

void PrintReaderScaling() {
  TextTable table(
      {"pool workers", "ops", "wall", "throughput", "speedup vs 1"});
  double base = 0;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    auto service = BootService(workers);
    // One warm-up op keeps first-touch allocation out of the timed run.
    auto warm =
        service->Submit(QueryService::ReadMode::kConsistent, ServedQuery())
            .get();
    HIPPO_CHECK(warm.ok());
    auto [wall, lat] = DriveReads(service.get(), workers, ReadOps());
    if (workers == 1) base = wall;
    table.AddRow({std::to_string(workers), std::to_string(lat.size()),
                  FormatSeconds(wall),
                  StrFormat("%.1f ops/s", lat.size() / wall),
                  StrFormat("%.2fx", base / wall)});
  }
  table.Print(StrFormat(
      "F9a: reader throughput scaling, %zu rows/relation, query UD",
      Rows()));
}

void PrintMixedTraffic() {
  TextTable table({"writers", "reader ops", "throughput", "p50", "p99",
                   "epochs published"});
  for (size_t writers : {0u, 1u}) {
    auto service = BootService(2);
    uint64_t epoch_before = service->epoch();
    std::atomic<bool> done{false};
    std::thread writer;
    if (writers > 0) {
      writer = std::thread([&] {
        Rng rng(7);
        while (!done.load()) {
          std::string stmt = StrFormat(
              "INSERT INTO p VALUES (%llu, %llu)",
              (unsigned long long)rng.Uniform(Rows()),
              (unsigned long long)(2000 + rng.Uniform(1000)));
          Status st = service->Commit(stmt);
          HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());
        }
      });
    }
    auto [wall, lat] = DriveReads(service.get(), 2, ReadOps());
    done.store(true);
    if (writer.joinable()) writer.join();
    uint64_t epochs = service->epoch() - epoch_before;
    table.AddRow({std::to_string(writers), std::to_string(lat.size()),
                  StrFormat("%.1f ops/s", lat.size() / wall),
                  FormatSeconds(Percentile(lat, 50)),
                  FormatSeconds(Percentile(lat, 99)),
                  std::to_string(epochs)});
  }
  table.Print(StrFormat(
      "F9b: mixed read/write traffic, %zu rows/relation, pool of 2",
      Rows()));
}

void PrintFigureTables() {
  PrintReaderScaling();
  PrintMixedTraffic();
}

void BM_ServiceConsistentRead(benchmark::State& state) {
  static std::map<size_t, std::unique_ptr<QueryService>> services;
  size_t workers = static_cast<size_t>(state.range(0));
  auto it = services.find(workers);
  if (it == services.end()) {
    it = services.emplace(workers, BootService(workers)).first;
  }
  QueryService* service = it->second.get();
  for (auto _ : state) {
    auto rs =
        service->Submit(QueryService::ReadMode::kConsistent, ServedQuery())
            .get();
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_ServiceConsistentRead)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_CommitPublishLatency(benchmark::State& state) {
  auto service = BootService(2);
  Rng rng(11);
  for (auto _ : state) {
    Status st = service->Commit(StrFormat(
        "INSERT INTO p VALUES (%llu, %llu)",
        (unsigned long long)rng.Uniform(Rows()),
        (unsigned long long)(5000 + rng.Uniform(100000))));
    HIPPO_CHECK(st.ok());
  }
  state.counters["epoch"] = static_cast<double>(service->epoch());
}
BENCHMARK(BM_CommitPublishLatency)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN(hippo::bench::PrintFigureTables())
