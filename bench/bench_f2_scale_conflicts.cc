// F2 — running time vs conflict rate (demo §3, third claim).
//
// Fixed N = 32k per relation, conflict rate swept 0%..30%. The conflict
// hypergraph grows linearly with the rate; Hippo's prover works only on
// conflicting candidates, so its overhead over plain evaluation should grow
// gently and stay within a small factor; rewriting pays its anti-joins even
// at 0% conflicts.
#include "bench/bench_common.h"

#include "common/str_util.h"

namespace hippo::bench {
namespace {

constexpr size_t kN = 32768;

Database* Db(double rate) {
  Database* db =
      DbCache::Get("two_rel", &BuildTwoRelationWorkload, kN, rate);
  WarmHypergraph(db);
  return db;
}

const std::string kJoin = QuerySet::Join();

// state.range(0) = conflict rate in tenths of a percent.
void BM_PlainVsConflicts(benchmark::State& state) {
  Database* db = Db(static_cast<double>(state.range(0)) / 1000.0);
  for (auto _ : state) {
    auto rs = db->Query(kJoin);
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_PlainVsConflicts)
    ->Arg(0)->Arg(10)->Arg(50)->Arg(100)->Arg(200)->Arg(300)
    ->Unit(benchmark::kMillisecond);

void BM_HippoKGVsConflicts(benchmark::State& state) {
  Database* db = Db(static_cast<double>(state.range(0)) / 1000.0);
  for (auto _ : state) {
    auto rs = db->ConsistentAnswers(kJoin, KgOptions());
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_HippoKGVsConflicts)
    ->Arg(0)->Arg(10)->Arg(50)->Arg(100)->Arg(200)->Arg(300)
    ->Unit(benchmark::kMillisecond);

void BM_RewritingVsConflicts(benchmark::State& state) {
  Database* db = Db(static_cast<double>(state.range(0)) / 1000.0);
  for (auto _ : state) {
    auto rs = db->ConsistentAnswersByRewriting(kJoin);
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_RewritingVsConflicts)
    ->Arg(0)->Arg(10)->Arg(50)->Arg(100)->Arg(200)->Arg(300)
    ->Unit(benchmark::kMillisecond);

void PrintFigureTable() {
  TextTable table({"conflict rate", "edges", "candidates", "answers",
                   "plain", "hippo-kg", "rewriting"});
  for (double rate : {0.0, 0.01, 0.05, 0.10, 0.20, 0.30}) {
    Database* db = Db(rate);
    auto g = db->Hypergraph();
    HIPPO_CHECK(g.ok());
    cqa::HippoStats stats;
    double kg = TimeOnce([&] {
      HIPPO_CHECK(db->ConsistentAnswers(kJoin, KgOptions(), &stats).ok());
    });
    double plain = TimeOnce([&] { HIPPO_CHECK(db->Query(kJoin).ok()); });
    double rewr = TimeOnce(
        [&] { HIPPO_CHECK(db->ConsistentAnswersByRewriting(kJoin).ok()); });
    table.AddRow({StrFormat("%.0f%%", rate * 100),
                  std::to_string(g.value()->NumEdges()),
                  std::to_string(stats.candidates),
                  std::to_string(stats.answers), FormatSeconds(plain),
                  FormatSeconds(kg), FormatSeconds(rewr)});
  }
  table.Print(StrFormat(
      "F2: running time vs conflict rate (join query, N = %zu)", kN));
}

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN(hippo::bench::PrintFigureTable())
