// F12 — the query router: per-route latency, the conflict-density
// crossover, and a tractable-heavy serving mix (DESIGN.md §6).
//
// The two first-order routes evaluate one rewritten plan whose cost does
// not depend on the conflict structure; the prover route pays per-candidate
// work (grounding, CNF, edge choices) that grows with conflict density.
// The workload here therefore controls density directly: conflicting keys
// come in *blocks* of `block` mutually conflicting tuples (all pairs of a
// block violate the FD), so density = rate x block, not just a pair count.
//
//   * F12a: per-route latency by query class on a conflict-dense instance —
//     the rewrite route beats the prover on every tractable-class query;
//     "-" marks routes that soundly refuse (prover cannot serve narrowing
//     projections, rewriting cannot serve difference).
//   * F12b: conflict-density sweep on the selection query — sparse pair
//     conflicts favor the prover (the conflict-free shortcut decides almost
//     every candidate), dense blocks favor the rewriting, and the router's
//     shape-based auto choice tracks the rewrite column.
//   * F12c: a 95%-tractable / 5%-difference request stream through
//     service::QueryService (the engine hippo_serve_driver drives), with
//     the per-route counts and mean latencies the service aggregates from
//     HippoStats. The same stream pinned to force-prover shows what
//     routing buys at the service level.
#include "bench/bench_common.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/str_util.h"
#include "service/query_service.h"

namespace hippo::bench {
namespace {

using service::QueryService;
using service::ServiceOptions;

size_t Rows() { return SmokeMode() ? 512 : 16384; }
size_t MixOps() { return SmokeMode() ? 40 : 400; }
size_t DenseBlock() { return SmokeMode() ? 8 : 64; }
constexpr double kDenseRate = 0.8;

/// SQL script for the conflict-block workload: p and q, each `n` rows with
/// FD a -> b. In `p`, rate*n tuples form blocks of `block` tuples sharing a
/// key with pairwise-distinct b (every pair conflicts); the rest carry
/// unique keys. `q` stays lightly conflicting (pairs) so joins against the
/// dense relation do not explode. Key domains overlap so joins and
/// differences are selective but non-empty.
std::string BlockWorkloadSql(size_t n, size_t block, double rate) {
  std::string script =
      "CREATE TABLE p (a INTEGER, b INTEGER);"
      "CREATE CONSTRAINT fd_p FD ON p (a -> b);"
      "CREATE TABLE q (a INTEGER, b INTEGER);"
      "CREATE CONSTRAINT fd_q FD ON q (a -> b)";
  size_t keys = block > 0 ? static_cast<size_t>(n * rate) / block : 0;
  size_t id = 0;
  for (size_t k = 0; k < keys; ++k) {
    for (size_t j = 0; j < block; ++j, ++id) {
      script += ";INSERT INTO p VALUES (" + std::to_string(k) + ", " +
                std::to_string(j) + ")";
    }
  }
  for (; id < n; ++id) {
    script += ";INSERT INTO p VALUES (" + std::to_string(id) + ", " +
              std::to_string(id % 997) + ")";
  }
  for (size_t i = 0; i < n; ++i) {
    script += ";INSERT INTO q VALUES (" + std::to_string(i) + ", " +
              std::to_string((i * 7) % 997) + ")";
    if (i % 20 == 19) {  // sparse pair conflicts in q
      script += ";INSERT INTO q VALUES (" + std::to_string(i) + ", " +
                std::to_string((i * 7 + 1) % 997) + ")";
    }
  }
  return script;
}

Database* BlockDb(size_t n, size_t block, double rate) {
  static std::map<std::string, std::unique_ptr<Database>> cache;
  std::string key = std::to_string(n) + "/" + std::to_string(block) + "/" +
                    std::to_string(static_cast<int>(rate * 100));
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto db = std::make_unique<Database>();
    Status st = db->Execute(BlockWorkloadSql(n, block, rate));
    HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());
    it = cache.emplace(key, std::move(db)).first;
  }
  WarmHypergraph(it->second.get());
  return it->second.get();
}

cqa::HippoOptions RouteOptions(RouteMode route) {
  cqa::HippoOptions opt = KgOptions();
  opt.route = route;
  return opt;
}

/// Median of three timed runs after one warm-up; negative when the route
/// refuses the query.
double TimeRoute(Database* db, const std::string& sql, RouteMode route) {
  auto warm = db->ConsistentAnswers(sql, RouteOptions(route));
  if (!warm.ok()) return -1;
  std::vector<double> runs;
  for (int i = 0; i < 3; ++i) {
    runs.push_back(TimeOnce([&] {
      HIPPO_CHECK(db->ConsistentAnswers(sql, RouteOptions(route)).ok());
    }));
  }
  std::sort(runs.begin(), runs.end());
  return runs[1];
}

// --------------------------------------------------------------- F12a

void PrintPerRouteTable() {
  Database* db = BlockDb(Rows(), DenseBlock(), kDenseRate);
  struct RouteCase {
    const char* label;
    std::string sql;
  };
  const RouteCase cases[] = {
      {"selection (ABC)", QuerySet::Selection()},
      {"star (ABC)", "SELECT * FROM p"},
      {"narrowing (KW)", "SELECT a FROM p"},
      {"join (ABC)", QuerySet::Join()},
      {"difference (prover)", QuerySet::Difference()},
  };
  TextTable table({"query class", "route(auto)", "auto", "rewrite", "prover",
                   "prover/rewrite"});
  for (const RouteCase& c : cases) {
    cqa::HippoStats stats;
    auto rs = db->ConsistentAnswers(c.sql, RouteOptions(RouteMode::kAuto),
                                    &stats);
    HIPPO_CHECK_MSG(rs.ok(), rs.status().ToString().c_str());
    double auto_secs = TimeRoute(db, c.sql, RouteMode::kAuto);
    double rewrite_secs = TimeRoute(db, c.sql, RouteMode::kForceRewrite);
    double prover_secs = TimeRoute(db, c.sql, RouteMode::kForceProver);
    std::string ratio = "-";
    if (rewrite_secs > 0 && prover_secs > 0) {
      ratio = StrFormat("%.1fx", prover_secs / rewrite_secs);
    }
    table.AddRow({c.label, RouteKindName(stats.route),
                  FormatSeconds(auto_secs),
                  rewrite_secs < 0 ? "-" : FormatSeconds(rewrite_secs),
                  prover_secs < 0 ? "-" : FormatSeconds(prover_secs), ratio});
  }
  table.Print(StrFormat(
      "F12a: per-route latency by query class (conflict-dense p: N=%zu, "
      "%.0f%% of tuples in blocks of %zu)",
      Rows(), kDenseRate * 100, DenseBlock()));
}

// --------------------------------------------------------------- F12b

void PrintDensitySweepTable() {
  struct Density {
    const char* label;
    size_t block;
    double rate;
  };
  const Density densities[] = {
      {"5% pairs", 2, 0.05},
      {"40% blocks of 8", 8, 0.4},
      {"80% blocks of 64", DenseBlock(), 0.8},
  };
  TextTable table({"conflict density", "rewrite", "prover", "auto",
                   "prover/rewrite"});
  for (const Density& d : densities) {
    Database* db = BlockDb(Rows(), d.block, d.rate);
    double rewrite_secs =
        TimeRoute(db, QuerySet::Selection(), RouteMode::kForceRewrite);
    double prover_secs =
        TimeRoute(db, QuerySet::Selection(), RouteMode::kForceProver);
    double auto_secs = TimeRoute(db, QuerySet::Selection(), RouteMode::kAuto);
    table.AddRow({d.label, FormatSeconds(rewrite_secs),
                  FormatSeconds(prover_secs), FormatSeconds(auto_secs),
                  StrFormat("%.1fx", prover_secs / rewrite_secs)});
  }
  table.Print(StrFormat(
      "F12b: conflict-density sweep, selection query (N=%zu per density)",
      Rows()));
}

// --------------------------------------------------------------- F12c

/// Drives `ops` consistent reads (95% tractable / 5% difference) through a
/// fresh service on the conflict-dense workload; returns (wall seconds,
/// aggregated hippo stats).
std::pair<double, cqa::HippoStats> DriveMix(RouteMode route, size_t ops) {
  ServiceOptions options;
  options.num_workers = 2;
  QueryService service(options);
  Status st =
      service.Commit(BlockWorkloadSql(Rows(), DenseBlock(), kDenseRate));
  HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());

  // 95% tractable: quantifier-free ABC-class queries (always rewritable,
  // unlike narrowing projections whose KW clique gate depends on the data);
  // every 20th request is the difference query only the prover can serve.
  const std::vector<std::string> tractable = {
      QuerySet::Selection(), "SELECT * FROM p", "SELECT * FROM q",
      QuerySet::Join()};
  size_t errors = 0;
  double wall = TimeOnce([&] {
    std::vector<std::future<Result<ResultSet>>> pending;
    pending.reserve(ops);
    for (size_t i = 0; i < ops; ++i) {
      const std::string& sql = (i % 20 == 19)
                                   ? QuerySet::Difference()
                                   : tractable[i % tractable.size()];
      cqa::HippoOptions opt = KgOptions();
      // The difference query is outside both first-order classes, so the
      // comparison stream pins to force-prover (sound for the whole mix)
      // rather than force-rewrite (which would fail it).
      opt.route = route;
      pending.push_back(service.Submit(QueryService::ReadMode::kConsistent,
                                       sql, /*snap=*/nullptr, opt));
    }
    for (auto& f : pending) {
      if (!f.get().ok()) ++errors;
    }
  });
  HIPPO_CHECK_MSG(errors == 0, "mix requests failed");
  return {wall, service.stats().hippo};
}

void PrintServingMixTable() {
  TextTable table({"stream", "ops", "throughput", "cf/rewrite/prover",
                   "mean rewrite", "mean prover"});
  auto mean = [](double secs, size_t n) {
    return n == 0 ? std::string("-") : FormatSeconds(secs / n);
  };
  for (RouteMode route : {RouteMode::kAuto, RouteMode::kForceProver}) {
    auto [wall, hippo] = DriveMix(route, MixOps());
    table.AddRow(
        {route == RouteMode::kAuto ? "auto-routed" : "force-prover",
         std::to_string(MixOps()), StrFormat("%.1f ops/s", MixOps() / wall),
         StrFormat("%zu/%zu/%zu", hippo.routed_conflict_free,
                   hippo.routed_rewrite, hippo.routed_prover),
         mean(hippo.rewrite_route_seconds, hippo.routed_rewrite),
         mean(hippo.prover_route_seconds, hippo.routed_prover)});
  }
  table.Print(StrFormat(
      "F12c: 95%%-tractable serving mix through the query service "
      "(conflict-dense p: N=%zu, %zu ops, 2 pool workers)",
      Rows(), MixOps()));
}

// ------------------------------------------------- google-benchmark series

void BM_RouteRewrite(benchmark::State& state) {
  Database* db = BlockDb(static_cast<size_t>(state.range(0)), 64, kDenseRate);
  for (auto _ : state) {
    auto rs = db->ConsistentAnswers(QuerySet::Selection(),
                                    RouteOptions(RouteMode::kForceRewrite));
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_RouteRewrite)->RangeMultiplier(4)->Range(1024, 65536)
    ->Unit(benchmark::kMillisecond);

void BM_RouteProver(benchmark::State& state) {
  Database* db = BlockDb(static_cast<size_t>(state.range(0)), 64, kDenseRate);
  for (auto _ : state) {
    auto rs = db->ConsistentAnswers(QuerySet::Selection(),
                                    RouteOptions(RouteMode::kForceProver));
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_RouteProver)->RangeMultiplier(4)->Range(1024, 65536)
    ->Unit(benchmark::kMillisecond);

void BM_RouteAuto(benchmark::State& state) {
  Database* db = BlockDb(static_cast<size_t>(state.range(0)), 64, kDenseRate);
  for (auto _ : state) {
    auto rs = db->ConsistentAnswers(QuerySet::Selection(),
                                    RouteOptions(RouteMode::kAuto));
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_RouteAuto)->RangeMultiplier(4)->Range(1024, 65536)
    ->Unit(benchmark::kMillisecond);

void PrintFigureTables() {
  PrintPerRouteTable();
  PrintDensitySweepTable();
  PrintServingMixTable();
}

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN(hippo::bench::PrintFigureTables())
