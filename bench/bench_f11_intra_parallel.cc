// F11 — intra-constraint parallelism (the skewed-workload front door):
// probe-side row-range partitioning of the generic join path, child
// partitioning of the FK anti-join, and partitioned envelope evaluation.
//
// The F8 workloads parallelize across constraints (and FD shards); these
// workloads are the cases F8 cannot touch:
//
//   * one giant generic (non-FD) denial constraint — before partitioning,
//     DetectAll ran it as a single serial unit no matter how many workers
//     the pool had;
//   * a skewed mix — one giant constraint plus several tiny ones, where
//     the giant used to serialize the tail of every parallel detection;
//   * one large restricted foreign key (anti-join over the child side);
//   * envelope evaluation of a join query (the relational-engine half of
//     ConsistentAnswers), partitioned by the executor.
//
// Every sweep checks that the result cardinality is thread-invariant
// (full bit-equality incl. edge ids and provenance is proved by
// tests/detector_differential_test.cc and tests/parallel_test.cc).
// Speedups require physical cores: on a single-core host every row
// degenerates to ~1x.
#include "bench/bench_common.h"

#include "common/rng.h"
#include "common/str_util.h"
#include "cqa/envelope.h"
#include "detect/detector.h"
#include "exec/executor.h"

namespace hippo::bench {
namespace {

size_t GiantRows() { return SmokeMode() ? 4096 : 262144; }
size_t SmallRows() { return SmokeMode() ? 256 : 4096; }
size_t EnvelopeRows() { return SmokeMode() ? 512 : 32768; }
// Scaled down in smoke mode so the CI lane still executes the probe
// partitioning path on the tiny workloads.
size_t PartitionRows() { return SmokeMode() ? 512 : 8192; }

/// One giant generic constraint: g(a, b) with ~2 rows per `a` value and a
/// non-FD-shaped condition (equi on a, wide-gap inequality residual on b),
/// so detection runs the generic hash-join path and conflicts are sparse.
Database* GiantDb() {
  static std::unique_ptr<Database> db;
  if (db == nullptr) {
    db = std::make_unique<Database>();
    HIPPO_CHECK(db->Execute(
                      "CREATE TABLE g (a INTEGER, b INTEGER);"
                      "CREATE CONSTRAINT giant DENIAL (g AS x, g AS y WHERE "
                      "x.a = y.a AND x.b < y.b - 18000)")
                    .ok());
    Rng rng(42);
    size_t n = GiantRows();
    for (size_t i = 0; i < n; ++i) {
      HIPPO_CHECK(db->InsertRow(
                        "g",
                        Row{Value::Int(static_cast<int64_t>(
                                rng.Uniform(n / 2 + 1))),
                            Value::Int(static_cast<int64_t>(
                                rng.Uniform(20000)))})
                      .ok());
    }
  }
  return db.get();
}

/// Skewed mix: the giant constraint's table and condition, plus six tiny
/// generic constraints over a small side relation — the workload where a
/// constraint-granular scheduler pins one worker on the giant while the
/// rest go idle.
Database* SkewedDb() {
  static std::unique_ptr<Database> db;
  if (db == nullptr) {
    db = std::make_unique<Database>();
    HIPPO_CHECK(db->Execute(
                      "CREATE TABLE g (a INTEGER, b INTEGER);"
                      "CREATE TABLE s (a INTEGER, b INTEGER);"
                      "CREATE CONSTRAINT giant DENIAL (g AS x, g AS y WHERE "
                      "x.a = y.a AND x.b < y.b - 18000)")
                    .ok());
    for (size_t c = 0; c < 6; ++c) {
      HIPPO_CHECK(db->Execute(StrFormat(
                                  "CREATE CONSTRAINT small%zu DENIAL "
                                  "(s AS x, s AS y WHERE x.a = y.a AND "
                                  "x.b = y.b + %zu)",
                                  c, c + 1))
                      .ok());
    }
    Rng rng(43);
    size_t n = GiantRows();
    for (size_t i = 0; i < n; ++i) {
      HIPPO_CHECK(db->InsertRow(
                        "g",
                        Row{Value::Int(static_cast<int64_t>(
                                rng.Uniform(n / 2 + 1))),
                            Value::Int(static_cast<int64_t>(
                                rng.Uniform(20000)))})
                      .ok());
    }
    for (size_t i = 0; i < SmallRows(); ++i) {
      HIPPO_CHECK(db->InsertRow(
                        "s",
                        Row{Value::Int(static_cast<int64_t>(
                                rng.Uniform(SmallRows() / 2 + 1))),
                            Value::Int(static_cast<int64_t>(
                                rng.Uniform(50)))})
                      .ok());
    }
  }
  return db.get();
}

/// One large restricted FK: a small parent and a giant child side with a
/// sprinkle of orphans — all detection work is the child-side anti-join.
Database* FkDb() {
  static std::unique_ptr<Database> db;
  if (db == nullptr) {
    db = std::make_unique<Database>();
    HIPPO_CHECK(db->Execute(
                      "CREATE TABLE parent (k INTEGER);"
                      "CREATE TABLE child (a INTEGER, k INTEGER);"
                      "CREATE CONSTRAINT fk FOREIGN KEY child (k) "
                      "REFERENCES parent (k)")
                    .ok());
    Rng rng(44);
    size_t parents = SmokeMode() ? 64 : 1024;
    for (size_t i = 0; i < parents; ++i) {
      HIPPO_CHECK(db->InsertRow(
                        "parent",
                        Row{Value::Int(static_cast<int64_t>(i))})
                      .ok());
    }
    for (size_t i = 0; i < GiantRows(); ++i) {
      // ~1% orphans (keys past the parent range).
      int64_t k = rng.Chance(0.01)
                      ? static_cast<int64_t>(parents + rng.Uniform(1000))
                      : static_cast<int64_t>(rng.Uniform(parents));
      HIPPO_CHECK(db->InsertRow(
                        "child",
                        Row{Value::Int(static_cast<int64_t>(
                                rng.Uniform(1000))),
                            Value::Int(k)})
                      .ok());
    }
  }
  return db.get();
}

DetectOptions IntraOptions(size_t threads) {
  DetectOptions options;
  options.num_threads = threads;
  options.partition_rows = PartitionRows();
  return options;
}

/// One timed DetectAll; returns (seconds, edges, intra partitions).
std::tuple<double, size_t, size_t> TimeDetect(Database* db,
                                              const DetectOptions& options) {
  ConflictDetector detector(db->catalog(), options);
  ConflictHypergraph graph;
  double secs = TimeOnce([&] {
    auto g = detector.DetectAll(db->constraints(), db->foreign_keys());
    HIPPO_CHECK(g.ok());
    graph = std::move(g).value();
  });
  return {secs, graph.NumEdges(),
          detector.stats().generic_partitions +
              detector.stats().fk_partitions};
}

void PrintDetectSweep(const std::string& caption, Database* db) {
  TextTable table({"threads", "detect time", "speedup vs 1 thread",
                   "partitions", "edges"});
  double base = 0;
  size_t base_edges = 0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    auto [secs, edges, partitions] = TimeDetect(db, IntraOptions(threads));
    if (threads == 1) {
      base = secs;
      base_edges = edges;
    }
    HIPPO_CHECK_MSG(edges == base_edges,
                    "partitioned detection changed the edge count");
    table.AddRow({std::to_string(threads), FormatSeconds(secs),
                  StrFormat("%.2fx", base / secs),
                  std::to_string(partitions), std::to_string(edges)});
  }
  table.Print(caption);
}

void PrintEnvelopeSweep() {
  Database* db = DbCache::Get("two_relation_f11",
                              &BuildTwoRelationWorkload, EnvelopeRows(),
                              /*conflict_rate=*/0.05);
  auto plan = db->Plan(QuerySet::Join());
  HIPPO_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());
  PlanNodePtr envelope = cqa::BuildEnvelope(*plan.value());

  TextTable table({"threads", "envelope eval time", "speedup vs 1 thread",
                   "candidate rows"});
  double base = 0;
  size_t base_rows = 0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ExecContext ctx{&db->catalog(), nullptr};
    ctx.parallel.num_threads = threads;
    ctx.parallel.min_partition_rows = SmokeMode() ? 64 : 4096;
    size_t rows = 0;
    double secs = TimeOnce([&] {
      auto rs = Execute(*envelope, ctx);
      HIPPO_CHECK_MSG(rs.ok(), rs.status().ToString().c_str());
      rows = rs.value().NumRows();
    });
    if (threads == 1) {
      base = secs;
      base_rows = rows;
    }
    HIPPO_CHECK_MSG(rows == base_rows,
                    "partitioned envelope changed the candidate count");
    table.AddRow({std::to_string(threads), FormatSeconds(secs),
                  StrFormat("%.2fx", base / secs), std::to_string(rows)});
  }
  table.Print(StrFormat("F11d: partitioned envelope evaluation, join query "
                        "(%zu rows per relation, 5%% conflicts)",
                        EnvelopeRows()));
}

void PrintFigureTables() {
  PrintDetectSweep(
      StrFormat("F11a: one giant generic-join constraint, probe-side "
                "partitioning (%zu rows)",
                GiantRows()),
      GiantDb());
  PrintDetectSweep(
      StrFormat("F11b: skewed mix — 1 giant + 6 tiny constraints "
                "(%zu + 6x%zu rows)",
                GiantRows(), SmallRows()),
      SkewedDb());
  PrintDetectSweep(
      StrFormat("F11c: restricted FK anti-join, child partitioning "
                "(%zu child rows, ~1%% orphans)",
                GiantRows()),
      FkDb());
  PrintEnvelopeSweep();
}

void BM_IntraPartitionGiant(benchmark::State& state) {
  Database* db = GiantDb();
  DetectOptions options =
      IntraOptions(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    ConflictDetector detector(db->catalog(), options);
    auto g = detector.DetectAll(db->constraints());
    HIPPO_CHECK(g.ok());
    benchmark::DoNotOptimize(g.value().NumEdges());
  }
}
BENCHMARK(BM_IntraPartitionGiant)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PartitionedEnvelope(benchmark::State& state) {
  Database* db = DbCache::Get("two_relation_f11",
                              &BuildTwoRelationWorkload, EnvelopeRows(),
                              /*conflict_rate=*/0.05);
  auto plan = db->Plan(QuerySet::Join());
  HIPPO_CHECK(plan.ok());
  PlanNodePtr envelope = cqa::BuildEnvelope(*plan.value());
  ExecContext ctx{&db->catalog(), nullptr};
  ctx.parallel.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto rs = Execute(*envelope, ctx);
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_PartitionedEnvelope)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN(hippo::bench::PrintFigureTables())
