// F13 — vectorized columnar execution vs the row-at-a-time engine.
//
// The batch engine (ExecEngine::kBatch) executes filters as typed loops
// over shared column vectors with selection-vector narrowing, joins as
// index-tuple probes of hash tables keyed by column-slice hashes, and
// scans as zero-copy shares of Table's memoized columnar view. These
// sweeps measure what that buys over the row engine on the paths the
// system actually spends time on:
//
//   * F13a — filter + projection over one relation, by input size;
//   * F13b — envelope evaluation of a join query (the relational half of
//     ConsistentAnswers), both engines across thread counts;
//   * F13c — generic-join conflict detection (the F5/F11 giant-constraint
//     shape), row vs batch probes, by input size.
//
// Every row cross-checks result cardinality between the engines; full
// bit-equality (rows, order, edge ids, provenance) is proved by
// tests/columnar_differential_test.cc. The engine comparison is
// single-thread-honest: F13a/F13c pin one thread, and F13b's thread
// column keeps the multi-thread rows out of the single-core perf gate.
#include "bench/bench_common.h"

#include "common/rng.h"
#include "common/str_util.h"
#include "cqa/envelope.h"
#include "detect/detector.h"
#include "exec/executor.h"

namespace hippo::bench {
namespace {

std::vector<size_t> ScanSizes() {
  if (SmokeMode()) return {1024, 4096};
  return {16384, 65536, 262144};
}

std::vector<size_t> DetectSizes() {
  if (SmokeMode()) return {1024, 4096};
  return {32768, 131072};
}

size_t EnvelopeRows() { return SmokeMode() ? 512 : 32768; }

/// One relation with ~2 rows per key and a wide-gap generic (non-FD)
/// constraint — the F5/F11 giant shape whose detection cost is pure
/// hash-join probe work.
Database* GenericDb(size_t n) {
  static std::map<size_t, std::unique_ptr<Database>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    auto db = std::make_unique<Database>();
    HIPPO_CHECK(db->Execute(
                      "CREATE TABLE g (a INTEGER, b INTEGER);"
                      "CREATE CONSTRAINT giant DENIAL (g AS x, g AS y WHERE "
                      "x.a = y.a AND x.b < y.b - 18000)")
                    .ok());
    Rng rng(1342);
    for (size_t i = 0; i < n; ++i) {
      HIPPO_CHECK(db->InsertRow(
                        "g",
                        Row{Value::Int(static_cast<int64_t>(
                                rng.Uniform(n / 2 + 1))),
                            Value::Int(static_cast<int64_t>(
                                rng.Uniform(20000)))})
                      .ok());
    }
    it = cache.emplace(n, std::move(db)).first;
  }
  return it->second.get();
}

ExecContext EngineCtx(const Database* db, ExecEngine engine, size_t threads) {
  ExecContext ctx{&db->catalog(), nullptr};
  ctx.engine = engine;
  ctx.parallel.num_threads = threads;
  ctx.parallel.min_partition_rows = SmokeMode() ? 64 : 4096;
  return ctx;
}

/// Times one materializing execution; returns (seconds, result rows).
std::pair<double, size_t> TimeExecute(const PlanNode& plan,
                                      const ExecContext& ctx) {
  size_t rows = 0;
  double secs = TimeOnce([&] {
    auto rs = Execute(plan, ctx);
    HIPPO_CHECK_MSG(rs.ok(), rs.status().ToString().c_str());
    rows = rs.value().NumRows();
  });
  return {secs, rows};
}

void PrintFilterSweep() {
  TextTable table({"rows", "row engine", "batch engine", "batch speedup",
                   "result rows"});
  for (size_t n : ScanSizes()) {
    Database* db = DbCache::Get("two_relation_f13", &BuildTwoRelationWorkload,
                                n, /*conflict_rate=*/0.05);
    auto plan = db->Plan(QuerySet::Selection());
    HIPPO_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());
    // Warm the columnar view so the row measures engine cost, not the
    // one-time view build.
    auto [warm_secs, warm_rows] = TimeExecute(
        *plan.value(), EngineCtx(db, ExecEngine::kBatch, 1));
    (void)warm_secs;
    auto [row_secs, row_rows] = TimeExecute(
        *plan.value(), EngineCtx(db, ExecEngine::kRow, 1));
    auto [batch_secs, batch_rows] = TimeExecute(
        *plan.value(), EngineCtx(db, ExecEngine::kBatch, 1));
    HIPPO_CHECK_MSG(row_rows == batch_rows && warm_rows == batch_rows,
                    "engines disagree on the result cardinality");
    table.AddRow({std::to_string(n), FormatSeconds(row_secs),
                  FormatSeconds(batch_secs),
                  StrFormat("%.2fx", row_secs / batch_secs),
                  std::to_string(batch_rows)});
  }
  table.Print(
      "F13a: selection query, row vs batch engine (1 thread, warm "
      "columnar view)");
}

void PrintEnvelopeSweep() {
  Database* db = DbCache::Get("two_relation_f13", &BuildTwoRelationWorkload,
                              EnvelopeRows(), /*conflict_rate=*/0.05);
  auto plan = db->Plan(QuerySet::Join());
  HIPPO_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());
  PlanNodePtr envelope = cqa::BuildEnvelope(*plan.value());

  TextTable table({"threads", "row engine", "batch engine", "batch speedup",
                   "candidate rows"});
  size_t base_rows = 0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    auto [row_secs, row_rows] = TimeExecute(
        *envelope, EngineCtx(db, ExecEngine::kRow, threads));
    auto [batch_secs, batch_rows] = TimeExecute(
        *envelope, EngineCtx(db, ExecEngine::kBatch, threads));
    HIPPO_CHECK_MSG(row_rows == batch_rows,
                    "engines disagree on the candidate cardinality");
    if (threads == 1) base_rows = batch_rows;
    HIPPO_CHECK_MSG(batch_rows == base_rows,
                    "partitioning changed the candidate cardinality");
    table.AddRow({std::to_string(threads), FormatSeconds(row_secs),
                  FormatSeconds(batch_secs),
                  StrFormat("%.2fx", row_secs / batch_secs),
                  std::to_string(batch_rows)});
  }
  table.Print(StrFormat(
      "F13b: envelope evaluation of the join query, row vs batch engine "
      "(%zu rows per relation, 5%% conflicts)",
      EnvelopeRows()));
}

/// One timed DetectAll; returns (seconds, edges).
std::pair<double, size_t> TimeDetect(Database* db,
                                     const DetectOptions& options) {
  ConflictDetector detector(db->catalog(), options);
  size_t edges = 0;
  double secs = TimeOnce([&] {
    auto g = detector.DetectAll(db->constraints(), db->foreign_keys());
    HIPPO_CHECK_MSG(g.ok(), g.status().ToString().c_str());
    edges = g.value().NumEdges();
  });
  return {secs, edges};
}

void PrintDetectSweep() {
  TextTable table({"rows", "row engine", "batch engine", "batch speedup",
                   "edges"});
  for (size_t n : DetectSizes()) {
    Database* db = GenericDb(n);
    DetectOptions row_opts;
    row_opts.engine = ExecEngine::kRow;
    DetectOptions batch_opts;
    batch_opts.engine = ExecEngine::kBatch;
    // Warm the columnar view (one-time table image, shared afterwards).
    TimeDetect(db, batch_opts);
    auto [row_secs, row_edges] = TimeDetect(db, row_opts);
    auto [batch_secs, batch_edges] = TimeDetect(db, batch_opts);
    HIPPO_CHECK_MSG(row_edges == batch_edges,
                    "engines disagree on the edge count");
    table.AddRow({std::to_string(n), FormatSeconds(row_secs),
                  FormatSeconds(batch_secs),
                  StrFormat("%.2fx", row_secs / batch_secs),
                  std::to_string(batch_edges)});
  }
  table.Print(
      "F13c: generic-join conflict detection, row vs batch probes "
      "(1 thread, warm columnar view)");
}

void PrintFigureTables() {
  PrintFilterSweep();
  PrintEnvelopeSweep();
  PrintDetectSweep();
}

void BM_BatchDetect(benchmark::State& state) {
  Database* db = GenericDb(static_cast<size_t>(state.range(0)));
  DetectOptions options;
  options.engine =
      state.range(1) != 0 ? ExecEngine::kBatch : ExecEngine::kRow;
  for (auto _ : state) {
    ConflictDetector detector(db->catalog(), options);
    auto g = detector.DetectAll(db->constraints());
    HIPPO_CHECK(g.ok());
    benchmark::DoNotOptimize(g.value().NumEdges());
  }
}
BENCHMARK(BM_BatchDetect)
    ->Args({32768, 0})
    ->Args({32768, 1})
    ->Args({131072, 0})
    ->Args({131072, 1})
    ->Unit(benchmark::kMillisecond);

void BM_BatchEnvelope(benchmark::State& state) {
  Database* db = DbCache::Get("two_relation_f13", &BuildTwoRelationWorkload,
                              32768, /*conflict_rate=*/0.05);
  auto plan = db->Plan(QuerySet::Join());
  HIPPO_CHECK(plan.ok());
  PlanNodePtr envelope = cqa::BuildEnvelope(*plan.value());
  ExecContext ctx = EngineCtx(
      db, state.range(0) != 0 ? ExecEngine::kBatch : ExecEngine::kRow, 1);
  for (auto _ : state) {
    auto rs = Execute(*envelope, ctx);
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_BatchEnvelope)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN(hippo::bench::PrintFigureTables())
