// T2 — expressiveness comparison (demo §3, second claim): "we will show the
// advantages of our method over competing approaches by demonstrating the
// expressive power of supported queries and integrity constraints."
//
// The matrix is computed, not asserted: every (query class × method) cell
// runs the method on a small inconsistent instance and compares its output
// to exact all-repairs evaluation. Cells read:
//   exact   — produced exactly the consistent answers
//   WRONG   — ran, but returned a different set (unsound for CQA)
//   n/a     — method rejects the query class
#include "bench/bench_common.h"

#include "common/str_util.h"

namespace hippo::bench {
namespace {

struct QueryCase {
  const char* cls;
  const char* sql;
};

const QueryCase kQueryCases[] = {
    {"S    selection", "SELECT * FROM p WHERE b < 2"},
    {"P~   permutation", "SELECT b, a FROM p"},
    {"SJ   join", "SELECT * FROM p, q WHERE p.a = q.a"},
    {"U    union", "SELECT * FROM p UNION SELECT * FROM q"},
    {"D    difference", "SELECT * FROM p EXCEPT SELECT * FROM q"},
    {"I    intersection", "SELECT * FROM p INTERSECT SELECT * FROM q"},
    {"SJUD composite",
     "(SELECT * FROM p EXCEPT SELECT * FROM q) UNION "
     "(SELECT * FROM q EXCEPT SELECT * FROM p)"},
    {"P∃   projection", "SELECT a FROM p"},
};

std::unique_ptr<Database> MakeInstance() {
  auto db = std::make_unique<Database>();
  HIPPO_CHECK(db->Execute(
                    "CREATE TABLE p (a INTEGER, b INTEGER);"
                    "CREATE TABLE q (a INTEGER, b INTEGER);"
                    "INSERT INTO p VALUES (0,0),(0,1),(1,1),(2,2),(3,0);"
                    "INSERT INTO q VALUES (1,1),(1,2),(2,2),(4,0);"
                    "CREATE CONSTRAINT fd_p FD ON p (a -> b);"
                    "CREATE CONSTRAINT fd_q FD ON q (a -> b)")
                  .ok());
  return db;
}

std::string Cell(const Result<ResultSet>& got,
                 const Result<ResultSet>& exact) {
  if (!got.ok()) return "n/a";
  if (!exact.ok()) return "?";
  std::vector<Row> a = got.value().rows;
  std::vector<Row> b = exact.value().rows;
  std::sort(a.begin(), a.end(), RowLess);
  std::sort(b.begin(), b.end(), RowLess);
  return a == b ? "exact" : "WRONG";
}

void PrintTable() {
  std::unique_ptr<Database> db = MakeInstance();
  TextTable table({"query class", "plain", "core", "rewriting",
                   "hippo", "all-repairs"});
  for (const QueryCase& q : kQueryCases) {
    auto exact = db->ConsistentAnswersAllRepairs(q.sql);
    // Projection queries: exact all-repairs evaluation still works (it
    // evaluates the plain plan per repair), so it anchors the row.
    table.AddRow({q.cls, Cell(db->Query(q.sql), exact),
                  Cell(db->QueryOverCore(q.sql), exact),
                  Cell(db->ConsistentAnswersByRewriting(q.sql), exact),
                  Cell(db->ConsistentAnswers(q.sql, KgOptions()), exact),
                  exact.ok() ? "exact" : "n/a"});
  }
  table.Print(
      "T2: query-class coverage per method (vs all-repairs ground truth)");

  // Constraint-class coverage: which methods accept which IC classes.
  TextTable ics({"constraint class", "rewriting", "hippo", "all-repairs"});
  ics.AddRow({"functional dependency", "yes", "yes", "yes"});
  ics.AddRow({"exclusion constraint", "yes", "yes", "yes"});
  ics.AddRow({"unary denial", "yes", "yes", "yes"});
  ics.AddRow({"binary denial (general)", "yes", "yes", "yes"});
  ics.AddRow({"k-ary denial (k>2)", "yes*", "yes", "yes"});
  std::printf("%s", ics.Render().c_str());
  std::printf(
      "  (*) residue construction generalizes to k-ary constraints in this\n"
      "      implementation; the published rewriting targets binary ICs.\n\n");
}

// Benchmark: the D query where only Hippo (polynomial) and all-repairs
// (exponential) are applicable — cost ratio at growing conflict counts.
void BM_HippoDifference(benchmark::State& state) {
  Database* db = DbCache::Get("two_rel", &BuildTwoRelationWorkload, 128,
                              static_cast<double>(state.range(0)) / 100.0);
  WarmHypergraph(db);
  for (auto _ : state) {
    auto rs = db->ConsistentAnswers(QuerySet::Difference(), KgOptions());
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_HippoDifference)->Arg(5)->Arg(10)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_AllRepairsDifference(benchmark::State& state) {
  // Conflicts exist in BOTH relations, so repairs = 2^(pairs_p + pairs_q):
  // N=128 keeps the exponent benchmarkable while still showing the blowup.
  Database* db = DbCache::Get("two_rel", &BuildTwoRelationWorkload, 128,
                              static_cast<double>(state.range(0)) / 100.0);
  WarmHypergraph(db);
  for (auto _ : state) {
    auto rs = db->ConsistentAnswersAllRepairs(QuerySet::Difference(),
                                              1u << 22);
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_AllRepairsDifference)->Arg(5)->Arg(10)->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN(hippo::bench::PrintTable())
