// A1 — ablation of the HProver's edge-choice search (DESIGN.md §4).
//
// Two knobs are measured on synthetic hypergraphs with controlled vertex
// degree and edge arity:
//   * positive-literal ordering: fewest-incident-edges-first vs clause
//     order (fail-fast pruning of the backtracking search);
//   * clause length and degree: edge choices explored per falsifiability
//     check, confirming the "exponential only in query size" bound.
#include "bench/bench_common.h"

#include "common/str_util.h"

#include "common/rng.h"
#include "cqa/prover.h"
#include "hypergraph/hypergraph.h"

namespace hippo::bench {
namespace {

using cqa::Clause;
using cqa::HProver;
using cqa::Literal;

/// Random hypergraph over `n` vertices: `edges` edges of the given arity.
ConflictHypergraph RandomGraph(size_t n, size_t edges, size_t arity,
                               uint64_t seed) {
  Rng rng(seed);
  ConflictHypergraph g;
  for (size_t e = 0; e < edges; ++e) {
    std::vector<RowId> edge;
    for (size_t i = 0; i < arity; ++i) {
      edge.push_back(RowId{0, static_cast<uint32_t>(rng.Uniform(n))});
    }
    g.AddEdge(std::move(edge), 0);
  }
  return g;
}

/// Random clause with `pos` positive and `neg` negative literals over
/// conflicting vertices (conflict-free positives short-circuit the search).
Clause RandomClause(const ConflictHypergraph& g, size_t pos, size_t neg,
                    Rng* rng) {
  std::vector<RowId> vertices = g.ConflictingVertices();
  std::sort(vertices.begin(), vertices.end());
  Clause c;
  for (size_t i = 0; i < pos + neg && !vertices.empty(); ++i) {
    RowId v = vertices[rng->Uniform(vertices.size())];
    c.literals.push_back(Literal{v, i < pos});
  }
  return c;
}

// state.range(0): clause length (positives); range(1): 1 = degree-ordered.
void BM_ProverSearch(benchmark::State& state) {
  ConflictHypergraph g = RandomGraph(2000, 4000, 2, 7);
  HProver prover(g);
  prover.set_order_positives_by_degree(state.range(1) == 1);
  Rng rng(11);
  std::vector<Clause> clauses;
  for (int i = 0; i < 256; ++i) {
    clauses.push_back(
        RandomClause(g, static_cast<size_t>(state.range(0)), 1, &rng));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prover.IsFalsifiable(clauses[i % 256]));
    ++i;
  }
  state.counters["edge_choices_per_clause"] =
      static_cast<double>(prover.stats().edge_choices_tried) /
      static_cast<double>(prover.stats().clauses_checked);
}
BENCHMARK(BM_ProverSearch)
    ->Args({1, 1})->Args({2, 1})->Args({4, 1})->Args({8, 1})
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})->Args({8, 0});

// Edge arity sweep: ternary+ edges add more blockers per choice.
void BM_ProverArity(benchmark::State& state) {
  ConflictHypergraph g =
      RandomGraph(2000, 3000, static_cast<size_t>(state.range(0)), 9);
  HProver prover(g);
  Rng rng(13);
  std::vector<Clause> clauses;
  for (int i = 0; i < 256; ++i) clauses.push_back(RandomClause(g, 3, 1, &rng));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prover.IsFalsifiable(clauses[i % 256]));
    ++i;
  }
}
BENCHMARK(BM_ProverArity)->Arg(2)->Arg(3)->Arg(4)->Arg(6);

void PrintTable() {
  TextTable table({"clause positives", "ordering", "edge choices / clause",
                   "time / clause"});
  for (size_t len : {1u, 2u, 4u, 8u}) {
    for (bool ordered : {true, false}) {
      ConflictHypergraph g = RandomGraph(2000, 4000, 2, 7);
      HProver prover(g);
      prover.set_order_positives_by_degree(ordered);
      Rng rng(11);
      std::vector<Clause> clauses;
      for (int i = 0; i < 512; ++i) {
        clauses.push_back(RandomClause(g, len, 1, &rng));
      }
      double t = TimeOnce([&] {
        for (const Clause& c : clauses) {
          benchmark::DoNotOptimize(prover.IsFalsifiable(c));
        }
      });
      table.AddRow(
          {std::to_string(len), ordered ? "degree-first" : "clause order",
           StrFormat("%.1f", static_cast<double>(
                                 prover.stats().edge_choices_tried) /
                                 static_cast<double>(
                                     prover.stats().clauses_checked)),
           FormatSeconds(t / 512.0)});
    }
  }
  table.Print("A1: prover backtracking ablation (random degree-2 graphs)");
}

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN(hippo::bench::PrintTable())
