// F8 — parallel sharded conflict detection (the data-scale front door:
// ROADMAP's "next scale step"). Two workloads:
//
//   * hot FD table: one large relation under a single FD — parallelism can
//     only come from determinant-hash sharding *within* the constraint;
//   * constraint fan-out: many constraints over moderate relations —
//     parallelism comes from detecting constraints concurrently.
//
// Each table sweeps the worker count and reports the speedup over one
// thread plus the resulting hypergraph size; the binary checks that every
// configuration produces the same number of edges (full set-equality
// including provenance is proved by tests/detector_differential_test.cc).
// Speedups require physical cores: on a single-core host every row
// degenerates to ~1x.
#include "bench/bench_common.h"

#include "common/str_util.h"

#include "detect/detector.h"

namespace hippo::bench {
namespace {

constexpr double kConflictRate = 0.05;

size_t HotTableRows() { return SmokeMode() ? 2048 : 262144; }
size_t FanOutRows() { return SmokeMode() ? 512 : 32768; }
// Scaled down in smoke mode so the CI lane still executes the
// determinant-hash sharding path on the tiny workloads.
size_t ShardRows() { return SmokeMode() ? 256 : 16384; }

Database* HotDb() {
  return DbCache::Get("employee_f8", &BuildEmployeeWorkload, HotTableRows(),
                      kConflictRate);
}

// Two FDs plus six selective exclusion-style denial constraints, so the
// worker pool has eight units to schedule even before FD sharding.
Database* FanOutDb() {
  static std::unique_ptr<Database> db;
  if (db == nullptr) {
    db = std::make_unique<Database>();
    WorkloadSpec spec;
    spec.tuples_per_relation = FanOutRows();
    spec.conflict_rate = kConflictRate;
    HIPPO_CHECK(BuildTwoRelationWorkload(db.get(), spec).ok());
    for (size_t c = 0; c < 6; ++c) {
      std::string ddl = StrFormat(
          "CREATE CONSTRAINT extra%zu DENIAL (p AS x, q AS y WHERE "
          "x.a = y.a AND x.b = y.b + %zu)",
          c, 1000 + c);
      HIPPO_CHECK(db->Execute(ddl).ok());
    }
  }
  return db.get();
}

DetectOptions ParallelOptions(size_t threads, size_t shard_rows) {
  DetectOptions options;
  options.num_threads = threads;
  options.shard_rows = shard_rows;
  return options;
}

/// One timed DetectAll; returns (seconds, edges).
std::pair<double, size_t> TimeDetect(Database* db,
                                     const DetectOptions& options) {
  ConflictDetector detector(db->catalog(), options);
  ConflictHypergraph graph;
  double secs = TimeOnce([&] {
    auto g = detector.DetectAll(db->constraints(), db->foreign_keys());
    HIPPO_CHECK(g.ok());
    graph = std::move(g).value();
  });
  return {secs, graph.NumEdges()};
}

void PrintSweep(const std::string& caption, Database* db, size_t shard_rows) {
  TextTable table({"threads", "detect time", "speedup vs 1 thread", "edges"});
  double base = 0;
  size_t base_edges = 0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    auto [secs, edges] = TimeDetect(db, ParallelOptions(threads, shard_rows));
    if (threads == 1) {
      base = secs;
      base_edges = edges;
    }
    HIPPO_CHECK_MSG(edges == base_edges,
                    "parallel detection changed the edge count");
    table.AddRow({std::to_string(threads), FormatSeconds(secs),
                  StrFormat("%.2fx", base / secs), std::to_string(edges)});
  }
  table.Print(caption);
}

void PrintFigureTables() {
  PrintSweep(StrFormat("F8a: hot FD table, determinant-hash sharding "
                       "(%zu rows, 5%% conflicts)",
                       HotTableRows()),
             HotDb(), ShardRows());
  PrintSweep(StrFormat("F8b: constraint fan-out, 8 constraints "
                       "(%zu rows per relation)",
                       FanOutRows()),
             FanOutDb(), ShardRows());
}

void BM_ParallelDetectHotFd(benchmark::State& state) {
  Database* db = HotDb();
  DetectOptions options =
      ParallelOptions(static_cast<size_t>(state.range(0)), ShardRows());
  for (auto _ : state) {
    ConflictDetector detector(db->catalog(), options);
    auto g = detector.DetectAll(db->constraints());
    HIPPO_CHECK(g.ok());
    benchmark::DoNotOptimize(g.value().NumEdges());
  }
}
BENCHMARK(BM_ParallelDetectHotFd)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelDetectFanOut(benchmark::State& state) {
  Database* db = FanOutDb();
  DetectOptions options =
      ParallelOptions(static_cast<size_t>(state.range(0)), ShardRows());
  for (auto _ : state) {
    ConflictDetector detector(db->catalog(), options);
    auto g = detector.DetectAll(db->constraints());
    HIPPO_CHECK(g.ok());
    benchmark::DoNotOptimize(g.value().NumEdges());
  }
}
BENCHMARK(BM_ParallelDetectFanOut)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN(hippo::bench::PrintFigureTables())
