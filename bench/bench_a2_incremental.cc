// A2 — incremental hypergraph maintenance vs recompute-from-scratch.
//
// The paper's second motivating scenario (§1) is "a long-running activity
// where consistency can be violated only temporarily and future updates
// will restore it": the instance keeps changing, and the conflict
// hypergraph must stay current for CQA to be answerable at any moment.
// This ablation compares the two maintenance policies the library offers:
//
//   * recompute  — invalidate on DML, run full conflict detection on the
//                  next read (the demo system's behaviour: "before
//                  processing any input query, the system performs Conflict
//                  Detection");
//   * incremental — maintain the hypergraph per statement via the
//                  IncrementalDetector (hash probes on the constraint's
//                  equality columns).
//
// The update stream is exact-row DML (delete a known row, insert a fresh
// one) so the measured cost is the maintenance itself, not a WHERE scan.
// Expected shape: recompute cost per update is Θ(N) (full detection each
// time) while incremental cost is O(group size) — flat in N — so the
// speedup grows without bound with the database size. Both policies are
// differentially tested for equality in tests/incremental_test.cc.
#include "bench/bench_common.h"

#include <unordered_map>

#include "common/rng.h"
#include "common/str_util.h"
#include "detect/incremental.h"

namespace hippo::bench {
namespace {

constexpr double kConflictRate = 0.05;
constexpr size_t kOpsPerRound = 64;

/// A long-running activity: each op replaces this client's row for a key
/// (delete the previous version if any, insert the new one). The underlying
/// workload rows provide the scale and the pre-existing conflicts.
class Activity {
 public:
  Activity(Database* db, size_t n, uint64_t seed)
      : db_(db), n_(n), rng_(seed) {}

  /// One delete+insert pair through the public DML API; returns OK status.
  Status Step() {
    int64_t key = static_cast<int64_t>(rng_.Uniform(n_));
    int64_t val = static_cast<int64_t>(rng_.Uniform(1000));
    auto it = mine_.find(key);
    if (it != mine_.end()) {
      HIPPO_RETURN_NOT_OK(
          db_->DeleteRow("p", Row{Value::Int(key), Value::Int(it->second)}));
    }
    HIPPO_RETURN_NOT_OK(
        db_->InsertRow("p", Row{Value::Int(key), Value::Int(val)}));
    mine_[key] = val;
    return Status::OK();
  }

 private:
  Database* db_;
  size_t n_;
  Rng rng_;
  std::unordered_map<int64_t, int64_t> mine_;
};

/// Keeps the hypergraph current after every statement under the given
/// policy; returns seconds per operation.
double TimePolicy(size_t n, bool incremental, uint64_t seed) {
  Database db;
  WorkloadSpec spec;
  spec.tuples_per_relation = n;
  spec.conflict_rate = kConflictRate;
  spec.seed = seed;
  HIPPO_CHECK(BuildTwoRelationWorkload(&db, spec).ok());
  if (incremental) {
    HIPPO_CHECK(db.EnableIncrementalMaintenance().ok());
  }
  WarmHypergraph(&db);
  Activity activity(&db, n, seed ^ 0xa5a5a5a5ULL);
  double secs = TimeOnce([&] {
    for (size_t i = 0; i < kOpsPerRound; ++i) {
      HIPPO_CHECK(activity.Step().ok());
      // The hypergraph must be current after every statement (the
      // long-running activity interleaves updates and CQA reads).
      WarmHypergraph(&db);
    }
  });
  return secs / static_cast<double>(kOpsPerRound);
}

void PrintFigureTable() {
  TextTable table({"N per relation", "recompute / op", "incremental / op",
                   "speedup"});
  for (size_t n : {4096u, 16384u, 65536u, 131072u}) {
    double full = TimePolicy(n, /*incremental=*/false, 42);
    double inc = TimePolicy(n, /*incremental=*/true, 42);
    table.AddRow({std::to_string(n), FormatSeconds(full), FormatSeconds(inc),
                  StrFormat("%.0fx", full / inc)});
  }
  table.Print(
      "A2: hypergraph maintenance cost per exact-row update (interleaved "
      "reads, 5% conflicts)");
}

void BM_RecomputePerOp(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Database* db = DbCache::Get("a2", &BuildTwoRelationWorkload, n,
                              kConflictRate);
  Activity activity(db, n, 7);
  for (auto _ : state) {
    for (size_t i = 0; i < kOpsPerRound; ++i) {
      HIPPO_CHECK(activity.Step().ok());
      db->InvalidateHypergraph();
      WarmHypergraph(db);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kOpsPerRound));
}
BENCHMARK(BM_RecomputePerOp)->RangeMultiplier(4)->Range(4096, 65536)
    ->Unit(benchmark::kMillisecond);

void BM_IncrementalPerOp(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  // A dedicated database: incremental maintenance stays enabled across
  // iterations, exactly like a long-running session.
  static std::map<size_t, std::unique_ptr<Database>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    auto db = std::make_unique<Database>();
    WorkloadSpec spec;
    spec.tuples_per_relation = n;
    spec.conflict_rate = kConflictRate;
    HIPPO_CHECK(BuildTwoRelationWorkload(db.get(), spec).ok());
    HIPPO_CHECK(db->EnableIncrementalMaintenance().ok());
    it = cache.emplace(n, std::move(db)).first;
  }
  Database* db = it->second.get();
  Activity activity(db, n, 7);
  for (auto _ : state) {
    for (size_t i = 0; i < kOpsPerRound; ++i) {
      HIPPO_CHECK(activity.Step().ok());
      WarmHypergraph(db);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kOpsPerRound));
  state.counters["edges_added"] =
      static_cast<double>(db->incremental_stats().edges_added);
}
BENCHMARK(BM_IncrementalPerOp)->RangeMultiplier(4)->Range(4096, 65536)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN(hippo::bench::PrintFigureTable())
