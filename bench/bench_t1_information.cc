// T1 — information extraction (demo §3, first claim): "using consistent
// query answers we can extract more information from an inconsistent
// database than in the approach where the input query is evaluated over the
// database from which the conflicting tuples have been removed."
//
// Three answering regimes over the data-integration workload:
//   plain — evaluate over the inconsistent instance (overclaims);
//   core  — delete every conflicting tuple, then evaluate (the traditional
//           cleaning approach the demo argues against);
//   cqa   — consistent answers (Hippo).
//
// Expected shape, per query class:
//   S (certified list):      core == cqa  (both drop uncertain tuples)
//   U (certified ∪ revoked): cqa  >  core (disjunctive info survives: a
//                            vendor contradictorily listed in both is
//                            certainly in the union in every repair)
//   D (certified − revoked): core >  cqa  — and core is WRONG: deleting the
//                            conflicting revocation resurrects vendors
//                            whose certification is actually in doubt.
#include "bench/bench_common.h"

#include "common/str_util.h"

namespace hippo::bench {
namespace {

Database* Db(size_t n, double rate) {
  Database* db =
      DbCache::Get("integration", &BuildIntegrationWorkload, n, rate);
  WarmHypergraph(db);
  return db;
}

struct NamedQuery {
  const char* cls;
  const char* sql;
};

const NamedQuery kQueries[] = {
    {"S  vendors", "SELECT * FROM vendors"},
    {"S  certified", "SELECT * FROM certified"},
    {"U  certified OR revoked",
     "SELECT * FROM certified UNION SELECT * FROM revoked"},
    {"D  vendors NOT blacklisted",
     "SELECT * FROM vendors EXCEPT SELECT * FROM blacklist"},
};

void PrintTable() {
  constexpr size_t kN = 10000;
  for (double rate : {0.02, 0.10, 0.20}) {
    Database* db = Db(kN, rate);
    TextTable table({"query", "plain", "core", "cqa", "cqa vs core"});
    for (const NamedQuery& q : kQueries) {
      auto plain = db->Query(q.sql);
      auto core = db->QueryOverCore(q.sql);
      auto cqa_rs = db->ConsistentAnswers(q.sql, KgOptions());
      HIPPO_CHECK(plain.ok());
      HIPPO_CHECK(core.ok());
      HIPPO_CHECK(cqa_rs.ok());
      long diff = static_cast<long>(cqa_rs.value().NumRows()) -
                  static_cast<long>(core.value().NumRows());
      table.AddRow({q.cls, std::to_string(plain.value().NumRows()),
                    std::to_string(core.value().NumRows()),
                    std::to_string(cqa_rs.value().NumRows()),
                    StrFormat("%+ld", diff)});
    }
    table.Print(StrFormat(
        "T1: answers extracted — plain vs conflict-removal vs CQA "
        "(N = %zu vendors, %.0f%% conflicts)",
        kN, rate * 100));
  }

  // Soundness check rendered into the table's caption data: for the D
  // query, core contains tuples that are NOT consistent answers.
  Database* db = Db(kN, 0.10);
  auto core = db->QueryOverCore(
      "SELECT * FROM vendors EXCEPT SELECT * FROM blacklist");
  auto cqa_rs = db->ConsistentAnswers(
      "SELECT * FROM vendors EXCEPT SELECT * FROM blacklist", KgOptions());
  HIPPO_CHECK(core.ok());
  HIPPO_CHECK(cqa_rs.ok());
  size_t overclaims = 0;
  for (const Row& row : core.value().rows) {
    if (!cqa_rs.value().Contains(row)) ++overclaims;
  }
  std::printf(
      "T1 soundness: the core approach reports %zu non-blacklisted vendors "
      "on the D query that are NOT certain (Hippo correctly withholds "
      "them)\n\n",
      overclaims);
}

// google-benchmark series: cost of the three regimes on the U query.
void BM_PlainUnion(benchmark::State& state) {
  Database* db = Db(static_cast<size_t>(state.range(0)), 0.10);
  for (auto _ : state) {
    auto rs =
        db->Query("SELECT * FROM certified UNION SELECT * FROM revoked");
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_PlainUnion)->RangeMultiplier(4)->Range(1024, 65536)
    ->Unit(benchmark::kMillisecond);

void BM_CoreUnion(benchmark::State& state) {
  Database* db = Db(static_cast<size_t>(state.range(0)), 0.10);
  for (auto _ : state) {
    auto rs = db->QueryOverCore(
        "SELECT * FROM certified UNION SELECT * FROM revoked");
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_CoreUnion)->RangeMultiplier(4)->Range(1024, 65536)
    ->Unit(benchmark::kMillisecond);

void BM_CqaUnion(benchmark::State& state) {
  Database* db = Db(static_cast<size_t>(state.range(0)), 0.10);
  for (auto _ : state) {
    auto rs = db->ConsistentAnswers(
        "SELECT * FROM certified UNION SELECT * FROM revoked", KgOptions());
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_CqaUnion)->RangeMultiplier(4)->Range(1024, 65536)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN(hippo::bench::PrintTable())
