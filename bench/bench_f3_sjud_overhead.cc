// F3 — SJUD queries beyond the rewriting class: "the time overhead of our
// approach is acceptable" (demo §3, third claim + §2 expressiveness).
//
// The union-of-differences query extracts disjunctive information and
// contains both U and D — query rewriting is inapplicable (it errors), so
// the only baselines are plain evaluation (which is *wrong* on inconsistent
// data, shown for time reference) and exponential repair enumeration.
// Expected shape: hippo-kg within a small constant factor of plain across
// the size sweep.
#include "bench/bench_common.h"

#include "common/str_util.h"

namespace hippo::bench {
namespace {

constexpr double kConflictRate = 0.05;

Database* Db(size_t n) {
  Database* db = DbCache::Get("two_rel", &BuildTwoRelationWorkload, n,
                              kConflictRate);
  WarmHypergraph(db);
  return db;
}

const std::string kSjud = QuerySet::UnionOfDifferences();
const std::string kDiff = QuerySet::Difference();

void BM_PlainSjud(benchmark::State& state) {
  Database* db = Db(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto rs = db->Query(kSjud);
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_PlainSjud)->RangeMultiplier(2)->Range(1024, 65536)
    ->Unit(benchmark::kMillisecond);

void BM_HippoSjud(benchmark::State& state) {
  Database* db = Db(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto rs = db->ConsistentAnswers(kSjud, KgOptions());
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_HippoSjud)->RangeMultiplier(2)->Range(1024, 65536)
    ->Unit(benchmark::kMillisecond);

void BM_HippoDifference(benchmark::State& state) {
  Database* db = Db(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto rs = db->ConsistentAnswers(kDiff, KgOptions());
    HIPPO_CHECK(rs.ok());
    benchmark::DoNotOptimize(rs.value().NumRows());
  }
}
BENCHMARK(BM_HippoDifference)->RangeMultiplier(2)->Range(1024, 65536)
    ->Unit(benchmark::kMillisecond);

void PrintFigureTable() {
  TextTable table({"N per relation", "plain", "hippo-kg", "overhead",
                   "rewriting"});
  for (size_t n : {1024u, 4096u, 16384u, 65536u}) {
    Database* db = Db(n);
    double plain = TimeOnce([&] { HIPPO_CHECK(db->Query(kSjud).ok()); });
    double kg = TimeOnce(
        [&] { HIPPO_CHECK(db->ConsistentAnswers(kSjud, KgOptions()).ok()); });
    auto rewr = db->ConsistentAnswersByRewriting(kSjud);
    table.AddRow({std::to_string(n), FormatSeconds(plain), FormatSeconds(kg),
                  StrFormat("%.1fx", kg / plain),
                  rewr.ok() ? "??" : "inapplicable"});
  }
  table.Print(
      "F3: SJUD union-of-differences query — Hippo overhead vs plain "
      "evaluation (rewriting cannot express the query)");
}

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN(hippo::bench::PrintFigureTable())
