// Shared helpers for the benchmark binaries.
//
// Each binary regenerates one table/figure of the evaluation (see DESIGN.md
// §4 and EXPERIMENTS.md): it first prints the paper-style data table
// (single timed runs via steady_clock), then runs the registered
// google-benchmark series for statistically robust timings.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "common/macros.h"
#include "db/database.h"

namespace hippo::bench {

/// Wall-clock time of one invocation of `fn`, in seconds.
inline double TimeOnce(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Cache of generated databases keyed by (builder tag, n, conflict%*10000),
/// so google-benchmark iterations do not re-generate data.
class DbCache {
 public:
  using Builder = Status (*)(Database*, const WorkloadSpec&);

  static Database* Get(const std::string& tag, Builder builder, size_t n,
                       double conflict_rate, uint64_t seed = 42) {
    static std::map<std::string, std::unique_ptr<Database>> cache;
    std::string key =
        tag + "/" + std::to_string(n) + "/" +
        std::to_string(static_cast<int>(conflict_rate * 10000)) + "/" +
        std::to_string(seed);
    auto it = cache.find(key);
    if (it == cache.end()) {
      auto db = std::make_unique<Database>();
      WorkloadSpec spec;
      spec.tuples_per_relation = n;
      spec.conflict_rate = conflict_rate;
      spec.seed = seed;
      Status st = builder(db.get(), spec);
      HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());
      it = cache.emplace(key, std::move(db)).first;
    }
    return it->second.get();
  }
};

/// Forces hypergraph construction so detection cost is not billed to the
/// first consistent-answer call.
inline void WarmHypergraph(Database* db) {
  auto g = db->Hypergraph();
  HIPPO_CHECK_MSG(g.ok(), g.status().ToString().c_str());
}

inline cqa::HippoOptions KgOptions(bool filtering = true) {
  cqa::HippoOptions opt;
  opt.membership = cqa::HippoOptions::MembershipMode::kKnowledgeGathering;
  opt.use_filtering = filtering;
  return opt;
}

inline cqa::HippoOptions BaseOptions(bool filtering = false) {
  cqa::HippoOptions opt;
  opt.membership = cqa::HippoOptions::MembershipMode::kQuery;
  opt.use_filtering = filtering;
  return opt;
}

/// True when `--table-only` is among the arguments: print the paper-style
/// tables and skip the google-benchmark series.
inline bool TableOnly(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--table-only") return true;
  }
  return false;
}

/// Smoke mode (`--smoke`): table printers shrink their workloads to sizes
/// a CI runner finishes in seconds — catches bench-build and runtime rot
/// without producing meaningful timings. Set by HIPPO_BENCH_MAIN before
/// the printers run.
inline bool& SmokeMode() {
  static bool smoke = false;
  return smoke;
}

/// Removes `flag` from argv (so google-benchmark's own flag parsing never
/// sees it) and reports whether it was present.
inline bool ConsumeFlag(int* argc, char** argv, const std::string& flag) {
  bool found = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (argv[i] == flag) {
      found = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;  // restore the argv[argc] == NULL sentinel
  return found;
}

}  // namespace hippo::bench

/// Standard entry point shared by every bench binary: run the paper-style
/// table printer(s), then the registered google-benchmark series (skipped
/// under `--table-only`).
#define HIPPO_BENCH_MAIN(print_tables)                            \
  int main(int argc, char** argv) {                               \
    ::hippo::bench::SmokeMode() =                                 \
        ::hippo::bench::ConsumeFlag(&argc, argv, "--smoke");      \
    print_tables;                                                 \
    if (::hippo::bench::TableOnly(argc, argv)) {                  \
      return 0;                                                   \
    }                                                             \
    benchmark::Initialize(&argc, argv);                           \
    benchmark::RunSpecifiedBenchmarks();                          \
    return 0;                                                     \
  }
