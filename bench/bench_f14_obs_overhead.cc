// F14 — observability overhead on the F12 serving mix (DESIGN.md §8).
//
// The obs layer's contract is that you pay only for what you turn on:
//
//   * F14a (gated in CI): the default configuration — metrics registry on,
//     per-query tracing off — versus all instrumentation disabled
//     (ServiceOptions::enable_metrics = false, the exact pre-obs code
//     path). The "ratio vs off" column is a plain float so
//     tools/check_bench.py can gate it absolutely (--overhead-limit);
//     the contract is < 2% on quiet full-size runs, with headroom in the
//     CI limit for smoke-size noise.
//   * F14b (informational): the same mix with a TraceSpan attached to
//     every request — the EXPLAIN ANALYZE cost. Span creation is
//     per-operator, not per-row, so this stays a small constant factor.
//
// Method: the three configurations run interleaved (a full mix each, in
// rotation) for `Reps()` rounds; each configuration reports the median of
// its rounds, so slow drift of the host (thermal, noisy neighbors) lands
// on all three equally instead of biasing whichever ran last.
#include "bench/bench_common.h"

#include <algorithm>
#include <deque>
#include <future>
#include <vector>

#include "common/str_util.h"
#include "obs/trace.h"
#include "service/query_service.h"

namespace hippo::bench {
namespace {

using service::QueryService;
using service::ServiceOptions;

size_t Rows() { return SmokeMode() ? 512 : 8192; }
size_t MixOps() { return SmokeMode() ? 60 : 400; }
size_t Reps() { return SmokeMode() ? 3 : 5; }

enum class ObsConfig {
  kOff,     ///< enable_metrics = false: the pre-obs hot path, verbatim
  kOn,      ///< default: registry + route histograms on, tracing off
  kTraced,  ///< kOn plus a TraceSpan on every request (EXPLAIN ANALYZE cost)
};

const char* ConfigName(ObsConfig c) {
  switch (c) {
    case ObsConfig::kOff:
      return "instrumentation off";
    case ObsConfig::kOn:
      return "metrics on (default)";
    case ObsConfig::kTraced:
      return "metrics + per-query trace";
  }
  return "?";
}

/// One F12c-style mix through a fresh service: 95% tractable consistent
/// reads, every 20th request the prover-only difference query. Returns
/// the wall seconds of the request stream (excluding the bulk load).
double DriveMixOnce(ObsConfig config) {
  ServiceOptions options;
  options.num_workers = 2;
  options.enable_metrics = config != ObsConfig::kOff;
  QueryService service(options);

  WorkloadSpec spec;
  spec.tuples_per_relation = Rows();
  spec.conflict_rate = 0.05;
  Status st = service.Commit(TwoRelationWorkloadSql(spec));
  HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());

  const std::vector<std::string> tractable = {
      QuerySet::Selection(), "SELECT * FROM p", "SELECT * FROM q",
      QuerySet::Join()};
  const size_t ops = MixOps();
  // Traced requests each own a span for the request's lifetime; a deque
  // keeps them stable while futures are in flight.
  std::deque<obs::TraceSpan> spans;
  size_t errors = 0;
  double wall = TimeOnce([&] {
    std::vector<std::future<Result<ResultSet>>> pending;
    pending.reserve(ops);
    for (size_t i = 0; i < ops; ++i) {
      const std::string& sql = (i % 20 == 19)
                                   ? QuerySet::Difference()
                                   : tractable[i % tractable.size()];
      cqa::HippoOptions opt = KgOptions();
      if (config == ObsConfig::kTraced) {
        spans.emplace_back("query");
        opt.trace = &spans.back();
      }
      pending.push_back(service.Submit(QueryService::ReadMode::kConsistent,
                                       sql, /*snap=*/nullptr, opt));
    }
    for (auto& f : pending) {
      if (!f.get().ok()) ++errors;
    }
  });
  HIPPO_CHECK_MSG(errors == 0, "mix requests failed");
  for (auto& span : spans) span.End();
  return wall;
}

void PrintOverheadTables() {
  const ObsConfig configs[] = {ObsConfig::kOff, ObsConfig::kOn,
                               ObsConfig::kTraced};
  // One untimed warm-up mix: the first service of the process pays for
  // allocator growth and page faults, which would otherwise bias
  // whichever configuration runs first.
  (void)DriveMixOnce(ObsConfig::kOff);
  std::vector<std::vector<double>> walls(3);
  for (size_t rep = 0; rep < Reps(); ++rep) {
    for (size_t c = 0; c < 3; ++c) {
      walls[c].push_back(DriveMixOnce(configs[c]));
    }
  }
  double median[3];
  for (size_t c = 0; c < 3; ++c) {
    std::sort(walls[c].begin(), walls[c].end());
    median[c] = walls[c][walls[c].size() / 2];
  }

  auto row = [&](size_t c) {
    return std::vector<std::string>{
        ConfigName(configs[c]), std::to_string(MixOps()),
        FormatSeconds(median[c]),
        StrFormat("%.1f ops/s", MixOps() / median[c]),
        StrFormat("%.3f", median[c] / median[0])};
  };

  // F14a: the gated pair — default configuration vs everything off.
  TextTable gated({"config", "ops", "median wall", "throughput",
                   "ratio vs off"});
  gated.AddRow(row(0));
  gated.AddRow(row(1));
  gated.Print(StrFormat(
      "F14a: disabled-path overhead, F12 serving mix (N=%zu, %zu ops, "
      "2 pool workers, median of %zu interleaved reps)",
      Rows(), MixOps(), Reps()));

  // F14b: what full tracing costs on top (informational).
  TextTable traced({"config", "ops", "median wall", "throughput",
                    "ratio vs off"});
  traced.AddRow(row(0));
  traced.AddRow(row(2));
  traced.Print(StrFormat(
      "F14b: per-query tracing overhead, same mix (N=%zu, %zu ops)",
      Rows(), MixOps()));
}

// ------------------------------------------------- google-benchmark series

void BM_MixInstrumentationOff(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(DriveMixOnce(ObsConfig::kOff));
  }
}
BENCHMARK(BM_MixInstrumentationOff)->Unit(benchmark::kMillisecond);

void BM_MixMetricsOn(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(DriveMixOnce(ObsConfig::kOn));
  }
}
BENCHMARK(BM_MixMetricsOn)->Unit(benchmark::kMillisecond);

void BM_MixTraced(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(DriveMixOnce(ObsConfig::kTraced));
  }
}
BENCHMARK(BM_MixTraced)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN(hippo::bench::PrintOverheadTables())
