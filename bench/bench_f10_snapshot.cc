// F10 — copy-on-write snapshot publication (the tentpole of the structural
// sharing refactor). Two tables:
//
//   * F10a publication cost vs database size: T tables with an FD each; a
//     1-table write followed by Snapshot::Capture (the COW commit path:
//     the write clones the touched table and dirty hypergraph partitions,
//     capture shares the rest) against the deep-clone baseline
//     (Catalog::Clone + ConflictHypergraph::DeepCopy — what publication
//     cost before this refactor). COW cost tracks the touched table;
//     deep cost tracks the whole database, so the speedup grows with T.
//     The marginal-bytes column is the memory the new epoch allocates
//     beyond what it shares with its predecessor.
//   * F10b publication cost vs write-batch size on a fixed 8-table
//     database: batches spread round-robin over the tables, so bigger
//     batches dirty more tables and the published bytes grow with the
//     touched set, not with the database.
//
// Correctness of shared snapshots (answers, edge ids, immutability) is
// proved by tests/snapshot_cow_test.cc; this binary only times publication.
#include "bench/bench_common.h"

#include <map>
#include <unordered_set>

#include "common/str_util.h"
#include "service/snapshot.h"

namespace hippo::bench {
namespace {

using service::Snapshot;
using service::SnapshotPtr;

size_t RowsPerTable() { return SmokeMode() ? 256 : 8192; }
constexpr size_t kConflictEvery = 64;

/// T tables (a INTEGER, b INTEGER) with an FD a -> b and a conflict pair
/// every kConflictEvery rows. Incremental maintenance on, graph warm.
std::unique_ptr<Database> BuildManyTables(size_t tables, size_t rows) {
  auto db = std::make_unique<Database>();
  for (size_t t = 0; t < tables; ++t) {
    Status st = db->Execute(StrFormat(
        "CREATE TABLE t%zu (a INTEGER, b INTEGER);"
        "CREATE CONSTRAINT fd%zu FD ON t%zu (a -> b)",
        t, t, t));
    HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());
  }
  for (size_t t = 0; t < tables; ++t) {
    std::string name = StrFormat("t%zu", t);
    for (size_t i = 0; i < rows; ++i) {
      Status st = db->InsertRow(
          name, Row{Value::Int(static_cast<int64_t>(i)),
                    Value::Int(static_cast<int64_t>(i))});
      HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());
      if (i % kConflictEvery == 0) {
        st = db->InsertRow(
            name, Row{Value::Int(static_cast<int64_t>(i)),
                      Value::Int(static_cast<int64_t>(i + 1))});
        HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());
      }
    }
  }
  Status st = db->EnableIncrementalMaintenance();
  HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());
  return db;
}

Database* CachedDb(size_t tables) {
  static std::map<size_t, std::unique_ptr<Database>> cache;
  auto it = cache.find(tables);
  if (it == cache.end()) {
    it = cache.emplace(tables, BuildManyTables(tables, RowsPerTable())).first;
  }
  return it->second.get();
}

SnapshotPtr MustCapture(Database* db, uint64_t epoch) {
  auto snap = Snapshot::Capture(db, epoch);
  HIPPO_CHECK_MSG(snap.ok(), snap.status().ToString().c_str());
  return snap.value();
}

/// One COW commit: a conflicting single-row insert into t0 (clones the
/// touched table and dirty graph partitions) followed by capture.
double CowCommitSeconds(Database* db, uint64_t* epoch, SnapshotPtr* prev,
                        size_t* marginal_bytes) {
  uint64_t e = (*epoch)++;
  std::string table = "t0";
  Row row{Value::Int(static_cast<int64_t>(e % RowsPerTable())),
          Value::Int(static_cast<int64_t>(1000000 + e))};
  SnapshotPtr snap;
  double secs = TimeOnce([&] {
    Status st = db->InsertRow(table, row);
    HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());
    snap = MustCapture(db, e);
  });
  if (marginal_bytes != nullptr) {
    std::unordered_set<const void*> seen;
    if (*prev != nullptr) (*prev)->CollectStorageIdentity(&seen);
    *marginal_bytes = snap->AccumulateApproxBytes(&seen);
  }
  *prev = std::move(snap);
  return secs;
}

/// The pre-refactor publication: deep-copy the whole instance + graph.
double DeepPublishSeconds(Database* db) {
  const ConflictHypergraph* graph = nullptr;
  {
    auto g = db->Hypergraph();
    HIPPO_CHECK_MSG(g.ok(), g.status().ToString().c_str());
    graph = g.value();
  }
  return TimeOnce([&] {
    Catalog deep_catalog = db->catalog().Clone();
    ConflictHypergraph deep_graph = graph->DeepCopy();
    benchmark::DoNotOptimize(deep_catalog.NumTables());
    benchmark::DoNotOptimize(deep_graph.NumEdges());
  });
}

double MinOf(const std::function<double()>& fn, int reps) {
  double best = fn();
  for (int i = 1; i < reps; ++i) best = std::min(best, fn());
  return best;
}

void PrintPublicationVsTables() {
  TextTable table({"tables", "total rows", "deep publish", "cow publish",
                   "speedup", "marginal bytes", "full bytes"});
  for (size_t tables : {1u, 2u, 4u, 8u, 16u}) {
    Database* db = CachedDb(tables);
    uint64_t epoch = 1;
    SnapshotPtr prev = MustCapture(db, 0);  // steady state: all shared
    size_t marginal = 0;
    double cow = MinOf(
        [&] { return CowCommitSeconds(db, &epoch, &prev, &marginal); }, 5);
    double deep = MinOf([&] { return DeepPublishSeconds(db); }, 3);
    table.AddRow({std::to_string(tables),
                  std::to_string(db->catalog().TotalRows()),
                  FormatSeconds(deep), FormatSeconds(cow),
                  StrFormat("%.1fx", deep / cow), FormatBytes(marginal),
                  FormatBytes(prev->ApproxBytes())});
  }
  table.Print(StrFormat(
      "F10a: publication cost of a 1-table write vs table count, "
      "%zu rows/table (deep = Catalog::Clone + hypergraph DeepCopy)",
      RowsPerTable()));
}

void PrintPublicationVsBatch() {
  constexpr size_t kTables = 8;
  TextTable table({"batch rows", "tables touched", "cow publish",
                   "marginal bytes"});
  Database* db = CachedDb(kTables);
  uint64_t next_row = 2000000;
  for (size_t batch : {size_t{1}, size_t{16}, size_t{256}, size_t{4096}}) {
    uint64_t epoch = 1;
    SnapshotPtr prev = MustCapture(db, 0);
    size_t touched = std::min(batch, kTables);
    SnapshotPtr snap;
    double secs = TimeOnce([&] {
      // Round-robin: batch b dirties min(b, kTables) tables.
      for (size_t i = 0; i < batch; ++i) {
        Status st = db->InsertRow(
            StrFormat("t%zu", i % kTables),
            Row{Value::Int(static_cast<int64_t>(next_row++)),
                Value::Int(0)});
        HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());
      }
      snap = MustCapture(db, epoch++);
    });
    std::unordered_set<const void*> seen;
    prev->CollectStorageIdentity(&seen);
    size_t marginal = snap->AccumulateApproxBytes(&seen);
    table.AddRow({std::to_string(batch), std::to_string(touched),
                  FormatSeconds(secs), FormatBytes(marginal)});
  }
  table.Print(StrFormat(
      "F10b: publication cost vs write-batch size, %zu tables x %zu rows",
      kTables, RowsPerTable()));
}

void PrintFigureTables() {
  PrintPublicationVsTables();
  PrintPublicationVsBatch();
}

void BM_CowPublish(benchmark::State& state) {
  Database* db = CachedDb(static_cast<size_t>(state.range(0)));
  uint64_t epoch = 1;
  SnapshotPtr prev = MustCapture(db, 0);
  for (auto _ : state) {
    CowCommitSeconds(db, &epoch, &prev, nullptr);
  }
}
BENCHMARK(BM_CowPublish)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_DeepClonePublish(benchmark::State& state) {
  Database* db = CachedDb(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    DeepPublishSeconds(db);
  }
}
BENCHMARK(BM_DeepClonePublish)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN(hippo::bench::PrintFigureTables())
