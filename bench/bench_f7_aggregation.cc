// F7 — range-consistent scalar aggregation (extension; the demo's
// reference [3], "Scalar Aggregation in Inconsistent Databases").
//
// Shape claims validated:
//   * the clique-partition closed form is linear in N — it answers at
//     database sizes where repair enumeration is astronomically infeasible;
//   * the interval width grows with the conflict rate (uncertainty in,
//     uncertainty out), while COUNT stays a point interval (repairs of an
//     FD-violating relation all have the same cardinality);
//   * against exact enumeration (small N), the closed form is identical —
//     also covered by unit tests.
#include "bench/bench_common.h"

#include "common/str_util.h"
#include "cqa/aggregates.h"

namespace hippo::bench {
namespace {

using cqa::AggFn;

Database* Db(size_t n, double rate) {
  Database* db =
      DbCache::Get("emp", &BuildEmployeeWorkload, n, rate);
  WarmHypergraph(db);
  return db;
}

void BM_RangeSum(benchmark::State& state) {
  Database* db = Db(static_cast<size_t>(state.range(0)), 0.05);
  for (auto _ : state) {
    auto r = db->RangeConsistentAggregate("emp", AggFn::kSum, "salary");
    HIPPO_CHECK(r.ok());
    benchmark::DoNotOptimize(r.value().glb);
  }
}
BENCHMARK(BM_RangeSum)->RangeMultiplier(4)->Range(1024, 262144)
    ->Unit(benchmark::kMillisecond);

void BM_RangeMin(benchmark::State& state) {
  Database* db = Db(static_cast<size_t>(state.range(0)), 0.05);
  for (auto _ : state) {
    auto r = db->RangeConsistentAggregate("emp", AggFn::kMin, "salary");
    HIPPO_CHECK(r.ok());
    benchmark::DoNotOptimize(r.value().glb);
  }
}
BENCHMARK(BM_RangeMin)->RangeMultiplier(4)->Range(1024, 262144)
    ->Unit(benchmark::kMillisecond);

void BM_EnumerationFallback(benchmark::State& state) {
  // Exclusion constraints break the clique-partition property, forcing the
  // exponential path; conflict pairs = state.range(0).
  static std::map<int64_t, std::unique_ptr<Database>> cache;
  int64_t pairs = state.range(0);
  auto it = cache.find(pairs);
  if (it == cache.end()) {
    auto db = std::make_unique<Database>();
    HIPPO_CHECK(db->Execute(
                      "CREATE TABLE a (k INTEGER); CREATE TABLE b (k INTEGER);"
                      "CREATE CONSTRAINT ex EXCLUSION ON a (k), b (k)")
                    .ok());
    for (int64_t i = 0; i < 100; ++i) {
      HIPPO_CHECK(db->InsertRow("a", Row{Value::Int(i)}).ok());
    }
    for (int64_t i = 0; i < pairs; ++i) {
      HIPPO_CHECK(db->InsertRow("b", Row{Value::Int(i)}).ok());
    }
    it = cache.emplace(pairs, std::move(db)).first;
  }
  for (auto _ : state) {
    auto r = it->second->RangeConsistentAggregate("a", AggFn::kCount, "",
                                                  nullptr);
    HIPPO_CHECK(r.ok());
    benchmark::DoNotOptimize(r.value().glb);
  }
}
BENCHMARK(BM_EnumerationFallback)->Arg(4)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_GroupedRangeSum(benchmark::State& state) {
  // Grouping by the FD determinant keeps every clique inside one group, so
  // the grouped closed form applies; cost is linear in N.
  Database* db = Db(static_cast<size_t>(state.range(0)), 0.05);
  size_t groups = 0;
  for (auto _ : state) {
    auto r = db->GroupedRangeConsistentAggregate("emp", AggFn::kSum,
                                                 "salary", {"name"});
    HIPPO_CHECK(r.ok());
    groups = r.value().size();
    benchmark::DoNotOptimize(groups);
  }
  state.counters["groups"] = static_cast<double>(groups);
}
BENCHMARK(BM_GroupedRangeSum)->RangeMultiplier(4)->Range(1024, 65536)
    ->Unit(benchmark::kMillisecond);

void PrintGroupedTable() {
  TextTable table({"N", "conflicts", "groups", "uncertain-width groups",
                   "grouped closed-form time"});
  for (double rate : {0.01, 0.05, 0.20}) {
    size_t n = 65536;
    Database* db = Db(n, rate);
    std::vector<cqa::GroupRange> result;
    double t = TimeOnce([&] {
      result = db->GroupedRangeConsistentAggregate("emp", AggFn::kSum,
                                                   "salary", {"name"})
                   .value();
    });
    size_t wide = 0;
    for (const cqa::GroupRange& g : result) {
      if (!(g.range.glb == g.range.lub)) ++wide;
    }
    table.AddRow({std::to_string(n), StrFormat("%.0f%%", rate * 100),
                  std::to_string(result.size()), std::to_string(wide),
                  FormatSeconds(t)});
  }
  table.Print(
      "F7b: grouped range aggregation (GROUP BY the FD determinant) — "
      "uncertain intervals track the conflict rate");
}

void PrintTable() {
  TextTable table({"N", "conflicts", "SUM range", "MIN range", "MAX range",
                   "AVG width", "COUNT", "closed-form time"});
  for (double rate : {0.01, 0.05, 0.20}) {
    size_t n = 65536;
    Database* db = Db(n, rate);
    cqa::AggStats stats;
    cqa::AggRange sum, mn, mx, avg, cnt;
    double t = TimeOnce([&] {
      sum = db->RangeConsistentAggregate("emp", AggFn::kSum, "salary",
                                         &stats)
                .value();
      mn = db->RangeConsistentAggregate("emp", AggFn::kMin, "salary").value();
      mx = db->RangeConsistentAggregate("emp", AggFn::kMax, "salary").value();
      avg = db->RangeConsistentAggregate("emp", AggFn::kAvg, "salary").value();
      cnt = db->RangeConsistentAggregate("emp", AggFn::kCount, "").value();
    });
    HIPPO_CHECK(stats.used_clique_partition);
    table.AddRow({std::to_string(n), StrFormat("%.0f%%", rate * 100),
                  sum.ToString(), mn.ToString(), mx.ToString(),
                  StrFormat("%.2f", avg.lub.AsDouble() - avg.glb.AsDouble()),
                  cnt.ToString(), FormatSeconds(t)});
  }
  table.Print(
      "F7: range-consistent aggregation over emp(name -> salary) — "
      "closed form under the clique partition");
}

}  // namespace
}  // namespace hippo::bench

HIPPO_BENCH_MAIN((hippo::bench::PrintTable(),
                  hippo::bench::PrintGroupedTable()))
