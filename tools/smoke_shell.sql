-- Batch-mode smoke for hippo_shell: DDL, DML, mode switches, meta commands.
CREATE TABLE emp (name VARCHAR, salary INTEGER);
INSERT INTO emp VALUES ('smith', 50000), ('smith', 60000), ('jones', 40000);
CREATE CONSTRAINT fd FD ON emp (name -> salary);
.tables
.constraints
.conflicts
.mem
SELECT * FROM emp;
.mode cqa
SELECT * FROM emp;
.mode core
SELECT * FROM emp;
.mode allrepairs
SELECT * FROM emp;
.repairs
.agg min emp salary
.report
.quit
