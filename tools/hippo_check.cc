// hippo_check — command-line consistency checker and conflict reporter.
//
// Loads a schema/constraint script, optionally imports CSV data, and
// prints a conflict report: per-constraint violation counts with example
// witnesses, hypergraph statistics, the consistency verdict, and the
// number of repairs. Optionally dumps the conflict hypergraph as Graphviz.
//
// Usage:
//   hippo_check SCRIPT.sql [--csv table=path.csv ...] [--dot out.dot]
//               [--examples N] [--threads N]
//
// --threads N runs conflict detection with N worker threads (0 = one per
// hardware thread); the default is serial.
//
// Exit status: 0 consistent, 1 inconsistent, 2 error — so the tool slots
// into CI pipelines ("fail the build when the exported data develops
// conflicts") and into the long-running-activity scenario from the paper's
// introduction (run between updates to watch violations appear and drain).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "db/conflict_report.h"
#include "db/database.h"
#include "io/csv.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "hippo_check: %s\n", message.c_str());
  return 2;
}

int Usage() {
  std::fprintf(stderr,
               "usage: hippo_check SCRIPT.sql [--csv table=path.csv ...] "
               "[--dot out.dot] [--examples N] [--threads N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string script_path;
  std::vector<std::pair<std::string, std::string>> csvs;  // (table, path)
  std::string dot_path;
  hippo::ConflictReportOptions report_options;
  std::optional<size_t> threads;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--csv") {
      if (++i >= argc) return Usage();
      std::string spec = argv[i];
      size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        return Fail("--csv expects table=path, got: " + spec);
      }
      csvs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--dot") {
      if (++i >= argc) return Usage();
      dot_path = argv[i];
    } else if (arg == "--examples") {
      if (++i >= argc) return Usage();
      report_options.max_examples =
          static_cast<size_t>(std::strtoull(argv[i], nullptr, 10));
    } else if (arg == "--threads") {
      if (++i >= argc) return Usage();
      threads = static_cast<size_t>(std::strtoull(argv[i], nullptr, 10));
    } else if (!arg.empty() && arg[0] == '-') {
      return Fail("unknown option: " + arg);
    } else if (script_path.empty()) {
      script_path = arg;
    } else {
      return Usage();
    }
  }
  if (script_path.empty()) return Usage();

  std::ifstream in(script_path);
  if (!in) return Fail("cannot open script: " + script_path);
  std::ostringstream buffer;
  buffer << in.rdbuf();

  hippo::Database db;
  if (threads.has_value()) {
    hippo::DetectOptions detect;
    detect.num_threads = *threads;  // 0 = all hardware threads
    db.SetDetectOptions(detect);
  }
  hippo::Status st = db.Execute(buffer.str());
  if (!st.ok()) return Fail("script failed: " + st.ToString());

  for (const auto& [table, path] : csvs) {
    auto imported = hippo::ImportCsvFile(&db, table, path);
    if (!imported.ok()) {
      return Fail("importing " + path + ": " +
                  imported.status().ToString());
    }
    std::printf("imported %zu rows into %s (%zu new)\n",
                imported.value().rows_read, table.c_str(),
                imported.value().rows_inserted);
  }

  auto report = hippo::GenerateConflictReport(&db, report_options);
  if (!report.ok()) return Fail(report.status().ToString());
  std::printf("%s", report.value().c_str());

  if (!dot_path.empty()) {
    auto graph = db.Hypergraph();
    if (!graph.ok()) return Fail(graph.status().ToString());
    std::ofstream dot(dot_path, std::ios::trunc);
    if (!dot) return Fail("cannot write " + dot_path);
    dot << graph.value()->ToDot();
    std::printf("hypergraph written to %s\n", dot_path.c_str());
  }

  auto consistent = db.IsConsistent();
  if (!consistent.ok()) return Fail(consistent.status().ToString());
  return consistent.value() ? 0 : 1;
}
