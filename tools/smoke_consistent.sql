-- Smoke script for hippo_check: a consistent instance (exit status 0).
CREATE TABLE emp (name VARCHAR, salary INTEGER);
INSERT INTO emp VALUES ('smith', 50000), ('jones', 40000);
CREATE CONSTRAINT fd FD ON emp (name -> salary)
