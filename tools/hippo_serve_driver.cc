// hippo_serve_driver — mixed read/write traffic against the query service.
//
// Boots a QueryService, bulk-loads the canonical two-relation workload
// (p/q with FDs a -> b and a controlled conflict rate), then drives it with
// R closed-loop reader threads (each submits SELECTs through the service's
// worker pool and waits for the answer) while W writer threads stream small
// FD-churn commits through the asynchronous pipeline (CommitAsync), each
// keeping --inflight receipts outstanding so consecutive commits coalesce
// into group commits. Prints per-role throughput and p50/p95/p99 latency
// plus the service's own counters — the live-traffic complement to
// bench_f9_concurrency's controlled sweeps.
//
// Usage:
//   hippo_serve_driver [--rows N] [--conflict-rate F] [--readers R]
//                      [--writers W] [--ops N] [--workers N] [--queue N]
//                      [--inflight N] [--mode cqa|plain|core] [--seed S]
//                      [--smoke] [--metrics-out=FILE] [--metrics-json=FILE]
//
// --ops is the total number of read requests across all readers; each
// writer commits until the readers finish. --smoke shrinks everything to
// CI-smoke size. --metrics-out writes the service's Prometheus text
// exposition at exit; --metrics-json writes the same snapshot as one JSON
// object (machine-readable, consumed by the ctest smoke). Exit status:
// 0 on success, 2 on error.
#include <algorithm>
#include <atomic>
#include <deque>
#include <future>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "obs/metrics.h"
#include "plan/router.h"
#include "service/query_service.h"
#include "service/session.h"

namespace {

using hippo::Rng;
using hippo::Status;
using hippo::StrFormat;
using hippo::bench::FormatSeconds;
using hippo::bench::Percentiles;
using hippo::bench::QuerySet;
using hippo::bench::TextTable;
using hippo::service::CommitReceipt;
using hippo::service::QueryService;
using hippo::service::ServiceOptions;

struct DriverConfig {
  size_t rows = 20000;
  double conflict_rate = 0.05;
  size_t readers = 4;
  size_t writers = 1;
  size_t total_ops = 200;
  size_t workers = 0;  // 0 = all hardware threads
  size_t queue_depth = 256;
  size_t inflight = 4;  // outstanding CommitAsync receipts per writer
  QueryService::ReadMode mode = QueryService::ReadMode::kConsistent;
  uint64_t seed = 42;
  std::string metrics_out;   // Prometheus text exposition path ("" = off)
  std::string metrics_json;  // JSON metrics snapshot path ("" = off)
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "hippo_serve_driver: %s\n", message.c_str());
  return 2;
}

/// The two-relation workload as SQL so the service's bulk-commit path does
/// the loading (and the initial commit exercises the parallel re-detect).
std::string WorkloadSql(const DriverConfig& config) {
  hippo::bench::WorkloadSpec spec;
  spec.tuples_per_relation = config.rows;
  spec.conflict_rate = config.conflict_rate;
  spec.seed = config.seed;
  return hippo::bench::TwoRelationWorkloadSql(spec);
}

struct RoleReport {
  size_t ops = 0;
  double wall_seconds = 0;
  std::vector<double> latencies;  // seconds, merged across threads
};

int Run(const DriverConfig& config) {
  ServiceOptions options;
  options.num_workers = config.workers;
  options.max_queue_depth = config.queue_depth;
  QueryService service(options);

  std::printf("loading %zu rows/relation (conflict rate %.1f%%)...\n",
              config.rows, config.conflict_rate * 100);
  double load_seconds = 0;
  {
    auto t0 = std::chrono::steady_clock::now();
    Status st = service.Commit(WorkloadSql(config));
    if (!st.ok()) return Fail("load failed: " + st.ToString());
    load_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  }
  std::printf("loaded in %s: %zu rows, %zu conflict edges, epoch %llu, "
              "snapshot %s\n",
              FormatSeconds(load_seconds).c_str(),
              service.snapshot()->TotalRows(),
              service.snapshot()->hypergraph().NumEdges(),
              (unsigned long long)service.epoch(),
              hippo::bench::FormatBytes(service.snapshot()->ApproxBytes())
                  .c_str());

  // Publish samples recorded so far (epoch 0 + the bulk load) are not
  // steady-state COW publications; the report skips them.
  size_t publish_samples_before_run =
      service.stats().publish_seconds.size();

  const std::vector<std::string> queries = {
      QuerySet::Selection(), QuerySet::Join(), QuerySet::Union(),
      QuerySet::Difference()};

  std::atomic<bool> readers_done{false};
  std::atomic<size_t> next_op{0};
  std::atomic<size_t> read_errors{0};
  std::atomic<size_t> write_errors{0};
  std::vector<std::vector<double>> read_lat(config.readers);
  std::vector<std::vector<double>> write_lat(config.writers);
  std::atomic<size_t> commits{0};

  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (size_t r = 0; r < config.readers; ++r) {
    threads.emplace_back([&, r] {
      for (;;) {
        size_t op = next_op.fetch_add(1);
        if (op >= config.total_ops) return;
        const std::string& sql = queries[op % queries.size()];
        auto q0 = std::chrono::steady_clock::now();
        // Each op pins the freshest snapshot (a new "client request");
        // the pool executes it even as writers publish newer epochs.
        auto rs = service.Submit(config.mode, sql).get();
        auto q1 = std::chrono::steady_clock::now();
        if (!rs.ok()) {
          ++read_errors;
        } else {
          read_lat[r].push_back(
              std::chrono::duration<double>(q1 - q0).count());
        }
      }
    });
  }
  for (size_t w = 0; w < config.writers; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(config.seed + 1000 + w);
      // Pipelined writes: keep up to --inflight CommitAsync receipts
      // outstanding so consecutive commits coalesce into one group commit
      // (one incremental-maintenance pass, one published epoch).
      struct Pending {
        std::future<CommitReceipt> receipt;
        std::chrono::steady_clock::time_point submitted;
      };
      std::deque<Pending> window;
      auto reap_front = [&] {
        Pending p = std::move(window.front());
        window.pop_front();
        CommitReceipt receipt = p.receipt.get();
        auto c1 = std::chrono::steady_clock::now();
        if (!receipt.status.ok()) {
          // Surface the first failure; the final count fails the run.
          if (write_errors.fetch_add(1) == 0) {
            std::fprintf(stderr, "hippo_serve_driver: commit failed: %s\n",
                         receipt.status.ToString().c_str());
          }
          return;
        }
        write_lat[w].push_back(
            std::chrono::duration<double>(c1 - p.submitted).count());
        ++commits;
      };
      const size_t inflight = std::max<size_t>(config.inflight, 1);
      while (!readers_done.load()) {
        // FD churn: a conflicting insert, sometimes drained by a delete.
        size_t key = rng.Uniform(config.rows);
        std::string script =
            rng.Uniform(4) == 0
                ? StrFormat("DELETE FROM p WHERE a = %zu AND b >= 1000", key)
                : StrFormat("INSERT INTO p VALUES (%zu, %llu)", key,
                            (unsigned long long)(1000 + rng.Uniform(1000)));
        Pending p;
        p.submitted = std::chrono::steady_clock::now();
        p.receipt = service.CommitAsync(std::move(script));
        window.push_back(std::move(p));
        if (window.size() >= inflight) reap_front();
      }
      while (!window.empty()) reap_front();
    });
  }
  // Readers exit on their own; writers watch the flag.
  for (size_t r = 0; r < config.readers; ++r) threads[r].join();
  readers_done.store(true);
  for (size_t t = config.readers; t < threads.size(); ++t) threads[t].join();
  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

  if (read_errors.load() > 0) {
    return Fail(StrFormat("%zu read requests failed", read_errors.load()));
  }
  if (write_errors.load() > 0) {
    return Fail(StrFormat("%zu commits failed", write_errors.load()));
  }

  auto merged = [](const std::vector<std::vector<double>>& per_thread) {
    std::vector<double> all;
    for (const auto& v : per_thread) all.insert(all.end(), v.begin(), v.end());
    return all;
  };
  std::vector<double> reads = merged(read_lat);
  std::vector<double> writes = merged(write_lat);

  TextTable table({"role", "threads", "ops", "throughput", "p50", "p95",
                   "p99", "max"});
  auto add_role = [&table, wall](const std::string& role, size_t nthreads,
                                 std::vector<double> lat) {
    if (lat.empty()) return;
    size_t n = lat.size();
    std::vector<double> ps = Percentiles(lat, {50, 95, 99, 100});
    table.AddRow({role, std::to_string(nthreads), std::to_string(n),
                  StrFormat("%.1f ops/s", n / wall),
                  FormatSeconds(ps[0]), FormatSeconds(ps[1]),
                  FormatSeconds(ps[2]), FormatSeconds(ps[3])});
  };
  hippo::service::ServiceStats stats = service.stats();
  add_role("reader", config.readers, reads);
  add_role("writer (commit)", config.writers, writes);
  // Publication alone (Snapshot::Capture inside the commit path), bulk-load
  // publications excluded: with copy-on-write sharing this stays flat as
  // the database grows.
  std::vector<double> publishes(
      stats.publish_seconds.begin() +
          std::min(publish_samples_before_run, stats.publish_seconds.size()),
      stats.publish_seconds.end());
  add_role("publish (COW)", config.writers, publishes);
  table.Print(StrFormat("serve driver: %zu rows, %zu pool workers, wall %s",
                        config.rows, service.num_workers(),
                        FormatSeconds(wall).c_str()));
  std::printf(
      "service: %llu commits (%llu incremental, %llu re-detect) in %llu "
      "groups (max group %zu), %llu async rounds (%llu replayed), "
      "%llu epochs published, %llu pool queries, %llu rejected\n",
      (unsigned long long)stats.commits,
      (unsigned long long)stats.incremental_commits,
      (unsigned long long)stats.bulk_redetects,
      (unsigned long long)stats.commit_groups, stats.max_group_size,
      (unsigned long long)stats.async_redetects,
      (unsigned long long)stats.replayed_commits,
      (unsigned long long)stats.snapshots_published,
      (unsigned long long)stats.queries_executed,
      (unsigned long long)stats.queries_rejected);
  {
    // Per-route serving breakdown (consistent-read requests only; the
    // router classifies each request against its pinned snapshot). The
    // quantiles come from the service's lock-free route histograms, so
    // they are real tail latencies rather than sum/count means.
    TextTable routes({"route", "ops", "mean", "p50", "p95", "p99"});
    auto add_route = [&routes](const std::string& name,
                               const hippo::obs::HistogramSnapshot& snap) {
      if (snap.empty()) return;
      routes.AddRow({name, std::to_string(snap.count),
                     FormatSeconds(snap.Mean()),
                     FormatSeconds(snap.Quantile(0.50)),
                     FormatSeconds(snap.Quantile(0.95)),
                     FormatSeconds(snap.Quantile(0.99))});
    };
    add_route("conflict-free", stats.conflict_free_latency);
    add_route("rewrite", stats.rewrite_latency);
    add_route("prover", stats.prover_latency);
    size_t routed = stats.hippo.routed_conflict_free +
                    stats.hippo.routed_rewrite + stats.hippo.routed_prover;
    if (routed > 0) {
      routes.Print(StrFormat("route latencies (%zu routed requests)",
                             routed));
    }
  }
  {
    // Slowest requests the service retained (ring buffer, top-K by
    // latency) — each with its route and one-line trace summary.
    std::vector<QueryService::SlowQuery> slow = service.SlowQueries();
    if (!slow.empty()) {
      std::printf("slow-query log (%zu entries):\n", slow.size());
      size_t shown = std::min<size_t>(slow.size(), 5);
      for (size_t i = 0; i < shown; ++i) {
        std::printf("  %s  epoch %llu  %s  [%s]\n",
                    FormatSeconds(slow[i].seconds).c_str(),
                    (unsigned long long)slow[i].epoch,
                    slow[i].summary.c_str(), slow[i].sql.c_str());
      }
    }
  }
  std::printf("final epoch %llu, %zu conflict edges\n",
              (unsigned long long)service.epoch(),
              service.snapshot()->hypergraph().NumEdges());

  // Memory accounting: one more single-row commit, then compare the full
  // snapshot footprint against what the new epoch actually allocated (its
  // marginal bytes — everything else is shared with the previous epoch).
  hippo::service::SnapshotPtr before = service.snapshot();
  Status st = service.Commit("INSERT INTO p VALUES (0, 999999)");
  if (!st.ok()) return Fail("final commit failed: " + st.ToString());
  hippo::service::SnapshotPtr after = service.snapshot();
  size_t full = after->ApproxBytes();
  std::unordered_set<const void*> seen;
  before->CollectStorageIdentity(&seen);
  size_t marginal = after->AccumulateApproxBytes(&seen);
  std::printf(
      "snapshot memory: %s full; publishing epoch %llu allocated %s "
      "(%.2f%% — the rest is shared with epoch %llu)\n",
      hippo::bench::FormatBytes(full).c_str(),
      (unsigned long long)after->epoch(),
      hippo::bench::FormatBytes(marginal).c_str(),
      full == 0 ? 0.0 : 100.0 * marginal / full,
      (unsigned long long)before->epoch());

  // Metrics snapshots at exit: the Prometheus text exposition and/or the
  // machine-readable JSON object, both straight from the service registry.
  auto write_file = [](const std::string& path, const std::string& body) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    return std::fclose(f) == 0 && ok;
  };
  if (!config.metrics_out.empty()) {
    if (!write_file(config.metrics_out, service.DumpMetrics())) {
      return Fail("cannot write --metrics-out file: " + config.metrics_out);
    }
    std::printf("metrics: wrote Prometheus exposition to %s\n",
                config.metrics_out.c_str());
  }
  if (!config.metrics_json.empty()) {
    if (!write_file(config.metrics_json, service.DumpMetricsJson())) {
      return Fail("cannot write --metrics-json file: " + config.metrics_json);
    }
    std::printf("metrics: wrote JSON snapshot to %s\n",
                config.metrics_json.c_str());
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: hippo_serve_driver [--rows N] [--conflict-rate F]\n"
      "       [--readers R] [--writers W] [--ops N] [--workers N]\n"
      "       [--queue N] [--inflight N] [--mode cqa|plain|core]\n"
      "       [--seed S] [--smoke]\n"
      "       [--metrics-out=FILE] [--metrics-json=FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  DriverConfig config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_value = [&](size_t* out) {
      if (++i >= argc) return false;
      *out = static_cast<size_t>(std::strtoull(argv[i], nullptr, 10));
      return true;
    };
    if (arg == "--smoke") {
      config.rows = 500;
      config.total_ops = 24;
      config.readers = 2;
      config.writers = 1;
      config.workers = 2;
    } else if (arg == "--rows") {
      if (!next_value(&config.rows)) return Usage();
    } else if (arg == "--readers") {
      if (!next_value(&config.readers)) return Usage();
    } else if (arg == "--writers") {
      if (!next_value(&config.writers)) return Usage();
    } else if (arg == "--ops") {
      if (!next_value(&config.total_ops)) return Usage();
    } else if (arg == "--workers") {
      if (!next_value(&config.workers)) return Usage();
    } else if (arg == "--queue") {
      if (!next_value(&config.queue_depth)) return Usage();
    } else if (arg == "--inflight") {
      if (!next_value(&config.inflight)) return Usage();
    } else if (arg == "--seed") {
      size_t seed;
      if (!next_value(&seed)) return Usage();
      config.seed = seed;
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      config.metrics_out = arg.substr(std::strlen("--metrics-out="));
      if (config.metrics_out.empty()) return Usage();
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      config.metrics_json = arg.substr(std::strlen("--metrics-json="));
      if (config.metrics_json.empty()) return Usage();
    } else if (arg == "--conflict-rate") {
      if (++i >= argc) return Usage();
      config.conflict_rate = std::strtod(argv[i], nullptr);
    } else if (arg == "--mode") {
      if (++i >= argc) return Usage();
      std::string mode = argv[i];
      if (mode == "cqa") {
        config.mode = QueryService::ReadMode::kConsistent;
      } else if (mode == "plain") {
        config.mode = QueryService::ReadMode::kPlain;
      } else if (mode == "core") {
        config.mode = QueryService::ReadMode::kOverCore;
      } else {
        return Fail("unknown mode: " + mode);
      }
    } else {
      return Usage();
    }
  }
  if (config.readers == 0 || config.total_ops == 0) {
    return Fail("need at least one reader and one op");
  }
  return Run(config);
}
