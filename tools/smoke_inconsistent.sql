-- Smoke script for hippo_check: an FD violation plus an FK orphan
-- (exit status 1 — the CI "data developed conflicts" signal).
CREATE TABLE dept (did INTEGER);
CREATE TABLE emp (name VARCHAR, salary INTEGER, did INTEGER);
INSERT INTO dept VALUES (1);
INSERT INTO emp VALUES ('smith', 50000, 1), ('smith', 60000, 1),
                       ('jones', 40000, 2);
CREATE CONSTRAINT fd FD ON emp (name -> salary);
CREATE CONSTRAINT fk FOREIGN KEY emp (did) REFERENCES dept (did)
