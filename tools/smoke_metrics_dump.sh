#!/bin/sh
# Smoke test: hippo_serve_driver's exit-time metrics dumps are well-formed.
#
# Runs the driver at CI-smoke size with both dump flags, then checks that
# the JSON snapshot parses (when python3 is available) and that both dumps
# name the commit-pipeline phases the service promises to instrument.
#
# Usage: smoke_metrics_dump.sh <path-to-hippo_serve_driver>
set -eu

driver="$1"
out_dir="${TMPDIR:-/tmp}/hippo_metrics_smoke.$$"
mkdir -p "$out_dir"
trap 'rm -rf "$out_dir"' EXIT

json="$out_dir/metrics.json"
prom="$out_dir/metrics.prom"
"$driver" --smoke --metrics-json="$json" --metrics-out="$prom" \
  > "$out_dir/stdout.txt"

if command -v python3 >/dev/null 2>&1; then
  python3 -c 'import json, sys; json.load(open(sys.argv[1]))' "$json"
fi

# Commit-phase keys (apply, detect, publish) plus the serving-side basics
# must all be present in the machine-readable snapshot.
for key in \
    hippo_commit_apply_seconds \
    'hippo_commit_detect_seconds{kind=\"incremental\"}' \
    hippo_commit_publish_seconds \
    hippo_commit_lock_wait_seconds \
    hippo_commit_batch_statements \
    hippo_commits_total \
    hippo_queue_wait_seconds; do
  if ! grep -F -q -- "$key" "$json"; then
    echo "missing key in JSON dump: $key" >&2
    exit 1
  fi
done

# The Prometheus exposition carries the same histograms as _count/_sum
# series with quantile summary lines.
for key in \
    hippo_commit_apply_seconds_count \
    hippo_commit_publish_seconds_sum \
    'hippo_commit_apply_seconds{quantile="0.99"}' \
    hippo_epoch; do
  if ! grep -F -q -- "$key" "$prom"; then
    echo "missing key in Prometheus dump: $key" >&2
    exit 1
  fi
done

echo "metrics dump smoke OK"
