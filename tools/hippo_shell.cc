// hippo_shell — an interactive SQL shell over an inconsistent database.
//
// This is the live demonstration of the EDBT'04 demo paper in tool form:
// load data and constraints, flip between answering modes, and inspect the
// conflict hypergraph and repairs of the working instance.
//
//   $ ./build/tools/hippo_shell               # interactive
//   $ ./build/tools/hippo_shell < script.sql  # batch
//
// The shell fronts a service::QueryService rather than a bare Database:
// every write goes through the asynchronous group-commit pipeline
// (CommitAsync) and reports the epoch it published at plus the size of the
// group it coalesced into; SELECTs evaluate against the current immutable
// snapshot. Meta commands that need the mutable master (repair counting,
// aggregates, maintenance toggles) use the service's serialized
// WithMaster escape hatch.
//
// Statements end with ';'. Meta commands start with '.':
//   .mode plain|cqa|core|rewriting|allrepairs   answering mode for SELECTs
//   .stats on|off                               print pipeline statistics
//   .conflicts                                  hypergraph summary
//   .mem                                        catalog/hypergraph memory
//   .constraints                                list declared constraints
//   .repairs [limit]                            count repairs
//   .agg <fn> <table> [column]                  range-consistent aggregate
//   .groupagg <fn> <table> <column|-> <group-col> grouped range aggregate
//   .report                                     full conflict report
//   .incremental on|off                         hypergraph maintenance mode
//   .threads [N]                                detection/prover threads
//                                               (0 = all hardware threads)
//   .route auto|cf|rewrite|prover               cqa-mode route selection
//   .serve                                      commit-pipeline statistics
//   .tables                                     list tables and sizes
//   .help                                       this text
//   .quit
//
// The `--threads N` command-line flag sets the same knob before the first
// statement runs (it feeds ServiceOptions::threads, the one unified knob
// that EffectiveOptions::Resolve fans out to the read pool, commit-path
// detection, and the per-query prover loop).
//
// DML (INSERT/DELETE/UPDATE) and COPY t FROM/TO 'file.csv' run like any
// other statement.
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchutil/report.h"
#include "common/str_util.h"
#include "db/conflict_report.h"
#include "db/database.h"
#include "obs/metrics.h"
#include "service/query_service.h"
#include "service/snapshot.h"

namespace hippo::shell {
namespace {

using service::CommitReceipt;
using service::EffectiveOptions;
using service::QueryService;
using service::ServiceOptions;
using service::SnapshotPtr;

enum class Mode { kPlain, kCqa, kCore, kRewriting, kAllRepairs };

/// Strict non-negative integer parse (no partial consumption); false on
/// malformed input so a typo cannot throw out of the REPL or kill the
/// process during --threads handling.
bool ParseCount(const std::string& s, size_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<size_t>(v);
  return true;
}

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kPlain:
      return "plain";
    case Mode::kCqa:
      return "cqa";
    case Mode::kCore:
      return "core";
    case Mode::kRewriting:
      return "rewriting";
    case Mode::kAllRepairs:
      return "allrepairs";
  }
  return "?";
}

ServiceOptions ShellOptions(size_t threads) {
  ServiceOptions options;
  // The one unified knob: EffectiveOptions::Resolve derives the read-pool
  // width, commit-path detection threads, and per-query parallelism from
  // it. threads == 1 (the shell default) reproduces the historical
  // single-threaded shell behavior exactly.
  options.threads = threads;
  return options;
}

class Shell {
 public:
  explicit Shell(size_t threads)
      : threads_(threads), service_(ShellOptions(threads)) {}

  int Run(std::istream& in, bool interactive) {
    std::string buffer;
    std::string line;
    if (interactive) Prompt(buffer);
    while (std::getline(in, line)) {
      bool buffer_blank =
          buffer.find_first_not_of(" \t\n") == std::string::npos;
      if (buffer_blank && !line.empty() && line[0] == '.') {
        buffer.clear();
        if (!MetaCommand(line)) return 0;
        if (interactive) Prompt(buffer);
        continue;
      }
      buffer += line;
      buffer += "\n";
      // Execute every complete ';'-terminated statement in the buffer.
      size_t pos;
      while ((pos = buffer.find(';')) != std::string::npos) {
        std::string stmt = buffer.substr(0, pos);
        buffer.erase(0, pos + 1);
        RunStatement(stmt);
      }
      if (interactive) Prompt(buffer);
    }
    if (!buffer.empty() &&
        buffer.find_first_not_of(" \t\n") != std::string::npos) {
      RunStatement(buffer);
    }
    return 0;
  }

 private:
  void Prompt(const std::string& buffer) {
    // Whitespace left over from a completed statement is not a continuation.
    bool continuing =
        buffer.find_first_not_of(" \t\n") != std::string::npos;
    std::printf(continuing ? "   ...> " : "hippo> ");
    std::fflush(stdout);
  }

  static std::vector<std::string> Split(const std::string& s) {
    std::istringstream iss(s);
    std::vector<std::string> out;
    std::string tok;
    while (iss >> tok) out.push_back(tok);
    return out;
  }

  /// Returns false to quit.
  bool MetaCommand(const std::string& line) {
    std::vector<std::string> args = Split(line);
    const std::string& cmd = args[0];
    if (cmd == ".quit" || cmd == ".exit") return false;
    if (cmd == ".help") {
      std::printf(
          ".mode plain|cqa|core|rewriting|allrepairs   answering mode\n"
          ".stats on|off        pipeline statistics\n"
          ".conflicts           hypergraph summary\n"
          ".mem                 catalog/hypergraph resident memory\n"
          ".constraints         declared constraints\n"
          ".repairs [limit]     number of repairs\n"
          ".agg <fn> <table> [column]   range-consistent aggregate\n"
          ".groupagg <fn> <table> <column|-> <group-col>   grouped range\n"
          ".report              full conflict report\n"
          ".incremental on|off  incremental hypergraph maintenance\n"
          ".threads [N]         detection/prover threads (0 = all cores)\n"
          ".route auto|cf|rewrite|prover   cqa-mode route selection\n"
          ".explain SELECT ...  show plan / envelope / rewriting / route\n"
          ".explain analyze SELECT ...  execute and show per-operator "
          "timings\n"
          ".serve               commit-pipeline statistics\n"
          ".metrics             Prometheus-style dump of shell + service "
          "metrics\n"
          ".tables              tables and row counts\n"
          ".quit\n"
          "EXPLAIN [ANALYZE] SELECT ...; also works as a statement\n");
      return true;
    }
    if (cmd == ".mode") {
      if (args.size() != 2) {
        std::printf("mode: %s\n", ModeName(mode_));
        return true;
      }
      std::string m = ToLower(args[1]);
      if (m == "plain") {
        mode_ = Mode::kPlain;
      } else if (m == "cqa" || m == "hippo") {
        mode_ = Mode::kCqa;
      } else if (m == "core") {
        mode_ = Mode::kCore;
      } else if (m == "rewriting") {
        mode_ = Mode::kRewriting;
      } else if (m == "allrepairs") {
        mode_ = Mode::kAllRepairs;
      } else {
        std::printf("unknown mode: %s\n", args[1].c_str());
      }
      return true;
    }
    if (cmd == ".stats") {
      stats_enabled_ = args.size() > 1 && ToLower(args[1]) == "on";
      std::printf("stats: %s\n", stats_enabled_ ? "on" : "off");
      return true;
    }
    if (cmd == ".route") {
      if (args.size() != 2) {
        std::printf("route: %s\n", RouteModeName(route_));
        return true;
      }
      std::string r = ToLower(args[1]);
      if (r == "auto") {
        route_ = RouteMode::kAuto;
      } else if (r == "cf" || r == "conflict-free") {
        route_ = RouteMode::kForceConflictFree;
      } else if (r == "rewrite" || r == "rewriting") {
        route_ = RouteMode::kForceRewrite;
      } else if (r == "prover") {
        route_ = RouteMode::kForceProver;
      } else {
        std::printf("unknown route: %s (auto|cf|rewrite|prover)\n",
                    args[1].c_str());
        return true;
      }
      std::printf("route: %s\n", RouteModeName(route_));
      return true;
    }
    if (cmd == ".explain") {
      size_t rest = line.find(' ');
      if (rest == std::string::npos) {
        std::printf("usage: .explain [analyze] SELECT ...\n");
        return true;
      }
      RunExplain(line.substr(rest + 1));
      return true;
    }
    if (cmd == ".metrics") {
      std::string dump = service_.DumpMetrics() + obs::Global().DumpPrometheus();
      if (dump.empty()) {
        std::printf("(no metrics recorded yet)\n");
      } else {
        std::printf("%s", dump.c_str());
      }
      return true;
    }
    if (cmd == ".serve") {
      service::ServiceStats stats = service_.stats();
      std::printf(
          "commits: %llu (%llu incremental, %llu re-detect) in %llu "
          "groups (max group %zu)\n"
          "async rounds: %llu (%llu small commits replayed)\n"
          "epochs published: %llu (current %llu)\n",
          (unsigned long long)stats.commits,
          (unsigned long long)stats.incremental_commits,
          (unsigned long long)stats.bulk_redetects,
          (unsigned long long)stats.commit_groups, stats.max_group_size,
          (unsigned long long)stats.async_redetects,
          (unsigned long long)stats.replayed_commits,
          (unsigned long long)stats.snapshots_published,
          (unsigned long long)service_.epoch());
      return true;
    }
    if (cmd == ".conflicts") {
      std::printf("%s\n",
                  service_.snapshot()->hypergraph().StatsString().c_str());
      return true;
    }
    if (cmd == ".mem") {
      SnapshotPtr snap = service_.snapshot();
      std::printf("catalog: %zu tables, %zu rows, %s\n",
                  snap->catalog().TableNames().size(),
                  snap->catalog().TotalRows(),
                  bench::FormatBytes(snap->catalog().ApproxBytes()).c_str());
      std::printf("hypergraph: %zu edges, %s\n",
                  snap->hypergraph().NumEdges(),
                  bench::FormatBytes(snap->hypergraph().ApproxBytes()).c_str());
      return true;
    }
    if (cmd == ".constraints") {
      SnapshotPtr snap = service_.snapshot();
      for (const auto& dc : snap->constraints()) {
        std::printf("%s\n", dc.ToString().c_str());
      }
      for (const auto& fk : snap->foreign_keys()) {
        std::printf("%s\n", fk.ToString().c_str());
      }
      if (snap->constraints().empty() && snap->foreign_keys().empty()) {
        std::printf("(none)\n");
      }
      return true;
    }
    if (cmd == ".repairs") {
      size_t limit = 100000;
      if (args.size() > 1 && !ParseCount(args[1], &limit)) {
        std::printf("usage: .repairs [limit]\n");
        return true;
      }
      Result<size_t> count{size_t{0}};
      Status st = service_.WithMaster([&](Database& db) {
        count = db.CountRepairs(limit);
        return count.status();
      });
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
      } else {
        std::printf("repairs: %zu\n", count.value());
      }
      return true;
    }
    if (cmd == ".agg") {
      if (args.size() < 3) {
        std::printf("usage: .agg <count|sum|min|max|avg> <table> [column]\n");
        return true;
      }
      auto fn = cqa::AggFnFromString(args[1]);
      if (!fn.ok()) {
        std::printf("error: %s\n", fn.status().ToString().c_str());
        return true;
      }
      std::string col = args.size() >= 4 ? args[3] : "";
      Result<cqa::AggRange> range{cqa::AggRange()};
      Status st = service_.WithMaster([&](Database& db) {
        range = db.RangeConsistentAggregate(args[2], fn.value(), col);
        return range.status();
      });
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
      } else {
        std::printf("%s(%s.%s) in every repair: %s\n",
                    cqa::AggFnToString(fn.value()), args[2].c_str(),
                    col.c_str(), range.value().ToString().c_str());
      }
      return true;
    }
    if (cmd == ".report") {
      Result<std::string> report{std::string()};
      Status st = service_.WithMaster([&](Database& db) {
        report = GenerateConflictReport(&db);
        return report.status();
      });
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
      } else {
        std::printf("%s", report.value().c_str());
      }
      return true;
    }
    if (cmd == ".incremental") {
      bool turn_on = args.size() > 1 && ToLower(args[1]) == "on";
      bool turn_off = args.size() > 1 && ToLower(args[1]) == "off";
      bool enabled = false;
      IncrementalStats stats;
      Status st = service_.WithMaster([&](Database& db) {
        if (turn_on) {
          Status enable = db.EnableIncrementalMaintenance();
          if (!enable.ok()) return enable;
        } else if (turn_off) {
          // Allowed, but the commit pipeline re-enables maintenance on the
          // next commit (its published-graph invariant); "off" effectively
          // lasts until then.
          db.DisableIncrementalMaintenance();
        }
        enabled = db.incremental_maintenance_enabled();
        stats = db.incremental_stats();
        return Status::OK();
      });
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        return true;
      }
      std::printf("incremental maintenance: %s (+%zu/-%zu edges over "
                  "%zu inserts, %zu deletes)\n",
                  enabled ? "on" : "off", stats.edges_added,
                  stats.edges_removed, stats.inserts, stats.deletes);
      if (turn_off) {
        std::printf("note: the commit pipeline restores maintenance on the "
                    "next commit\n");
      }
      return true;
    }
    if (cmd == ".groupagg") {
      if (args.size() < 5) {
        std::printf("usage: .groupagg <count|sum|min|max|avg> <table> "
                    "<column|-> <group-col> [group-col ...]\n");
        return true;
      }
      auto fn = cqa::AggFnFromString(args[1]);
      if (!fn.ok()) {
        std::printf("error: %s\n", fn.status().ToString().c_str());
        return true;
      }
      std::string col = args[3] == "-" ? "" : args[3];
      std::vector<std::string> group_cols(args.begin() + 4, args.end());
      Result<std::vector<cqa::GroupRange>> result{
          std::vector<cqa::GroupRange>()};
      Status st = service_.WithMaster([&](Database& db) {
        result = db.GroupedRangeConsistentAggregate(args[2], fn.value(), col,
                                                    group_cols);
        return result.status();
      });
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        return true;
      }
      for (const cqa::GroupRange& g : result.value()) {
        std::printf("%s\n", g.ToString().c_str());
      }
      return true;
    }
    if (cmd == ".threads") {
      if (args.size() > 1) {
        size_t n = 0;
        if (!ParseCount(args[1], &n)) {
          std::printf("usage: .threads [N] (0 = all hardware threads)\n");
          return true;
        }
        threads_ = n;
        // Re-resolve the unified knob on the live master (the read-pool
        // width stays as constructed; detection and the prover loop pick
        // up the new count). WithMaster rebuilds the invalidated graph and
        // publishes the re-detected epoch.
        DetectOptions detect;
        detect.num_threads = n;
        Status st = service_.WithMaster(
            [&](Database& db) {
              db.SetDetectOptions(detect);
              return Status::OK();
            },
            /*publish=*/true);
        if (!st.ok()) {
          std::printf("error: %s\n", st.ToString().c_str());
          return true;
        }
        std::printf("hypergraph re-detected with the new thread count\n");
      }
      std::printf("threads: %zu (resolved: %zu)\n", threads_,
                  ResolveThreadCount(threads_));
      return true;
    }
    if (cmd == ".tables") {
      SnapshotPtr snap = service_.snapshot();
      for (const std::string& name : snap->catalog().TableNames()) {
        auto t = snap->catalog().GetTable(name);
        std::printf("%s (%zu rows)\n", name.c_str(),
                    t.value()->NumLiveRows());
      }
      return true;
    }
    std::printf("unknown command %s (try .help)\n", cmd.c_str());
    return true;
  }

  /// Serves ".explain [analyze] SELECT ..." and the SQL-statement form:
  /// plain EXPLAIN renders the plans; EXPLAIN ANALYZE executes the query
  /// with a trace and renders per-operator wall time + cardinality.
  void RunExplain(const std::string& body) {
    size_t start = body.find_first_not_of(" \t\n");
    if (start == std::string::npos) {
      std::printf("usage: .explain [analyze] SELECT ...\n");
      return;
    }
    bool analyze =
        EqualsIgnoreCase(std::string(body, start, 7), "analyze") &&
        (start + 7 >= body.size() ||
         std::isspace(static_cast<unsigned char>(body[start + 7])));
    Result<std::string> text{std::string()};
    if (analyze) {
      size_t sql = body.find_first_not_of(" \t\n", start + 7);
      if (sql == std::string::npos) {
        std::printf("usage: .explain analyze SELECT ...\n");
        return;
      }
      cqa::HippoOptions options;
      options.num_threads = threads_;
      options.route = route_;
      text = service_.snapshot()->ExplainAnalyze(body.substr(sql), options);
    } else {
      // Plain EXPLAIN renders plans only (no execution); the master is the
      // convenient place to plan since Snapshot does not expose it.
      Status st = service_.WithMaster([&](Database& db) {
        text = db.Explain(body.substr(start));
        return text.status();
      });
      if (!st.ok() && text.ok()) text = st;
    }
    if (!text.ok()) {
      std::printf("error: %s\n", text.status().ToString().c_str());
    } else {
      std::printf("%s", text.value().c_str());
    }
  }

  /// Handles a leading EXPLAIN [ANALYZE] keyword on a SQL statement.
  /// Returns true when the statement was an EXPLAIN and has been served.
  bool TryExplainStatement(const std::string& text) {
    size_t start = text.find_first_not_of(" \t\n");
    if (start == std::string::npos) return false;
    if (!EqualsIgnoreCase(std::string(text, start, 7), "explain")) {
      return false;
    }
    size_t after = start + 7;
    if (after < text.size() &&
        !std::isspace(static_cast<unsigned char>(text[after]))) {
      return false;  // identifier merely starting with "explain"
    }
    RunExplain(after < text.size() ? text.substr(after) : "");
    return true;
  }

  void RunStatement(const std::string& text) {
    if (text.find_first_not_of(" \t\n") == std::string::npos) return;
    if (TryExplainStatement(text)) return;
    // SELECT goes through the current answering mode; anything else is a
    // commit through the asynchronous pipeline.
    size_t start = text.find_first_not_of(" \t\n(");
    bool is_select =
        start != std::string::npos &&
        EqualsIgnoreCase(std::string(text, start, 6), "select");
    auto t0 = std::chrono::steady_clock::now();
    if (!is_select) {
      CommitReceipt receipt = service_.CommitAsync(text).get();
      RecordStatement("execute", t0);
      if (!receipt.status.ok()) {
        std::printf("error: %s\n", receipt.status.ToString().c_str());
        return;
      }
      std::printf("committed: epoch %llu (group of %zu%s)\n",
                  (unsigned long long)receipt.epoch, receipt.group_size,
                  receipt.phases.redetected ? ", re-detected" : "");
      return;
    }
    cqa::HippoStats stats;
    Result<ResultSet> rs = RunSelect(text, &stats);
    RecordStatement(ModeName(mode_), t0);
    if (!rs.ok()) {
      std::printf("error: %s\n", rs.status().ToString().c_str());
      return;
    }
    std::printf("%s(%zu rows, mode %s)\n",
                rs.value().ToString(100).c_str(), rs.value().NumRows(),
                ModeName(mode_));
    if (stats_enabled_ && mode_ == Mode::kCqa) {
      std::printf(
          "route=%s candidates=%zu answers=%zu filtered=%zu prover=%zu "
          "membership=%zu envelope=%.3fms prove=%.3fms\n",
          RouteKindName(stats.route), stats.candidates, stats.answers,
          stats.filtered_shortcuts, stats.prover_invocations,
          stats.membership_checks, stats.envelope_seconds * 1e3,
          stats.prove_seconds * 1e3);
    }
  }

  /// Records one finished statement into the process-global metrics
  /// registry (surfaced by `.metrics`): a per-kind latency histogram plus
  /// a total counter. `kind` is the answering mode or "execute" for DML.
  void RecordStatement(const char* kind,
                       std::chrono::steady_clock::time_point t0) {
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    obs::MetricsRegistry& reg = obs::Global();
    reg.GetCounter("hippo_shell_statements_total")->Add(1);
    reg.GetHistogram(obs::MetricsRegistry::Labeled(
                         "hippo_shell_statement_seconds", {{"kind", kind}}))
        ->Record(secs);
  }

  Result<ResultSet> RunSelect(const std::string& text,
                              cqa::HippoStats* stats) {
    switch (mode_) {
      case Mode::kPlain:
        return service_.snapshot()->Query(text);
      case Mode::kCqa: {
        cqa::HippoOptions options;
        // Shell thread count drives the prover loop too (detection picks it
        // up through the master's DetectOptions); 0 resolves to all
        // hardware threads in both.
        options.num_threads = threads_;
        options.route = route_;
        return service_.snapshot()->ConsistentAnswers(text, options, stats);
      }
      case Mode::kCore:
        return service_.snapshot()->QueryOverCore(text);
      case Mode::kRewriting: {
        // The first-order baselines are not snapshot methods; run them on
        // the master, serialized with the pipeline.
        Result<ResultSet> rs{ResultSet()};
        Status st = service_.WithMaster([&](Database& db) {
          rs = db.ConsistentAnswersByRewriting(text);
          return rs.status();
        });
        if (!st.ok() && rs.ok()) return Result<ResultSet>(st);
        return rs;
      }
      case Mode::kAllRepairs: {
        Result<ResultSet> rs{ResultSet()};
        Status st = service_.WithMaster([&](Database& db) {
          rs = db.ConsistentAnswersAllRepairs(text);
          return rs.status();
        });
        if (!st.ok() && rs.ok()) return Result<ResultSet>(st);
        return rs;
      }
    }
    return Status::Internal("unknown mode");
  }

  size_t threads_;
  QueryService service_;
  Mode mode_ = Mode::kCqa;
  RouteMode route_ = RouteMode::kAuto;
  bool stats_enabled_ = false;
};

}  // namespace
}  // namespace hippo::shell

int main(int argc, char** argv) {
  bool interactive = isatty(0);
  size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    size_t parsed = 0;
    if (arg == "--threads" && i + 1 < argc &&
        hippo::shell::ParseCount(argv[i + 1], &parsed)) {
      threads = parsed;
      ++i;
    } else {
      std::fprintf(stderr,
                   "usage: hippo_shell [--threads N]  (N = 0: all cores)\n");
      return 2;
    }
  }
  hippo::shell::Shell shell(threads);
  if (interactive) {
    std::printf(
        "hippo shell — consistent query answering over inconsistent "
        "databases\nmode: cqa (try .help)\n");
  }
  return shell.Run(std::cin, interactive);
}
