// hippo_shell — an interactive SQL shell over an inconsistent database.
//
// This is the live demonstration of the EDBT'04 demo paper in tool form:
// load data and constraints, flip between answering modes, and inspect the
// conflict hypergraph and repairs of the working instance.
//
//   $ ./build/tools/hippo_shell               # interactive
//   $ ./build/tools/hippo_shell < script.sql  # batch
//
// Statements end with ';'. Meta commands start with '.':
//   .mode plain|cqa|core|rewriting|allrepairs   answering mode for SELECTs
//   .stats on|off                               print pipeline statistics
//   .conflicts                                  hypergraph summary
//   .mem                                        catalog/hypergraph memory
//   .constraints                                list declared constraints
//   .repairs [limit]                            count repairs
//   .agg <fn> <table> [column]                  range-consistent aggregate
//   .groupagg <fn> <table> <column|-> <group-col> grouped range aggregate
//   .report                                     full conflict report
//   .incremental on|off                         hypergraph maintenance mode
//   .threads [N]                                detection/prover threads
//                                               (0 = all hardware threads)
//   .route auto|cf|rewrite|prover               cqa-mode route selection
//   .tables                                     list tables and sizes
//   .help                                       this text
//   .quit
//
// The `--threads N` command-line flag sets the same knob before the first
// statement runs.
//
// DML (INSERT/DELETE/UPDATE) and COPY t FROM/TO 'file.csv' run like any
// other statement.
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchutil/report.h"
#include "common/str_util.h"
#include "db/conflict_report.h"
#include "db/database.h"
#include "obs/metrics.h"

namespace hippo::shell {
namespace {

enum class Mode { kPlain, kCqa, kCore, kRewriting, kAllRepairs };

/// Strict non-negative integer parse (no partial consumption); false on
/// malformed input so a typo cannot throw out of the REPL or kill the
/// process during --threads handling.
bool ParseCount(const std::string& s, size_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<size_t>(v);
  return true;
}

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kPlain:
      return "plain";
    case Mode::kCqa:
      return "cqa";
    case Mode::kCore:
      return "core";
    case Mode::kRewriting:
      return "rewriting";
    case Mode::kAllRepairs:
      return "allrepairs";
  }
  return "?";
}

class Shell {
 public:
  /// Sets the worker-thread count for conflict detection and the prover
  /// loop (0 = one per hardware thread, as resolved by ResolveThreadCount).
  void SetThreads(size_t threads) {
    threads_ = threads;
    DetectOptions detect;
    detect.num_threads = threads;
    db_.SetDetectOptions(detect);
  }

  int Run(std::istream& in, bool interactive) {
    std::string buffer;
    std::string line;
    if (interactive) Prompt(buffer);
    while (std::getline(in, line)) {
      bool buffer_blank =
          buffer.find_first_not_of(" \t\n") == std::string::npos;
      if (buffer_blank && !line.empty() && line[0] == '.') {
        buffer.clear();
        if (!MetaCommand(line)) return 0;
        if (interactive) Prompt(buffer);
        continue;
      }
      buffer += line;
      buffer += "\n";
      // Execute every complete ';'-terminated statement in the buffer.
      size_t pos;
      while ((pos = buffer.find(';')) != std::string::npos) {
        std::string stmt = buffer.substr(0, pos);
        buffer.erase(0, pos + 1);
        RunStatement(stmt);
      }
      if (interactive) Prompt(buffer);
    }
    if (!buffer.empty() &&
        buffer.find_first_not_of(" \t\n") != std::string::npos) {
      RunStatement(buffer);
    }
    return 0;
  }

 private:
  void Prompt(const std::string& buffer) {
    // Whitespace left over from a completed statement is not a continuation.
    bool continuing =
        buffer.find_first_not_of(" \t\n") != std::string::npos;
    std::printf(continuing ? "   ...> " : "hippo> ");
    std::fflush(stdout);
  }

  static std::vector<std::string> Split(const std::string& s) {
    std::istringstream iss(s);
    std::vector<std::string> out;
    std::string tok;
    while (iss >> tok) out.push_back(tok);
    return out;
  }

  /// Returns false to quit.
  bool MetaCommand(const std::string& line) {
    std::vector<std::string> args = Split(line);
    const std::string& cmd = args[0];
    if (cmd == ".quit" || cmd == ".exit") return false;
    if (cmd == ".help") {
      std::printf(
          ".mode plain|cqa|core|rewriting|allrepairs   answering mode\n"
          ".stats on|off        pipeline statistics\n"
          ".conflicts           hypergraph summary\n"
          ".mem                 catalog/hypergraph resident memory\n"
          ".constraints         declared constraints\n"
          ".repairs [limit]     number of repairs\n"
          ".agg <fn> <table> [column]   range-consistent aggregate\n"
          ".groupagg <fn> <table> <column|-> <group-col>   grouped range\n"
          ".report              full conflict report\n"
          ".incremental on|off  incremental hypergraph maintenance\n"
          ".threads [N]         detection/prover threads (0 = all cores)\n"
          ".route auto|cf|rewrite|prover   cqa-mode route selection\n"
          ".explain SELECT ...  show plan / envelope / rewriting / route\n"
          ".explain analyze SELECT ...  execute and show per-operator "
          "timings\n"
          ".metrics             Prometheus-style dump of shell metrics\n"
          ".tables              tables and row counts\n"
          ".quit\n"
          "EXPLAIN [ANALYZE] SELECT ...; also works as a statement\n");
      return true;
    }
    if (cmd == ".mode") {
      if (args.size() != 2) {
        std::printf("mode: %s\n", ModeName(mode_));
        return true;
      }
      std::string m = ToLower(args[1]);
      if (m == "plain") {
        mode_ = Mode::kPlain;
      } else if (m == "cqa" || m == "hippo") {
        mode_ = Mode::kCqa;
      } else if (m == "core") {
        mode_ = Mode::kCore;
      } else if (m == "rewriting") {
        mode_ = Mode::kRewriting;
      } else if (m == "allrepairs") {
        mode_ = Mode::kAllRepairs;
      } else {
        std::printf("unknown mode: %s\n", args[1].c_str());
      }
      return true;
    }
    if (cmd == ".stats") {
      stats_enabled_ = args.size() > 1 && ToLower(args[1]) == "on";
      std::printf("stats: %s\n", stats_enabled_ ? "on" : "off");
      return true;
    }
    if (cmd == ".route") {
      if (args.size() != 2) {
        std::printf("route: %s\n", RouteModeName(route_));
        return true;
      }
      std::string r = ToLower(args[1]);
      if (r == "auto") {
        route_ = RouteMode::kAuto;
      } else if (r == "cf" || r == "conflict-free") {
        route_ = RouteMode::kForceConflictFree;
      } else if (r == "rewrite" || r == "rewriting") {
        route_ = RouteMode::kForceRewrite;
      } else if (r == "prover") {
        route_ = RouteMode::kForceProver;
      } else {
        std::printf("unknown route: %s (auto|cf|rewrite|prover)\n",
                    args[1].c_str());
        return true;
      }
      std::printf("route: %s\n", RouteModeName(route_));
      return true;
    }
    if (cmd == ".explain") {
      size_t rest = line.find(' ');
      if (rest == std::string::npos) {
        std::printf("usage: .explain [analyze] SELECT ...\n");
        return true;
      }
      RunExplain(line.substr(rest + 1));
      return true;
    }
    if (cmd == ".metrics") {
      std::string dump = obs::Global().DumpPrometheus();
      if (dump.empty()) {
        std::printf("(no metrics recorded yet)\n");
      } else {
        std::printf("%s", dump.c_str());
      }
      return true;
    }
    if (cmd == ".conflicts") {
      auto g = db_.Hypergraph();
      if (!g.ok()) {
        std::printf("error: %s\n", g.status().ToString().c_str());
      } else {
        std::printf("%s\n", g.value()->StatsString().c_str());
      }
      return true;
    }
    if (cmd == ".mem") {
      std::printf("catalog: %zu tables, %zu rows, %s\n",
                  db_.catalog().TableNames().size(),
                  db_.catalog().TotalRows(),
                  bench::FormatBytes(db_.catalog().ApproxBytes()).c_str());
      auto g = db_.Hypergraph();
      if (!g.ok()) {
        std::printf("error: %s\n", g.status().ToString().c_str());
      } else {
        std::printf("hypergraph: %zu edges, %s\n", g.value()->NumEdges(),
                    bench::FormatBytes(g.value()->ApproxBytes()).c_str());
      }
      return true;
    }
    if (cmd == ".constraints") {
      for (const auto& dc : db_.constraints()) {
        std::printf("%s\n", dc.ToString().c_str());
      }
      for (const auto& fk : db_.foreign_keys()) {
        std::printf("%s\n", fk.ToString().c_str());
      }
      if (db_.constraints().empty() && db_.foreign_keys().empty()) {
        std::printf("(none)\n");
      }
      return true;
    }
    if (cmd == ".repairs") {
      size_t limit = 100000;
      if (args.size() > 1) limit = std::stoul(args[1]);
      auto count = db_.CountRepairs(limit);
      if (!count.ok()) {
        std::printf("error: %s\n", count.status().ToString().c_str());
      } else {
        std::printf("repairs: %zu\n", count.value());
      }
      return true;
    }
    if (cmd == ".agg") {
      if (args.size() < 3) {
        std::printf("usage: .agg <count|sum|min|max|avg> <table> [column]\n");
        return true;
      }
      auto fn = cqa::AggFnFromString(args[1]);
      if (!fn.ok()) {
        std::printf("error: %s\n", fn.status().ToString().c_str());
        return true;
      }
      std::string col = args.size() >= 4 ? args[3] : "";
      auto range = db_.RangeConsistentAggregate(args[2], fn.value(), col);
      if (!range.ok()) {
        std::printf("error: %s\n", range.status().ToString().c_str());
      } else {
        std::printf("%s(%s.%s) in every repair: %s\n",
                    cqa::AggFnToString(fn.value()), args[2].c_str(),
                    col.c_str(), range.value().ToString().c_str());
      }
      return true;
    }
    if (cmd == ".report") {
      auto report = GenerateConflictReport(&db_);
      if (!report.ok()) {
        std::printf("error: %s\n", report.status().ToString().c_str());
      } else {
        std::printf("%s", report.value().c_str());
      }
      return true;
    }
    if (cmd == ".incremental") {
      if (args.size() > 1 && ToLower(args[1]) == "on") {
        Status st = db_.EnableIncrementalMaintenance();
        if (!st.ok()) {
          std::printf("error: %s\n", st.ToString().c_str());
          return true;
        }
      } else if (args.size() > 1 && ToLower(args[1]) == "off") {
        db_.DisableIncrementalMaintenance();
      }
      auto stats = db_.incremental_stats();
      std::printf("incremental maintenance: %s (+%zu/-%zu edges over "
                  "%zu inserts, %zu deletes)\n",
                  db_.incremental_maintenance_enabled() ? "on" : "off",
                  stats.edges_added, stats.edges_removed, stats.inserts,
                  stats.deletes);
      return true;
    }
    if (cmd == ".groupagg") {
      if (args.size() < 5) {
        std::printf("usage: .groupagg <count|sum|min|max|avg> <table> "
                    "<column|-> <group-col> [group-col ...]\n");
        return true;
      }
      auto fn = cqa::AggFnFromString(args[1]);
      if (!fn.ok()) {
        std::printf("error: %s\n", fn.status().ToString().c_str());
        return true;
      }
      std::string col = args[3] == "-" ? "" : args[3];
      std::vector<std::string> group_cols(args.begin() + 4, args.end());
      auto result = db_.GroupedRangeConsistentAggregate(args[2], fn.value(),
                                                        col, group_cols);
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
        return true;
      }
      for (const cqa::GroupRange& g : result.value()) {
        std::printf("%s\n", g.ToString().c_str());
      }
      return true;
    }
    if (cmd == ".threads") {
      if (args.size() > 1) {
        size_t n = 0;
        if (!ParseCount(args[1], &n)) {
          std::printf("usage: .threads [N] (0 = all hardware threads)\n");
          return true;
        }
        SetThreads(n);
        std::printf("hypergraph invalidated; next detection uses the new "
                    "thread count\n");
      }
      std::printf("threads: %zu (resolved: %zu)\n", threads_,
                  ResolveThreadCount(threads_));
      return true;
    }
    if (cmd == ".tables") {
      for (const std::string& name : db_.catalog().TableNames()) {
        auto t = db_.catalog().GetTable(name);
        std::printf("%s (%zu rows)\n", name.c_str(),
                    t.value()->NumLiveRows());
      }
      return true;
    }
    std::printf("unknown command %s (try .help)\n", cmd.c_str());
    return true;
  }

  /// Serves ".explain [analyze] SELECT ..." and the SQL-statement form:
  /// plain EXPLAIN renders the plans; EXPLAIN ANALYZE executes the query
  /// with a trace and renders per-operator wall time + cardinality.
  void RunExplain(const std::string& body) {
    size_t start = body.find_first_not_of(" \t\n");
    if (start == std::string::npos) {
      std::printf("usage: .explain [analyze] SELECT ...\n");
      return;
    }
    bool analyze =
        EqualsIgnoreCase(std::string(body, start, 7), "analyze") &&
        (start + 7 >= body.size() ||
         std::isspace(static_cast<unsigned char>(body[start + 7])));
    Result<std::string> text{std::string()};
    if (analyze) {
      size_t sql = body.find_first_not_of(" \t\n", start + 7);
      if (sql == std::string::npos) {
        std::printf("usage: .explain analyze SELECT ...\n");
        return;
      }
      cqa::HippoOptions options;
      options.num_threads = threads_;
      options.route = route_;
      text = db_.ExplainAnalyze(body.substr(sql), options);
    } else {
      text = db_.Explain(body.substr(start));
    }
    if (!text.ok()) {
      std::printf("error: %s\n", text.status().ToString().c_str());
    } else {
      std::printf("%s", text.value().c_str());
    }
  }

  /// Handles a leading EXPLAIN [ANALYZE] keyword on a SQL statement.
  /// Returns true when the statement was an EXPLAIN and has been served.
  bool TryExplainStatement(const std::string& text) {
    size_t start = text.find_first_not_of(" \t\n");
    if (start == std::string::npos) return false;
    if (!EqualsIgnoreCase(std::string(text, start, 7), "explain")) {
      return false;
    }
    size_t after = start + 7;
    if (after < text.size() &&
        !std::isspace(static_cast<unsigned char>(text[after]))) {
      return false;  // identifier merely starting with "explain"
    }
    RunExplain(after < text.size() ? text.substr(after) : "");
    return true;
  }

  void RunStatement(const std::string& text) {
    if (text.find_first_not_of(" \t\n") == std::string::npos) return;
    if (TryExplainStatement(text)) return;
    // SELECT goes through the current answering mode; anything else is DDL.
    size_t start = text.find_first_not_of(" \t\n(");
    bool is_select =
        start != std::string::npos &&
        EqualsIgnoreCase(std::string(text, start, 6), "select");
    auto t0 = std::chrono::steady_clock::now();
    if (!is_select) {
      Status st = db_.Execute(text);
      RecordStatement("execute", t0);
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
      }
      return;
    }
    cqa::HippoStats stats;
    Result<ResultSet> rs = RunSelect(text, &stats);
    RecordStatement(ModeName(mode_), t0);
    if (!rs.ok()) {
      std::printf("error: %s\n", rs.status().ToString().c_str());
      return;
    }
    std::printf("%s(%zu rows, mode %s)\n",
                rs.value().ToString(100).c_str(), rs.value().NumRows(),
                ModeName(mode_));
    if (stats_enabled_ && mode_ == Mode::kCqa) {
      std::printf(
          "route=%s candidates=%zu answers=%zu filtered=%zu prover=%zu "
          "membership=%zu envelope=%.3fms prove=%.3fms\n",
          RouteKindName(stats.route), stats.candidates, stats.answers,
          stats.filtered_shortcuts, stats.prover_invocations,
          stats.membership_checks, stats.envelope_seconds * 1e3,
          stats.prove_seconds * 1e3);
    }
  }

  /// Records one finished statement into the process-global metrics
  /// registry (surfaced by `.metrics`): a per-kind latency histogram plus
  /// a total counter. `kind` is the answering mode or "execute" for DDL.
  void RecordStatement(const char* kind,
                       std::chrono::steady_clock::time_point t0) {
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    obs::MetricsRegistry& reg = obs::Global();
    reg.GetCounter("hippo_shell_statements_total")->Add(1);
    reg.GetHistogram(obs::MetricsRegistry::Labeled(
                         "hippo_shell_statement_seconds", {{"kind", kind}}))
        ->Record(secs);
  }

  Result<ResultSet> RunSelect(const std::string& text,
                              cqa::HippoStats* stats) {
    switch (mode_) {
      case Mode::kPlain:
        return db_.Query(text);
      case Mode::kCqa: {
        cqa::HippoOptions options;
        // Shell thread count drives the prover loop too (detection picks it
        // up through the Database's DetectOptions); 0 resolves to all
        // hardware threads in both.
        options.num_threads = threads_;
        options.route = route_;
        return db_.ConsistentAnswers(text, options, stats);
      }
      case Mode::kCore:
        return db_.QueryOverCore(text);
      case Mode::kRewriting:
        return db_.ConsistentAnswersByRewriting(text);
      case Mode::kAllRepairs:
        return db_.ConsistentAnswersAllRepairs(text);
    }
    return Status::Internal("unknown mode");
  }

  Database db_;
  Mode mode_ = Mode::kCqa;
  RouteMode route_ = RouteMode::kAuto;
  bool stats_enabled_ = false;
  size_t threads_ = 1;
};

}  // namespace
}  // namespace hippo::shell

int main(int argc, char** argv) {
  bool interactive = isatty(0);
  hippo::shell::Shell shell;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    size_t threads = 0;
    if (arg == "--threads" && i + 1 < argc &&
        hippo::shell::ParseCount(argv[i + 1], &threads)) {
      shell.SetThreads(threads);
      ++i;
    } else {
      std::fprintf(stderr,
                   "usage: hippo_shell [--threads N]  (N = 0: all cores)\n");
      return 2;
    }
  }
  if (interactive) {
    std::printf(
        "hippo shell — consistent query answering over inconsistent "
        "databases\nmode: cqa (try .help)\n");
  }
  return shell.Run(std::cin, interactive);
}
