#!/usr/bin/env python3
"""CI perf-regression gate: compare bench tables against BENCH_baseline.json.

Usage:
  tools/check_bench.py --baseline BENCH_baseline.json --current DIR_OR_FILE...
                       [--max-ratio 3.0] [--require F5,F8a,F11a]
                       [--overhead-limit F14a:ratio vs off:1.35]

`--current` accepts JSONL files produced by the HIPPO_BENCH_JSON hook in
src/benchutil/report.cc (one table object per line), or directories of
such files (named <bench_binary>.jsonl by convention). Every current table
is matched to a baseline table by its caption key — the part before the
first ':' (e.g. "F8a") — so caption suffixes (sizes, rates) may evolve
without breaking the gate. Rows are matched by their first column.

A cell pair is compared only when BOTH parse as durations ("12.3 ms",
"4.56 s", ...). The gate fails when current > max-ratio x baseline — a
generous threshold (default 3x) that catches order-of-magnitude rot
without flaking on shared runners of different speeds. Improvements and
non-duration cells (counts, "-", speedup ratios) are ignored, as are
cells whose BASELINE duration is below --min-baseline (default 10 ms):
single-digit-millisecond cells are dominated by scheduler noise on a
loaded runner, and a real order-of-magnitude regression in them still
shows up in the larger rows of the same sweep.

`--require` lists caption keys that MUST be present in the current run —
this keeps the gate from passing vacuously when a bench binary silently
stops emitting its table.

`--overhead-limit KEY:COLUMN:LIMIT` (repeatable) is an ABSOLUTE
assertion on the current run, independent of the baseline: every cell of
COLUMN in the table keyed KEY that parses as a bare float must be <=
LIMIT. This is how the observability bench's instrumentation-overhead
ratio (traced vs untraced wall time, emitted as a plain float column) is
gated — a ratio is already normalized, so comparing it against a
baseline ratio would let a slow-creep regression hide behind the 3x
rule. Column names may not contain ':'.

Exit status: 0 = pass, 1 = regression or missing required table,
2 = usage/input error.
"""

import argparse
import json
import pathlib
import re
import sys

DURATION_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*(ns|us|ms|s)\s*$")
UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def parse_duration(cell):
    """Returns seconds, or None when the cell is not a duration."""
    m = DURATION_RE.match(cell)
    if m is None:
        return None
    return float(m.group(1)) * UNIT_SECONDS[m.group(2)]


def caption_key(caption):
    """'F8a: hot FD table ... (262144 rows)' -> 'F8a'."""
    return caption.split(":", 1)[0].strip()


def index_tables(tables):
    """caption key -> table object (first occurrence wins)."""
    out = {}
    for t in tables:
        out.setdefault(caption_key(t["table"]), t)
    return out


def load_current(paths):
    tables = []
    for raw in paths:
        p = pathlib.Path(raw)
        files = sorted(p.glob("*.jsonl")) if p.is_dir() else [p]
        if not files:
            print(f"warning: no .jsonl files under {p}", file=sys.stderr)
        for f in files:
            for line_no, line in enumerate(f.read_text().splitlines(), 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    tables.append(json.loads(line))
                except json.JSONDecodeError as e:
                    sys.exit(f"error: {f}:{line_no}: bad JSON line: {e}")
    return tables


def load_baseline(path):
    with open(path) as f:
        baseline = json.load(f)
    tables = []
    for bench in baseline.get("benches", {}).values():
        tables.extend(bench.get("tables", []))
    return baseline, tables


def parallel_sweep_table(table):
    """True when the table's rows sweep a thread/worker count — its
    durations depend on host parallelism, not just code speed."""
    columns = table.get("columns") or []
    return bool(columns) and bool(
        re.search(r"thread|worker|reader|writer|core", columns[0],
                  re.IGNORECASE))


def compare(baseline_tables, current_tables, max_ratio, min_baseline,
            downgrade_parallel=False):
    """Returns (violations, warnings, comparisons, downgraded). With
    downgrade_parallel (single-core baseline), regressions in
    thread/worker-sweep tables are reported as warnings instead of
    failures: a 1-core host records ~1x speedups, so those rows say more
    about the recording host than about the code. `downgraded` counts the
    duration cells (and their tables) that were compared warn-only for
    that reason, so the run can report exactly how much of the gate is
    not gating."""
    violations = []
    warnings = []
    comparisons = 0
    downgraded_cells = 0
    downgraded_tables = set()
    base_by_key = index_tables(baseline_tables)
    for cur in current_tables:
        key = caption_key(cur["table"])
        base = base_by_key.get(key)
        if base is None:
            print(f"note: no baseline table for '{key}' — skipped")
            continue
        # Rows are matched by (first column, occurrence ordinal): several
        # benches repeat the first column across rows (e.g. F4's N column
        # per mode), and keying on the value alone would compare cells
        # against the wrong row.
        base_rows = {}
        for row in base["rows"]:
            if row:
                base_rows.setdefault(row[0], []).append(row)
        base_cols = {name: i for i, name in enumerate(base["columns"])}
        seen = {}
        for row in cur["rows"]:
            if not row:
                continue
            ordinal = seen.get(row[0], 0)
            seen[row[0]] = ordinal + 1
            candidates = base_rows.get(row[0], [])
            if ordinal >= len(candidates):
                print(f"note: {key}: no baseline row '{row[0]}' "
                      f"(occurrence {ordinal + 1}) — skipped")
                continue
            base_row = candidates[ordinal]
            for col_idx, cell in enumerate(row):
                if col_idx >= len(cur["columns"]):
                    break
                col_name = cur["columns"][col_idx]
                base_idx = base_cols.get(col_name)
                if base_idx is None or base_idx >= len(base_row):
                    continue
                cur_secs = parse_duration(cell)
                base_secs = parse_duration(base_row[base_idx])
                if cur_secs is None or base_secs is None or base_secs == 0:
                    continue
                if base_secs < min_baseline:
                    continue  # noise-dominated on loaded runners
                comparisons += 1
                warn_only = downgrade_parallel and parallel_sweep_table(cur)
                if warn_only:
                    downgraded_cells += 1
                    downgraded_tables.add(key)
                ratio = cur_secs / base_secs
                if ratio > max_ratio:
                    message = (
                        f"{key} [{row[0]}] {col_name}: {cell} vs baseline "
                        f"{base_row[base_idx]} ({ratio:.1f}x > "
                        f"{max_ratio:.1f}x)")
                    if warn_only:
                        warnings.append(message)
                    else:
                        violations.append(message)
    return (violations, warnings, comparisons,
            (downgraded_cells, sorted(downgraded_tables)))


def parse_overhead_limits(specs):
    """['F14a:ratio vs off:1.35'] -> [('F14a', 'ratio vs off', 1.35)]."""
    out = []
    for spec in specs:
        parts = spec.split(":")
        if len(parts) != 3:
            sys.exit(f"error: bad --overhead-limit '{spec}' "
                     f"(expected KEY:COLUMN:LIMIT)")
        key, column, limit = parts
        try:
            out.append((key.strip(), column.strip(), float(limit)))
        except ValueError:
            sys.exit(f"error: bad --overhead-limit limit in '{spec}'")
    return out


def check_overhead_limits(current_tables, limits):
    """Absolute ratio gate: float cells of (table key, column) <= limit.
    Returns (violations, checked). A limit whose table or column is
    missing from the current run is itself a violation — the assertion
    must not pass vacuously."""
    violations = []
    checked = 0
    by_key = index_tables(current_tables)
    for key, column, limit in limits:
        table = by_key.get(key)
        if table is None:
            violations.append(f"{key}: table missing from the current run "
                              f"(--overhead-limit {key}:{column}:{limit})")
            continue
        try:
            col_idx = table["columns"].index(column)
        except ValueError:
            violations.append(f"{key}: no column '{column}' "
                              f"(has {table['columns']})")
            continue
        cells = 0
        for row in table["rows"]:
            if col_idx >= len(row):
                continue
            try:
                value = float(row[col_idx])
            except ValueError:
                continue  # "-" and annotated cells are not gated
            cells += 1
            checked += 1
            if value > limit:
                violations.append(
                    f"{key} [{row[0] if row else '?'}] {column}: "
                    f"{value:.3f} > limit {limit:.3f}")
        if cells == 0:
            violations.append(f"{key}: no float cells in column "
                              f"'{column}' — nothing gated")
    return violations, checked


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", nargs="+", required=True,
                    help="JSONL files or directories of them")
    ap.add_argument("--max-ratio", type=float, default=3.0)
    ap.add_argument("--min-baseline", type=float, default=0.010,
                    help="skip cells whose baseline duration (seconds) is "
                         "below this — too noise-prone to gate")
    ap.add_argument("--require", default="",
                    help="comma-separated caption keys that must be present "
                         "in the current run")
    ap.add_argument("--overhead-limit", action="append", default=[],
                    metavar="KEY:COLUMN:LIMIT",
                    help="absolute gate: float cells of COLUMN in table KEY "
                         "must be <= LIMIT (repeatable)")
    args = ap.parse_args()

    baseline, baseline_tables = load_baseline(args.baseline)
    current_tables = load_current(args.current)
    if not current_tables:
        sys.exit("error: no current tables to check")

    single_core = bool(baseline.get("single_core_warning"))
    if single_core:
        print("warning: baseline was recorded on a 1-core host — "
              "thread/worker sweep tables are compared warn-only; "
              "duration thresholds still gate the serial tables",
              file=sys.stderr)

    current_keys = {caption_key(t["table"]) for t in current_tables}
    missing = [k for k in
               (k.strip() for k in args.require.split(",") if k.strip())
               if k not in current_keys]

    violations, warnings, comparisons, downgraded = compare(
        baseline_tables, current_tables, args.max_ratio, args.min_baseline,
        downgrade_parallel=single_core)

    overhead_violations, overhead_checked = check_overhead_limits(
        current_tables, parse_overhead_limits(args.overhead_limit))

    print(f"checked {comparisons} duration cells across "
          f"{len(current_tables)} tables "
          f"(baseline host_cores={baseline.get('host_cores', '?')}, "
          f"max ratio {args.max_ratio:.1f}x) "
          f"+ {overhead_checked} absolute overhead-ratio cells")
    downgraded_cells, downgraded_tables = downgraded
    if single_core and downgraded_cells:
        # Say exactly how much of the gate is NOT gating, so a green run
        # against a 1-core baseline cannot be mistaken for full coverage.
        print(f"notice: skipped gating {downgraded_cells} of {comparisons} "
              f"duration cells (parallel-sweep tables "
              f"{', '.join(downgraded_tables)}) — compared warn-only "
              f"because the baseline was recorded on a 1-core host; "
              f"re-record it with the 'record-baseline' workflow_dispatch "
              f"job in .github/workflows/ci.yml to restore them as "
              f"hard gates")
    ok = True
    if warnings:
        print(f"warning: {len(warnings)} parallel-sweep cells past the "
              f"threshold (not gating; single-core baseline):")
        for w in warnings:
            print(f"  {w}")
    if missing:
        ok = False
        print(f"FAIL: required tables missing from the current run: "
              f"{', '.join(missing)}")
    if violations:
        ok = False
        print(f"FAIL: {len(violations)} cells regressed past "
              f"{args.max_ratio:.1f}x:")
        for v in violations:
            print(f"  {v}")
    if overhead_violations:
        ok = False
        print(f"FAIL: {len(overhead_violations)} absolute overhead-ratio "
              f"violations:")
        for v in overhead_violations:
            print(f"  {v}")
    if ok:
        print("PASS: no duration cell regressed past the threshold")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
