#!/usr/bin/env bash
# Records the committed perf baseline (BENCH_baseline.json).
#
#   tools/record_baseline.sh [build_dir] [out_file]
#
# Runs every bench binary under build_dir (default: build/release) with
# --table-only — the paper-style tables on their fixed default seeds and
# sizes — and captures each printed table as JSON via the HIPPO_BENCH_JSON
# hook in src/benchutil/report.cc, plus the wall-clock seconds of each
# binary. This includes the F10 snapshot-publication table
# (bench_f10_snapshot), whose deep-vs-COW ratio is meaningful even on a
# 1-core host (both sides are single-threaded copies). The output
# (default: BENCH_baseline.json) is committed so optimisation PRs have a
# reference to diff against: re-run this script on the same class of
# machine and compare the timing cells.
set -euo pipefail

cd "$(dirname "$0")/.."

build="${1:-build/release}"
out="${2:-BENCH_baseline.json}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

shopt -s nullglob
benches=("$build"/bench_*)
if (( ${#benches[@]} == 0 )); then
  echo "no bench binaries under $build — build the release preset with" >&2
  echo "google-benchmark available first (see EXPERIMENTS.md)" >&2
  exit 1
fi

# The parallel benches (F8 sharded detection, F9 concurrent serving, F11
# intra-constraint partitioning) need physical cores to show anything but
# ~1x; a baseline recorded on a 1-core host bakes meaningless speedup rows
# into the committed file. Warn loudly and stamp the caveat into the JSON
# so later readers see it too. The CI workflow's manually-triggered
# `record-baseline` job (workflow_dispatch) runs this script on a standard
# 4-core runner and uploads the result as an artifact — the easy way to a
# multi-core baseline when developing on a small container.
cores=$(nproc)
single_core_warning=false
if (( cores <= 1 )); then
  single_core_warning=true
  cat >&2 <<'EOF'
*** WARNING ****************************************************************
* This host has only 1 CPU core. The parallel benchmarks (bench_f8_*,     *
* bench_f9_*) will record ~1x speedups and serialized-latency numbers     *
* that say nothing about real multi-core behavior. Re-record the baseline *
* on a multi-core machine before trusting any parallel rows.             *
****************************************************************************
EOF
fi

{
  echo '{'
  echo "  \"recorded_utc\": \"$(date -u +%FT%TZ)\","
  echo "  \"host_cores\": $cores,"
  echo "  \"single_core_warning\": $single_core_warning,"
  echo "  \"build_dir\": \"$build\","
  echo '  "benches": {'
  first=1
  for bin in "${benches[@]}"; do
    [[ -x "$bin" ]] || continue
    name="$(basename "$bin")"
    echo ">>> $name" >&2
    jsonl="$tmp/$name.jsonl"
    : > "$jsonl"
    start_ns=$(date +%s%N)
    HIPPO_BENCH_JSON="$jsonl" "$bin" --table-only > /dev/null
    end_ns=$(date +%s%N)
    secs=$(awk "BEGIN{printf \"%.2f\", ($end_ns - $start_ns) / 1e9}")
    (( first )) || echo ','
    first=0
    printf '    "%s": {"seconds": %s, "tables": [%s]}' \
      "$name" "$secs" "$(paste -sd, "$jsonl")"
  done
  echo ''
  echo '  }'
  echo '}'
} > "$out"

echo "wrote $out" >&2
