#!/usr/bin/env bash
# Configure, build, and run the test suite for a named CMake preset.
#
#   tools/run_tests.sh [preset] [-- extra ctest args...]
#
# Presets (see CMakePresets.json): release (default), debug, asan, ubsan.
#
#   tools/run_tests.sh                # release
#   tools/run_tests.sh asan
#   tools/run_tests.sh debug -- -R incremental --repeat until-fail:3
set -euo pipefail

cd "$(dirname "$0")/.."

preset="release"
if [[ $# -gt 0 && "$1" != "--" ]]; then
  preset="$1"
  shift
fi
if [[ $# -gt 0 && "$1" == "--" ]]; then
  shift
fi

echo ">>> configure (preset: ${preset})"
cmake --preset "${preset}"

echo ">>> build (preset: ${preset})"
cmake --build --preset "${preset}" -j "$(nproc)"

echo ">>> test (preset: ${preset})"
ctest --preset "${preset}" "$@"
