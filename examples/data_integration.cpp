// Data integration — the paper's first motivating scenario.
//
// Two autonomous supplier registries are merged. Each source is consistent
// on its own, but the union violates integrity constraints: the registries
// disagree on vendor ratings (FD vid -> rating) and on certification status
// (EXCLUSION between certified and revoked). The sources cannot be edited,
// so conflicts stay in the database; Hippo extracts what is certain, and a
// UNION query recovers *disjunctive* information that the traditional
// "delete the conflicting tuples" approach loses entirely.
//
// Build & run:  ./build/examples/data_integration
#include <cstdio>

#include "db/database.h"

namespace {

void Show(const char* title, const hippo::Result<hippo::ResultSet>& rs) {
  if (!rs.ok()) {
    std::printf("%s: ERROR %s\n", title, rs.status().ToString().c_str());
    return;
  }
  std::printf("-- %s (%zu rows) --\n%s\n", title, rs.value().NumRows(),
              rs.value().ToString(10).c_str());
}

}  // namespace

int main() {
  hippo::Database db;
  hippo::Status st = db.Execute(R"sql(
    CREATE TABLE vendors   (vid INTEGER, name VARCHAR, rating INTEGER);
    CREATE TABLE certified (vid INTEGER);
    CREATE TABLE revoked   (vid INTEGER);

    -- Registry A
    INSERT INTO vendors VALUES (1, 'acme', 5), (2, 'globex', 3),
                               (3, 'initech', 4);
    INSERT INTO certified VALUES (1), (3);
    INSERT INTO revoked   VALUES (2);

    -- Registry B (disagrees on globex's rating and initech's status)
    INSERT INTO vendors VALUES (2, 'globex', 4);
    INSERT INTO revoked VALUES (3);

    CREATE CONSTRAINT fd_rating FD ON vendors (vid -> rating);
    CREATE CONSTRAINT cert_xor_revoked
      EXCLUSION ON certified (vid), revoked (vid)
  )sql");
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  auto graph = db.Hypergraph();
  std::printf("%s\n\n", graph.value()->StatsString().c_str());

  // What the merged (inconsistent) database says, naively.
  Show("plain: all vendors", db.Query("SELECT * FROM vendors ORDER BY vid"));

  // Certain knowledge only.
  Show("consistent: vendors",
       db.ConsistentAnswers("SELECT * FROM vendors ORDER BY vid"));
  Show("consistent: certified vendors",
       db.ConsistentAnswers("SELECT * FROM certified ORDER BY vid"));

  // The traditional cleaning approach deletes every conflicting tuple —
  // and with it, the knowledge that vendor 3 is certified-or-revoked.
  Show("core (conflicts deleted): certified",
       db.QueryOverCore("SELECT * FROM certified"));

  // Disjunctive information via UNION: "vendor ids that are certified or
  // revoked" is certain for vendor 3 even though neither branch is.
  Show("consistent: certified UNION revoked",
       db.ConsistentAnswers("SELECT * FROM certified UNION "
                            "SELECT * FROM revoked ORDER BY vid"));
  Show("core: certified UNION revoked",
       db.QueryOverCore("SELECT * FROM certified UNION "
                        "SELECT * FROM revoked ORDER BY vid"));

  // Join across the uncertainty: certified vendors with their ratings.
  Show("consistent: certified vendors with ratings",
       db.ConsistentAnswers(
           "SELECT * FROM vendors v, certified c WHERE v.vid = c.vid "
           "ORDER BY v.vid"));
  return 0;
}
