// Sensor data quality: duplicate feeds, aggregate dashboards, and certain
// bounds.
//
// Two gateways forward readings from the same sensor fleet; after a network
// partition they disagree on some (sensor, hour) readings. The fleet
// dashboard needs per-sensor statistics NOW, not after reconciliation:
//
//   * plain GROUP BY gives the usual dashboard — but it silently mixes the
//     contradictory readings;
//   * grouped range-consistent aggregation bounds each sensor's statistics
//     across every way the disagreement could be resolved;
//   * the conflict report pinpoints what the gateways disagree on;
//   * certain (consistent) readings are exported to CSV for downstream use.
//
// Build & run:  ./build/examples/sensor_quality
#include <cstdio>

#include "db/conflict_report.h"
#include "db/database.h"
#include "io/csv.h"

int main() {
  hippo::Database db;

  hippo::Status st = db.Execute(R"sql(
    CREATE TABLE readings (sensor VARCHAR, hour INTEGER, kwh INTEGER);
    -- One true reading per sensor-hour, whichever gateway reported it.
    CREATE CONSTRAINT one_reading FD ON readings (sensor, hour -> kwh);

    -- Gateway A's feed.
    INSERT INTO readings VALUES
      ('meter-1', 9, 40), ('meter-1', 10, 42), ('meter-1', 11, 45),
      ('meter-2', 9, 70), ('meter-2', 10, 71);
    -- Gateway B re-sent the partition window; two readings disagree.
    INSERT INTO readings VALUES
      ('meter-1', 10, 42),   -- agrees: set semantics, no duplicate
      ('meter-1', 11, 49),   -- DISAGREES with gateway A
      ('meter-2', 10, 65),   -- DISAGREES
      ('meter-2', 11, 73)    -- new hour, only B saw it
  )sql");
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 1. The naive dashboard: plain SQL aggregation over everything.
  auto dashboard = db.Query(
      "SELECT sensor, COUNT(*) AS readings, SUM(kwh) AS total, "
      "MAX(kwh) AS peak FROM readings GROUP BY sensor ORDER BY sensor");
  std::printf("-- naive dashboard (mixes contradictory readings) --\n%s\n",
              dashboard.value().ToString().c_str());

  // 2. What do the gateways actually disagree on?
  auto report = hippo::GenerateConflictReport(&db);
  std::printf("%s\n", report.value().c_str());

  // 3. Certain bounds per sensor: the total consumption interval across
  //    every resolution of the disagreement (closed form — the grouping
  //    key is a prefix of the FD determinant).
  std::printf("-- certain per-sensor totals (every reconciliation) --\n");
  auto totals = db.GroupedRangeConsistentAggregate(
      "readings", hippo::cqa::AggFn::kSum, "kwh", {"sensor"});
  for (const hippo::cqa::GroupRange& g : totals.value()) {
    std::printf("  %s: SUM(kwh) in %s\n", g.group[0].ToString().c_str(),
                g.range.ToString().c_str());
  }
  auto peaks = db.GroupedRangeConsistentAggregate(
      "readings", hippo::cqa::AggFn::kMax, "kwh", {"sensor"});
  std::printf("-- certain per-sensor peaks --\n");
  for (const hippo::cqa::GroupRange& g : peaks.value()) {
    std::printf("  %s: MAX(kwh) in %s\n", g.group[0].ToString().c_str(),
                g.range.ToString().c_str());
  }

  // 4. Export only the *certain* readings for downstream consumers.
  auto certain = db.ConsistentAnswers(
      "SELECT * FROM readings ORDER BY sensor, hour");
  std::printf("\n-- certain readings (%zu of %zu) --\n%s",
              certain.value().NumRows(),
              db.Query("SELECT * FROM readings").value().NumRows(),
              certain.value().ToString().c_str());
  st = hippo::ExportCsvFile(certain.value(), "certain_readings.csv");
  if (st.ok()) {
    std::printf("exported to certain_readings.csv\n");
  }
  return 0;
}
