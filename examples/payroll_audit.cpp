// Payroll audit — foreign keys and range-consistent aggregation together.
//
// Payroll records reference a department directory via a (restricted)
// foreign key, and two merged payroll feeds disagree on some salaries. The
// auditor needs budget bounds that hold NO MATTER how the disputes resolve:
// that is range-consistent aggregation (the demo paper's reference [3]) on
// top of the conflict hypergraph — orphaned records (referencing a
// non-existent department) are certainly invalid and excluded everywhere.
//
// Build & run:  ./build/examples/payroll_audit
#include <cstdio>

#include "db/database.h"

int main() {
  hippo::Database db;
  hippo::Status st = db.Execute(R"sql(
    CREATE TABLE dept (did INTEGER, dname VARCHAR);
    CREATE TABLE payroll (emp VARCHAR, did INTEGER, salary INTEGER);

    INSERT INTO dept VALUES (1, 'sales'), (2, 'engineering');

    INSERT INTO payroll VALUES
      ('ann',   1,  90000),
      ('bob',   2, 120000),
      ('bob',   2, 135000),   -- second feed disagrees about bob
      ('cho',   2, 110000),
      ('dan',   7,  50000);   -- department 7 does not exist (orphan)

    CREATE CONSTRAINT one_salary FD ON payroll (emp -> salary);
    CREATE CONSTRAINT valid_dept
      FOREIGN KEY payroll (did) REFERENCES dept (did)
  )sql");
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  auto graph = db.Hypergraph();
  std::printf("%s\nrepairs: %zu\n\n", graph.value()->StatsString().c_str(),
              db.CountRepairs().value());

  // Certain payroll records: ann and cho. Bob is disputed; dan is orphaned
  // (in NO repair — the department directory is immutable).
  auto certain = db.ConsistentAnswers(
      "SELECT * FROM payroll ORDER BY emp, salary");
  std::printf("-- certain payroll records --\n%s\n",
              certain.value().ToString().c_str());

  // Budget bounds across all repairs.
  using hippo::cqa::AggFn;
  auto show = [&db](AggFn fn, const char* label) {
    hippo::cqa::AggStats stats;
    auto r = db.RangeConsistentAggregate("payroll", fn, "salary", &stats);
    if (!r.ok()) {
      std::printf("%s: %s\n", label, r.status().ToString().c_str());
      return;
    }
    std::printf("%-22s %s  (%s)\n", label, r.value().ToString().c_str(),
                stats.used_clique_partition ? "closed form"
                                            : "repair enumeration");
  };
  std::printf("-- budget bounds holding in EVERY repair --\n");
  show(AggFn::kCount, "headcount COUNT(*):");
  show(AggFn::kSum, "total salary SUM:");
  show(AggFn::kMin, "lowest salary MIN:");
  show(AggFn::kMax, "highest salary MAX:");
  show(AggFn::kAvg, "average salary AVG:");

  // The orphan never contributes: note the SUM lower bound excludes dan's
  // 50000 entirely, and COUNT is 3 in every repair (ann, bob-once, cho).
  std::printf(
      "\n(dan's orphaned record is in no repair; bob contributes exactly "
      "one of his two salaries)\n\n");

  // EXPLAIN shows the machinery for a query over this schema.
  auto plan = db.Explain(
      "SELECT * FROM payroll, dept WHERE payroll.did = dept.did");
  std::printf("-- EXPLAIN join through the foreign key --\n%s",
              plan.value().c_str());
  return 0;
}
