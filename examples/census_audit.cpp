// Long-running activity — the paper's second motivating scenario.
//
// A census bureau ingests returns continuously; corrections arrive for
// months, so the working database is temporarily inconsistent by design
// (two returns for one household, implausible values flagged by unary
// denial constraints). Auditors must nevertheless run reports NOW, and the
// reports must not depend on how the inconsistencies will eventually be
// fixed. That is exactly the consistent-query-answer guarantee.
//
// Build & run:  ./build/examples/census_audit
#include <cstdio>

#include "db/database.h"

namespace {

void Show(const char* title, const hippo::Result<hippo::ResultSet>& rs) {
  if (!rs.ok()) {
    std::printf("%s: ERROR %s\n", title, rs.status().ToString().c_str());
    return;
  }
  std::printf("-- %s (%zu rows) --\n%s\n", title, rs.value().NumRows(),
              rs.value().ToString(12).c_str());
}

}  // namespace

int main() {
  hippo::Database db;
  hippo::Status st = db.Execute(R"sql(
    CREATE TABLE households (hid INTEGER, town VARCHAR, members INTEGER,
                             income INTEGER);

    INSERT INTO households VALUES
      (100, 'arlen',    4,  52000),
      (100, 'arlen',    4,  58000),   -- amended return, not yet reconciled
      (101, 'arlen',    2,  71000),
      (102, 'mccmaynerbury', 1, 43000),
      (103, 'arlen',    5,  -100),    -- data-entry error
      (104, 'mccmaynerbury', 3, 65000),
      (104, 'mccmaynerbury', 3, 65000); -- exact duplicate: set semantics

    -- A household files one income figure.
    CREATE CONSTRAINT fd_income FD ON households (hid -> income);
    -- Income cannot be negative (unary denial constraint).
    CREATE CONSTRAINT income_nonneg
      DENIAL (households AS h WHERE h.income < 0)
  )sql");
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  auto graph = db.Hypergraph();
  std::printf("%s\nrepairs of the working database: %zu\n\n",
              graph.value()->StatsString().c_str(),
              db.CountRepairs().value());

  Show("plain: everything (audit would be wrong)",
       db.Query("SELECT * FROM households ORDER BY hid, income"));

  Show("consistent: households certain as filed",
       db.ConsistentAnswers("SELECT * FROM households ORDER BY hid"));

  // Certain high-income households, robust to pending corrections:
  // household 100 is NOT reported (its income is 52k or 58k depending on
  // reconciliation — per-tuple certainty fails), 101 and 104 are.
  Show("consistent: income >= 50000",
       db.ConsistentAnswers(
           "SELECT * FROM households WHERE income >= 50000 ORDER BY hid"));

  // Household 103's negative-income record is certain to be wrong: it is
  // in NO repair, so it never pollutes a consistent answer.
  Show("consistent: town of arlen",
       db.ConsistentAnswers(
           "SELECT * FROM households WHERE town = 'arlen' ORDER BY hid"));

  // Compare with the rewriting baseline (applicable: selection query,
  // binary/unary constraints) — same answers, different machinery.
  Show("rewriting baseline: town of arlen",
       db.ConsistentAnswersByRewriting(
           "SELECT * FROM households WHERE town = 'arlen' ORDER BY hid"));

  // ...and with exact all-repairs evaluation (ground truth).
  Show("all-repairs ground truth: town of arlen",
       db.ConsistentAnswersAllRepairs(
           "SELECT * FROM households WHERE town = 'arlen'"));
  return 0;
}
