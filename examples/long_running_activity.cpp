// Long-running activity: temporary inconsistency repaired by later updates.
//
// The paper's introduction motivates CQA with "a long-running activity
// where consistency can be violated only temporarily and future updates
// will restore it". This example walks such an activity — a warehouse
// stock-take during which scanned counts and ledger counts drift apart —
// and shows two things:
//
//   1. queries keep returning trustworthy (consistent) answers *during*
//      the inconsistent window, without waiting for the reconciliation;
//   2. with incremental maintenance enabled, the conflict hypergraph
//      follows every INSERT/UPDATE/DELETE instead of being recomputed,
//      so interleaving updates and CQA reads stays cheap.
//
// Build & run:  ./build/examples/long_running_activity
#include <cstdio>

#include "db/database.h"

namespace {

void Show(hippo::Database& db, const char* phase) {
  auto consistent = db.IsConsistent();
  auto edges = db.Hypergraph();
  std::printf("== %s ==\n", phase);
  std::printf("instance consistent: %s (%zu conflict edges)\n",
              consistent.value() ? "yes" : "no",
              edges.value()->NumEdges());

  // Records whose on-hand count is certain, no matter how the stock-take
  // discrepancies get reconciled. (CQA requires keeping every column —
  // dropping one would introduce an existential quantifier.)
  auto certain = db.ConsistentAnswers(
      "SELECT * FROM stock ORDER BY item, src");
  std::printf("certain stock records:\n%s",
              certain.value().ToString().c_str());

  auto stats = db.incremental_stats();
  std::printf("maintenance: +%zu/-%zu edges across %zu inserts, %zu "
              "deletes\n\n",
              stats.edges_added, stats.edges_removed, stats.inserts,
              stats.deletes);
}

}  // namespace

int main() {
  hippo::Database db;

  hippo::Status st = db.Execute(R"sql(
    CREATE TABLE stock (item VARCHAR, n INTEGER, src VARCHAR);
    -- Ledger counts, trusted until the stock-take says otherwise.
    INSERT INTO stock VALUES
      ('bolts',   120, 'ledger'),
      ('nuts',     80, 'ledger'),
      ('washers', 400, 'ledger');
    -- Each item has ONE true count, whatever the source claims.
    CREATE CONSTRAINT one_count FD ON stock (item -> n)
  )sql");
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }
  st = db.EnableIncrementalMaintenance();
  if (!st.ok()) {
    std::fprintf(stderr, "incremental maintenance: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  Show(db, "before the stock-take");

  // The floor scan disagrees with the ledger on two items. The activity
  // does NOT resolve the discrepancy yet — both records stay.
  st = db.Execute(R"sql(
    INSERT INTO stock VALUES
      ('bolts', 117, 'scan'),   -- three bolts short: conflicts with ledger
      ('nuts',   80, 'scan'),   -- agrees with the ledger count: no conflict
      ('washers', 388, 'scan')  -- a dozen washers short: conflicts
  )sql");
  if (!st.ok()) {
    std::fprintf(stderr, "scan failed: %s\n", st.ToString().c_str());
    return 1;
  }

  Show(db, "during the stock-take (inconsistent window)");
  std::printf("note: 'nuts' stays certain — the scan agreed with the "
              "ledger;\n'bolts'/'washers' are withheld until "
              "reconciliation.\n\n");

  // Range-consistent aggregation still bounds the totals during the window.
  auto lo_hi = db.RangeConsistentAggregate("stock", hippo::cqa::AggFn::kSum,
                                           "n");
  std::printf("total units on hand is certainly in [%s, %s]\n\n",
              lo_hi.value().glb.ToString().c_str(),
              lo_hi.value().lub.ToString().c_str());

  // Reconciliation: the auditor accepts the scan counts. Updates restore
  // consistency; the hypergraph follows incrementally.
  st = db.Execute(R"sql(
    DELETE FROM stock WHERE src = 'ledger' AND item = 'bolts';
    DELETE FROM stock WHERE src = 'ledger' AND item = 'washers';
    UPDATE stock SET src = 'reconciled' WHERE src = 'scan'
  )sql");
  if (!st.ok()) {
    std::fprintf(stderr, "reconciliation failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  Show(db, "after reconciliation");
  return 0;
}
