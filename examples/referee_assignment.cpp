// SJUD expressiveness — difference queries over inconsistent data.
//
// A conference assigns referees to papers. Two tracking spreadsheets were
// merged, so the `assigned` relation violates an FD (a paper has one
// referee per slot), and `declared` lists conflicts of interest. The chair
// needs: papers with a slot-1 assignment that is certainly NOT conflicted —
// a difference (EXCEPT) query, outside the query-rewriting class but inside
// Hippo's SJUD class. The example also shows the envelope at work: the
// candidate set of a difference query is computed from the positive part
// only, then the prover rules on each candidate.
//
// Build & run:  ./build/examples/referee_assignment
#include <cstdio>

#include "db/database.h"

namespace {

void Show(const char* title, const hippo::Result<hippo::ResultSet>& rs) {
  if (!rs.ok()) {
    std::printf("%s: ERROR %s\n", title, rs.status().ToString().c_str());
    return;
  }
  std::printf("-- %s (%zu rows) --\n%s\n", title, rs.value().NumRows(),
              rs.value().ToString(12).c_str());
}

}  // namespace

int main() {
  hippo::Database db;
  hippo::Status st = db.Execute(R"sql(
    CREATE TABLE assigned (paper INTEGER, referee VARCHAR);
    CREATE TABLE declared (paper INTEGER, referee VARCHAR);

    INSERT INTO assigned VALUES
      (1, 'alice'),
      (1, 'bob'),      -- merge artifact: two referees recorded for paper 1
      (2, 'carol'),
      (3, 'dave'),
      (4, 'erin');

    INSERT INTO declared VALUES
      (2, 'carol'),    -- carol declared a conflict on paper 2
      (3, 'dave'),
      (3, 'dave');     -- duplicate row collapses (set semantics)

    -- One referee per paper.
    CREATE CONSTRAINT one_ref FD ON assigned (paper -> referee)
  )sql");
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  Show("plain: assignments", db.Query("SELECT * FROM assigned ORDER BY paper"));

  // The headline query: assignments that are certainly valid — present in
  // every repair of `assigned` AND not conflicted.
  const char* kQuery =
      "SELECT * FROM assigned EXCEPT SELECT * FROM declared";

  hippo::cqa::HippoStats stats;
  auto ok_assignments = db.ConsistentAnswers(kQuery,
                                             hippo::cqa::HippoOptions(),
                                             &stats);
  Show("consistent: valid assignments (EXCEPT query)", ok_assignments);
  std::printf("envelope produced %zu candidates, %zu survived the prover\n\n",
              stats.candidates, stats.answers);

  // Query rewriting cannot express this class at all:
  auto rewriting = db.ConsistentAnswersByRewriting(kQuery);
  std::printf("query-rewriting baseline says: %s\n\n",
              rewriting.status().ToString().c_str());

  // The exact all-repairs method agrees with Hippo (at exponential cost):
  Show("all-repairs ground truth",
       db.ConsistentAnswersAllRepairs(kQuery));

  // Disjunctive information via union-of-differences: assignments that are
  // certainly "settled one way or the other" across the two relations.
  Show("consistent: symmetric difference (SJUD)",
       db.ConsistentAnswers(
           "(SELECT * FROM assigned EXCEPT SELECT * FROM declared) UNION "
           "(SELECT * FROM declared EXCEPT SELECT * FROM assigned)"));
  return 0;
}
