// Quickstart: consistent query answering in ten lines.
//
// Two payroll feeds disagree about an employee's salary. The database keeps
// both records (the sources are autonomous — neither can be discarded), an
// FD name -> salary declares the inconsistency, and Hippo answers queries
// with exactly the facts that hold no matter how the conflict would be
// resolved.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "db/database.h"

int main() {
  hippo::Database db;

  hippo::Status st = db.Execute(R"sql(
    CREATE TABLE emp (name VARCHAR, dept VARCHAR, salary INTEGER);
    INSERT INTO emp VALUES
      ('smith', 'sales',       50000),
      ('smith', 'sales',       60000),   -- second feed disagrees
      ('jones', 'engineering', 80000),
      ('brown', 'finance',     70000);
    CREATE CONSTRAINT fd_salary FD ON emp (name -> salary)
  )sql");
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Ordinary evaluation sees the contradictory records.
  auto plain = db.Query("SELECT * FROM emp ORDER BY name, salary");
  std::printf("-- plain evaluation (%zu rows) --\n%s\n",
              plain.value().NumRows(), plain.value().ToString().c_str());

  // How inconsistent is the instance?
  auto graph = db.Hypergraph();
  std::printf("%s\n", graph.value()->StatsString().c_str());
  std::printf("number of repairs: %zu\n\n", db.CountRepairs().value());

  // Consistent answers: true in EVERY repair.
  auto certain = db.ConsistentAnswers(
      "SELECT * FROM emp ORDER BY name, salary");
  std::printf("-- consistent answers (%zu rows) --\n%s\n",
              certain.value().NumRows(), certain.value().ToString().c_str());

  // Selections compose: who certainly earns at least 60000?
  auto high = db.ConsistentAnswers(
      "SELECT * FROM emp WHERE salary >= 60000 ORDER BY name");
  std::printf("-- certainly earning >= 60000 --\n%s\n",
              high.value().ToString().c_str());

  // Pipeline statistics (candidates vs answers, prover work).
  hippo::cqa::HippoStats stats;
  (void)db.ConsistentAnswers("SELECT * FROM emp", hippo::cqa::HippoOptions(),
                             &stats);
  std::printf(
      "pipeline: %zu candidates -> %zu answers "
      "(%zu decided by conflict-free filtering, %zu via prover)\n",
      stats.candidates, stats.answers, stats.filtered_shortcuts,
      stats.prover_invocations);
  return 0;
}
