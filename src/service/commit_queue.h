// service::MpmcRing — the bounded MPMC admission ring of the commit
// pipeline (Vyukov's bounded-queue design: one cell per slot, each stamped
// with a sequence number that encodes whether the cell is free, full, or
// being written).
//
// The enqueue position doubles as the *commit ticket*: it increases
// monotonically across wrap-arounds, so TryPush hands every admitted
// request a globally ordered sequence number. The pipeline pops strictly
// in ticket order — the ring's FIFO IS the serial order the service
// promises for commits (see DESIGN.md §5).
//
// Concurrency contract in QueryService: pushes are serialized by a short
// critical section (the admission gate also checks shutdown, so a request
// can never be stranded un-popped), pops come from the single pipeline
// thread without any lock, and CanPush/CanPop are used as condition-
// variable predicates. The cell protocol is nevertheless full MPMC, so
// none of those callers rely on external exclusion for memory safety.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace hippo::service {

template <typename T>
class MpmcRing {
 public:
  /// Capacity is rounded up to the next power of two (minimum 1).
  explicit MpmcRing(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  /// Claims the next slot and moves `*item` into it. Returns false (item
  /// untouched) when the ring is full. On success `*ticket` (when non-null)
  /// receives the monotonically increasing enqueue position — written
  /// BEFORE the move, so `ticket` may point into `*item` itself (the
  /// commit pipeline stores it as the request's sequence number).
  bool TryPush(T* item, uint64_t* ticket = nullptr) {
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      size_t seq = cell.seq.load(std::memory_order_acquire);
      intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          if (ticket != nullptr) *ticket = static_cast<uint64_t>(pos);
          cell.value = std::move(*item);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full: the slot still holds an unpopped value
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Pops the oldest admitted item in ticket order. Returns false when the
  /// head slot is empty — including the transient window where a producer
  /// has claimed the slot but not finished writing it (the consumer simply
  /// retries after the producer's post-publish notify).
  bool TryPop(T* out) {
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      size_t seq = cell.seq.load(std::memory_order_acquire);
      intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          *out = std::move(cell.value);
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty (or head still being written)
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// True when the head slot holds a fully published item. Used as a cv
  /// predicate by the pipeline thread; approximate under concurrency in
  /// the benign direction (a fresh push after the check just means one
  /// more wakeup).
  bool CanPop() const {
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    return cells_[pos & mask_].seq.load(std::memory_order_acquire) ==
           pos + 1;
  }

  /// True when the tail slot is free. Used as the backpressure predicate
  /// by producers (who push under the admission gate, so the answer is
  /// exact for the caller that holds it).
  bool CanPush() const {
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    return cells_[pos & mask_].seq.load(std::memory_order_acquire) == pos;
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<size_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  size_t mask_ = 0;
  // Ever-increasing claim positions (wrap handled by masking); the enqueue
  // position is exposed to callers as the admission ticket.
  std::atomic<size_t> enqueue_pos_{0};
  std::atomic<size_t> dequeue_pos_{0};
};

}  // namespace hippo::service
