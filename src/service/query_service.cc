#include "service/query_service.h"

#include <algorithm>
#include <chrono>

#include "common/str_util.h"
#include "service/session.h"

namespace hippo::service {

namespace {

/// Cheap upper-bound statement count of a ';'-separated script (used only
/// to route a commit to the bulk re-detect path, so over-counting by one
/// for a trailing separator is harmless).
size_t CountStatements(const std::string& sql) {
  size_t n = static_cast<size_t>(
      std::count(sql.begin(), sql.end(), ';'));
  if (!sql.empty() && sql.find_last_not_of(" \t\n") != std::string::npos &&
      sql[sql.find_last_not_of(" \t\n")] != ';') {
    ++n;  // unterminated final statement
  }
  return n;
}

void MergeHippoStats(const cqa::HippoStats& from, cqa::HippoStats* into) {
  into->candidates += from.candidates;
  into->answers += from.answers;
  into->filtered_shortcuts += from.filtered_shortcuts;
  into->constant_formulas += from.constant_formulas;
  into->prover_invocations += from.prover_invocations;
  into->clauses_checked += from.clauses_checked;
  into->membership_checks += from.membership_checks;
  into->edge_choices_tried += from.edge_choices_tried;
  into->envelope_seconds += from.envelope_seconds;
  into->prove_seconds += from.prove_seconds;
  into->total_seconds += from.total_seconds;
  into->route = from.route;  // most recent request's route
  into->routed_conflict_free += from.routed_conflict_free;
  into->routed_rewrite += from.routed_rewrite;
  into->routed_prover += from.routed_prover;
  into->conflict_free_route_seconds += from.conflict_free_route_seconds;
  into->rewrite_route_seconds += from.rewrite_route_seconds;
  into->prover_route_seconds += from.prover_route_seconds;
  into->detect_options_ignored += from.detect_options_ignored;
}

/// Wall seconds since `from`.
double SecondsSince(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       from)
      .count();
}

}  // namespace

QueryService::QueryService(ServiceOptions options)
    : options_(options) {
  options_.num_workers = ResolveThreadCount(options_.num_workers);
  if (options_.max_queue_depth == 0) options_.max_queue_depth = 1;
  InitMetrics();
  // Commit-path re-detections (bulk commits, constraint DDL) use the
  // configured detect options; the incremental maintainer handles the rest.
  master_.SetDetectOptions(options_.detect);
  Status st = master_.EnableIncrementalMaintenance();
  HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());
  st = Publish();  // epoch 0: the empty instance
  HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::InitMetrics() {
  if (!options_.enable_metrics) return;
  metrics_ = std::make_unique<obs::MetricsRegistry>();
  obs::MetricsRegistry* r = metrics_.get();
  m_commits_ = r->GetCounter("hippo_commits_total");
  m_queries_ = r->GetCounter("hippo_queries_total");
  m_rejected_ = r->GetCounter("hippo_queries_rejected_total");
  m_commit_lock_wait_ = r->GetHistogram("hippo_commit_lock_wait_seconds");
  m_commit_apply_ = r->GetHistogram("hippo_commit_apply_seconds");
  m_detect_incremental_ = r->GetHistogram(obs::MetricsRegistry::Labeled(
      "hippo_commit_detect_seconds", {{"kind", "incremental"}}));
  m_detect_redetect_ = r->GetHistogram(obs::MetricsRegistry::Labeled(
      "hippo_commit_detect_seconds", {{"kind", "redetect"}}));
  m_commit_publish_ = r->GetHistogram("hippo_commit_publish_seconds");
  m_batch_statements_ = r->GetHistogram("hippo_commit_batch_statements");
  m_admission_wait_ = r->GetHistogram("hippo_admission_wait_seconds");
  m_queue_wait_ = r->GetHistogram("hippo_queue_wait_seconds");
  m_queue_depth_ = r->GetGauge("hippo_queue_depth");
  m_epoch_ = r->GetGauge("hippo_epoch");
  m_route_cf_ = r->GetHistogram(obs::MetricsRegistry::Labeled(
      "hippo_query_seconds", {{"route", "conflict_free"}}));
  m_route_rewrite_ = r->GetHistogram(obs::MetricsRegistry::Labeled(
      "hippo_query_seconds", {{"route", "rewrite"}}));
  m_route_prover_ = r->GetHistogram(obs::MetricsRegistry::Labeled(
      "hippo_query_seconds", {{"route", "prover"}}));
  m_plain_latency_ = r->GetHistogram(obs::MetricsRegistry::Labeled(
      "hippo_query_seconds", {{"route", "plain"}}));
  m_core_latency_ = r->GetHistogram(obs::MetricsRegistry::Labeled(
      "hippo_query_seconds", {{"route", "core"}}));
}

Status QueryService::Commit(const std::string& sql) {
  auto lock_wait_start = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> commit(commit_mu_);
  // Admission wait of the writer: time spent queued on the exclusive
  // commit path behind other commits.
  if (m_commit_lock_wait_ != nullptr) {
    m_commit_lock_wait_->Record(SecondsSince(lock_wait_start));
  }
  uint64_t graph_generation = master_.hypergraph_epoch();
  size_t statements = CountStatements(sql);
  bool bulk = statements >= options_.bulk_redetect_statements;
  if (bulk) {
    // Large delta: per-row incremental maintenance would pay a hash-probe
    // per statement; one full (parallel) detection pass is cheaper. Drop
    // the maintainer up front so DML only invalidates.
    master_.DisableIncrementalMaintenance();
    master_.InvalidateHypergraph();
  }
  auto apply_start = std::chrono::steady_clock::now();
  Status applied = master_.Execute(sql);
  double apply_seconds = SecondsSince(apply_start);
  // Restore the invariant "master's hypergraph is current and maintained":
  // re-detects eagerly when the graph was invalidated (bulk path above, or
  // constraint DDL inside the batch), no-op otherwise.
  auto detect_start = std::chrono::steady_clock::now();
  Status restored = master_.EnableIncrementalMaintenance();
  double detect_seconds = SecondsSince(detect_start);
  Status published = restored.ok() ? Publish() : restored;
  bool redetected = master_.hypergraph_epoch() != graph_generation;
  if (m_commits_ != nullptr) {
    m_commits_->Add(1);
    m_commit_apply_->Record(apply_seconds);
    m_batch_statements_->Record(double(statements));
    if (redetected) {
      // Bulk/DDL path: detection ran from scratch inside
      // EnableIncrementalMaintenance.
      m_detect_redetect_->Record(detect_seconds);
    } else {
      // Incremental path: maintenance runs per-statement inside Execute,
      // so the apply phase IS the incremental detection time.
      m_detect_incremental_->Record(apply_seconds);
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.commits;
    if (redetected) {
      ++stats_.bulk_redetects;
    } else {
      ++stats_.incremental_commits;
    }
  }
  // The batch's own error dominates; publication errors surface otherwise
  // (readers keep the previous epoch if publish failed).
  if (!applied.ok()) return applied;
  return published;
}

Status QueryService::Publish() {
  auto t0 = std::chrono::steady_clock::now();
  HIPPO_ASSIGN_OR_RETURN(SnapshotPtr snap,
                         Snapshot::Capture(&master_, next_epoch_));
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    current_ = std::move(snap);
  }
  if (m_commit_publish_ != nullptr) {
    m_commit_publish_->Record(secs);
    m_epoch_->Set(static_cast<int64_t>(next_epoch_));
  }
  ++next_epoch_;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.snapshots_published;
    stats_.publish_seconds_total += secs;
    if (stats_.publish_seconds.size() < 16384) {
      stats_.publish_seconds.push_back(secs);
    }
  }
  return Status::OK();
}

SnapshotPtr QueryService::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return current_;
}

uint64_t QueryService::epoch() const { return snapshot()->epoch(); }

Session QueryService::OpenSession() { return Session(this); }

std::future<Result<ResultSet>> QueryService::Submit(
    ReadMode mode, std::string select_sql, SnapshotPtr snap,
    cqa::HippoOptions options) {
  Job job;
  job.mode = mode;
  job.sql = std::move(select_sql);
  job.snapshot = snap != nullptr ? std::move(snap) : snapshot();
  job.options = std::move(options);
  std::future<Result<ResultSet>> fut = job.done.get_future();

  std::unique_lock<std::mutex> lock(queue_mu_);
  if (!stopping_ && queue_.size() >= options_.max_queue_depth) {
    if (options_.reject_when_full) {
      lock.unlock();
      if (m_rejected_ != nullptr) m_rejected_->Add(1);
      {
        std::lock_guard<std::mutex> s(stats_mu_);
        ++stats_.queries_rejected;
      }
      job.done.set_value(Status::ResourceExhausted(StrFormat(
          "admission queue full (depth %zu)", options_.max_queue_depth)));
      return fut;
    }
    // Backpressure: the submitter blocks until a slot frees. Timed only
    // when it actually blocks, so the uncontended path reads no clock.
    auto wait_start = std::chrono::steady_clock::now();
    space_cv_.wait(lock, [this] {
      return stopping_ || queue_.size() < options_.max_queue_depth;
    });
    if (m_admission_wait_ != nullptr) {
      m_admission_wait_->Record(SecondsSince(wait_start));
    }
  }
  if (stopping_) {
    lock.unlock();
    if (m_rejected_ != nullptr) m_rejected_->Add(1);
    {
      std::lock_guard<std::mutex> s(stats_mu_);
      ++stats_.queries_rejected;
    }
    job.done.set_value(
        Status::ResourceExhausted("query service is shut down"));
    return fut;
  }
  if (metrics_ != nullptr) {
    job.enqueued = std::chrono::steady_clock::now();
  }
  queue_.push_back(std::move(job));
  if (m_queue_depth_ != nullptr) {
    m_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  }
  lock.unlock();
  queue_cv_.notify_one();
  return fut;
}

void QueryService::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
      if (m_queue_depth_ != nullptr) {
        m_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      }
    }
    space_cv_.notify_one();
    if (m_queue_wait_ != nullptr) {
      m_queue_wait_->Record(SecondsSince(job.enqueued));
    }
    Result<ResultSet> result = RunJob(&job);
    if (m_queries_ != nullptr) m_queries_->Add(1);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.queries_executed;
    }
    job.done.set_value(std::move(result));
  }
}

Result<ResultSet> QueryService::RunJob(Job* job) {
  const Snapshot& snap = *job->snapshot;
  // Untraced, unmeasured fast path: without a registry the read modes run
  // exactly the pre-observability code (one branch per request).
  if (metrics_ == nullptr) {
    switch (job->mode) {
      case ReadMode::kPlain:
        return snap.Query(job->sql);
      case ReadMode::kOverCore:
        return snap.QueryOverCore(job->sql);
      case ReadMode::kConsistent: {
        cqa::HippoStats hippo_stats;
        Result<ResultSet> rs =
            snap.ConsistentAnswers(job->sql, job->options, &hippo_stats);
        std::lock_guard<std::mutex> lock(stats_mu_);
        MergeHippoStats(hippo_stats, &stats_.hippo);
        return rs;
      }
    }
    return Status::Internal("unknown read mode");
  }
  auto start = std::chrono::steady_clock::now();
  switch (job->mode) {
    case ReadMode::kPlain:
    case ReadMode::kOverCore: {
      Result<ResultSet> rs = job->mode == ReadMode::kPlain
                                 ? snap.Query(job->sql)
                                 : snap.QueryOverCore(job->sql);
      double secs = SecondsSince(start);
      (job->mode == ReadMode::kPlain ? m_plain_latency_ : m_core_latency_)
          ->Record(secs);
      std::lock_guard<std::mutex> lock(stats_mu_);
      NoteSlowQueryLocked(*job, RouteKind::kNone, secs, nullptr);
      return rs;
    }
    case ReadMode::kConsistent: {
      cqa::HippoStats hippo_stats;
      Result<ResultSet> rs =
          snap.ConsistentAnswers(job->sql, job->options, &hippo_stats);
      double secs = SecondsSince(start);
      switch (hippo_stats.route) {
        case RouteKind::kConflictFree:
          m_route_cf_->Record(secs);
          break;
        case RouteKind::kRewriteAbc:
        case RouteKind::kRewriteKw:
          m_route_rewrite_->Record(secs);
          break;
        case RouteKind::kProver:
          m_route_prover_->Record(secs);
          break;
        case RouteKind::kNone:
          break;  // failed before routing (parse/classification error)
      }
      std::lock_guard<std::mutex> lock(stats_mu_);
      MergeHippoStats(hippo_stats, &stats_.hippo);
      NoteSlowQueryLocked(*job, hippo_stats.route, secs, &hippo_stats);
      return rs;
    }
  }
  return Status::Internal("unknown read mode");
}

void QueryService::NoteSlowQueryLocked(const Job& job, RouteKind route,
                                       double seconds,
                                       const cqa::HippoStats* hippo_stats) {
  const size_t cap = options_.slow_query_log_size;
  if (cap == 0) return;
  // Top-K by latency: replace the current minimum once the log is full.
  // K is small (default 16), so a linear min scan beats heap bookkeeping.
  size_t slot = slow_log_.size();
  if (slow_log_.size() >= cap) {
    size_t min_i = 0;
    for (size_t i = 1; i < slow_log_.size(); ++i) {
      if (slow_log_[i].seconds < slow_log_[min_i].seconds) min_i = i;
    }
    if (slow_log_[min_i].seconds >= seconds) return;
    slot = min_i;
  } else {
    slow_log_.emplace_back();
  }
  SlowQuery& entry = slow_log_[slot];
  entry.sql = job.sql;
  entry.mode = job.mode;
  entry.route = route;
  entry.seconds = seconds;
  entry.epoch = job.snapshot->epoch();
  if (job.options.trace != nullptr) {
    entry.summary = job.options.trace->Summary();
  } else if (hippo_stats != nullptr) {
    entry.summary = StrFormat(
        "route=%s candidates=%zu answers=%zu prover=%zu",
        RouteKindName(route), hippo_stats->candidates, hippo_stats->answers,
        hippo_stats->prover_invocations);
  } else {
    entry.summary = job.mode == ReadMode::kPlain ? "plain" : "core";
  }
}

std::vector<QueryService::SlowQuery> QueryService::SlowQueries() const {
  std::vector<SlowQuery> out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = slow_log_;
  }
  std::sort(out.begin(), out.end(),
            [](const SlowQuery& a, const SlowQuery& b) {
              return a.seconds > b.seconds;
            });
  return out;
}

std::string QueryService::DumpMetrics() const {
  return metrics_ != nullptr ? metrics_->DumpPrometheus() : std::string();
}

std::string QueryService::DumpMetricsJson() const {
  return metrics_ != nullptr ? metrics_->DumpJson() : std::string("{}");
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  // Snapshot-on-read: the route histograms are live sharded atomics; the
  // copies below are consistent totals once recorders quiesce.
  if (metrics_ != nullptr) {
    out.conflict_free_latency = m_route_cf_->Snapshot();
    out.rewrite_latency = m_route_rewrite_->Snapshot();
    out.prover_latency = m_route_prover_->Snapshot();
  }
  return out;
}

}  // namespace hippo::service
