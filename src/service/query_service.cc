#include "service/query_service.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <utility>

#include "common/parallel.h"
#include "common/str_util.h"
#include "plan/router.h"
#include "service/session.h"

namespace hippo::service {

namespace {

/// Statement census of a ';'-separated script: the (cheap, upper-bound)
/// statement count that routes a commit to the bulk re-detect path, plus
/// whether any statement is DDL (CREATE/DROP) — DDL changes the constraint
/// set or the schema, so the hypergraph must be rebuilt and the commit is
/// classified into the re-detect group class.
struct ScriptClass {
  size_t statements = 0;
  bool ddl = false;
};

ScriptClass ClassifyScript(const std::string& sql) {
  ScriptClass c;
  size_t pos = 0;
  while (pos <= sql.size()) {
    size_t end = sql.find(';', pos);
    size_t len = (end == std::string::npos ? sql.size() : end) - pos;
    // First keyword of the statement (skip whitespace and parens).
    size_t s = sql.find_first_not_of(" \t\n\r(", pos);
    if (s != std::string::npos && s < pos + len) {
      ++c.statements;
      size_t e = s;
      while (e < pos + len &&
             !std::isspace(static_cast<unsigned char>(sql[e])) &&
             sql[e] != '(') {
        ++e;
      }
      std::string word = sql.substr(s, e - s);
      if (EqualsIgnoreCase(word, "create") ||
          EqualsIgnoreCase(word, "drop")) {
        c.ddl = true;
      }
    }
    if (end == std::string::npos) break;
    pos = end + 1;
  }
  return c;
}

void MergeHippoStats(const cqa::HippoStats& from, cqa::HippoStats* into) {
  into->candidates += from.candidates;
  into->answers += from.answers;
  into->filtered_shortcuts += from.filtered_shortcuts;
  into->constant_formulas += from.constant_formulas;
  into->prover_invocations += from.prover_invocations;
  into->clauses_checked += from.clauses_checked;
  into->membership_checks += from.membership_checks;
  into->edge_choices_tried += from.edge_choices_tried;
  into->envelope_seconds += from.envelope_seconds;
  into->prove_seconds += from.prove_seconds;
  into->total_seconds += from.total_seconds;
  into->route = from.route;  // most recent request's route
  into->routed_conflict_free += from.routed_conflict_free;
  into->routed_rewrite += from.routed_rewrite;
  into->routed_prover += from.routed_prover;
  into->conflict_free_route_seconds += from.conflict_free_route_seconds;
  into->rewrite_route_seconds += from.rewrite_route_seconds;
  into->prover_route_seconds += from.prover_route_seconds;
  into->detect_options_ignored += from.detect_options_ignored;
}

/// Wall seconds since `from`.
double SecondsSince(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       from)
      .count();
}

}  // namespace

EffectiveOptions EffectiveOptions::Resolve(const ServiceOptions& options) {
  EffectiveOptions eff;
  const bool unified = options.threads != ServiceOptions::kPerFieldThreads;
  eff.pool_workers =
      ResolveThreadCount(unified ? options.threads : options.num_workers);
  eff.detect = options.detect;
  if (unified) eff.detect.num_threads = options.threads;
  if (unified) eff.hippo.num_threads = options.threads;
  return eff;
}

QueryService::QueryService(ServiceOptions options)
    : options_(options),
      write_ring_(options.write_queue_depth == 0 ? 1
                                                 : options.write_queue_depth) {
  EffectiveOptions eff = EffectiveOptions::Resolve(options_);
  options_.num_workers = eff.pool_workers;
  options_.detect = eff.detect;
  if (options_.max_queue_depth == 0) options_.max_queue_depth = 1;
  if (options_.max_group_commits == 0) options_.max_group_commits = 1;
  InitMetrics();
  // Commit-path re-detections (bulk commits, constraint DDL) use the
  // configured detect options; the incremental maintainer handles the rest.
  master_ = std::make_unique<Database>();
  master_->SetDetectOptions(options_.detect);
  Status st = master_->EnableIncrementalMaintenance();
  HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());
  {
    std::lock_guard<std::mutex> lock(master_mu_);
    st = Publish();  // epoch 0: the empty instance
  }
  HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  pipeline_ = std::thread([this] { CommitPipelineLoop(); });
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::InitMetrics() {
  if (!options_.enable_metrics) return;
  metrics_ = std::make_unique<obs::MetricsRegistry>();
  obs::MetricsRegistry* r = metrics_.get();
  m_commits_ = r->GetCounter("hippo_commits_total");
  m_queries_ = r->GetCounter("hippo_queries_total");
  m_rejected_ = r->GetCounter("hippo_queries_rejected_total");
  // Historical key name; since the exclusive commit mutex became the
  // admission ring, this records the ring wait (admission -> apply start).
  m_commit_lock_wait_ = r->GetHistogram("hippo_commit_lock_wait_seconds");
  m_commit_apply_ = r->GetHistogram("hippo_commit_apply_seconds");
  m_detect_incremental_ = r->GetHistogram(obs::MetricsRegistry::Labeled(
      "hippo_commit_detect_seconds", {{"kind", "incremental"}}));
  m_detect_redetect_ = r->GetHistogram(obs::MetricsRegistry::Labeled(
      "hippo_commit_detect_seconds", {{"kind", "redetect"}}));
  m_commit_replay_ = r->GetHistogram("hippo_commit_replay_seconds");
  m_commit_publish_ = r->GetHistogram("hippo_commit_publish_seconds");
  m_batch_statements_ = r->GetHistogram("hippo_commit_batch_statements");
  m_group_size_ = r->GetHistogram("hippo_commit_group_size");
  m_admission_wait_ = r->GetHistogram("hippo_admission_wait_seconds");
  m_queue_wait_ = r->GetHistogram("hippo_queue_wait_seconds");
  m_queue_depth_ = r->GetGauge("hippo_queue_depth");
  m_epoch_ = r->GetGauge("hippo_epoch");
  m_route_cf_ = r->GetHistogram(obs::MetricsRegistry::Labeled(
      "hippo_query_seconds", {{"route", "conflict_free"}}));
  m_route_rewrite_ = r->GetHistogram(obs::MetricsRegistry::Labeled(
      "hippo_query_seconds", {{"route", "rewrite"}}));
  m_route_prover_ = r->GetHistogram(obs::MetricsRegistry::Labeled(
      "hippo_query_seconds", {{"route", "prover"}}));
  m_plain_latency_ = r->GetHistogram(obs::MetricsRegistry::Labeled(
      "hippo_query_seconds", {{"route", "plain"}}));
  m_core_latency_ = r->GetHistogram(obs::MetricsRegistry::Labeled(
      "hippo_query_seconds", {{"route", "core"}}));
}

// --- write path: admission --------------------------------------------------

void QueryService::Reject(CommitRequest* req, Status why) {
  CommitReceipt r;
  r.status = std::move(why);
  req->done.set_value(std::move(r));
}

std::future<CommitReceipt> QueryService::CommitAsync(std::string sql) {
  CommitRequest req;
  ScriptClass cls = ClassifyScript(sql);
  req.statements = cls.statements;
  req.redetect =
      cls.ddl || cls.statements >= options_.bulk_redetect_statements;
  req.sql = std::move(sql);
  std::future<CommitReceipt> fut = req.done.get_future();
  req.admitted = std::chrono::steady_clock::now();
  {
    // The admission gate: a short critical section that makes the
    // stopping check and the ring push atomic, so a request can never be
    // admitted after the pipeline has drained and exited. The ring's cell
    // protocol keeps the pop side lock-free.
    std::unique_lock<std::mutex> lock(pipeline_mu_);
    for (;;) {
      if (commits_stopping_) {
        lock.unlock();
        Reject(&req,
               Status::ResourceExhausted("query service is shut down"));
        return fut;
      }
      if (write_ring_.TryPush(&req, &req.sequence)) break;
      if (options_.reject_writes_when_full) {
        lock.unlock();
        Reject(&req, Status::ResourceExhausted(
                         StrFormat("commit ring full (depth %zu)",
                                   write_ring_.capacity())));
        return fut;
      }
      // Backpressure: wait for the pipeline to free a slot. Timed only
      // when it actually blocks.
      auto wait_start = std::chrono::steady_clock::now();
      write_space_cv_.wait(lock, [this] {
        return commits_stopping_ || write_ring_.CanPush();
      });
      if (m_admission_wait_ != nullptr) {
        m_admission_wait_->Record(SecondsSince(wait_start));
      }
    }
  }
  pipeline_cv_.notify_all();
  return fut;
}

std::vector<std::future<CommitReceipt>> QueryService::CommitMany(
    std::vector<std::string> scripts) {
  std::vector<std::future<CommitReceipt>> futures;
  futures.reserve(scripts.size());
  for (std::string& sql : scripts) {
    futures.push_back(CommitAsync(std::move(sql)));
  }
  return futures;
}

Status QueryService::Commit(const std::string& sql) {
  return CommitAsync(sql).get().status;
}

Status QueryService::WithMaster(const std::function<Status(Database&)>& fn,
                                bool publish) {
  std::unique_lock<std::mutex> lock(master_mu_);
  // Outside any async round: a mutation applied mid-round would be lost
  // when the fork swaps in (only ring commits are replayed).
  master_cv_.wait(lock, [this] { return !round_in_flight_; });
  Status st = fn(*master_);
  if (!master_->hypergraph_current()) {
    Status restored = master_->EnableIncrementalMaintenance();
    if (st.ok()) st = restored;
  }
  if (publish) {
    Status published = Publish();
    if (st.ok()) st = published;
  }
  return st;
}

// --- write path: the pipeline thread ----------------------------------------

void QueryService::CommitPipelineLoop() {
  // Requests popped off the ring but not yet processed: the head of this
  // deque is the oldest admitted commit. Bounded by 2 * max_group_commits
  // so ring backpressure still reaches producers.
  std::deque<CommitRequest> pending;
  const size_t refill_cap = 2 * options_.max_group_commits;
  for (;;) {
    bool finish_round = false;
    {
      std::unique_lock<std::mutex> lock(pipeline_mu_);
      pipeline_cv_.wait(lock, [&] {
        if (round_in_flight_ && detect_done_) return true;
        if (commits_stopping_ && !round_in_flight_) return true;
        // A redetect-class head must wait for the in-flight round (FIFO:
        // everything behind it stays queued too).
        if (round_in_flight_ && !pending.empty() &&
            pending.front().redetect) {
          return false;
        }
        return !pending.empty() || write_ring_.CanPop();
      });
      finish_round = round_in_flight_ && detect_done_;
    }
    if (finish_round) {
      FinishAsyncRound();
      continue;
    }
    {
      CommitRequest req;
      bool popped = false;
      while (pending.size() < refill_cap && write_ring_.TryPop(&req)) {
        pending.push_back(std::move(req));
        popped = true;
      }
      if (popped) write_space_cv_.notify_all();
    }
    if (pending.empty()) {
      std::lock_guard<std::mutex> lock(pipeline_mu_);
      // Drained and stopping: no producer can slip in a late push — the
      // admission gate re-checks commits_stopping_ under this mutex.
      if (commits_stopping_ && !round_in_flight_ &&
          !write_ring_.CanPop()) {
        return;
      }
      continue;
    }
    const bool redetect_class = pending.front().redetect;
    if (redetect_class && round_in_flight_) continue;  // wait for the round
    std::vector<CommitRequest> group;
    while (!pending.empty() &&
           pending.front().redetect == redetect_class &&
           group.size() < options_.max_group_commits) {
      group.push_back(std::move(pending.front()));
      pending.pop_front();
    }
    if (!redetect_class) {
      ProcessSmallGroup(std::move(group));
    } else if (options_.async_bulk_redetect) {
      StartAsyncRound(std::move(group));
    } else {
      ProcessSyncRedetect(std::move(group));
    }
  }
}

void QueryService::ResolveGroup(std::vector<CommitRequest>* group,
                                Status published, const SnapshotPtr& snap,
                                const CommitPhases& shared) {
  const uint64_t epoch = snap != nullptr ? snap->epoch() : 0;
  const size_t group_size = group->size();
  // Stats and metrics first, receipts last: a writer returning from
  // .get() must already see its own commit in stats().
  if (m_commits_ != nullptr) {
    for (const CommitRequest& req : *group) {
      m_commits_->Add(1);
      m_commit_lock_wait_->Record(req.queue_seconds);
      m_batch_statements_->Record(double(req.statements));
    }
    m_commit_apply_->Record(shared.apply_seconds);
    m_group_size_->Record(double(group_size));
    if (shared.redetected) {
      m_detect_redetect_->Record(shared.detect_seconds);
      if (shared.replay_seconds > 0) {
        m_commit_replay_->Record(shared.replay_seconds);
      }
    } else {
      // Incremental path: maintenance runs per-statement inside Execute,
      // so the apply phase IS the incremental detection time.
      m_detect_incremental_->Record(shared.apply_seconds);
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.commits += group_size;
    if (shared.redetected) {
      stats_.bulk_redetects += group_size;
    } else {
      stats_.incremental_commits += group_size;
    }
    ++stats_.commit_groups;
    stats_.max_group_size = std::max(stats_.max_group_size, group_size);
  }
  for (CommitRequest& req : *group) {
    CommitReceipt r;
    // The script's own error dominates; detect/publish errors surface
    // otherwise (readers keep the previous epoch when publication failed).
    r.status = !req.applied.ok() ? req.applied : published;
    r.sequence = req.sequence;
    r.epoch = epoch;
    r.group_size = group_size;
    r.snapshot = snap;
    r.phases = shared;
    r.phases.queue_seconds = req.queue_seconds;
    req.done.set_value(std::move(r));
  }
}

void QueryService::ProcessSmallGroup(std::vector<CommitRequest> group) {
  CommitPhases shared;
  SnapshotPtr snap;
  Status published;
  {
    std::lock_guard<std::mutex> lock(master_mu_);
    auto apply_start = std::chrono::steady_clock::now();
    for (CommitRequest& req : group) {
      req.queue_seconds = SecondsSince(req.admitted);
      req.applied = master_->Execute(req.sql);
    }
    shared.apply_seconds = SecondsSince(apply_start);
    if (!master_->hypergraph_current()) {
      // Defense in depth: a statement classified as plain DML invalidated
      // the graph anyway (e.g. DDL the classifier missed). Restore the
      // maintained-graph invariant with a full re-detection before
      // publishing.
      auto detect_start = std::chrono::steady_clock::now();
      Status restored = master_->EnableIncrementalMaintenance();
      shared.detect_seconds = SecondsSince(detect_start);
      shared.redetected = true;
      if (!restored.ok()) {
        published = restored;
      }
    }
    if (round_in_flight_) {
      // The async round will replay these scripts onto the fork so the
      // swapped-in lineage contains them too (the replay rule).
      for (const CommitRequest& req : group) {
        replay_log_.push_back(req.sql);
      }
    }
    if (published.ok()) {
      auto publish_start = std::chrono::steady_clock::now();
      published = Publish(&snap);
      shared.publish_seconds = SecondsSince(publish_start);
    }
  }
  ResolveGroup(&group, published, snap, shared);
}

void QueryService::ProcessSyncRedetect(std::vector<CommitRequest> group) {
  CommitPhases shared;
  shared.redetected = true;
  SnapshotPtr snap;
  Status published;
  {
    std::lock_guard<std::mutex> lock(master_mu_);
    // Large delta / DDL: per-row incremental maintenance would pay a
    // hash-probe per statement; one full (parallel) detection pass is
    // cheaper. Drop the maintainer up front so DML only invalidates.
    master_->DisableIncrementalMaintenance();
    master_->InvalidateHypergraph();
    auto apply_start = std::chrono::steady_clock::now();
    for (CommitRequest& req : group) {
      req.queue_seconds = SecondsSince(req.admitted);
      req.applied = master_->Execute(req.sql);
    }
    shared.apply_seconds = SecondsSince(apply_start);
    auto detect_start = std::chrono::steady_clock::now();
    Status restored = master_->EnableIncrementalMaintenance();
    shared.detect_seconds = SecondsSince(detect_start);
    if (restored.ok()) {
      auto publish_start = std::chrono::steady_clock::now();
      published = Publish(&snap);
      shared.publish_seconds = SecondsSince(publish_start);
    } else {
      published = restored;
    }
  }
  ResolveGroup(&group, published, snap, shared);
}

void QueryService::StartAsyncRound(std::vector<CommitRequest> group) {
  {
    std::lock_guard<std::mutex> lock(master_mu_);
    fork_ = master_->ForkShared();
    round_in_flight_ = true;
  }
  {
    std::lock_guard<std::mutex> lock(pipeline_mu_);
    detect_done_ = false;
  }
  round_group_ = std::move(group);
  replay_log_.clear();
  if (detect_thread_.joinable()) detect_thread_.join();
  // The background half of the round: apply the bulk/DDL scripts to the
  // private fork, then bring its hypergraph up (a fresh, typically
  // parallel DetectAll + maintainer build). The master lineage keeps
  // serving small groups on the pipeline thread meanwhile.
  detect_thread_ = std::thread([this] {
    auto apply_start = std::chrono::steady_clock::now();
    for (CommitRequest& req : round_group_) {
      req.queue_seconds = SecondsSince(req.admitted);
      req.applied = fork_->Execute(req.sql);
    }
    double apply_seconds = SecondsSince(apply_start);
    auto detect_start = std::chrono::steady_clock::now();
    Status st = fork_->EnableIncrementalMaintenance();
    double detect_seconds = SecondsSince(detect_start);
    {
      std::lock_guard<std::mutex> lock(pipeline_mu_);
      round_apply_seconds_ = apply_seconds;
      round_detect_seconds_ = detect_seconds;
      detect_status_ = st;
      detect_done_ = true;
    }
    pipeline_cv_.notify_all();
  });
}

void QueryService::FinishAsyncRound() {
  detect_thread_.join();
  CommitPhases shared;
  shared.redetected = true;
  Status detect_st;
  {
    std::lock_guard<std::mutex> lock(pipeline_mu_);
    detect_st = detect_status_;
    shared.apply_seconds = round_apply_seconds_;
    shared.detect_seconds = round_detect_seconds_;
    detect_done_ = false;
  }
  SnapshotPtr snap;
  Status published;
  const size_t replayed = replay_log_.size();
  {
    std::lock_guard<std::mutex> lock(master_mu_);
    if (detect_st.ok()) {
      // The replay rule: small commits that published on the master
      // lineage while detection ran are re-executed on the fork, in
      // admission order, through the fork's live incremental maintainer.
      // Statement outcomes may differ from the master application (they
      // now see the bulk's effects — serial semantics); the receipts
      // already reported the master-lineage status.
      auto replay_start = std::chrono::steady_clock::now();
      for (const std::string& sql : replay_log_) {
        (void)fork_->Execute(sql);
      }
      shared.replay_seconds = SecondsSince(replay_start);
      if (!fork_->hypergraph_current()) {
        // A replayed script invalidated the fork's graph (hidden DDL that
        // the small-path fallback also re-detected on the master).
        Status restored = fork_->EnableIncrementalMaintenance();
        if (!restored.ok()) detect_st = restored;
      }
    }
    if (detect_st.ok()) {
      // The epoch swap is a pointer swap: the fork becomes the master;
      // the old master's tables live on inside published snapshots.
      master_ = std::move(fork_);
      auto publish_start = std::chrono::steady_clock::now();
      published = Publish(&snap);
      shared.publish_seconds = SecondsSince(publish_start);
    } else {
      // Detection failed (e.g. invalid DetectOptions): the master never
      // saw the bulk, its lineage stays consistent; the round's commits
      // report the error and are NOT applied.
      fork_.reset();
      published = detect_st;
    }
    round_in_flight_ = false;
  }
  master_cv_.notify_all();
  std::vector<CommitRequest> group = std::move(round_group_);
  round_group_.clear();
  replay_log_.clear();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.async_redetects;
    stats_.replayed_commits += replayed;
  }
  ResolveGroup(&group, published, snap, shared);
}

Status QueryService::Publish(SnapshotPtr* out) {
  auto t0 = std::chrono::steady_clock::now();
  HIPPO_ASSIGN_OR_RETURN(SnapshotPtr snap,
                         Snapshot::Capture(master_.get(), next_epoch_));
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  if (out != nullptr) *out = snap;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    current_ = std::move(snap);
  }
  if (m_commit_publish_ != nullptr) {
    m_commit_publish_->Record(secs);
    m_epoch_->Set(static_cast<int64_t>(next_epoch_));
  }
  ++next_epoch_;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.snapshots_published;
    stats_.publish_seconds_total += secs;
    if (stats_.publish_seconds.size() < 16384) {
      stats_.publish_seconds.push_back(secs);
    }
  }
  return Status::OK();
}

SnapshotPtr QueryService::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return current_;
}

uint64_t QueryService::epoch() const { return snapshot()->epoch(); }

Session QueryService::OpenSession() { return Session(this); }

std::future<Result<ResultSet>> QueryService::Submit(
    ReadMode mode, std::string select_sql, SnapshotPtr snap,
    cqa::HippoOptions options) {
  Job job;
  job.mode = mode;
  job.sql = std::move(select_sql);
  job.snapshot = snap != nullptr ? std::move(snap) : snapshot();
  job.options = std::move(options);
  std::future<Result<ResultSet>> fut = job.done.get_future();

  std::unique_lock<std::mutex> lock(queue_mu_);
  if (!stopping_ && queue_.size() >= options_.max_queue_depth) {
    if (options_.reject_when_full) {
      lock.unlock();
      if (m_rejected_ != nullptr) m_rejected_->Add(1);
      {
        std::lock_guard<std::mutex> s(stats_mu_);
        ++stats_.queries_rejected;
      }
      job.done.set_value(Status::ResourceExhausted(StrFormat(
          "admission queue full (depth %zu)", options_.max_queue_depth)));
      return fut;
    }
    // Backpressure: the submitter blocks until a slot frees. Timed only
    // when it actually blocks, so the uncontended path reads no clock.
    auto wait_start = std::chrono::steady_clock::now();
    space_cv_.wait(lock, [this] {
      return stopping_ || queue_.size() < options_.max_queue_depth;
    });
    if (m_admission_wait_ != nullptr) {
      m_admission_wait_->Record(SecondsSince(wait_start));
    }
  }
  if (stopping_) {
    lock.unlock();
    if (m_rejected_ != nullptr) m_rejected_->Add(1);
    {
      std::lock_guard<std::mutex> s(stats_mu_);
      ++stats_.queries_rejected;
    }
    job.done.set_value(
        Status::ResourceExhausted("query service is shut down"));
    return fut;
  }
  if (metrics_ != nullptr) {
    job.enqueued = std::chrono::steady_clock::now();
  }
  queue_.push_back(std::move(job));
  if (m_queue_depth_ != nullptr) {
    m_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  }
  lock.unlock();
  queue_cv_.notify_one();
  return fut;
}

void QueryService::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
      if (m_queue_depth_ != nullptr) {
        m_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      }
    }
    space_cv_.notify_one();
    if (m_queue_wait_ != nullptr) {
      m_queue_wait_->Record(SecondsSince(job.enqueued));
    }
    Result<ResultSet> result = RunJob(&job);
    if (m_queries_ != nullptr) m_queries_->Add(1);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.queries_executed;
    }
    job.done.set_value(std::move(result));
  }
}

Result<ResultSet> QueryService::RunJob(Job* job) {
  const Snapshot& snap = *job->snapshot;
  // Untraced, unmeasured fast path: without a registry the read modes run
  // exactly the pre-observability code (one branch per request).
  if (metrics_ == nullptr) {
    switch (job->mode) {
      case ReadMode::kPlain:
        return snap.Query(job->sql);
      case ReadMode::kOverCore:
        return snap.QueryOverCore(job->sql);
      case ReadMode::kConsistent: {
        cqa::HippoStats hippo_stats;
        Result<ResultSet> rs =
            snap.ConsistentAnswers(job->sql, job->options, &hippo_stats);
        std::lock_guard<std::mutex> lock(stats_mu_);
        MergeHippoStats(hippo_stats, &stats_.hippo);
        return rs;
      }
    }
    return Status::Internal("unknown read mode");
  }
  auto start = std::chrono::steady_clock::now();
  switch (job->mode) {
    case ReadMode::kPlain:
    case ReadMode::kOverCore: {
      Result<ResultSet> rs = job->mode == ReadMode::kPlain
                                 ? snap.Query(job->sql)
                                 : snap.QueryOverCore(job->sql);
      double secs = SecondsSince(start);
      (job->mode == ReadMode::kPlain ? m_plain_latency_ : m_core_latency_)
          ->Record(secs);
      std::lock_guard<std::mutex> lock(stats_mu_);
      NoteSlowQueryLocked(*job, RouteKind::kNone, secs, nullptr);
      return rs;
    }
    case ReadMode::kConsistent: {
      cqa::HippoStats hippo_stats;
      Result<ResultSet> rs =
          snap.ConsistentAnswers(job->sql, job->options, &hippo_stats);
      double secs = SecondsSince(start);
      switch (hippo_stats.route) {
        case RouteKind::kConflictFree:
          m_route_cf_->Record(secs);
          break;
        case RouteKind::kRewriteAbc:
        case RouteKind::kRewriteKw:
          m_route_rewrite_->Record(secs);
          break;
        case RouteKind::kProver:
          m_route_prover_->Record(secs);
          break;
        case RouteKind::kNone:
          break;  // failed before routing (parse/classification error)
      }
      std::lock_guard<std::mutex> lock(stats_mu_);
      MergeHippoStats(hippo_stats, &stats_.hippo);
      NoteSlowQueryLocked(*job, hippo_stats.route, secs, &hippo_stats);
      return rs;
    }
  }
  return Status::Internal("unknown read mode");
}

void QueryService::NoteSlowQueryLocked(const Job& job, RouteKind route,
                                       double seconds,
                                       const cqa::HippoStats* hippo_stats) {
  const size_t cap = options_.slow_query_log_size;
  if (cap == 0) return;
  // Top-K by latency: replace the current minimum once the log is full.
  // K is small (default 16), so a linear min scan beats heap bookkeeping.
  size_t slot = slow_log_.size();
  if (slow_log_.size() >= cap) {
    size_t min_i = 0;
    for (size_t i = 1; i < slow_log_.size(); ++i) {
      if (slow_log_[i].seconds < slow_log_[min_i].seconds) min_i = i;
    }
    if (slow_log_[min_i].seconds >= seconds) return;
    slot = min_i;
  } else {
    slow_log_.emplace_back();
  }
  SlowQuery& entry = slow_log_[slot];
  entry.sql = job.sql;
  entry.mode = job.mode;
  entry.route = route;
  entry.seconds = seconds;
  entry.epoch = job.snapshot->epoch();
  if (job.options.trace != nullptr) {
    entry.summary = job.options.trace->Summary();
  } else if (hippo_stats != nullptr) {
    entry.summary = StrFormat(
        "route=%s candidates=%zu answers=%zu prover=%zu",
        RouteKindName(route), hippo_stats->candidates, hippo_stats->answers,
        hippo_stats->prover_invocations);
  } else {
    entry.summary = job.mode == ReadMode::kPlain ? "plain" : "core";
  }
}

std::vector<QueryService::SlowQuery> QueryService::SlowQueries() const {
  std::vector<SlowQuery> out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = slow_log_;
  }
  std::sort(out.begin(), out.end(),
            [](const SlowQuery& a, const SlowQuery& b) {
              return a.seconds > b.seconds;
            });
  return out;
}

std::string QueryService::DumpMetrics() const {
  return metrics_ != nullptr ? metrics_->DumpPrometheus() : std::string();
}

std::string QueryService::DumpMetricsJson() const {
  return metrics_ != nullptr ? metrics_->DumpJson() : std::string("{}");
}

void QueryService::Shutdown() {
  // Stop write admission first, then let the pipeline drain everything
  // already admitted (including an in-flight async round) before joining.
  {
    std::lock_guard<std::mutex> lock(pipeline_mu_);
    commits_stopping_ = true;
  }
  pipeline_cv_.notify_all();
  write_space_cv_.notify_all();
  if (pipeline_.joinable()) pipeline_.join();
  if (detect_thread_.joinable()) detect_thread_.join();
  {
    // Defensive sweep: the admission gate makes a post-drain push
    // impossible, but never strand a promise if that invariant is ever
    // broken.
    CommitRequest req;
    while (write_ring_.TryPop(&req)) {
      Reject(&req, Status::ResourceExhausted("query service is shut down"));
    }
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  // Snapshot-on-read: the route histograms are live sharded atomics; the
  // copies below are consistent totals once recorders quiesce.
  if (metrics_ != nullptr) {
    out.conflict_free_latency = m_route_cf_->Snapshot();
    out.rewrite_latency = m_route_rewrite_->Snapshot();
    out.prover_latency = m_route_prover_->Snapshot();
  }
  return out;
}

}  // namespace hippo::service
