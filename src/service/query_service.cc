#include "service/query_service.h"

#include <algorithm>
#include <chrono>

#include "common/str_util.h"
#include "service/session.h"

namespace hippo::service {

namespace {

/// Cheap upper-bound statement count of a ';'-separated script (used only
/// to route a commit to the bulk re-detect path, so over-counting by one
/// for a trailing separator is harmless).
size_t CountStatements(const std::string& sql) {
  size_t n = static_cast<size_t>(
      std::count(sql.begin(), sql.end(), ';'));
  if (!sql.empty() && sql.find_last_not_of(" \t\n") != std::string::npos &&
      sql[sql.find_last_not_of(" \t\n")] != ';') {
    ++n;  // unterminated final statement
  }
  return n;
}

void MergeHippoStats(const cqa::HippoStats& from, cqa::HippoStats* into) {
  into->candidates += from.candidates;
  into->answers += from.answers;
  into->filtered_shortcuts += from.filtered_shortcuts;
  into->constant_formulas += from.constant_formulas;
  into->prover_invocations += from.prover_invocations;
  into->clauses_checked += from.clauses_checked;
  into->membership_checks += from.membership_checks;
  into->edge_choices_tried += from.edge_choices_tried;
  into->envelope_seconds += from.envelope_seconds;
  into->prove_seconds += from.prove_seconds;
  into->total_seconds += from.total_seconds;
  into->route = from.route;  // most recent request's route
  into->routed_conflict_free += from.routed_conflict_free;
  into->routed_rewrite += from.routed_rewrite;
  into->routed_prover += from.routed_prover;
  into->conflict_free_route_seconds += from.conflict_free_route_seconds;
  into->rewrite_route_seconds += from.rewrite_route_seconds;
  into->prover_route_seconds += from.prover_route_seconds;
  into->detect_options_ignored += from.detect_options_ignored;
}

}  // namespace

QueryService::QueryService(ServiceOptions options)
    : options_(options) {
  options_.num_workers = ResolveThreadCount(options_.num_workers);
  if (options_.max_queue_depth == 0) options_.max_queue_depth = 1;
  // Commit-path re-detections (bulk commits, constraint DDL) use the
  // configured detect options; the incremental maintainer handles the rest.
  master_.SetDetectOptions(options_.detect);
  Status st = master_.EnableIncrementalMaintenance();
  HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());
  st = Publish();  // epoch 0: the empty instance
  HIPPO_CHECK_MSG(st.ok(), st.ToString().c_str());
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

Status QueryService::Commit(const std::string& sql) {
  std::lock_guard<std::mutex> commit(commit_mu_);
  uint64_t graph_generation = master_.hypergraph_epoch();
  bool bulk = CountStatements(sql) >= options_.bulk_redetect_statements;
  if (bulk) {
    // Large delta: per-row incremental maintenance would pay a hash-probe
    // per statement; one full (parallel) detection pass is cheaper. Drop
    // the maintainer up front so DML only invalidates.
    master_.DisableIncrementalMaintenance();
    master_.InvalidateHypergraph();
  }
  Status applied = master_.Execute(sql);
  // Restore the invariant "master's hypergraph is current and maintained":
  // re-detects eagerly when the graph was invalidated (bulk path above, or
  // constraint DDL inside the batch), no-op otherwise.
  Status restored = master_.EnableIncrementalMaintenance();
  Status published = restored.ok() ? Publish() : restored;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.commits;
    if (master_.hypergraph_epoch() != graph_generation) {
      ++stats_.bulk_redetects;
    } else {
      ++stats_.incremental_commits;
    }
  }
  // The batch's own error dominates; publication errors surface otherwise
  // (readers keep the previous epoch if publish failed).
  if (!applied.ok()) return applied;
  return published;
}

Status QueryService::Publish() {
  auto t0 = std::chrono::steady_clock::now();
  HIPPO_ASSIGN_OR_RETURN(SnapshotPtr snap,
                         Snapshot::Capture(&master_, next_epoch_));
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    current_ = std::move(snap);
  }
  ++next_epoch_;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.snapshots_published;
    stats_.publish_seconds_total += secs;
    if (stats_.publish_seconds.size() < 16384) {
      stats_.publish_seconds.push_back(secs);
    }
  }
  return Status::OK();
}

SnapshotPtr QueryService::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return current_;
}

uint64_t QueryService::epoch() const { return snapshot()->epoch(); }

Session QueryService::OpenSession() { return Session(this); }

std::future<Result<ResultSet>> QueryService::Submit(
    ReadMode mode, std::string select_sql, SnapshotPtr snap,
    cqa::HippoOptions options) {
  Job job;
  job.mode = mode;
  job.sql = std::move(select_sql);
  job.snapshot = snap != nullptr ? std::move(snap) : snapshot();
  job.options = std::move(options);
  std::future<Result<ResultSet>> fut = job.done.get_future();

  std::unique_lock<std::mutex> lock(queue_mu_);
  if (!stopping_ && queue_.size() >= options_.max_queue_depth) {
    if (options_.reject_when_full) {
      lock.unlock();
      {
        std::lock_guard<std::mutex> s(stats_mu_);
        ++stats_.queries_rejected;
      }
      job.done.set_value(Status::ResourceExhausted(StrFormat(
          "admission queue full (depth %zu)", options_.max_queue_depth)));
      return fut;
    }
    space_cv_.wait(lock, [this] {
      return stopping_ || queue_.size() < options_.max_queue_depth;
    });
  }
  if (stopping_) {
    lock.unlock();
    {
      std::lock_guard<std::mutex> s(stats_mu_);
      ++stats_.queries_rejected;
    }
    job.done.set_value(
        Status::ResourceExhausted("query service is shut down"));
    return fut;
  }
  queue_.push_back(std::move(job));
  lock.unlock();
  queue_cv_.notify_one();
  return fut;
}

void QueryService::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    space_cv_.notify_one();
    Result<ResultSet> result = RunJob(&job);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.queries_executed;
    }
    job.done.set_value(std::move(result));
  }
}

Result<ResultSet> QueryService::RunJob(Job* job) {
  const Snapshot& snap = *job->snapshot;
  switch (job->mode) {
    case ReadMode::kPlain:
      return snap.Query(job->sql);
    case ReadMode::kOverCore:
      return snap.QueryOverCore(job->sql);
    case ReadMode::kConsistent: {
      cqa::HippoStats hippo_stats;
      Result<ResultSet> rs =
          snap.ConsistentAnswers(job->sql, job->options, &hippo_stats);
      std::lock_guard<std::mutex> lock(stats_mu_);
      MergeHippoStats(hippo_stats, &stats_.hippo);
      return rs;
    }
  }
  return Status::Internal("unknown read mode");
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

ServiceStats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace hippo::service
