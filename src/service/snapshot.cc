#include "service/snapshot.h"

#include "db/database.h"
#include "plan/optimizer.h"
#include "plan/planner.h"
#include "repairs/repair_enumerator.h"
#include "sql/parser.h"

namespace hippo::service {

Result<SnapshotPtr> Snapshot::Capture(Database* db, uint64_t epoch) {
  // Both halves are structural shares: every table and every hypergraph
  // partition is pointer-shared with the master and cloned only when the
  // master next mutates it (copy-on-write). One make_shared allocation via
  // the pass-key constructor. `db` may be either lineage of an async
  // commit round (the serving master or the re-detected fork about to be
  // swapped in) — the shares keep the captured state alive independently
  // of which Database object survives the swap.
  HIPPO_ASSIGN_OR_RETURN(ConflictHypergraph graph, db->ShareHypergraph());
  // The constraint set is tiny relative to the instance; a deep copy keeps
  // the snapshot self-contained under later constraint DDL on the master.
  std::vector<DenialConstraint> constraints;
  constraints.reserve(db->constraints().size());
  for (const DenialConstraint& dc : db->constraints()) {
    constraints.push_back(dc.Clone());
  }
  return std::make_shared<const Snapshot>(
      PrivateTag{}, epoch, db->catalog().Share(), std::move(graph),
      std::move(constraints), db->foreign_keys());
}

size_t Snapshot::ApproxBytes() const {
  std::unordered_set<const void*> seen;
  return sizeof(Snapshot) + AccumulateApproxBytes(&seen);
}

void Snapshot::CollectStorageIdentity(
    std::unordered_set<const void*>* seen) const {
  for (uint32_t t = 0; t < catalog_.NumTables(); ++t) {
    seen->insert(catalog_.TableRef(t).get());
  }
  for (const void* p : graph_.PartitionPointers()) seen->insert(p);
}

size_t Snapshot::AccumulateApproxBytes(
    std::unordered_set<const void*>* seen) const {
  size_t bytes = 0;
  catalog_.AccumulateApproxBytes(seen, &bytes);
  graph_.AccumulateApproxBytes(seen, &bytes);
  return bytes;
}

Result<PlanNodePtr> Snapshot::Plan(const std::string& select_sql) const {
  HIPPO_ASSIGN_OR_RETURN(sql::Statement stmt,
                         sql::ParseStatement(select_sql));
  auto* sel = std::get_if<sql::SelectStmt>(&stmt.node);
  if (sel == nullptr) {
    return Status::InvalidArgument("expected a SELECT statement");
  }
  Planner planner(catalog_);
  return planner.PlanSelect(*sel);
}

Result<ResultSet> Snapshot::Query(const std::string& select_sql) const {
  HIPPO_ASSIGN_OR_RETURN(PlanNodePtr plan, Plan(select_sql));
  plan = OptimizePlan(*plan);
  ExecContext ctx{&catalog_, nullptr};
  return ::hippo::Execute(*plan, ctx);
}

Result<ResultSet> Snapshot::QueryOverCore(
    const std::string& select_sql) const {
  HIPPO_ASSIGN_OR_RETURN(PlanNodePtr plan, Plan(select_sql));
  RepairEnumerator repairs(catalog_, graph_);
  RowMask mask = repairs.CoreMask();
  plan = OptimizePlan(*plan);
  ExecContext ctx{&catalog_, &mask};
  return ::hippo::Execute(*plan, ctx);
}

Result<ResultSet> Snapshot::ConsistentAnswers(const std::string& select_sql,
                                              const cqa::HippoOptions& options,
                                              cqa::HippoStats* stats) const {
  HIPPO_ASSIGN_OR_RETURN(PlanNodePtr plan, Plan(select_sql));
  cqa::HippoEngine engine(catalog_, graph_, &constraints_, &foreign_keys_);
  return engine.ConsistentAnswers(*plan, options, stats);
}

Result<std::string> Snapshot::ExplainAnalyze(const std::string& select_sql,
                                             const cqa::HippoOptions& options,
                                             cqa::HippoStats* stats) const {
  obs::TraceSpan root("query");
  cqa::HippoOptions traced = options;
  traced.trace = &root;
  HIPPO_ASSIGN_OR_RETURN(ResultSet result,
                         ConsistentAnswers(select_sql, traced, stats));
  root.SetAttr("answers", static_cast<int64_t>(result.rows.size()));
  root.SetAttr("epoch", static_cast<int64_t>(epoch_));
  root.End();
  return "-- explain analyze --\n" + root.Render();
}

}  // namespace hippo::service
