#include "service/snapshot.h"

#include "db/database.h"
#include "plan/optimizer.h"
#include "plan/planner.h"
#include "repairs/repair_enumerator.h"
#include "sql/parser.h"

namespace hippo::service {

Result<SnapshotPtr> Snapshot::Capture(Database* db, uint64_t epoch) {
  HIPPO_ASSIGN_OR_RETURN(const ConflictHypergraph* graph, db->Hypergraph());
  // shared_ptr<const Snapshot> via make_shared needs a public constructor;
  // keep it private and pay one extra allocation instead.
  return SnapshotPtr(
      new Snapshot(epoch, db->catalog().Clone(), *graph));
}

Result<PlanNodePtr> Snapshot::Plan(const std::string& select_sql) const {
  HIPPO_ASSIGN_OR_RETURN(sql::Statement stmt,
                         sql::ParseStatement(select_sql));
  auto* sel = std::get_if<sql::SelectStmt>(&stmt.node);
  if (sel == nullptr) {
    return Status::InvalidArgument("expected a SELECT statement");
  }
  Planner planner(catalog_);
  return planner.PlanSelect(*sel);
}

Result<ResultSet> Snapshot::Query(const std::string& select_sql) const {
  HIPPO_ASSIGN_OR_RETURN(PlanNodePtr plan, Plan(select_sql));
  plan = OptimizePlan(*plan);
  ExecContext ctx{&catalog_, nullptr};
  return ::hippo::Execute(*plan, ctx);
}

Result<ResultSet> Snapshot::QueryOverCore(
    const std::string& select_sql) const {
  HIPPO_ASSIGN_OR_RETURN(PlanNodePtr plan, Plan(select_sql));
  RepairEnumerator repairs(catalog_, graph_);
  RowMask mask = repairs.CoreMask();
  plan = OptimizePlan(*plan);
  ExecContext ctx{&catalog_, &mask};
  return ::hippo::Execute(*plan, ctx);
}

Result<ResultSet> Snapshot::ConsistentAnswers(const std::string& select_sql,
                                              const cqa::HippoOptions& options,
                                              cqa::HippoStats* stats) const {
  HIPPO_ASSIGN_OR_RETURN(PlanNodePtr plan, Plan(select_sql));
  cqa::HippoEngine engine(catalog_, graph_);
  return engine.ConsistentAnswers(*plan, options, stats);
}

}  // namespace hippo::service
