// service::Snapshot — an immutable view of the database at one epoch.
//
// A snapshot bundles a deep copy of the instance (catalog: schemas, rows,
// tombstones, row indexes) with the conflict hypergraph that matches it
// exactly, stamped with the epoch at which the pair was published. Because
// table ids and RowIds are preserved by Catalog::Clone, the copied
// hypergraph's vertices remain valid against the copied catalog, and every
// read path of the engine — plain evaluation, core evaluation, and the full
// Hippo consistent-answer pipeline — can run against the snapshot with no
// locks and no coordination: the snapshot never changes after construction.
//
// Snapshots are handed out as shared_ptr<const Snapshot> (RCU-style): the
// publisher swaps in a new snapshot for the next epoch while readers holding
// an older epoch keep it alive for as long as their queries run. Readers
// therefore never block writers and writers never block readers; the only
// serialized section is the commit path itself (see QueryService).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "cqa/engine.h"
#include "detect/detector.h"
#include "exec/executor.h"
#include "hypergraph/hypergraph.h"
#include "plan/logical_plan.h"

namespace hippo {
class Database;
}  // namespace hippo

namespace hippo::service {

class Snapshot;
using SnapshotPtr = std::shared_ptr<const Snapshot>;

class Snapshot {
 public:
  /// Captures the current state of `db` as an immutable snapshot stamped
  /// with `epoch`. Builds the conflict hypergraph first when the cache is
  /// cold (so capture never publishes a graphless view). The caller must
  /// hold the database's writer-side exclusion while capturing — nothing
  /// may mutate `db` between the graph read and the catalog clone.
  static Result<SnapshotPtr> Capture(Database* db, uint64_t epoch);

  /// The epoch this snapshot was published at (monotonically increasing
  /// across the publishing QueryService's lifetime).
  uint64_t epoch() const { return epoch_; }

  const Catalog& catalog() const { return catalog_; }
  const ConflictHypergraph& hypergraph() const { return graph_; }

  /// Live rows across all tables (cardinality of the frozen instance).
  size_t TotalRows() const { return catalog_.TotalRows(); }

  /// True when the frozen instance satisfies all constraints.
  bool IsConsistent() const { return graph_.NumEdges() == 0; }

  // --- read paths (all const, all safe to call concurrently) ---------------

  /// Plans (and binds) a SELECT statement against the frozen catalog.
  Result<PlanNodePtr> Plan(const std::string& select_sql) const;

  /// Plain evaluation over the (possibly inconsistent) frozen instance.
  Result<ResultSet> Query(const std::string& select_sql) const;

  /// Evaluation over the "core": every conflicting tuple removed.
  Result<ResultSet> QueryOverCore(const std::string& select_sql) const;

  /// Consistent answers via Hippo against the frozen hypergraph. Results
  /// are bit-identical to Database::ConsistentAnswers on the instance this
  /// snapshot was captured from.
  Result<ResultSet> ConsistentAnswers(
      const std::string& select_sql,
      const cqa::HippoOptions& options = cqa::HippoOptions(),
      cqa::HippoStats* stats = nullptr) const;

 private:
  Snapshot(uint64_t epoch, Catalog catalog, ConflictHypergraph graph)
      : epoch_(epoch),
        catalog_(std::move(catalog)),
        graph_(std::move(graph)) {}

  uint64_t epoch_;
  Catalog catalog_;
  ConflictHypergraph graph_;
};

}  // namespace hippo::service
