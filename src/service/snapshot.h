// service::Snapshot — an immutable view of the database at one epoch.
//
// A snapshot bundles the instance (catalog) with the conflict hypergraph
// that matches it exactly, stamped with the epoch at which the pair was
// published. Publication is copy-on-write (DESIGN.md §5): the catalog copy
// shares every table the epoch did not touch (Catalog::Share) and the
// hypergraph copy shares every untouched partition, so capturing costs
// O(#tables + #partitions) pointer copies instead of a deep copy of the
// database, and the commit that follows clones only what it mutates.
// Because table ids and RowIds are preserved, the shared hypergraph's
// vertices remain valid against the shared catalog, and every read path of
// the engine — plain evaluation, core evaluation, and the full Hippo
// consistent-answer pipeline — can run against the snapshot with no locks
// and no coordination: the snapshot never changes after construction.
//
// Snapshots are handed out as shared_ptr<const Snapshot> (RCU-style): the
// publisher swaps in a new snapshot for the next epoch while readers holding
// an older epoch keep it alive for as long as their queries run. Readers
// therefore never block writers and writers never block readers; the only
// serialized section is the commit pipeline's apply+capture step itself
// (see QueryService).
//
// Capture is lineage-agnostic: during an asynchronous bulk/DDL round the
// service captures epochs from the still-serving master while the fork
// re-detects in the background, and the post-swap epoch from the fork.
// Either way the tables a snapshot shares stay alive through the
// shared_ptr slots in its own catalog copy — swapping (and destroying)
// the master Database never invalidates a published snapshot.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "constraints/constraint.h"
#include "constraints/foreign_key.h"
#include "cqa/engine.h"
#include "detect/detector.h"
#include "exec/executor.h"
#include "hypergraph/hypergraph.h"
#include "plan/logical_plan.h"

namespace hippo {
class Database;
}  // namespace hippo

namespace hippo::service {

class Snapshot;
using SnapshotPtr = std::shared_ptr<const Snapshot>;

class Snapshot {
 private:
  /// Pass-key: makes the constructor unusable outside Capture while keeping
  /// it public for std::make_shared (single-allocation construction).
  struct PrivateTag {
    explicit PrivateTag() = default;
  };

 public:
  Snapshot(PrivateTag, uint64_t epoch, Catalog catalog,
           ConflictHypergraph graph,
           std::vector<DenialConstraint> constraints,
           std::vector<ForeignKeyConstraint> foreign_keys)
      : epoch_(epoch),
        catalog_(std::move(catalog)),
        graph_(std::move(graph)),
        constraints_(std::move(constraints)),
        foreign_keys_(std::move(foreign_keys)) {}

  /// Captures the current state of `db` as an immutable snapshot stamped
  /// with `epoch`. Builds the conflict hypergraph first when the cache is
  /// cold (so capture never publishes a graphless view). The caller must
  /// hold the database's writer-side exclusion while capturing — nothing
  /// may mutate `db` between the graph read and the catalog share.
  static Result<SnapshotPtr> Capture(Database* db, uint64_t epoch);

  /// The epoch this snapshot was published at (monotonically increasing
  /// across the publishing QueryService's lifetime).
  uint64_t epoch() const { return epoch_; }

  const Catalog& catalog() const { return catalog_; }
  const ConflictHypergraph& hypergraph() const { return graph_; }

  /// The constraint set the frozen instance was declared over (deep-copied
  /// at capture; constraint DDL after capture does not reach this
  /// snapshot). Feeds the query router's first-order routes.
  const std::vector<DenialConstraint>& constraints() const {
    return constraints_;
  }
  const std::vector<ForeignKeyConstraint>& foreign_keys() const {
    return foreign_keys_;
  }

  /// Live rows across all tables (cardinality of the frozen instance).
  size_t TotalRows() const { return catalog_.TotalRows(); }

  /// True when the frozen instance satisfies all constraints.
  bool IsConsistent() const { return graph_.NumEdges() == 0; }

  // --- memory accounting ----------------------------------------------------

  /// Rough resident bytes of this snapshot counted in full (as if it shared
  /// nothing). O(database) — intended for end-of-run reporting, not the
  /// commit path.
  size_t ApproxBytes() const;

  /// Inserts the identity of every storage partition (tables, hypergraph
  /// chunks/shards) into `seen` without computing sizes. Seeding `seen`
  /// with a predecessor epoch makes AccumulateApproxBytes report only the
  /// *marginal* bytes this snapshot allocated — the published cost of one
  /// copy-on-write commit.
  void CollectStorageIdentity(std::unordered_set<const void*>* seen) const;

  /// Adds the bytes of every storage partition not already in `seen`
  /// (inserting as it goes) and returns the added total. Cost is
  /// proportional to the *unshared* partitions only.
  size_t AccumulateApproxBytes(std::unordered_set<const void*>* seen) const;

  // --- read paths (all const, all safe to call concurrently) ---------------

  /// Plans (and binds) a SELECT statement against the frozen catalog.
  Result<PlanNodePtr> Plan(const std::string& select_sql) const;

  /// Plain evaluation over the (possibly inconsistent) frozen instance.
  Result<ResultSet> Query(const std::string& select_sql) const;

  /// Evaluation over the "core": every conflicting tuple removed.
  Result<ResultSet> QueryOverCore(const std::string& select_sql) const;

  /// Consistent answers via Hippo against the frozen hypergraph. Results
  /// are bit-identical to Database::ConsistentAnswers on the instance this
  /// snapshot was captured from.
  Result<ResultSet> ConsistentAnswers(
      const std::string& select_sql,
      const cqa::HippoOptions& options = cqa::HippoOptions(),
      cqa::HippoStats* stats = nullptr) const;

  /// EXPLAIN ANALYZE against the frozen instance: executes the query via
  /// ConsistentAnswers with a trace attached and renders the span tree
  /// (route, engine phases, per-operator wall time + cardinality).
  Result<std::string> ExplainAnalyze(
      const std::string& select_sql,
      const cqa::HippoOptions& options = cqa::HippoOptions(),
      cqa::HippoStats* stats = nullptr) const;

 private:
  uint64_t epoch_;
  Catalog catalog_;
  ConflictHypergraph graph_;
  std::vector<DenialConstraint> constraints_;
  std::vector<ForeignKeyConstraint> foreign_keys_;
};

}  // namespace hippo::service
