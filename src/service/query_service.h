// service::QueryService — a concurrent query-serving facade over Database.
//
// The single-threaded Database answers queries over one mutable instance;
// this layer turns it into a service that many clients can hit at once:
//
//   * Readers acquire the current Snapshot (epoch-versioned, immutable,
//     RCU-style shared_ptr) and evaluate against it — either synchronously
//     on their own thread (see Session) or through the service's bounded
//     worker pool (Submit). Readers never block each other and never block
//     on writers.
//   * Writers go through Commit(): an exclusive commit path that applies
//     the DDL/DML batch to the master database, brings the conflict
//     hypergraph up to date — via the incremental maintainer for small
//     deltas, or a parallel full re-detection when the batch is large or a
//     constraint changed — and publishes a new snapshot under the next
//     epoch. Queries running against older epochs are unaffected; their
//     snapshots stay alive until the last reader releases them.
//
// Admission control: Submit() enqueues onto a bounded queue serviced by
// num_workers threads. When the queue is full the service either blocks the
// submitter (backpressure, default) or rejects the request with
// ResourceExhausted, per ServiceOptions::reject_when_full.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "cqa/engine.h"
#include "db/database.h"
#include "detect/detector.h"
#include "obs/metrics.h"
#include "service/snapshot.h"

namespace hippo::service {

class Session;

struct ServiceOptions {
  /// Worker threads executing submitted read requests. 0 = one per
  /// hardware thread (ResolveThreadCount).
  size_t num_workers = 0;

  /// Bound on admitted-but-unstarted requests. Submissions beyond it block
  /// (default) or are rejected, per reject_when_full.
  size_t max_queue_depth = 256;

  /// When the admission queue is full: true rejects the request immediately
  /// with ResourceExhausted; false blocks the submitter until a slot frees
  /// (backpressure).
  bool reject_when_full = false;

  /// Commit batches with at least this many statements skip per-row
  /// incremental maintenance and re-detect the hypergraph from scratch
  /// (with `detect`, typically parallel) — for bulk loads, one full
  /// parallel pass beats a hash-probe per row.
  size_t bulk_redetect_statements = 1024;

  /// Detection options for commit-path re-detection (bulk commits,
  /// constraint DDL). num_threads defaults to 0 = all hardware threads;
  /// shard_rows / partition_rows split a single hot FD, generic-join
  /// constraint, or FK across the pool, so even a one-constraint database
  /// re-detects in parallel and the exclusive commit window shrinks with
  /// the core count. Invalid combinations (DetectOptions::Validate) fail
  /// the first commit that needs a re-detect, with a clear status.
  DetectOptions detect{/*use_fd_fast_path=*/true, /*num_threads=*/0,
                       /*shard_rows=*/16384, /*partition_rows=*/8192};

  /// Per-service observability: a private obs::MetricsRegistry with
  /// commit-phase timers (lock wait, apply, incremental-vs-redetect,
  /// publish, batch size), admission/queue instrumentation, per-route
  /// query-latency histograms, and the slow-query log. Recording is a few
  /// relaxed atomics per event; `false` bypasses all of it (the
  /// pre-observability hot path — bench_f14_obs_overhead measures the
  /// difference and CI bounds it).
  bool enable_metrics = true;

  /// Capacity of the slow-query log: the top-K pool-executed requests by
  /// latency (any read mode) are retained with route and trace summary.
  /// 0 disables the log. Only kept when enable_metrics is on.
  size_t slow_query_log_size = 16;
};

struct ServiceStats {
  uint64_t commits = 0;              ///< Commit() calls that ran
  uint64_t incremental_commits = 0;  ///< graph maintained per-row
  uint64_t bulk_redetects = 0;       ///< graph rebuilt by full detection
  uint64_t snapshots_published = 0;
  uint64_t queries_executed = 0;     ///< worker-pool requests completed
  uint64_t queries_rejected = 0;     ///< admission-control rejections
  double publish_seconds_total = 0;  ///< wall time inside Snapshot::Capture
  /// Per-publication capture latencies (seconds) for the serve driver's
  /// publish p50/p95/p99 row. Recording stops after the first 16384
  /// publications so long-lived services stay bounded — past that point the
  /// percentiles describe the recorded prefix only (publish_seconds_total /
  /// snapshots_published still covers the full run). (Marginal-bytes
  /// accounting is intentionally not computed here: callers holding two
  /// SnapshotPtrs can derive it via Snapshot::CollectStorageIdentity +
  /// AccumulateApproxBytes without taxing the commit path.)
  std::vector<double> publish_seconds;
  cqa::HippoStats hippo;             ///< aggregated over pool CQA requests

  /// Per-route latency distributions of pool-executed kConsistent
  /// requests (obs::LatencyHistogram snapshots taken at stats() time, so
  /// p50/p95/p99 are real percentiles, not sums/counts). The rewrite
  /// bucket covers both the ABC and KW first-order methods. Empty when
  /// ServiceOptions::enable_metrics is false.
  obs::HistogramSnapshot conflict_free_latency;
  obs::HistogramSnapshot rewrite_latency;
  obs::HistogramSnapshot prover_latency;
};

class QueryService {
 public:
  /// How a submitted SELECT is answered.
  enum class ReadMode {
    kPlain,       ///< Snapshot::Query — ignore conflicts
    kOverCore,    ///< Snapshot::QueryOverCore — drop all conflicting tuples
    kConsistent,  ///< Snapshot::ConsistentAnswers — the Hippo pipeline
  };

  explicit QueryService(ServiceOptions options = ServiceOptions());
  ~QueryService();
  HIPPO_DISALLOW_COPY(QueryService);

  // --- write path -----------------------------------------------------------

  /// Applies a ';'-separated DDL/DML script as one commit and publishes a
  /// new epoch. Serialized against other commits; never blocks readers.
  /// On a mid-script error the statements already applied remain (Execute
  /// semantics) and a snapshot of the resulting state is still published,
  /// so readers always see exactly the master state; the error is returned.
  Status Commit(const std::string& sql);

  // --- read path ------------------------------------------------------------

  /// The most recently published snapshot. Never null after construction
  /// (epoch 0 is the empty instance).
  SnapshotPtr snapshot() const;

  /// The epoch of the current snapshot.
  uint64_t epoch() const;

  /// Opens a session pinned to the current snapshot (see Session).
  Session OpenSession();

  /// Enqueues a read for the worker pool, pinned to `snap` (or to the
  /// current snapshot when null). The future carries the result or the
  /// error — including ResourceExhausted when admission control rejects.
  std::future<Result<ResultSet>> Submit(
      ReadMode mode, std::string select_sql, SnapshotPtr snap = nullptr,
      cqa::HippoOptions options = cqa::HippoOptions());

  // --- lifecycle / inspection ----------------------------------------------

  /// Stops admission, drains queued requests, joins the workers. Called by
  /// the destructor; idempotent. Submissions after (or racing) shutdown
  /// resolve to ResourceExhausted.
  void Shutdown();

  ServiceStats stats() const;

  size_t num_workers() const { return workers_.size(); }

  // --- observability ---------------------------------------------------------

  /// One retained slow-query-log entry (see ServiceOptions::
  /// slow_query_log_size): the request, its route, latency, epoch, and a
  /// one-line summary (the caller's trace summary when the request carried
  /// a trace, otherwise synthesized from its HippoStats).
  struct SlowQuery {
    std::string sql;
    ReadMode mode = ReadMode::kPlain;
    RouteKind route = RouteKind::kNone;
    double seconds = 0;
    uint64_t epoch = 0;
    std::string summary;
  };

  /// The slow-query log, sorted by latency descending. Empty when metrics
  /// are disabled.
  std::vector<SlowQuery> SlowQueries() const;

  /// The service's metrics registry (null when disabled). Commit-phase
  /// timers, queue instrumentation, and per-route latency live here.
  const obs::MetricsRegistry* metrics() const { return metrics_.get(); }

  /// Prometheus-style text exposition of the service registry; empty
  /// string when metrics are disabled.
  std::string DumpMetrics() const;

  /// The same snapshot as a single JSON object ("{}" when disabled).
  std::string DumpMetricsJson() const;

 private:
  struct Job {
    ReadMode mode = ReadMode::kPlain;
    std::string sql;
    SnapshotPtr snapshot;
    cqa::HippoOptions options;
    std::promise<Result<ResultSet>> done;
    /// Enqueue instant for the queue-wait histogram (meaningful only when
    /// metrics are enabled).
    std::chrono::steady_clock::time_point enqueued{};
  };

  void WorkerLoop();
  Result<ResultSet> RunJob(Job* job);

  /// Resolves the registry handles once at construction (all null when
  /// metrics are disabled, so every record site is a single branch).
  void InitMetrics();

  /// Offers one finished pool request to the slow-query log (stats_mu_
  /// must be held). Keeps the top-K by latency.
  void NoteSlowQueryLocked(const Job& job, RouteKind route, double seconds,
                           const cqa::HippoStats* hippo_stats);

  /// Captures master_ under the commit lock and swaps it in as the current
  /// snapshot (next epoch).
  Status Publish();

  ServiceOptions options_;

  /// Serializes the write path: master_ mutations + snapshot publication.
  std::mutex commit_mu_;
  Database master_;
  uint64_t next_epoch_ = 0;

  /// Guards current_ only (pointer swap; readers copy the shared_ptr out).
  mutable std::mutex snapshot_mu_;
  SnapshotPtr current_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;  ///< workers wait for jobs / shutdown
  std::condition_variable space_cv_;  ///< submitters wait for queue slots
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  mutable std::mutex stats_mu_;
  ServiceStats stats_;
  /// Slow-query log (top-K by latency, unordered; sorted on read). Guarded
  /// by stats_mu_.
  std::vector<SlowQuery> slow_log_;

  /// Per-service registry (null when ServiceOptions::enable_metrics is
  /// false) plus handles resolved once at construction. The handles point
  /// into metrics_, so recording on the hot path is branch + relaxed
  /// atomics — no map lookups, no locks.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  obs::Counter* m_commits_ = nullptr;
  obs::Counter* m_queries_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::LatencyHistogram* m_commit_lock_wait_ = nullptr;
  obs::LatencyHistogram* m_commit_apply_ = nullptr;
  obs::LatencyHistogram* m_detect_incremental_ = nullptr;
  obs::LatencyHistogram* m_detect_redetect_ = nullptr;
  obs::LatencyHistogram* m_commit_publish_ = nullptr;
  obs::LatencyHistogram* m_batch_statements_ = nullptr;
  obs::LatencyHistogram* m_admission_wait_ = nullptr;
  obs::LatencyHistogram* m_queue_wait_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Gauge* m_epoch_ = nullptr;
  obs::LatencyHistogram* m_route_cf_ = nullptr;
  obs::LatencyHistogram* m_route_rewrite_ = nullptr;
  obs::LatencyHistogram* m_route_prover_ = nullptr;
  obs::LatencyHistogram* m_plain_latency_ = nullptr;
  obs::LatencyHistogram* m_core_latency_ = nullptr;
};

}  // namespace hippo::service
