// service::QueryService — a concurrent query-serving facade over Database.
//
// The single-threaded Database answers queries over one mutable instance;
// this layer turns it into a service that many clients can hit at once:
//
//   * Readers acquire the current Snapshot (epoch-versioned, immutable,
//     RCU-style shared_ptr) and evaluate against it — either synchronously
//     on their own thread (see Session) or through the service's bounded
//     worker pool (Submit). Readers never block each other and never block
//     on writers.
//   * Writers go through the asynchronous commit pipeline: CommitAsync
//     admits the script into a bounded MPMC ring (the admission order is
//     the serial commit order) and returns a future<CommitReceipt>. A
//     single pipeline thread drains the ring head in maximal same-class
//     groups:
//       - small (pure-DML) groups are applied to the master through the
//         incremental hypergraph maintainer and published as ONE epoch;
//       - bulk/DDL groups fork the master copy-on-write, apply + re-detect
//         on the fork in a background thread (parallel DetectAll) while
//         small writes keep landing and publishing on the master lineage,
//         then replay those overtaking writes onto the fork and swap the
//         master pointer — publication shrinks to pointer swaps.
//     The blocking Commit() is a thin wrapper (CommitAsync(...).get()).
//
// Ordering guarantee (the epoch-prefix invariant, differential-tested in
// tests/group_commit_test.cc): the snapshot published at epoch E is
// bit-identical — rows, tombstones, edge ids, provenance, answers — to a
// fresh Database applying, in admission-sequence order, exactly the
// commits whose receipt.epoch <= E. An in-flight bulk has a lower sequence
// but a higher epoch than the small writes that overtake it, so every
// epoch's prefix replays one lineage exactly.
//
// Admission control: Submit() enqueues onto a bounded queue serviced by
// num_workers threads; CommitAsync onto the bounded write ring. When full
// the service either blocks the submitter (backpressure, default) or
// rejects with ResourceExhausted, per reject_when_full /
// reject_writes_when_full.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "cqa/engine.h"
#include "db/database.h"
#include "detect/detector.h"
#include "obs/metrics.h"
#include "service/commit_queue.h"
#include "service/snapshot.h"

namespace hippo::service {

class Session;

struct ServiceOptions {
  /// Sentinel for `threads`: keep the per-subsystem fields below.
  static constexpr size_t kPerFieldThreads = static_cast<size_t>(-1);

  /// The one unified thread knob (see EffectiveOptions::Resolve): when set,
  /// it drives the read-pool width, commit-path detection threads, and the
  /// per-query HippoOptions default together (0 = one per hardware
  /// thread). When left at kPerFieldThreads, the individual fields below
  /// apply unchanged — existing callers keep their exact behavior.
  size_t threads = kPerFieldThreads;

  /// Worker threads executing submitted read requests. 0 = one per
  /// hardware thread (ResolveThreadCount). Prefer `threads`.
  size_t num_workers = 0;

  /// Bound on admitted-but-unstarted read requests. Submissions beyond it
  /// block (default) or are rejected, per reject_when_full.
  size_t max_queue_depth = 256;

  /// When the read admission queue is full: true rejects the request
  /// immediately with ResourceExhausted; false blocks the submitter until
  /// a slot frees (backpressure).
  bool reject_when_full = false;

  /// Capacity of the commit admission ring (rounded up to a power of two).
  /// When full, CommitAsync blocks (default) or resolves the receipt with
  /// ResourceExhausted, per reject_writes_when_full.
  size_t write_queue_depth = 256;

  /// When the write ring is full: true resolves the receipt immediately
  /// with ResourceExhausted; false blocks the submitter (backpressure).
  bool reject_writes_when_full = false;

  /// Upper bound on commits coalesced into one group (one incremental
  /// maintenance pass, one published epoch). Larger groups amortize
  /// publication across more writers at the cost of receipt latency for
  /// the first commit of a burst.
  size_t max_group_commits = 64;

  /// Commit scripts with at least this many statements skip per-row
  /// incremental maintenance and re-detect the hypergraph from scratch
  /// (with `detect`, typically parallel) — for bulk loads, one full
  /// parallel pass beats a hash-probe per row.
  size_t bulk_redetect_statements = 1024;

  /// Run bulk/DDL re-detections asynchronously on a copy-on-write fork of
  /// the master while small commits keep publishing (the non-blocking
  /// pipeline). false re-detects inline on the pipeline thread — small
  /// commits queue behind the bulk, as the pre-pipeline service did
  /// (bench_f9_concurrency's F9d table measures the difference).
  bool async_bulk_redetect = true;

  /// Detection options for commit-path re-detection (bulk commits,
  /// constraint DDL). num_threads defaults to 0 = all hardware threads;
  /// shard_rows / partition_rows split a single hot FD, generic-join
  /// constraint, or FK across the pool, so even a one-constraint database
  /// re-detects in parallel and the re-detect window shrinks with the
  /// core count. Invalid combinations (DetectOptions::Validate) fail the
  /// first commit that needs a re-detect, with a clear status.
  DetectOptions detect{/*use_fd_fast_path=*/true, /*num_threads=*/0,
                       /*shard_rows=*/16384, /*partition_rows=*/8192};

  /// Per-service observability: a private obs::MetricsRegistry with
  /// commit-phase timers (ring wait, apply, incremental-vs-redetect,
  /// replay, publish, batch size, group size), admission/queue
  /// instrumentation, per-route query-latency histograms, and the
  /// slow-query log. Recording is a few relaxed atomics per event;
  /// `false` bypasses all of it (the pre-observability hot path —
  /// bench_f14_obs_overhead measures the difference and CI bounds it).
  bool enable_metrics = true;

  /// Capacity of the slow-query log: the top-K pool-executed requests by
  /// latency (any read mode) are retained with route and trace summary.
  /// 0 disables the log. Only kept when enable_metrics is on.
  size_t slow_query_log_size = 16;

  // --- deprecated setters ---------------------------------------------------
  // Kept for source compatibility; new code sets `threads` once and lets
  // EffectiveOptions::Resolve fan it out.

  [[deprecated("set ServiceOptions::threads; EffectiveOptions::Resolve "
               "derives the pool width from it")]]
  ServiceOptions& set_num_workers(size_t n) {
    num_workers = n;
    return *this;
  }

  [[deprecated("set ServiceOptions::threads; EffectiveOptions::Resolve "
               "derives detect.num_threads from it")]]
  ServiceOptions& set_detect_threads(size_t n) {
    detect.num_threads = n;
    return *this;
  }
};

/// The one documented resolution of the three overlapping thread knobs
/// (ServiceOptions::num_workers, DetectOptions::num_threads,
/// cqa::HippoOptions::num_threads). Callers set ServiceOptions::threads
/// once; Resolve fans it out:
///
///   * pool_workers — read-pool width (ResolveThreadCount applied, so the
///     value is always concrete: 0 resolves to the hardware count);
///   * detect       — ServiceOptions::detect with num_threads overridden
///     by the unified knob (commit-path re-detections);
///   * hippo        — the per-query HippoOptions default with num_threads
///     aligned (prover loop / envelope parallelism). Tools pass this to
///     Submit / ConsistentAnswers so a single flag drives all three
///     layers.
///
/// With threads == kPerFieldThreads the legacy per-field values pass
/// through unchanged (hippo keeps HippoOptions' own default).
struct EffectiveOptions {
  size_t pool_workers = 1;
  DetectOptions detect;
  cqa::HippoOptions hippo;

  static EffectiveOptions Resolve(const ServiceOptions& options);
};

/// Per-commit phase timings carried by the receipt. All wall seconds.
struct CommitPhases {
  /// Admission-ring wait: admission to the start of this commit's group
  /// apply (the coalescing delay — what used to be the commit-lock wait).
  double queue_seconds = 0;
  /// Execute() of the group this commit rode in (incremental maintenance
  /// runs inside apply on the small path).
  double apply_seconds = 0;
  /// Standalone re-detection wall time (0 on the incremental path; the
  /// background parallel DetectAll wall on async bulk/DDL rounds).
  double detect_seconds = 0;
  /// Replay of overtaking small commits onto the re-detected fork (async
  /// rounds only).
  double replay_seconds = 0;
  /// Snapshot::Capture + pointer swap for the publishing epoch.
  double publish_seconds = 0;
  /// True when the conflict hypergraph was rebuilt from scratch for this
  /// commit's group (bulk/DDL), false when maintained incrementally.
  bool redetected = false;
};

/// What a writer gets back for one committed script: where it landed and
/// what it cost. `epoch` is the FIRST epoch whose snapshot contains the
/// commit; on async bulk rounds, small commits admitted later may publish
/// (lower) epochs on the master lineage while the bulk's own epoch is the
/// post-swap one.
struct CommitReceipt {
  /// The script's apply status (Execute semantics: statements before a
  /// mid-script error remain applied and are still published). During an
  /// async round the same script is replayed onto the post-DDL lineage,
  /// where statement-level outcomes may differ; the final state is always
  /// that of serial application in sequence order.
  Status status;
  /// Admission ticket: the global serial order of this commit.
  uint64_t sequence = 0;
  /// The publishing epoch (0 with a null snapshot when rejected).
  uint64_t epoch = 0;
  /// Number of commits coalesced into the same published epoch.
  size_t group_size = 0;
  /// The snapshot published at `epoch` — read-your-writes without racing
  /// later commits. Null when the commit was rejected.
  SnapshotPtr snapshot;
  CommitPhases phases;
};

struct ServiceStats {
  uint64_t commits = 0;              ///< commit requests that ran
  uint64_t incremental_commits = 0;  ///< graph maintained per-row
  uint64_t bulk_redetects = 0;       ///< graph rebuilt by full detection
  uint64_t commit_groups = 0;        ///< groups drained (epochs with writes)
  uint64_t async_redetects = 0;      ///< background fork-and-swap rounds
  uint64_t replayed_commits = 0;     ///< small commits replayed onto forks
  size_t max_group_size = 0;         ///< largest coalesced group so far
  uint64_t snapshots_published = 0;
  uint64_t queries_executed = 0;     ///< worker-pool requests completed
  uint64_t queries_rejected = 0;     ///< admission-control rejections
  double publish_seconds_total = 0;  ///< wall time inside Snapshot::Capture
  /// Per-publication capture latencies (seconds) for the serve driver's
  /// publish p50/p95/p99 row. Recording stops after the first 16384
  /// publications so long-lived services stay bounded — past that point the
  /// percentiles describe the recorded prefix only (publish_seconds_total /
  /// snapshots_published still covers the full run). (Marginal-bytes
  /// accounting is intentionally not computed here: callers holding two
  /// SnapshotPtrs can derive it via Snapshot::CollectStorageIdentity +
  /// AccumulateApproxBytes without taxing the commit path.)
  std::vector<double> publish_seconds;
  cqa::HippoStats hippo;             ///< aggregated over pool CQA requests

  /// Per-route latency distributions of pool-executed kConsistent
  /// requests (obs::LatencyHistogram snapshots taken at stats() time, so
  /// p50/p95/p99 are real percentiles, not sums/counts). The rewrite
  /// bucket covers both the ABC and KW first-order methods. Empty when
  /// ServiceOptions::enable_metrics is false.
  obs::HistogramSnapshot conflict_free_latency;
  obs::HistogramSnapshot rewrite_latency;
  obs::HistogramSnapshot prover_latency;
};

class QueryService {
 public:
  /// How a submitted SELECT is answered.
  enum class ReadMode {
    kPlain,       ///< Snapshot::Query — ignore conflicts
    kOverCore,    ///< Snapshot::QueryOverCore — drop all conflicting tuples
    kConsistent,  ///< Snapshot::ConsistentAnswers — the Hippo pipeline
  };

  explicit QueryService(ServiceOptions options = ServiceOptions());
  ~QueryService();
  HIPPO_DISALLOW_COPY(QueryService);

  // --- write path -----------------------------------------------------------

  /// Admits a ';'-separated DDL/DML script into the commit pipeline and
  /// returns a future resolved when its epoch publishes. The admission
  /// order (receipt.sequence) is the serial order of commits; small
  /// scripts coalesce into group commits, bulk/DDL scripts trigger a
  /// (by default asynchronous) full re-detection round. Blocks only on a
  /// full ring (or rejects, per ServiceOptions::reject_writes_when_full);
  /// after Shutdown, resolves immediately with ResourceExhausted.
  std::future<CommitReceipt> CommitAsync(std::string sql);

  /// Admits a batch of scripts back-to-back (their sequences are
  /// contiguous in submission order when no other writer interleaves) and
  /// returns one future per script. The pipeline is free to coalesce them
  /// into fewer epochs.
  std::vector<std::future<CommitReceipt>> CommitMany(
      std::vector<std::string> scripts);

  /// Blocking compatibility wrapper: CommitAsync(sql).get().status. Same
  /// semantics as the pre-pipeline exclusive path — on a mid-script error
  /// the statements already applied remain and are still published; the
  /// error is returned. One epoch is published for the commit's group
  /// (group size 1 when the caller is the only writer).
  Status Commit(const std::string& sql);

  /// Admin escape hatch for tools (hippo_shell's repair/aggregate meta
  /// commands): runs `fn` on the master database, serialized against the
  /// commit pipeline and outside any in-flight async round (it waits for
  /// the round to finish, so the effect cannot be lost to a lineage
  /// swap). When `publish` is true a new epoch is published afterwards.
  /// Mutations made here bypass the receipt/ordering protocol — use
  /// CommitAsync for anything that must participate in the epoch-prefix
  /// invariant.
  Status WithMaster(const std::function<Status(Database&)>& fn,
                    bool publish = false);

  // --- read path ------------------------------------------------------------

  /// The most recently published snapshot. Never null after construction
  /// (epoch 0 is the empty instance).
  SnapshotPtr snapshot() const;

  /// The epoch of the current snapshot.
  uint64_t epoch() const;

  /// Opens a session pinned to the current snapshot (see Session).
  Session OpenSession();

  /// Enqueues a read for the worker pool, pinned to `snap` (or to the
  /// current snapshot when null). The future carries the result or the
  /// error — including ResourceExhausted when admission control rejects.
  std::future<Result<ResultSet>> Submit(
      ReadMode mode, std::string select_sql, SnapshotPtr snap = nullptr,
      cqa::HippoOptions options = cqa::HippoOptions());

  // --- lifecycle / inspection ----------------------------------------------

  /// Stops admission, drains everything already admitted (every
  /// outstanding commit future resolves, in order, including an in-flight
  /// async round), joins the pipeline and the workers. Called by the
  /// destructor; idempotent. Submissions after (or racing) shutdown
  /// resolve to ResourceExhausted.
  void Shutdown();

  ServiceStats stats() const;

  size_t num_workers() const { return workers_.size(); }

  // --- observability ---------------------------------------------------------

  /// One retained slow-query-log entry (see ServiceOptions::
  /// slow_query_log_size): the request, its route, latency, epoch, and a
  /// one-line summary (the caller's trace summary when the request carried
  /// a trace, otherwise synthesized from its HippoStats).
  struct SlowQuery {
    std::string sql;
    ReadMode mode = ReadMode::kPlain;
    RouteKind route = RouteKind::kNone;
    double seconds = 0;
    uint64_t epoch = 0;
    std::string summary;
  };

  /// The slow-query log, sorted by latency descending. Empty when metrics
  /// are disabled.
  std::vector<SlowQuery> SlowQueries() const;

  /// The service's metrics registry (null when disabled). Commit-phase
  /// timers, queue instrumentation, and per-route latency live here.
  const obs::MetricsRegistry* metrics() const { return metrics_.get(); }

  /// Prometheus-style text exposition of the service registry; empty
  /// string when metrics are disabled.
  std::string DumpMetrics() const;

  /// The same snapshot as a single JSON object ("{}" when disabled).
  std::string DumpMetricsJson() const;

 private:
  struct Job {
    ReadMode mode = ReadMode::kPlain;
    std::string sql;
    SnapshotPtr snapshot;
    cqa::HippoOptions options;
    std::promise<Result<ResultSet>> done;
    /// Enqueue instant for the queue-wait histogram (meaningful only when
    /// metrics are enabled).
    std::chrono::steady_clock::time_point enqueued{};
  };

  /// One admitted commit inside the pipeline. Default-constructible (the
  /// ring's cells hold them by value).
  struct CommitRequest {
    std::string sql;
    std::promise<CommitReceipt> done;
    uint64_t sequence = 0;     ///< admission ticket (serial order)
    size_t statements = 0;
    bool redetect = false;     ///< bulk or DDL: full re-detection class
    Status applied;            ///< per-script Execute status (set at apply)
    double queue_seconds = 0;  ///< admission -> group apply start
    std::chrono::steady_clock::time_point admitted{};
  };

  void WorkerLoop();
  Result<ResultSet> RunJob(Job* job);

  // --- commit pipeline internals --------------------------------------------

  /// The single pipeline thread: drains maximal same-class groups from the
  /// ring head, processes small groups inline, dispatches redetect groups
  /// to async rounds (or inline when async_bulk_redetect is off), and
  /// completes finished rounds.
  void CommitPipelineLoop();

  /// Applies a small (pure-DML) group to the master through the
  /// incremental maintainer, publishes one epoch, resolves the receipts.
  void ProcessSmallGroup(std::vector<CommitRequest> group);

  /// The synchronous bulk/DDL path (async_bulk_redetect off): drop the
  /// maintainer, apply, re-detect inline, publish.
  void ProcessSyncRedetect(std::vector<CommitRequest> group);

  /// Forks the master COW and hands the group to a background thread
  /// (apply + parallel re-detect on the fork); the pipeline keeps
  /// processing small groups on the master lineage meanwhile.
  void StartAsyncRound(std::vector<CommitRequest> group);

  /// Joins the background detect, replays overtaking small commits onto
  /// the fork, swaps the master pointer, publishes, resolves the round's
  /// receipts.
  void FinishAsyncRound();

  /// Resolves one group's receipts against a published snapshot, and
  /// records the shared stats/metrics for the group.
  void ResolveGroup(std::vector<CommitRequest>* group, Status published,
                    const SnapshotPtr& snap, const CommitPhases& shared);

  /// Resolves one request as rejected (never admitted).
  static void Reject(CommitRequest* req, Status why);

  /// Resolves the registry handles once at construction (all null when
  /// metrics are disabled, so every record site is a single branch).
  void InitMetrics();

  /// Offers one finished pool request to the slow-query log (stats_mu_
  /// must be held). Keeps the top-K by latency.
  void NoteSlowQueryLocked(const Job& job, RouteKind route, double seconds,
                           const cqa::HippoStats* hippo_stats);

  /// Captures master_ (caller holds master_mu_) and swaps it in as the
  /// current snapshot (next epoch). `out`, when non-null, receives the
  /// published snapshot.
  Status Publish(SnapshotPtr* out = nullptr);

  ServiceOptions options_;

  /// Guards the master lineage: group apply + publish, async-round fork
  /// and swap, next_epoch_, round_in_flight_, and WithMaster. Never held
  /// during background detection — that runs on the private fork.
  std::mutex master_mu_;
  std::condition_variable master_cv_;  ///< signaled when a round completes
  std::unique_ptr<Database> master_;
  uint64_t next_epoch_ = 0;
  bool round_in_flight_ = false;

  /// Guards current_ only (pointer swap; readers copy the shared_ptr out).
  mutable std::mutex snapshot_mu_;
  SnapshotPtr current_;

  // --- commit admission + pipeline wakeup -----------------------------------
  MpmcRing<CommitRequest> write_ring_;
  /// The admission gate and pipeline signal mutex: held briefly for
  /// push+stopping checks, cv waits, and the detect-done handshake —
  /// never during apply/detect/publish work.
  std::mutex pipeline_mu_;
  std::condition_variable pipeline_cv_;     ///< pipeline waits for work
  std::condition_variable write_space_cv_;  ///< writers wait for ring space
  bool commits_stopping_ = false;           ///< guarded by pipeline_mu_
  std::thread pipeline_;

  // Async-round state. round_group_/fork_ are handed to the detect thread
  // at round start and reclaimed by the pipeline only after the
  // detect_done_ handshake (all under pipeline_mu_), so no concurrent
  // access ever occurs. replay_log_ is pipeline-thread-only.
  std::thread detect_thread_;
  bool detect_done_ = false;          ///< guarded by pipeline_mu_
  Status detect_status_;              ///< written before detect_done_
  double round_apply_seconds_ = 0;    ///< written before detect_done_
  double round_detect_seconds_ = 0;   ///< written before detect_done_
  std::unique_ptr<Database> fork_;
  std::vector<CommitRequest> round_group_;
  std::vector<std::string> replay_log_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;  ///< workers wait for jobs / shutdown
  std::condition_variable space_cv_;  ///< submitters wait for queue slots
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  mutable std::mutex stats_mu_;
  ServiceStats stats_;
  /// Slow-query log (top-K by latency, unordered; sorted on read). Guarded
  /// by stats_mu_.
  std::vector<SlowQuery> slow_log_;

  /// Per-service registry (null when ServiceOptions::enable_metrics is
  /// false) plus handles resolved once at construction. The handles point
  /// into metrics_, so recording on the hot path is branch + relaxed
  /// atomics — no map lookups, no locks.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  obs::Counter* m_commits_ = nullptr;
  obs::Counter* m_queries_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::LatencyHistogram* m_commit_lock_wait_ = nullptr;
  obs::LatencyHistogram* m_commit_apply_ = nullptr;
  obs::LatencyHistogram* m_detect_incremental_ = nullptr;
  obs::LatencyHistogram* m_detect_redetect_ = nullptr;
  obs::LatencyHistogram* m_commit_replay_ = nullptr;
  obs::LatencyHistogram* m_commit_publish_ = nullptr;
  obs::LatencyHistogram* m_batch_statements_ = nullptr;
  obs::LatencyHistogram* m_group_size_ = nullptr;
  obs::LatencyHistogram* m_admission_wait_ = nullptr;
  obs::LatencyHistogram* m_queue_wait_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Gauge* m_epoch_ = nullptr;
  obs::LatencyHistogram* m_route_cf_ = nullptr;
  obs::LatencyHistogram* m_route_rewrite_ = nullptr;
  obs::LatencyHistogram* m_route_prover_ = nullptr;
  obs::LatencyHistogram* m_plain_latency_ = nullptr;
  obs::LatencyHistogram* m_core_latency_ = nullptr;
};

}  // namespace hippo::service
