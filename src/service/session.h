// service::Session — a client handle pinned to one snapshot epoch.
//
// A session captures the current snapshot when opened (or refreshed) and
// answers every query against that frozen epoch: repeatable reads across
// the whole session, unaffected by concurrent commits. Sessions are cheap
// (a shared_ptr and a service pointer), copyable, and safe to use from the
// owning thread while other sessions run on other threads.
//
//   Session s = service.OpenSession();        // pins the current epoch
//   auto rs = s.ConsistentAnswers("SELECT ...");
//   ... (a writer commits; s still answers at its pinned epoch) ...
//   s.Refresh();                              // jump to the latest epoch
//
// Queries can run synchronously on the caller's thread (Query/
// QueryOverCore/ConsistentAnswers) or be handed to the service's worker
// pool (Submit), still pinned to the session's snapshot.
#pragma once

#include <cstdint>
#include <future>
#include <string>

#include "common/status.h"
#include "cqa/engine.h"
#include "exec/executor.h"
#include "service/query_service.h"
#include "service/snapshot.h"

namespace hippo::service {

class Session {
 public:
  /// Pins the service's current snapshot. (Usually obtained through
  /// QueryService::OpenSession.)
  explicit Session(QueryService* service)
      : service_(service), snapshot_(service->snapshot()) {}

  /// The epoch this session reads at.
  uint64_t epoch() const { return snapshot_->epoch(); }

  const SnapshotPtr& snapshot() const { return snapshot_; }

  /// Re-pins to the service's latest published snapshot.
  void Refresh() { snapshot_ = service_->snapshot(); }

  // --- writes ----------------------------------------------------------------

  /// Read-your-writes: commits `sql` through the service's asynchronous
  /// pipeline, waits for its epoch to publish, and re-pins the session to
  /// the snapshot that contains the commit (the receipt's snapshot — not
  /// "latest", which could already be a later epoch from another writer).
  /// On rejection the pinned snapshot is unchanged.
  CommitReceipt CommitAndRefresh(std::string sql) {
    CommitReceipt receipt = service_->CommitAsync(std::move(sql)).get();
    if (receipt.snapshot != nullptr) snapshot_ = receipt.snapshot;
    return receipt;
  }

  // --- synchronous reads on the caller's thread ----------------------------

  Result<ResultSet> Query(const std::string& select_sql) const {
    return snapshot_->Query(select_sql);
  }

  Result<ResultSet> QueryOverCore(const std::string& select_sql) const {
    return snapshot_->QueryOverCore(select_sql);
  }

  Result<ResultSet> ConsistentAnswers(
      const std::string& select_sql,
      const cqa::HippoOptions& options = cqa::HippoOptions(),
      cqa::HippoStats* stats = nullptr) const {
    return snapshot_->ConsistentAnswers(select_sql, options, stats);
  }

  /// EXPLAIN ANALYZE at the pinned epoch (see Snapshot::ExplainAnalyze).
  Result<std::string> ExplainAnalyze(
      const std::string& select_sql,
      const cqa::HippoOptions& options = cqa::HippoOptions(),
      cqa::HippoStats* stats = nullptr) const {
    return snapshot_->ExplainAnalyze(select_sql, options, stats);
  }

  // --- asynchronous reads through the service's worker pool ----------------

  std::future<Result<ResultSet>> Submit(
      QueryService::ReadMode mode, std::string select_sql,
      cqa::HippoOptions options = cqa::HippoOptions()) const {
    return service_->Submit(mode, std::move(select_sql), snapshot_,
                            std::move(options));
  }

 private:
  QueryService* service_;
  SnapshotPtr snapshot_;
};

}  // namespace hippo::service
