// Denial constraints — the integrity-constraint class supported by Hippo.
//
// A denial constraint forbids a combination of tuples:
//
//     ¬ ( R1(x̄1) ∧ R2(x̄2) ∧ ... ∧ Rk(x̄k) ∧ φ(x̄1..x̄k) )
//
// i.e. no assignment of tuples to the atoms may satisfy φ. Functional
// dependencies and exclusion constraints are special cases and are expanded
// into this form. The class is closed under tuple deletions, so repairs are
// maximal consistent subsets of the instance.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "expr/expr.h"
#include "sql/ast.h"

namespace hippo {

/// One atom of a denial constraint.
struct ConstraintAtom {
  uint32_t table_id = 0;
  std::string table_name;
  std::string alias;
};

/// Extra structure retained when a constraint originated as an FD; enables
/// the hash-grouping fast path in conflict detection.
struct FdInfo {
  uint32_t table_id = 0;
  std::vector<size_t> lhs;  ///< column indexes of the determinant
  std::vector<size_t> rhs;  ///< column indexes of the dependent side
};

/// \brief A bound denial constraint.
class DenialConstraint {
 public:
  /// General form. `where` may be null (the atoms may never all hold);
  /// otherwise it is bound here against the concatenation of the atom
  /// schemas, each qualified by its alias.
  static Result<DenialConstraint> Make(const Catalog& catalog,
                                       std::string name,
                                       std::vector<sql::TableRef> atoms,
                                       ExprPtr where);

  /// FD `lhs -> rhs` on one table: two distinct tuples may not agree on all
  /// of `lhs` while differing on any column of `rhs`.
  static Result<DenialConstraint> FromFd(const Catalog& catalog,
                                         std::string name,
                                         const sql::FdSpec& spec);

  /// Exclusion: no tuple of `table1` and tuple of `table2` agree
  /// position-wise on the listed columns.
  static Result<DenialConstraint> FromExclusion(const Catalog& catalog,
                                                std::string name,
                                                const sql::ExclusionSpec& spec);

  /// Dispatch over a parsed CREATE CONSTRAINT statement.
  static Result<DenialConstraint> FromStatement(
      const Catalog& catalog, const sql::CreateConstraintStmt& stmt);

  const std::string& name() const { return name_; }
  const std::vector<ConstraintAtom>& atoms() const { return atoms_; }
  size_t arity() const { return atoms_.size(); }

  /// Bound condition over `combined_schema()`; null means TRUE.
  const Expr* condition() const { return condition_.get(); }

  /// Concatenation of atom schemas (alias-qualified), the binding scope of
  /// `condition()`.
  const Schema& combined_schema() const { return combined_schema_; }

  /// Start of atom `i`'s columns within the combined schema.
  size_t atom_offset(size_t i) const { return offsets_[i]; }
  size_t atom_width(size_t i) const { return widths_[i]; }

  /// Present when this constraint came from an FD.
  const std::optional<FdInfo>& fd_info() const { return fd_info_; }

  /// Binary constraints (two atoms) are the class the query-rewriting
  /// baseline supports.
  bool IsBinary() const { return atoms_.size() == 2; }
  bool IsUnary() const { return atoms_.size() == 1; }

  std::string ToString() const;

  /// Deep copy (clones the bound condition). The class is otherwise
  /// move-only; service::Snapshot uses this to freeze the constraint set
  /// alongside the instance it was declared over.
  DenialConstraint Clone() const;

  DenialConstraint(DenialConstraint&&) = default;
  DenialConstraint& operator=(DenialConstraint&&) = default;

 private:
  DenialConstraint() = default;

  std::string name_;
  std::vector<ConstraintAtom> atoms_;
  ExprPtr condition_;
  Schema combined_schema_;
  std::vector<size_t> offsets_;
  std::vector<size_t> widths_;
  std::optional<FdInfo> fd_info_;
};

}  // namespace hippo
