// Restricted foreign-key constraints — the first item of the paper's
// future-work list ("support for restricted foreign key constraints").
//
// A foreign key child(cols) REFERENCES parent(cols) is *not* a denial
// constraint: a violation is a child tuple with no matching parent, and in
// general deletion-repairs cascade (removing a parent tuple orphans
// children), which the conflict hypergraph cannot express. The restriction
// that keeps repairs hypergraph-representable — and which Hippo enforces —
// is that the PARENT relation is immutable across repairs: it may not
// appear in any denial constraint, be the child of any foreign key, or be
// the parent of one while carrying other constraints. Then an orphaned
// child tuple is inconsistent on its own (no repair can give it a parent),
// i.e. a unary hyperedge, and all of Hippo's machinery applies unchanged.
#pragma once

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "sql/ast.h"

namespace hippo {

class ForeignKeyConstraint {
 public:
  /// Validates tables/columns and type compatibility.
  static Result<ForeignKeyConstraint> Make(
      const Catalog& catalog, std::string name, const std::string& child,
      const std::vector<std::string>& child_cols, const std::string& parent,
      const std::vector<std::string>& parent_cols);

  const std::string& name() const { return name_; }
  uint32_t child_table() const { return child_table_; }
  uint32_t parent_table() const { return parent_table_; }
  const std::vector<size_t>& child_columns() const { return child_cols_; }
  const std::vector<size_t>& parent_columns() const { return parent_cols_; }

  std::string ToString() const;

 private:
  ForeignKeyConstraint() = default;

  std::string name_;
  uint32_t child_table_ = 0;
  uint32_t parent_table_ = 0;
  std::vector<size_t> child_cols_;
  std::vector<size_t> parent_cols_;
  std::string child_name_;
  std::string parent_name_;
};

}  // namespace hippo
