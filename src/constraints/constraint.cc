#include "constraints/constraint.h"

#include <unordered_set>

#include "common/str_util.h"
#include "expr/binder.h"

namespace hippo {

Result<DenialConstraint> DenialConstraint::Make(
    const Catalog& catalog, std::string name,
    std::vector<sql::TableRef> atom_refs, ExprPtr where) {
  if (atom_refs.empty()) {
    return Status::InvalidArgument("denial constraint needs at least one atom");
  }
  DenialConstraint dc;
  dc.name_ = ToLower(name);
  std::unordered_set<std::string> seen_aliases;
  for (const sql::TableRef& ref : atom_refs) {
    HIPPO_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(ref.table));
    ConstraintAtom atom;
    atom.table_id = table->id();
    atom.table_name = table->name();
    atom.alias = ToLower(ref.EffectiveAlias());
    if (!seen_aliases.insert(atom.alias).second) {
      return Status::InvalidArgument("duplicate atom alias in constraint " +
                                     dc.name_ + ": " + atom.alias);
    }
    dc.offsets_.push_back(dc.combined_schema_.NumColumns());
    dc.widths_.push_back(table->schema().NumColumns());
    Schema qualified = table->schema().WithQualifier(atom.alias);
    for (const Column& c : qualified.columns()) {
      dc.combined_schema_.AddColumn(c);
    }
    dc.atoms_.push_back(std::move(atom));
  }
  if (where != nullptr) {
    ExprBinder binder(dc.combined_schema_);
    HIPPO_RETURN_NOT_OK(binder.BindPredicate(where.get()));
    dc.condition_ = std::move(where);
  }
  return dc;
}

Result<DenialConstraint> DenialConstraint::FromFd(const Catalog& catalog,
                                                  std::string name,
                                                  const sql::FdSpec& spec) {
  HIPPO_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(spec.table));
  const Schema& schema = table->schema();
  if (spec.lhs.empty() || spec.rhs.empty()) {
    return Status::InvalidArgument(
        "FD needs non-empty determinant and dependent column lists");
  }

  FdInfo info;
  info.table_id = table->id();
  auto resolve = [&](const std::vector<std::string>& names,
                     std::vector<size_t>* out) -> Status {
    for (const std::string& n : names) {
      HIPPO_ASSIGN_OR_RETURN(size_t idx, schema.ResolveColumn("", n));
      out->push_back(idx);
    }
    return Status::OK();
  };
  HIPPO_RETURN_NOT_OK(resolve(spec.lhs, &info.lhs));
  HIPPO_RETURN_NOT_OK(resolve(spec.rhs, &info.rhs));

  // Build: t1.lhs = t2.lhs ∧ (t1.rhs1 <> t2.rhs1 ∨ ...). Indexes are bound
  // directly over the two-copy combined schema (t2's copy offset by width).
  size_t width = schema.NumColumns();
  std::vector<ExprPtr> conjuncts;
  for (size_t idx : info.lhs) {
    conjuncts.push_back(std::make_unique<ComparisonExpr>(
        CompareOp::kEq,
        ColumnRefExpr::Bound(idx, schema.column(idx).type,
                             schema.column(idx).name, "t1"),
        ColumnRefExpr::Bound(width + idx, schema.column(idx).type,
                             schema.column(idx).name, "t2")));
    conjuncts.back()->set_result_type(TypeId::kBool);
  }
  std::vector<ExprPtr> disjuncts;
  for (size_t idx : info.rhs) {
    disjuncts.push_back(std::make_unique<ComparisonExpr>(
        CompareOp::kNe,
        ColumnRefExpr::Bound(idx, schema.column(idx).type,
                             schema.column(idx).name, "t1"),
        ColumnRefExpr::Bound(width + idx, schema.column(idx).type,
                             schema.column(idx).name, "t2")));
    disjuncts.back()->set_result_type(TypeId::kBool);
  }
  ExprPtr differ;
  if (disjuncts.size() == 1) {
    differ = std::move(disjuncts[0]);
  } else {
    differ = std::make_unique<LogicalExpr>(LogicalOp::kOr,
                                           std::move(disjuncts));
    differ->set_result_type(TypeId::kBool);
  }
  conjuncts.push_back(std::move(differ));
  ExprPtr condition = AndAll(std::move(conjuncts));

  std::vector<sql::TableRef> atoms;
  atoms.push_back(sql::TableRef{spec.table, "t1"});
  atoms.push_back(sql::TableRef{spec.table, "t2"});
  HIPPO_ASSIGN_OR_RETURN(
      DenialConstraint dc,
      Make(catalog, std::move(name), std::move(atoms), std::move(condition)));
  dc.fd_info_ = std::move(info);
  return dc;
}

Result<DenialConstraint> DenialConstraint::FromExclusion(
    const Catalog& catalog, std::string name, const sql::ExclusionSpec& spec) {
  HIPPO_ASSIGN_OR_RETURN(const Table* t1, catalog.GetTable(spec.table1));
  HIPPO_ASSIGN_OR_RETURN(const Table* t2, catalog.GetTable(spec.table2));
  if (spec.cols1.size() != spec.cols2.size() || spec.cols1.empty()) {
    return Status::InvalidArgument(
        "exclusion constraint needs matching non-empty column lists");
  }
  size_t width1 = t1->schema().NumColumns();
  std::vector<ExprPtr> conjuncts;
  for (size_t i = 0; i < spec.cols1.size(); ++i) {
    HIPPO_ASSIGN_OR_RETURN(size_t i1,
                           t1->schema().ResolveColumn("", spec.cols1[i]));
    HIPPO_ASSIGN_OR_RETURN(size_t i2,
                           t2->schema().ResolveColumn("", spec.cols2[i]));
    conjuncts.push_back(std::make_unique<ComparisonExpr>(
        CompareOp::kEq,
        ColumnRefExpr::Bound(i1, t1->schema().column(i1).type,
                             t1->schema().column(i1).name, "t1"),
        ColumnRefExpr::Bound(width1 + i2, t2->schema().column(i2).type,
                             t2->schema().column(i2).name, "t2")));
    conjuncts.back()->set_result_type(TypeId::kBool);
  }
  std::vector<sql::TableRef> atoms;
  atoms.push_back(sql::TableRef{spec.table1, "t1"});
  atoms.push_back(sql::TableRef{spec.table2, "t2"});
  return Make(catalog, std::move(name), std::move(atoms),
              AndAll(std::move(conjuncts)));
}

Result<DenialConstraint> DenialConstraint::FromStatement(
    const Catalog& catalog, const sql::CreateConstraintStmt& stmt) {
  if (const auto* fd = std::get_if<sql::FdSpec>(&stmt.spec)) {
    return FromFd(catalog, stmt.name, *fd);
  }
  if (const auto* ex = std::get_if<sql::ExclusionSpec>(&stmt.spec)) {
    return FromExclusion(catalog, stmt.name, *ex);
  }
  const auto& denial = std::get<sql::DenialSpec>(stmt.spec);
  std::vector<sql::TableRef> atoms = denial.atoms;
  ExprPtr where =
      denial.where == nullptr ? nullptr : denial.where->Clone();
  return Make(catalog, stmt.name, std::move(atoms), std::move(where));
}

DenialConstraint DenialConstraint::Clone() const {
  DenialConstraint copy;
  copy.name_ = name_;
  copy.atoms_ = atoms_;
  copy.condition_ = condition_ != nullptr ? condition_->Clone() : nullptr;
  copy.combined_schema_ = combined_schema_;
  copy.offsets_ = offsets_;
  copy.widths_ = widths_;
  copy.fd_info_ = fd_info_;
  return copy;
}

std::string DenialConstraint::ToString() const {
  std::string out = name_ + ": NOT (";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += atoms_[i].table_name + " AS " + atoms_[i].alias;
  }
  if (condition_ != nullptr) {
    out += " WHERE " + condition_->ToString();
  }
  out += ")";
  return out;
}

}  // namespace hippo
