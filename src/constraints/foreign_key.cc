#include "constraints/foreign_key.h"

#include "common/str_util.h"

namespace hippo {

Result<ForeignKeyConstraint> ForeignKeyConstraint::Make(
    const Catalog& catalog, std::string name, const std::string& child,
    const std::vector<std::string>& child_cols, const std::string& parent,
    const std::vector<std::string>& parent_cols) {
  if (child_cols.empty() || child_cols.size() != parent_cols.size()) {
    return Status::InvalidArgument(
        "foreign key needs matching non-empty column lists");
  }
  HIPPO_ASSIGN_OR_RETURN(const Table* child_t, catalog.GetTable(child));
  HIPPO_ASSIGN_OR_RETURN(const Table* parent_t, catalog.GetTable(parent));
  if (child_t->id() == parent_t->id()) {
    return Status::NotSupported(
        "self-referencing foreign keys are outside the restricted class "
        "(the parent relation must be immutable across repairs)");
  }
  ForeignKeyConstraint fk;
  fk.name_ = ToLower(name);
  fk.child_table_ = child_t->id();
  fk.parent_table_ = parent_t->id();
  fk.child_name_ = child_t->name();
  fk.parent_name_ = parent_t->name();
  for (size_t i = 0; i < child_cols.size(); ++i) {
    HIPPO_ASSIGN_OR_RETURN(size_t ci,
                           child_t->schema().ResolveColumn("", child_cols[i]));
    HIPPO_ASSIGN_OR_RETURN(
        size_t pi, parent_t->schema().ResolveColumn("", parent_cols[i]));
    TypeId ct = child_t->schema().column(ci).type;
    TypeId pt = parent_t->schema().column(pi).type;
    bool numeric_pair = (ct == TypeId::kInt || ct == TypeId::kDouble) &&
                        (pt == TypeId::kInt || pt == TypeId::kDouble);
    if (ct != pt && !numeric_pair) {
      return Status::TypeError(StrFormat(
          "foreign key column type mismatch: %s.%s (%s) vs %s.%s (%s)",
          child.c_str(), child_cols[i].c_str(), TypeIdToString(ct),
          parent.c_str(), parent_cols[i].c_str(), TypeIdToString(pt)));
    }
    fk.child_cols_.push_back(ci);
    fk.parent_cols_.push_back(pi);
  }
  return fk;
}

std::string ForeignKeyConstraint::ToString() const {
  return name_ + ": FOREIGN KEY " + child_name_ + " -> " + parent_name_;
}

}  // namespace hippo
