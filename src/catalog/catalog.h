// The catalog: named tables of the database instance.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace hippo {

/// \brief Owns all base tables; names are case-insensitive.
class Catalog {
 public:
  Catalog() = default;
  HIPPO_DISALLOW_COPY(Catalog);
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Deep copy of the whole instance: every table (schema, rows, tombstones,
  /// row index) is duplicated, preserving table ids and RowIds exactly, so a
  /// conflict hypergraph built against `this` remains valid against the
  /// clone. Used by service::Snapshot to freeze an epoch.
  Catalog Clone() const;

  /// Creates a table; AlreadyExists if the name is taken. Re-creating a
  /// dropped name allocates a fresh table id — slots are never reused,
  /// since table ids are RowId components.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Unregisters a table by name. The storage slot is retained so existing
  /// table ids (and RowIds) stay valid, but the name no longer resolves.
  /// NotFound if absent. Constraint-reference checks are the caller's job
  /// (Database::Execute refuses to drop constrained tables).
  Status DropTable(const std::string& name);

  /// NotFound if absent.
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  /// Table by ordinal id (as stored in RowId::table).
  const Table& table(uint32_t id) const { return *tables_[id]; }
  Table& table(uint32_t id) { return *tables_[id]; }

  size_t NumTables() const { return tables_.size(); }

  /// Total number of rows across all tables.
  size_t TotalRows() const;

  /// Fetches the row behind a RowId.
  const Row& RowOf(RowId rid) const { return tables_[rid.table]->row(rid.row); }

  std::vector<std::string> TableNames() const;

 private:
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, uint32_t> by_name_;  // lower-cased name
};

}  // namespace hippo
