// The catalog: named tables of the database instance.
//
// Table slots are held behind shared_ptr with copy-on-write semantics so an
// epoch snapshot (service::Snapshot) can share every untouched table with
// the live catalog instead of deep-copying the whole instance: Share()
// publishes a structurally shared copy in O(#tables), and the first mutation
// of a table after a Share() clones just that table (MutableTable). Table
// ids and RowIds are preserved by both Share() and Clone(), so a conflict
// hypergraph built against one copy remains valid against the other.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace hippo {

/// \brief Owns all base tables; names are case-insensitive.
class Catalog {
 public:
  Catalog() = default;
  HIPPO_DISALLOW_COPY(Catalog);
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Deep copy of the whole instance: every table (schema, rows, tombstones,
  /// row index) is duplicated, preserving table ids and RowIds exactly.
  /// O(database); kept as the baseline the COW differential tests and
  /// bench_f10_snapshot compare Share() against.
  Catalog Clone() const;

  /// Structurally shared copy: the returned catalog points at the same
  /// immutable Table objects, and every slot of *both* catalogs is marked
  /// shared so the next mutation through MutableTable()/GetTable() clones
  /// only the touched table (copy-on-write). O(#tables). Requires exclusion
  /// from concurrent mutators, exactly like Clone(); the returned copy is
  /// meant to be frozen (service::Snapshot never mutates it).
  Catalog Share();

  /// Creates a table; AlreadyExists if the name is taken. Re-creating a
  /// dropped name allocates a fresh table id — slots are never reused,
  /// since table ids are RowId components.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Unregisters a table by name. The storage slot is retained so existing
  /// table ids (and RowIds) stay valid, but the name no longer resolves.
  /// NotFound if absent. Constraint-reference checks are the caller's job
  /// (Database::Execute refuses to drop constrained tables).
  Status DropTable(const std::string& name);

  /// NotFound if absent. The non-const overload is the copy-on-write
  /// mutation path: it unshares the slot first (see MutableTable).
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  /// Table by ordinal id (as stored in RowId::table). The non-const
  /// overload unshares the slot (copy-on-write) before handing it out.
  const Table& table(uint32_t id) const { return *slots_[id].table; }
  Table& table(uint32_t id) { return MutableTable(id); }

  /// Copy-on-write accessor: when the slot is shared with a snapshot, the
  /// table is cloned (O(table)) and the private clone returned; otherwise
  /// the existing object is returned unchanged. The pointer stays valid
  /// until the next Share() of this catalog.
  Table& MutableTable(uint32_t id);

  /// The shared slot itself — exposes structural identity so tests and the
  /// memory accounting can check that untouched tables are pointer-equal
  /// across epochs.
  std::shared_ptr<const Table> TableRef(uint32_t id) const {
    return slots_[id].table;
  }

  size_t NumTables() const { return slots_.size(); }

  /// Total number of rows across all tables.
  size_t TotalRows() const;

  /// Fetches the row behind a RowId.
  const Row& RowOf(RowId rid) const {
    return slots_[rid.table].table->row(rid.row);
  }

  std::vector<std::string> TableNames() const;

  /// Rough resident bytes of the whole instance (sum of Table::ApproxBytes).
  size_t ApproxBytes() const;

  /// Adds the bytes of every table whose storage is not already in `seen`
  /// (keyed by Table object identity) to `*bytes`, inserting as it goes.
  /// Accumulating several snapshots against one `seen` set yields their
  /// true combined footprint under structural sharing.
  void AccumulateApproxBytes(std::unordered_set<const void*>* seen,
                             size_t* bytes) const;

 private:
  struct Slot {
    std::shared_ptr<Table> table;
    /// True when `table` may also be referenced by a Share()d copy; the
    /// next mutation must clone (copy-on-write). Never consulted on the
    /// frozen side of a Share().
    bool shared = false;
  };

  std::vector<Slot> slots_;
  std::unordered_map<std::string, uint32_t> by_name_;  // lower-cased name
};

}  // namespace hippo
