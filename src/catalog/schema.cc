#include "catalog/schema.h"

#include "common/str_util.h"

namespace hippo {

Result<size_t> Schema::ResolveColumn(const std::string& qualifier,
                                     const std::string& name) const {
  std::optional<size_t> found;
  for (size_t i = 0; i < cols_.size(); ++i) {
    const Column& c = cols_[i];
    if (!EqualsIgnoreCase(c.name, name)) continue;
    if (!qualifier.empty() && !EqualsIgnoreCase(c.qualifier, qualifier)) {
      continue;
    }
    if (found.has_value()) {
      return Status::InvalidArgument(
          "ambiguous column reference: " +
          (qualifier.empty() ? name : qualifier + "." + name));
    }
    found = i;
  }
  if (!found.has_value()) {
    return Status::NotFound("column not found: " +
                            (qualifier.empty() ? name : qualifier + "." + name));
  }
  return *found;
}

Schema Schema::WithQualifier(const std::string& q) const {
  Schema out;
  for (const Column& c : cols_) {
    out.AddColumn(Column(c.name, c.type, q));
  }
  return out;
}

Schema Schema::Concat(const Schema& a, const Schema& b) {
  Schema out = a;
  for (const Column& c : b.columns()) out.AddColumn(c);
  return out;
}

bool Schema::UnionCompatible(const Schema& other) const {
  if (cols_.size() != other.cols_.size()) return false;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].type != other.cols_[i].type) return false;
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (i > 0) out += ", ";
    out += cols_[i].QualifiedName();
    out += " ";
    out += TypeIdToString(cols_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace hippo
