#include "catalog/catalog.h"

#include <algorithm>

#include "common/str_util.h"

namespace hippo {

Catalog Catalog::Clone() const {
  Catalog copy;
  copy.tables_.reserve(tables_.size());
  for (const auto& table : tables_) {
    copy.tables_.push_back(std::make_unique<Table>(*table));
  }
  copy.by_name_ = by_name_;
  return copy;
}

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  std::string key = ToLower(name);
  if (by_name_.count(key)) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  uint32_t id = static_cast<uint32_t>(tables_.size());
  tables_.push_back(std::make_unique<Table>(id, key, std::move(schema)));
  by_name_.emplace(key, id);
  return tables_.back().get();
}

Status Catalog::DropTable(const std::string& name) {
  auto it = by_name_.find(ToLower(name));
  if (it == by_name_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  // Release the rows (the slot survives only to keep table ids stable).
  tables_[it->second]->Clear();
  by_name_.erase(it);
  return Status::OK();
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  auto it = by_name_.find(ToLower(name));
  if (it == by_name_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  return tables_[it->second].get();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = by_name_.find(ToLower(name));
  if (it == by_name_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  return static_cast<const Table*>(tables_[it->second].get());
}

size_t Catalog::TotalRows() const {
  size_t n = 0;
  for (const auto& [name, id] : by_name_) n += tables_[id]->NumLiveRows();
  return n;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, id] : by_name_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace hippo
