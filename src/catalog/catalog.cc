#include "catalog/catalog.h"

#include <algorithm>

#include "common/str_util.h"

namespace hippo {

Catalog Catalog::Clone() const {
  Catalog copy;
  copy.slots_.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    copy.slots_.push_back(Slot{std::make_shared<Table>(*slot.table), false});
  }
  copy.by_name_ = by_name_;
  return copy;
}

Catalog Catalog::Share() {
  Catalog copy;
  copy.slots_.reserve(slots_.size());
  for (Slot& slot : slots_) {
    slot.shared = true;
    copy.slots_.push_back(Slot{slot.table, true});
  }
  copy.by_name_ = by_name_;
  return copy;
}

Table& Catalog::MutableTable(uint32_t id) {
  Slot& slot = slots_[id];
  if (slot.shared) {
    slot.table = std::make_shared<Table>(*slot.table);
    slot.shared = false;
  }
  return *slot.table;
}

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  std::string key = ToLower(name);
  if (by_name_.count(key)) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  uint32_t id = static_cast<uint32_t>(slots_.size());
  slots_.push_back(
      Slot{std::make_shared<Table>(id, key, std::move(schema)), false});
  by_name_.emplace(key, id);
  return slots_.back().table.get();
}

Status Catalog::DropTable(const std::string& name) {
  auto it = by_name_.find(ToLower(name));
  if (it == by_name_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  // Swap in a fresh empty table (same id, name, schema): the slot survives
  // only to keep table ids stable, and replacing it wholesale avoids
  // cloning a snapshot-shared table's rows just to discard them.
  Slot& slot = slots_[it->second];
  slot.table = std::make_shared<Table>(it->second, slot.table->name(),
                                       slot.table->schema());
  slot.shared = false;
  by_name_.erase(it);
  return Status::OK();
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  auto it = by_name_.find(ToLower(name));
  if (it == by_name_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  return &MutableTable(it->second);
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = by_name_.find(ToLower(name));
  if (it == by_name_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  return static_cast<const Table*>(slots_[it->second].table.get());
}

size_t Catalog::TotalRows() const {
  size_t n = 0;
  for (const auto& [name, id] : by_name_) n += slots_[id].table->NumLiveRows();
  return n;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, id] : by_name_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

size_t Catalog::ApproxBytes() const {
  size_t bytes = sizeof(Catalog);
  for (const Slot& slot : slots_) bytes += slot.table->ApproxBytes();
  return bytes;
}

void Catalog::AccumulateApproxBytes(std::unordered_set<const void*>* seen,
                                    size_t* bytes) const {
  for (const Slot& slot : slots_) {
    if (seen->insert(slot.table.get()).second) {
      *bytes += slot.table->ApproxBytes();
    }
  }
}

}  // namespace hippo
