// Column and Schema: the shape of relations and of intermediate results.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace hippo {

/// \brief A column of a relation or intermediate result.
///
/// `qualifier` is the table alias the column is visible under during binding
/// ("e" in `FROM emp AS e`); it is empty for computed columns and for
/// set-operation outputs.
struct Column {
  std::string name;
  TypeId type = TypeId::kNull;
  std::string qualifier;

  Column() = default;
  Column(std::string n, TypeId t, std::string q = "")
      : name(std::move(n)), type(t), qualifier(std::move(q)) {}

  /// "q.name" or "name".
  std::string QualifiedName() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

/// \brief An ordered list of columns with name-based lookup.
///
/// Lookup is case-insensitive (identifiers are normalized to lower case by
/// the parser, but programmatic callers may use any case).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> cols) : cols_(std::move(cols)) {}

  size_t NumColumns() const { return cols_.size(); }
  const Column& column(size_t i) const { return cols_[i]; }
  const std::vector<Column>& columns() const { return cols_; }

  void AddColumn(Column c) { cols_.push_back(std::move(c)); }

  /// Finds the index of a column referred to as [qualifier.]name.
  /// Errors: NotFound when no column matches; InvalidArgument when the
  /// reference is ambiguous (matches more than one column).
  Result<size_t> ResolveColumn(const std::string& qualifier,
                               const std::string& name) const;

  /// Re-qualifies every column with a new alias (used by `FROM t AS a`).
  Schema WithQualifier(const std::string& q) const;

  /// Concatenation (for products/joins).
  static Schema Concat(const Schema& a, const Schema& b);

  /// True if the column types match position-wise (names may differ) —
  /// the requirement for UNION/EXCEPT/INTERSECT compatibility.
  bool UnionCompatible(const Schema& other) const;

  /// "(a INTEGER, b VARCHAR, ...)" with qualifiers if present.
  std::string ToString() const;

 private:
  std::vector<Column> cols_;
};

}  // namespace hippo
