#include "detect/incremental.h"

#include <algorithm>

#include "common/str_util.h"
#include "expr/evaluator.h"

namespace hippo {

namespace {

/// Concatenation of the atom rows of a (partial) assignment, in atom order —
/// the evaluation scope of a denial constraint's condition.
Row ConcatAtoms(const Catalog& catalog, const DenialConstraint& dc,
                const std::vector<uint32_t>& assignment) {
  Row combined;
  combined.reserve(dc.combined_schema().NumColumns());
  for (size_t i = 0; i < dc.arity(); ++i) {
    const Row& r = catalog.table(dc.atoms()[i].table_id).row(assignment[i]);
    combined.insert(combined.end(), r.begin(), r.end());
  }
  return combined;
}

}  // namespace

Result<std::unique_ptr<IncrementalDetector>> IncrementalDetector::Make(
    const Catalog& catalog, const std::vector<DenialConstraint>& constraints,
    const std::vector<ForeignKeyConstraint>& foreign_keys,
    ConflictHypergraph* graph) {
  std::unique_ptr<IncrementalDetector> d(
      new IncrementalDetector(catalog, graph));
  for (size_t i = 0; i < constraints.size(); ++i) {
    const DenialConstraint& dc = constraints[i];
    uint32_t index = static_cast<uint32_t>(i);
    if (dc.IsUnary()) {
      d->unary_.push_back(Unary{index, &dc});
      continue;
    }
    if (dc.IsBinary() && dc.condition() != nullptr) {
      std::vector<EquiPair> pairs;
      ExprPtr residual;
      SplitJoinCondition(*dc.condition(), dc.atom_width(0), &pairs, &residual);
      if (!pairs.empty()) {
        BinaryEqui be;
        be.constraint_index = index;
        be.dc = &dc;
        for (const EquiPair& p : pairs) {
          be.key_cols[0].push_back(static_cast<size_t>(p.left_index));
          be.key_cols[1].push_back(static_cast<size_t>(p.right_index));
        }
        be.residual = std::move(residual);
        d->binary_.push_back(std::move(be));
        continue;
      }
    }
    d->fallback_.push_back(Fallback{index, &dc});
  }
  for (size_t i = 0; i < foreign_keys.size(); ++i) {
    FkState state;
    state.constraint_index = static_cast<uint32_t>(constraints.size() + i);
    state.fk = &foreign_keys[i];
    d->fks_.push_back(std::move(state));
  }
  HIPPO_RETURN_NOT_OK(d->BuildIndexes());
  return d;
}

Status IncrementalDetector::BuildIndexes() {
  for (BinaryEqui& be : binary_) {
    for (int side = 0; side < 2; ++side) {
      const Table& table =
          catalog_.table(be.dc->atoms()[static_cast<size_t>(side)].table_id);
      for (uint32_t r = 0; r < table.NumRows(); ++r) {
        if (!table.IsLive(r)) continue;
        Row key;
        if (!ExtractKey(table.row(r), be.key_cols[side], &key)) continue;
        be.index[side][std::move(key)].push_back(r);
      }
    }
  }
  for (FkState& fk : fks_) {
    const Table& parent = catalog_.table(fk.fk->parent_table());
    for (uint32_t r = 0; r < parent.NumRows(); ++r) {
      if (!parent.IsLive(r)) continue;
      Row key;
      if (!ExtractKey(parent.row(r), fk.fk->parent_columns(), &key)) continue;
      ++fk.parent_count[std::move(key)];
    }
    const Table& child = catalog_.table(fk.fk->child_table());
    for (uint32_t r = 0; r < child.NumRows(); ++r) {
      if (!child.IsLive(r)) continue;
      Row key;
      if (!ExtractKey(child.row(r), fk.fk->child_columns(), &key)) continue;
      fk.children[std::move(key)].push_back(r);
    }
  }
  return Status::OK();
}

bool IncrementalDetector::ExtractKey(const Row& row,
                                     const std::vector<size_t>& cols,
                                     Row* key) {
  key->clear();
  key->reserve(cols.size());
  for (size_t c : cols) {
    // SQL equality with NULL is never TRUE: a NULL-keyed row can't satisfy
    // the cross-atom equalities, so it never enters (or probes) the index.
    if (row[c].is_null()) return false;
    key->push_back(row[c]);
  }
  return true;
}

void IncrementalDetector::RemoveFromBucket(RowIndex* index, const Row& key,
                                           uint32_t row) {
  auto it = index->find(key);
  if (it == index->end()) return;
  auto& rows = it->second;
  rows.erase(std::remove(rows.begin(), rows.end(), row), rows.end());
  if (rows.empty()) index->erase(it);
}

void IncrementalDetector::AddEdgeCounted(std::vector<RowId> vertices,
                                         uint32_t constraint_index) {
  size_t before = graph_->NumEdges();
  graph_->AddEdge(std::move(vertices), constraint_index);
  if (graph_->NumEdges() > before) ++stats_.edges_added;
}

// --- insert ----------------------------------------------------------------

Status IncrementalDetector::InsertUnary(const Unary& u, RowId rid) {
  const Table& table = catalog_.table(rid.table);
  // A unary constraint with no condition forbids every tuple.
  if (u.dc->condition() == nullptr ||
      EvalPredicate(*u.dc->condition(), table.row(rid.row))) {
    AddEdgeCounted({rid}, u.constraint_index);
  }
  return Status::OK();
}

Status IncrementalDetector::InsertBinaryEqui(BinaryEqui* be, RowId rid) {
  const uint32_t t0 = be->dc->atoms()[0].table_id;
  const uint32_t t1 = be->dc->atoms()[1].table_id;
  // Index first, probe second: when both atoms range over rid's table the
  // new tuple may pair with itself, exactly as in the full detector's
  // self-join (AddEdge collapses {t, t} to a unary edge).
  for (int side = 0; side < 2; ++side) {
    uint32_t t = side == 0 ? t0 : t1;
    if (t != rid.table) continue;
    const Table& table = catalog_.table(t);
    Row key;
    if (!ExtractKey(table.row(rid.row), be->key_cols[side], &key)) continue;
    be->index[side][std::move(key)].push_back(rid.row);
  }
  for (int side = 0; side < 2; ++side) {
    uint32_t t = side == 0 ? t0 : t1;
    if (t != rid.table) continue;
    const Table& table = catalog_.table(t);
    Row key;
    if (!ExtractKey(table.row(rid.row), be->key_cols[side], &key)) continue;
    auto it = be->index[1 - side].find(key);
    if (it == be->index[1 - side].end()) continue;
    for (uint32_t partner : it->second) {
      ++stats_.fast_path_probes;
      uint32_t left = side == 0 ? rid.row : partner;
      uint32_t right = side == 0 ? partner : rid.row;
      if (be->residual != nullptr) {
        Row combined = ConcatAtoms(catalog_, *be->dc, {left, right});
        if (!EvalPredicate(*be->residual, combined)) continue;
      }
      AddEdgeCounted({RowId{t0, left}, RowId{t1, right}},
                     be->constraint_index);
    }
  }
  return Status::OK();
}

Status IncrementalDetector::InsertFallback(const Fallback& fb, RowId rid) {
  const DenialConstraint& dc = *fb.dc;
  std::vector<uint32_t> assignment(dc.arity(), 0);
  // Pin each atom over rid's table to the new row in turn; duplicates across
  // pin positions collapse in AddEdge.
  for (size_t pin = 0; pin < dc.arity(); ++pin) {
    if (dc.atoms()[pin].table_id != rid.table) continue;
    assignment[pin] = rid.row;
    // Depth-first assignment of the remaining atoms over live rows.
    auto recurse = [&](auto&& self, size_t atom) -> void {
      if (atom == dc.arity()) {
        ++stats_.fallback_rows;
        if (dc.condition() != nullptr) {
          Row combined = ConcatAtoms(catalog_, dc, assignment);
          if (!EvalPredicate(*dc.condition(), combined)) return;
        }
        std::vector<RowId> edge;
        edge.reserve(dc.arity());
        for (size_t i = 0; i < dc.arity(); ++i) {
          edge.push_back(RowId{dc.atoms()[i].table_id, assignment[i]});
        }
        AddEdgeCounted(std::move(edge), fb.constraint_index);
        return;
      }
      if (atom == pin) {
        self(self, atom + 1);
        return;
      }
      const Table& table = catalog_.table(dc.atoms()[atom].table_id);
      for (uint32_t r = 0; r < table.NumRows(); ++r) {
        if (!table.IsLive(r)) continue;
        assignment[atom] = r;
        self(self, atom + 1);
      }
    };
    recurse(recurse, 0);
  }
  return Status::OK();
}

bool IncrementalDetector::HasLiveParent(const FkState& fk, const Row& key) {
  auto it = fk.parent_count.find(key);
  return it != fk.parent_count.end() && it->second > 0;
}

bool IncrementalDetector::IsOrphanUnder(const FkState& fk,
                                        RowId child) const {
  if (child.table != fk.fk->child_table()) return false;
  Row key;
  if (!ExtractKey(catalog_.table(child.table).row(child.row),
                  fk.fk->child_columns(), &key)) {
    return true;  // NULL-keyed children are permanent orphans
  }
  return !HasLiveParent(fk, key);
}

Status IncrementalDetector::InsertFk(FkState* fk, RowId rid) {
  if (rid.table == fk->fk->child_table()) {
    const Table& child = catalog_.table(rid.table);
    Row key;
    if (!ExtractKey(child.row(rid.row), fk->fk->child_columns(), &key)) {
      // NULL-keyed children can never acquire a parent (permanent
      // orphans); they are not tracked in the children index.
      AddEdgeCounted({rid}, fk->constraint_index);
    } else {
      if (!HasLiveParent(*fk, key)) {
        AddEdgeCounted({rid}, fk->constraint_index);
      }
      fk->children[std::move(key)].push_back(rid.row);
    }
  }
  if (rid.table == fk->fk->parent_table()) {
    const Table& parent = catalog_.table(rid.table);
    Row key;
    if (!ExtractKey(parent.row(rid.row), fk->fk->parent_columns(), &key)) {
      return Status::OK();  // NULL-keyed parents match no child
    }
    size_t& count = fk->parent_count[key];
    ++count;
    if (count == 1) {
      // First parent for this key: the matching children are orphans no
      // longer — retract their unary edges.
      auto it = fk->children.find(key);
      if (it != fk->children.end()) {
        for (uint32_t c : it->second) {
          RowId child_id{fk->fk->child_table(), c};
          // Find this FK's unary edge among the child's incident edges.
          // The canonical {child} edge is shared by every constraint that
          // orphans this row, with the provenance of the first of them; it
          // only carries this FK's index when this FK was that first one.
          std::vector<ConflictHypergraph::EdgeId> incident =
              graph_->IncidentEdges(child_id);
          for (ConflictHypergraph::EdgeId e : incident) {
            if (graph_->edge_constraint(e) == fk->constraint_index &&
                graph_->edge(e).size() == 1) {
              graph_->RemoveEdge(e);
              ++stats_.edges_removed;
              // If another FK still orphans this child, the violation
              // survives the cure: revive the edge under the first such
              // FK, matching a fresh detection run's provenance.
              for (const FkState& other : fks_) {
                if (&other != fk && IsOrphanUnder(other, child_id)) {
                  AddEdgeCounted({child_id}, other.constraint_index);
                  break;
                }
              }
            }
          }
        }
      }
    }
  }
  return Status::OK();
}

Status IncrementalDetector::OnInsert(RowId rid) {
  ++stats_.inserts;
  for (const Unary& u : unary_) {
    if (u.dc->atoms()[0].table_id == rid.table) {
      HIPPO_RETURN_NOT_OK(InsertUnary(u, rid));
    }
  }
  for (BinaryEqui& be : binary_) {
    if (be.dc->atoms()[0].table_id == rid.table ||
        be.dc->atoms()[1].table_id == rid.table) {
      HIPPO_RETURN_NOT_OK(InsertBinaryEqui(&be, rid));
    }
  }
  for (const Fallback& fb : fallback_) {
    bool touches = false;
    for (const ConstraintAtom& atom : fb.dc->atoms()) {
      if (atom.table_id == rid.table) touches = true;
    }
    if (touches) HIPPO_RETURN_NOT_OK(InsertFallback(fb, rid));
  }
  for (FkState& fk : fks_) {
    if (rid.table == fk.fk->child_table() ||
        rid.table == fk.fk->parent_table()) {
      HIPPO_RETURN_NOT_OK(InsertFk(&fk, rid));
    }
  }
  return Status::OK();
}

// --- delete ----------------------------------------------------------------

Status IncrementalDetector::DeleteFk(FkState* fk, RowId rid) {
  if (rid.table == fk->fk->child_table()) {
    const Table& child = catalog_.table(rid.table);
    Row key;
    if (ExtractKey(child.row(rid.row), fk->fk->child_columns(), &key)) {
      RemoveFromBucket(&fk->children, key, rid.row);
    }
    // The child's own orphan edge (if any) falls with RemoveIncidentEdges.
  }
  if (rid.table == fk->fk->parent_table()) {
    const Table& parent = catalog_.table(rid.table);
    Row key;
    if (!ExtractKey(parent.row(rid.row), fk->fk->parent_columns(), &key)) {
      return Status::OK();
    }
    auto it = fk->parent_count.find(key);
    HIPPO_CHECK_MSG(it != fk->parent_count.end() && it->second > 0,
                    "parent count underflow in incremental FK maintenance");
    if (--it->second == 0) {
      fk->parent_count.erase(it);
      // Last parent gone: the matching children become orphans.
      auto cit = fk->children.find(key);
      if (cit != fk->children.end()) {
        for (uint32_t c : cit->second) {
          AddEdgeCounted({RowId{fk->fk->child_table(), c}},
                         fk->constraint_index);
        }
      }
    }
  }
  return Status::OK();
}

Status IncrementalDetector::OnDelete(RowId rid) {
  ++stats_.deletes;
  // Denial constraints are anti-monotone: deleting a tuple only removes
  // violations, all of which are incident to it.
  stats_.edges_removed += graph_->RemoveIncidentEdges(rid);
  for (BinaryEqui& be : binary_) {
    for (int side = 0; side < 2; ++side) {
      if (be.dc->atoms()[static_cast<size_t>(side)].table_id != rid.table) {
        continue;
      }
      const Table& table = catalog_.table(rid.table);
      Row key;
      if (!ExtractKey(table.row(rid.row), be.key_cols[side], &key)) continue;
      RemoveFromBucket(&be.index[side], key, rid.row);
    }
  }
  for (FkState& fk : fks_) {
    if (rid.table == fk.fk->child_table() ||
        rid.table == fk.fk->parent_table()) {
      HIPPO_RETURN_NOT_OK(DeleteFk(&fk, rid));
    }
  }
  return Status::OK();
}

}  // namespace hippo
