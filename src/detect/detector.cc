#include "detect/detector.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>

#include "common/str_util.h"
#include "exec/executor.h"
#include "exec/operators.h"

namespace hippo {

namespace {

/// Remaps a condition bound over the plain combined schema onto the layout
/// produced by rowid-emitting scans, where atom k's columns are shifted
/// right by k (one $rowid column per preceding atom).
ExprPtr RemapForRowidLayout(const Expr& condition,
                            const DenialConstraint& dc) {
  ExprPtr remapped = condition.Clone();
  VisitColumnRefs(remapped.get(), [&dc](ColumnRefExpr* ref) {
    int idx = ref->index();
    int atom = 0;
    for (size_t i = 0; i < dc.arity(); ++i) {
      if (static_cast<size_t>(idx) <
          dc.atom_offset(i) + dc.atom_width(i)) {
        atom = static_cast<int>(i);
        break;
      }
    }
    ref->ShiftIndex(atom);
  });
  return remapped;
}

}  // namespace

Status DetectOptions::Validate() const {
  if (shard_rows == 0) {
    return Status::InvalidArgument(
        "DetectOptions::shard_rows must be >= 1 (0 is no longer a silent "
        "\"disable sharding\" fallback; use SIZE_MAX to disable the FD "
        "determinant-hash split)");
  }
  if (partition_rows == 0) {
    return Status::InvalidArgument(
        "DetectOptions::partition_rows must be >= 1 (use SIZE_MAX to "
        "disable probe-side partitioning of generic joins and foreign "
        "keys)");
  }
  if (num_threads > kMaxThreads) {
    return Status::InvalidArgument(
        StrFormat("DetectOptions::num_threads = %zu exceeds the sanity "
                  "bound of %zu (0 means \"all hardware threads\")",
                  num_threads, kMaxThreads));
  }
  return Status::OK();
}

/// Shared read-only probe state of one generic-join constraint: the
/// materialized rowid-emitting scans of every atom, the per-level join
/// conditions carved out of the constraint condition, and the hash-join
/// chain built over them. Built exactly once per DetectAll (under `once`,
/// by whichever partition's worker arrives first); afterwards every
/// row-range partition probes it concurrently without duplicating any
/// build work.
struct ConflictDetector::GenericShared {
  std::once_flag once;
  Status status = Status::OK();
  std::vector<std::vector<Row>> inputs;  ///< per atom; [0] is the probe side
  std::vector<ExprPtr> level_conds;      ///< [i] joins atom i (null=product)
  ExprPtr final_filter;                  ///< atom-0-confined conjuncts
  std::optional<exec::JoinChain> chain;
  std::vector<size_t> rowid_cols;        ///< rowid column of each atom
  /// Batch-engine state (engine == kBatch): per-atom columnar scans shared
  /// with the tables' views (columns + rowid; physical index IS the RowId
  /// row) and the index-tuple join chain over them. `inputs`/`chain` stay
  /// empty on this path.
  std::vector<ColumnBatch> batch_inputs;
  std::optional<exec::BatchJoinChain> batch_chain;
};

/// Shared read-only state of one foreign key's orphan anti-join: the
/// materialized child (with rowid) and parent scans plus the anti-join
/// build table over the parent keys.
struct ConflictDetector::FkShared {
  std::once_flag once;
  Status status = Status::OK();
  std::vector<Row> child_rows;   ///< child scan with trailing rowid
  std::vector<Row> parent_rows;
  ExprPtr condition;
  std::optional<exec::AntiJoinProbe> probe;
  size_t rowid_col = 0;
  /// Batch-engine state (engine == kBatch): columnar child (with rowid
  /// column) and parent scans plus the index anti-join over them.
  ColumnBatch child_batch;
  ColumnBatch parent_batch;
  std::optional<exec::BatchAntiJoinProbe> batch_probe;
};

Status ConflictDetector::DetectGenericPartitionInto(
    const DenialConstraint& dc, uint32_t constraint_index,
    GenericShared* shared, size_t partition, size_t num_partitions,
    EdgeBuffer* out, DetectStats* stats) const {
  if (partition == 0) ++stats->generic_constraints;
  if (num_partitions > 1) ++stats->generic_partitions;

  std::call_once(shared->once, [&] {
    shared->status = [&]() -> Status {
      // Materialize every atom's rowid-emitting scan once. The batch
      // engine shares the tables' columnar views instead of copying rows.
      if (options_.engine == ExecEngine::kBatch) {
        shared->batch_inputs.reserve(dc.arity());
        for (size_t i = 0; i < dc.arity(); ++i) {
          const Table& table = catalog_.table(dc.atoms()[i].table_id);
          shared->batch_inputs.push_back(
              ScanTableBatch(table, /*emit_rowid=*/true, nullptr));
        }
      } else {
        shared->inputs.resize(dc.arity());
        for (size_t i = 0; i < dc.arity(); ++i) {
          const ConstraintAtom& atom = dc.atoms()[i];
          const Table& table = catalog_.table(atom.table_id);
          PlanNodePtr scan =
              ScanNode::Make(atom.table_id, atom.table_name, atom.alias,
                             table.schema(), /*emit_rowid=*/true);
          ExecContext ctx{&catalog_, nullptr};
          HIPPO_ASSIGN_OR_RETURN(ResultSet rows, Execute(*scan, ctx));
          shared->inputs[i] = std::move(rows.rows);
        }
      }

      // Attach each conjunct at the level where its last atom enters (as
      // in the planner), so equality conditions become hash joins; the
      // leftovers (atom-0-confined, or a unary constraint's whole
      // condition) become the final filter.
      struct Pending {
        ExprPtr expr;
        int last_atom;
      };
      std::vector<Pending> conjuncts;
      if (dc.condition() != nullptr) {
        ExprPtr remapped = RemapForRowidLayout(*dc.condition(), dc);
        // Offsets in the rowid layout: atom i starts at atom_offset(i) + i.
        for (const Expr* part : SplitConjuncts(*remapped)) {
          Pending p;
          p.expr = part->Clone();
          p.last_atom = 0;
          for (int idx : CollectColumnIndexes(*p.expr)) {
            for (int i = static_cast<int>(dc.arity()) - 1; i >= 0; --i) {
              size_t start = dc.atom_offset(static_cast<size_t>(i)) +
                             static_cast<size_t>(i);
              if (static_cast<size_t>(idx) >= start) {
                p.last_atom = std::max(p.last_atom, i);
                break;
              }
            }
          }
          conjuncts.push_back(std::move(p));
        }
      }
      shared->level_conds.resize(dc.arity());
      for (size_t i = 1; i < dc.arity(); ++i) {
        std::vector<ExprPtr> conds;
        for (Pending& p : conjuncts) {
          if (p.expr != nullptr && p.last_atom == static_cast<int>(i)) {
            conds.push_back(std::move(p.expr));
          }
        }
        if (!conds.empty()) {
          shared->level_conds[i] = AndAll(std::move(conds));
        }
      }
      {
        std::vector<ExprPtr> rest;
        for (Pending& p : conjuncts) {
          if (p.expr != nullptr) rest.push_back(std::move(p.expr));
        }
        if (!rest.empty()) shared->final_filter = AndAll(std::move(rest));
      }

      if (options_.engine == ExecEngine::kBatch) {
        std::vector<exec::BatchJoinChain::LevelSpec> levels;
        for (size_t i = 1; i < dc.arity(); ++i) {
          levels.push_back(
              {&shared->batch_inputs[i], shared->level_conds[i].get()});
        }
        shared->batch_chain.emplace(&shared->batch_inputs[0],
                                    std::move(levels),
                                    shared->final_filter.get());
      } else {
        std::vector<exec::JoinChain::LevelSpec> levels;
        for (size_t i = 1; i < dc.arity(); ++i) {
          levels.push_back({&shared->inputs[i], shared->level_conds[i].get(),
                            dc.atom_width(i) + 1});
        }
        shared->chain.emplace(dc.atom_width(0) + 1, std::move(levels),
                              shared->final_filter.get());
      }

      // The rowid column of atom i sits at atom_offset(i) + i + width(i).
      for (size_t i = 0; i < dc.arity(); ++i) {
        shared->rowid_cols.push_back(dc.atom_offset(i) + i +
                                     dc.atom_width(i));
      }
      return Status::OK();
    }();
  });
  HIPPO_RETURN_NOT_OK(shared->status);

  if (options_.engine == ExecEngine::kBatch) {
    // Index-tuple probe over the shared columnar scans. The scan's
    // physical index IS the RowId row, so witness rowids come straight
    // from Physical() — no gather, no Value round-trip.
    size_t probe_rows = shared->batch_inputs[0].NumRows();
    size_t begin = probe_rows * partition / num_partitions;
    size_t end = probe_rows * (partition + 1) / num_partitions;
    std::vector<uint32_t> tuples;
    shared->batch_chain->Probe(begin, end, &tuples);
    size_t arity = shared->batch_chain->tuple_arity();
    for (size_t t = 0; t + arity <= tuples.size(); t += arity) {
      std::vector<RowId> edge;
      edge.reserve(dc.arity());
      for (size_t i = 0; i < dc.arity(); ++i) {
        edge.push_back(RowId{dc.atoms()[i].table_id,
                             shared->batch_inputs[i].Physical(tuples[t + i])});
      }
      out->Add(std::move(edge), constraint_index);
      ++stats->edges_added;
    }
    return Status::OK();
  }

  const std::vector<Row>& probe = shared->inputs[0];
  size_t begin = probe.size() * partition / num_partitions;
  size_t end = probe.size() * (partition + 1) / num_partitions;
  std::vector<Row> witnesses;
  shared->chain->Probe(probe, begin, end, &witnesses);

  for (const Row& row : witnesses) {
    std::vector<RowId> edge;
    edge.reserve(dc.arity());
    for (size_t i = 0; i < dc.arity(); ++i) {
      edge.push_back(RowId{
          dc.atoms()[i].table_id,
          static_cast<uint32_t>(row[shared->rowid_cols[i]].AsInt())});
    }
    out->Add(std::move(edge), constraint_index);
    ++stats->edges_added;
  }
  return Status::OK();
}

Status ConflictDetector::DetectGenericInto(const DenialConstraint& dc,
                                           uint32_t constraint_index,
                                           EdgeBuffer* out,
                                           DetectStats* stats) const {
  GenericShared shared;
  return DetectGenericPartitionInto(dc, constraint_index, &shared,
                                    /*partition=*/0, /*num_partitions=*/1,
                                    out, stats);
}

Status ConflictDetector::DetectFdFastInto(const DenialConstraint& dc,
                                          uint32_t constraint_index,
                                          size_t shard, size_t num_shards,
                                          EdgeBuffer* out,
                                          DetectStats* stats) const {
  if (shard == 0) ++stats->fd_fast_path_constraints;
  if (num_shards > 1) ++stats->fd_shards;
  const FdInfo& fd = *dc.fd_info();
  const Table& table = catalog_.table(fd.table_id);

  // Group rows by determinant values. When sharded, this shard owns the
  // keys whose hash falls into its residue class — groups stay complete
  // within exactly one shard, so sharding never splits or duplicates a
  // violation pair. The shard hash is computed in place from the key
  // columns (mirroring HashRow) so rows owned by other shards are skipped
  // without materializing their key Row — that keeps the duplicated
  // per-shard work at one cheap hash pass instead of one allocation pass.
  std::unordered_map<Row, std::vector<uint32_t>, RowHasher, RowEq> groups;
  groups.reserve(table.NumRows() / num_shards + 1);
  for (uint32_t i = 0; i < table.NumRows(); ++i) {
    if (!table.IsLive(i)) continue;
    const Row& row = table.row(i);
    if (num_shards > 1) {
      size_t h = fd.lhs.size();
      for (size_t c : fd.lhs) HashCombine(&h, row[c].Hash());
      if (h % num_shards != shard) continue;
    }
    Row key;
    key.reserve(fd.lhs.size());
    for (size_t c : fd.lhs) key.push_back(row[c]);
    groups[std::move(key)].push_back(i);
  }
  auto rhs_differ = [&](uint32_t a, uint32_t b) {
    const Row& ra = table.row(a);
    const Row& rb = table.row(b);
    for (size_t c : fd.rhs) {
      // NULL-safe structural comparison, consistent with the generic path's
      // SQL `<>`: NULLs never satisfy `<>`, so NULL vs anything is "equal"
      // for violation purposes only if both are NULL; a NULL on either side
      // makes `<>` unknown and thus NOT a violation.
      if (ra[c].is_null() || rb[c].is_null()) continue;
      if (!(ra[c] == rb[c])) return true;
    }
    return false;
  };
  for (const auto& [key, members] : groups) {
    if (members.size() < 2) continue;
    // NULL determinants never satisfy t1.l = t2.l in the generic path.
    bool key_has_null = false;
    for (const Value& v : key) {
      if (v.is_null()) {
        key_has_null = true;
        break;
      }
    }
    if (key_has_null) continue;
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        if (rhs_differ(members[a], members[b])) {
          out->Add({RowId{fd.table_id, members[a]},
                    RowId{fd.table_id, members[b]}},
                   constraint_index);
          ++stats->edges_added;
        }
      }
    }
  }
  return Status::OK();
}

void ConflictDetector::Flush(EdgeBuffer buffer, ConflictHypergraph* graph) {
  for (EdgeBuffer::StagedEdge& e : buffer.mutable_entries()) {
    graph->AddEdge(std::move(e.vertices), e.constraint_index);
  }
}

Status ConflictDetector::Detect(const DenialConstraint& constraint,
                                uint32_t constraint_index,
                                ConflictHypergraph* graph) {
  EdgeBuffer buffer;
  if (options_.use_fd_fast_path && constraint.fd_info().has_value()) {
    HIPPO_RETURN_NOT_OK(DetectFdFastInto(constraint, constraint_index,
                                         /*shard=*/0, /*num_shards=*/1,
                                         &buffer, &stats_));
  } else {
    HIPPO_RETURN_NOT_OK(
        DetectGenericInto(constraint, constraint_index, &buffer, &stats_));
  }
  Flush(std::move(buffer), graph);
  return Status::OK();
}

Status ConflictDetector::DetectForeignKeyPartitionInto(
    const ForeignKeyConstraint& fk, uint32_t constraint_index,
    FkShared* shared, size_t partition, size_t num_partitions,
    EdgeBuffer* out, DetectStats* stats) const {
  if (num_partitions > 1) ++stats->fk_partitions;

  std::call_once(shared->once, [&] {
    shared->status = [&]() -> Status {
      const Table& child = catalog_.table(fk.child_table());
      const Table& parent = catalog_.table(fk.parent_table());
      if (options_.engine == ExecEngine::kBatch) {
        shared->child_batch =
            ScanTableBatch(child, /*emit_rowid=*/true, nullptr);
        shared->parent_batch =
            ScanTableBatch(parent, /*emit_rowid=*/false, nullptr);
      } else {
        PlanNodePtr child_scan =
            ScanNode::Make(child.id(), child.name(), child.name(),
                           child.schema(), /*emit_rowid=*/true);
        PlanNodePtr parent_scan = ScanNode::Make(
            parent.id(), parent.name(), parent.name(), parent.schema());
        ExecContext ctx{&catalog_, nullptr};
        HIPPO_ASSIGN_OR_RETURN(ResultSet child_rows,
                               Execute(*child_scan, ctx));
        HIPPO_ASSIGN_OR_RETURN(ResultSet parent_rows,
                               Execute(*parent_scan, ctx));
        shared->child_rows = std::move(child_rows.rows);
        shared->parent_rows = std::move(parent_rows.rows);
      }

      // The anti-join keeps child rows with NO parent match: the orphans.
      // Note the child side carries the trailing rowid column, so parent
      // column refs shift by left_width = child columns + 1.
      size_t left_width = child.schema().NumColumns() + 1;
      std::vector<ExprPtr> eqs;
      for (size_t i = 0; i < fk.child_columns().size(); ++i) {
        size_t ci = fk.child_columns()[i];
        size_t pi = fk.parent_columns()[i];
        eqs.push_back(std::make_unique<ComparisonExpr>(
            CompareOp::kEq,
            ColumnRefExpr::Bound(ci, child.schema().column(ci).type),
            ColumnRefExpr::Bound(left_width + pi,
                                 parent.schema().column(pi).type)));
        eqs.back()->set_result_type(TypeId::kBool);
      }
      shared->condition = AndAll(std::move(eqs));
      if (options_.engine == ExecEngine::kBatch) {
        shared->batch_probe.emplace(&shared->child_batch,
                                    &shared->parent_batch,
                                    shared->condition.get());
      } else {
        shared->probe.emplace(&shared->parent_rows, shared->condition.get(),
                              left_width);
      }
      shared->rowid_col = child.schema().NumColumns();
      return Status::OK();
    }();
  });
  HIPPO_RETURN_NOT_OK(shared->status);

  if (options_.engine == ExecEngine::kBatch) {
    size_t child_rows = shared->child_batch.NumRows();
    size_t begin = child_rows * partition / num_partitions;
    size_t end = child_rows * (partition + 1) / num_partitions;
    std::vector<uint32_t> orphans;
    shared->batch_probe->Probe(begin, end, &orphans);
    for (uint32_t idx : orphans) {
      out->Add({RowId{fk.child_table(), shared->child_batch.Physical(idx)}},
               constraint_index);
      ++stats->edges_added;
    }
    return Status::OK();
  }

  const std::vector<Row>& child_rows = shared->child_rows;
  size_t begin = child_rows.size() * partition / num_partitions;
  size_t end = child_rows.size() * (partition + 1) / num_partitions;
  std::vector<Row> orphans;
  shared->probe->Probe(child_rows, begin, end, &orphans);
  for (const Row& row : orphans) {
    out->Add({RowId{fk.child_table(),
                    static_cast<uint32_t>(row[shared->rowid_col].AsInt())}},
             constraint_index);
    ++stats->edges_added;
  }
  return Status::OK();
}

Status ConflictDetector::DetectForeignKeyInto(const ForeignKeyConstraint& fk,
                                              uint32_t constraint_index,
                                              EdgeBuffer* out,
                                              DetectStats* stats) const {
  FkShared shared;
  return DetectForeignKeyPartitionInto(fk, constraint_index, &shared,
                                       /*partition=*/0,
                                       /*num_partitions=*/1, out, stats);
}

Status ConflictDetector::DetectForeignKey(const ForeignKeyConstraint& fk,
                                          uint32_t constraint_index,
                                          ConflictHypergraph* graph) {
  EdgeBuffer buffer;
  HIPPO_RETURN_NOT_OK(
      DetectForeignKeyInto(fk, constraint_index, &buffer, &stats_));
  Flush(std::move(buffer), graph);
  return Status::OK();
}

Result<ConflictHypergraph> ConflictDetector::DetectAll(
    const std::vector<DenialConstraint>& constraints,
    const std::vector<ForeignKeyConstraint>& foreign_keys) {
  HIPPO_RETURN_NOT_OK(options_.Validate());
  ConflictHypergraph graph;
  size_t num_threads = ResolveThreadCount(options_.num_threads);
  if (num_threads <= 1) {
    // Serial: preserve constraint-order edge insertion (stable historical
    // edge ids; structurally identical to the parallel path below).
    for (size_t i = 0; i < constraints.size(); ++i) {
      HIPPO_RETURN_NOT_OK(
          Detect(constraints[i], static_cast<uint32_t>(i), &graph));
    }
    for (size_t i = 0; i < foreign_keys.size(); ++i) {
      HIPPO_RETURN_NOT_OK(DetectForeignKey(
          foreign_keys[i], static_cast<uint32_t>(constraints.size() + i),
          &graph));
    }
    return graph;
  }

  /// One schedulable piece of a DetectAll run: a whole constraint, one
  /// determinant-hash shard of a large FD, one probe-side row-range
  /// partition of a large generic join, a foreign key, or one child-row
  /// partition of a large FK. Partitioned units of the same constraint
  /// carry the same shared build state (hashed once by the first worker).
  struct Unit {
    enum class Kind {
      kFdShard,
      kGeneric,
      kGenericPartition,
      kForeignKey,
      kFkPartition,
    };
    Kind kind = Kind::kGeneric;
    size_t list_index = 0;          ///< index into constraints/foreign_keys
    uint32_t constraint_index = 0;  ///< global provenance index
    size_t part = 0;                ///< shard / partition ordinal
    size_t num_parts = 1;
    std::shared_ptr<GenericShared> generic;
    std::shared_ptr<FkShared> fk;
  };

  // How many pieces a unit over `rows` probe/input rows splits into: at
  // most one per worker (more would only add scheduling overhead), and
  // none at all below the size threshold so tiny constraints stay
  // single-unit.
  auto split_count = [&](size_t rows, size_t threshold) {
    if (rows <= threshold) return size_t{1};
    return std::min(num_threads, (rows + threshold - 1) / threshold);
  };

  std::vector<Unit> units;
  for (size_t i = 0; i < constraints.size(); ++i) {
    const DenialConstraint& dc = constraints[i];
    Unit unit;
    unit.list_index = i;
    unit.constraint_index = static_cast<uint32_t>(i);
    if (options_.use_fd_fast_path && dc.fd_info().has_value()) {
      unit.kind = Unit::Kind::kFdShard;
      size_t rows = catalog_.table(dc.fd_info()->table_id).NumLiveRows();
      unit.num_parts = split_count(rows, options_.shard_rows);
      for (size_t s = 0; s < unit.num_parts; ++s) {
        unit.part = s;
        units.push_back(unit);
      }
    } else {
      size_t rows =
          catalog_.table(dc.atoms()[0].table_id).NumLiveRows();
      unit.num_parts = split_count(rows, options_.partition_rows);
      if (unit.num_parts > 1) {
        unit.kind = Unit::Kind::kGenericPartition;
        unit.generic = std::make_shared<GenericShared>();
        for (size_t p = 0; p < unit.num_parts; ++p) {
          unit.part = p;
          units.push_back(unit);
        }
      } else {
        unit.kind = Unit::Kind::kGeneric;
        units.push_back(unit);
      }
    }
  }
  for (size_t i = 0; i < foreign_keys.size(); ++i) {
    Unit unit;
    unit.list_index = i;
    unit.constraint_index = static_cast<uint32_t>(constraints.size() + i);
    size_t rows =
        catalog_.table(foreign_keys[i].child_table()).NumLiveRows();
    unit.num_parts = split_count(rows, options_.partition_rows);
    if (unit.num_parts > 1) {
      unit.kind = Unit::Kind::kFkPartition;
      unit.fk = std::make_shared<FkShared>();
      for (size_t p = 0; p < unit.num_parts; ++p) {
        unit.part = p;
        units.push_back(unit);
      }
    } else {
      unit.kind = Unit::Kind::kForeignKey;
      units.push_back(unit);
    }
  }

  // Fan out: workers pull units off a shared counter, each unit staging
  // into its own buffer (indexed by unit, not worker, so nothing about the
  // output depends on the scheduling).
  size_t workers = std::min(num_threads, units.size());
  std::vector<EdgeBuffer> buffers(units.size());
  std::vector<DetectStats> worker_stats(workers);
  std::vector<Status> worker_status(workers);
  std::atomic<size_t> next{0};
  auto run_worker = [&](size_t w) {
    for (;;) {
      size_t u = next.fetch_add(1);
      if (u >= units.size()) return;
      const Unit& unit = units[u];
      Status st;
      switch (unit.kind) {
        case Unit::Kind::kFdShard:
          st = DetectFdFastInto(constraints[unit.list_index],
                                unit.constraint_index, unit.part,
                                unit.num_parts, &buffers[u],
                                &worker_stats[w]);
          break;
        case Unit::Kind::kGeneric:
          st = DetectGenericInto(constraints[unit.list_index],
                                 unit.constraint_index, &buffers[u],
                                 &worker_stats[w]);
          break;
        case Unit::Kind::kGenericPartition:
          st = DetectGenericPartitionInto(
              constraints[unit.list_index], unit.constraint_index,
              unit.generic.get(), unit.part, unit.num_parts, &buffers[u],
              &worker_stats[w]);
          break;
        case Unit::Kind::kForeignKey:
          st = DetectForeignKeyInto(foreign_keys[unit.list_index],
                                    unit.constraint_index, &buffers[u],
                                    &worker_stats[w]);
          break;
        case Unit::Kind::kFkPartition:
          st = DetectForeignKeyPartitionInto(
              foreign_keys[unit.list_index], unit.constraint_index,
              unit.fk.get(), unit.part, unit.num_parts, &buffers[u],
              &worker_stats[w]);
          break;
      }
      if (!st.ok()) {
        worker_status[w] = std::move(st);
        return;
      }
    }
  };
  if (workers <= 1) {
    run_worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) threads.emplace_back(run_worker, w);
    for (std::thread& t : threads) t.join();
  }
  for (size_t w = 0; w < workers; ++w) {
    HIPPO_RETURN_NOT_OK(worker_status[w]);
    stats_.edges_added += worker_stats[w].edges_added;
    stats_.fd_fast_path_constraints += worker_stats[w].fd_fast_path_constraints;
    stats_.generic_constraints += worker_stats[w].generic_constraints;
    stats_.fd_shards += worker_stats[w].fd_shards;
    stats_.generic_partitions += worker_stats[w].generic_partitions;
    stats_.fk_partitions += worker_stats[w].fk_partitions;
  }
  graph.BulkLoad(std::move(buffers));
  return graph;
}

}  // namespace hippo
