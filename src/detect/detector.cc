#include "detect/detector.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>

#include "common/str_util.h"
#include "exec/executor.h"

namespace hippo {

namespace {

/// Remaps a condition bound over the plain combined schema onto the layout
/// produced by rowid-emitting scans, where atom k's columns are shifted
/// right by k (one $rowid column per preceding atom).
ExprPtr RemapForRowidLayout(const Expr& condition,
                            const DenialConstraint& dc) {
  ExprPtr remapped = condition.Clone();
  VisitColumnRefs(remapped.get(), [&dc](ColumnRefExpr* ref) {
    int idx = ref->index();
    int atom = 0;
    for (size_t i = 0; i < dc.arity(); ++i) {
      if (static_cast<size_t>(idx) <
          dc.atom_offset(i) + dc.atom_width(i)) {
        atom = static_cast<int>(i);
        break;
      }
    }
    ref->ShiftIndex(atom);
  });
  return remapped;
}

}  // namespace

size_t ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

Status ConflictDetector::DetectGenericInto(const DenialConstraint& dc,
                                           uint32_t constraint_index,
                                           EdgeBuffer* out,
                                           DetectStats* stats) const {
  ++stats->generic_constraints;
  // Build a left-deep join plan over rowid-emitting scans. Conjuncts are
  // attached at the step where their last atom enters (as in the planner),
  // so equality conditions become hash joins.
  struct Pending {
    ExprPtr expr;
    int last_atom;
  };
  std::vector<Pending> conjuncts;
  if (dc.condition() != nullptr) {
    ExprPtr remapped = RemapForRowidLayout(*dc.condition(), dc);
    // Offsets in the rowid layout: atom i starts at atom_offset(i) + i.
    for (const Expr* part : SplitConjuncts(*remapped)) {
      Pending p;
      p.expr = part->Clone();
      p.last_atom = 0;
      for (int idx : CollectColumnIndexes(*p.expr)) {
        for (int i = static_cast<int>(dc.arity()) - 1; i >= 0; --i) {
          size_t start = dc.atom_offset(static_cast<size_t>(i)) +
                         static_cast<size_t>(i);
          if (static_cast<size_t>(idx) >= start) {
            p.last_atom = std::max(p.last_atom, i);
            break;
          }
        }
      }
      conjuncts.push_back(std::move(p));
    }
  }

  auto make_scan = [&](size_t i) -> PlanNodePtr {
    const ConstraintAtom& atom = dc.atoms()[i];
    const Table& table = catalog_.table(atom.table_id);
    return ScanNode::Make(atom.table_id, atom.table_name, atom.alias,
                          table.schema(), /*emit_rowid=*/true);
  };

  PlanNodePtr plan = make_scan(0);
  for (size_t i = 1; i < dc.arity(); ++i) {
    PlanNodePtr right = make_scan(i);
    std::vector<ExprPtr> conds;
    for (Pending& p : conjuncts) {
      if (p.expr != nullptr && p.last_atom == static_cast<int>(i)) {
        conds.push_back(std::move(p.expr));
      }
    }
    if (conds.empty()) {
      plan = std::make_unique<ProductNode>(std::move(plan), std::move(right));
    } else {
      plan = std::make_unique<JoinNode>(std::move(plan), std::move(right),
                                        AndAll(std::move(conds)));
    }
  }
  // Conjuncts confined to atom 0 (or a unary constraint's whole condition).
  {
    std::vector<ExprPtr> rest;
    for (Pending& p : conjuncts) {
      if (p.expr != nullptr) rest.push_back(std::move(p.expr));
    }
    if (!rest.empty()) {
      plan = std::make_unique<FilterNode>(std::move(plan),
                                          AndAll(std::move(rest)));
    }
  }

  ExecContext ctx{&catalog_, nullptr};
  HIPPO_ASSIGN_OR_RETURN(ResultSet witnesses, Execute(*plan, ctx));

  // The rowid column of atom i sits at atom_offset(i) + i + width(i).
  std::vector<size_t> rowid_cols;
  for (size_t i = 0; i < dc.arity(); ++i) {
    rowid_cols.push_back(dc.atom_offset(i) + i + dc.atom_width(i));
  }
  for (const Row& row : witnesses.rows) {
    std::vector<RowId> edge;
    edge.reserve(dc.arity());
    for (size_t i = 0; i < dc.arity(); ++i) {
      edge.push_back(RowId{
          dc.atoms()[i].table_id,
          static_cast<uint32_t>(row[rowid_cols[i]].AsInt())});
    }
    out->Add(std::move(edge), constraint_index);
    ++stats->edges_added;
  }
  return Status::OK();
}

Status ConflictDetector::DetectFdFastInto(const DenialConstraint& dc,
                                          uint32_t constraint_index,
                                          size_t shard, size_t num_shards,
                                          EdgeBuffer* out,
                                          DetectStats* stats) const {
  if (shard == 0) ++stats->fd_fast_path_constraints;
  if (num_shards > 1) ++stats->fd_shards;
  const FdInfo& fd = *dc.fd_info();
  const Table& table = catalog_.table(fd.table_id);

  // Group rows by determinant values. When sharded, this shard owns the
  // keys whose hash falls into its residue class — groups stay complete
  // within exactly one shard, so sharding never splits or duplicates a
  // violation pair. The shard hash is computed in place from the key
  // columns (mirroring HashRow) so rows owned by other shards are skipped
  // without materializing their key Row — that keeps the duplicated
  // per-shard work at one cheap hash pass instead of one allocation pass.
  std::unordered_map<Row, std::vector<uint32_t>, RowHasher, RowEq> groups;
  groups.reserve(table.NumRows() / num_shards + 1);
  for (uint32_t i = 0; i < table.NumRows(); ++i) {
    if (!table.IsLive(i)) continue;
    const Row& row = table.row(i);
    if (num_shards > 1) {
      size_t h = fd.lhs.size();
      for (size_t c : fd.lhs) HashCombine(&h, row[c].Hash());
      if (h % num_shards != shard) continue;
    }
    Row key;
    key.reserve(fd.lhs.size());
    for (size_t c : fd.lhs) key.push_back(row[c]);
    groups[std::move(key)].push_back(i);
  }
  auto rhs_differ = [&](uint32_t a, uint32_t b) {
    const Row& ra = table.row(a);
    const Row& rb = table.row(b);
    for (size_t c : fd.rhs) {
      // NULL-safe structural comparison, consistent with the generic path's
      // SQL `<>`: NULLs never satisfy `<>`, so NULL vs anything is "equal"
      // for violation purposes only if both are NULL; a NULL on either side
      // makes `<>` unknown and thus NOT a violation.
      if (ra[c].is_null() || rb[c].is_null()) continue;
      if (!(ra[c] == rb[c])) return true;
    }
    return false;
  };
  for (const auto& [key, members] : groups) {
    if (members.size() < 2) continue;
    // NULL determinants never satisfy t1.l = t2.l in the generic path.
    bool key_has_null = false;
    for (const Value& v : key) {
      if (v.is_null()) {
        key_has_null = true;
        break;
      }
    }
    if (key_has_null) continue;
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        if (rhs_differ(members[a], members[b])) {
          out->Add({RowId{fd.table_id, members[a]},
                    RowId{fd.table_id, members[b]}},
                   constraint_index);
          ++stats->edges_added;
        }
      }
    }
  }
  return Status::OK();
}

void ConflictDetector::Flush(EdgeBuffer buffer, ConflictHypergraph* graph) {
  for (EdgeBuffer::StagedEdge& e : buffer.mutable_entries()) {
    graph->AddEdge(std::move(e.vertices), e.constraint_index);
  }
}

Status ConflictDetector::Detect(const DenialConstraint& constraint,
                                uint32_t constraint_index,
                                ConflictHypergraph* graph) {
  EdgeBuffer buffer;
  if (options_.use_fd_fast_path && constraint.fd_info().has_value()) {
    HIPPO_RETURN_NOT_OK(DetectFdFastInto(constraint, constraint_index,
                                         /*shard=*/0, /*num_shards=*/1,
                                         &buffer, &stats_));
  } else {
    HIPPO_RETURN_NOT_OK(
        DetectGenericInto(constraint, constraint_index, &buffer, &stats_));
  }
  Flush(std::move(buffer), graph);
  return Status::OK();
}

Status ConflictDetector::DetectForeignKeyInto(const ForeignKeyConstraint& fk,
                                              uint32_t constraint_index,
                                              EdgeBuffer* out,
                                              DetectStats* stats) const {
  const Table& child = catalog_.table(fk.child_table());
  const Table& parent = catalog_.table(fk.parent_table());
  PlanNodePtr child_scan =
      ScanNode::Make(child.id(), child.name(), child.name(), child.schema(),
                     /*emit_rowid=*/true);
  PlanNodePtr parent_scan = ScanNode::Make(parent.id(), parent.name(),
                                           parent.name(), parent.schema());
  // AntiJoin keeps child rows with NO parent match: the orphans.
  size_t left_width = child_scan->schema().NumColumns();
  std::vector<ExprPtr> eqs;
  for (size_t i = 0; i < fk.child_columns().size(); ++i) {
    size_t ci = fk.child_columns()[i];
    size_t pi = fk.parent_columns()[i];
    eqs.push_back(std::make_unique<ComparisonExpr>(
        CompareOp::kEq,
        ColumnRefExpr::Bound(ci, child.schema().column(ci).type),
        ColumnRefExpr::Bound(left_width + pi,
                             parent.schema().column(pi).type)));
    eqs.back()->set_result_type(TypeId::kBool);
  }
  PlanNodePtr plan = std::make_unique<AntiJoinNode>(
      std::move(child_scan), std::move(parent_scan), AndAll(std::move(eqs)));
  ExecContext ctx{&catalog_, nullptr};
  HIPPO_ASSIGN_OR_RETURN(ResultSet orphans, Execute(*plan, ctx));
  size_t rowid_col = child.schema().NumColumns();
  for (const Row& row : orphans.rows) {
    out->Add({RowId{fk.child_table(),
                    static_cast<uint32_t>(row[rowid_col].AsInt())}},
             constraint_index);
    ++stats->edges_added;
  }
  return Status::OK();
}

Status ConflictDetector::DetectForeignKey(const ForeignKeyConstraint& fk,
                                          uint32_t constraint_index,
                                          ConflictHypergraph* graph) {
  EdgeBuffer buffer;
  HIPPO_RETURN_NOT_OK(
      DetectForeignKeyInto(fk, constraint_index, &buffer, &stats_));
  Flush(std::move(buffer), graph);
  return Status::OK();
}

namespace {

/// One schedulable piece of a DetectAll run: a whole constraint, one
/// determinant-hash shard of a large FD, or a foreign key.
struct DetectUnit {
  enum class Kind { kFdShard, kGeneric, kForeignKey };
  Kind kind = Kind::kGeneric;
  size_t list_index = 0;          ///< index into constraints / foreign_keys
  uint32_t constraint_index = 0;  ///< global provenance index
  size_t shard = 0;
  size_t num_shards = 1;
};

}  // namespace

Result<ConflictHypergraph> ConflictDetector::DetectAll(
    const std::vector<DenialConstraint>& constraints,
    const std::vector<ForeignKeyConstraint>& foreign_keys) {
  ConflictHypergraph graph;
  size_t num_threads = ResolveThreadCount(options_.num_threads);
  if (num_threads <= 1) {
    // Serial: preserve constraint-order edge insertion (stable historical
    // edge ids; structurally identical to the parallel path below).
    for (size_t i = 0; i < constraints.size(); ++i) {
      HIPPO_RETURN_NOT_OK(
          Detect(constraints[i], static_cast<uint32_t>(i), &graph));
    }
    for (size_t i = 0; i < foreign_keys.size(); ++i) {
      HIPPO_RETURN_NOT_OK(DetectForeignKey(
          foreign_keys[i], static_cast<uint32_t>(constraints.size() + i),
          &graph));
    }
    return graph;
  }

  // Plan the work units. An FD over a table larger than shard_rows is split
  // into determinant-hash-range shards (at most one per worker — each shard
  // pays one pass over the table for hashing, so more shards than workers
  // only adds overhead).
  std::vector<DetectUnit> units;
  for (size_t i = 0; i < constraints.size(); ++i) {
    const DenialConstraint& dc = constraints[i];
    DetectUnit unit;
    unit.list_index = i;
    unit.constraint_index = static_cast<uint32_t>(i);
    if (options_.use_fd_fast_path && dc.fd_info().has_value()) {
      unit.kind = DetectUnit::Kind::kFdShard;
      size_t rows = catalog_.table(dc.fd_info()->table_id).NumLiveRows();
      size_t num_shards = 1;
      if (options_.shard_rows > 0 && rows > options_.shard_rows) {
        num_shards = std::min(num_threads,
                              (rows + options_.shard_rows - 1) /
                                  options_.shard_rows);
      }
      unit.num_shards = num_shards;
      for (size_t s = 0; s < num_shards; ++s) {
        unit.shard = s;
        units.push_back(unit);
      }
    } else {
      unit.kind = DetectUnit::Kind::kGeneric;
      units.push_back(unit);
    }
  }
  for (size_t i = 0; i < foreign_keys.size(); ++i) {
    DetectUnit unit;
    unit.kind = DetectUnit::Kind::kForeignKey;
    unit.list_index = i;
    unit.constraint_index = static_cast<uint32_t>(constraints.size() + i);
    units.push_back(unit);
  }

  // Fan out: workers pull units off a shared counter, each unit staging
  // into its own buffer (indexed by unit, not worker, so nothing about the
  // output depends on the scheduling).
  size_t workers = std::min(num_threads, units.size());
  std::vector<EdgeBuffer> buffers(units.size());
  std::vector<DetectStats> worker_stats(workers);
  std::vector<Status> worker_status(workers);
  std::atomic<size_t> next{0};
  auto run_worker = [&](size_t w) {
    for (;;) {
      size_t u = next.fetch_add(1);
      if (u >= units.size()) return;
      const DetectUnit& unit = units[u];
      Status st;
      switch (unit.kind) {
        case DetectUnit::Kind::kFdShard:
          st = DetectFdFastInto(constraints[unit.list_index],
                                unit.constraint_index, unit.shard,
                                unit.num_shards, &buffers[u],
                                &worker_stats[w]);
          break;
        case DetectUnit::Kind::kGeneric:
          st = DetectGenericInto(constraints[unit.list_index],
                                 unit.constraint_index, &buffers[u],
                                 &worker_stats[w]);
          break;
        case DetectUnit::Kind::kForeignKey:
          st = DetectForeignKeyInto(foreign_keys[unit.list_index],
                                    unit.constraint_index, &buffers[u],
                                    &worker_stats[w]);
          break;
      }
      if (!st.ok()) {
        worker_status[w] = std::move(st);
        return;
      }
    }
  };
  if (workers <= 1) {
    run_worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) threads.emplace_back(run_worker, w);
    for (std::thread& t : threads) t.join();
  }
  for (size_t w = 0; w < workers; ++w) {
    HIPPO_RETURN_NOT_OK(worker_status[w]);
    stats_.edges_added += worker_stats[w].edges_added;
    stats_.fd_fast_path_constraints += worker_stats[w].fd_fast_path_constraints;
    stats_.generic_constraints += worker_stats[w].generic_constraints;
    stats_.fd_shards += worker_stats[w].fd_shards;
  }
  graph.BulkLoad(std::move(buffers));
  return graph;
}

}  // namespace hippo
