#include "detect/detector.h"

#include <unordered_map>

#include "common/str_util.h"
#include "exec/executor.h"

namespace hippo {

namespace {

/// Remaps a condition bound over the plain combined schema onto the layout
/// produced by rowid-emitting scans, where atom k's columns are shifted
/// right by k (one $rowid column per preceding atom).
ExprPtr RemapForRowidLayout(const Expr& condition,
                            const DenialConstraint& dc) {
  ExprPtr remapped = condition.Clone();
  VisitColumnRefs(remapped.get(), [&dc](ColumnRefExpr* ref) {
    int idx = ref->index();
    int atom = 0;
    for (size_t i = 0; i < dc.arity(); ++i) {
      if (static_cast<size_t>(idx) <
          dc.atom_offset(i) + dc.atom_width(i)) {
        atom = static_cast<int>(i);
        break;
      }
    }
    ref->ShiftIndex(atom);
  });
  return remapped;
}

}  // namespace

Status ConflictDetector::DetectGeneric(const DenialConstraint& dc,
                                       uint32_t constraint_index,
                                       ConflictHypergraph* graph) {
  ++stats_.generic_constraints;
  // Build a left-deep join plan over rowid-emitting scans. Conjuncts are
  // attached at the step where their last atom enters (as in the planner),
  // so equality conditions become hash joins.
  struct Pending {
    ExprPtr expr;
    int last_atom;
  };
  std::vector<Pending> conjuncts;
  if (dc.condition() != nullptr) {
    ExprPtr remapped = RemapForRowidLayout(*dc.condition(), dc);
    // Offsets in the rowid layout: atom i starts at atom_offset(i) + i.
    for (const Expr* part : SplitConjuncts(*remapped)) {
      Pending p;
      p.expr = part->Clone();
      p.last_atom = 0;
      for (int idx : CollectColumnIndexes(*p.expr)) {
        for (int i = static_cast<int>(dc.arity()) - 1; i >= 0; --i) {
          size_t start = dc.atom_offset(static_cast<size_t>(i)) +
                         static_cast<size_t>(i);
          if (static_cast<size_t>(idx) >= start) {
            p.last_atom = std::max(p.last_atom, i);
            break;
          }
        }
      }
      conjuncts.push_back(std::move(p));
    }
  }

  auto make_scan = [&](size_t i) -> PlanNodePtr {
    const ConstraintAtom& atom = dc.atoms()[i];
    const Table& table = catalog_.table(atom.table_id);
    return ScanNode::Make(atom.table_id, atom.table_name, atom.alias,
                          table.schema(), /*emit_rowid=*/true);
  };

  PlanNodePtr plan = make_scan(0);
  for (size_t i = 1; i < dc.arity(); ++i) {
    PlanNodePtr right = make_scan(i);
    std::vector<ExprPtr> conds;
    for (Pending& p : conjuncts) {
      if (p.expr != nullptr && p.last_atom == static_cast<int>(i)) {
        conds.push_back(std::move(p.expr));
      }
    }
    if (conds.empty()) {
      plan = std::make_unique<ProductNode>(std::move(plan), std::move(right));
    } else {
      plan = std::make_unique<JoinNode>(std::move(plan), std::move(right),
                                        AndAll(std::move(conds)));
    }
  }
  // Conjuncts confined to atom 0 (or a unary constraint's whole condition).
  {
    std::vector<ExprPtr> rest;
    for (Pending& p : conjuncts) {
      if (p.expr != nullptr) rest.push_back(std::move(p.expr));
    }
    if (!rest.empty()) {
      plan = std::make_unique<FilterNode>(std::move(plan),
                                          AndAll(std::move(rest)));
    }
  }

  ExecContext ctx{&catalog_, nullptr};
  HIPPO_ASSIGN_OR_RETURN(ResultSet witnesses, Execute(*plan, ctx));

  // The rowid column of atom i sits at atom_offset(i) + i + width(i).
  std::vector<size_t> rowid_cols;
  for (size_t i = 0; i < dc.arity(); ++i) {
    rowid_cols.push_back(dc.atom_offset(i) + i + dc.atom_width(i));
  }
  for (const Row& row : witnesses.rows) {
    std::vector<RowId> edge;
    edge.reserve(dc.arity());
    for (size_t i = 0; i < dc.arity(); ++i) {
      edge.push_back(RowId{
          dc.atoms()[i].table_id,
          static_cast<uint32_t>(row[rowid_cols[i]].AsInt())});
    }
    graph->AddEdge(std::move(edge), constraint_index);
    ++stats_.edges_added;
  }
  return Status::OK();
}

Status ConflictDetector::DetectFdFast(const DenialConstraint& dc,
                                      uint32_t constraint_index,
                                      ConflictHypergraph* graph) {
  ++stats_.fd_fast_path_constraints;
  const FdInfo& fd = *dc.fd_info();
  const Table& table = catalog_.table(fd.table_id);

  // Group rows by determinant values.
  std::unordered_map<Row, std::vector<uint32_t>, RowHasher, RowEq> groups;
  groups.reserve(table.NumRows());
  for (uint32_t i = 0; i < table.NumRows(); ++i) {
    if (!table.IsLive(i)) continue;
    const Row& row = table.row(i);
    Row key;
    key.reserve(fd.lhs.size());
    for (size_t c : fd.lhs) key.push_back(row[c]);
    groups[std::move(key)].push_back(i);
  }
  auto rhs_differ = [&](uint32_t a, uint32_t b) {
    const Row& ra = table.row(a);
    const Row& rb = table.row(b);
    for (size_t c : fd.rhs) {
      // NULL-safe structural comparison, consistent with the generic path's
      // SQL `<>`: NULLs never satisfy `<>`, so NULL vs anything is "equal"
      // for violation purposes only if both are NULL; a NULL on either side
      // makes `<>` unknown and thus NOT a violation.
      if (ra[c].is_null() || rb[c].is_null()) continue;
      if (!(ra[c] == rb[c])) return true;
    }
    return false;
  };
  for (const auto& [key, members] : groups) {
    if (members.size() < 2) continue;
    // NULL determinants never satisfy t1.l = t2.l in the generic path.
    bool key_has_null = false;
    for (const Value& v : key) {
      if (v.is_null()) {
        key_has_null = true;
        break;
      }
    }
    if (key_has_null) continue;
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        if (rhs_differ(members[a], members[b])) {
          graph->AddEdge({RowId{fd.table_id, members[a]},
                          RowId{fd.table_id, members[b]}},
                         constraint_index);
          ++stats_.edges_added;
        }
      }
    }
  }
  return Status::OK();
}

Status ConflictDetector::Detect(const DenialConstraint& constraint,
                                uint32_t constraint_index,
                                ConflictHypergraph* graph) {
  if (options_.use_fd_fast_path && constraint.fd_info().has_value()) {
    return DetectFdFast(constraint, constraint_index, graph);
  }
  return DetectGeneric(constraint, constraint_index, graph);
}

Status ConflictDetector::DetectForeignKey(const ForeignKeyConstraint& fk,
                                          uint32_t constraint_index,
                                          ConflictHypergraph* graph) {
  const Table& child = catalog_.table(fk.child_table());
  const Table& parent = catalog_.table(fk.parent_table());
  PlanNodePtr child_scan =
      ScanNode::Make(child.id(), child.name(), child.name(), child.schema(),
                     /*emit_rowid=*/true);
  PlanNodePtr parent_scan = ScanNode::Make(parent.id(), parent.name(),
                                           parent.name(), parent.schema());
  // AntiJoin keeps child rows with NO parent match: the orphans.
  size_t left_width = child_scan->schema().NumColumns();
  std::vector<ExprPtr> eqs;
  for (size_t i = 0; i < fk.child_columns().size(); ++i) {
    size_t ci = fk.child_columns()[i];
    size_t pi = fk.parent_columns()[i];
    eqs.push_back(std::make_unique<ComparisonExpr>(
        CompareOp::kEq,
        ColumnRefExpr::Bound(ci, child.schema().column(ci).type),
        ColumnRefExpr::Bound(left_width + pi,
                             parent.schema().column(pi).type)));
    eqs.back()->set_result_type(TypeId::kBool);
  }
  PlanNodePtr plan = std::make_unique<AntiJoinNode>(
      std::move(child_scan), std::move(parent_scan), AndAll(std::move(eqs)));
  ExecContext ctx{&catalog_, nullptr};
  HIPPO_ASSIGN_OR_RETURN(ResultSet orphans, Execute(*plan, ctx));
  size_t rowid_col = child.schema().NumColumns();
  for (const Row& row : orphans.rows) {
    graph->AddEdge({RowId{fk.child_table(),
                          static_cast<uint32_t>(row[rowid_col].AsInt())}},
                   constraint_index);
    ++stats_.edges_added;
  }
  return Status::OK();
}

Result<ConflictHypergraph> ConflictDetector::DetectAll(
    const std::vector<DenialConstraint>& constraints,
    const std::vector<ForeignKeyConstraint>& foreign_keys) {
  ConflictHypergraph graph;
  for (size_t i = 0; i < constraints.size(); ++i) {
    HIPPO_RETURN_NOT_OK(
        Detect(constraints[i], static_cast<uint32_t>(i), &graph));
  }
  for (size_t i = 0; i < foreign_keys.size(); ++i) {
    HIPPO_RETURN_NOT_OK(DetectForeignKey(
        foreign_keys[i], static_cast<uint32_t>(constraints.size() + i),
        &graph));
  }
  return graph;
}

}  // namespace hippo
