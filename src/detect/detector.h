// Conflict detection: evaluating integrity constraints over the instance and
// recording every violation witness as a hyperedge.
//
// The generic path compiles a denial constraint into a join plan over
// rowid-emitting scans (so equality conditions execute as hash joins) and
// collects the rowid columns of each result row. FDs additionally have a
// hash-grouping fast path: group by the determinant, emit an edge for every
// pair in a group that differs on the dependent columns.
#pragma once

#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "constraints/constraint.h"
#include "constraints/foreign_key.h"
#include "hypergraph/hypergraph.h"

namespace hippo {

struct DetectOptions {
  /// Use the hash-grouping fast path for constraints with FD provenance.
  bool use_fd_fast_path = true;
};

struct DetectStats {
  size_t edges_added = 0;
  size_t fd_fast_path_constraints = 0;
  size_t generic_constraints = 0;
};

class ConflictDetector {
 public:
  explicit ConflictDetector(const Catalog& catalog,
                            DetectOptions options = DetectOptions())
      : catalog_(catalog), options_(options) {}

  /// Detects violations of one constraint, adding edges to `graph`.
  Status Detect(const DenialConstraint& constraint, uint32_t constraint_index,
                ConflictHypergraph* graph);

  /// Detects orphaned child tuples of a restricted foreign key: each orphan
  /// can never regain a parent (the parent relation is immutable across
  /// repairs), so it becomes a unary hyperedge.
  Status DetectForeignKey(const ForeignKeyConstraint& fk,
                          uint32_t constraint_index,
                          ConflictHypergraph* graph);

  /// Detects violations of all constraints into a fresh hypergraph. Foreign
  /// keys receive constraint indexes following the denial constraints'.
  Result<ConflictHypergraph> DetectAll(
      const std::vector<DenialConstraint>& constraints,
      const std::vector<ForeignKeyConstraint>& foreign_keys = {});

  const DetectStats& stats() const { return stats_; }

 private:
  Status DetectGeneric(const DenialConstraint& constraint,
                       uint32_t constraint_index, ConflictHypergraph* graph);
  Status DetectFdFast(const DenialConstraint& constraint,
                      uint32_t constraint_index, ConflictHypergraph* graph);

  const Catalog& catalog_;
  DetectOptions options_;
  DetectStats stats_;
};

}  // namespace hippo
