// Conflict detection: evaluating integrity constraints over the instance and
// recording every violation witness as a hyperedge.
//
// The generic path compiles a denial constraint into a join plan over
// rowid-emitting scans (so equality conditions execute as hash joins) and
// collects the rowid columns of each result row. FDs additionally have a
// hash-grouping fast path: group by the determinant, emit an edge for every
// pair in a group that differs on the dependent columns.
//
// DetectAll parallelizes across constraints and, within one constraint,
// across determinant-hash shards (large FDs), probe-side row-range
// partitions of the generic join path, and child-row partitions of the FK
// anti-join; every work unit stages edges into a private EdgeBuffer and
// the buffers are merged deterministically by
// ConflictHypergraph::BulkLoad (see detector.cc).
#pragma once

#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "common/parallel.h"
#include "common/status.h"
#include "constraints/constraint.h"
#include "constraints/foreign_key.h"
#include "exec/executor.h"
#include "hypergraph/hypergraph.h"

namespace hippo {

struct DetectOptions {
  /// Use the hash-grouping fast path for constraints with FD provenance.
  bool use_fd_fast_path = true;

  /// Detection worker threads for DetectAll: constraints — and intra-
  /// constraint units: determinant-hash shards of large FDs, probe-side
  /// partitions of large generic joins, child partitions of large FKs —
  /// fan out across this many workers, each staging edges into a private
  /// EdgeBuffer; the buffers are merged deterministically with
  /// ConflictHypergraph::BulkLoad, so the resulting graph — edges, ids and
  /// provenance — is identical for every thread count > 1. The serial run
  /// (1, or 0 resolving to one hardware thread) produces the same edges
  /// and provenance but numbers edge ids in historical
  /// constraint/discovery order rather than BulkLoad's sorted order.
  /// 0 means "use all hardware threads" (ResolveThreadCount).
  /// Service callers: set service::ServiceOptions::threads once and let
  /// service::EffectiveOptions::Resolve derive this field instead of
  /// setting it here directly.
  size_t num_threads = 1;

  /// Minimum live row slots of an FD table per grouping shard: when
  /// num_threads > 1 and the table exceeds this, the FD fast path is split
  /// into determinant-hash-range shards (each shard groups only the keys
  /// hashing into its range), so a single hot table also parallelizes.
  /// Must be >= 1 (Validate); use SIZE_MAX to disable FD sharding.
  size_t shard_rows = 16384;

  /// Minimum probe-side live rows of a generic-join constraint (or child
  /// rows of a foreign key) per row-range partition: when num_threads > 1
  /// and the probe side exceeds this, the unit is split into contiguous
  /// partitions of the materialized probe input. The build sides are
  /// materialized and hash-built ONCE per constraint (by the first worker
  /// to arrive, under a once-flag) and probed read-only by every
  /// partition, so a single hot generic constraint parallelizes without
  /// duplicating build work. Must be >= 1 (Validate); use SIZE_MAX to
  /// disable probe partitioning.
  size_t partition_rows = 8192;

  /// Physical engine for the generic-join and foreign-key probes: kBatch
  /// probes the tables' shared columnar views with the batch join kernels
  /// (witness rowids read straight off the scan's physical indexes, no row
  /// materialization); kRow keeps the row-at-a-time kernels as the
  /// differential-testing oracle. Both produce identical edges, edge ids,
  /// and provenance. The FD fast path is engine-independent. Declared last
  /// so the positional `{fast_path, threads, shard, partition}` brace
  /// initializers in existing callers stay valid.
  ExecEngine engine = ExecEngine::kBatch;

  /// Rejects nonsensical combinations with InvalidArgument instead of a
  /// silent fallback: zero shard_rows / partition_rows (formerly a hidden
  /// "disable" value) and absurd thread counts (> kMaxThreads; 0 still
  /// means "all hardware threads"). Checked by every DetectAll run.
  Status Validate() const;

  /// Upper bound Validate() accepts for num_threads — far above any real
  /// machine; catches garbage (e.g. size_t underflow) early.
  static constexpr size_t kMaxThreads = 4096;
};

struct DetectStats {
  size_t edges_added = 0;
  size_t fd_fast_path_constraints = 0;
  size_t generic_constraints = 0;
  /// Grouping shards executed for FD constraints that were split (0 when
  /// nothing was sharded; each sharded FD contributes all of its shards).
  size_t fd_shards = 0;
  /// Probe-side partitions executed for generic constraints that were
  /// split (0 when nothing was partitioned).
  size_t generic_partitions = 0;
  /// Child-row partitions executed for foreign keys that were split.
  size_t fk_partitions = 0;
};

class ConflictDetector {
 public:
  explicit ConflictDetector(const Catalog& catalog,
                            DetectOptions options = DetectOptions())
      : catalog_(catalog), options_(options) {}

  /// Detects violations of one constraint, adding edges to `graph`.
  Status Detect(const DenialConstraint& constraint, uint32_t constraint_index,
                ConflictHypergraph* graph);

  /// Detects orphaned child tuples of a restricted foreign key: each orphan
  /// can never regain a parent (the parent relation is immutable across
  /// repairs), so it becomes a unary hyperedge.
  Status DetectForeignKey(const ForeignKeyConstraint& fk,
                          uint32_t constraint_index,
                          ConflictHypergraph* graph);

  /// Detects violations of all constraints into a fresh hypergraph. Foreign
  /// keys receive constraint indexes following the denial constraints'.
  /// With options.num_threads > 1 the constraints (and determinant-hash
  /// shards of large FDs) are detected concurrently into private
  /// EdgeBuffers and merged with ConflictHypergraph::BulkLoad; the result
  /// is set-equal to the serial run (same canonical edges and provenance;
  /// edge ids follow BulkLoad's sorted order instead of the serial
  /// insertion order) and id-identical across all parallel runs.
  Result<ConflictHypergraph> DetectAll(
      const std::vector<DenialConstraint>& constraints,
      const std::vector<ForeignKeyConstraint>& foreign_keys = {});

  const DetectStats& stats() const { return stats_; }

 private:
  // Lazily-built shared read-only state for one partitioned work unit (the
  // materialized inputs plus the hash-join build tables); defined in
  // detector.cc, built under a once-flag by the first partition's worker.
  struct GenericShared;
  struct FkShared;

  /// Stage-into-buffer internals, shared by the serial and parallel paths.
  /// They are const (catalog and options are read-only), so workers can run
  /// them concurrently, each with its own buffer and stats accumulator.
  Status DetectGenericInto(const DenialConstraint& constraint,
                           uint32_t constraint_index, EdgeBuffer* out,
                           DetectStats* stats) const;
  /// One probe-side row-range partition of a generic constraint: ensures
  /// `shared` is built (first caller wins, under its once-flag), then
  /// probes rows [partition * n / num_partitions, ...) of the probe input
  /// against the shared build state.
  Status DetectGenericPartitionInto(const DenialConstraint& constraint,
                                    uint32_t constraint_index,
                                    GenericShared* shared, size_t partition,
                                    size_t num_partitions, EdgeBuffer* out,
                                    DetectStats* stats) const;
  Status DetectFdFastInto(const DenialConstraint& constraint,
                          uint32_t constraint_index, size_t shard,
                          size_t num_shards, EdgeBuffer* out,
                          DetectStats* stats) const;
  Status DetectForeignKeyInto(const ForeignKeyConstraint& fk,
                              uint32_t constraint_index, EdgeBuffer* out,
                              DetectStats* stats) const;
  /// One child-row partition of a foreign key's orphan anti-join, probing
  /// the shared parent build state.
  Status DetectForeignKeyPartitionInto(const ForeignKeyConstraint& fk,
                                       uint32_t constraint_index,
                                       FkShared* shared, size_t partition,
                                       size_t num_partitions,
                                       EdgeBuffer* out,
                                       DetectStats* stats) const;

  /// Flushes a staged buffer into `graph` in staging order (the serial
  /// insertion-order behavior of Detect/DetectForeignKey).
  static void Flush(EdgeBuffer buffer, ConflictHypergraph* graph);

  const Catalog& catalog_;
  DetectOptions options_;
  DetectStats stats_;
};

}  // namespace hippo
