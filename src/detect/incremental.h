// Incremental maintenance of the conflict hypergraph under updates.
//
// The paper's second motivating scenario is "a long-running activity where
// consistency can be violated only temporarily and future updates will
// restore it" — a setting where the database keeps changing and re-running
// full conflict detection after every statement would dominate the cost of
// answering queries. Denial constraints are anti-monotone (removing a tuple
// never creates a violation), so the hypergraph can be maintained exactly:
//
//   * INSERT t:  only violations *involving t* can appear. They are found by
//     pinning one constraint atom to t and evaluating the rest:
//       - unary constraints: evaluate the condition on t directly;
//       - binary constraints whose condition contains cross-atom equalities
//         (FDs, exclusion constraints, most denial rules): probe a hash
//         index keyed on the equated columns, then check the residual
//         condition — O(partners) per insert;
//       - other constraints: nested-loop over the remaining atoms
//         (polynomial fallback, mirrors the full detector's semantics).
//   * DELETE t:  every edge incident to t vanishes, and no new denial
//     violations can appear.
//   * Restricted foreign keys are the one non-anti-monotone case: deleting
//     a parent tuple orphans its children (new unary edges) and inserting a
//     parent can cure orphans (edge removal). Both transitions are tracked
//     with per-key parent counts and child lists.
//
// The maintained graph is structurally identical to a fresh run of
// ConflictDetector::DetectAll (differential-tested in
// tests/incremental_test.cc), with stable edge ids for unchanged conflicts.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "constraints/constraint.h"
#include "constraints/foreign_key.h"
#include "hypergraph/hypergraph.h"

namespace hippo {

struct IncrementalStats {
  size_t inserts = 0;
  size_t deletes = 0;
  size_t edges_added = 0;
  size_t edges_removed = 0;
  /// Bucket partners examined by the binary-equi fast path.
  size_t fast_path_probes = 0;
  /// Atom assignments evaluated by the nested-loop fallback.
  size_t fallback_rows = 0;
};

/// \brief Maintains a ConflictHypergraph under single-tuple insert/delete.
///
/// Non-owning: the catalog, constraint lists, and graph must outlive the
/// detector, and the constraint lists must not change while it is in use
/// (Database rebuilds the detector whenever a constraint is added).
///
/// Replay contract (service commit pipeline): because OnInsert/OnDelete
/// depend only on the graph/instance state they are applied to — not on
/// wall time or on which thread applies them — re-executing the same DML
/// sequence against a re-detected fork of the instance converges to the
/// same edges and provenance as maintaining the original. That is what
/// makes the pipeline's async-round replay sound (DESIGN.md §5).
class IncrementalDetector {
 public:
  /// Builds the auxiliary indexes from the current (live) instance. `graph`
  /// must be the conflict hypergraph of that same instance. Constraint
  /// indexes follow DetectAll's convention: denial constraints first, then
  /// foreign keys.
  static Result<std::unique_ptr<IncrementalDetector>> Make(
      const Catalog& catalog,
      const std::vector<DenialConstraint>& constraints,
      const std::vector<ForeignKeyConstraint>& foreign_keys,
      ConflictHypergraph* graph);

  /// Accounts for a newly inserted (or resurrected) live row.
  Status OnInsert(RowId rid);

  /// Accounts for a just-tombstoned row (call after Table::Delete).
  Status OnDelete(RowId rid);

  const IncrementalStats& stats() const { return stats_; }

 private:
  using RowIndex =
      std::unordered_map<Row, std::vector<uint32_t>, RowHasher, RowEq>;

  /// A binary constraint with cross-atom equality conjuncts: partner lookup
  /// is a hash probe on the equated columns.
  struct BinaryEqui {
    uint32_t constraint_index = 0;
    const DenialConstraint* dc = nullptr;
    std::vector<size_t> key_cols[2];  ///< per side, in matching pair order
    ExprPtr residual;  ///< over the combined schema; null means TRUE
    RowIndex index[2];
  };

  /// Unary constraint: membership is decided by the tuple alone.
  struct Unary {
    uint32_t constraint_index = 0;
    const DenialConstraint* dc = nullptr;
  };

  /// Anything else: pin one atom, nested-loop the others.
  struct Fallback {
    uint32_t constraint_index = 0;
    const DenialConstraint* dc = nullptr;
  };

  struct FkState {
    uint32_t constraint_index = 0;
    const ForeignKeyConstraint* fk = nullptr;
    /// Live parent rows per referenced-key value.
    std::unordered_map<Row, size_t, RowHasher, RowEq> parent_count;
    /// Live child rows per referencing-key value (NULL-keyed children are
    /// permanent orphans and are not tracked).
    RowIndex children;
  };

  IncrementalDetector(const Catalog& catalog, ConflictHypergraph* graph)
      : catalog_(catalog), graph_(graph) {}

  Status BuildIndexes();

  /// True when some live parent row carries `key`.
  static bool HasLiveParent(const FkState& fk, const Row& key);

  /// True when `child` is a live orphan under `fk`: its key is NULL
  /// (permanent orphan) or has no live parent row.
  bool IsOrphanUnder(const FkState& fk, RowId child) const;

  Status InsertUnary(const Unary& u, RowId rid);
  Status InsertBinaryEqui(BinaryEqui* be, RowId rid);
  Status InsertFallback(const Fallback& fb, RowId rid);
  Status InsertFk(FkState* fk, RowId rid);
  Status DeleteFk(FkState* fk, RowId rid);

  /// Removes `rid`'s entry from an index bucket.
  static void RemoveFromBucket(RowIndex* index, const Row& key, uint32_t row);

  /// Extracts the key values of `row` at `cols`; false when any is NULL.
  static bool ExtractKey(const Row& row, const std::vector<size_t>& cols,
                         Row* key);

  void AddEdgeCounted(std::vector<RowId> vertices, uint32_t constraint_index);

  const Catalog& catalog_;
  ConflictHypergraph* graph_;
  std::vector<Unary> unary_;
  std::vector<BinaryEqui> binary_;
  std::vector<Fallback> fallback_;
  std::vector<FkState> fks_;
  IncrementalStats stats_;
};

}  // namespace hippo
