#include "expr/binder.h"

#include "common/str_util.h"

namespace hippo {

namespace {

bool IsNumeric(TypeId t) { return t == TypeId::kInt || t == TypeId::kDouble; }

bool Comparable(TypeId a, TypeId b) {
  if (a == TypeId::kNull || b == TypeId::kNull) return true;
  if (IsNumeric(a) && IsNumeric(b)) return true;
  return a == b;
}

}  // namespace

Status ExprBinder::Bind(Expr* expr) const {
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return Status::OK();
    case ExprKind::kColumnRef: {
      auto* ref = static_cast<ColumnRefExpr*>(expr);
      if (ref->IsBound()) return Status::OK();
      HIPPO_ASSIGN_OR_RETURN(
          size_t idx, schema_.ResolveColumn(ref->qualifier(), ref->name()));
      ref->Bind(idx, schema_.column(idx).type);
      return Status::OK();
    }
    case ExprKind::kComparison: {
      auto* cmp = static_cast<ComparisonExpr*>(expr);
      HIPPO_RETURN_NOT_OK(Bind(cmp->mutable_left()));
      HIPPO_RETURN_NOT_OK(Bind(cmp->mutable_right()));
      TypeId lt = cmp->left().result_type();
      TypeId rt = cmp->right().result_type();
      if (!Comparable(lt, rt)) {
        return Status::TypeError(StrFormat(
            "cannot compare %s with %s in %s", TypeIdToString(lt),
            TypeIdToString(rt), cmp->ToString().c_str()));
      }
      if ((lt == TypeId::kBool || rt == TypeId::kBool) &&
          cmp->op() != CompareOp::kEq && cmp->op() != CompareOp::kNe) {
        return Status::TypeError("BOOLEAN supports only = and <>: " +
                                 cmp->ToString());
      }
      cmp->set_result_type(TypeId::kBool);
      return Status::OK();
    }
    case ExprKind::kLogical: {
      auto* log = static_cast<LogicalExpr*>(expr);
      for (size_t i = 0; i < log->NumChildren(); ++i) {
        Expr* child = log->mutable_child(i);
        HIPPO_RETURN_NOT_OK(Bind(child));
        if (child->result_type() != TypeId::kBool &&
            child->result_type() != TypeId::kNull) {
          return Status::TypeError(
              "logical operand is not BOOLEAN: " + child->ToString());
        }
      }
      log->set_result_type(TypeId::kBool);
      return Status::OK();
    }
    case ExprKind::kArithmetic: {
      auto* ar = static_cast<ArithmeticExpr*>(expr);
      HIPPO_RETURN_NOT_OK(Bind(const_cast<Expr*>(&ar->left())));
      HIPPO_RETURN_NOT_OK(Bind(const_cast<Expr*>(&ar->right())));
      TypeId lt = ar->left().result_type();
      TypeId rt = ar->right().result_type();
      auto num_or_null = [](TypeId t) {
        return IsNumeric(t) || t == TypeId::kNull;
      };
      if (!num_or_null(lt) || !num_or_null(rt)) {
        return Status::TypeError("arithmetic requires numeric operands: " +
                                 ar->ToString());
      }
      if (ar->op() == ArithOp::kMod &&
          (lt == TypeId::kDouble || rt == TypeId::kDouble)) {
        return Status::TypeError("% requires INTEGER operands: " +
                                 ar->ToString());
      }
      ar->set_result_type((lt == TypeId::kDouble || rt == TypeId::kDouble)
                              ? TypeId::kDouble
                              : TypeId::kInt);
      return Status::OK();
    }
    case ExprKind::kIsNull: {
      auto* n = static_cast<IsNullExpr*>(expr);
      HIPPO_RETURN_NOT_OK(Bind(const_cast<Expr*>(&n->child())));
      n->set_result_type(TypeId::kBool);
      return Status::OK();
    }
    case ExprKind::kAggCall: {
      if (!allow_aggregates_) {
        return Status::InvalidArgument(
            "aggregate calls are only allowed in the SELECT list and "
            "HAVING clause: " + expr->ToString());
      }
      auto* agg = static_cast<AggCallExpr*>(expr);
      if (agg->is_count_star()) {
        agg->set_result_type(TypeId::kInt);
        return Status::OK();
      }
      Expr* arg = agg->mutable_arg();
      HIPPO_RETURN_NOT_OK(Bind(arg));
      if (ContainsAggCall(*arg)) {
        return Status::InvalidArgument("nested aggregate call: " +
                                       expr->ToString());
      }
      TypeId at = arg->result_type();
      switch (agg->fn()) {
        case AggFunc::kCount:
          agg->set_result_type(TypeId::kInt);
          break;
        case AggFunc::kSum:
          if (!IsNumeric(at) && at != TypeId::kNull) {
            return Status::TypeError("SUM requires a numeric argument: " +
                                     expr->ToString());
          }
          agg->set_result_type(at == TypeId::kDouble ? TypeId::kDouble
                                                     : TypeId::kInt);
          break;
        case AggFunc::kAvg:
          if (!IsNumeric(at) && at != TypeId::kNull) {
            return Status::TypeError("AVG requires a numeric argument: " +
                                     expr->ToString());
          }
          agg->set_result_type(TypeId::kDouble);
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          agg->set_result_type(at);
          break;
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable expression kind");
}

Status ExprBinder::BindPredicate(Expr* expr) const {
  HIPPO_RETURN_NOT_OK(Bind(expr));
  if (expr->result_type() != TypeId::kBool &&
      expr->result_type() != TypeId::kNull) {
    return Status::TypeError("predicate is not BOOLEAN: " + expr->ToString());
  }
  return Status::OK();
}

}  // namespace hippo
