// Evaluation of bound scalar expressions with SQL three-valued logic.
#pragma once

#include "expr/expr.h"
#include "types/value.h"

namespace hippo {

/// Evaluates a bound expression over an input row. NULL propagates through
/// comparisons and arithmetic; AND/OR/NOT follow Kleene three-valued logic
/// (the NULL truth value is represented by a NULL Value).
Value EvalExpr(const Expr& expr, const Row& row);

/// SQL WHERE semantics: true iff the predicate evaluates to (non-NULL) TRUE.
bool EvalPredicate(const Expr& expr, const Row& row);

/// Evaluates an expression with no column references (constant).
Value EvalConst(const Expr& expr);

}  // namespace hippo
