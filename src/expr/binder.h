// Binding: resolving column references against a schema and type-checking.
#pragma once

#include "catalog/schema.h"
#include "common/status.h"
#include "expr/expr.h"

namespace hippo {

/// \brief Resolves names and assigns result types in an expression tree.
///
/// Binding rules:
///  * column references resolve case-insensitively, honoring qualifiers;
///  * comparison operands must have comparable types (numeric with numeric,
///    otherwise equal types); result is BOOLEAN;
///  * logical operands must be BOOLEAN;
///  * arithmetic operands must be numeric; result is INTEGER when both are,
///    DOUBLE otherwise;
///  * NULL literals are allowed anywhere a value is (typed kNull).
class ExprBinder {
 public:
  explicit ExprBinder(const Schema& schema) : schema_(schema) {}
  /// The binder keeps a reference; binding it to a temporary would dangle.
  explicit ExprBinder(Schema&&) = delete;

  /// Permits aggregate calls in the bound tree (SELECT list / HAVING only;
  /// off by default so WHERE clauses, constraints, and DML reject them).
  void set_allow_aggregates(bool allow) { allow_aggregates_ = allow; }

  /// Binds in place.
  Status Bind(Expr* expr) const;

  /// Convenience: binds and requires a BOOLEAN result (for predicates).
  Status BindPredicate(Expr* expr) const;

 private:
  const Schema& schema_;
  bool allow_aggregates_ = false;
};

}  // namespace hippo
