// Scalar expression AST shared by the SQL front end, the planner, the
// execution engine, and the constraint subsystem.
//
// Expressions are produced unbound by the parser (column references carry
// names), then bound against a Schema (references get ordinal indexes and
// every node gets a result type). Only bound expressions can be evaluated.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "types/value.h"

namespace hippo {

enum class ExprKind : uint8_t {
  kLiteral,
  kColumnRef,
  kComparison,
  kLogical,
  kArithmetic,
  kIsNull,
  kAggCall,
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicalOp : uint8_t { kAnd, kOr, kNot };
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv, kMod };

const char* CompareOpToString(CompareOp op);
const char* ArithOpToString(ArithOp op);
/// kEq -> kEq, kLt -> kGt, etc. (mirror for swapped operands).
CompareOp FlipCompare(CompareOp op);
/// kEq -> kNe, kLt -> kGe, etc. (logical negation).
CompareOp NegateCompare(CompareOp op);

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// \brief Base class of all scalar expression nodes.
class Expr {
 public:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }

  /// Result type; meaningful only after binding.
  TypeId result_type() const { return result_type_; }
  void set_result_type(TypeId t) { result_type_ = t; }

  /// True once column references have been resolved to ordinals.
  virtual bool IsBound() const = 0;

  /// Deep copy (preserves binding state).
  virtual ExprPtr Clone() const = 0;

  /// SQL-ish rendering for diagnostics.
  virtual std::string ToString() const = 0;

 private:
  ExprKind kind_;
  TypeId result_type_ = TypeId::kNull;
};

/// A constant.
class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral), value_(std::move(v)) {
    set_result_type(value_.type());
  }
  const Value& value() const { return value_; }
  bool IsBound() const override { return true; }
  ExprPtr Clone() const override;
  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

/// A reference to a column of the input row, by [qualifier.]name before
/// binding and by ordinal index after.
class ColumnRefExpr final : public Expr {
 public:
  ColumnRefExpr(std::string qualifier, std::string name)
      : Expr(ExprKind::kColumnRef),
        qualifier_(std::move(qualifier)),
        name_(std::move(name)) {}

  /// Creates an already-bound reference (used by plan rewrites).
  static ExprPtr Bound(size_t index, TypeId type, std::string name = "",
                       std::string qualifier = "");

  const std::string& qualifier() const { return qualifier_; }
  const std::string& name() const { return name_; }
  int index() const { return index_; }
  void Bind(size_t index, TypeId type) {
    index_ = static_cast<int>(index);
    set_result_type(type);
  }
  /// Rebases a bound index (e.g. when an expression over the right side of a
  /// product is re-evaluated over the concatenated row).
  void ShiftIndex(int delta) {
    HIPPO_DCHECK(index_ >= 0);
    index_ += delta;
  }

  bool IsBound() const override { return index_ >= 0; }
  ExprPtr Clone() const override;
  std::string ToString() const override;

 private:
  std::string qualifier_;
  std::string name_;
  int index_ = -1;
};

/// l <op> r for a comparison operator.
class ComparisonExpr final : public Expr {
 public:
  ComparisonExpr(CompareOp op, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kComparison),
        op_(op),
        left_(std::move(l)),
        right_(std::move(r)) {}

  CompareOp op() const { return op_; }
  const Expr& left() const { return *left_; }
  const Expr& right() const { return *right_; }
  Expr* mutable_left() { return left_.get(); }
  Expr* mutable_right() { return right_.get(); }

  bool IsBound() const override {
    return left_->IsBound() && right_->IsBound();
  }
  ExprPtr Clone() const override;
  std::string ToString() const override;

 private:
  CompareOp op_;
  ExprPtr left_, right_;
};

/// AND/OR over 2+ children, or NOT over exactly 1.
class LogicalExpr final : public Expr {
 public:
  LogicalExpr(LogicalOp op, std::vector<ExprPtr> children)
      : Expr(ExprKind::kLogical), op_(op), children_(std::move(children)) {
    HIPPO_DCHECK(op_ == LogicalOp::kNot ? children_.size() == 1
                                        : children_.size() >= 2);
  }

  static ExprPtr MakeAnd(ExprPtr a, ExprPtr b);
  static ExprPtr MakeOr(ExprPtr a, ExprPtr b);
  static ExprPtr MakeNot(ExprPtr a);

  LogicalOp op() const { return op_; }
  size_t NumChildren() const { return children_.size(); }
  const Expr& child(size_t i) const { return *children_[i]; }
  Expr* mutable_child(size_t i) { return children_[i].get(); }

  bool IsBound() const override {
    for (const auto& c : children_) {
      if (!c->IsBound()) return false;
    }
    return true;
  }
  ExprPtr Clone() const override;
  std::string ToString() const override;

 private:
  LogicalOp op_;
  std::vector<ExprPtr> children_;
};

/// Numeric arithmetic.
class ArithmeticExpr final : public Expr {
 public:
  ArithmeticExpr(ArithOp op, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kArithmetic),
        op_(op),
        left_(std::move(l)),
        right_(std::move(r)) {}

  ArithOp op() const { return op_; }
  const Expr& left() const { return *left_; }
  const Expr& right() const { return *right_; }

  bool IsBound() const override {
    return left_->IsBound() && right_->IsBound();
  }
  ExprPtr Clone() const override;
  std::string ToString() const override;

 private:
  ArithOp op_;
  ExprPtr left_, right_;
};

/// SQL aggregate functions usable in a SELECT list / HAVING clause.
enum class AggFunc : uint8_t { kCount, kSum, kMin, kMax, kAvg };

const char* AggFuncToString(AggFunc fn);

/// An aggregate call `FN(arg)` or `COUNT(*)`. Never evaluated directly:
/// the planner extracts aggregate calls into an AggregateNode and replaces
/// them with column references over its output.
class AggCallExpr final : public Expr {
 public:
  /// `arg` is null for COUNT(*).
  AggCallExpr(AggFunc fn, ExprPtr arg)
      : Expr(ExprKind::kAggCall), fn_(fn), arg_(std::move(arg)) {}

  AggFunc fn() const { return fn_; }
  bool is_count_star() const { return arg_ == nullptr; }
  const Expr& arg() const { return *arg_; }
  Expr* mutable_arg() { return arg_.get(); }

  bool IsBound() const override {
    return arg_ == nullptr || arg_->IsBound();
  }
  ExprPtr Clone() const override;
  std::string ToString() const override;

 private:
  AggFunc fn_;
  ExprPtr arg_;
};

/// expr IS [NOT] NULL.
class IsNullExpr final : public Expr {
 public:
  IsNullExpr(ExprPtr child, bool negated)
      : Expr(ExprKind::kIsNull), child_(std::move(child)), negated_(negated) {}

  const Expr& child() const { return *child_; }
  bool negated() const { return negated_; }

  bool IsBound() const override { return child_->IsBound(); }
  ExprPtr Clone() const override;
  std::string ToString() const override;

 private:
  ExprPtr child_;
  bool negated_;
};

// ---------------------------------------------------------------------------
// Expression utilities (implemented in expr.cc)
// ---------------------------------------------------------------------------

/// Splits a bound predicate into its top-level AND conjuncts (flattening
/// nested ANDs); the returned pointers alias `expr`.
std::vector<const Expr*> SplitConjuncts(const Expr& expr);

/// Builds the conjunction of `conjuncts` (clones them); empty -> TRUE literal.
ExprPtr AndAll(std::vector<ExprPtr> conjuncts);

/// Applies `fn` to every ColumnRefExpr in the (mutable) expression tree.
void VisitColumnRefs(Expr* expr, const std::function<void(ColumnRefExpr*)>& fn);
void VisitColumnRefs(const Expr& expr,
                     const std::function<void(const ColumnRefExpr&)>& fn);

/// Collects the set of bound column indexes used by the expression.
std::vector<int> CollectColumnIndexes(const Expr& expr);

/// An equality `left_col = right_col` between the two sides of a product
/// whose concatenated schema has `left_width` leading left columns.
struct EquiPair {
  int left_index;   ///< index into the left schema
  int right_index;  ///< index into the right schema
};

/// Splits a bound join condition (over the concatenated schema) into
/// equi-join pairs and a residual predicate (nullptr when none remains).
/// Only top-level conjuncts of the shape `colL = colR` are extracted.
void SplitJoinCondition(const Expr& cond, size_t left_width,
                        std::vector<EquiPair>* pairs, ExprPtr* residual);

/// True if the tree contains an aggregate call (at any depth).
bool ContainsAggCall(const Expr& expr);

}  // namespace hippo
