#include "expr/evaluator.h"

#include <cmath>

#include "common/macros.h"

namespace hippo {

namespace {

Value EvalComparison(const ComparisonExpr& cmp, const Row& row) {
  Value l = EvalExpr(cmp.left(), row);
  Value r = EvalExpr(cmp.right(), row);
  if (l.is_null() || r.is_null()) return Value::Null();
  int c = l.Compare(r);
  switch (cmp.op()) {
    case CompareOp::kEq:
      return Value::Bool(l == r);
    case CompareOp::kNe:
      return Value::Bool(!(l == r));
    case CompareOp::kLt:
      return Value::Bool(c < 0);
    case CompareOp::kLe:
      return Value::Bool(c <= 0);
    case CompareOp::kGt:
      return Value::Bool(c > 0);
    case CompareOp::kGe:
      return Value::Bool(c >= 0);
  }
  return Value::Null();
}

Value EvalLogical(const LogicalExpr& log, const Row& row) {
  if (log.op() == LogicalOp::kNot) {
    Value v = EvalExpr(log.child(0), row);
    if (v.is_null()) return Value::Null();
    return Value::Bool(!v.AsBool());
  }
  bool saw_null = false;
  if (log.op() == LogicalOp::kAnd) {
    for (size_t i = 0; i < log.NumChildren(); ++i) {
      Value v = EvalExpr(log.child(i), row);
      if (v.is_null()) {
        saw_null = true;
      } else if (!v.AsBool()) {
        return Value::Bool(false);
      }
    }
    return saw_null ? Value::Null() : Value::Bool(true);
  }
  // OR
  for (size_t i = 0; i < log.NumChildren(); ++i) {
    Value v = EvalExpr(log.child(i), row);
    if (v.is_null()) {
      saw_null = true;
    } else if (v.AsBool()) {
      return Value::Bool(true);
    }
  }
  return saw_null ? Value::Null() : Value::Bool(false);
}

Value EvalArithmetic(const ArithmeticExpr& ar, const Row& row) {
  Value l = EvalExpr(ar.left(), row);
  Value r = EvalExpr(ar.right(), row);
  if (l.is_null() || r.is_null()) return Value::Null();
  bool as_double =
      l.type() == TypeId::kDouble || r.type() == TypeId::kDouble;
  if (as_double) {
    double a = l.NumericAsDouble(), b = r.NumericAsDouble();
    switch (ar.op()) {
      case ArithOp::kAdd:
        return Value::Double(a + b);
      case ArithOp::kSub:
        return Value::Double(a - b);
      case ArithOp::kMul:
        return Value::Double(a * b);
      case ArithOp::kDiv:
        if (b == 0.0) return Value::Null();  // SQL engines raise; we null out
        return Value::Double(a / b);
      case ArithOp::kMod:
        HIPPO_CHECK_MSG(false, "binder rejects % on doubles");
    }
  }
  int64_t a = l.AsInt(), b = r.AsInt();
  switch (ar.op()) {
    case ArithOp::kAdd:
      return Value::Int(a + b);
    case ArithOp::kSub:
      return Value::Int(a - b);
    case ArithOp::kMul:
      return Value::Int(a * b);
    case ArithOp::kDiv:
      if (b == 0) return Value::Null();
      return Value::Int(a / b);
    case ArithOp::kMod:
      if (b == 0) return Value::Null();
      return Value::Int(a % b);
  }
  return Value::Null();
}

}  // namespace

Value EvalExpr(const Expr& expr, const Row& row) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value();
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      HIPPO_DCHECK(ref.IsBound());
      HIPPO_DCHECK(static_cast<size_t>(ref.index()) < row.size());
      return row[static_cast<size_t>(ref.index())];
    }
    case ExprKind::kComparison:
      return EvalComparison(static_cast<const ComparisonExpr&>(expr), row);
    case ExprKind::kLogical:
      return EvalLogical(static_cast<const LogicalExpr&>(expr), row);
    case ExprKind::kArithmetic:
      return EvalArithmetic(static_cast<const ArithmeticExpr&>(expr), row);
    case ExprKind::kIsNull: {
      const auto& n = static_cast<const IsNullExpr&>(expr);
      bool isnull = EvalExpr(n.child(), row).is_null();
      return Value::Bool(n.negated() ? !isnull : isnull);
    }
    case ExprKind::kAggCall:
      // Aggregate calls are extracted into an AggregateNode by the planner
      // and never reach row-level evaluation.
      HIPPO_CHECK_MSG(false, "aggregate call evaluated outside aggregation");
      break;
  }
  return Value::Null();
}

bool EvalPredicate(const Expr& expr, const Row& row) {
  Value v = EvalExpr(expr, row);
  return !v.is_null() && v.AsBool();
}

Value EvalConst(const Expr& expr) {
  static const Row kEmpty;
  return EvalExpr(expr, kEmpty);
}

}  // namespace hippo
