#include "expr/expr.h"

#include "common/str_util.h"

namespace hippo {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kMod:
      return "%";
  }
  return "?";
}

CompareOp FlipCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kNe:
      return CompareOp::kNe;
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
  }
  return op;
}

CompareOp NegateCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  return op;
}

ExprPtr LiteralExpr::Clone() const {
  return std::make_unique<LiteralExpr>(value_);
}

ExprPtr ColumnRefExpr::Bound(size_t index, TypeId type, std::string name,
                             std::string qualifier) {
  auto ref = std::make_unique<ColumnRefExpr>(std::move(qualifier),
                                             std::move(name));
  ref->Bind(index, type);
  return ref;
}

ExprPtr ColumnRefExpr::Clone() const {
  auto copy = std::make_unique<ColumnRefExpr>(qualifier_, name_);
  copy->index_ = index_;
  copy->set_result_type(result_type());
  return copy;
}

std::string ColumnRefExpr::ToString() const {
  std::string out = qualifier_.empty() ? name_ : qualifier_ + "." + name_;
  if (out.empty() && index_ >= 0) out = "#" + std::to_string(index_);
  return out;
}

ExprPtr ComparisonExpr::Clone() const {
  auto copy = std::make_unique<ComparisonExpr>(op_, left_->Clone(),
                                               right_->Clone());
  copy->set_result_type(result_type());
  return copy;
}

std::string ComparisonExpr::ToString() const {
  return "(" + left_->ToString() + " " + CompareOpToString(op_) + " " +
         right_->ToString() + ")";
}

ExprPtr LogicalExpr::MakeAnd(ExprPtr a, ExprPtr b) {
  std::vector<ExprPtr> kids;
  kids.push_back(std::move(a));
  kids.push_back(std::move(b));
  auto e = std::make_unique<LogicalExpr>(LogicalOp::kAnd, std::move(kids));
  e->set_result_type(TypeId::kBool);
  return e;
}

ExprPtr LogicalExpr::MakeOr(ExprPtr a, ExprPtr b) {
  std::vector<ExprPtr> kids;
  kids.push_back(std::move(a));
  kids.push_back(std::move(b));
  auto e = std::make_unique<LogicalExpr>(LogicalOp::kOr, std::move(kids));
  e->set_result_type(TypeId::kBool);
  return e;
}

ExprPtr LogicalExpr::MakeNot(ExprPtr a) {
  std::vector<ExprPtr> kids;
  kids.push_back(std::move(a));
  auto e = std::make_unique<LogicalExpr>(LogicalOp::kNot, std::move(kids));
  e->set_result_type(TypeId::kBool);
  return e;
}

ExprPtr LogicalExpr::Clone() const {
  std::vector<ExprPtr> kids;
  kids.reserve(children_.size());
  for (const auto& c : children_) kids.push_back(c->Clone());
  auto copy = std::make_unique<LogicalExpr>(op_, std::move(kids));
  copy->set_result_type(result_type());
  return copy;
}

std::string LogicalExpr::ToString() const {
  if (op_ == LogicalOp::kNot) {
    return "NOT " + children_[0]->ToString();
  }
  const char* sep = op_ == LogicalOp::kAnd ? " AND " : " OR ";
  std::string out = "(";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) out += sep;
    out += children_[i]->ToString();
  }
  out += ")";
  return out;
}

ExprPtr ArithmeticExpr::Clone() const {
  auto copy = std::make_unique<ArithmeticExpr>(op_, left_->Clone(),
                                               right_->Clone());
  copy->set_result_type(result_type());
  return copy;
}

std::string ArithmeticExpr::ToString() const {
  return "(" + left_->ToString() + " " + ArithOpToString(op_) + " " +
         right_->ToString() + ")";
}

ExprPtr IsNullExpr::Clone() const {
  auto copy = std::make_unique<IsNullExpr>(child_->Clone(), negated_);
  copy->set_result_type(result_type());
  return copy;
}

std::string IsNullExpr::ToString() const {
  return child_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
}

const char* AggFuncToString(AggFunc fn) {
  switch (fn) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

ExprPtr AggCallExpr::Clone() const {
  auto copy = std::make_unique<AggCallExpr>(
      fn_, arg_ == nullptr ? nullptr : arg_->Clone());
  copy->set_result_type(result_type());
  return copy;
}

std::string AggCallExpr::ToString() const {
  return std::string(AggFuncToString(fn_)) + "(" +
         (arg_ == nullptr ? "*" : arg_->ToString()) + ")";
}

bool ContainsAggCall(const Expr& expr) {
  if (expr.kind() == ExprKind::kAggCall) return true;
  switch (expr.kind()) {
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(expr);
      return ContainsAggCall(c.left()) || ContainsAggCall(c.right());
    }
    case ExprKind::kLogical: {
      const auto& l = static_cast<const LogicalExpr&>(expr);
      for (size_t i = 0; i < l.NumChildren(); ++i) {
        if (ContainsAggCall(l.child(i))) return true;
      }
      return false;
    }
    case ExprKind::kArithmetic: {
      const auto& a = static_cast<const ArithmeticExpr&>(expr);
      return ContainsAggCall(a.left()) || ContainsAggCall(a.right());
    }
    case ExprKind::kIsNull:
      return ContainsAggCall(static_cast<const IsNullExpr&>(expr).child());
    default:
      return false;
  }
}

namespace {

void SplitConjunctsInto(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind() == ExprKind::kLogical) {
    const auto& le = static_cast<const LogicalExpr&>(expr);
    if (le.op() == LogicalOp::kAnd) {
      for (size_t i = 0; i < le.NumChildren(); ++i) {
        SplitConjunctsInto(le.child(i), out);
      }
      return;
    }
  }
  out->push_back(&expr);
}

}  // namespace

std::vector<const Expr*> SplitConjuncts(const Expr& expr) {
  std::vector<const Expr*> out;
  SplitConjunctsInto(expr, &out);
  return out;
}

ExprPtr AndAll(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) {
    return std::make_unique<LiteralExpr>(Value::Bool(true));
  }
  if (conjuncts.size() == 1) return std::move(conjuncts[0]);
  auto e = std::make_unique<LogicalExpr>(LogicalOp::kAnd, std::move(conjuncts));
  e->set_result_type(TypeId::kBool);
  return e;
}

void VisitColumnRefs(Expr* expr, const std::function<void(ColumnRefExpr*)>& fn) {
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return;
    case ExprKind::kColumnRef:
      fn(static_cast<ColumnRefExpr*>(expr));
      return;
    case ExprKind::kComparison: {
      auto* c = static_cast<ComparisonExpr*>(expr);
      VisitColumnRefs(c->mutable_left(), fn);
      VisitColumnRefs(c->mutable_right(), fn);
      return;
    }
    case ExprKind::kLogical: {
      auto* l = static_cast<LogicalExpr*>(expr);
      for (size_t i = 0; i < l->NumChildren(); ++i) {
        VisitColumnRefs(l->mutable_child(i), fn);
      }
      return;
    }
    case ExprKind::kArithmetic: {
      auto* a = static_cast<ArithmeticExpr*>(expr);
      VisitColumnRefs(const_cast<Expr*>(&a->left()), fn);
      VisitColumnRefs(const_cast<Expr*>(&a->right()), fn);
      return;
    }
    case ExprKind::kIsNull: {
      auto* n = static_cast<IsNullExpr*>(expr);
      VisitColumnRefs(const_cast<Expr*>(&n->child()), fn);
      return;
    }
    case ExprKind::kAggCall: {
      auto* a = static_cast<AggCallExpr*>(expr);
      if (a->mutable_arg() != nullptr) VisitColumnRefs(a->mutable_arg(), fn);
      return;
    }
  }
}

void VisitColumnRefs(const Expr& expr,
                     const std::function<void(const ColumnRefExpr&)>& fn) {
  VisitColumnRefs(const_cast<Expr*>(&expr), [&fn](ColumnRefExpr* c) {
    fn(*c);
  });
}

std::vector<int> CollectColumnIndexes(const Expr& expr) {
  std::vector<int> out;
  VisitColumnRefs(expr, [&out](const ColumnRefExpr& c) {
    out.push_back(c.index());
  });
  return out;
}

void SplitJoinCondition(const Expr& cond, size_t left_width,
                        std::vector<EquiPair>* pairs, ExprPtr* residual) {
  pairs->clear();
  std::vector<ExprPtr> rest;
  for (const Expr* conjunct : SplitConjuncts(cond)) {
    bool extracted = false;
    if (conjunct->kind() == ExprKind::kComparison) {
      const auto& cmp = static_cast<const ComparisonExpr&>(*conjunct);
      if (cmp.op() == CompareOp::kEq &&
          cmp.left().kind() == ExprKind::kColumnRef &&
          cmp.right().kind() == ExprKind::kColumnRef) {
        int li = static_cast<const ColumnRefExpr&>(cmp.left()).index();
        int ri = static_cast<const ColumnRefExpr&>(cmp.right()).index();
        int lw = static_cast<int>(left_width);
        if (li < lw && ri >= lw) {
          pairs->push_back(EquiPair{li, ri - lw});
          extracted = true;
        } else if (ri < lw && li >= lw) {
          pairs->push_back(EquiPair{ri, li - lw});
          extracted = true;
        }
      }
    }
    if (!extracted) rest.push_back(conjunct->Clone());
  }
  if (rest.empty()) {
    *residual = nullptr;
  } else {
    *residual = AndAll(std::move(rest));
  }
}

}  // namespace hippo
