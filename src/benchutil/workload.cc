#include "benchutil/workload.h"

#include "common/str_util.h"

namespace hippo::bench {

namespace {

/// Inserts `n` rows into a two-column integer table: keys 0..n-1 with value
/// derived from the key, then overlays conflicts: for `conflict_pairs` keys,
/// a second row with the same key and a different value. `offset_odd_keys`
/// shifts the values of odd keys so that two generated relations overlap on
/// roughly half their tuples — keeping difference/union queries selective
/// while joins on the key column stay 1:1.
Status FillTwoColumn(Database* db, const std::string& table, size_t n,
                     double conflict_rate, bool offset_odd_keys, Rng* rng) {
  size_t conflict_pairs =
      static_cast<size_t>(static_cast<double>(n) * conflict_rate / 2.0);
  for (size_t i = 0; i < n; ++i) {
    int64_t value = static_cast<int64_t>(i % 1000);
    if (offset_odd_keys && (i % 2 == 1)) value += 5000;
    HIPPO_RETURN_NOT_OK(db->InsertRow(
        table, Row{Value::Int(static_cast<int64_t>(i)), Value::Int(value)}));
  }
  for (size_t c = 0; c < conflict_pairs; ++c) {
    // Conflicting partner for a random key: same a, different b.
    int64_t key = rng->UniformInt(0, static_cast<int64_t>(n) - 1);
    int64_t other = (key % 1000) + 1000 + rng->UniformInt(0, 9);
    HIPPO_RETURN_NOT_OK(db->InsertRow(
        table, Row{Value::Int(key), Value::Int(other)}));
  }
  return Status::OK();
}

}  // namespace

Status BuildTwoRelationWorkload(Database* db, const WorkloadSpec& spec) {
  HIPPO_RETURN_NOT_OK(db->Execute(
      "CREATE TABLE p (a INTEGER, b INTEGER);"
      "CREATE TABLE q (a INTEGER, b INTEGER);"
      "CREATE CONSTRAINT fd_p FD ON p (a -> b);"
      "CREATE CONSTRAINT fd_q FD ON q (a -> b)"));
  Rng rng(spec.seed);
  HIPPO_RETURN_NOT_OK(FillTwoColumn(db, "p", spec.tuples_per_relation,
                                    spec.conflict_rate,
                                    /*offset_odd_keys=*/false, &rng));
  HIPPO_RETURN_NOT_OK(FillTwoColumn(db, "q", spec.tuples_per_relation,
                                    spec.conflict_rate,
                                    /*offset_odd_keys=*/true, &rng));
  return Status::OK();
}

std::string TwoRelationWorkloadSql(const WorkloadSpec& spec) {
  std::string sql =
      "CREATE TABLE p (a INTEGER, b INTEGER);"
      "CREATE TABLE q (a INTEGER, b INTEGER);"
      "CREATE CONSTRAINT fd_p FD ON p (a -> b);"
      "CREATE CONSTRAINT fd_q FD ON q (a -> b);";
  Rng rng(spec.seed);
  size_t n = spec.tuples_per_relation;
  size_t conflict_pairs =
      static_cast<size_t>(static_cast<double>(n) * spec.conflict_rate / 2.0);
  for (const char* table : {"p", "q"}) {
    bool offset_odd_keys = table[0] == 'q';
    for (size_t i = 0; i < n; ++i) {
      int64_t value = static_cast<int64_t>(i % 1000);
      if (offset_odd_keys && (i % 2 == 1)) value += 5000;
      sql += StrFormat("INSERT INTO %s VALUES (%zu, %lld);", table, i,
                       (long long)value);
    }
    for (size_t c = 0; c < conflict_pairs; ++c) {
      int64_t key = rng.UniformInt(0, static_cast<int64_t>(n) - 1);
      int64_t other = (key % 1000) + 1000 + rng.UniformInt(0, 9);
      sql += StrFormat("INSERT INTO %s VALUES (%lld, %lld);", table,
                       (long long)key, (long long)other);
    }
  }
  return sql;
}

Status BuildEmployeeWorkload(Database* db, const WorkloadSpec& spec) {
  HIPPO_RETURN_NOT_OK(db->Execute(
      "CREATE TABLE emp (name VARCHAR, dept VARCHAR, salary INTEGER);"
      "CREATE CONSTRAINT fd_emp FD ON emp (name -> salary)"));
  Rng rng(spec.seed);
  static const char* kDepts[] = {"sales", "engineering", "hr", "finance",
                                 "ops"};
  size_t n = spec.tuples_per_relation;
  size_t conflict_pairs =
      static_cast<size_t>(static_cast<double>(n) * spec.conflict_rate / 2.0);
  for (size_t i = 0; i < n; ++i) {
    std::string name = StrFormat("emp%06zu", i);
    const char* dept = kDepts[rng.Uniform(5)];
    int64_t salary = 40000 + rng.UniformInt(0, 80) * 1000;
    HIPPO_RETURN_NOT_OK(db->InsertRow(
        "emp", Row{Value::String(name), Value::String(dept),
                   Value::Int(salary)}));
  }
  for (size_t c = 0; c < conflict_pairs; ++c) {
    // A second record for an existing employee with a different salary
    // (e.g. two merged payroll sources disagreeing). Injected salaries are
    // unique per record so that all records of one employee are PAIRWISE
    // conflicting — keeping the conflict components cliques, which the
    // range-aggregation closed form relies on.
    size_t i = rng.Uniform(n);
    std::string name = StrFormat("emp%06zu", i);
    const char* dept = kDepts[rng.Uniform(5)];
    int64_t salary = 130000 + static_cast<int64_t>(c) * 1000;
    HIPPO_RETURN_NOT_OK(db->InsertRow(
        "emp", Row{Value::String(name), Value::String(dept),
                   Value::Int(salary)}));
  }
  return Status::OK();
}

Status BuildIntegrationWorkload(Database* db, const WorkloadSpec& spec) {
  HIPPO_RETURN_NOT_OK(db->Execute(
      "CREATE TABLE vendors (vid INTEGER, rating INTEGER);"
      "CREATE TABLE certified (vid INTEGER);"
      "CREATE TABLE revoked (vid INTEGER);"
      "CREATE TABLE blacklist (vid INTEGER, rating INTEGER);"
      "CREATE CONSTRAINT fd_vendors FD ON vendors (vid -> rating);"
      "CREATE CONSTRAINT excl_cert EXCLUSION ON certified (vid), revoked (vid);"
      "CREATE CONSTRAINT fd_blacklist FD ON blacklist (vid -> rating)"));
  Rng rng(spec.seed);
  size_t n = spec.tuples_per_relation;
  size_t conflict_pairs =
      static_cast<size_t>(static_cast<double>(n) * spec.conflict_rate / 2.0);

  // Consistent bulk. Remember ratings so blacklist conflicts can mirror
  // the exact vendor tuple.
  std::vector<int64_t> rating(n);
  for (size_t i = 0; i < n; ++i) {
    rating[i] = rng.UniformInt(1, 5);
    HIPPO_RETURN_NOT_OK(db->InsertRow(
        "vendors", Row{Value::Int(static_cast<int64_t>(i)),
                       Value::Int(rating[i])}));
    if (rng.Chance(0.3)) {
      HIPPO_RETURN_NOT_OK(db->InsertRow(
          "certified", Row{Value::Int(static_cast<int64_t>(i))}));
    } else if (rng.Chance(0.1)) {
      HIPPO_RETURN_NOT_OK(db->InsertRow(
          "revoked", Row{Value::Int(static_cast<int64_t>(i))}));
    }
  }

  // Three conflict flavours in disjoint vid ranges (so one flavour never
  // accidentally resolves another).
  size_t third = std::max<size_t>(1, conflict_pairs / 3);
  auto range_vid = [&](size_t lo_third) {
    int64_t lo = static_cast<int64_t>(n) * static_cast<int64_t>(lo_third) / 4;
    int64_t hi =
        static_cast<int64_t>(n) * (static_cast<int64_t>(lo_third) + 1) / 4 - 1;
    return rng.UniformInt(lo, std::max(lo, hi));
  };
  for (size_t c = 0; c < third; ++c) {
    // (1) Rating disagreement between the sources: vendors FD pair.
    int64_t vid = range_vid(0);
    HIPPO_RETURN_NOT_OK(db->InsertRow(
        "vendors", Row{Value::Int(vid), Value::Int(rng.UniformInt(6, 9))}));
    // (2) Contradictory certification status: exclusion pair — the
    // union-query separation (certainly certified-or-revoked).
    vid = range_vid(1);
    HIPPO_RETURN_NOT_OK(db->InsertRow("certified", Row{Value::Int(vid)}));
    HIPPO_RETURN_NOT_OK(db->InsertRow("revoked", Row{Value::Int(vid)}));
    // (3) Disputed blacklisting: the blacklist pair mirrors the vendor
    // tuple plus a contradicting row — the difference-query separation
    // (the core resurrects the vendor; CQA correctly withholds it).
    vid = range_vid(2);
    HIPPO_RETURN_NOT_OK(db->InsertRow(
        "blacklist", Row{Value::Int(vid),
                         Value::Int(rating[static_cast<size_t>(vid)])}));
    HIPPO_RETURN_NOT_OK(db->InsertRow(
        "blacklist",
        Row{Value::Int(vid),
            Value::Int(rating[static_cast<size_t>(vid)] + 10)}));
  }
  return Status::OK();
}

std::string QuerySet::Selection() {
  return "SELECT * FROM p WHERE b < 500";
}

std::string QuerySet::Join() {
  return "SELECT * FROM p, q WHERE p.a = q.a";
}

std::string QuerySet::SelectiveJoin() {
  return "SELECT * FROM p, q WHERE p.a = q.a AND p.b < 200";
}

std::string QuerySet::Union() {
  return "SELECT * FROM p UNION SELECT * FROM q";
}

std::string QuerySet::Difference() {
  return "SELECT * FROM p EXCEPT SELECT * FROM q";
}

std::string QuerySet::UnionOfDifferences() {
  return "(SELECT * FROM p EXCEPT SELECT * FROM q) UNION "
         "(SELECT * FROM q EXCEPT SELECT * FROM p)";
}

}  // namespace hippo::bench
