#include "benchutil/report.h"

#include <cstdio>

#include "common/str_util.h"

namespace hippo::bench {

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render_row = [&widths](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      out += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return out + "\n";
  };

  std::string out = render_row(header_);
  std::string sep = "|";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "|";
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TextTable::Print(const std::string& caption) const {
  std::printf("\n== %s ==\n%s\n", caption.c_str(), Render().c_str());
  std::fflush(stdout);
}

std::string FormatSeconds(double s) {
  if (s < 1e-3) return StrFormat("%.1f us", s * 1e6);
  if (s < 1.0) return StrFormat("%.2f ms", s * 1e3);
  return StrFormat("%.3f s", s);
}

}  // namespace hippo::bench
