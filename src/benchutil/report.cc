#include "benchutil/report.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>

#include "common/str_util.h"

namespace hippo::bench {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonStringArray(const std::vector<std::string>& cells) {
  std::string out = "[";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(cells[i]) + "\"";
  }
  return out + "]";
}

}  // namespace

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render_row = [&widths](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      out += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return out + "\n";
  };

  std::string out = render_row(header_);
  std::string sep = "|";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "|";
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TextTable::RenderJson(const std::string& caption) const {
  std::string out =
      "{\"table\": \"" + JsonEscape(caption) + "\", \"columns\": " +
      JsonStringArray(header_) + ", \"rows\": [";
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) out += ", ";
    out += JsonStringArray(rows_[i]);
  }
  return out + "]}";
}

void TextTable::Print(const std::string& caption) const {
  std::printf("\n== %s ==\n%s\n", caption.c_str(), Render().c_str());
  std::fflush(stdout);
  if (const char* path = std::getenv("HIPPO_BENCH_JSON")) {
    if (std::FILE* f = std::fopen(path, "a")) {
      std::fprintf(f, "%s\n", RenderJson(caption).c_str());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "HIPPO_BENCH_JSON: cannot open %s for append\n",
                   path);
    }
  }
}

std::string FormatSeconds(double s) {
  if (s < 1e-3) return StrFormat("%.1f us", s * 1e6);
  if (s < 1.0) return StrFormat("%.2f ms", s * 1e3);
  return StrFormat("%.3f s", s);
}

std::string FormatBytes(size_t bytes) {
  double b = static_cast<double>(bytes);
  if (b < 1024) return StrFormat("%zu B", bytes);
  if (b < 1024 * 1024) return StrFormat("%.1f KiB", b / 1024);
  if (b < 1024.0 * 1024 * 1024) return StrFormat("%.2f MiB", b / (1024 * 1024));
  return StrFormat("%.2f GiB", b / (1024.0 * 1024 * 1024));
}

namespace {

/// Nearest-rank index: the smallest sample with at least p% of the sample
/// at or below it — ceil(p/100 * N), 1-based, clamped to [1, N].
size_t PercentileRank(double p, size_t n) {
  if (p <= 0) return 1;
  if (p >= 100) return n;
  size_t rank =
      static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return rank;
}

}  // namespace

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  // A single order statistic needs a selection, not a full sort.
  size_t rank = PercentileRank(p, samples.size());
  auto nth = samples.begin() + static_cast<ptrdiff_t>(rank - 1);
  std::nth_element(samples.begin(), nth, samples.end());
  return *nth;
}

std::vector<double> Percentiles(std::vector<double> samples,
                                const std::vector<double>& ps) {
  std::vector<double> out(ps.size(), 0.0);
  if (samples.empty()) return out;
  // One sort amortized over every requested percentile (the callers ask
  // for 3–4 at a time per latency log).
  std::sort(samples.begin(), samples.end());
  for (size_t i = 0; i < ps.size(); ++i) {
    out[i] = samples[PercentileRank(ps[i], samples.size()) - 1];
  }
  return out;
}

}  // namespace hippo::bench
