// Synthetic workload generation for the benchmarks and property tests.
//
// The generators reproduce the experimental design of the Hippo evaluation:
// relations with a configurable number of tuples and a controlled fraction
// of integrity violations (conflict pairs inserted on top of a consistent
// bulk), under functional dependencies and exclusion constraints. The RNG
// is deterministic, so every benchmark row is reproducible.
#pragma once

#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "db/database.h"

namespace hippo::bench {

/// Parameters of the two-relation employee/payroll style workload.
struct WorkloadSpec {
  size_t tuples_per_relation = 10000;
  /// Fraction of tuples that participate in an FD conflict (each conflict
  /// is a pair of tuples agreeing on the key and differing on the value,
  /// so conflict_rate * n tuples are conflicting ⇒ conflict_rate*n/2 pairs).
  double conflict_rate = 0.05;
  uint64_t seed = 42;
};

/// Builds the canonical benchmark schema:
///
///   p(a INTEGER, b INTEGER)  with FD  a -> b
///   q(a INTEGER, b INTEGER)  with FD  a -> b
///
/// `p` and `q` share the `a` domain so joins/unions/differences between
/// them are selective but non-empty. Key values are dense in [0, n).
Status BuildTwoRelationWorkload(Database* db, const WorkloadSpec& spec);

/// The same two-relation workload as one ';'-separated SQL script (schema,
/// constraints, consistent bulk, conflict pairs) — for consumers that load
/// through a commit path instead of a Database* (the query service's
/// serving driver and the F9 concurrency bench). Row counts and conflict
/// structure match BuildTwoRelationWorkload's shape but values are drawn
/// from the script's own deterministic RNG stream.
std::string TwoRelationWorkloadSql(const WorkloadSpec& spec);

/// Employee-style workload used by T1 and the examples:
///
///   emp(name VARCHAR, dept VARCHAR, salary INTEGER)  with FD name -> salary
Status BuildEmployeeWorkload(Database* db, const WorkloadSpec& spec);

/// Two autonomous sources merged — the data-integration scenario of the
/// paper's motivation. Four relations and three constraints:
///
///   vendors(vid, rating)    FD vid -> rating
///   certified(vid) / revoked(vid)   EXCLUSION on vid
///   blacklist(vid, rating)  FD vid -> rating
///
/// Conflicts are injected in three disjoint vid ranges so each experiment
/// sees every flavour: vendor-rating FD pairs, contradictory
/// certified/revoked memberships (the union-query separation of T1), and
/// blacklist FD pairs whose first element mirrors the vendor row (the
/// difference-query separation of T1: the cleaned "core" resurrects
/// vendors whose blacklisting is merely uncertain).
Status BuildIntegrationWorkload(Database* db, const WorkloadSpec& spec);

/// Canonical query set used across benches (T2/F1/F2/F3).
struct QuerySet {
  /// S: selection on one relation.
  static std::string Selection();
  /// SJ: equi-join of p and q.
  static std::string Join();
  /// SJ with extra selection.
  static std::string SelectiveJoin();
  /// U: union of p and q.
  static std::string Union();
  /// D: difference p − q.
  static std::string Difference();
  /// SJUD: union of differences (the disjunctive-information query).
  static std::string UnionOfDifferences();
};

}  // namespace hippo::bench
