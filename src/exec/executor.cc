#include "exec/executor.h"

#include <algorithm>
#include <unordered_set>

#include "exec/operators.h"
#include "expr/evaluator.h"

namespace hippo {

bool ResultSet::Contains(const Row& row) const {
  for (const Row& r : rows) {
    if (r == row) return true;
  }
  return false;
}

void ResultSet::SortRows() {
  std::sort(rows.begin(), rows.end(), RowLess);
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out = schema.ToString();
  out += "\n";
  size_t shown = std::min(max_rows, rows.size());
  for (size_t i = 0; i < shown; ++i) {
    out += RowToString(rows[i]);
    out += "\n";
  }
  if (shown < rows.size()) {
    out += "... (" + std::to_string(rows.size() - shown) + " more)\n";
  }
  return out;
}

namespace {

Result<std::vector<Row>> ExecuteRows(const PlanNode& plan,
                                     const ExecContext& ctx);

Result<std::vector<Row>> ExecuteScan(const ScanNode& scan,
                                     const ExecContext& ctx) {
  const Table& table = ctx.catalog->table(scan.table_id());
  std::vector<Row> out;
  out.reserve(table.NumRows());
  for (uint32_t i = 0; i < table.NumRows(); ++i) {
    if (!table.IsLive(i)) continue;
    if (ctx.mask != nullptr &&
        !ctx.mask->Allows(RowId{scan.table_id(), i})) {
      continue;
    }
    Row row = table.row(i);
    if (scan.emit_rowid()) {
      row.push_back(Value::Int(static_cast<int64_t>(i)));
    }
    out.push_back(std::move(row));
  }
  return out;
}

Result<std::vector<Row>> ExecuteRows(const PlanNode& plan,
                                     const ExecContext& ctx) {
  switch (plan.kind()) {
    case PlanKind::kScan:
      return ExecuteScan(static_cast<const ScanNode&>(plan), ctx);
    case PlanKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> in,
                             ExecuteRows(plan.child(0), ctx));
      std::vector<Row> out;
      out.reserve(in.size());
      for (Row& r : in) {
        if (EvalPredicate(filter.predicate(), r)) out.push_back(std::move(r));
      }
      return out;
    }
    case PlanKind::kProject: {
      const auto& proj = static_cast<const ProjectNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> in,
                             ExecuteRows(plan.child(0), ctx));
      std::vector<Row> out;
      out.reserve(in.size());
      for (const Row& r : in) {
        Row mapped;
        mapped.reserve(proj.NumExprs());
        for (size_t i = 0; i < proj.NumExprs(); ++i) {
          mapped.push_back(EvalExpr(proj.expr(i), r));
        }
        out.push_back(std::move(mapped));
      }
      return exec::DedupRows(std::move(out));
    }
    case PlanKind::kProduct: {
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> left,
                             ExecuteRows(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> right,
                             ExecuteRows(plan.child(1), ctx));
      std::vector<Row> out;
      out.reserve(left.size() * right.size());
      for (const Row& l : left) {
        for (const Row& r : right) {
          Row joined = l;
          joined.insert(joined.end(), r.begin(), r.end());
          out.push_back(std::move(joined));
        }
      }
      return out;
    }
    case PlanKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> left,
                             ExecuteRows(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> right,
                             ExecuteRows(plan.child(1), ctx));
      std::vector<Row> out;
      exec::JoinRows(left, right, join.condition(),
                     plan.child(0).schema().NumColumns(), &out);
      return out;
    }
    case PlanKind::kAntiJoin: {
      const auto& aj = static_cast<const AntiJoinNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> left,
                             ExecuteRows(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> right,
                             ExecuteRows(plan.child(1), ctx));
      std::vector<Row> out;
      exec::AntiJoinRows(left, right, aj.condition(),
                         plan.child(0).schema().NumColumns(), &out);
      return out;
    }
    case PlanKind::kUnion: {
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> left,
                             ExecuteRows(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> right,
                             ExecuteRows(plan.child(1), ctx));
      return exec::UnionRows(std::move(left), right);
    }
    case PlanKind::kDifference: {
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> left,
                             ExecuteRows(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> right,
                             ExecuteRows(plan.child(1), ctx));
      return exec::DifferenceRows(left, right);
    }
    case PlanKind::kIntersect: {
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> left,
                             ExecuteRows(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> right,
                             ExecuteRows(plan.child(1), ctx));
      return exec::IntersectRows(left, right);
    }
    case PlanKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> in,
                             ExecuteRows(plan.child(0), ctx));
      return exec::AggregateRows(agg, in);
    }
    case PlanKind::kSort: {
      const auto& sort = static_cast<const SortNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> in,
                             ExecuteRows(plan.child(0), ctx));
      std::stable_sort(in.begin(), in.end(),
                       [&sort](const Row& a, const Row& b) {
                         for (const SortNode::Key& k : sort.keys()) {
                           Value va = EvalExpr(*k.expr, a);
                           Value vb = EvalExpr(*k.expr, b);
                           int c = va.Compare(vb);
                           if (c != 0) return k.ascending ? c < 0 : c > 0;
                         }
                         return false;
                       });
      return in;
    }
  }
  return Status::Internal("unknown plan kind in executor");
}

}  // namespace

Result<ResultSet> Execute(const PlanNode& plan, const ExecContext& ctx) {
  HIPPO_CHECK(ctx.catalog != nullptr);
  HIPPO_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecuteRows(plan, ctx));
  return ResultSet{plan.schema(), std::move(rows)};
}

}  // namespace hippo
