#include "exec/executor.h"

#include <algorithm>
#include <unordered_set>

#include "common/parallel.h"
#include "exec/batch_eval.h"
#include "exec/operators.h"
#include "expr/evaluator.h"

namespace hippo {

bool ResultSet::Contains(const Row& row) const {
  for (const Row& r : rows) {
    if (r == row) return true;
  }
  return false;
}

void ResultSet::SortRows() {
  std::sort(rows.begin(), rows.end(), RowLess);
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out = schema.ToString();
  out += "\n";
  size_t shown = std::min(max_rows, rows.size());
  for (size_t i = 0; i < shown; ++i) {
    out += RowToString(rows[i]);
    out += "\n";
  }
  if (shown < rows.size()) {
    out += "... (" + std::to_string(rows.size() - shown) + " more)\n";
  }
  return out;
}

size_t ExecPartitionsFor(size_t rows, const ExecParallel& parallel) {
  size_t threads = ResolveThreadCount(parallel.num_threads);
  if (threads <= 1) return 1;
  size_t min_rows = std::max<size_t>(1, parallel.min_partition_rows);
  if (rows <= min_rows) return 1;
  return std::min(threads, (rows + min_rows - 1) / min_rows);
}

ColumnBatch ScanTableBatch(const Table& table, bool emit_rowid,
                           const RowMask* mask) {
  std::shared_ptr<const TableColumns> view = table.columnar();
  std::vector<ColumnVectorPtr> cols = view->columns;
  if (emit_rowid) cols.push_back(view->rowids);
  // Keep the immutable view alive as long as any column is referenced:
  // the columns are shared_ptrs into it, so sharing them suffices.
  bool all_live = table.NumLiveRows() == table.NumRows();
  bool masked = mask != nullptr && mask->HasEntry(table.id());
  if (all_live && !masked) {
    return ColumnBatch(std::move(cols), view->num_slots);
  }
  auto sel = std::make_shared<std::vector<uint32_t>>();
  sel->reserve(table.NumLiveRows());
  for (uint32_t i = 0; i < table.NumRows(); ++i) {
    if (!table.IsLive(i)) continue;
    if (masked && !mask->Allows(RowId{table.id(), i})) continue;
    sel->push_back(i);
  }
  return ColumnBatch(std::move(cols), view->num_slots, std::move(sel));
}

namespace {

size_t PartitionsFor(size_t rows, const ExecParallel& parallel) {
  return ExecPartitionsFor(rows, parallel);
}

Result<std::vector<Row>> ExecuteRows(const PlanNode& plan,
                                     const ExecContext& ctx);

/// Partition-parallel map: runs `fn(begin, end, &slice)` over contiguous
/// row ranges of [0, n) and concatenates the slice outputs in partition
/// order — bit-identical to fn(0, n, &out) because every operator using it
/// emits rows in input order within a range.
template <typename Fn>
std::vector<Row> PartitionedRows(size_t n, const ExecParallel& parallel,
                                 const Fn& fn) {
  size_t parts = PartitionsFor(n, parallel);
  if (parts <= 1) {
    std::vector<Row> out;
    fn(size_t{0}, n, &out);
    return out;
  }
  std::vector<std::vector<Row>> slices(parts);
  ParallelSlices(n, parts, [&](size_t p, size_t begin, size_t end) {
    fn(begin, end, &slices[p]);
  });
  std::vector<Row> out = std::move(slices[0]);
  size_t total = out.size();
  for (size_t p = 1; p < parts; ++p) total += slices[p].size();
  out.reserve(total);
  for (size_t p = 1; p < parts; ++p) {
    for (Row& r : slices[p]) out.push_back(std::move(r));
  }
  return out;
}

Result<std::vector<Row>> ExecuteScan(const ScanNode& scan,
                                     const ExecContext& ctx) {
  const Table& table = ctx.catalog->table(scan.table_id());
  std::vector<Row> out;
  out.reserve(table.NumRows());
  for (uint32_t i = 0; i < table.NumRows(); ++i) {
    if (!table.IsLive(i)) continue;
    if (ctx.mask != nullptr &&
        !ctx.mask->Allows(RowId{scan.table_id(), i})) {
      continue;
    }
    Row row = table.row(i);
    if (scan.emit_rowid()) {
      row.push_back(Value::Int(static_cast<int64_t>(i)));
    }
    out.push_back(std::move(row));
  }
  return out;
}

Result<std::vector<Row>> ExecuteRowsNode(const PlanNode& plan,
                                         const ExecContext& ctx) {
  switch (plan.kind()) {
    case PlanKind::kScan:
      return ExecuteScan(static_cast<const ScanNode&>(plan), ctx);
    case PlanKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> in,
                             ExecuteRows(plan.child(0), ctx));
      return PartitionedRows(
          in.size(), ctx.parallel,
          [&](size_t begin, size_t end, std::vector<Row>* out) {
            for (size_t i = begin; i < end; ++i) {
              if (EvalPredicate(filter.predicate(), in[i])) {
                out->push_back(std::move(in[i]));
              }
            }
          });
    }
    case PlanKind::kProject: {
      const auto& proj = static_cast<const ProjectNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> in,
                             ExecuteRows(plan.child(0), ctx));
      // Expression evaluation partitions; the dedup stays serial (first
      // occurrence over the concatenation = the serial dedup order).
      return exec::DedupRows(PartitionedRows(
          in.size(), ctx.parallel,
          [&](size_t begin, size_t end, std::vector<Row>* out) {
            for (size_t i = begin; i < end; ++i) {
              Row mapped;
              mapped.reserve(proj.NumExprs());
              for (size_t e = 0; e < proj.NumExprs(); ++e) {
                mapped.push_back(EvalExpr(proj.expr(e), in[i]));
              }
              out->push_back(std::move(mapped));
            }
          }));
    }
    case PlanKind::kProduct: {
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> left,
                             ExecuteRows(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> right,
                             ExecuteRows(plan.child(1), ctx));
      return PartitionedRows(
          left.size(), ctx.parallel,
          [&](size_t begin, size_t end, std::vector<Row>* out) {
            out->reserve((end - begin) * right.size());
            for (size_t i = begin; i < end; ++i) {
              for (const Row& r : right) {
                Row joined = left[i];
                joined.insert(joined.end(), r.begin(), r.end());
                out->push_back(std::move(joined));
              }
            }
          });
    }
    case PlanKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> left,
                             ExecuteRows(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> right,
                             ExecuteRows(plan.child(1), ctx));
      // Build once (serial), probe partitioned: each range probes the
      // shared read-only hash table.
      exec::JoinChain chain(
          plan.child(0).schema().NumColumns(),
          {{&right, &join.condition(),
            plan.child(1).schema().NumColumns()}},
          nullptr);
      return PartitionedRows(
          left.size(), ctx.parallel,
          [&](size_t begin, size_t end, std::vector<Row>* out) {
            chain.Probe(left, begin, end, out);
          });
    }
    case PlanKind::kAntiJoin: {
      const auto& aj = static_cast<const AntiJoinNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> left,
                             ExecuteRows(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> right,
                             ExecuteRows(plan.child(1), ctx));
      exec::AntiJoinProbe probe(&right, &aj.condition(),
                                plan.child(0).schema().NumColumns());
      return PartitionedRows(
          left.size(), ctx.parallel,
          [&](size_t begin, size_t end, std::vector<Row>* out) {
            probe.Probe(left, begin, end, out);
          });
    }
    case PlanKind::kUnion: {
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> left,
                             ExecuteRows(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> right,
                             ExecuteRows(plan.child(1), ctx));
      return exec::UnionRows(std::move(left), right);
    }
    case PlanKind::kDifference: {
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> left,
                             ExecuteRows(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> right,
                             ExecuteRows(plan.child(1), ctx));
      return exec::DifferenceRows(left, right);
    }
    case PlanKind::kIntersect: {
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> left,
                             ExecuteRows(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> right,
                             ExecuteRows(plan.child(1), ctx));
      return exec::IntersectRows(left, right);
    }
    case PlanKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> in,
                             ExecuteRows(plan.child(0), ctx));
      return exec::AggregateRows(agg, in);
    }
    case PlanKind::kSort: {
      const auto& sort = static_cast<const SortNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> in,
                             ExecuteRows(plan.child(0), ctx));
      std::stable_sort(in.begin(), in.end(),
                       [&sort](const Row& a, const Row& b) {
                         for (const SortNode::Key& k : sort.keys()) {
                           Value va = EvalExpr(*k.expr, a);
                           Value vb = EvalExpr(*k.expr, b);
                           int c = va.Compare(vb);
                           if (c != 0) return k.ascending ? c < 0 : c > 0;
                         }
                         return false;
                       });
      return in;
    }
  }
  return Status::Internal("unknown plan kind in executor");
}

/// Trace-aware entry for one row-engine operator: with a trace sink, the
/// operator (and, via the child context, its whole subtree) runs inside a
/// child span that records the output cardinality.
Result<std::vector<Row>> ExecuteRows(const PlanNode& plan,
                                     const ExecContext& ctx) {
  if (ctx.trace == nullptr) return ExecuteRowsNode(plan, ctx);
  obs::TraceSpan* span = ctx.trace->StartChild(plan.NodeLabel());
  ExecContext child = ctx;
  child.trace = span;
  Result<std::vector<Row>> result = ExecuteRowsNode(plan, child);
  if (result.ok()) {
    span->SetAttr("rows", static_cast<int64_t>(result.value().size()));
  }
  span->End();
  return result;
}

// ---------------------------------------------------------------------------
// Columnar (batch) engine. Every case produces the same logical rows in the
// same order as the ExecuteRows case above — filters and anti-joins narrow
// selection vectors over shared columns, joins gather index tuples, and the
// row-semantics operators (set ops, aggregation) round-trip through the row
// kernels so there is exactly one implementation of their semantics.
// ---------------------------------------------------------------------------

std::vector<TypeId> SchemaTypes(const Schema& schema) {
  std::vector<TypeId> types;
  types.reserve(schema.NumColumns());
  for (const Column& c : schema.columns()) types.push_back(c.type);
  return types;
}

Result<ColumnBatch> ExecuteBatch(const PlanNode& plan,
                                 const ExecContext& ctx);

/// Partition-parallel index collector: like PartitionedRows but for the
/// uint32 outputs of the batch kernels (index tuples, surviving indexes).
template <typename Fn>
std::vector<uint32_t> PartitionedIndexes(size_t n,
                                         const ExecParallel& parallel,
                                         const Fn& fn) {
  size_t parts = PartitionsFor(n, parallel);
  if (parts <= 1) {
    std::vector<uint32_t> out;
    fn(size_t{0}, n, &out);
    return out;
  }
  std::vector<std::vector<uint32_t>> slices(parts);
  ParallelSlices(n, parts, [&](size_t p, size_t begin, size_t end) {
    fn(begin, end, &slices[p]);
  });
  std::vector<uint32_t> out = std::move(slices[0]);
  size_t total = out.size();
  for (size_t p = 1; p < parts; ++p) total += slices[p].size();
  out.reserve(total);
  for (size_t p = 1; p < parts; ++p) {
    out.insert(out.end(), slices[p].begin(), slices[p].end());
  }
  return out;
}

ColumnBatch FilterBatch(const Expr& pred, const ColumnBatch& in,
                        const ExecParallel& parallel) {
  size_t n = in.NumRows();
  std::vector<int8_t> mask(n);
  size_t parts = PartitionsFor(n, parallel);
  if (parts <= 1) {
    exec::EvalPredicateMask(pred, in, 0, n, mask.data());
  } else {
    ParallelSlices(n, parts, [&](size_t, size_t begin, size_t end) {
      exec::EvalPredicateMask(pred, in, begin, end, mask.data() + begin);
    });
  }
  auto sel = std::make_shared<std::vector<uint32_t>>();
  for (size_t i = 0; i < n; ++i) {
    if (mask[i] == exec::kTernTrue) sel->push_back(in.Physical(i));
  }
  return in.WithSelection(std::move(sel));
}

ColumnBatch ProjectBatch(const ProjectNode& proj, const ColumnBatch& in,
                         const ExecParallel& parallel) {
  bool all_refs = true;
  for (size_t e = 0; e < proj.NumExprs() && all_refs; ++e) {
    all_refs = proj.expr(e).kind() == ExprKind::kColumnRef &&
               static_cast<const ColumnRefExpr&>(proj.expr(e)).IsBound();
  }
  if (all_refs) {
    // Pure column selection: share the columns and the selection as-is.
    std::vector<ColumnVectorPtr> cols;
    cols.reserve(proj.NumExprs());
    for (size_t e = 0; e < proj.NumExprs(); ++e) {
      const auto& ref = static_cast<const ColumnRefExpr&>(proj.expr(e));
      cols.push_back(in.col_ptr(static_cast<size_t>(ref.index())));
    }
    return exec::DedupBatch(
        ColumnBatch(std::move(cols), in.physical_rows(), in.selection()));
  }
  // Computed projection: evaluate every expression densely (identity
  // selection), partitioned in row ranges and concatenated in order.
  size_t n = in.NumRows();
  size_t parts = PartitionsFor(n, parallel);
  std::vector<ColumnVectorPtr> cols;
  cols.reserve(proj.NumExprs());
  for (size_t e = 0; e < proj.NumExprs(); ++e) {
    auto col = std::make_shared<ColumnVector>(proj.expr(e).result_type());
    col->Reserve(n);
    if (parts <= 1) {
      exec::EvalExprColumn(proj.expr(e), in, 0, n, col.get());
    } else {
      std::vector<ColumnVector> slices(parts, ColumnVector(col->type()));
      ParallelSlices(n, parts, [&](size_t p, size_t begin, size_t end) {
        slices[p].Reserve(end - begin);
        exec::EvalExprColumn(proj.expr(e), in, begin, end, &slices[p]);
      });
      for (const ColumnVector& s : slices) {
        for (size_t i = 0; i < s.size(); ++i) col->AppendFrom(s, i);
      }
    }
    cols.push_back(std::move(col));
  }
  return exec::DedupBatch(ColumnBatch(std::move(cols), n));
}

ColumnBatch ProductBatch(const ColumnBatch& left, const ColumnBatch& right) {
  size_t nl = left.NumRows(), nr = right.NumRows();
  size_t n = nl * nr;
  std::vector<ColumnVectorPtr> cols;
  cols.reserve(left.NumColumns() + right.NumColumns());
  for (size_t c = 0; c < left.NumColumns(); ++c) {
    auto col = std::make_shared<ColumnVector>(left.col(c).type());
    col->Reserve(n);
    for (size_t i = 0; i < nl; ++i) {
      uint32_t p = left.Physical(i);
      for (size_t j = 0; j < nr; ++j) col->AppendFrom(left.col(c), p);
    }
    cols.push_back(std::move(col));
  }
  for (size_t c = 0; c < right.NumColumns(); ++c) {
    auto col = std::make_shared<ColumnVector>(right.col(c).type());
    col->Reserve(n);
    for (size_t i = 0; i < nl; ++i) {
      for (size_t j = 0; j < nr; ++j) {
        col->AppendFrom(right.col(c), right.Physical(j));
      }
    }
    cols.push_back(std::move(col));
  }
  return ColumnBatch(std::move(cols), n);
}

Result<ColumnBatch> ExecuteBatchNode(const PlanNode& plan,
                                     const ExecContext& ctx) {
  switch (plan.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const ScanNode&>(plan);
      const Table& table = ctx.catalog->table(scan.table_id());
      return ScanTableBatch(table, scan.emit_rowid(), ctx.mask);
    }
    case PlanKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(ColumnBatch in,
                             ExecuteBatch(plan.child(0), ctx));
      return FilterBatch(filter.predicate(), in, ctx.parallel);
    }
    case PlanKind::kProject: {
      const auto& proj = static_cast<const ProjectNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(ColumnBatch in,
                             ExecuteBatch(plan.child(0), ctx));
      return ProjectBatch(proj, in, ctx.parallel);
    }
    case PlanKind::kProduct: {
      HIPPO_ASSIGN_OR_RETURN(ColumnBatch left,
                             ExecuteBatch(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(ColumnBatch right,
                             ExecuteBatch(plan.child(1), ctx));
      return ProductBatch(left, right);
    }
    case PlanKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(ColumnBatch left,
                             ExecuteBatch(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(ColumnBatch right,
                             ExecuteBatch(plan.child(1), ctx));
      exec::BatchJoinChain chain(&left, {{&right, &join.condition()}},
                                 nullptr);
      std::vector<uint32_t> tuples = PartitionedIndexes(
          left.NumRows(), ctx.parallel,
          [&](size_t begin, size_t end, std::vector<uint32_t>* out) {
            chain.Probe(begin, end, out);
          });
      return chain.Materialize(tuples);
    }
    case PlanKind::kAntiJoin: {
      const auto& aj = static_cast<const AntiJoinNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(ColumnBatch left,
                             ExecuteBatch(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(ColumnBatch right,
                             ExecuteBatch(plan.child(1), ctx));
      exec::BatchAntiJoinProbe probe(&left, &right, &aj.condition());
      std::vector<uint32_t> keep = PartitionedIndexes(
          left.NumRows(), ctx.parallel,
          [&](size_t begin, size_t end, std::vector<uint32_t>* out) {
            probe.Probe(begin, end, out);
          });
      return left.Narrow(keep);
    }
    // The row-semantics operators round-trip through the row kernels: one
    // implementation of set/aggregate semantics, identical output order.
    case PlanKind::kUnion: {
      HIPPO_ASSIGN_OR_RETURN(ColumnBatch left,
                             ExecuteBatch(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(ColumnBatch right,
                             ExecuteBatch(plan.child(1), ctx));
      return ColumnBatch::FromRows(
          exec::UnionRows(left.ToRows(), right.ToRows()),
          SchemaTypes(plan.schema()));
    }
    case PlanKind::kDifference: {
      HIPPO_ASSIGN_OR_RETURN(ColumnBatch left,
                             ExecuteBatch(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(ColumnBatch right,
                             ExecuteBatch(plan.child(1), ctx));
      return ColumnBatch::FromRows(
          exec::DifferenceRows(left.ToRows(), right.ToRows()),
          SchemaTypes(plan.schema()));
    }
    case PlanKind::kIntersect: {
      HIPPO_ASSIGN_OR_RETURN(ColumnBatch left,
                             ExecuteBatch(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(ColumnBatch right,
                             ExecuteBatch(plan.child(1), ctx));
      return ColumnBatch::FromRows(
          exec::IntersectRows(left.ToRows(), right.ToRows()),
          SchemaTypes(plan.schema()));
    }
    case PlanKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(ColumnBatch in,
                             ExecuteBatch(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> rows,
                             exec::AggregateRows(agg, in.ToRows()));
      return ColumnBatch::FromRows(rows, SchemaTypes(plan.schema()));
    }
    case PlanKind::kSort: {
      const auto& sort = static_cast<const SortNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(ColumnBatch in,
                             ExecuteBatch(plan.child(0), ctx));
      bool key_refs = true;
      for (const SortNode::Key& k : sort.keys()) {
        key_refs = key_refs && k.expr->kind() == ExprKind::kColumnRef &&
                   static_cast<const ColumnRefExpr&>(*k.expr).IsBound();
      }
      if (key_refs) {
        // Sort logical indexes by key columns: zero-copy, same stable
        // order as the row engine (CompareAt == Value::Compare).
        std::vector<uint32_t> order(in.NumRows());
        for (size_t i = 0; i < order.size(); ++i) {
          order[i] = static_cast<uint32_t>(i);
        }
        std::stable_sort(
            order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
              for (const SortNode::Key& k : sort.keys()) {
                const auto& ref =
                    static_cast<const ColumnRefExpr&>(*k.expr);
                const ColumnVector& col =
                    in.col(static_cast<size_t>(ref.index()));
                int c = col.CompareAt(in.Physical(a), col, in.Physical(b));
                if (c != 0) return k.ascending ? c < 0 : c > 0;
              }
              return false;
            });
        return in.Narrow(order);
      }
      std::vector<Row> rows = in.ToRows();
      std::stable_sort(rows.begin(), rows.end(),
                       [&sort](const Row& a, const Row& b) {
                         for (const SortNode::Key& k : sort.keys()) {
                           Value va = EvalExpr(*k.expr, a);
                           Value vb = EvalExpr(*k.expr, b);
                           int c = va.Compare(vb);
                           if (c != 0) return k.ascending ? c < 0 : c > 0;
                         }
                         return false;
                       });
      return ColumnBatch::FromRows(rows, SchemaTypes(plan.schema()));
    }
  }
  return Status::Internal("unknown plan kind in executor");
}

/// Trace-aware entry for one batch-engine operator (see ExecuteRows).
Result<ColumnBatch> ExecuteBatch(const PlanNode& plan,
                                 const ExecContext& ctx) {
  if (ctx.trace == nullptr) return ExecuteBatchNode(plan, ctx);
  obs::TraceSpan* span = ctx.trace->StartChild(plan.NodeLabel());
  ExecContext child = ctx;
  child.trace = span;
  Result<ColumnBatch> result = ExecuteBatchNode(plan, child);
  if (result.ok()) {
    span->SetAttr("rows", static_cast<int64_t>(result.value().NumRows()));
  }
  span->End();
  return result;
}

}  // namespace

Result<ResultSet> Execute(const PlanNode& plan, const ExecContext& ctx) {
  HIPPO_CHECK(ctx.catalog != nullptr);
  if (ctx.engine == ExecEngine::kRow) {
    HIPPO_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecuteRows(plan, ctx));
    return ResultSet{plan.schema(), std::move(rows)};
  }
  HIPPO_ASSIGN_OR_RETURN(ColumnBatch batch, ExecuteBatch(plan, ctx));
  return ResultSet{plan.schema(), batch.ToRows()};
}

}  // namespace hippo
