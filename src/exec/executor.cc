#include "exec/executor.h"

#include <algorithm>
#include <unordered_set>

#include "common/parallel.h"
#include "exec/operators.h"
#include "expr/evaluator.h"

namespace hippo {

bool ResultSet::Contains(const Row& row) const {
  for (const Row& r : rows) {
    if (r == row) return true;
  }
  return false;
}

void ResultSet::SortRows() {
  std::sort(rows.begin(), rows.end(), RowLess);
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out = schema.ToString();
  out += "\n";
  size_t shown = std::min(max_rows, rows.size());
  for (size_t i = 0; i < shown; ++i) {
    out += RowToString(rows[i]);
    out += "\n";
  }
  if (shown < rows.size()) {
    out += "... (" + std::to_string(rows.size() - shown) + " more)\n";
  }
  return out;
}

namespace {

Result<std::vector<Row>> ExecuteRows(const PlanNode& plan,
                                     const ExecContext& ctx);

/// Number of row-range partitions an operator over `rows` input rows
/// should split into: 1 unless parallelism is enabled AND the input is
/// large enough that every partition gets at least min_partition_rows.
size_t PartitionsFor(size_t rows, const ExecParallel& parallel) {
  size_t threads = ResolveThreadCount(parallel.num_threads);
  if (threads <= 1) return 1;
  size_t min_rows = std::max<size_t>(1, parallel.min_partition_rows);
  if (rows <= min_rows) return 1;
  return std::min(threads, (rows + min_rows - 1) / min_rows);
}

/// Partition-parallel map: runs `fn(begin, end, &slice)` over contiguous
/// row ranges of [0, n) and concatenates the slice outputs in partition
/// order — bit-identical to fn(0, n, &out) because every operator using it
/// emits rows in input order within a range.
template <typename Fn>
std::vector<Row> PartitionedRows(size_t n, const ExecParallel& parallel,
                                 const Fn& fn) {
  size_t parts = PartitionsFor(n, parallel);
  if (parts <= 1) {
    std::vector<Row> out;
    fn(size_t{0}, n, &out);
    return out;
  }
  std::vector<std::vector<Row>> slices(parts);
  ParallelSlices(n, parts, [&](size_t p, size_t begin, size_t end) {
    fn(begin, end, &slices[p]);
  });
  std::vector<Row> out = std::move(slices[0]);
  size_t total = out.size();
  for (size_t p = 1; p < parts; ++p) total += slices[p].size();
  out.reserve(total);
  for (size_t p = 1; p < parts; ++p) {
    for (Row& r : slices[p]) out.push_back(std::move(r));
  }
  return out;
}

Result<std::vector<Row>> ExecuteScan(const ScanNode& scan,
                                     const ExecContext& ctx) {
  const Table& table = ctx.catalog->table(scan.table_id());
  std::vector<Row> out;
  out.reserve(table.NumRows());
  for (uint32_t i = 0; i < table.NumRows(); ++i) {
    if (!table.IsLive(i)) continue;
    if (ctx.mask != nullptr &&
        !ctx.mask->Allows(RowId{scan.table_id(), i})) {
      continue;
    }
    Row row = table.row(i);
    if (scan.emit_rowid()) {
      row.push_back(Value::Int(static_cast<int64_t>(i)));
    }
    out.push_back(std::move(row));
  }
  return out;
}

Result<std::vector<Row>> ExecuteRows(const PlanNode& plan,
                                     const ExecContext& ctx) {
  switch (plan.kind()) {
    case PlanKind::kScan:
      return ExecuteScan(static_cast<const ScanNode&>(plan), ctx);
    case PlanKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> in,
                             ExecuteRows(plan.child(0), ctx));
      return PartitionedRows(
          in.size(), ctx.parallel,
          [&](size_t begin, size_t end, std::vector<Row>* out) {
            for (size_t i = begin; i < end; ++i) {
              if (EvalPredicate(filter.predicate(), in[i])) {
                out->push_back(std::move(in[i]));
              }
            }
          });
    }
    case PlanKind::kProject: {
      const auto& proj = static_cast<const ProjectNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> in,
                             ExecuteRows(plan.child(0), ctx));
      // Expression evaluation partitions; the dedup stays serial (first
      // occurrence over the concatenation = the serial dedup order).
      return exec::DedupRows(PartitionedRows(
          in.size(), ctx.parallel,
          [&](size_t begin, size_t end, std::vector<Row>* out) {
            for (size_t i = begin; i < end; ++i) {
              Row mapped;
              mapped.reserve(proj.NumExprs());
              for (size_t e = 0; e < proj.NumExprs(); ++e) {
                mapped.push_back(EvalExpr(proj.expr(e), in[i]));
              }
              out->push_back(std::move(mapped));
            }
          }));
    }
    case PlanKind::kProduct: {
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> left,
                             ExecuteRows(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> right,
                             ExecuteRows(plan.child(1), ctx));
      return PartitionedRows(
          left.size(), ctx.parallel,
          [&](size_t begin, size_t end, std::vector<Row>* out) {
            out->reserve((end - begin) * right.size());
            for (size_t i = begin; i < end; ++i) {
              for (const Row& r : right) {
                Row joined = left[i];
                joined.insert(joined.end(), r.begin(), r.end());
                out->push_back(std::move(joined));
              }
            }
          });
    }
    case PlanKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> left,
                             ExecuteRows(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> right,
                             ExecuteRows(plan.child(1), ctx));
      // Build once (serial), probe partitioned: each range probes the
      // shared read-only hash table.
      exec::JoinChain chain(
          plan.child(0).schema().NumColumns(),
          {{&right, &join.condition(),
            plan.child(1).schema().NumColumns()}},
          nullptr);
      return PartitionedRows(
          left.size(), ctx.parallel,
          [&](size_t begin, size_t end, std::vector<Row>* out) {
            chain.Probe(left, begin, end, out);
          });
    }
    case PlanKind::kAntiJoin: {
      const auto& aj = static_cast<const AntiJoinNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> left,
                             ExecuteRows(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> right,
                             ExecuteRows(plan.child(1), ctx));
      exec::AntiJoinProbe probe(&right, &aj.condition(),
                                plan.child(0).schema().NumColumns());
      return PartitionedRows(
          left.size(), ctx.parallel,
          [&](size_t begin, size_t end, std::vector<Row>* out) {
            probe.Probe(left, begin, end, out);
          });
    }
    case PlanKind::kUnion: {
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> left,
                             ExecuteRows(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> right,
                             ExecuteRows(plan.child(1), ctx));
      return exec::UnionRows(std::move(left), right);
    }
    case PlanKind::kDifference: {
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> left,
                             ExecuteRows(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> right,
                             ExecuteRows(plan.child(1), ctx));
      return exec::DifferenceRows(left, right);
    }
    case PlanKind::kIntersect: {
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> left,
                             ExecuteRows(plan.child(0), ctx));
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> right,
                             ExecuteRows(plan.child(1), ctx));
      return exec::IntersectRows(left, right);
    }
    case PlanKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> in,
                             ExecuteRows(plan.child(0), ctx));
      return exec::AggregateRows(agg, in);
    }
    case PlanKind::kSort: {
      const auto& sort = static_cast<const SortNode&>(plan);
      HIPPO_ASSIGN_OR_RETURN(std::vector<Row> in,
                             ExecuteRows(plan.child(0), ctx));
      std::stable_sort(in.begin(), in.end(),
                       [&sort](const Row& a, const Row& b) {
                         for (const SortNode::Key& k : sort.keys()) {
                           Value va = EvalExpr(*k.expr, a);
                           Value vb = EvalExpr(*k.expr, b);
                           int c = va.Compare(vb);
                           if (c != 0) return k.ascending ? c < 0 : c > 0;
                         }
                         return false;
                       });
      return in;
    }
  }
  return Status::Internal("unknown plan kind in executor");
}

}  // namespace

Result<ResultSet> Execute(const PlanNode& plan, const ExecContext& ctx) {
  HIPPO_CHECK(ctx.catalog != nullptr);
  HIPPO_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecuteRows(plan, ctx));
  return ResultSet{plan.schema(), std::move(rows)};
}

}  // namespace hippo
