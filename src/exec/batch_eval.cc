#include "exec/batch_eval.h"

#include <cstring>

namespace hippo::exec {

namespace {

int8_t TernOf(const Value& v) {
  if (v.is_null()) return kTernNull;
  return v.AsBool() ? kTernTrue : kTernFalse;
}

/// Per-row scalar fallback: exact evaluator semantics, just not vectorized.
void FallbackMask(const Expr& expr, const ColumnBatch& batch, size_t begin,
                  size_t end, int8_t* out) {
  for (size_t i = begin; i < end; ++i) {
    uint32_t p = batch.Physical(i);
    auto at = [&](size_t c) { return batch.col(c).ValueAt(p); };
    out[i - begin] = TernOf(EvalExprOver(expr, at));
  }
}

/// One side of a comparison: a batch column or a constant.
struct Operand {
  const ColumnVector* col = nullptr;  // null -> constant
  Value constant;

  bool Bind(const Expr& e, const ColumnBatch& batch) {
    if (e.kind() == ExprKind::kLiteral) {
      constant = static_cast<const LiteralExpr&>(e).value();
      return true;
    }
    if (e.kind() == ExprKind::kColumnRef) {
      const auto& ref = static_cast<const ColumnRefExpr&>(e);
      if (!ref.IsBound()) return false;
      col = &batch.col(static_cast<size_t>(ref.index()));
      return true;
    }
    return false;
  }

  TypeId EffectiveType() const { return col ? col->type() : constant.type(); }
  bool NullAt(uint32_t phys) const {
    return col ? col->IsNull(phys) : constant.is_null();
  }
};

// Same ranks Value::Compare uses to order values of different type classes.
int TypeClassRank(TypeId t) {
  switch (t) {
    case TypeId::kNull:
      return 0;
    case TypeId::kBool:
      return 1;
    case TypeId::kInt:
    case TypeId::kDouble:
      return 2;
    case TypeId::kString:
      return 3;
  }
  return 4;
}

int8_t CmpVerdict(CompareOp op, int c, bool eq) {
  switch (op) {
    case CompareOp::kEq:
      return eq ? kTernTrue : kTernFalse;
    case CompareOp::kNe:
      return eq ? kTernFalse : kTernTrue;
    case CompareOp::kLt:
      return c < 0 ? kTernTrue : kTernFalse;
    case CompareOp::kLe:
      return c <= 0 ? kTernTrue : kTernFalse;
    case CompareOp::kGt:
      return c > 0 ? kTernTrue : kTernFalse;
    case CompareOp::kGe:
      return c >= 0 ? kTernTrue : kTernFalse;
  }
  return kTernNull;
}

/// Typed comparison loop: `get*` read the non-NULL payload at a physical
/// index, `verdict` maps a payload pair to a ternary truth value.
template <typename GetL, typename GetR, typename Verdict>
void CmpLoop(const ColumnBatch& batch, size_t begin, size_t end,
             const Operand& l, const Operand& r, const GetL& get_l,
             const GetR& get_r, const Verdict& verdict, int8_t* out) {
  for (size_t i = begin; i < end; ++i) {
    uint32_t p = batch.Physical(i);
    if (l.NullAt(p) || r.NullAt(p)) {
      out[i - begin] = kTernNull;
      continue;
    }
    out[i - begin] = verdict(get_l(p), get_r(p));
  }
}

/// Vectorized Comparison(colref|literal, colref|literal). Returns false
/// when the shape or types require the scalar fallback.
bool TryComparisonMask(const ComparisonExpr& cmp, const ColumnBatch& batch,
                       size_t begin, size_t end, int8_t* out) {
  Operand l, r;
  if (!l.Bind(cmp.left(), batch) || !r.Bind(cmp.right(), batch)) return false;
  if (l.col == nullptr && r.col == nullptr) return false;  // const-folding
  if ((l.col && l.col->is_mixed()) || (r.col && r.col->is_mixed())) {
    return false;
  }
  // A NULL constant operand nulls the whole range.
  if ((l.col == nullptr && l.constant.is_null()) ||
      (r.col == nullptr && r.constant.is_null())) {
    std::memset(out, kTernNull, end - begin);
    return true;
  }
  CompareOp op = cmp.op();
  TypeId lt = l.EffectiveType(), rt = r.EffectiveType();
  bool l_num = lt == TypeId::kInt || lt == TypeId::kDouble;
  bool r_num = rt == TypeId::kInt || rt == TypeId::kDouble;
  if (l_num && r_num) {
    if (lt == TypeId::kInt && rt == TypeId::kInt) {
      // Pure int64 path: no double round-trip (matters past 2^53).
      auto get_l = l.col ? std::function<int64_t(uint32_t)>(
                               [c = l.col](uint32_t p) { return c->IntAt(p); })
                         : std::function<int64_t(uint32_t)>(
                               [v = l.constant.AsInt()](uint32_t) {
                                 return v;
                               });
      auto get_r = r.col ? std::function<int64_t(uint32_t)>(
                               [c = r.col](uint32_t p) { return c->IntAt(p); })
                         : std::function<int64_t(uint32_t)>(
                               [v = r.constant.AsInt()](uint32_t) {
                                 return v;
                               });
      CmpLoop(batch, begin, end, l, r, get_l, get_r,
              [op](int64_t a, int64_t b) {
                return CmpVerdict(op, a == b ? 0 : (a < b ? -1 : 1), a == b);
              },
              out);
      return true;
    }
    // Mixed int/double: Value semantics compare by double value.
    auto as_double = [](const Operand& o) {
      if (o.col) {
        if (o.col->type() == TypeId::kInt) {
          return std::function<double(uint32_t)>([c = o.col](uint32_t p) {
            return static_cast<double>(c->IntAt(p));
          });
        }
        return std::function<double(uint32_t)>(
            [c = o.col](uint32_t p) { return c->DoubleAt(p); });
      }
      return std::function<double(uint32_t)>(
          [v = o.constant.NumericAsDouble()](uint32_t) { return v; });
    };
    CmpLoop(batch, begin, end, l, r, as_double(l), as_double(r),
            [op](double a, double b) {
              return CmpVerdict(op, a == b ? 0 : (a < b ? -1 : 1), a == b);
            },
            out);
    return true;
  }
  if (lt == TypeId::kString && rt == TypeId::kString) {
    auto get = [](const Operand& o) {
      if (o.col) {
        return std::function<const std::string&(uint32_t)>(
            [c = o.col](uint32_t p) -> const std::string& {
              return c->StringAt(p);
            });
      }
      return std::function<const std::string&(uint32_t)>(
          [&v = o.constant.AsString()](uint32_t) -> const std::string& {
            return v;
          });
    };
    CmpLoop(batch, begin, end, l, r, get(l), get(r),
            [op](const std::string& a, const std::string& b) {
              int c = a.compare(b);
              c = c == 0 ? 0 : (c < 0 ? -1 : 1);
              return CmpVerdict(op, c, c == 0);
            },
            out);
    return true;
  }
  if (lt == TypeId::kBool && rt == TypeId::kBool) {
    auto get = [](const Operand& o) {
      if (o.col) {
        return std::function<bool(uint32_t)>(
            [c = o.col](uint32_t p) { return c->BoolAt(p); });
      }
      return std::function<bool(uint32_t)>(
          [v = o.constant.AsBool()](uint32_t) { return v; });
    };
    CmpLoop(batch, begin, end, l, r, get(l), get(r),
            [op](bool a, bool b) {
              return CmpVerdict(op, a == b ? 0 : (a < b ? -1 : 1), a == b);
            },
            out);
    return true;
  }
  // Distinct type classes: == is false and Compare orders by class rank,
  // so every non-NULL row gets the same verdict.
  int c = TypeClassRank(lt) < TypeClassRank(rt) ? -1 : 1;
  int8_t verdict = CmpVerdict(op, c, /*eq=*/false);
  for (size_t i = begin; i < end; ++i) {
    uint32_t p = batch.Physical(i);
    out[i - begin] = (l.NullAt(p) || r.NullAt(p)) ? kTernNull : verdict;
  }
  return true;
}

void MaskNotInPlace(int8_t* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (out[i] != kTernNull) out[i] = out[i] == kTernTrue ? kTernFalse
                                                          : kTernTrue;
  }
}

}  // namespace

void EvalPredicateMask(const Expr& expr, const ColumnBatch& batch,
                       size_t begin, size_t end, int8_t* out) {
  size_t n = end - begin;
  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      int8_t v = TernOf(static_cast<const LiteralExpr&>(expr).value());
      std::memset(out, v, n);
      return;
    }
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      if (!ref.IsBound()) break;
      const ColumnVector& col = batch.col(static_cast<size_t>(ref.index()));
      if (col.is_mixed() || col.type() != TypeId::kBool) break;
      for (size_t i = begin; i < end; ++i) {
        uint32_t p = batch.Physical(i);
        out[i - begin] = col.IsNull(p)
                             ? kTernNull
                             : (col.BoolAt(p) ? kTernTrue : kTernFalse);
      }
      return;
    }
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(expr);
      if (TryComparisonMask(cmp, batch, begin, end, out)) return;
      break;
    }
    case ExprKind::kLogical: {
      const auto& log = static_cast<const LogicalExpr&>(expr);
      if (log.op() == LogicalOp::kNot) {
        EvalPredicateMask(log.child(0), batch, begin, end, out);
        MaskNotInPlace(out, n);
        return;
      }
      // Kleene AND/OR fold over child masks. The row engine short-circuits
      // child *evaluation*, but children are side-effect free, so folding
      // complete masks yields identical truth values.
      EvalPredicateMask(log.child(0), batch, begin, end, out);
      std::vector<int8_t> tmp(n);
      bool is_and = log.op() == LogicalOp::kAnd;
      for (size_t cix = 1; cix < log.NumChildren(); ++cix) {
        EvalPredicateMask(log.child(cix), batch, begin, end, tmp.data());
        for (size_t i = 0; i < n; ++i) {
          int8_t a = out[i], b = tmp[i];
          if (is_and) {
            out[i] = (a == kTernFalse || b == kTernFalse)
                         ? kTernFalse
                         : ((a == kTernNull || b == kTernNull) ? kTernNull
                                                               : kTernTrue);
          } else {
            out[i] = (a == kTernTrue || b == kTernTrue)
                         ? kTernTrue
                         : ((a == kTernNull || b == kTernNull) ? kTernNull
                                                               : kTernFalse);
          }
        }
      }
      return;
    }
    case ExprKind::kIsNull: {
      const auto& isn = static_cast<const IsNullExpr&>(expr);
      if (isn.child().kind() != ExprKind::kColumnRef) break;
      const auto& ref = static_cast<const ColumnRefExpr&>(isn.child());
      if (!ref.IsBound()) break;
      const ColumnVector& col = batch.col(static_cast<size_t>(ref.index()));
      bool neg = isn.negated();
      for (size_t i = begin; i < end; ++i) {
        bool isnull = col.IsNull(batch.Physical(i));
        out[i - begin] = (neg ? !isnull : isnull) ? kTernTrue : kTernFalse;
      }
      return;
    }
    default:
      break;
  }
  FallbackMask(expr, batch, begin, end, out);
}

void EvalExprColumn(const Expr& expr, const ColumnBatch& batch, size_t begin,
                    size_t end, ColumnVector* out) {
  if (expr.kind() == ExprKind::kColumnRef) {
    const auto& ref = static_cast<const ColumnRefExpr&>(expr);
    if (ref.IsBound()) {
      const ColumnVector& src = batch.col(static_cast<size_t>(ref.index()));
      for (size_t i = begin; i < end; ++i) {
        out->AppendFrom(src, batch.Physical(i));
      }
      return;
    }
  }
  if (expr.kind() == ExprKind::kLiteral) {
    const Value& v = static_cast<const LiteralExpr&>(expr).value();
    for (size_t i = begin; i < end; ++i) out->AppendValue(v);
    return;
  }
  for (size_t i = begin; i < end; ++i) {
    uint32_t p = batch.Physical(i);
    auto at = [&](size_t c) { return batch.col(c).ValueAt(p); };
    out->AppendValue(EvalExprOver(expr, at));
  }
}

}  // namespace hippo::exec
