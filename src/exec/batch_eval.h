// Vectorized expression evaluation over ColumnBatch inputs.
//
// Two entry points, both mirroring src/expr/evaluator.cc bit-for-bit:
//
//  - EvalPredicateMask: a ternary (Kleene) truth mask per logical row.
//    Comparisons between column references and literals dispatch to typed
//    loops (int64 pair, mixed-numeric-as-double, string, bool); Kleene
//    AND/OR/NOT combine child masks; IS NULL reads validity bits. Anything
//    else falls back to per-row scalar evaluation through EvalExprOver —
//    same result, just unvectorized.
//
//  - EvalExprOver: scalar evaluation over an *accessor* (virtual column
//    index -> Value) instead of a materialized Row. Batch joins evaluate
//    residuals and final filters over index tuples with it, never building
//    the concatenated work row the row engine maintains.
//
// The ternary encoding matches the evaluator's Value results: kTernFalse /
// kTernTrue are Bool(false)/Bool(true), kTernNull is Value::Null().
#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "expr/expr.h"
#include "storage/column_batch.h"

namespace hippo::exec {

inline constexpr int8_t kTernFalse = 0;
inline constexpr int8_t kTernTrue = 1;
inline constexpr int8_t kTernNull = 2;

/// Evaluates `expr` as a predicate over logical rows [begin, end) of
/// `batch`, writing one ternary truth value per row into out[i - begin].
void EvalPredicateMask(const Expr& expr, const ColumnBatch& batch,
                       size_t begin, size_t end, int8_t* out);

/// Evaluates `expr` for each logical row in [begin, end), appending the
/// results to `*out` (a ColumnVector of the expression's result type).
void EvalExprColumn(const Expr& expr, const ColumnBatch& batch, size_t begin,
                    size_t end, ColumnVector* out);

/// Scalar evaluation of a bound expression over an accessor mapping bound
/// column index -> Value. Mirrors EvalExpr(expr, row) exactly.
template <typename Accessor>
Value EvalExprOver(const Expr& expr, const Accessor& at) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value();
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      HIPPO_DCHECK(ref.IsBound());
      return at(static_cast<size_t>(ref.index()));
    }
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(expr);
      Value l = EvalExprOver(cmp.left(), at);
      Value r = EvalExprOver(cmp.right(), at);
      if (l.is_null() || r.is_null()) return Value::Null();
      int c = l.Compare(r);
      switch (cmp.op()) {
        case CompareOp::kEq:
          return Value::Bool(l == r);
        case CompareOp::kNe:
          return Value::Bool(!(l == r));
        case CompareOp::kLt:
          return Value::Bool(c < 0);
        case CompareOp::kLe:
          return Value::Bool(c <= 0);
        case CompareOp::kGt:
          return Value::Bool(c > 0);
        case CompareOp::kGe:
          return Value::Bool(c >= 0);
      }
      return Value::Null();
    }
    case ExprKind::kLogical: {
      const auto& log = static_cast<const LogicalExpr&>(expr);
      if (log.op() == LogicalOp::kNot) {
        Value v = EvalExprOver(log.child(0), at);
        if (v.is_null()) return Value::Null();
        return Value::Bool(!v.AsBool());
      }
      bool saw_null = false;
      if (log.op() == LogicalOp::kAnd) {
        for (size_t i = 0; i < log.NumChildren(); ++i) {
          Value v = EvalExprOver(log.child(i), at);
          if (v.is_null()) {
            saw_null = true;
          } else if (!v.AsBool()) {
            return Value::Bool(false);
          }
        }
        return saw_null ? Value::Null() : Value::Bool(true);
      }
      for (size_t i = 0; i < log.NumChildren(); ++i) {
        Value v = EvalExprOver(log.child(i), at);
        if (v.is_null()) {
          saw_null = true;
        } else if (v.AsBool()) {
          return Value::Bool(true);
        }
      }
      return saw_null ? Value::Null() : Value::Bool(false);
    }
    case ExprKind::kArithmetic: {
      const auto& ar = static_cast<const ArithmeticExpr&>(expr);
      Value l = EvalExprOver(ar.left(), at);
      Value r = EvalExprOver(ar.right(), at);
      if (l.is_null() || r.is_null()) return Value::Null();
      bool as_double =
          l.type() == TypeId::kDouble || r.type() == TypeId::kDouble;
      if (as_double) {
        double a = l.NumericAsDouble(), b = r.NumericAsDouble();
        switch (ar.op()) {
          case ArithOp::kAdd:
            return Value::Double(a + b);
          case ArithOp::kSub:
            return Value::Double(a - b);
          case ArithOp::kMul:
            return Value::Double(a * b);
          case ArithOp::kDiv:
            if (b == 0.0) return Value::Null();
            return Value::Double(a / b);
          case ArithOp::kMod:
            HIPPO_CHECK_MSG(false, "binder rejects % on doubles");
        }
      }
      int64_t a = l.AsInt(), b = r.AsInt();
      switch (ar.op()) {
        case ArithOp::kAdd:
          return Value::Int(a + b);
        case ArithOp::kSub:
          return Value::Int(a - b);
        case ArithOp::kMul:
          return Value::Int(a * b);
        case ArithOp::kDiv:
          if (b == 0) return Value::Null();
          return Value::Int(a / b);
        case ArithOp::kMod:
          if (b == 0) return Value::Null();
          return Value::Int(a % b);
      }
      return Value::Null();
    }
    case ExprKind::kIsNull: {
      const auto& n = static_cast<const IsNullExpr&>(expr);
      bool isnull = EvalExprOver(n.child(), at).is_null();
      return Value::Bool(n.negated() ? !isnull : isnull);
    }
    case ExprKind::kAggCall:
      HIPPO_CHECK_MSG(false, "aggregate call evaluated outside aggregation");
      break;
  }
  return Value::Null();
}

/// Predicate form of EvalExprOver: non-NULL TRUE.
template <typename Accessor>
bool EvalPredicateOver(const Expr& expr, const Accessor& at) {
  Value v = EvalExprOver(expr, at);
  return !v.is_null() && v.AsBool();
}

}  // namespace hippo::exec
