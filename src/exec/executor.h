// Materializing executor for bound logical plans.
//
// Every operator materializes its output (the plans in Hippo's workloads are
// shallow and the CQA machinery needs materialized candidate sets anyway).
// Joins execute as hash joins when the condition contains equi-join
// conjuncts, otherwise as nested loops.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "obs/trace.h"
#include "plan/logical_plan.h"
#include "storage/column_batch.h"
#include "types/value.h"

namespace hippo {

/// \brief A materialized query result.
struct ResultSet {
  Schema schema;
  std::vector<Row> rows;

  size_t NumRows() const { return rows.size(); }

  /// Linear scan (test helper).
  bool Contains(const Row& row) const;

  /// Sorts rows under the Value total order (deterministic comparisons).
  void SortRows();

  /// Tabular rendering (up to `max_rows` rows).
  std::string ToString(size_t max_rows = 50) const;
};

/// \brief Restricts scans to a subset of each table's rows.
///
/// Used to evaluate queries over repairs and over the "core" (conflict-free
/// part) of the database without copying tables. Tables without an entry are
/// fully visible.
class RowMask {
 public:
  /// `allowed[i]` says whether row i of `table_id` is visible.
  void SetAllowed(uint32_t table_id, std::vector<bool> allowed) {
    allowed_[table_id] = std::move(allowed);
  }

  bool Allows(RowId rid) const {
    auto it = allowed_.find(rid.table);
    if (it == allowed_.end()) return true;
    return rid.row < it->second.size() && it->second[rid.row];
  }

  bool HasEntry(uint32_t table_id) const { return allowed_.count(table_id); }

 private:
  std::unordered_map<uint32_t, std::vector<bool>> allowed_;
};

/// Intra-operator parallelism knobs for Execute (see executor.cc): with
/// more than one thread, the row-at-a-time operators (filter, project
/// pre-dedup, join/anti-join probe, product) split their input into
/// contiguous row-range partitions evaluated concurrently and concatenated
/// in partition order, so the output — rows AND row order — is
/// bit-identical to the serial run. Hash builds, dedup, set operations,
/// aggregation, and sort stay serial.
struct ExecParallel {
  /// 1 = serial (default); 0 = one per hardware thread
  /// (ResolveThreadCount).
  size_t num_threads = 1;

  /// Minimum input rows of an operator per partition: smaller inputs run
  /// serially so tiny operators don't pay thread spawn overhead.
  size_t min_partition_rows = 4096;
};

/// Which physical engine Execute uses. Both produce bit-identical
/// ResultSets (rows AND order); kBatch is the vectorized columnar engine
/// (typed column vectors, selection-vector filters, index-tuple joins over
/// Table's lazily-materialized columnar view), kRow is the original
/// row-at-a-time engine, kept as the differential-testing oracle.
enum class ExecEngine : uint8_t { kBatch, kRow };

/// Execution environment: the catalog, an optional row mask, and the
/// intra-operator parallelism knobs.
struct ExecContext {
  ExecContext() = default;
  /// The ubiquitous two-field shape (`ExecContext ctx{&catalog, nullptr}`)
  /// predates the parallel knobs; this constructor keeps it valid (and
  /// -Wmissing-field-initializers quiet) with serial defaults.
  ExecContext(const Catalog* catalog_in, const RowMask* mask_in)
      : catalog(catalog_in), mask(mask_in) {}

  const Catalog* catalog = nullptr;
  const RowMask* mask = nullptr;
  ExecParallel parallel;
  ExecEngine engine = ExecEngine::kBatch;

  /// Optional trace sink: when set, Execute wraps every operator in a
  /// child span named by NodeLabel() and records its output cardinality.
  /// Spans are per-operator, never per-row, so tracing cost scales with
  /// plan size; null (the default) costs one branch per operator.
  /// Tracing never changes results — rows and order are bit-identical
  /// either way (tests/trace_differential_test.cc).
  obs::TraceSpan* trace = nullptr;
};

/// Executes a bound plan to completion. With ctx.parallel.num_threads > 1
/// the result is still bit-identical (rows and order) to the serial run,
/// and the batch and row engines agree bit-for-bit.
Result<ResultSet> Execute(const PlanNode& plan, const ExecContext& ctx);

/// Number of row-range partitions an operator over `rows` input rows
/// should split into under `parallel`: 1 unless parallelism is enabled AND
/// every partition gets at least min_partition_rows. Shared by both
/// engines and the batch kernels.
size_t ExecPartitionsFor(size_t rows, const ExecParallel& parallel);

/// Zero-copy columnar scan of a table: shares the table's memoized
/// columnar view (plus its rowid column when `emit_rowid`) and selects the
/// live rows allowed by `mask` (nullptr = all live rows). The batch's
/// physical index IS the RowId row. Shared by the executor's Scan and the
/// detection probes.
ColumnBatch ScanTableBatch(const Table& table, bool emit_rowid,
                           const RowMask* mask);

}  // namespace hippo
