// Materializing executor for bound logical plans.
//
// Every operator materializes its output (the plans in Hippo's workloads are
// shallow and the CQA machinery needs materialized candidate sets anyway).
// Joins execute as hash joins when the condition contains equi-join
// conjuncts, otherwise as nested loops.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "plan/logical_plan.h"
#include "types/value.h"

namespace hippo {

/// \brief A materialized query result.
struct ResultSet {
  Schema schema;
  std::vector<Row> rows;

  size_t NumRows() const { return rows.size(); }

  /// Linear scan (test helper).
  bool Contains(const Row& row) const;

  /// Sorts rows under the Value total order (deterministic comparisons).
  void SortRows();

  /// Tabular rendering (up to `max_rows` rows).
  std::string ToString(size_t max_rows = 50) const;
};

/// \brief Restricts scans to a subset of each table's rows.
///
/// Used to evaluate queries over repairs and over the "core" (conflict-free
/// part) of the database without copying tables. Tables without an entry are
/// fully visible.
class RowMask {
 public:
  /// `allowed[i]` says whether row i of `table_id` is visible.
  void SetAllowed(uint32_t table_id, std::vector<bool> allowed) {
    allowed_[table_id] = std::move(allowed);
  }

  bool Allows(RowId rid) const {
    auto it = allowed_.find(rid.table);
    if (it == allowed_.end()) return true;
    return rid.row < it->second.size() && it->second[rid.row];
  }

  bool HasEntry(uint32_t table_id) const { return allowed_.count(table_id); }

 private:
  std::unordered_map<uint32_t, std::vector<bool>> allowed_;
};

/// Execution environment: the catalog, plus an optional row mask.
struct ExecContext {
  const Catalog* catalog = nullptr;
  const RowMask* mask = nullptr;
};

/// Executes a bound plan to completion.
Result<ResultSet> Execute(const PlanNode& plan, const ExecContext& ctx);

}  // namespace hippo
